(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (SV) over the simulator, then runs Bechamel
   wall-clock micro-benchmarks of the interpreter executing the baseline
   and versioned programs — one Bechamel test pair per paper table, as a
   sanity check that the cost model's direction agrees with real time.

   Usage:
     dune exec bench/main.exe                         # everything
     dune exec bench/main.exe -- fig16                # one table
     dune exec bench/main.exe -- wallclock            # Bechamel timings only
     dune exec bench/main.exe -- all --json FILE      # also write FILE as
                                                      # machine-readable JSON
     dune exec bench/main.exe -- all --jobs 8         # 8 worker domains

   The JSON document (see README "Benchmark JSON schema") carries the
   per-figure speedup rows plus the telemetry counters the versioning
   framework recorded while producing each figure — plans inferred,
   checks emitted, cut sizes, condition-optimization work — so the perf
   trajectory can be tracked across commits without scraping tables.

   Parallelism: each figure's kernel rows fan out across a domain pool
   (--jobs N, default POOL_JOBS or the core count).  Figures themselves
   run sequentially — that keeps the printed sections ordered and lets
   Telemetry.capture attribute counters per figure (worker shards merge
   into the main registry at each join, inside the capture).  Every
   number in the tables and in the JSON (timings excluded) is identical
   at any job count; CI diffs --jobs 1 against --jobs 2 to pin that. *)

module E = Fgv_bench.Experiments
module W = Fgv_bench.Workload
module Tm = Fgv_support.Telemetry
module Tr = Fgv_support.Trace
module J = Fgv_support.Json
module H = Fgv_support.Histogram
module G = Fgv_fuzz.Generator
open Fgv_pssa

let section title body =
  Printf.printf "==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n%!";
  print_string body;
  print_newline ()

(* --------------------------------------------------- bechamel timings *)

(* Compile + optimize once; the timed thunk only interprets. *)
let prepared (config : W.config) (k : W.kernel) =
  let f = W.compile_for config k in
  ignore (config.W.c_apply f);
  let args = k.W.k_args in
  fun () -> ignore (Interp.run f ~args ~mem:(W.fresh_mem k))

let wallclock_tests () =
  let pick name kernels = List.find (fun k -> k.W.k_name = name) kernels in
  let tsvc_k = pick "s131" Fgv_bench.Tsvc.kernels in
  let poly_k = pick "floyd-warshall" Fgv_bench.Polybench.kernels in
  let spec_k = pick "lbm_r" Fgv_bench.Specfp.kernels in
  [
    (* Fig. 19 representative: TSVC s131 (symbolic dependence distance) *)
    ("fig19/s131-O3", prepared (W.llvm_o3 ()) tsvc_k);
    ("fig19/s131-SV+V", prepared (W.sv_versioning ()) tsvc_k);
    (* Fig. 16 representative: floyd-warshall without restrict *)
    ("fig16/fw-O3", prepared (W.llvm_o3 ~restrict:false ()) poly_k);
    ("fig16/fw-SV+V", prepared (W.sv_versioning ~restrict:false ()) poly_k);
    (* Fig. 22 representative: the lbm surrogate, RLE off/on *)
    ( "fig22/lbm-base",
      prepared (W.cfg "rle-base" (fun f -> Fgv_passes.Pipelines.rle_baseline f)) spec_k );
    ( "fig22/lbm-RLE",
      prepared (W.cfg "rle" (fun f -> Fgv_passes.Pipelines.rle_pipeline f)) spec_k );
  ]

let wallclock () =
  let open Bechamel in
  let tests =
    List.map
      (fun (name, thunk) -> Test.make ~name (Staged.stage thunk))
      (wallclock_tests ())
  in
  let grouped = Test.make_grouped ~name:"fgv" ~fmt:"%s/%s" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Printf.printf "Bechamel wall-clock (monotonic ns per interpreter run)\n";
  Printf.printf "%-24s %14s\n" "benchmark" "ns/run";
  Printf.printf "---------------------------------------\n";
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some [ x ] -> Printf.sprintf "%14.0f" x
        | _ -> "?"
      in
      Printf.printf "%-24s %s\n" name est)
    results;
  print_newline ()

(* ------------------------------------------------------- JSON figures *)

(* Main-domain-only state: figures run sequentially on the main domain;
   pool workers never touch these. *)
let jobs = ref 1

let trace_file : string option ref = ref None

let json_figures : (string * J.t) list ref = ref []

let add_figure name doc = json_figures := (name, doc) :: !json_figures

let counters_json delta = J.Assoc (List.map (fun (n, v) -> (n, J.Int v)) delta)

let geomean f rows = Fgv_support.Stats.geomean (List.map f rows)

(* Run one figure's row computation under a telemetry capture: the text
   table still prints, and the captured counter delta (the framework
   work attributable to this figure alone) lands in the JSON document. *)
let run_fig19 () =
  Tr.with_span ~cat:"figure" "fig19" @@ fun () ->
  let rows, delta = Tm.capture (fun () -> E.tsvc_rows ~jobs:!jobs ()) in
  section "E2 / Fig. 19 (TSVC)" (E.fig19_of_rows rows);
  add_figure "fig19"
    (J.Assoc
       [
         ( "rows",
           J.List
             (List.map
                (fun (r : E.tsvc_row) ->
                  J.Assoc
                    [
                      ("name", J.String r.E.t_name);
                      ("sv", J.Float r.E.t_sv);
                      ("sv_versioning", J.Float r.E.t_svv);
                      ("newly_vectorized", J.Bool r.E.t_newly_vectorized);
                    ])
                rows) );
         ( "geomean",
           J.Assoc
             [
               ("sv", J.Float (geomean (fun r -> r.E.t_sv) rows));
               ("sv_versioning", J.Float (geomean (fun r -> r.E.t_svv) rows));
             ] );
         ("counters", counters_json delta);
       ])

let poly_json (rows : E.poly_row list) =
  J.Assoc
    [
      ( "rows",
        J.List
          (List.map
             (fun (r : E.poly_row) ->
               J.Assoc
                 [
                   ("name", J.String r.E.p_name);
                   ("o3", J.Float r.E.p_o3);
                   ("sv", J.Float r.E.p_sv);
                   ("sv_versioning", J.Float r.E.p_svv);
                   ("newly_vectorized", J.Bool r.E.p_newly);
                 ])
             rows) );
      ( "geomean",
        J.Assoc
          [
            ("o3", J.Float (geomean (fun r -> r.E.p_o3) rows));
            ("sv", J.Float (geomean (fun r -> r.E.p_sv) rows));
            ("sv_versioning", J.Float (geomean (fun r -> r.E.p_svv) rows));
          ] );
    ]

let run_fig16 () =
  Tr.with_span ~cat:"figure" "fig16" @@ fun () ->
  let (off_rows, on_rows), delta =
    Tm.capture (fun () ->
        ( E.polybench_rows ~jobs:!jobs ~restrict:false (),
          E.polybench_rows ~jobs:!jobs ~restrict:true () ))
  in
  section "E1 / Fig. 16 (PolyBench)"
    (E.fig16_of_rows ~restrict:false off_rows
    ^ "\n"
    ^ E.fig16_of_rows ~restrict:true on_rows
    ^ "paper: restrict OFF geomeans SV+V 1.65x over scalar / 1.50x over -O3;\n\
       restrict ON 1.76x / 1.51x; versioning newly vectorizes correlation,\n\
       covariance, floyd-warshall, lu, ludcmp\n");
  add_figure "fig16"
    (J.Assoc
       [
         ("restrict_off", poly_json off_rows);
         ("restrict_on", poly_json on_rows);
         ("counters", counters_json delta);
       ])

let run_fig22 () =
  Tr.with_span ~cat:"figure" "fig22" @@ fun () ->
  let rows, delta = Tm.capture (fun () -> E.rle_rows ~jobs:!jobs ()) in
  section "E5 / Fig. 22 (SPEC FP surrogates, RLE)" (E.fig22_of_rows rows);
  add_figure "fig22"
    (J.Assoc
       [
         ( "rows",
           J.List
             (List.map
                (fun (r : E.rle_row) ->
                  J.Assoc
                    [
                      ("name", J.String r.E.f_name);
                      ("speedup", J.Float r.E.f_speedup);
                      ("loads_eliminated", J.Float r.E.f_loads_eliminated);
                      ("branches_increase", J.Float r.E.f_branches_increase);
                      ("licm_extra", J.Float r.E.f_licm_extra);
                      ("gvn_extra", J.Float r.E.f_gvn_extra);
                      ("size_increase", J.Float r.E.f_size_increase);
                    ])
                rows) );
         ( "geomean",
           J.Assoc
             [ ("speedup", J.Float (geomean (fun r -> r.E.f_speedup) rows)) ] );
         ("counters", counters_json delta);
       ])

let run_clients () =
  Tr.with_span ~cat:"figure" "clients" @@ fun () ->
  let rows, delta = Tm.capture (fun () -> E.clients_rows ~jobs:!jobs ()) in
  section "E6 / DSE & loop-distribution clients" (E.clients_of_rows rows);
  add_figure "clients"
    (J.Assoc
       [
         ( "rows",
           J.List
             (List.map
                (fun (r : E.client_row) ->
                  J.Assoc
                    [
                      ("client", J.String r.E.v_client);
                      ("kernel", J.String r.E.v_kernel);
                      ("speedup_vs_static", J.Float r.E.v_speedup);
                      ("newly_vectorized", J.Bool r.E.v_newly_vectorized);
                      ("forwarded", J.Int r.E.v_forwarded);
                      ("killed", J.Int r.E.v_killed);
                      ("pieces", J.Int r.E.v_pieces);
                    ])
                rows) );
         ( "geomean",
           J.Assoc
             [ ("speedup_vs_static", J.Float (geomean (fun r -> r.E.v_speedup) rows)) ] );
         ("counters", counters_json delta);
       ])

(* ------------------------------------------------- native wall-clock *)

(* The native lane measures real time, so everything wall-derived goes
   under "timing" keys (stripped by the CI determinism diff); the
   deterministic fields — kernel set, model speedups, checksum verdicts
   — are what CI pins.  Without a C compiler the figure degrades to a
   skipped marker instead of failing the whole bench run. *)
let run_native () =
  Tr.with_span ~cat:"figure" "native" @@ fun () ->
  if not (Fgv_bench.Native_rows.available ()) then begin
    section "Native wall-clock" "skipped: no C compiler on PATH\n";
    add_figure "native" (J.Assoc [ ("skipped", J.Bool true); ("rows", J.List []) ])
  end
  else begin
    let module NR = Fgv_bench.Native_rows in
    let rows, delta =
      Tm.capture (fun () -> NR.rows ~jobs:!jobs ())
    in
    section "Native wall-clock (cc -O2 -march=native)" (NR.table_of_rows rows);
    let geo fig f =
      let sel = List.filter (fun (r : NR.row) -> r.NR.nr_figure = fig) rows in
      if sel = [] then J.Null else J.Float (geomean f sel)
    in
    add_figure "native"
      (J.Assoc
         [
           ("skipped", J.Bool false);
           ( "rows",
             J.List
               (List.map
                  (fun (r : NR.row) ->
                    J.Assoc
                      [
                        ("figure", J.String r.NR.nr_figure);
                        ("kernel", J.String r.NR.nr_name);
                        ("model_speedup", J.Float r.NR.nr_model_speedup);
                        ("checksum_ok", J.Bool r.NR.nr_checksum_ok);
                        ( "timing",
                          J.Assoc
                            [
                              ("static_ns", J.Float r.NR.nr_static_ns);
                              ("versioned_ns", J.Float r.NR.nr_versioned_ns);
                              ( "native_speedup",
                                J.Float (NR.native_speedup r) );
                              ("static_reps", J.Int r.NR.nr_static_reps);
                              ( "versioned_reps",
                                J.Int r.NR.nr_versioned_reps );
                            ] );
                      ])
                  rows) );
           ( "timing",
             J.Assoc
               [
                 ( "geomean_native_speedup",
                   J.Assoc
                     [
                       ("fig19", geo "fig19" NR.native_speedup);
                       ("fig16", geo "fig16" NR.native_speedup);
                       ("fig22", geo "fig22" NR.native_speedup);
                     ] );
               ] );
           ( "geomean_model_speedup",
             J.Assoc
               [
                 ("fig19", geo "fig19" (fun r -> r.NR.nr_model_speedup));
                 ("fig16", geo "fig16" (fun r -> r.NR.nr_model_speedup));
                 ("fig22", geo "fig22" (fun r -> r.NR.nr_model_speedup));
               ] );
           ("counters", counters_json delta);
         ])
  end

(* ----------------------------------------------- compile-time figures *)

(* The compile-time lane times the compiler itself, not the generated
   code: the full sv_versioning pipeline (parse -> plan -> materialize ->
   condopt; interpretation excluded) over the paper's kernel suites plus
   seeded fuzz programs of growing size.  Wall time and minor-heap
   allocation land under a per-row "timing" object (stripped by the CI
   determinism diff); the telemetry counters — including
   depgraph.pairs_pruned and pred.hashcons_hits — are deterministic at
   any --jobs count and are what CI pins. *)

type ct_row = {
  ct_name : string;
  ct_wall_s : float;
  ct_minor_words : float;
  ct_counters : (string * int) list;
  ct_hists : (string * H.t) list;
      (* per-timer latency histograms the row's isolated shard captured *)
}

(* A lane row: a program source plus the pipeline it is compiled with
   (the suites time sv_versioning; the client rows time the new dse /
   distribute pipelines on their target kernels, without restrict so the
   versioning path actually runs). *)
type ct_spec = {
  cs_name : string;
  cs_source : string Lazy.t;
  cs_restrict : bool;
  cs_apply : Ir.func -> unit;
}

let ct_sv f = ignore (Fgv_passes.Pipelines.sv_versioning f)

(* Fuzz-program sources for the lane: deterministic in (size, seed),
   growing statement budgets so the dependence graphs get big. *)
let ct_fuzz_specs =
  List.map
    (fun (size, seed) ->
      {
        cs_name = Printf.sprintf "fuzz-s%d-%d" size seed;
        cs_source =
          lazy
            (G.render
               (G.generate
                  ~config:
                    { G.default_config with G.size; max_loop_depth = 3 }
                  ~seed ()));
        cs_restrict = true;
        cs_apply = ct_sv;
      })
    [ (30, 1); (60, 1); (120, 1); (240, 1); (240, 2); (480, 1) ]

let ct_kernel_specs () =
  List.map
    (fun (k : W.kernel) ->
      { cs_name = k.W.k_name; cs_source = lazy k.W.k_source;
        cs_restrict = true; cs_apply = ct_sv })
    (Fgv_bench.Tsvc.kernels @ Fgv_bench.Polybench.kernels
   @ Fgv_bench.Specfp.kernels)

let ct_client_specs () =
  List.map
    (fun (client, kname) ->
      let apply f =
        match client with
        | "dse" -> ignore (Fgv_passes.Pipelines.dse_pipeline f)
        | "distribute" -> ignore (Fgv_passes.Pipelines.distribute_pipeline f)
        | _ -> ignore (Fgv_passes.Pipelines.combined f)
      in
      {
        cs_name = kname ^ "+" ^ client;
        cs_source = lazy (E.tsvc_kernel kname).W.k_source;
        cs_restrict = false;
        cs_apply = apply;
      })
    [ ("dse", "s222"); ("distribute", "s2251"); ("combined", "s222") ]

let ct_run_row spec : ct_row =
  let src = Lazy.force spec.cs_source in
  (* an isolated registry (not a [capture] delta): per-row counters must
     not depend on what earlier rows left behind — a saturated running
     maximum would otherwise make the row's delta vary with the worker
     schedule *)
  let (wall, words), shard =
    Tm.isolated (fun () ->
        let m0 = Gc.minor_words () in
        let t0 = Unix.gettimeofday () in
        let f =
          if spec.cs_restrict then Fgv_frontend.Lower_ast.compile src
          else Fgv_frontend.Lower_ast.compile_no_restrict src
        in
        spec.cs_apply f;
        (Unix.gettimeofday () -. t0, Gc.minor_words () -. m0))
  in
  Tm.merge_shard shard;
  { ct_name = spec.cs_name; ct_wall_s = wall; ct_minor_words = words;
    ct_counters = Tm.shard_counters shard;
    ct_hists = Tm.shard_timer_histograms shard }

let run_compiletime () =
  Tr.with_span ~cat:"figure" "compiletime" @@ fun () ->
  let specs = ct_kernel_specs () @ ct_client_specs () @ ct_fuzz_specs in
  let rows, delta =
    Tm.capture (fun () -> Fgv_support.Pool.map ~jobs:!jobs ct_run_row specs)
  in
  let fuzz_rows =
    List.filter
      (fun r -> String.length r.ct_name > 4 && String.sub r.ct_name 0 4 = "fuzz")
      rows
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-18s %10s %14s %10s %10s\n" "program" "wall ms"
       "minor words" "pruned" "hc hits");
  let counter row n = try List.assoc n row.ct_counters with Not_found -> 0 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-18s %10.2f %14.0f %10d %10d\n" r.ct_name
           (r.ct_wall_s *. 1e3) r.ct_minor_words
           (counter r "depgraph.pairs_pruned")
           (counter r "pred.hashcons_hits")))
    rows;
  Buffer.add_string buf
    (Printf.sprintf "geomean wall: %.2f ms (all), %.2f ms (fuzz)\n"
       (1e3 *. geomean (fun r -> r.ct_wall_s) rows)
       (1e3 *. geomean (fun r -> r.ct_wall_s) fuzz_rows));
  section "Compile time (sv_versioning pipeline)" (Buffer.contents buf);
  add_figure "compiletime"
    (J.Assoc
       [
         ( "rows",
           J.List
             (List.map
                (fun r ->
                  J.Assoc
                    [
                      ("name", J.String r.ct_name);
                      ( "timing",
                        J.Assoc
                          [
                            ("wall_s", J.Float r.ct_wall_s);
                            ("minor_words", J.Float r.ct_minor_words);
                            ( "histograms",
                              J.Assoc
                                (List.map
                                   (fun (n, h) -> (n, H.to_json h))
                                   r.ct_hists) );
                          ] );
                      ("counters", counters_json r.ct_counters);
                    ])
                rows) );
         ( "timing",
           J.Assoc
             [
               ("geomean_wall_s", J.Float (geomean (fun r -> r.ct_wall_s) rows));
               ( "geomean_fuzz_wall_s",
                 J.Float (geomean (fun r -> r.ct_wall_s) fuzz_rows) );
             ] );
         ("counters", counters_json delta);
       ])

(* ------------------------------------------------- compile service lane *)

(* A repeat-heavy request mix against the compile service (lib/service):
   [svc_distinct] distinct kernels, each requested [svc_repeats] times
   round-robin, driven request-by-request twice over the same service.
   The first pass measures the cold cache (every distinct kernel misses
   once), the second pass is all hits — their wall-clock ratio is the
   cache's warmup speedup.  Latencies land under "timing" (CI strips
   them when diffing --jobs runs); the hit/miss/eviction accounting is
   deterministic and diffable. *)
let svc_distinct = 16

let svc_repeats = 4

let svc_requests () =
  let pipes = [ "o3"; "sv+v"; "dse"; "combined" ] in
  let mk i =
    let src =
      Printf.sprintf
        "kernel bench%d(float* restrict a, float* restrict b, int n) { for \
         (int i = 0; i < n; i = i + 1) { a[i] = b[i] * %d.0 + %d.0; } }"
        i (i + 1) i
    in
    {
      Fgv_service.Protocol.rq_id = Printf.sprintf "r%d" i;
      rq_source = src;
      rq_pipeline = List.nth pipes (i mod List.length pipes);
      rq_no_restrict = false;
      rq_emit_c = false;
      rq_heap = Fgv_service.Protocol.default_heap;
    }
  in
  let distinct = List.init svc_distinct mk in
  List.concat (List.init svc_repeats (fun _ -> distinct))

let run_service () =
  Tr.with_span ~cat:"figure" "service" @@ fun () ->
  let module S = Fgv_service.Service in
  let reqs = svc_requests () in
  (* Client-side view: one log-bucketed histogram over every request's
     round-trip latency (lib/support/histogram.ml) — quantiles and the
     bucket counts the JSON figure carries both come from it. *)
  let lat = H.create () in
  let (svc, cold_wall, warm_wall), delta =
    Tm.capture (fun () ->
        let svc = S.create ~jobs:!jobs () in
        let drive () =
          let t0 = Unix.gettimeofday () in
          List.iter
            (fun rq ->
              let r0 = Unix.gettimeofday () in
              ignore (S.handle_request svc rq);
              H.record lat (Unix.gettimeofday () -. r0))
            reqs;
          Unix.gettimeofday () -. t0
        in
        let cold_wall = drive () in
        let warm_wall = drive () in
        (svc, cold_wall, warm_wall))
  in
  let requests = svc.S.requests in
  let hit_rate = float_of_int svc.S.hits /. float_of_int requests in
  let p50 = H.quantile lat 0.5 and p99 = H.quantile lat 0.99 in
  let speedup = cold_wall /. warm_wall in
  section "Compile service (repeat-heavy mix)"
    (Printf.sprintf
       "%d requests (%d distinct, %d requests each over 2 passes): %d \
        hits, %d misses -> hit rate %.3f\n\
        latency p50 %.2f us, p99 %.2f us; cold pass %.1f ms, warm pass \
        %.1f ms -> warmup speedup %.1fx\n"
       requests svc_distinct (2 * svc_repeats) svc.S.hits svc.S.misses
       hit_rate (1e6 *. p50) (1e6 *. p99) (1e3 *. cold_wall)
       (1e3 *. warm_wall) speedup);
  add_figure "service"
    (J.Assoc
       [
         ("requests", J.Int requests);
         ("distinct", J.Int svc_distinct);
         ("hits", J.Int svc.S.hits);
         ("misses", J.Int svc.S.misses);
         ("coalesced", J.Int svc.S.coalesced);
         ("evictions", J.Int (Fgv_service.Cache.evictions svc.S.cache));
         ("hit_rate", J.Float hit_rate);
         ( "timing",
           J.Assoc
             [
               ("cold_wall_s", J.Float cold_wall);
               ("warm_wall_s", J.Float warm_wall);
               ("warmup_speedup", J.Float speedup);
               ("p50_s", J.Float p50);
               ("p99_s", J.Float p99);
               ("latency", H.to_json lat);
             ] );
         ("counters", counters_json delta);
       ])

(* ------------------------------------------------ incremental lane *)

(* Edit-aware recompilation (DESIGN §17): one translation unit holding
   [inc_kernels] kernels is compiled cold, then recompiled once per
   round with exactly one kernel textually edited.  Per-kernel sub-keys
   make every untouched kernel hit the artifact cache, so the warm
   rounds' wall clock is ~1/[inc_kernels] of the cold compile; the lane
   reports the measured speedup, the unit reuse rate, and whether every
   incremental response is byte-identical to a fresh cold service
   compiling the same edited source (the determinism contract).  Timing
   runs against a jobs:1 service so cold/warm compare like-for-like;
   the byte-identity reference service uses --jobs, which doubles as a
   cross-jobs determinism check. *)
let inc_kernels = 16

let inc_rounds = 4

let inc_kernel_src i v =
  Printf.sprintf
    "kernel inc%d(float* restrict a, float* restrict b, int n) { for (int \
     i = 0; i < n; i = i + 1) { a[i] = b[i] * %d.0 + %d.0; } }"
    i (i + 1 + (100 * v)) i

let inc_source (versions : int array) : string =
  String.concat "\n"
    (List.init inc_kernels (fun i -> inc_kernel_src i versions.(i)))

let run_incremental () =
  Tr.with_span ~cat:"figure" "incremental" @@ fun () ->
  let module S = Fgv_service.Service in
  let module P = Fgv_service.Protocol in
  let request src =
    {
      P.rq_id = "inc";
      rq_source = src;
      rq_pipeline = "sv+v";
      rq_no_restrict = false;
      rq_emit_c = false;
      rq_heap = P.default_heap;
    }
  in
  let (svc, sources, responses, cold_wall, warm_walls), delta =
    Tm.capture (fun () ->
        let svc = S.create ~jobs:1 () in
        let versions = Array.make inc_kernels 0 in
        let drive src =
          let t0 = Unix.gettimeofday () in
          let resp = P.response_line (S.handle_request svc (request src)) in
          (resp, Unix.gettimeofday () -. t0)
        in
        let src0 = inc_source versions in
        let resp0, cold_wall = drive src0 in
        let rounds =
          List.init inc_rounds (fun r ->
              let k = r mod inc_kernels in
              versions.(k) <- versions.(k) + 1;
              let src = inc_source versions in
              let resp, wall = drive src in
              (src, resp, wall))
        in
        ( svc,
          src0 :: List.map (fun (s, _, _) -> s) rounds,
          resp0 :: List.map (fun (_, r, _) -> r) rounds,
          cold_wall,
          List.map (fun (_, _, w) -> w) rounds ))
  in
  (* determinism: every incremental response byte-equals a fresh cold
     service's answer for the same source (cache state must never leak
     into response bytes), across job counts *)
  let byte_identical =
    List.for_all2
      (fun src resp ->
        let fresh = S.create ~jobs:!jobs () in
        P.response_line (S.handle_request fresh (request src)) = resp)
      sources responses
  in
  let warm_wall =
    List.fold_left ( +. ) 0.0 warm_walls
    /. float_of_int (max 1 (List.length warm_walls))
  in
  let speedup = cold_wall /. warm_wall in
  let reuse =
    if svc.S.uqueries = 0 then 0.0
    else float_of_int svc.S.uhits /. float_of_int svc.S.uqueries
  in
  section "Incremental recompilation (edit one kernel per round)"
    (Printf.sprintf
       "%d kernels, %d edit rounds: %d unit queries, %d memo hits, %d \
        invalidated, %d recompiled -> reuse rate %.3f\n\
        cold %.1f ms, warm mean %.1f ms -> warm speedup %.1fx; byte-identical \
        vs fresh: %b\n"
       inc_kernels inc_rounds svc.S.uqueries svc.S.uhits svc.S.uinvalidated
       svc.S.urecomputed reuse (1e3 *. cold_wall) (1e3 *. warm_wall) speedup
       byte_identical);
  add_figure "incremental"
    (J.Assoc
       [
         ("kernels", J.Int inc_kernels);
         ("rounds", J.Int inc_rounds);
         ("queries_asked", J.Int svc.S.uqueries);
         ("memo_hits", J.Int svc.S.uhits);
         ("invalidated", J.Int svc.S.uinvalidated);
         ("recomputed", J.Int svc.S.urecomputed);
         ("reuse_rate", J.Float reuse);
         ("byte_identical", J.Bool byte_identical);
         ( "timing",
           J.Assoc
             [
               ("cold_wall_s", J.Float cold_wall);
               ("warm_wall_s", J.Float warm_wall);
               ("warm_speedup", J.Float speedup);
             ] );
         ("counters", counters_json delta);
       ])

let write_json file =
  let doc =
    J.Assoc
      [
        ("schema_version", J.Int Fgv_support.Version.bench_json_schema);
        ("suite", J.String "fgv-bench");
        ("jobs", J.Int !jobs);
        ("figures", J.Assoc (List.rev !json_figures));
        ("telemetry", Tm.snapshot ());
      ]
  in
  let oc = open_out file in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" file

(* --------------------------------------------------------------- main *)

let usage () =
  Printf.eprintf
    "usage: main.exe [fig16|fig19|fig22|clients|s258|ablation-mincut|\
     ablation-condopt|compiletime|native|service|incremental|wallclock|all]... \
     [--json FILE] [--jobs N] [--trace FILE]\n";
  exit 1

let () =
  let rec parse sel json = function
    | [] -> (List.rev sel, json)
    | "--json" :: file :: rest -> parse sel (Some file) rest
    | [ "--json" ] ->
      Printf.eprintf "--json requires a file argument\n";
      exit 1
    | "--trace" :: file :: rest ->
      trace_file := Some file;
      Tr.set_spans true;
      parse sel json rest
    | [ "--trace" ] ->
      Printf.eprintf "--trace requires a file argument\n";
      exit 1
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j > 0 ->
        jobs := j;
        parse sel json rest
      | _ ->
        Printf.eprintf "--jobs requires a positive integer\n";
        exit 1)
    | [ "--jobs" ] ->
      Printf.eprintf "--jobs requires a positive integer argument\n";
      exit 1
    | a :: rest -> parse (a :: sel) json rest
  in
  jobs := Fgv_support.Pool.default_jobs ();
  let sel, json_file = parse [] None (List.tl (Array.to_list Sys.argv)) in
  let sel = if sel = [] then [ "all" ] else sel in
  let run_s258 () =
    section "E4 / s258 speculation" (E.s258_speculation ~jobs:!jobs ())
  in
  let run_a1 () =
    section "A1 / min-cut ablation" (E.ablation_mincut ~jobs:!jobs ())
  in
  let run_a2 () =
    section "A2 / condition-optimization ablation"
      (E.ablation_condopt ~jobs:!jobs ())
  in
  let run_one = function
    | "fig19" | "tsvc" -> run_fig19 ()
    | "fig16" | "polybench" -> run_fig16 ()
    | "fig22" | "rle" | "specfp" -> run_fig22 ()
    | "clients" | "dse" | "distribute" -> run_clients ()
    | "s258" -> run_s258 ()
    | "ablation-mincut" -> run_a1 ()
    | "ablation-condopt" -> run_a2 ()
    | "compiletime" -> run_compiletime ()
    | "native" -> run_native ()
    | "service" -> run_service ()
    | "incremental" -> run_incremental ()
    | "wallclock" -> wallclock ()
    | "all" ->
      run_fig19 ();
      run_fig16 ();
      run_fig22 ();
      run_clients ();
      run_s258 ();
      run_a1 ();
      run_a2 ();
      run_compiletime ();
      run_native ();
      run_service ();
      run_incremental ();
      section "Wall-clock sanity (Bechamel)" "";
      wallclock ()
    | other ->
      Printf.eprintf "unknown table %s\n" other;
      usage ()
  in
  List.iter run_one sel;
  Option.iter write_json json_file;
  Option.iter
    (fun file ->
      Tr.write_chrome_trace file;
      Printf.printf "wrote %s\n%!" file)
    !trace_file
