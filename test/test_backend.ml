(* Native backend tests: pinned integer semantics, golden C output,
   compile-and-run equivalence against the CFG interpreter, trap
   fidelity, and determinism of the bench lane's native rows.

   Everything that needs a C compiler skips (with a message) when the
   host has none; the Intsem and golden-output groups run everywhere. *)

open Fgv_pssa
module W = Fgv_bench.Workload
module N = Fgv_backend.Native
module NR = Fgv_bench.Native_rows

let require_cc () =
  if not (N.available ()) then begin
    print_endline "skipping: no C compiler on PATH (set FGV_CC)";
    Alcotest.skip ()
  end

(* ------------------------------------------------- Intsem pinning --- *)

(* The portable integer semantics every evaluator (both interpreters,
   the constant folder, the C backend) must share.  These tests pin the
   OCaml reference; the native groups below check the C transliteration
   against it end-to-end. *)

let test_intsem_wrap () =
  Alcotest.(check int) "bits" 63 Intsem.bits;
  Alcotest.(check int) "add wraps" min_int (Intsem.add max_int 1);
  Alcotest.(check int) "sub wraps" max_int (Intsem.sub min_int 1);
  Alcotest.(check int) "mul wraps" min_int (Intsem.mul min_int (-1));
  Alcotest.(check int) "wrap is identity in range" 42 (Intsem.wrap 42)

let test_intsem_divrem () =
  Alcotest.(check int) "div truncates toward zero" (-3) (Intsem.div (-7) 2);
  Alcotest.(check int) "div truncates toward zero" (-3) (Intsem.div 7 (-2));
  Alcotest.(check int) "rem takes dividend sign" (-1) (Intsem.rem (-7) 2);
  Alcotest.(check int) "rem takes dividend sign" 1 (Intsem.rem 7 (-2));
  Alcotest.(check int) "min_int / -1 wraps" min_int (Intsem.div min_int (-1))

let test_intsem_of_float () =
  Alcotest.(check int) "truncates toward zero" (-2) (Intsem.of_float (-2.9));
  Alcotest.(check int) "truncates toward zero" 2 (Intsem.of_float 2.9);
  Alcotest.(check int) "NaN is 0" 0 (Intsem.of_float Float.nan);
  Alcotest.(check int) "+inf is 0" 0 (Intsem.of_float Float.infinity);
  Alcotest.(check int) "-inf is 0" 0 (Intsem.of_float Float.neg_infinity);
  Alcotest.(check int) "2^63 is out of range" 0 (Intsem.of_float Intsem.two63);
  (* -2^63 is IN 64-bit range; Int64.to_int drops the top bit -> 0 *)
  Alcotest.(check int) "-2^63 wraps to 0" 0 (Intsem.of_float (-.Intsem.two63));
  Alcotest.(check int) "exact large value" 1_000_000_000_000_000_000
    (Intsem.of_float 1e18)

let test_intsem_fminmax () =
  Alcotest.(check bool) "fmin keeps NaN" true
    (Float.is_nan (Intsem.fmin Float.nan 1.0));
  Alcotest.(check bool) "fmax keeps NaN" true
    (Float.is_nan (Intsem.fmax 1.0 Float.nan));
  Alcotest.(check bool) "fmin prefers -0." true
    (1.0 /. Intsem.fmin (-0.) 0. = Float.neg_infinity);
  Alcotest.(check bool) "fmax prefers +0." true
    (1.0 /. Intsem.fmax (-0.) 0. = Float.infinity);
  Alcotest.(check (float 0.)) "plain min" 1.0 (Intsem.fmin 2.0 1.0);
  Alcotest.(check (float 0.)) "plain max" 2.0 (Intsem.fmax 2.0 1.0)

(* --------------------------------------------------- golden output -- *)

let tsvc name = List.find (fun k -> k.W.k_name = name) Fgv_bench.Tsvc.kernels
let poly name =
  List.find (fun k -> k.W.k_name = name) Fgv_bench.Polybench.kernels
let spec name = List.find (fun k -> k.W.k_name = name) Fgv_bench.Specfp.kernels

(* The fast-mode C for s131 under sv+versioning, compared byte-for-byte
   against the checked-in golden file.  Emission order is fully
   deterministic (sorted declarations, creation-order blocks, baked
   arguments and memory), so any diff is a deliberate emitter change:
   regenerate with
   [dune exec test/gen_golden.exe > test/golden_s131.c] and review the
   diff. *)
let s131_fast_c () =
  let k = tsvc "s131" in
  let cfgn = W.sv_versioning () in
  let f = W.compile_for cfgn k in
  ignore (cfgn.W.c_apply f);
  let prog = Fgv_cfg.Lower.lower f in
  Fgv_backend.Emit.fast prog ~args:k.W.k_args ~mem:(W.fresh_mem k)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_s131 () =
  let got = s131_fast_c () in
  (* dune runtest runs us in test/'s build dir (where the dep is
     staged); a bare [dune exec test/test_main.exe] runs from the repo
     root *)
  let path =
    if Sys.file_exists "golden_s131.c" then "golden_s131.c"
    else "test/golden_s131.c"
  in
  let want = read_file path in
  if got <> want then begin
    (* a plain string check would dump both multi-KB files; report the
       first differing line instead *)
    let gl = String.split_on_char '\n' got in
    let wl = String.split_on_char '\n' want in
    let rec first_diff i = function
      | g :: gs, w :: ws ->
        if g <> w then Alcotest.failf "line %d differs:\n got: %s\nwant: %s" i g w
        else first_diff (i + 1) (gs, ws)
      | [], w :: _ -> Alcotest.failf "golden has extra line %d: %s" i w
      | g :: _, [] -> Alcotest.failf "emitted extra line %d: %s" i g
      | [], [] -> ()
    in
    first_diff 1 (gl, wl);
    Alcotest.fail "files differ but no line does (impossible)"
  end

(* ---------------------------------------- checked-run equivalence --- *)

let check_obs_equiv name (obs : N.obs) (iout : Fgv_cfg.Cinterp.outcome) =
  Alcotest.(check string)
    (name ^ " class") "ok"
    (N.nclass_string obs.N.n_class);
  Alcotest.(check int)
    (name ^ " memory size")
    (Array.length iout.Fgv_cfg.Cinterp.memory)
    (Array.length obs.N.n_mem);
  Array.iteri
    (fun i v ->
      if not (Value.equal v iout.Fgv_cfg.Cinterp.memory.(i)) then
        Alcotest.failf "%s mem[%d]: native %s, interp %s" name i
          (Value.to_string v)
          (Value.to_string iout.Fgv_cfg.Cinterp.memory.(i)))
    obs.N.n_mem;
  Alcotest.(check int)
    (name ^ " trace length")
    (List.length iout.Fgv_cfg.Cinterp.call_trace)
    (List.length obs.N.n_trace);
  List.iter2
    (fun (n1, a1) (n2, a2) ->
      Alcotest.(check string) (name ^ " callee") n2 n1;
      if
        List.length a1 <> List.length a2
        || not (List.for_all2 Value.equal a1 a2)
      then Alcotest.failf "%s trace args differ for %s" name n1)
    obs.N.n_trace iout.Fgv_cfg.Cinterp.call_trace

(* Compile [k] under sv+versioning, run the checked native binary, and
   demand exact agreement (class, every memory cell bit-for-bit, full
   impure-call trace) with the CFG interpreter. *)
let checked_equiv (k : W.kernel) () =
  require_cc ();
  let cfgn = W.sv_versioning () in
  let f = W.compile_for cfgn k in
  ignore (cfgn.W.c_apply f);
  let prog = Fgv_cfg.Lower.lower f in
  let iout = Fgv_cfg.Cinterp.run prog ~args:k.W.k_args ~mem:(W.fresh_mem k) in
  match N.compile_checked prog ~mem:(W.fresh_mem k) with
  | Error e -> Alcotest.failf "%s: native compile failed: %s" k.W.k_name e
  | Ok c ->
    let res = N.run_checked c ~args:k.W.k_args in
    N.release c;
    (match res with
    | Error e -> Alcotest.failf "%s: native run failed: %s" k.W.k_name e
    | Ok obs -> check_obs_equiv k.W.k_name obs iout)

(* ------------------------------------------------------ trap paths -- *)

(* An out-of-bounds store must be a *typed* trap on both sides: the
   interpreter raises Value.Trap, and the emitted C hits the same
   bounds check and reports class "trap" — never C-level undefined
   behaviour that scribbles past the heap. *)
let test_native_oob_trap () =
  require_cc ();
  let source = "kernel oob(float *a, int n) { a[n] = 1.0; }" in
  let f = Fgv_frontend.Lower_ast.compile_no_restrict source in
  let prog = Fgv_cfg.Lower.lower f in
  let heap = 8 in
  let mem () = Array.init heap (fun _ -> Value.VFloat 0.0) in
  let args = [ Value.VInt 0; Value.VInt heap ] in
  (* address [heap] is one past the end *)
  (match Fgv_cfg.Cinterp.run prog ~args ~mem:(mem ()) with
  | _ -> Alcotest.fail "interpreter did not trap on OOB store"
  | exception Value.Trap _ -> ());
  match N.compile_checked prog ~mem:(mem ()) with
  | Error e -> Alcotest.failf "native compile failed: %s" e
  | Ok c ->
    let res = N.run_checked c ~args in
    N.release c;
    (match res with
    | Error e -> Alcotest.failf "native run failed: %s" e
    | Ok obs ->
      Alcotest.(check string) "native class" "trap"
        (N.nclass_string obs.N.n_class))

(* --------------------------------------------- bench-lane fingerprint *)

(* The native bench rows must be deterministic in everything except the
   wall-clock numbers: the same kernels, model speedups, and checksum
   verdicts at any job count.  (The timing fields live under "timing"
   keys in the JSON exactly so CI can strip them and byte-compare.) *)
let row_fingerprint (r : NR.row) =
  Printf.sprintf "%s|%s|%.9f|%b" r.NR.nr_figure r.NR.nr_name
    r.NR.nr_model_speedup r.NR.nr_checksum_ok

let test_native_rows_jobs_deterministic () =
  require_cc ();
  let kernels = [ "s000"; "s131" ] in
  let fp jobs =
    String.concat "\n" (List.map row_fingerprint (NR.rows ~kernels ~jobs ()))
  in
  let one = fp 1 in
  let four = fp 4 in
  Alcotest.(check string) "rows agree across job counts" one four;
  Alcotest.(check int) "two rows" 2
    (List.length (String.split_on_char '\n' one))

let suite =
  [
    Alcotest.test_case "intsem: 63-bit wraparound" `Quick test_intsem_wrap;
    Alcotest.test_case "intsem: div/rem truncate toward zero" `Quick
      test_intsem_divrem;
    Alcotest.test_case "intsem: float-to-int cast" `Quick test_intsem_of_float;
    Alcotest.test_case "intsem: fmin/fmax NaN and signed zero" `Quick
      test_intsem_fminmax;
    Alcotest.test_case "golden fast-mode C for s131" `Quick test_golden_s131;
    Alcotest.test_case "checked run equals interpreter: s131" `Slow
      (checked_equiv (tsvc "s131"));
    Alcotest.test_case "checked run equals interpreter: floyd-warshall" `Slow
      (checked_equiv (poly "floyd-warshall"));
    Alcotest.test_case "checked run equals interpreter: lbm_r" `Slow
      (checked_equiv (spec "lbm_r"));
    Alcotest.test_case "out-of-bounds store traps natively" `Slow
      test_native_oob_trap;
    Alcotest.test_case "native bench rows deterministic across jobs" `Slow
      test_native_rows_jobs_deterministic;
  ]
