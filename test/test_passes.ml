(* Pass and pipeline tests.

   The master property: every pipeline preserves observational behaviour
   (final memory + external call trace) on every kernel and input.  On
   top of that, targeted tests check that the transformations actually
   fire: SLP emits vector stores, versioning enables vectorization that
   static SLP rejects, RLE removes dynamic loads, etc. *)

open Fgv_pssa
open Harness
module P = Fgv_passes

let saxpy_src =
  {|
  kernel saxpy(float* a, float* b, float* c, int n, float x) {
    for (int i = 0; i < n; i = i + 1) {
      a[i] = x * b[i] + c[i];
    }
  }
|}

let sum_src =
  {|
  kernel sum(float* a, float* out, int n) {
    float s = 0.0;
    for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }
    out[0] = s;
  }
|}

let s281_src =
  {|
  kernel s281(float* a, float* b, float* c, int n) {
    for (int i = 0; i < n; i = i + 1) {
      float x = a[n - i - 1] + b[i] * c[i];
      a[i] = x - 1.0;
      b[i] = x;
    }
  }
|}

let s258_src =
  {|
  kernel s258(float* a, float* b, float* c, float* d, float* e, float* aa, int n) {
    float s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
      if (a[i] > 0.0) { s = d[i] * d[i]; }
      b[i] = s * c[i] + d[i];
      e[i] = (s + 1.0) * aa[i];
    }
  }
|}

let fw_src =
  {|
  kernel floyd(float* path, int n) {
    for (int k = 0; k < n; k = k + 1) {
      for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
          float alt = path[i * n + k] + path[k * n + j];
          path[i * n + j] = path[i * n + j] < alt ? path[i * n + j] : alt;
        }
      }
    }
  }
|}

let redundant_loads_src =
  {|
  kernel reload(float* a, float* b, float* out, int n) {
    for (int i = 0; i < n; i = i + 1) {
      float x = a[0];
      b[i] = x * 2.0;
      float y = a[0];
      out[i] = y + x;
    }
  }
|}

(* (name, source, argument sets, heap size) *)
let kernels =
  [
    ("saxpy disjoint", saxpy_src,
     [ [ Value.VInt 0; VInt 32; VInt 64; VInt 13; VFloat 2.5 ];
       [ VInt 0; VInt 32; VInt 64; VInt 0; VFloat 2.5 ];
       [ VInt 0; VInt 32; VInt 64; VInt 4; VFloat 2.5 ] ], 128);
    ("saxpy aliased", saxpy_src,
     [ [ Value.VInt 0; VInt 1; VInt 2; VInt 13; VFloat 1.5 ];
       [ VInt 4; VInt 4; VInt 4; VInt 8; VFloat 0.5 ] ], 128);
    ("sum", sum_src, [ ints [ 0; 100; 17 ]; ints [ 0; 100; 3 ] ], 128);
    ("s281", s281_src,
     [ ints [ 0; 40; 80; 12 ]; ints [ 0; 40; 80; 5 ] ], 128);
    ("s258", s258_src,
     [ ints [ 0; 16; 32; 48; 64; 80; 12 ] ], 128);
    ("floyd-warshall", fw_src, [ ints [ 0; 5 ]; ints [ 0; 4 ] ], 128);
    ("redundant loads", redundant_loads_src,
     [ ints [ 0; 8; 40; 8 ]; ints [ 0; 1; 40; 8 ] ], 128);
  ]

let mem_for size = float_mem size (fun i -> Float.of_int ((i * 13 mod 29) - 7) *. 0.5)

let pipelines : (string * (Ir.func -> unit)) list =
  [
    ("o3_novec", fun f -> ignore (P.Pipelines.o3_novec f));
    ("o3", fun f -> ignore (P.Pipelines.o3 f));
    ("sv", fun f -> ignore (P.Pipelines.sv f));
    ("sv+versioning", fun f -> ignore (P.Pipelines.sv_versioning f));
    ("sv+versioning nopromo",
     fun f -> ignore (P.Pipelines.sv_versioning ~promotion:false f));
    ("rle", fun f -> ignore (P.Pipelines.rle_pipeline f));
    ("rle static", fun f -> ignore (P.Pipelines.rle_pipeline ~versioning:false f));
  ]

let test_pipelines_preserve_semantics () =
  List.iter
    (fun (kname, src, arg_sets, size) ->
      let reference = compile src in
      List.iter
        (fun (pname, pipeline) ->
          let f = compile src in
          pipeline f;
          (match Verifier.verify_or_message f with
          | None -> ()
          | Some msg ->
            Alcotest.failf "%s on %s: ill-formed IR: %s" pname kname msg);
          List.iter
            (fun args ->
              let mem = mem_for size in
              let a = run_pssa reference ~args ~mem in
              let b = run_pssa f ~args ~mem in
              if not (Interp.equivalent a b) then
                Alcotest.failf "%s changed behaviour of %s" pname kname)
            arg_sets)
        pipelines)
    kernels

let test_pipelines_preserve_semantics_cfg () =
  (* the optimized program must also survive CFG lowering *)
  List.iter
    (fun (kname, src, arg_sets, size) ->
      let reference = compile src in
      let f = compile src in
      ignore (P.Pipelines.sv_versioning f);
      List.iter
        (fun args ->
          let mem = mem_for size in
          let a = run_pssa reference ~args ~mem in
          let b = run_cfg f ~args ~mem in
          if not (cross_equivalent a b) then
            Alcotest.failf "CFG of sv_versioning(%s) differs" kname)
        arg_sets)
    kernels

let test_unroll_trips () =
  let f0 = compile sum_src in
  List.iter
    (fun n ->
      let f = compile sum_src in
      let unrolled = P.Unroll.run ~factor:4 f in
      Alcotest.(check int) "one loop unrolled" 1 unrolled;
      (match Verifier.verify_or_message f with
      | None -> ()
      | Some m -> Alcotest.failf "unroll broke IR: %s" m);
      let mem = mem_for 64 in
      let a = run_pssa f0 ~args:(ints [ 0; 40; n ]) ~mem in
      let b = run_pssa f ~args:(ints [ 0; 40; n ]) ~mem in
      if not (Interp.equivalent a b) then
        Alcotest.failf "unroll changed behaviour at trip %d" n)
    [ 0; 1; 3; 4; 5; 8; 17 ]

let test_slp_vectorizes_disjoint () =
  (* restrict-qualified saxpy: static SLP alone should vectorize *)
  let src =
    {|
    kernel saxpy(float* restrict a, float* restrict b, float* restrict c, int n, float x) {
      for (int i = 0; i < n; i = i + 1) { a[i] = x * b[i] + c[i]; }
    }
  |}
  in
  let f = compile src in
  ignore (P.Pipelines.sv f);
  let mem = mem_for 128 in
  let out = run_pssa f ~args:[ VInt 0; VInt 32; VInt 64; VInt 16; VFloat 2.0 ] ~mem in
  Alcotest.(check bool) "vector stores executed" true
    (out.counters.vector_stores > 0)

let test_versioning_beats_static_slp () =
  (* without restrict, static SLP must reject (may-alias crossers), while
     versioning vectorizes with run-time checks *)
  let f_static = compile saxpy_src in
  ignore (P.Pipelines.sv f_static);
  let f_versioned = compile saxpy_src in
  ignore (P.Pipelines.sv_versioning f_versioned);
  let args = [ Value.VInt 0; VInt 32; VInt 64; VInt 16; VFloat 2.0 ] in
  let out_s = run_pssa f_static ~args ~mem:(mem_for 128) in
  let out_v = run_pssa f_versioned ~args ~mem:(mem_for 128) in
  Alcotest.(check int) "static SLP cannot vectorize may-alias saxpy" 0
    out_s.counters.vector_stores;
  Alcotest.(check bool) "versioned SLP vectorizes it" true
    (out_v.counters.vector_stores > 0)

let test_loopvec_classic () =
  (* the classic loop vectorizer handles may-alias saxpy with upfront
     checks *)
  let f = compile saxpy_src in
  let stats = ignore (P.Pipelines.o3_novec f); P.Loopvec.run f in
  Alcotest.(check int) "one loop vectorized" 1 stats.P.Loopvec.loops_vectorized;
  let args = [ Value.VInt 0; VInt 32; VInt 64; VInt 16; VFloat 2.0 ] in
  let out = run_pssa f ~args ~mem:(mem_for 128) in
  Alcotest.(check bool) "vector stores" true (out.counters.vector_stores > 0);
  (* aliased inputs fall back to the scalar clone *)
  let out2 = run_pssa f ~args:[ VInt 0; VInt 1; VInt 2; VInt 16; VFloat 2.0 ] ~mem:(mem_for 128) in
  Alcotest.(check int) "aliased: no vector stores" 0 out2.counters.vector_stores

let test_loopvec_rejects_floyd () =
  (* classic loop versioning cannot handle the in-place update pattern:
     the upfront whole-range checks always fail (the read and written
     rows overlap whenever i = k, and path[i][k] always falls in the
     written row's window), so the vector body never executes *)
  let f = compile fw_src in
  ignore (P.Pipelines.o3_novec f);
  ignore (P.Loopvec.run f);
  let out = run_pssa f ~args:(ints [ 0; 8 ]) ~mem:(mem_for 128) in
  Alcotest.(check int) "floyd-warshall never runs vector code" 0
    out.counters.vector_stores

let test_sv_versioning_vectorizes_floyd () =
  let f = compile fw_src in
  ignore (P.Pipelines.sv_versioning f);
  let out = run_pssa f ~args:(ints [ 0; 8 ]) ~mem:(mem_for 128) in
  Alcotest.(check bool) "floyd-warshall vectorized with versioning" true
    (out.counters.vector_stores > 0)

let test_rle_removes_loads () =
  let f_base = compile redundant_loads_src in
  ignore (P.Pipelines.rle_baseline f_base);
  let f_rle = compile redundant_loads_src in
  ignore (P.Pipelines.rle_pipeline f_rle);
  let args = ints [ 0; 8; 40; 8 ] in
  let out_base = run_pssa f_base ~args ~mem:(mem_for 64) in
  let out_rle = run_pssa f_rle ~args ~mem:(mem_for 64) in
  Alcotest.(check bool)
    (Printf.sprintf "fewer dynamic loads (%d -> %d)" out_base.counters.loads
       out_rle.counters.loads)
    true
    (out_rle.counters.loads < out_base.counters.loads)

let test_dce_removes_dead () =
  let f = compile "kernel dead(float* a) { float x = 1.0 + 2.0; a[0] = 3.0; }" in
  let n = P.Dce.run f in
  Alcotest.(check bool) "removed something" true (n > 0);
  (match Verifier.verify_or_message f with
  | None -> ()
  | Some m -> Alcotest.failf "DCE broke IR: %s" m)

let test_constfold () =
  let f = compile "kernel cf(float* a) { int i = 2 * 3 + 1; a[i] = 4.0; }" in
  ignore (P.Constfold.run f);
  ignore (P.Dce.run f);
  let out = run_pssa f ~args:(ints [ 0 ]) ~mem:(mem_for 16) in
  Alcotest.(check (float 1e-9)) "a[7]" 4.0 (float_at out.memory 7)

let test_gvn_dedups () =
  let f =
    compile
      {|
      kernel g(float* a, float* b) {
        float x = a[0] * 2.0;
        float y = a[0] * 2.0;
        b[0] = x + y;
      }
    |}
  in
  let n = P.Gvn.run f in
  Alcotest.(check bool) "gvn found redundancy" true (n > 0);
  ignore (P.Dce.run f);
  let out = run_pssa f ~args:(ints [ 0; 4 ]) ~mem:(float_mem 8 (fun _ -> 3.0)) in
  Alcotest.(check (float 1e-9)) "b[0]" 12.0 (float_at out.memory 4)

let test_licm_hoists () =
  let f =
    compile
      {|
      kernel l(float* a, int n, float x) {
        for (int i = 0; i < n; i = i + 1) { a[i] = x * x; }
      }
    |}
  in
  let n = P.Licm.run f in
  Alcotest.(check bool) "hoisted the multiply" true (n > 0);
  let out = run_pssa f ~args:[ VInt 0; VInt 5; VFloat 3.0 ] ~mem:(mem_for 16) in
  Alcotest.(check (float 1e-9)) "a[4]" 9.0 (float_at out.memory 4)

(* -------------------------------------------- LICM x predicated code *)

(* After if-conversion the branch bodies live in the loop as predicated
   instructions; LICM must still hoist the invariant ones (predicate
   included) and leave the rest alone. *)

let test_licm_hoists_ifconverted_invariant () =
  let f =
    compile
      {|
      kernel lp(float* a, float* b, int n, float x) {
        for (int i = 0; i < n; i = i + 1) {
          if (x > 0.0) { a[i] = x * x; } else { a[i] = b[i]; }
        }
      }
    |}
  in
  let converted = P.Ifconv.run f in
  Alcotest.(check bool) "if-converted" true (converted > 0);
  let n = P.Licm.run f in
  (* both the compare and the predicated multiply are invariant; the
     multiply's predicate literal is the hoisted compare, so it goes out
     on the second sweep *)
  Alcotest.(check bool) "hoisted compare and multiply" true (n >= 2);
  (match Verifier.verify_or_message f with
  | None -> ()
  | Some m -> Alcotest.failf "LICM after ifconv broke IR: %s" m);
  let out =
    run_pssa f ~args:[ VInt 0; VInt 8; VInt 5; VFloat 3.0 ] ~mem:(mem_for 16)
  in
  Alcotest.(check (float 1e-9)) "then-branch a[4]" 9.0 (float_at out.memory 4);
  let out =
    run_pssa f
      ~args:[ VInt 0; VInt 8; VInt 5; VFloat (-1.0) ]
      ~mem:(float_mem 16 (fun i -> float_of_int i))
  in
  Alcotest.(check (float 1e-9)) "else-branch a[3]" 11.0 (float_at out.memory 3)

let rec items_contain_kind f pred items =
  List.exists
    (fun it ->
      match it with
      | Ir.I v -> pred (Ir.inst f v).Ir.kind
      | Ir.L lid -> items_contain_kind f pred (Ir.loop f lid).Ir.body)
    items

let loops_of f = List.filter (function Ir.L _ -> true | _ -> false) f.Ir.fbody

let test_licm_variant_predicate_needs_speculation () =
  (* the multiply's data operands are invariant but its predicate is
     computed from a[i] inside the loop; predicate literals count as
     operands, so LICM alone must leave it in place.  If-conversion is
     the missing speculation step: once the predicate is dropped, the
     same multiply hoists. *)
  let src =
    {|
      kernel lv(float* a, float* b, int n, float x) {
        for (int i = 0; i < n; i = i + 1) {
          if (a[i] > 0.0) { b[i] = x * x; }
        }
      }
    |}
  in
  let is_fmul = function Ir.Binop (Ir.Fmul, _, _) -> true | _ -> false in
  let f = compile src in
  ignore (P.Licm.run f);
  Alcotest.(check bool)
    "LICM alone keeps the predicated multiply in-loop" true
    (items_contain_kind f is_fmul (loops_of f));
  let g = compile src in
  Alcotest.(check bool) "if-converted" true (P.Ifconv.run g > 0);
  Alcotest.(check bool) "speculated multiply hoists" true (P.Licm.run g > 0);
  Alcotest.(check bool)
    "no multiply left in the loop" false
    (items_contain_kind g is_fmul (loops_of g));
  (match Verifier.verify_or_message g with
  | None -> ()
  | Some m -> Alcotest.failf "ifconv+LICM broke IR: %s" m);
  (* semantics: a alternates sign, so the masked store must only write
     the positive lanes *)
  let mem = float_mem 16 (fun i -> if i mod 2 = 0 then 1.0 else -1.0) in
  let out = run_pssa g ~args:[ VInt 0; VInt 8; VInt 4; VFloat 3.0 ] ~mem in
  Alcotest.(check (float 1e-9)) "b[2] written" 9.0 (float_at out.memory 10);
  Alcotest.(check (float 1e-9)) "b[3] masked" (-1.0) (float_at out.memory 11)

let test_licm_keeps_guarded_division () =
  (* invariant integer division under an if-converted guard: hoisting it
     would evaluate 8/k whenever the loop runs, trapping on k = 0 even
     though the guard rules that out — it must stay predicated inside *)
  let f =
    compile
      {|
      kernel ld(float* a, float* b, int n, int k) {
        for (int i = 0; i < n; i = i + 1) {
          if (k > 0) { int q = 8 / k; a[i] = b[q]; }
        }
      }
    |}
  in
  Alcotest.(check int) "ifconv refuses the trapping body" 0 (P.Ifconv.run f);
  ignore (P.Licm.run f);
  Alcotest.(check bool)
    "division still inside the loop" true
    (items_contain_kind f
       (function Ir.Binop (Ir.Div, _, _) -> true | _ -> false)
       (loops_of f));
  (* k = 0: the guard is false, the predicated division must not trap *)
  let mem = float_mem 16 (fun i -> float_of_int i) in
  let out = run_pssa f ~args:[ VInt 0; VInt 8; VInt 4; VInt 0 ] ~mem in
  Alcotest.(check (float 1e-9)) "a[2] untouched when k=0" 2.0
    (float_at out.memory 2);
  let out =
    run_pssa f
      ~args:[ VInt 0; VInt 8; VInt 4; VInt 2 ]
      ~mem:(float_mem 16 (fun i -> float_of_int i))
  in
  (* q = 4, b = base 8: a[i] = b[4] = 12.0 *)
  Alcotest.(check (float 1e-9)) "a[2] = b[4] when k=2" 12.0
    (float_at out.memory 2)

let suite =
  [
    Alcotest.test_case "pipelines preserve semantics" `Quick
      test_pipelines_preserve_semantics;
    Alcotest.test_case "pipelines preserve semantics (CFG)" `Quick
      test_pipelines_preserve_semantics_cfg;
    Alcotest.test_case "unroll across trip counts" `Quick test_unroll_trips;
    Alcotest.test_case "static SLP on restrict saxpy" `Quick
      test_slp_vectorizes_disjoint;
    Alcotest.test_case "versioning beats static SLP" `Quick
      test_versioning_beats_static_slp;
    Alcotest.test_case "classic loop vectorizer" `Quick test_loopvec_classic;
    Alcotest.test_case "classic versioning rejects floyd-warshall" `Quick
      test_loopvec_rejects_floyd;
    Alcotest.test_case "fine-grained versioning vectorizes floyd-warshall"
      `Quick test_sv_versioning_vectorizes_floyd;
    Alcotest.test_case "RLE removes dynamic loads" `Quick test_rle_removes_loads;
    Alcotest.test_case "DCE" `Quick test_dce_removes_dead;
    Alcotest.test_case "constant folding" `Quick test_constfold;
    Alcotest.test_case "GVN" `Quick test_gvn_dedups;
    Alcotest.test_case "LICM" `Quick test_licm_hoists;
    Alcotest.test_case "LICM hoists if-converted invariants" `Quick
      test_licm_hoists_ifconverted_invariant;
    Alcotest.test_case "LICM needs ifconv to speculate variant predicates"
      `Quick test_licm_variant_predicate_needs_speculation;
    Alcotest.test_case "LICM keeps guarded division in-loop" `Quick
      test_licm_keeps_guarded_division;
  ]
