(* Unit tests for the differential-fuzzing subsystem itself: pinned-seed
   replay determinism, the delta-debugging shrinker, generator output
   distribution, render/parse round-tripping, and the typed
   undef-address trap the oracle's agreement relation depends on. *)

open Fgv_pssa
open Fgv_frontend
module F = Fgv_fuzz
module G = F.Generator
module O = F.Oracle

(* ------------------------------------------------- deterministic replay *)

(* The same seed must produce the same program, and these pinned seeds
   must stay mismatch-free across every pipeline: they are the fixed
   regression anchor for the whole oracle stack.  (The CI smoke job
   covers a wider sweep; these three replay instantly.) *)
let pinned_seeds = [ 42; 101; 203 ]

let test_replay () =
  List.iter
    (fun seed ->
      let cfg = G.vary G.default_config ~seed in
      let a = G.render (G.generate ~config:cfg ~seed ()) in
      let b = G.render (G.generate ~config:cfg ~seed ()) in
      Alcotest.(check string) (Printf.sprintf "seed %d replays" seed) a b)
    pinned_seeds

let test_pinned_seeds_clean () =
  List.iter
    (fun seed ->
      let cfg = G.vary G.default_config ~seed in
      let fd = G.generate ~config:cfg ~seed () in
      match O.check ~config:cfg fd with
      | None -> ()
      | Some m ->
        Alcotest.failf "pinned seed %d mismatches: %s" seed
          (O.mismatch_to_string m))
    pinned_seeds

(* ------------------------------------------------------------- shrinker *)

(* A deliberately broken "transform": delete the last top-level store of
   the lowered function.  The oracle catches it, and the shrinker must
   reduce the witness to (almost) nothing. *)
let break_last_store (f : Ir.func) =
  let rec drop_last acc = function
    | [] -> List.rev acc
    | [ (Ir.I v) ] when
        (match (Ir.inst f v).Ir.kind with Ir.Store _ -> true | _ -> false) ->
      List.rev acc
    | it :: rest -> drop_last (it :: acc) rest
  in
  f.Ir.fbody <- drop_last [] f.Ir.fbody

let shrink_config = G.default_config

let broken_still_failing fd =
  match Lower_ast.lower_fdecl fd with
  | exception Lower_ast.Error _ -> false
  | reference ->
    let subject = Lower_ast.lower_fdecl fd in
    break_last_store subject;
    O.compare_funcs ~config:shrink_config
      ~layouts:(G.layouts_for shrink_config) ~label:"broken" reference subject
    <> None

(* A known-bad program for the broken transform: the final top-level
   store is observable, so the original fails, and everything else is
   noise the shrinker must strip away. *)
let known_bad : Ast.fdecl =
  {
    Ast.fdname = "fuzz";
    fdparams = G.params shrink_config;
    fdbody =
      [
        Ast.Sdecl (Ast.Tfloat, "x0", Ast.Ebin ("+", Ast.Eindex ("p1", Ast.Eint 2), Ast.Efloat 1.5));
        Ast.Sfor
          ( Ast.Sdecl (Ast.Tint, "i0", Ast.Eint 0),
            Ast.Ebin ("<", Ast.Evar "i0", Ast.Eint 4),
            Ast.Sassign ("i0", Ast.Ebin ("+", Ast.Evar "i0", Ast.Eint 1)),
            [
              Ast.Sstore
                ( "p0",
                  Ast.Evar "i0",
                  Ast.Ebin ("*", Ast.Eindex ("p1", Ast.Evar "i0"), Ast.Efloat 0.5) );
            ] );
        Ast.Sif
          ( Ast.Ebin ("<", Ast.Eindex ("p0", Ast.Eint 0), Ast.Efloat 1.0),
            [ Ast.Sstore ("p1", Ast.Eint 3, Ast.Evar "x0") ],
            [] );
        Ast.Sstore ("p2", Ast.Eint 5, Ast.Efloat 2.25);
      ];
  }

let test_shrinker_minimizes () =
  Alcotest.(check bool)
    "known-bad program fails the broken transform" true
    (broken_still_failing known_bad);
  let reduced, steps =
    F.Shrink.shrink ~still_failing:broken_still_failing known_bad
  in
  Alcotest.(check bool) "shrink made progress" true (steps > 0);
  Alcotest.(check bool)
    "reduced program still fails" true (broken_still_failing reduced);
  let n = F.Shrink.stmt_count_list reduced.Ast.fdbody in
  if n > 5 then
    Alcotest.failf "expected <= 5 statements after shrinking, got %d:\n%s" n
      (G.render reduced)

(* --------------------------------------------------------- distribution *)

let rec has_nested_loop_stmt depth = function
  | Ast.Sfor (_, _, _, body) | Ast.Swhile (_, body) ->
    depth >= 1 || List.exists (has_nested_loop_stmt (depth + 1)) body
  | Ast.Sif (_, t, e) ->
    List.exists (has_nested_loop_stmt depth) t
    || List.exists (has_nested_loop_stmt depth) e
  | _ -> false

let has_nested_loop (fd : Ast.fdecl) =
  List.exists (has_nested_loop_stmt 0) fd.Ast.fdbody

let test_generator_distribution () =
  let config = { G.default_config with G.size = 20 } in
  let total = 100 in
  let nested = ref 0 in
  for seed = 0 to total - 1 do
    if has_nested_loop (G.generate ~config ~seed ()) then incr nested
  done;
  if !nested * 10 < total * 3 then
    Alcotest.failf
      "expected >= 30%% of size-20 programs to contain a nested loop, got %d/%d"
      !nested total

(* The store-heavy and distribution-shaped generator arms must actually
   reach the DSE and distribution clients — not just parse.  Lenient
   floors: a generator regression that starves the clients trips this
   long before the oracle stops covering them. *)
let test_generator_feeds_clients () =
  let total = 100 in
  let forwarded = ref 0 and killed = ref 0 in
  let split = ref 0 and pieces = ref 0 in
  for seed = 0 to total - 1 do
    let cfg = G.vary G.default_config ~seed in
    let src = G.render (G.generate ~config:cfg ~seed ()) in
    let f = Lower_ast.compile_no_restrict src in
    let st = Fgv_passes.Pipelines.dse_pipeline f in
    forwarded := !forwarded + st.Fgv_passes.Pipelines.dse_forwarded;
    killed := !killed + st.Fgv_passes.Pipelines.dse_killed;
    let g = Lower_ast.compile_no_restrict src in
    let st = Fgv_passes.Pipelines.distribute_pipeline g in
    split := !split + st.Fgv_passes.Pipelines.distribute_split;
    pieces := !pieces + st.Fgv_passes.Pipelines.distribute_pieces
  done;
  let expect name floor got =
    if got < floor then
      Alcotest.failf "expected >= %d %s across %d seeds, got %d" floor name
        total got
  in
  expect "forwarded loads" 20 !forwarded;
  expect "killed stores" 20 !killed;
  expect "distributed loops" 15 !split;
  expect "distribution pieces" 30 !pieces

(* ----------------------------------------------------------- round-trip *)

(* [G.render] must print *parseable* mini-C that lowers to the same
   behaviour as lowering the AST directly — failure reports depend on
   it. *)
let test_render_roundtrip () =
  for seed = 0 to 19 do
    let cfg = G.vary G.default_config ~seed in
    let fd = G.generate ~config:cfg ~seed () in
    let direct = Lower_ast.lower_fdecl fd in
    let reparsed =
      try Lower_ast.compile (G.render fd)
      with Lower_ast.Error msg ->
        Alcotest.failf "seed %d: rendered program does not parse: %s\n%s" seed
          msg (G.render fd)
    in
    List.iter
      (fun layout ->
        let a = O.run_pssa cfg direct layout in
        let b = O.run_pssa cfg reparsed layout in
        match O.runs_agree a b with
        | None -> ()
        | Some detail ->
          Alcotest.failf "seed %d: render round-trip diverges: %s" seed detail)
      (G.layouts_for cfg)
  done

(* ------------------------------------------------------ typed undef trap *)

(* Loads/stores at undef addresses raise the typed
   {!Value.Undef_access}, not a bare trap: the oracle relies on the
   distinction to classify "both sides fault identically" as
   agreement. *)
let build_undef_access ~store =
  let b = Builder.create ~name:"t" ~params:[ ("p", Ir.Tint) ] in
  let p = Builder.arg b 0 ~ty:Ir.Tint in
  let u = Builder.undef b Ir.Tint in
  (if store then
     let one = Builder.const_float b 1.0 in
     ignore (Builder.store b ~addr:u ~value:one)
   else
     let v = Builder.load b u ~ty:Ir.Tfloat in
     ignore (Builder.store b ~addr:p ~value:v));
  Builder.finish b

let test_undef_access_typed () =
  let mem () = Array.make 8 (Value.VFloat 0.0) in
  (match Interp.run (build_undef_access ~store:false) ~args:[ Value.VInt 0 ] ~mem:(mem ()) with
  | exception Value.Undef_access "load" -> ()
  | exception e -> Alcotest.failf "expected Undef_access load, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected Undef_access load, but the run finished");
  (match Interp.run (build_undef_access ~store:true) ~args:[ Value.VInt 0 ] ~mem:(mem ()) with
  | exception Value.Undef_access "store" -> ()
  | exception e -> Alcotest.failf "expected Undef_access store, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected Undef_access store, but the run finished");
  (* identical faulting counts as agreement; faulting on one side only
     does not *)
  Alcotest.(check bool)
    "same undef trap agrees" true
    (O.runs_agree (O.Undef_trap "load") (O.Undef_trap "load") = None);
  Alcotest.(check bool)
    "one-sided undef trap mismatches" true
    (O.runs_agree
       (O.Finished { O.o_mem = [||]; o_trace = [] })
       (O.Undef_trap "load")
    <> None)

let suite =
  [
    Alcotest.test_case "pinned seeds replay deterministically" `Quick test_replay;
    Alcotest.test_case "pinned seeds pass every pipeline" `Quick
      test_pinned_seeds_clean;
    Alcotest.test_case "shrinker minimizes a known-bad program" `Quick
      test_shrinker_minimizes;
    Alcotest.test_case "generator emits nested loops" `Quick
      test_generator_distribution;
    Alcotest.test_case "generator feeds the DSE/distribution clients" `Quick
      test_generator_feeds_clients;
    Alcotest.test_case "render/parse round-trip" `Quick test_render_roundtrip;
    Alcotest.test_case "undef-address traps are typed" `Quick
      test_undef_access_typed;
  ]
