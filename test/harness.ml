(* Shared helpers for the test suites: compiling kernels, building
   memories, running both interpreters, and comparing outcomes. *)

open Fgv_pssa

let compile = Fgv_frontend.Lower_ast.compile

let float_mem n f = Array.init n (fun i -> Value.VFloat (f i))

let ints xs = List.map (fun n -> Value.VInt n) xs

let float_at mem i =
  match mem.(i) with
  | Value.VFloat x -> x
  | v -> Alcotest.failf "expected float at %d, got %s" i (Value.to_string v)

(* Run a PSSA function on a *copy* of the given memory. *)
let run_pssa ?ffi f ~args ~mem = Interp.run ?ffi f ~args ~mem:(Array.copy mem)

(* Lower to CFG and run on a copy of the given memory. *)
let run_cfg ?ffi f ~args ~mem =
  let prog = Fgv_cfg.Lower.lower f in
  Fgv_cfg.Cinterp.run ?ffi prog ~args ~mem:(Array.copy mem)

let check_mem_floats msg expected (outcome : Interp.outcome) =
  List.iteri
    (fun i x ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "%s[%d]" msg i)
        x
        (float_at outcome.memory i))
    expected

(* Compare a PSSA outcome with a CFG outcome observationally: same final
   memory, same external calls in the same order. *)
let cross_equivalent (a : Interp.outcome) (b : Fgv_cfg.Cinterp.outcome) =
  Array.length a.memory = Array.length b.memory
  && Array.for_all2 Value.equal a.memory b.memory
  && List.length a.call_trace = List.length b.call_trace
  && List.for_all2
       (fun (n1, a1) (n2, a2) ->
         n1 = n2
         && List.length a1 = List.length a2
         && List.for_all2 Value.equal a1 a2)
       a.call_trace b.call_trace

(* ---------------------------- a tiny independent JSON parser --------- *)

(* Parses the full JSON grammar the {!Fgv_support.Json} emitter can
   produce (objects, arrays, strings with escapes, numbers, booleans,
   null); raises [Failure] on anything malformed.  Deliberately not the
   emitter run backwards, so emitter bugs cannot hide behind a lenient
   consumer.  Shared by the telemetry, trace, and pool suites. *)
module J = Fgv_support.Json

let parse_json (s : string) : J.t =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = failwith (Printf.sprintf "JSON parse error at %d: %s" !pos msg) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= len
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > len then fail "bad \\u escape";
          let hex = String.sub s !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          (* the emitter only escapes control characters; no surrogates *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_string buf (Printf.sprintf "\\u%s" hex);
          pos := !pos + 4
        | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "raw control character in string"
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some n -> J.Int n
    | None -> (
      match float_of_string_opt text with
      | Some x -> J.Float x
      | None -> fail ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); J.Assoc [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        J.Assoc (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); J.List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        J.List (items [])
      end
    | Some '"' -> J.String (parse_string ())
    | Some 't' -> literal "true" (J.Bool true)
    | Some 'f' -> literal "false" (J.Bool false)
    | Some 'n' -> literal "null" J.Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "expected a value"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v
