let () =
  Alcotest.run "fgv"
    [
      ("support", Test_support.suite);
      ("telemetry", Test_telemetry.suite);
      ("trace", Test_trace.suite);
      ("pool", Test_pool.suite);
      ("verifier", Test_verifier.suite);
      ("pred", Test_pred.suite);
      ("maxflow", Test_maxflow.suite);
      ("frontend", Test_frontend.suite);
      ("cfg", Test_cfg.suite);
      ("versioning", Test_versioning.suite);
      ("passes", Test_passes.suite);
      ("analysis", Test_analysis.suite);
      ("sparse", Test_sparse.suite);
      ("clients", Test_clients.suite);
      ("random", Test_random.suite);
      ("fuzz", Test_fuzz.suite);
      ("backend", Test_backend.suite);
      ("condopt", Test_condopt.suite);
      ("interp", Test_interp.suite);
      ("service", Test_service.suite);
      ("incremental", Test_incremental.suite);
      ("obslog", Test_obslog.suite);
    ]
