(* Tests for the telemetry registry: counter/timer/scope semantics, JSON
   output well-formedness (checked with a small independent JSON parser,
   so emitter bugs cannot hide behind a lenient consumer), and
   reset-between-sessions behaviour. *)

module Tm = Fgv_support.Telemetry

(* ------------------------------ a tiny independent JSON parser -------- *)

(* Parses the full JSON grammar the emitter can produce (objects, arrays,
   strings with escapes, numbers, booleans, null); raises [Failure] on
   anything malformed.  Deliberately not the emitter run backwards. *)
let parse_json (s : string) : Tm.json =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = failwith (Printf.sprintf "JSON parse error at %d: %s" !pos msg) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= len
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > len then fail "bad \\u escape";
          let hex = String.sub s !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          (* the emitter only escapes control characters; no surrogates *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_string buf (Printf.sprintf "\\u%s" hex);
          pos := !pos + 4
        | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "raw control character in string"
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some n -> Tm.Int n
    | None -> (
      match float_of_string_opt text with
      | Some x -> Tm.Float x
      | None -> fail ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Tm.Assoc [] end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Tm.Assoc (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Tm.List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Tm.List (items [])
      end
    | Some '"' -> Tm.String (parse_string ())
    | Some 't' -> literal "true" (Tm.Bool true)
    | Some 'f' -> literal "false" (Tm.Bool false)
    | Some 'n' -> literal "null" Tm.Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "expected a value"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

(* ------------------------------------------------------------ counters *)

let test_counters () =
  Tm.reset ();
  Alcotest.(check int) "unbumped counter is 0" 0 (Tm.get "nope");
  Tm.incr "a";
  Tm.incr "a";
  Tm.incr ~by:5 "b";
  Alcotest.(check int) "incr twice" 2 (Tm.get "a");
  Alcotest.(check int) "incr by 5" 5 (Tm.get "b");
  Tm.set_max "depth" 3;
  Tm.set_max "depth" 1;
  Tm.set_max "depth" 7;
  Alcotest.(check int) "set_max keeps the maximum" 7 (Tm.get "depth");
  Alcotest.(check (list (pair string int)))
    "counters are sorted"
    [ ("a", 2); ("b", 5); ("depth", 7) ]
    (Tm.counters ())

let test_timers () =
  Tm.reset ();
  let r = Tm.time "t" (fun () -> 41 + 1) in
  Alcotest.(check int) "time returns the thunk's value" 42 r;
  (try Tm.time "t" (fun () -> failwith "boom") with Failure _ -> ());
  (match Tm.timers () with
  | [ ("t", total, count) ] ->
    Alcotest.(check int) "both invocations counted" 2 count;
    Alcotest.(check bool) "nonnegative total" true (total >= 0.0)
  | l -> Alcotest.failf "expected one timer, got %d" (List.length l));
  Alcotest.(check bool) "timer_total of unknown is 0" true
    (Tm.timer_total "unknown" = 0.0)

let test_scopes () =
  Tm.reset ();
  Tm.incr "plain";
  Tm.with_scope "outer" (fun () ->
      Tm.incr "c";
      Tm.with_scope "inner" (fun () -> Tm.incr "c"));
  Alcotest.(check int) "unscoped name" 1 (Tm.get "plain");
  Alcotest.(check int) "scoped name" 1 (Tm.get "outer.c");
  Alcotest.(check int) "nested scope name" 1 (Tm.get "outer.inner.c");
  (* the scope's own duration lands in a timer named after it *)
  let names = List.map (fun (n, _, _) -> n) (Tm.timers ()) in
  Alcotest.(check (list string)) "scope timers" [ "outer"; "outer.inner" ] names;
  (* scope unwinds on exceptions *)
  (try Tm.with_scope "ex" (fun () -> failwith "boom") with Failure _ -> ());
  Tm.incr "after";
  Alcotest.(check int) "scope popped after exception" 1 (Tm.get "after")

let test_reset_between_sessions () =
  Tm.reset ();
  Tm.incr "x";
  ignore (Tm.time "t" (fun () -> ()));
  Alcotest.(check bool) "session recorded something" true (Tm.counters () <> []);
  Tm.reset ();
  Alcotest.(check (list (pair string int))) "counters empty after reset" []
    (Tm.counters ());
  Alcotest.(check int) "timers empty after reset" 0 (List.length (Tm.timers ()));
  (* a fresh session starts from zero, not from stale values *)
  Tm.incr "x";
  Alcotest.(check int) "fresh session from zero" 1 (Tm.get "x")

let test_capture () =
  Tm.reset ();
  Tm.incr ~by:10 "base";
  let r, delta =
    Tm.capture (fun () ->
        Tm.incr ~by:3 "base";
        Tm.incr "fresh";
        "done")
  in
  Alcotest.(check string) "capture returns the value" "done" r;
  Alcotest.(check (list (pair string int)))
    "delta has only changed counters"
    [ ("base", 3); ("fresh", 1) ]
    delta;
  Alcotest.(check int) "registry keeps accumulating" 13 (Tm.get "base")

(* ---------------------------------------------------------------- JSON *)

let test_json_escaping_roundtrip () =
  let doc =
    Tm.Assoc
      [
        ("quote\"back\\slash", Tm.String "tab\tnewline\nctrl\001");
        ("empty", Tm.Assoc []);
        ("list", Tm.List [ Tm.Int 1; Tm.Bool false; Tm.Null ]);
        ("neg", Tm.Int (-42));
        ("float", Tm.Float 2.5);
        ("whole_float", Tm.Float 3.0);
      ]
  in
  List.iter
    (fun minify ->
      let text = Tm.json_to_string ~minify doc in
      match parse_json text with
      | Tm.Assoc fields ->
        Alcotest.(check int) "all fields survive" 6 (List.length fields);
        (match List.assoc "quote\"back\\slash" fields with
        | Tm.String s ->
          Alcotest.(check string) "escapes round-trip" "tab\tnewline\nctrl\001" s
        | _ -> Alcotest.fail "expected string field");
        (match List.assoc "whole_float" fields with
        | Tm.Float x -> Alcotest.(check (float 0.0)) "3.0 stays float" 3.0 x
        | _ -> Alcotest.fail "whole float must not parse as int")
      | _ -> Alcotest.fail "expected an object")
    [ true; false ]

let test_snapshot_well_formed () =
  Tm.reset ();
  Tm.incr ~by:2 "cut.edges";
  Tm.incr "plan.inferred";
  ignore (Tm.time "pipeline.sv" (fun () -> ()));
  let text = Tm.json_to_string (Tm.snapshot ()) in
  match parse_json text with
  | Tm.Assoc [ ("counters", Tm.Assoc cs); ("timers", Tm.Assoc ts) ] ->
    Alcotest.(check (list string))
      "counter keys sorted" [ "cut.edges"; "plan.inferred" ] (List.map fst cs);
    Alcotest.(check bool) "counter value" true
      (List.assoc "cut.edges" cs = Tm.Int 2);
    (match ts with
    | [ ("pipeline.sv", Tm.Assoc fields) ] ->
      Alcotest.(check bool) "timer has count" true
        (List.assoc "count" fields = Tm.Int 1);
      (match List.assoc "total_s" fields with
      | Tm.Float _ | Tm.Int _ -> ()
      | _ -> Alcotest.fail "total_s must be numeric")
    | _ -> Alcotest.fail "expected one timer entry")
  | _ -> Alcotest.fail "snapshot must be {counters, timers}"

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick test_counters;
    Alcotest.test_case "timer semantics" `Quick test_timers;
    Alcotest.test_case "scope qualification" `Quick test_scopes;
    Alcotest.test_case "reset between sessions" `Quick test_reset_between_sessions;
    Alcotest.test_case "capture deltas" `Quick test_capture;
    Alcotest.test_case "JSON escaping round-trip" `Quick test_json_escaping_roundtrip;
    Alcotest.test_case "snapshot well-formed" `Quick test_snapshot_well_formed;
  ]
