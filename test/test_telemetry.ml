(* Tests for the telemetry registry: counter/timer/scope semantics, JSON
   output well-formedness (checked with the independent JSON parser in
   {!Harness}, so emitter bugs cannot hide behind a lenient consumer),
   and reset-between-sessions behaviour. *)

module Tm = Fgv_support.Telemetry

(* The independent JSON parser lives in {!Harness.parse_json} so the
   trace and pool suites can share it; [Tm.json] is an alias of
   {!Fgv_support.Json.t}, so its result matches [Tm.*] patterns. *)
let parse_json = Harness.parse_json

(* ------------------------------------------------------------ counters *)

let test_counters () =
  Tm.reset ();
  Alcotest.(check int) "unbumped counter is 0" 0 (Tm.get "nope");
  Tm.incr "a";
  Tm.incr "a";
  Tm.incr ~by:5 "b";
  Alcotest.(check int) "incr twice" 2 (Tm.get "a");
  Alcotest.(check int) "incr by 5" 5 (Tm.get "b");
  Tm.set_max "depth" 3;
  Tm.set_max "depth" 1;
  Tm.set_max "depth" 7;
  Alcotest.(check int) "set_max keeps the maximum" 7 (Tm.get "depth");
  Alcotest.(check (list (pair string int)))
    "counters are sorted"
    [ ("a", 2); ("b", 5); ("depth", 7) ]
    (Tm.counters ())

let test_timers () =
  Tm.reset ();
  let r = Tm.time "t" (fun () -> 41 + 1) in
  Alcotest.(check int) "time returns the thunk's value" 42 r;
  (try Tm.time "t" (fun () -> failwith "boom") with Failure _ -> ());
  (match Tm.timers () with
  | [ ("t", total, count) ] ->
    Alcotest.(check int) "both invocations counted" 2 count;
    Alcotest.(check bool) "nonnegative total" true (total >= 0.0)
  | l -> Alcotest.failf "expected one timer, got %d" (List.length l));
  Alcotest.(check bool) "timer_total of unknown is 0" true
    (Tm.timer_total "unknown" = 0.0)

let test_scopes () =
  Tm.reset ();
  Tm.incr "plain";
  Tm.with_scope "outer" (fun () ->
      Tm.incr "c";
      Tm.with_scope "inner" (fun () -> Tm.incr "c"));
  Alcotest.(check int) "unscoped name" 1 (Tm.get "plain");
  Alcotest.(check int) "scoped name" 1 (Tm.get "outer.c");
  Alcotest.(check int) "nested scope name" 1 (Tm.get "outer.inner.c");
  (* the scope's own duration lands in a timer named after it *)
  let names = List.map (fun (n, _, _) -> n) (Tm.timers ()) in
  Alcotest.(check (list string)) "scope timers" [ "outer"; "outer.inner" ] names;
  (* scope unwinds on exceptions *)
  (try Tm.with_scope "ex" (fun () -> failwith "boom") with Failure _ -> ());
  Tm.incr "after";
  Alcotest.(check int) "scope popped after exception" 1 (Tm.get "after")

let test_reset_between_sessions () =
  Tm.reset ();
  Tm.incr "x";
  ignore (Tm.time "t" (fun () -> ()));
  Alcotest.(check bool) "session recorded something" true (Tm.counters () <> []);
  Tm.reset ();
  Alcotest.(check (list (pair string int))) "counters empty after reset" []
    (Tm.counters ());
  Alcotest.(check int) "timers empty after reset" 0 (List.length (Tm.timers ()));
  (* a fresh session starts from zero, not from stale values *)
  Tm.incr "x";
  Alcotest.(check int) "fresh session from zero" 1 (Tm.get "x")

let test_capture () =
  Tm.reset ();
  Tm.incr ~by:10 "base";
  let r, delta =
    Tm.capture (fun () ->
        Tm.incr ~by:3 "base";
        Tm.incr "fresh";
        "done")
  in
  Alcotest.(check string) "capture returns the value" "done" r;
  Alcotest.(check (list (pair string int)))
    "delta has only changed counters"
    [ ("base", 3); ("fresh", 1) ]
    delta;
  Alcotest.(check int) "registry keeps accumulating" 13 (Tm.get "base")

(* ---------------------------------------------------------------- JSON *)

let test_json_escaping_roundtrip () =
  let doc =
    Tm.Assoc
      [
        ("quote\"back\\slash", Tm.String "tab\tnewline\nctrl\001");
        ("empty", Tm.Assoc []);
        ("list", Tm.List [ Tm.Int 1; Tm.Bool false; Tm.Null ]);
        ("neg", Tm.Int (-42));
        ("float", Tm.Float 2.5);
        ("whole_float", Tm.Float 3.0);
      ]
  in
  List.iter
    (fun minify ->
      let text = Tm.json_to_string ~minify doc in
      match parse_json text with
      | Tm.Assoc fields ->
        Alcotest.(check int) "all fields survive" 6 (List.length fields);
        (match List.assoc "quote\"back\\slash" fields with
        | Tm.String s ->
          Alcotest.(check string) "escapes round-trip" "tab\tnewline\nctrl\001" s
        | _ -> Alcotest.fail "expected string field");
        (match List.assoc "whole_float" fields with
        | Tm.Float x -> Alcotest.(check (float 0.0)) "3.0 stays float" 3.0 x
        | _ -> Alcotest.fail "whole float must not parse as int")
      | _ -> Alcotest.fail "expected an object")
    [ true; false ]

let test_snapshot_well_formed () =
  Tm.reset ();
  Tm.incr ~by:2 "cut.edges";
  Tm.incr "plan.inferred";
  ignore (Tm.time "pipeline.sv" (fun () -> ()));
  let text = Tm.json_to_string (Tm.snapshot ()) in
  match parse_json text with
  | Tm.Assoc [ ("counters", Tm.Assoc cs); ("timers", Tm.Assoc ts) ] ->
    Alcotest.(check (list string))
      "counter keys sorted" [ "cut.edges"; "plan.inferred" ] (List.map fst cs);
    Alcotest.(check bool) "counter value" true
      (List.assoc "cut.edges" cs = Tm.Int 2);
    (match ts with
    | [ ("pipeline.sv", Tm.Assoc fields) ] ->
      Alcotest.(check bool) "timer has count" true
        (List.assoc "count" fields = Tm.Int 1);
      (match List.assoc "total_s" fields with
      | Tm.Float _ | Tm.Int _ -> ()
      | _ -> Alcotest.fail "total_s must be numeric")
    | _ -> Alcotest.fail "expected one timer entry")
  | _ -> Alcotest.fail "snapshot must be {counters, timers}"

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick test_counters;
    Alcotest.test_case "timer semantics" `Quick test_timers;
    Alcotest.test_case "scope qualification" `Quick test_scopes;
    Alcotest.test_case "reset between sessions" `Quick test_reset_between_sessions;
    Alcotest.test_case "capture deltas" `Quick test_capture;
    Alcotest.test_case "JSON escaping round-trip" `Quick test_json_escaping_roundtrip;
    Alcotest.test_case "snapshot well-formed" `Quick test_snapshot_well_formed;
  ]
