(* Tests for the compile service (lib/service, DESIGN §15):

   - the content-addressed cache: identical requests hit and the reply
     is byte-identical to the cold one; whitespace/comment-only source
     edits canonicalize to the same key; any flag that steers
     compilation changes the key ([heap] only when [emit_c] does);
   - LRU eviction at the --cache-max cap, with the eviction counter;
   - the determinism contract: a batch's response stream is
     byte-identical at --jobs 1 and --jobs 4;
   - the wire protocol: line classification, whole-batch rejection of a
     malformed element, control ops, and error responses. *)

module J = Fgv_support.Json
module S = Fgv_service.Service
module C = Fgv_service.Cache
module P = Fgv_service.Protocol

let rq ?(id = "") ?(pipeline = "sv+v") ?(no_restrict = false)
    ?(emit_c = false) ?(heap = P.default_heap) source =
  {
    P.rq_id = id;
    rq_source = source;
    rq_pipeline = pipeline;
    rq_no_restrict = no_restrict;
    rq_emit_c = emit_c;
    rq_heap = heap;
  }

let src =
  "kernel k(float* restrict a, float* restrict b, int n) { for (int i = 0; \
   i < n; i = i + 1) { a[i] = b[i] + 1.0; } }"

(* Same token stream as [src]: comments, whitespace, and a numerically
   identical float literal spelling. *)
let src_reformatted =
  "kernel k(float* restrict a, float* restrict b, int n) {\n\
  \  // reformatted\n\
  \  for (int i = 0; i < n; i = i + 1) { /* body */ a[i]   = b[i] + 1.00; }\n\
   }"

let src_other i =
  Printf.sprintf
    "kernel k%d(float* restrict a, float* restrict b, int n) { for (int i \
     = 0; i < n; i = i + 1) { a[i] = b[i] * %d.0; } }"
    i i

let line r = P.response_line r

let test_hit_byte_identical () =
  let svc = S.create ~jobs:1 () in
  let cold = S.handle_request svc (rq src) in
  let cached = S.handle_request svc (rq src) in
  Alcotest.(check string) "cached reply is byte-identical" (line cold)
    (line cached);
  Alcotest.(check int) "one hit" 1 svc.S.hits;
  Alcotest.(check int) "one miss" 1 svc.S.misses

let test_canonicalization_hits () =
  let svc = S.create ~jobs:1 () in
  let a = S.handle_request svc (rq src) in
  let b = S.handle_request svc (rq src_reformatted) in
  Alcotest.(check string) "reformatted source is served from cache"
    (line a) (line b);
  Alcotest.(check int) "reformat was a hit" 1 svc.S.hits;
  Alcotest.(check string) "keys agree" (C.key (rq src))
    (C.key (rq src_reformatted))

let test_flags_change_key () =
  let base = C.key (rq src) in
  Alcotest.(check bool) "pipeline is in the key" false
    (base = C.key (rq ~pipeline:"o3" src));
  Alcotest.(check bool) "no_restrict is in the key" false
    (base = C.key (rq ~no_restrict:true src));
  Alcotest.(check bool) "emit_c is in the key" false
    (base = C.key (rq ~emit_c:true src));
  Alcotest.(check bool) "source is in the key" false
    (base = C.key (rq (src_other 1)));
  (* heap only steers the emitted C's memory image, so it participates
     exactly when emit_c does. *)
  Alcotest.(check string) "heap ignored without emit_c" base
    (C.key (rq ~heap:64 src));
  Alcotest.(check bool) "heap in the key with emit_c" false
    (C.key (rq ~emit_c:true ~heap:64 src)
    = C.key (rq ~emit_c:true ~heap:128 src));
  Alcotest.(check bool) "id is not in the key" true
    (base = C.key (rq ~id:"whatever" src))

let test_eviction_lru () =
  let svc = S.create ~jobs:1 ~cache_max:2 () in
  ignore (S.handle_request svc (rq (src_other 1)));
  ignore (S.handle_request svc (rq (src_other 2)));
  (* Touch 1 so 2 is the least recently used... *)
  ignore (S.handle_request svc (rq (src_other 1)));
  (* ...and a third distinct kernel evicts it. *)
  ignore (S.handle_request svc (rq (src_other 3)));
  Alcotest.(check int) "capped at two entries" 2 (C.length svc.S.cache);
  Alcotest.(check int) "one eviction" 1 (C.evictions svc.S.cache);
  ignore (S.handle_request svc (rq (src_other 1)));
  Alcotest.(check int) "kernel 1 survived (LRU evicted kernel 2)" 2
    svc.S.hits;
  ignore (S.handle_request svc (rq (src_other 2)));
  Alcotest.(check int) "kernel 2 was evicted, so it misses" 4 svc.S.misses

let batch_lines svc reqs =
  List.map line (S.handle_batch svc reqs)

let test_jobs_determinism () =
  (* Mixed batch: distinct kernels, duplicates to coalesce, one failing
     request.  The response stream must not depend on the job count. *)
  let reqs =
    [
      rq ~id:"a" (src_other 1);
      rq ~id:"b" (src_other 2);
      rq ~id:"dup" (src_other 1);
      rq ~id:"bad" "kernel oops(";
      rq ~id:"c" ~pipeline:"combined" ~emit_c:true ~heap:32 (src_other 3);
      rq ~id:"d" (src_other 4);
    ]
  in
  let out1 = batch_lines (S.create ~jobs:1 ()) reqs in
  let out4 = batch_lines (S.create ~jobs:4 ()) reqs in
  Alcotest.(check (list string)) "responses byte-identical at jobs 1 vs 4"
    out1 out4

let test_batch_coalescing () =
  let svc = S.create ~jobs:2 () in
  let reqs =
    [ rq ~id:"x" (src_other 7); rq ~id:"y" (src_other 7);
      rq ~id:"z" (src_other 7) ]
  in
  (match S.handle_batch svc reqs with
  | [
   P.Compiled { artifact = a1; _ };
   P.Compiled { artifact = a2; _ };
   P.Compiled { artifact = a3; _ };
  ] ->
    Alcotest.(check string) "duplicates share the one compile" a1.P.ar_ir
      a2.P.ar_ir;
    Alcotest.(check string) "all three agree" a1.P.ar_ir a3.P.ar_ir
  | _ -> Alcotest.fail "expected three compiled responses");
  Alcotest.(check int) "one miss" 1 svc.S.misses;
  Alcotest.(check int) "two coalesced, zero hits" 2 svc.S.coalesced;
  Alcotest.(check int) "zero hits within the batch" 0 svc.S.hits

let test_protocol_lines () =
  let classify text =
    match P.decode_line text with
    | P.Single _ -> "single"
    | P.Batch rs -> Printf.sprintf "batch:%d" (List.length rs)
    | P.Control c -> "control:" ^ P.control_name c
    | P.Malformed _ -> "malformed"
  in
  Alcotest.(check string) "object with source" "single"
    (classify {|{"source":"kernel k(int n) { }"}|});
  Alcotest.(check string) "array of requests" "batch:2"
    (classify {|[{"source":"a"},{"source":"b"}]|});
  Alcotest.(check string) "ping" "control:ping" (classify {|{"op":"ping"}|});
  Alcotest.(check string) "stats" "control:stats"
    (classify {|{"op":"stats"}|});
  Alcotest.(check string) "metrics" "control:metrics"
    (classify {|{"op":"metrics"}|});
  Alcotest.(check string) "metrics with text format" "control:metrics"
    (classify {|{"op":"metrics","format":"text"}|});
  Alcotest.(check string) "unknown metrics format" "malformed"
    (classify {|{"op":"metrics","format":"xml"}|});
  Alcotest.(check string) "unknown op" "malformed"
    (classify {|{"op":"dance"}|});
  Alcotest.(check string) "missing source" "malformed" (classify {|{}|});
  Alcotest.(check string) "bad JSON" "malformed" (classify "{nope");
  Alcotest.(check string) "non-object element rejects the whole batch"
    "malformed"
    (classify {|[{"source":"a"},42]|});
  Alcotest.(check string) "empty batch" "malformed" (classify "[]")

let test_handle_line_ops () =
  let svc = S.create ~jobs:1 () in
  let reply text =
    match S.handle_line svc text with
    | S.Reply s -> s
    | S.Quit s -> "quit:" ^ s
  in
  let parse s = Result.get_ok (J.of_string s) in
  let ping = parse (reply {|{"op":"ping"}|}) in
  Alcotest.(check (option int)) "ping reports the protocol version"
    (Some P.protocol_version)
    (J.int_member "protocol" ping);
  Alcotest.(check (option int)) "ping reports the cache schema"
    (Some C.schema_version)
    (J.int_member "cache_schema" ping);
  ignore (reply (P.encode_request (rq src) |> J.to_string ~minify:true));
  ignore (reply (P.encode_request (rq src) |> J.to_string ~minify:true));
  let stats = parse (reply {|{"op":"stats"}|}) in
  Alcotest.(check (option int)) "stats counts requests" (Some 2)
    (J.int_member "requests" stats);
  Alcotest.(check (option int)) "stats counts hits" (Some 1)
    (J.int_member "hits" stats);
  Alcotest.(check (option int)) "stats reports cache capacity" (Some 128)
    (J.int_member "capacity" stats);
  let metrics = parse (reply {|{"op":"metrics"}|}) in
  let counters = Option.get (J.member "counters" metrics) in
  Alcotest.(check (option int)) "metrics agrees with stats on requests"
    (J.int_member "requests" stats)
    (J.int_member "requests" counters);
  let cache = Option.get (J.member "cache" metrics) in
  Alcotest.(check (option int)) "metrics reports cache entries" (Some 1)
    (J.int_member "entries" cache);
  (match J.member "hit_rate" cache with
  | Some (J.Float r) ->
    Alcotest.(check (float 1e-9)) "hit rate is hits/requests" 0.5 r
  | _ -> Alcotest.fail "metrics cache has no hit_rate");
  let request_hist =
    Option.get (J.member "timing" metrics)
    |> J.member "histograms" |> Option.get
    |> J.member "request" |> Option.get
  in
  Alcotest.(check (option int)) "request histogram saw both requests"
    (Some 2)
    (J.int_member "count" request_hist);
  let text = parse (reply {|{"op":"metrics","format":"text"}|}) in
  (match J.string_member "body" text with
  | Some body ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i =
        i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "text exposition carries the request histogram"
      true
      (contains body "fgv_request_duration_seconds_count 2")
  | None -> Alcotest.fail "text metrics has no body");
  let err = parse (reply "{nope") in
  Alcotest.(check (option bool)) "malformed line answers ok:false"
    (Some false) (J.bool_member "ok" err);
  Alcotest.(check string) "shutdown quits" "quit:{\"ok\":true}"
    (reply {|{"op":"shutdown"}|})

let test_failures_not_cached () =
  let svc = S.create ~jobs:1 () in
  (match S.handle_request svc (rq "kernel oops(") with
  | P.Failed _ -> ()
  | P.Compiled _ | P.Compiled_many _ -> Alcotest.fail "expected a parse failure");
  (match S.handle_request svc (rq "kernel oops(") with
  | P.Failed _ -> ()
  | P.Compiled _ | P.Compiled_many _ -> Alcotest.fail "expected a parse failure");
  Alcotest.(check int) "failures never hit" 0 svc.S.hits;
  Alcotest.(check int) "failures are recompiled" 2 svc.S.misses;
  Alcotest.(check int) "failures are not stored" 0 (C.length svc.S.cache);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  match S.handle_request svc (rq ~pipeline:"warp-speed" src) with
  | P.Failed { error; _ } ->
    Alcotest.(check bool) "unknown pipeline names the registry" true
      (contains error "unknown pipeline")
  | P.Compiled _ | P.Compiled_many _ ->
    Alcotest.fail "expected an unknown-pipeline failure"

let suite =
  [
    Alcotest.test_case "hit is byte-identical" `Quick
      test_hit_byte_identical;
    Alcotest.test_case "canonicalization" `Quick test_canonicalization_hits;
    Alcotest.test_case "flags change the key" `Quick test_flags_change_key;
    Alcotest.test_case "LRU eviction at cache-max" `Quick test_eviction_lru;
    Alcotest.test_case "jobs determinism" `Quick test_jobs_determinism;
    Alcotest.test_case "batch coalescing" `Quick test_batch_coalescing;
    Alcotest.test_case "protocol classification" `Quick test_protocol_lines;
    Alcotest.test_case "control ops" `Quick test_handle_line_ops;
    Alcotest.test_case "failures are not cached" `Quick
      test_failures_not_cached;
  ]
