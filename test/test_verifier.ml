(* Negative tests for the PSSA verifier: hand-built ill-formed functions
   must be *rejected*, with the message naming the broken invariant.  The
   positive direction is covered everywhere else (every pass test
   re-verifies); without these, a verifier that silently accepts garbage
   would still be green. *)

open Fgv_pssa

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let expect_invalid ~msg_part (f : Ir.func) =
  match Verifier.verify_or_message f with
  | None -> Alcotest.failf "verifier accepted an ill-formed function (%s)" msg_part
  | Some msg ->
    if not (contains msg msg_part) then
      Alcotest.failf "expected message containing %S, got %S" msg_part msg

let mk_inst f kind ty pred = (Ir.new_inst f ~kind ~ty ~pred).Ir.id

let test_use_before_def () =
  let f = Ir.create_func ~name:"bad" ~params:[] in
  let c = mk_inst f (Ir.Const (Ir.Cint 1)) Ir.Tint Pred.tru in
  let a = mk_inst f (Ir.Binop (Ir.Add, c, c)) Ir.Tint Pred.tru in
  (* the add is placed before the constant it reads *)
  f.Ir.fbody <- [ Ir.I a; Ir.I c ];
  expect_invalid ~msg_part:"does not precede" f

let test_predicate_not_dominating () =
  let f = Ir.create_func ~name:"bad" ~params:[] in
  let flag = mk_inst f (Ir.Const (Ir.Cbool true)) Ir.Tbool Pred.tru in
  let guarded = mk_inst f (Ir.Const (Ir.Cfloat 1.0)) Ir.Tfloat (Pred.lit flag) in
  (* the guarded instruction executes before its predicate is computed *)
  f.Ir.fbody <- [ Ir.I guarded; Ir.I flag ];
  expect_invalid ~msg_part:"does not precede" f

let test_non_boolean_predicate () =
  let f = Ir.create_func ~name:"bad" ~params:[] in
  let n = mk_inst f (Ir.Const (Ir.Cint 3)) Ir.Tint Pred.tru in
  let guarded = mk_inst f (Ir.Const (Ir.Cfloat 1.0)) Ir.Tfloat (Pred.lit n) in
  f.Ir.fbody <- [ Ir.I n; Ir.I guarded ];
  expect_invalid ~msg_part:"non-boolean" f

let test_dangling_phi_unplaced_arm () =
  (* the shape a buggy materialization would leave behind: a versioning
     phi whose clone-side arm was dropped from the region but not from
     the phi *)
  let f = Ir.create_func ~name:"bad" ~params:[] in
  let orig = mk_inst f (Ir.Const (Ir.Cfloat 1.0)) Ir.Tfloat Pred.tru in
  let clone = mk_inst f (Ir.Const (Ir.Cfloat 2.0)) Ir.Tfloat Pred.tru in
  let phi =
    mk_inst f (Ir.Phi [ (Pred.tru, orig); (Pred.tru, clone) ]) Ir.Tfloat Pred.tru
  in
  (* clone exists in the arena but is not placed in the body *)
  f.Ir.fbody <- [ Ir.I orig; Ir.I phi ];
  expect_invalid ~msg_part:"not placed in the body" f

let test_dangling_phi_undefined_arm () =
  let f = Ir.create_func ~name:"bad" ~params:[] in
  let orig = mk_inst f (Ir.Const (Ir.Cfloat 1.0)) Ir.Tfloat Pred.tru in
  let phi = mk_inst f (Ir.Phi [ (Pred.tru, orig); (Pred.tru, 9999) ]) Ir.Tfloat Pred.tru in
  f.Ir.fbody <- [ Ir.I orig; Ir.I phi ];
  expect_invalid ~msg_part:"undefined value" f

let test_duplicate_definition () =
  let f = Ir.create_func ~name:"bad" ~params:[] in
  let c = mk_inst f (Ir.Const (Ir.Cint 1)) Ir.Tint Pred.tru in
  f.Ir.fbody <- [ Ir.I c; Ir.I c ];
  expect_invalid ~msg_part:"defined twice" f

(* A well-formed single-loop function to corrupt: for (i = 0; i < n; i++) *)
let loop_func () =
  let b = Builder.create ~name:"loopy" ~params:[ ("n", Ir.Tint) ] in
  let n = Builder.arg b 0 ~ty:Ir.Tint in
  let zero = Builder.const_int b 0 in
  let one = Builder.const_int b 1 in
  let lp = Builder.begin_loop b in
  let m = Builder.mu b lp ~init:zero ~ty:Ir.Tint in
  let next = Builder.add b m one in
  Builder.set_mu_recur b m next;
  let c = Builder.cmp b Ir.Lt next n in
  Builder.finish_loop b lp ~cont:(Pred.lit c);
  let f = Builder.finish b in
  (f, lp, m)

let test_loop_func_is_well_formed () =
  let f, _, _ = loop_func () in
  match Verifier.verify_or_message f with
  | None -> ()
  | Some msg -> Alcotest.failf "fixture must verify, got %S" msg

let test_eta_before_loop () =
  let f, lp, _ = loop_func () in
  (* an eta over a value defined before the loop, placed before the loop:
     operands precede it, but the loop it reads does not *)
  let n =
    match f.Ir.fbody with
    | Ir.I n :: _ -> n
    | _ -> Alcotest.fail "unexpected fixture shape"
  in
  let eta =
    mk_inst f (Ir.Eta { loop = lp.Ir.lid; value = n }) Ir.Tint Pred.tru
  in
  let rec place = function
    | Ir.L lid :: rest when lid = lp.Ir.lid -> Ir.I eta :: Ir.L lid :: rest
    | item :: rest -> item :: place rest
    | [] -> Alcotest.fail "loop not found in fixture body"
  in
  f.Ir.fbody <- place f.Ir.fbody;
  expect_invalid ~msg_part:"does not follow its loop" f

let test_eta_unplaced_loop () =
  let f, _, _ = loop_func () in
  let ghost = Ir.new_loop f ~pred:Pred.tru in
  let zero =
    match f.Ir.fbody with
    | _ :: Ir.I z :: _ -> z
    | _ -> Alcotest.fail "unexpected fixture shape"
  in
  let eta = mk_inst f (Ir.Eta { loop = ghost.Ir.lid; value = zero }) Ir.Tint Pred.tru in
  f.Ir.fbody <- f.Ir.fbody @ [ Ir.I eta ];
  expect_invalid ~msg_part:"unplaced loop" f

let test_mu_wrong_loop () =
  let f, lp, m = loop_func () in
  (* repoint the mu at a different loop id than the one listing it *)
  let ghost = Ir.new_loop f ~pred:Pred.tru in
  (match (Ir.inst f m).Ir.kind with
  | Ir.Mu mu -> (Ir.inst f m).Ir.kind <- Ir.Mu { mu with loop = ghost.Ir.lid }
  | _ -> Alcotest.fail "fixture mu missing");
  ignore lp;
  expect_invalid ~msg_part:"references loop" f

let suite =
  [
    Alcotest.test_case "fixture verifies" `Quick test_loop_func_is_well_formed;
    Alcotest.test_case "use before def" `Quick test_use_before_def;
    Alcotest.test_case "predicate not dominating" `Quick test_predicate_not_dominating;
    Alcotest.test_case "non-boolean predicate" `Quick test_non_boolean_predicate;
    Alcotest.test_case "dangling phi: unplaced arm" `Quick test_dangling_phi_unplaced_arm;
    Alcotest.test_case "dangling phi: undefined arm" `Quick test_dangling_phi_undefined_arm;
    Alcotest.test_case "duplicate definition" `Quick test_duplicate_definition;
    Alcotest.test_case "eta before its loop" `Quick test_eta_before_loop;
    Alcotest.test_case "eta over unplaced loop" `Quick test_eta_unplaced_loop;
    Alcotest.test_case "mu pointing at the wrong loop" `Quick test_mu_wrong_loop;
  ]
