(* Tests for the work-stealing domain pool and its telemetry contract:
   deterministic result ordering, per-task exception capture, nested-map
   rejection, counter merging under contention, and the end-to-end
   determinism property the pool exists to uphold — a fuzz campaign and
   a bench figure produce identical output at --jobs 1 and --jobs 4. *)

module Tm = Fgv_support.Telemetry
module Pool = Fgv_support.Pool
module E = Fgv_bench.Experiments
module Campaign = Fgv_fuzz.Campaign

(* ------------------------------------------------- ordering & basics *)

let test_ordering () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "squares in input order"
    (List.map (fun x -> x * x) xs)
    (Pool.map ~jobs:4 (fun x -> x * x) xs);
  Alcotest.(check (list int)) "empty input" [] (Pool.map ~jobs:4 Fun.id []);
  Alcotest.(check (list int))
    "more jobs than tasks" [ 2; 4; 6 ]
    (Pool.map ~jobs:8 (fun x -> 2 * x) [ 1; 2; 3 ])

let test_jobs_one_matches_parallel () =
  let xs = List.init 37 (fun i -> i - 5) in
  let f x = (x * 3) - 1 in
  Alcotest.(check (list int))
    "jobs:1 and jobs:4 agree"
    (Pool.map ~jobs:1 f xs)
    (Pool.map ~jobs:4 f xs)

(* ------------------------------------------------ exception handling *)

let test_exception_isolation () =
  let f x = if x mod 3 = 0 then failwith (string_of_int x) else x * 10 in
  let results = Pool.try_map ~jobs:4 f (List.init 10 Fun.id) in
  List.iteri
    (fun i r ->
      match r with
      | Ok v when i mod 3 <> 0 ->
        Alcotest.(check int) "ok task" (i * 10) v
      | Error (Failure m) when i mod 3 = 0 ->
        Alcotest.(check string) "failing task" (string_of_int i) m
      | _ -> Alcotest.fail (Printf.sprintf "unexpected result at %d" i))
    results

let test_map_raises_lowest_index () =
  let f x = if x = 3 || x = 7 then failwith (string_of_int x) else x in
  (match Pool.map ~jobs:4 f (List.init 10 Fun.id) with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure m ->
    Alcotest.(check string) "lowest failing index wins" "3" m);
  (* all tasks still ran: the later failure is present in try_map *)
  let results = Pool.try_map ~jobs:4 f (List.init 10 Fun.id) in
  match List.nth results 7 with
  | Error (Failure m) -> Alcotest.(check string) "task 7 failed too" "7" m
  | _ -> Alcotest.fail "task 7 should have run and failed"

let test_nested_map_rejected () =
  let inner _ = Pool.map ~jobs:2 Fun.id [ 1; 2 ] in
  (* Nesting is rejected identically at any outer job count: the inner
     call raises Nested_map inside the task, captured per-task. *)
  List.iter
    (fun outer_jobs ->
      let results = Pool.try_map ~jobs:outer_jobs inner [ 0; 1 ] in
      List.iter
        (function
          | Error Pool.Nested_map -> ()
          | Ok _ -> Alcotest.fail "nested map must not succeed"
          | Error e -> raise e)
        results)
    [ 1; 4 ]

(* ------------------------------------------------- telemetry merging *)

let test_counter_merge_under_contention () =
  Tm.reset ();
  let task _ =
    for _ = 1 to 1000 do
      Tm.incr "pool.test.counter"
    done
  in
  ignore (Pool.map ~jobs:4 task (List.init 8 Fun.id));
  Alcotest.(check int)
    "8 tasks x 1000 increments" 8000
    (Tm.get "pool.test.counter");
  Tm.reset ()

let test_timer_merge () =
  Tm.reset ();
  let task _ = Tm.time "pool.test.timer" (fun () -> Sys.opaque_identity ()) in
  ignore (Pool.map ~jobs:4 task (List.init 6 Fun.id));
  let timers = Tm.timers () in
  (match
     List.find_opt (fun (name, _, _) -> name = "pool.test.timer") timers
   with
  | Some (_, total, count) ->
    (* counts sum across shards; the merged total is the max over the
       joined shards (critical path), so it is bounded by any one
       shard's work but still non-negative *)
    Alcotest.(check int) "timer count summed" 6 count;
    Alcotest.(check bool) "timer total non-negative" true (total >= 0.0)
  | None -> Alcotest.fail "timer not merged");
  Tm.reset ()

let test_isolated_merge_shard_roundtrip () =
  Tm.reset ();
  Tm.incr "pool.test.outer";
  let (), shard =
    Tm.isolated (fun () ->
        Tm.incr "pool.test.inner";
        Tm.incr "pool.test.inner")
  in
  Alcotest.(check int)
    "isolated work invisible before merge" 0
    (Tm.get "pool.test.inner");
  Alcotest.(check int) "outer counter untouched" 1 (Tm.get "pool.test.outer");
  Tm.merge_shard shard;
  Alcotest.(check int)
    "isolated work visible after merge" 2
    (Tm.get "pool.test.inner");
  Tm.reset ()

(* -------------------------------------------- end-to-end determinism *)

let run_campaign jobs =
  Tm.reset ();
  let outcome = Campaign.run ~jobs ~n:20 ~seed:42 () in
  let report = Tm.json_to_string (Campaign.report_json outcome) in
  Tm.reset ();
  report

let test_campaign_determinism () =
  Alcotest.(check string)
    "fuzz report byte-identical at jobs 1 vs 4" (run_campaign 1)
    (run_campaign 4)

let run_figure jobs =
  Tm.reset ();
  let rows, delta = Tm.capture (fun () -> E.tsvc_rows ~check:false ~jobs ()) in
  let rendered = E.fig19_of_rows rows in
  Tm.reset ();
  (rendered, delta)

let test_figure_determinism () =
  let rows1, delta1 = run_figure 1 in
  let rows4, delta4 = run_figure 4 in
  Alcotest.(check string) "fig19 rows identical at jobs 1 vs 4" rows1 rows4;
  Alcotest.(check (list (pair string int)))
    "fig19 counter deltas identical at jobs 1 vs 4" delta1 delta4

let suite =
  [
    Alcotest.test_case "result ordering" `Quick test_ordering;
    Alcotest.test_case "jobs:1 matches jobs:4" `Quick
      test_jobs_one_matches_parallel;
    Alcotest.test_case "exception isolation" `Quick test_exception_isolation;
    Alcotest.test_case "map raises lowest index" `Quick
      test_map_raises_lowest_index;
    Alcotest.test_case "nested map rejected" `Quick test_nested_map_rejected;
    Alcotest.test_case "counter merge under contention" `Quick
      test_counter_merge_under_contention;
    Alcotest.test_case "timer merge" `Quick test_timer_merge;
    Alcotest.test_case "isolated/merge_shard round-trip" `Quick
      test_isolated_merge_shard_roundtrip;
    Alcotest.test_case "campaign determinism" `Slow test_campaign_determinism;
    Alcotest.test_case "figure determinism" `Slow test_figure_determinism;
  ]
