(* Tests for the wish-spec versioning clients (DSE, loop distribution):

   - golden decision sequences: the exact wish grants/denials and
     rewrite remarks each client emits on pinned kernels, so a change in
     plan inference or client enumeration shows up as a diff;
   - negative tests: neither client fires when the wished-away
     dependence is not versionable (unconditional overlap, flow
     dependence), and versioned-only wishes are denied with versioning
     disabled;
   - the clients' remark + telemetry streams are byte-identical across
     --jobs counts, same discipline as test_sparse. *)

open Fgv_pssa
module P = Fgv_passes
module W = Fgv_bench.Workload
module Tm = Fgv_support.Telemetry
module Tr = Fgv_support.Trace
module Pool = Fgv_support.Pool
module G = Fgv_fuzz.Generator

let find_kernel name pool = List.find (fun k -> k.W.k_name = name) pool
let tsvc name = (find_kernel name Fgv_bench.Tsvc.kernels).W.k_source

(* The decision trail: every wish outcome and client rewrite, as stable
   strings (independent of value naming, so the goldens pin decisions,
   not printer details). *)
let decisions remarks =
  List.filter_map
    (fun (_, r) ->
      match r with
      | Tr.Wish_granted { client; conds; static; _ } ->
        Some
          (Printf.sprintf "%s granted %s conds=%d" client
             (if static then "static" else "versioned")
             conds)
      | Tr.Wish_denied { client; _ } -> Some (client ^ " denied")
      | Tr.Store_eliminated { forwarded; killed } ->
        Some (Printf.sprintf "store-eliminated forwarded=%d killed=%d" forwarded killed)
      | Tr.Loop_distributed { pieces; conds } ->
        Some (Printf.sprintf "loop-distributed pieces=%d conds=%d" pieces conds)
      | _ -> None)
    remarks

let count_stores (f : Ir.func) =
  Hashtbl.fold
    (fun _ i acc -> match i.Ir.kind with Ir.Store _ -> acc + 1 | _ -> acc)
    f.Ir.arena 0

(* ------------------------------------------------- golden decision trails *)

let test_dse_golden_s222 () =
  (* without restrict, the e-recurrence may alias a: forwarding the
     second a[i] load and killing the first a[i] store both need the
     versioned separation from the e accesses *)
  let f = Fgv_frontend.Lower_ast.compile_no_restrict (tsvc "s222") in
  let stats, remarks =
    Tr.collect_remarks (fun () -> P.Pipelines.dse_pipeline f)
  in
  Alcotest.(check int) "forwarded" 1 stats.P.Pipelines.dse_forwarded;
  Alcotest.(check int) "killed" 1 stats.P.Pipelines.dse_killed;
  Alcotest.(check (list string))
    "decision trail"
    [
      "dse-forward granted versioned conds=1";
      "dse-kill granted versioned conds=3";
      "store-eliminated forwarded=1 killed=1";
    ]
    (decisions remarks)

let test_distribute_golden_s2251 () =
  let f = Fgv_frontend.Lower_ast.compile_no_restrict (tsvc "s2251") in
  let stats, remarks =
    Tr.collect_remarks (fun () -> P.Pipelines.distribute_pipeline f)
  in
  Alcotest.(check int) "loops split" 1 stats.P.Pipelines.distribute_split;
  Alcotest.(check int) "pieces" 2 stats.P.Pipelines.distribute_pieces;
  let dist =
    List.filter
      (fun d ->
        String.length d >= 10
        && (String.sub d 0 10 = "distribute" || String.sub d 0 9 = "loop-dist"))
      (decisions remarks)
  in
  Alcotest.(check (list string))
    "decision trail"
    [ "distribute granted versioned conds=6"; "loop-distributed pieces=2 conds=6" ]
    dist

(* with restrict the arrays are statically disjoint: both clients fire
   without any run-time condition *)
let test_dse_static_restrict () =
  let f = Fgv_frontend.Lower_ast.compile (tsvc "s222") in
  let stats, remarks =
    Tr.collect_remarks (fun () ->
        P.Pipelines.dse_pipeline ~versioning:false f)
  in
  Alcotest.(check int) "forwarded" 1 stats.P.Pipelines.dse_forwarded;
  Alcotest.(check int) "killed" 1 stats.P.Pipelines.dse_killed;
  Alcotest.(check (list string))
    "decision trail"
    [
      "dse-forward granted static conds=0";
      "dse-kill granted static conds=0";
      "store-eliminated forwarded=1 killed=1";
    ]
    (decisions remarks)

(* ---------------------------------------------------------- negatives *)

let test_kill_denied_unversionable () =
  (* the read-only opaque call between the store pair may read any cell
     — it has no SCEV range, so its dependence on the first store is
     unconditional: no run-time check can version it away.  (A guarded
     store or an affine load would NOT do here: the guard predicate or
     an interval-disjointness test makes those versionable, and the
     client rightly takes the deal.) *)
  let src =
    {| kernel neg(float* a, float* b, int n) {
         a[0] = 1.0;
         b[1] = opaque_read(0);
         a[0] = 3.0;
       } |}
  in
  let f = Fgv_frontend.Lower_ast.compile_no_restrict src in
  let before = count_stores f in
  let stats, remarks =
    Tr.collect_remarks (fun () -> P.Pipelines.dse_pipeline f)
  in
  Alcotest.(check int) "nothing forwarded" 0 stats.P.Pipelines.dse_forwarded;
  Alcotest.(check int) "nothing killed" 0 stats.P.Pipelines.dse_killed;
  Alcotest.(check int) "stores untouched" before (count_stores f);
  Alcotest.(check (list string))
    "the kill wish is denied" [ "dse-kill denied" ] (decisions remarks)

let test_distribute_no_candidate_on_flow () =
  (* s221: the second statement consumes a[i], which the first statement
     writes — a genuine flow dependence, so the statement groups fuse
     and there is nothing to distribute (not even a wish to deny) *)
  let f = Fgv_frontend.Lower_ast.compile_no_restrict (tsvc "s221") in
  let stats, remarks =
    Tr.collect_remarks (fun () -> P.Pipelines.distribute_pipeline f)
  in
  Alcotest.(check int) "no split" 0 stats.P.Pipelines.distribute_split;
  Alcotest.(check (list string))
    "no distribute decisions" []
    (List.filter
       (fun d -> String.length d >= 4 && String.sub d 0 4 <> "dse-")
       (decisions remarks))

let test_distribute_denied_without_versioning () =
  (* the s2251 split needs run-time checks; with versioning off the
     wish must be denied and the loop left fused *)
  let f = Fgv_frontend.Lower_ast.compile_no_restrict (tsvc "s2251") in
  let stats, remarks =
    Tr.collect_remarks (fun () ->
        P.Pipelines.distribute_pipeline ~versioning:false f)
  in
  Alcotest.(check int) "no split" 0 stats.P.Pipelines.distribute_split;
  Alcotest.(check (list string))
    "denied" [ "distribute denied" ]
    (List.filter (fun d -> d = "distribute denied") (decisions remarks))

(* ------------------------------------------------- jobs determinism *)

let determinism_sources () =
  [ tsvc "s222"; tsvc "s2251"; tsvc "s221"; tsvc "s124" ]
  @ List.init 4 (fun seed -> G.render (G.generate ~seed:(seed + 60) ()))

let clients_fingerprint jobs =
  Tm.reset ();
  Tr.reset ();
  Tr.set_remarks true;
  ignore
    (Pool.map ~jobs
       (fun src ->
         let f = Fgv_frontend.Lower_ast.compile_no_restrict src in
         ignore (P.Pipelines.dse_pipeline f);
         let g = Fgv_frontend.Lower_ast.compile_no_restrict src in
         ignore (P.Pipelines.distribute_pipeline g);
         let h = Fgv_frontend.Lower_ast.compile_no_restrict src in
         ignore (P.Pipelines.combined h))
       (determinism_sources ()));
  let remarks = Tr.remarks_jsonl () in
  let counters =
    String.concat "\n"
      (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (Tm.counters ()))
  in
  Tr.set_remarks false;
  Tr.reset ();
  Tm.reset ();
  (remarks, counters)

let test_jobs_determinism () =
  let r1, c1 = clients_fingerprint 1 in
  let r4, c4 = clients_fingerprint 4 in
  Alcotest.(check string) "remark stream byte-identical at jobs 1 vs 4" r1 r4;
  Alcotest.(check string) "telemetry byte-identical at jobs 1 vs 4" c1 c4

let suite =
  [
    Alcotest.test_case "DSE decision golden: s222 (no restrict)" `Quick
      test_dse_golden_s222;
    Alcotest.test_case "distribution decision golden: s2251" `Quick
      test_distribute_golden_s2251;
    Alcotest.test_case "DSE static grants under restrict" `Quick
      test_dse_static_restrict;
    Alcotest.test_case "negative: unversionable kill leaves stores" `Quick
      test_kill_denied_unversionable;
    Alcotest.test_case "negative: flow dependence blocks distribution" `Quick
      test_distribute_no_candidate_on_flow;
    Alcotest.test_case "negative: no versioning, wish denied" `Quick
      test_distribute_denied_without_versioning;
    Alcotest.test_case "clients deterministic at jobs 1 vs 4" `Quick
      test_jobs_determinism;
  ]
