(* Property tests on randomly generated programs, now driven by the
   differential-fuzzing subsystem (lib/fuzz): the versioning framework
   and every pipeline must preserve observational behaviour (final
   memory + impure call trace) on seeded structured kernels over 2-4
   possibly-aliasing pointers, evaluated under the binding generator's
   disjoint, identical, and partially overlapping layouts.

   QCheck2 supplies iteration counts and seeds; the program grammar,
   binding layouts and oracles all live in {!Fgv_fuzz}, so these
   properties and the [fgvc --fuzz] campaigns exercise the exact same
   machinery. *)

open Fgv_pssa
module V = Fgv_versioning
module F = Fgv_fuzz
module G = F.Generator
module O = F.Oracle

(* A generated case is a pure function of its seed; QCheck2 generates
   (and shrinks over) seeds.  Programs here are slightly smaller than
   the campaign default so 800-count properties stay quick. *)
let base_config = { G.default_config with G.size = 10 }

let case_of_seed ~restrict seed =
  let cfg = { (G.vary base_config ~seed) with G.restrict_ptrs = restrict } in
  (cfg, G.generate ~config:cfg ~seed ())

let gen_seed = QCheck2.Gen.int_range 0 1_000_000

let print_seed ~restrict seed =
  let _, fd = case_of_seed ~restrict seed in
  Printf.sprintf "seed %d:\n%s" seed (G.render fd)

(* A pipeline property: the multi-oracle checker (per-pass verifier,
   PSSA diff under every layout, CFG lowering diff) finds no mismatch. *)
let pipeline_prop ?(count = 800) ?(restrict = false) name pipeline =
  QCheck2.Test.make ~name ~print:(print_seed ~restrict) ~count gen_seed
    (fun seed ->
      let cfg, fd = case_of_seed ~restrict seed in
      match O.check_pipeline ~config:cfg fd pipeline with
      | None -> true
      | Some m -> QCheck2.Test.fail_reportf "%s" (O.mismatch_to_string m))

(* Property 1: requesting independence of the top-level stores and
   materializing the plan preserves behaviour.  This transforms the
   function piecemeal through the versioning API, so it uses the
   oracle's function-level comparison rather than a whole pipeline. *)

let top_stores (f : Ir.func) =
  List.filter_map
    (fun item ->
      match item with
      | Ir.I v -> (
        match (Ir.inst f v).Ir.kind with
        | Ir.Store _ -> Some (Ir.NI v)
        | _ -> None)
      | Ir.L _ -> None)
    f.Ir.fbody

let prop_versioning_preserves =
  QCheck2.Test.make ~name:"versioning random store groups preserves behaviour"
    ~print:(print_seed ~restrict:false) ~count:400 gen_seed (fun seed ->
      let cfg, fd = case_of_seed ~restrict:false seed in
      let reference = Fgv_frontend.Lower_ast.lower_fdecl fd in
      let f = Fgv_frontend.Lower_ast.lower_fdecl fd in
      Verifier.verify reference;
      let stores = top_stores f in
      if List.length stores < 2 then true
      else begin
        let session = V.Api.create f Ir.Rtop in
        (match V.Api.request_independence session stores with
        | Some _ -> ignore (V.Api.materialize session)
        | None -> ());
        match Verifier.verify_or_message f with
        | Some msg -> QCheck2.Test.fail_reportf "ill-formed: %s" msg
        | None -> (
          match
            O.compare_funcs ~config:cfg ~layouts:(G.layouts_for cfg)
              ~label:"versioning" reference f
          with
          | None -> true
          | Some m -> QCheck2.Test.fail_reportf "%s" (O.mismatch_to_string m))
      end)

(* Property 2: the full pipelines preserve behaviour on random programs. *)
let prop_o3 = pipeline_prop "o3 pipeline on random programs" "o3"

let prop_svv = pipeline_prop "sv+versioning pipeline on random programs" "sv+v"

let prop_rle = pipeline_prop "rle pipeline on random programs" "rle"

(* The wish-spec clients: store forwarding/elimination, loop
   distribution, and the combined pipeline that stacks both under SLP.
   check_pipeline gives memory + impure-trace equivalence against the
   unoptimized baseline across random layouts, and runs the Verifier on
   every per-pass intermediate. *)
let prop_dse = pipeline_prop ~count:200 "dse pipeline on random programs" "dse"

let prop_distribute =
  pipeline_prop ~count:200 "distribute pipeline on random programs" "distribute"

let prop_combined =
  pipeline_prop ~count:200 "combined clients pipeline on random programs"
    "combined"

(* Property 2b: behaviour preservation must hold regardless of the
   condition-promotion setting — promotion only widens checks (more
   fallback executions), never changes what either version computes. *)
let prop_promotion_on =
  pipeline_prop "sv+versioning with promotion on" "sv+v"

let prop_promotion_off =
  pipeline_prop "sv+versioning with promotion off" "sv+v-nopromo"

(* The same random programs with [restrict]-qualified pointers.  Binding
   restrict pointers to overlapping regions is undefined behaviour, so
   the binding generator evaluates ONLY disjoint layouts for these. *)
let prop_restrict_svv =
  pipeline_prop ~count:400 ~restrict:true
    "sv+versioning on restrict-qualified programs" "sv+v"

let prop_restrict_rle =
  pipeline_prop ~count:400 ~restrict:true
    "rle pipeline on restrict-qualified programs" "rle"

(* Property 3: CFG lowering of the optimized program still agrees.
   (check_pipeline's third oracle lowers the transformed function to the
   CFG and diffs it against the PSSA reference under every layout.) *)
let prop_cfg =
  pipeline_prop ~count:120 "CFG lowering of versioned random programs" "sv+v"

(* Property 4: the native backend agrees too.  100 random programs (50
   seeds x the default sv+v and the combined clients pipeline) run
   through the full oracle with the native differential enabled: each
   optimized program is lowered to checked-mode C, compiled with the
   system toolchain, and its class + final memory + impure-call trace
   diffed against the PSSA reference under every aliasing layout.  This
   is a plain Alcotest case, not QCheck: it must be able to skip with a
   clear message on machines without a C compiler. *)
let test_native_differential () =
  if not (Fgv_backend.Native.available ()) then begin
    print_endline
      "skipping native differential: no C compiler on PATH (set FGV_CC)";
    Alcotest.skip ()
  end;
  List.iter
    (fun pipeline ->
      for seed = 0 to 49 do
        let cfg, fd = case_of_seed ~restrict:false seed in
        match O.check_pipeline ~native:true ~config:cfg fd pipeline with
        | None -> ()
        | Some m ->
          Alcotest.failf "seed %d / %s: %s\n%s" seed pipeline
            (O.mismatch_to_string m) (G.render fd)
      done)
    [ "sv+v"; "combined" ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_versioning_preserves;
    QCheck_alcotest.to_alcotest prop_o3;
    QCheck_alcotest.to_alcotest prop_svv;
    QCheck_alcotest.to_alcotest prop_rle;
    QCheck_alcotest.to_alcotest prop_dse;
    QCheck_alcotest.to_alcotest prop_distribute;
    QCheck_alcotest.to_alcotest prop_combined;
    QCheck_alcotest.to_alcotest prop_promotion_on;
    QCheck_alcotest.to_alcotest prop_promotion_off;
    QCheck_alcotest.to_alcotest prop_restrict_svv;
    QCheck_alcotest.to_alcotest prop_restrict_rle;
    QCheck_alcotest.to_alcotest prop_cfg;
    Alcotest.test_case "native differential on random programs" `Slow
      test_native_differential;
  ]
