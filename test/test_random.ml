(* Property tests on randomly generated programs: the versioning
   framework and every pipeline must preserve observational behaviour
   (final memory + impure call trace) on arbitrary straight-line /
   conditional / looping kernels over two possibly-aliasing pointers,
   evaluated under disjoint, identical, and partially overlapping
   argument bindings. *)

open Fgv_pssa
open Fgv_frontend
module V = Fgv_versioning
module P = Fgv_passes

(* ----------------------------------------------------- AST generation *)

(* Programs over params (float* p, float* q, int n): a mix of constant-
   and induction-indexed loads/stores, scalar arithmetic, conditionals
   (possibly with an impure call), and small counted loops. *)

type genv = { mutable fresh : int; mutable scope : string list }

let gen_program : Ast.fdecl QCheck2.Gen.t =
  let open QCheck2.Gen in
  (* the mutable scope environment must be created per generator run
     (shrinking re-runs the continuation) *)
  let* () = return () in
  let ptr = oneofl [ "p"; "q" ] in
  let idx = int_range 0 7 in
  let rec gen_expr env depth =
    if depth <= 0 then
      oneof
        ([ map (fun x -> Ast.Efloat (Float.of_int x *. 0.5)) (int_range (-4) 9) ]
        @ [ map
              (fun i ->
                (* the scope snapshot is taken when the closure runs;
                   guard against emptiness so shrink replays stay total *)
                match env.scope with
                | [] -> Ast.Efloat 0.5
                | sc -> Ast.Evar (List.nth sc (i mod List.length sc)))
              (int_range 0 20) ]
        @ [ map2 (fun p i -> Ast.Eindex (p, Ast.Eint i)) ptr idx ])
    else
      oneof
        [
          gen_expr env 0;
          map3
            (fun op a b -> Ast.Ebin (op, a, b))
            (oneofl [ "+"; "-"; "*" ])
            (gen_expr env (depth - 1))
            (gen_expr env (depth - 1));
          map3
            (fun c a b ->
              Ast.Eternary (Ast.Ebin ("<", c, Ast.Efloat 1.0), a, b))
            (gen_expr env (depth - 1))
            (gen_expr env (depth - 1))
            (gen_expr env (depth - 1));
        ]
  in
  let gen_store env =
    map3
      (fun p i e -> Ast.Sstore (p, Ast.Eint i, e))
      ptr idx (gen_expr env 2)
  in
  let gen_decl env =
    let* e = gen_expr env 2 in
    let name = Printf.sprintf "x%d" env.fresh in
    env.fresh <- env.fresh + 1;
    env.scope <- name :: env.scope;
    return (Ast.Sdecl (Ast.Tfloat, name, e))
  in
  let gen_cond_expr env =
    map2 (fun e x -> Ast.Ebin (">", e, Ast.Efloat x)) (gen_expr env 1)
      (map Float.of_int (int_range (-2) 2))
  in
  let rec gen_stmt env depth =
    let base =
      [ (4, gen_store env); (3, gen_decl env) ]
      @
      if depth <= 0 then []
      else
        [
          ( 2,
            let* c = gen_cond_expr env in
            let saved = env.scope in
            let* then_ = gen_stmts env (depth - 1) (1 -- 3) in
            env.scope <- saved;
            let* else_ =
              oneof [ return []; gen_stmts env (depth - 1) (1 -- 2) ]
            in
            env.scope <- saved;
            return (Ast.Sif (c, then_, else_)) );
          ( 1,
            let* c = gen_cond_expr env in
            return (Ast.Sif (c, [ Ast.Sexpr (Ast.Ecall ("cold_func", [])) ], []))
          );
          ( 1,
            (* small counted loop with induction-indexed accesses *)
            let* k = int_range 2 5 in
            let* p1 = ptr and* p2 = ptr in
            let* off = int_range 0 2 in
            let body =
              [
                Ast.Sstore
                  ( p1,
                    Ast.Ebin ("+", Ast.Evar "li", Ast.Eint off),
                    Ast.Ebin
                      ( "+",
                        Ast.Eindex (p2, Ast.Evar "li"),
                        Ast.Efloat 1.0 ) );
              ]
            in
            return
              (Ast.Sfor
                 ( Ast.Sdecl (Ast.Tint, "li", Ast.Eint 0),
                   Ast.Ebin ("<", Ast.Evar "li", Ast.Eint k),
                   Ast.Sassign ("li", Ast.Ebin ("+", Ast.Evar "li", Ast.Eint 1)),
                   body )) );
        ]
    in
    frequency base
  and gen_stmts env depth n_gen =
    let* n = n_gen in
    let rec go acc k =
      if k = 0 then return (List.rev acc)
      else
        let* s = gen_stmt env depth in
        go (s :: acc) (k - 1)
    in
    go [] n
  in
  let env = { fresh = 0; scope = [] } in
  let* body = gen_stmts env 2 (4 -- 10) in
  return
    {
      Ast.fdname = "rand";
      fdparams =
        [
          { Ast.pname = "p"; pty = Ast.Tptr Ast.Tfloat; prestrict = false };
          { Ast.pname = "q"; pty = Ast.Tptr Ast.Tfloat; prestrict = false };
          { Ast.pname = "n"; pty = Ast.Tint; prestrict = false };
        ];
      fdbody = body;
    }

(* ------------------------------------------------------- AST printing *)

let rec render_expr = function
  | Ast.Eint n -> string_of_int n
  | Ast.Efloat x -> Printf.sprintf "%g" x
  | Ast.Ebool b -> string_of_bool b
  | Ast.Evar x -> x
  | Ast.Eindex (p, e) -> Printf.sprintf "%s[%s]" p (render_expr e)
  | Ast.Ebin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (render_expr a) op (render_expr b)
  | Ast.Eun (op, a) -> Printf.sprintf "%s(%s)" op (render_expr a)
  | Ast.Eternary (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (render_expr c) (render_expr a)
      (render_expr b)
  | Ast.Ecall (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map render_expr args))
  | Ast.Ecast (t, e) ->
    Printf.sprintf "(%s) %s" (Ast.string_of_ty t) (render_expr e)

let rec render_stmt ind s =
  let pad = String.make ind ' ' in
  match s with
  | Ast.Sdecl (t, x, e) ->
    Printf.sprintf "%s%s %s = %s;" pad (Ast.string_of_ty t) x (render_expr e)
  | Ast.Sassign (x, e) -> Printf.sprintf "%s%s = %s;" pad x (render_expr e)
  | Ast.Sstore (p, i, e) ->
    Printf.sprintf "%s%s[%s] = %s;" pad p (render_expr i) (render_expr e)
  | Ast.Sexpr e -> Printf.sprintf "%s%s;" pad (render_expr e)
  | Ast.Sif (c, t, e) ->
    Printf.sprintf "%sif (%s) {\n%s\n%s}%s" pad (render_expr c)
      (String.concat "\n" (List.map (render_stmt (ind + 2)) t))
      pad
      (if e = [] then ""
       else
         Printf.sprintf " else {\n%s\n%s}"
           (String.concat "\n" (List.map (render_stmt (ind + 2)) e))
           pad)
  | Ast.Sfor (init, c, step, body) ->
    Printf.sprintf "%sfor (%s %s; %s) {\n%s\n%s}" pad
      (render_stmt 0 init) (render_expr c)
      (String.trim (render_stmt 0 step))
      (String.concat "\n" (List.map (render_stmt (ind + 2)) body))
      pad
  | Ast.Swhile (c, body) ->
    Printf.sprintf "%swhile (%s) {\n%s\n%s}" pad (render_expr c)
      (String.concat "\n" (List.map (render_stmt (ind + 2)) body))
      pad

let render_fdecl (fd : Ast.fdecl) =
  Printf.sprintf "kernel %s(...) {\n%s\n}" fd.Ast.fdname
    (String.concat "\n" (List.map (render_stmt 2) fd.Ast.fdbody))

(* --------------------------------------------------------- evaluation *)

let bindings = [ (0, 16); (0, 0); (0, 3); (5, 2); (0, 13) ]

let mem () = Array.init 32 (fun i -> Value.VFloat (Float.of_int ((i * 11 mod 13) - 6)))

let behaves_identically f g =
  List.for_all
    (fun (p, q) ->
      let args = [ Value.VInt p; Value.VInt q; Value.VInt 8 ] in
      let a = Interp.run f ~args ~mem:(mem ()) in
      let b = Interp.run g ~args ~mem:(mem ()) in
      Interp.equivalent a b)
    bindings

let top_stores (f : Ir.func) =
  List.filter_map
    (fun item ->
      match item with
      | Ir.I v -> (
        match (Ir.inst f v).Ir.kind with
        | Ir.Store _ -> Some (Ir.NI v)
        | _ -> None)
      | Ir.L _ -> None)
    f.Ir.fbody

(* Statement-level shrinking can drop a declaration while keeping a use;
   such programs are rejected by the frontend and are vacuously fine. *)
let lower_pair fd =
  match Lower_ast.lower_fdecl fd with
  | reference -> (
    match Lower_ast.lower_fdecl fd with
    | f -> Some (reference, f)
    | exception Lower_ast.Error _ -> None)
  | exception Lower_ast.Error _ -> None

(* Property 1: requesting independence of the top-level stores and
   materializing the plan preserves behaviour. *)
let prop_versioning_preserves =
  QCheck2.Test.make ~name:"versioning random store groups preserves behaviour"
    ~print:render_fdecl ~count:400 gen_program (fun fd ->
      match lower_pair fd with
      | None -> true
      | Some (reference, f) ->
      Verifier.verify reference;
      let stores = top_stores f in
      if List.length stores < 2 then true
      else begin
        let session = V.Api.create f Ir.Rtop in
        (match V.Api.request_independence session stores with
        | Some _ -> ignore (V.Api.materialize session)
        | None -> ());
        match Verifier.verify_or_message f with
        | Some msg -> QCheck2.Test.fail_reportf "ill-formed: %s" msg
        | None -> behaves_identically reference f
      end)

(* Property 2: the full pipelines preserve behaviour on random programs. *)
let pipeline_prop name pipeline =
  QCheck2.Test.make ~name ~print:render_fdecl ~count:800 gen_program (fun fd ->
      match lower_pair fd with
      | None -> true
      | Some (reference, f) -> (
        pipeline f;
        match Verifier.verify_or_message f with
        | Some msg -> QCheck2.Test.fail_reportf "ill-formed: %s" msg
        | None -> behaves_identically reference f))

let prop_o3 = pipeline_prop "o3 pipeline on random programs" (fun f ->
    ignore (P.Pipelines.o3 f))

let prop_svv =
  pipeline_prop "sv+versioning pipeline on random programs" (fun f ->
      ignore (P.Pipelines.sv_versioning f))

let prop_rle =
  pipeline_prop "rle pipeline on random programs" (fun f ->
      ignore (P.Pipelines.rle_pipeline f))

(* Property 2b: behaviour preservation must hold regardless of the
   condition-promotion setting — promotion only widens checks (more
   fallback executions), never changes what either version computes. *)
let prop_promotion_on =
  pipeline_prop "sv+versioning with promotion on" (fun f ->
      ignore (P.Pipelines.sv ~versioning:true ~promotion:true f))

let prop_promotion_off =
  pipeline_prop "sv+versioning with promotion off" (fun f ->
      ignore (P.Pipelines.sv ~versioning:true ~promotion:false f))

(* ------------------------------------------------- restrict variants *)

(* The same random programs with [restrict]-qualified pointers.  Binding
   restrict pointers to overlapping regions is undefined behaviour, so
   these properties evaluate ONLY disjoint bindings — the generator's
   accesses stay within [base, base+16). *)

let gen_program_restrict : Ast.fdecl QCheck2.Gen.t =
  QCheck2.Gen.map
    (fun fd ->
      {
        fd with
        Ast.fdparams =
          List.map
            (fun p ->
              if p.Ast.pty = Ast.Tptr Ast.Tfloat then
                { p with Ast.prestrict = true }
              else p)
            fd.Ast.fdparams;
      })
    gen_program

let disjoint_bindings = [ (0, 16); (16, 0) ]

let behaves_identically_disjoint f g =
  List.for_all
    (fun (p, q) ->
      let args = [ Value.VInt p; Value.VInt q; Value.VInt 8 ] in
      let a = Interp.run f ~args ~mem:(mem ()) in
      let b = Interp.run g ~args ~mem:(mem ()) in
      Interp.equivalent a b)
    disjoint_bindings

let restrict_pipeline_prop name pipeline =
  QCheck2.Test.make ~name ~print:render_fdecl ~count:400 gen_program_restrict
    (fun fd ->
      match lower_pair fd with
      | None -> true
      | Some (reference, f) -> (
        pipeline f;
        match Verifier.verify_or_message f with
        | Some msg -> QCheck2.Test.fail_reportf "ill-formed: %s" msg
        | None -> behaves_identically_disjoint reference f))

let prop_restrict_svv =
  restrict_pipeline_prop "sv+versioning on restrict-qualified programs"
    (fun f -> ignore (P.Pipelines.sv_versioning f))

let prop_restrict_rle =
  restrict_pipeline_prop "rle pipeline on restrict-qualified programs"
    (fun f -> ignore (P.Pipelines.rle_pipeline f))

(* Property 3: CFG lowering of the optimized program still agrees. *)
let prop_cfg =
  QCheck2.Test.make ~name:"CFG lowering of versioned random programs"
    ~print:render_fdecl ~count:120 gen_program (fun fd ->
      match lower_pair fd with
      | None -> true
      | Some (reference, f) ->
      ignore (P.Pipelines.sv_versioning f);
      let prog = Fgv_cfg.Lower.lower f in
      List.for_all
        (fun (p, q) ->
          let args = [ Value.VInt p; Value.VInt q; Value.VInt 8 ] in
          let a = Interp.run reference ~args ~mem:(mem ()) in
          let b = Fgv_cfg.Cinterp.run prog ~args ~mem:(mem ()) in
          Harness.cross_equivalent a b)
        bindings)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_versioning_preserves;
    QCheck_alcotest.to_alcotest prop_o3;
    QCheck_alcotest.to_alcotest prop_svv;
    QCheck_alcotest.to_alcotest prop_rle;
    QCheck_alcotest.to_alcotest prop_promotion_on;
    QCheck_alcotest.to_alcotest prop_promotion_off;
    QCheck_alcotest.to_alcotest prop_restrict_svv;
    QCheck_alcotest.to_alcotest prop_restrict_rle;
    QCheck_alcotest.to_alcotest prop_cfg;
  ]
