(* PSSA -> CFG lowering tests: for every kernel and input, the CFG
   interpretation must be observationally equivalent to the PSSA one. *)

open Harness

let kernels_with_inputs =
  [
    ( "sum",
      {|
      kernel sum(float* a, float* out, int n) {
        float s = 0.0;
        for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }
        out[0] = s;
      }
    |},
      [ ints [ 0; 20; 17 ]; ints [ 0; 20; 0 ]; ints [ 0; 20; 1 ] ] );
    ( "relu",
      {|
      kernel relu(float* a, float* b, int n) {
        for (int i = 0; i < n; i = i + 1) {
          float x = a[i];
          if (x > 0.0) { b[i] = x; } else { b[i] = 0.0 - x; }
        }
      }
    |},
      [ ints [ 0; 12; 10 ] ] );
    ( "rowsum",
      {|
      kernel rowsum(float* a, float* out, int n, int m) {
        for (int i = 0; i < n; i = i + 1) {
          float s = 0.0;
          for (int j = 0; j < m; j = j + 1) { s = s + a[i * m + j]; }
          out[i] = s;
        }
      }
    |},
      [ ints [ 0; 24; 4; 5 ]; ints [ 0; 24; 0; 5 ]; ints [ 0; 24; 4; 0 ] ] );
    ( "fig1",
      {|
      kernel fig1(float* X, float* Y) {
        Y[0] = 0.0;
        if (X[0] != 0.0) { cold_func(); }
        Y[1] = 0.0;
      }
    |},
      [ ints [ 4; 1 ]; ints [ 3; 3 ]; ints [ 4; 3 ] ] );
    ( "guarded accumulation",
      {|
      kernel s258ish(float* a, float* b, float* c, float* d, float* e, float* aa, int n) {
        float s = 0.0;
        for (int i = 0; i < n; i = i + 1) {
          if (a[i] > 0.0) { s = d[i] * d[i]; }
          b[i] = s * c[i] + d[i];
          e[i] = (s + 1.0) * aa[i];
        }
      }
    |},
      [ ints [ 0; 8; 16; 24; 32; 40; 8 ] ] );
    ( "while with conditional update",
      {|
      kernel collatz(float* out, int start) {
        int x = start;
        int steps = 0;
        while (x != 1) {
          if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
          steps = steps + 1;
        }
        out[0] = (float) steps;
      }
    |},
      [ ints [ 0; 6 ]; ints [ 0; 1 ]; ints [ 0; 27 ] ] );
  ]

let test_equivalence () =
  List.iter
    (fun (name, src, input_sets) ->
      let f = compile src in
      List.iter
        (fun args ->
          let mem = float_mem 64 (fun i -> Float.of_int ((i * 7 mod 13) - 5) *. 0.25) in
          let a = run_pssa f ~args ~mem in
          let b = run_cfg f ~args ~mem in
          if not (cross_equivalent a b) then
            Alcotest.failf "CFG lowering changed behaviour of %s" name)
        input_sets)
    kernels_with_inputs

(* Named benchmark kernels the paper leans on, checked differentially:
   the PSSA interpretation of the *untransformed* kernel must match the
   CFG interpretation of the fully sv+v-optimized one, on the kernel's
   own inputs and heap. *)
module W = Fgv_bench.Workload

let named_kernel_cases =
  [
    ("s131", Fgv_bench.Tsvc.kernels);
    ("floyd-warshall", Fgv_bench.Polybench.kernels);
    ("lbm_r", Fgv_bench.Specfp.kernels);
  ]

let test_named_kernel_differential () =
  List.iter
    (fun (name, pool) ->
      let k = List.find (fun k -> k.W.k_name = name) pool in
      let reference = compile k.W.k_source in
      let subject = compile k.W.k_source in
      ignore (Fgv_passes.Pipelines.sv_versioning subject);
      let mem = float_mem k.W.k_heap k.W.k_init in
      let a = run_pssa reference ~args:k.W.k_args ~mem in
      let b = run_cfg subject ~args:k.W.k_args ~mem in
      if not (cross_equivalent a b) then
        Alcotest.failf "PSSA/CFG differential failed for %s" name)
    named_kernel_cases

let test_branch_counter () =
  (* a loop of n iterations must execute at least n conditional branches *)
  let f =
    compile
      {|
      kernel count(float* a, int n) {
        for (int i = 0; i < n; i = i + 1) { a[i] = 1.0; }
      }
    |}
  in
  let mem = float_mem 16 (fun _ -> 0.0) in
  let out = run_cfg f ~args:(ints [ 0; 10 ]) ~mem in
  Alcotest.(check bool) "branches >= iterations" true (out.counters.branches >= 10)

let test_static_size () =
  let f = compile "kernel tiny(float* a) { a[0] = 1.0; }" in
  let prog = Fgv_cfg.Lower.lower f in
  Alcotest.(check bool) "nonzero size" true (Fgv_cfg.Cir.static_size prog > 0)

let suite =
  [
    Alcotest.test_case "PSSA/CFG equivalence" `Quick test_equivalence;
    Alcotest.test_case "named kernel differential (s131, floyd-warshall, lbm_r)"
      `Quick test_named_kernel_differential;
    Alcotest.test_case "branch counter" `Quick test_branch_counter;
    Alcotest.test_case "static size" `Quick test_static_size;
  ]
