(* doc-check — the documentation linter wired into `dune runtest` and CI.

   The README carries three machine-checked regions, delimited by HTML
   comments so the prose around them stays free-form:

     <!-- doc-check:pipelines:begin --> ... <!-- doc-check:pipelines:end -->
     <!-- doc-check:flags:begin -->     ... <!-- doc-check:flags:end -->
     <!-- doc-check:version:begin -->   ... <!-- doc-check:version:end -->

   - the pipelines region's table rows (first cell, backtick-quoted)
     must list exactly "none" plus {!Fgv_passes.Pipelines.names}, in
     registry order — so adding a pipeline without documenting it fails
     the build, as does documenting one that does not exist;
   - the flags region must mention exactly the --flags `fgvc --help`
     advertises (minus cmdliner's own --help/--version);
   - the version region must quote the current
     {!Fgv_support.Version.banner} verbatim, so schema-version bumps
     cannot ship with stale docs.

   Usage: doc_check README.md fgvc_help.txt
   where fgvc_help.txt is `fgvc --help=plain` output (a dune rule
   generates it from the freshly built driver).  Exits 1 with a
   both-directions diff on drift. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let failures : string list ref = ref []

let complain fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt

(* The text between the begin/end markers of one doc-check region. *)
let region (name : string) (text : string) : string option =
  let b = Printf.sprintf "<!-- doc-check:%s:begin -->" name in
  let e = Printf.sprintf "<!-- doc-check:%s:end -->" name in
  let find needle =
    try Some (Str.search_forward (Str.regexp_string needle) text 0)
    with Not_found -> None
  in
  match (find b, find e) with
  | Some i, Some j when i < j ->
    let start = i + String.length b in
    Some (String.sub text start (j - start))
  | _ ->
    complain "README is missing the %s / %s markers" b e;
    None

let sorted_unique l = List.sort_uniq compare l

let all_matches re text =
  let rec go acc pos =
    match Str.search_forward re text pos with
    | exception Not_found -> List.rev acc
    | i -> go (Str.matched_string text :: acc) (i + 1)
  in
  go [] 0

(* Set difference rendered for the failure message. *)
let missing_from ~where expected actual =
  List.iter
    (fun x ->
      if not (List.mem x actual) then complain "%s is missing %s" where x)
    expected

let check_pipelines readme =
  match region "pipelines" readme with
  | None -> ()
  | Some body ->
    let expected = "none" :: Fgv_passes.Pipelines.names in
    (* First cell of each table row, `name`-quoted. *)
    let documented =
      List.filter_map
        (fun line ->
          let line = String.trim line in
          if Str.string_match (Str.regexp "^| *`\\([^`]+\\)` *|") line 0
          then Some (Str.matched_group 1 line)
          else None)
        (String.split_on_char '\n' body)
    in
    if documented <> expected then begin
      missing_from ~where:"README pipeline table" expected documented;
      missing_from ~where:"the pipeline registry" documented expected;
      if sorted_unique documented = sorted_unique expected then
        complain
          "README pipeline table lists all pipelines but not in registry \
           order: %s"
          (String.concat ", " documented)
    end

let flag_re = Str.regexp "--[a-z][a-z0-9-]*"

let check_flags readme help =
  match region "flags" readme with
  | None -> ()
  | Some body ->
    let advertised =
      sorted_unique (all_matches flag_re help)
      |> List.filter (fun f -> f <> "--help" && f <> "--version")
    in
    let documented = sorted_unique (all_matches flag_re body) in
    missing_from ~where:"README flag reference" advertised documented;
    missing_from ~where:"fgvc --help" documented advertised

let check_version readme =
  match region "version" readme with
  | None -> ()
  | Some body ->
    let banner = Fgv_support.Version.banner in
    if
      not
        (try
           ignore (Str.search_forward (Str.regexp_string banner) body 0);
           true
         with Not_found -> false)
    then
      complain
        "README version region does not quote the current banner %S" banner

let () =
  let readme_path, help_path =
    match Sys.argv with
    | [| _; r; h |] -> (r, h)
    | _ ->
      prerr_endline "usage: doc_check README.md fgvc_help.txt";
      exit 2
  in
  let readme = read_file readme_path in
  let help = read_file help_path in
  check_pipelines readme;
  check_flags readme help;
  check_version readme;
  match List.rev !failures with
  | [] -> print_endline "doc-check: README agrees with the tool"
  | fs ->
    List.iter (fun f -> Printf.eprintf "doc-check: %s\n" f) fs;
    Printf.eprintf "doc-check: %d problem(s) — README.md and the driver \
                    have drifted\n"
      (List.length fs);
    exit 1
