(* Tests for the tracing/remarks subsystem (lib/support/trace.ml) and the
   unified-diff printer backing --dump-ir snapshots:

   - span Begin/End entries nest and order deterministically;
   - the Chrome trace-event export round-trips through the independent
     JSON parser in {!Harness} and has the shape Perfetto expects;
   - the remark stream is byte-identical under Pool.map at any job count;
   - a golden test pins the versioning decision sequence (cut found ->
     check emitted -> nodes versioned) for TSVC s131, the paper's running
     symbolic-dependence-distance example;
   - udiff produces conventional unified hunks. *)

module Tr = Fgv_support.Trace
module J = Fgv_support.Json
module Pool = Fgv_support.Pool
module Udiff = Fgv_support.Udiff
module P = Fgv_passes.Pipelines

(* Run [f] with spans/remarks enabled as requested, restoring the global
   flags and clearing this domain's buffers afterwards so no other suite
   observes tracing state. *)
let with_tracing ?(spans = false) ?(remarks = false) f =
  let s0 = Tr.spans_on () and r0 = Tr.remarks_on () in
  Tr.set_spans spans;
  Tr.set_remarks remarks;
  Tr.reset ();
  Fun.protect
    ~finally:(fun () ->
      Tr.set_spans s0;
      Tr.set_remarks r0;
      Tr.reset ())
    f

(* ---------------------------------------------------------------- spans *)

(* Project the trace down to the deterministic part: (ph, name) pairs in
   emission order, skipping metadata. *)
let span_shape () =
  match Tr.chrome_trace () with
  | J.Assoc fields -> (
    match List.assoc "traceEvents" fields with
    | J.List evs ->
      List.filter_map
        (fun ev ->
          match ev with
          | J.Assoc f -> (
            match List.assoc "ph" f with
            | J.String "M" -> None
            | J.String ph ->
              let name =
                match List.assoc_opt "name" f with
                | Some (J.String n) -> n
                | _ -> ""
              in
              Some (ph, name)
            | _ -> Alcotest.fail "ph must be a string")
          | _ -> Alcotest.fail "event must be an object")
        evs
    | _ -> Alcotest.fail "traceEvents must be a list")
  | _ -> Alcotest.fail "trace must be an object"

let test_span_nesting () =
  with_tracing ~spans:true (fun () ->
      let r =
        Tr.with_span "a" (fun () ->
            let x = Tr.with_span "b" (fun () -> 1) in
            x + Tr.with_span "c" (fun () -> 2))
      in
      Alcotest.(check int) "with_span returns the thunk's value" 3 r;
      (try Tr.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
      Alcotest.(check (list (pair string string)))
        "begin/end entries encode the nesting"
        [
          ("B", "a"); ("B", "b"); ("E", ""); ("B", "c"); ("E", ""); ("E", "");
          ("B", "boom"); ("E", "");
        ]
        (span_shape ()))

let test_spans_disabled_record_nothing () =
  with_tracing ~spans:false (fun () ->
      ignore (Tr.with_span "quiet" (fun () -> 7));
      Alcotest.(check (list (pair string string)))
        "disabled spans leave no events" [] (span_shape ()))

let test_chrome_trace_shape () =
  with_tracing ~spans:true (fun () ->
      ignore
        (Tr.with_span ~cat:"pipeline" ~args:[ ("vl", J.Int 4) ] "sv" (fun () ->
             Tr.with_span ~cat:"pass" "slp" (fun () -> ())));
      match Harness.parse_json (J.to_string (Tr.chrome_trace ())) with
      | J.Assoc fields ->
        (match List.assoc "displayTimeUnit" fields with
        | J.String "ms" -> ()
        | _ -> Alcotest.fail "displayTimeUnit must be \"ms\"");
        (match List.assoc "otherData" fields with
        | J.Assoc od ->
          Alcotest.(check bool)
            "trace schema version" true
            (List.assoc "schema_version" od = J.Int 1)
        | _ -> Alcotest.fail "otherData must be an object");
        (match List.assoc "traceEvents" fields with
        | J.List evs ->
          Alcotest.(check bool) "has events" true (List.length evs >= 5);
          List.iter
            (fun ev ->
              match ev with
              | J.Assoc f -> (
                (match List.assoc "ph" f with
                | J.String ("B" | "E" | "M") -> ()
                | _ -> Alcotest.fail "ph must be B, E or M");
                match List.assoc_opt "pid" f with
                | Some (J.Int _) -> ()
                | _ -> Alcotest.fail "every event carries a pid")
              | _ -> Alcotest.fail "event must be an object")
            evs;
          (* B events carry name/cat/ts/tid; ts is a number *)
          let bs =
            List.filter
              (function
                | J.Assoc f -> List.assoc "ph" f = J.String "B"
                | _ -> false)
              evs
          in
          Alcotest.(check int) "two begin events" 2 (List.length bs);
          List.iter
            (function
              | J.Assoc f ->
                (match (List.assoc "name" f, List.assoc "cat" f) with
                | J.String _, J.String _ -> ()
                | _ -> Alcotest.fail "B event needs name and cat");
                (match List.assoc "ts" f with
                | J.Float _ | J.Int _ -> ()
                | _ -> Alcotest.fail "ts must be numeric");
                (match List.assoc "tid" f with
                | J.Int _ -> ()
                | _ -> Alcotest.fail "tid must be an int")
              | _ -> assert false)
            bs
        | _ -> Alcotest.fail "traceEvents must be a list")
      | _ -> Alcotest.fail "trace must parse as an object")

(* -------------------------------------------------------------- remarks *)

let test_remark_text_format () =
  let a = Tr.anchor ~loop:0 ~value:"v12" "fn" in
  Alcotest.(check string)
    "anchor renders as fn:L0:v12"
    "remark: fn:L0:v12: min-cut severed 2 conditional dependence edge(s) \
     (capacity 3)"
    (Tr.remark_text (a, Tr.Cut_found { edges = 2; capacity = 3 }))

let test_remarks_jsonl_roundtrip () =
  with_tracing ~remarks:true (fun () ->
      Tr.remark (Tr.anchor "f") (Tr.Pass_skipped { pass = "dce"; reason = "no opportunities" });
      Tr.remark
        (Tr.anchor ~loop:1 "f")
        (Tr.Pass_applied { pass = "slp"; work = [ ("vectors", 4) ] });
      let lines =
        String.split_on_char '\n' (Tr.remarks_jsonl ())
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "one line per remark" 2 (List.length lines);
      match List.map Harness.parse_json lines with
      | [ J.Assoc first; J.Assoc second ] ->
        Alcotest.(check bool)
          "slug field" true
          (List.assoc "remark" first = J.String "pass-skipped");
        Alcotest.(check bool)
          "anchor function" true
          (List.assoc "function" first = J.String "f");
        Alcotest.(check bool)
          "no loop key without a loop anchor" true
          (List.assoc_opt "loop" first = None);
        Alcotest.(check bool)
          "loop anchor serialized" true
          (List.assoc "loop" second = J.Int 1);
        Alcotest.(check bool)
          "pass work payload flattened" true
          (List.assoc "vectors" second = J.Int 4)
      | _ -> Alcotest.fail "each line must parse as an object")

(* The pool replays per-task trace shards in input index order, so the
   remark stream must not depend on the worker count or the schedule. *)
let test_remark_determinism_across_jobs () =
  let stream jobs =
    with_tracing ~remarks:true (fun () ->
        let work i =
          (* uneven work so jobs=4 actually interleaves *)
          let spin = if i mod 3 = 0 then 20_000 else 10 in
          let acc = ref 0 in
          for k = 1 to spin do
            acc := (!acc + (k * i)) mod 977
          done;
          Tr.remark
            (Tr.anchor ~loop:(i mod 2) (Printf.sprintf "fn%d" i))
            (Tr.Cut_found { edges = i; capacity = !acc });
          i
        in
        let out = Pool.map ~jobs work (List.init 24 Fun.id) in
        Alcotest.(check (list int)) "results in input order"
          (List.init 24 Fun.id) out;
        Tr.remarks_jsonl ())
  in
  let s1 = stream 1 in
  Alcotest.(check int) "one remark per task" 24
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' s1)));
  Alcotest.(check string) "jobs=4 matches jobs=1" s1 (stream 4);
  Alcotest.(check string) "jobs=3 matches jobs=1" s1 (stream 3)

(* Golden decision sequence for the paper's running example: compiling
   TSVC s131 (symbolic dependence distance m) under sv+v must find a
   cut, emit exactly one overlap check, and version the unrolled loop
   body — in that order.  Pins both the remark taxonomy and the
   emission points in cut.ml/materialize.ml. *)
let s131_src =
  "kernel s131(float* restrict a, float* restrict b, int n, int m) {\n\
   \  for (int i = 0; i < n - 1; i = i + 1) {\n\
   \    a[i] = a[i + m] + b[i];\n\
   \  }\n\
   }\n"

let test_golden_s131_decisions () =
  let f = Harness.compile s131_src in
  let (_ : P.pass_stats), remarks =
    Tr.collect_remarks (fun () -> P.sv_versioning f)
  in
  let decisions =
    List.filter_map
      (fun (_, r) ->
        match r with
        | Tr.Cut_found { edges; _ } -> Some (Printf.sprintf "cut:%d" edges)
        | Tr.Check_emitted { atoms; _ } -> Some (Printf.sprintf "check:%d" atoms)
        | Tr.Versioned { conds; _ } -> Some (Printf.sprintf "versioned:%d" conds)
        | Tr.Cut_infeasible _ | Tr.Plan_infeasible -> Some "infeasible"
        | Tr.Materialize_aborted _ -> Some "aborted"
        | _ -> None)
      remarks
  in
  (* four unrolled lanes each request a plan over the same dependence;
     one check of one overlap atom guards the versioned body *)
  Alcotest.(check (list string))
    "s131 decision sequence"
    [ "cut:6"; "cut:6"; "cut:6"; "cut:6"; "check:1"; "versioned:1" ]
    decisions;
  (* every remark is anchored at s131 *)
  List.iter
    (fun ((a : Tr.anchor), _) ->
      Alcotest.(check string) "anchor function" "s131" a.Tr.a_func)
    remarks;
  (* collect_remarks restored the disabled state *)
  Alcotest.(check bool) "remarks flag restored" false (Tr.remarks_on ())

(* ---------------------------------------------------------------- udiff *)

let test_udiff_equal_is_empty () =
  Alcotest.(check string) "no diff for equal inputs" ""
    (Udiff.unified "a\nb\n" "a\nb\n")

let test_udiff_golden () =
  let before = "one\ntwo\nthree\nfour\nfive\nsix\nseven\n" in
  let after = "one\ntwo\nthree\nFOUR\nfive\nsix\nseven\n" in
  Alcotest.(check string) "single-hunk replacement"
    "--- before\n\
     +++ after\n\
     @@ -1,7 +1,7 @@\n\
    \ one\n\
    \ two\n\
    \ three\n\
     -four\n\
     +FOUR\n\
    \ five\n\
    \ six\n\
    \ seven\n"
    (Udiff.unified before after)

let test_udiff_hunks_and_labels () =
  let mk n = String.concat "\n" (List.init n (Printf.sprintf "line%d")) ^ "\n" in
  let before = mk 30 in
  let after =
    String.concat "\n"
      (List.map
         (fun l -> if l = "line2" || l = "line27" then l ^ "!" else l)
         (List.init 30 (Printf.sprintf "line%d")))
    ^ "\n"
  in
  let d = Udiff.unified ~from_label:"x.pssa" ~to_label:"y.pssa" before after in
  let lines = String.split_on_char '\n' d in
  Alcotest.(check string) "from label" "--- x.pssa" (List.nth lines 0);
  Alcotest.(check string) "to label" "+++ y.pssa" (List.nth lines 1);
  let hunks = List.filter (fun l -> String.length l > 1 && l.[0] = '@') lines in
  Alcotest.(check int) "two distant changes give two hunks" 2 (List.length hunks);
  Alcotest.(check (list string))
    "hunk headers carry line numbers"
    [ "@@ -1,6 +1,6 @@"; "@@ -25,6 +25,6 @@" ]
    hunks

let test_udiff_insertion_deletion () =
  let d = Udiff.unified ~context:1 "a\nb\nc\n" "a\nc\n" in
  Alcotest.(check string) "pure deletion"
    "--- before\n+++ after\n@@ -1,3 +1,2 @@\n a\n-b\n c\n" d;
  let d = Udiff.unified ~context:1 "a\nc\n" "a\nb\nc\n" in
  Alcotest.(check string) "pure insertion"
    "--- before\n+++ after\n@@ -1,2 +1,3 @@\n a\n+b\n c\n" d

let suite =
  [
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
    Alcotest.test_case "disabled spans record nothing" `Quick
      test_spans_disabled_record_nothing;
    Alcotest.test_case "chrome trace shape round-trips" `Quick
      test_chrome_trace_shape;
    Alcotest.test_case "remark text format" `Quick test_remark_text_format;
    Alcotest.test_case "remarks JSONL round-trip" `Quick
      test_remarks_jsonl_roundtrip;
    Alcotest.test_case "remark determinism across jobs" `Quick
      test_remark_determinism_across_jobs;
    Alcotest.test_case "golden s131 decision sequence" `Quick
      test_golden_s131_decisions;
    Alcotest.test_case "udiff: equal inputs" `Quick test_udiff_equal_is_empty;
    Alcotest.test_case "udiff: golden hunk" `Quick test_udiff_golden;
    Alcotest.test_case "udiff: hunk grouping and labels" `Quick
      test_udiff_hunks_and_labels;
    Alcotest.test_case "udiff: insertions and deletions" `Quick
      test_udiff_insertion_deletion;
  ]
