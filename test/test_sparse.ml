(* Tests for the compile-time work of PR "compiler performance":

   - the sparse dependence-graph builder must produce a graph
     byte-identical to the naive all-pairs oracle — same edge ids,
     sources, destinations, conditions, in the same order — on the
     golden kernels and across a fuzz sweep;
   - predicate hash-consing: physical equality of equal predicates,
     generation behavior of [Pred.reset], and the hit/miss counters;
   - the whole pipeline (hash-cons tables, sparse build, telemetry,
     remarks) stays byte-deterministic across [--jobs] counts. *)

open Fgv_pssa
open Fgv_analysis
module Tm = Fgv_support.Telemetry
module Tr = Fgv_support.Trace
module Pool = Fgv_support.Pool
module W = Fgv_bench.Workload
module G = Fgv_fuzz.Generator

(* ------------------------------------- sparse/naive graph equivalence *)

let find_kernel name pool = List.find (fun k -> k.W.k_name = name) pool

let golden_kernels () =
  [
    find_kernel "s131" Fgv_bench.Tsvc.kernels;
    find_kernel "floyd-warshall" Fgv_bench.Polybench.kernels;
    find_kernel "lbm_r" Fgv_bench.Specfp.kernels;
  ]

(* every region of the function: top level plus each loop, recursively *)
let all_regions (f : Ir.func) : Ir.region list =
  let rec loops items =
    List.concat_map
      (function
        | Ir.I _ -> []
        | Ir.L l -> l :: loops (Ir.loop f l).Ir.body)
      items
  in
  Ir.Rtop :: List.map (fun l -> Ir.Rloop l) (loops f.Ir.fbody)

let edge_equal (a : Depgraph.edge) (b : Depgraph.edge) =
  a.Depgraph.e_id = b.Depgraph.e_id
  && a.Depgraph.e_src = b.Depgraph.e_src
  && a.Depgraph.e_dst = b.Depgraph.e_dst
  &&
  match a.Depgraph.e_cond, b.Depgraph.e_cond with
  | None, None -> true
  | Some xs, Some ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun x y -> Depcond.compare_atom x y = 0) xs ys
  | _ -> false

let check_equivalent ~what (f : Ir.func) =
  List.iter
    (fun region ->
      let scev = Scev.create f in
      let sparse = Depgraph.build f scev region in
      let naive = Depgraph.build_naive f scev region in
      let rname =
        match region with
        | Ir.Rtop -> "top"
        | Ir.Rloop l -> Printf.sprintf "L%d" l
      in
      if Array.length sparse.Depgraph.edges <> Array.length naive.Depgraph.edges
      then
        Alcotest.failf "%s %s: sparse has %d edges, naive %d" what rname
          (Array.length sparse.Depgraph.edges)
          (Array.length naive.Depgraph.edges);
      Array.iteri
        (fun k e ->
          if not (edge_equal e naive.Depgraph.edges.(k)) then
            Alcotest.failf "%s %s: edge %d differs between sparse and naive"
              what rname k)
        sparse.Depgraph.edges)
    (all_regions f)

let test_sparse_equals_naive_golden () =
  List.iter
    (fun k ->
      let f = Fgv_frontend.Lower_ast.compile k.W.k_source in
      check_equivalent ~what:k.W.k_name f)
    (golden_kernels ())

let test_sparse_equals_naive_fuzz () =
  (* a 200-seed sweep at the generator's default shape, plus a handful
     of deeper-nesting programs, all compared region by region *)
  let specs =
    List.init 200 (fun seed -> (G.default_config, seed))
    @ List.init 8 (fun seed ->
          ({ G.default_config with G.size = 30; max_loop_depth = 3 }, seed))
  in
  List.iter
    (fun (config, seed) ->
      let src = G.render (G.generate ~config ~seed ()) in
      let f = Fgv_frontend.Lower_ast.compile src in
      check_equivalent ~what:(Printf.sprintf "fuzz seed %d" seed) f)
    specs

let test_sparse_prunes () =
  (* the sparse builder must actually skip work on a real kernel: fewer
     Fig. 6 evaluations than the all-pairs oracle *)
  let k = find_kernel "floyd-warshall" Fgv_bench.Polybench.kernels in
  let f = Fgv_frontend.Lower_ast.compile k.W.k_source in
  let scev = Scev.create f in
  let count build =
    let (), delta =
      Tm.capture (fun () ->
          List.iter (fun r -> ignore (build f scev r)) (all_regions f))
    in
    match List.assoc_opt "depcond.compute_calls" delta with
    | Some n -> n
    | None -> 0
  in
  let sparse = count Depgraph.build in
  let naive = count Depgraph.build_naive in
  Alcotest.(check bool)
    (Printf.sprintf "sparse computes fewer conditions (%d < %d)" sparse naive)
    true (sparse < naive)

(* --------------------------------------------------- hash-cons basics *)

let test_hashcons_physical_equality () =
  Pred.reset ();
  let p1 = Pred.and_ (Pred.lit 1) (Pred.lit ~positive:false 2) in
  let p2 = Pred.and_ (Pred.lit 1) (Pred.lit ~positive:false 2) in
  Alcotest.(check bool) "same structure, same object" true (p1 == p2);
  Alcotest.(check int) "same intern id" (Pred.id p1) (Pred.id p2);
  let q = Pred.or_ p1 (Pred.lit 3) in
  Alcotest.(check bool)
    "rebuilt disjunction interned" true
    (q == Pred.or_ p2 (Pred.lit 3))

let test_hashcons_reset_generations () =
  Pred.reset ();
  let p1 = Pred.and_ (Pred.lit 1) (Pred.lit 2) in
  Pred.reset ();
  let p2 = Pred.and_ (Pred.lit 1) (Pred.lit 2) in
  (* a fresh generation re-interns: new id, but structural equality and
     ordering still treat the old object correctly *)
  Alcotest.(check bool) "ids differ across generations" true
    (Pred.id p1 <> Pred.id p2);
  Alcotest.(check bool) "still structurally equal" true (Pred.equal p1 p2);
  Alcotest.(check int) "compare_t agrees" 0 (Pred.compare_t p1 p2)

let test_hashcons_counters () =
  Pred.reset ();
  let (), delta =
    Tm.capture (fun () ->
        let a = Pred.and_ (Pred.lit 4) (Pred.lit 5) in
        ignore (Pred.and_ (Pred.lit 4) (Pred.lit 5));
        ignore a)
  in
  let get name = Option.value ~default:0 (List.assoc_opt name delta) in
  Alcotest.(check bool) "misses recorded" true (get "pred.hashcons_misses" > 0);
  Alcotest.(check bool) "hits recorded" true (get "pred.hashcons_hits" > 0)

(* ------------------------------------------------- jobs determinism *)

let determinism_sources () =
  List.map
    (fun k -> k.W.k_source)
    (golden_kernels ()
    @ [
        find_kernel "s1113" Fgv_bench.Tsvc.kernels;
        find_kernel "s2244" Fgv_bench.Tsvc.kernels;
      ])
  @ List.init 6 (fun seed -> G.render (G.generate ~seed ()))

let pipeline_fingerprint jobs =
  Tm.reset ();
  Tr.reset ();
  Tr.set_remarks true;
  let srcs = determinism_sources () in
  ignore
    (Pool.map ~jobs
       (fun src ->
         let f = Fgv_frontend.Lower_ast.compile src in
         ignore (Fgv_passes.Pipelines.sv_versioning f))
       srcs);
  let remarks = Tr.remarks_jsonl () in
  let counters =
    String.concat "\n"
      (List.map
         (fun (k, v) -> Printf.sprintf "%s=%d" k v)
         (List.filter
            (fun (k, _) ->
              (* the counters this PR adds, plus everything else the
                 pipeline bumps — all must merge deterministically *)
              not (String.length k = 0))
            (Tm.counters ())))
  in
  Tr.set_remarks false;
  Tr.reset ();
  Tm.reset ();
  (remarks, counters)

let test_jobs_determinism () =
  let r1, c1 = pipeline_fingerprint 1 in
  let r4, c4 = pipeline_fingerprint 4 in
  Alcotest.(check string) "remark stream byte-identical at jobs 1 vs 4" r1 r4;
  Alcotest.(check string) "telemetry byte-identical at jobs 1 vs 4" c1 c4

let suite =
  [
    Alcotest.test_case "sparse = naive on golden kernels" `Quick
      test_sparse_equals_naive_golden;
    Alcotest.test_case "sparse = naive on fuzz sweep" `Slow
      test_sparse_equals_naive_fuzz;
    Alcotest.test_case "sparse build prunes pairs" `Quick test_sparse_prunes;
    Alcotest.test_case "hash-consing: physical equality" `Quick
      test_hashcons_physical_equality;
    Alcotest.test_case "hash-consing: reset generations" `Quick
      test_hashcons_reset_generations;
    Alcotest.test_case "hash-consing: hit/miss counters" `Quick
      test_hashcons_counters;
    Alcotest.test_case "pipeline deterministic at jobs 1 vs 4" `Quick
      test_jobs_determinism;
  ]
