(* Tests for the incremental query engine (lib/incremental, DESIGN §17)
   and its two consumers:

   - within one compile: registered analyses (SCEV, the dependence
     graph) memo-hit when re-asked over an unchanged function, turn red
     when the function content changes, and replay their recorded
     counters and remarks so a hit is observably identical to a
     recomputation;
   - across compiles: the service's per-kernel sub-keys make an edit to
     one kernel of a batched translation unit recompile only that
     kernel, with responses byte-identical to a fresh cold service at
     any job count. *)

module Tm = Fgv_support.Telemetry
module Tr = Fgv_support.Trace
module J = Fgv_support.Json
module Q = Fgv_incremental.Engine
module Queries = Fgv_analysis.Queries
module S = Fgv_service.Service
module C = Fgv_service.Cache
module P = Fgv_service.Protocol
module W = Fgv_bench.Workload
open Fgv_pssa

let kernel_source pool name =
  (List.find (fun k -> k.W.k_name = name) pool).W.k_source

let s131 () = kernel_source Fgv_bench.Tsvc.kernels "s131"
let floyd () = kernel_source Fgv_bench.Polybench.kernels "floyd-warshall"

let compile src = Fgv_frontend.Lower_ast.compile src

let counter delta name = try List.assoc name delta with Not_found -> 0

let non_incremental delta =
  List.filter
    (fun (n, _) ->
      not (String.length n >= 12 && String.sub n 0 12 = "incremental."))
    delta

(* ------------------------------------------------------------- engine *)

let test_memo_hits () =
  let f = compile (s131 ()) in
  (* outside a context the query is a pass-through: no bookkeeping *)
  let sc0, delta0 = Tm.capture (fun () -> Queries.scev f) in
  ignore sc0;
  Alcotest.(check int) "no context, no engine counters" 0
    (counter delta0 "incremental.queries_asked");
  let (sc1, sc2, g1, g2), delta =
    Tm.capture (fun () ->
        Q.with_ctx (fun () ->
            let sc1 = Queries.scev f in
            let sc2 = Queries.scev f in
            let g1 = Queries.depgraph f Ir.Rtop in
            let g2 = Queries.depgraph f Ir.Rtop in
            (sc1, sc2, g1, g2)))
  in
  Alcotest.(check bool) "second SCEV ask is the same object" true (sc1 == sc2);
  Alcotest.(check bool) "second graph ask is the same object" true (g1 == g2);
  (* 4 asks: scev miss, scev hit, depgraph miss (whose compute re-asks
     scev: hit, a 5th ask), depgraph hit *)
  Alcotest.(check int) "queries asked" 5
    (counter delta "incremental.queries_asked");
  Alcotest.(check int) "memo hits" 3
    (counter delta "incremental.memo_hits");
  Alcotest.(check int) "recomputed" 2
    (counter delta "incremental.recomputed");
  Alcotest.(check int) "nothing invalidated" 0
    (counter delta "incremental.invalidated")

let test_invalidation_on_edit () =
  (* a kernel constfold definitely rewrites, so re-asking after the pass
     sees changed content under the same physical function *)
  let f =
    compile
      "kernel g(float* restrict a, int n) { for (int i = 0; i < n; i = i + \
       1) { a[i] = 1.0 + 2.0; } }"
  in
  let folded, delta =
    Tm.capture (fun () ->
        Q.with_ctx (fun () ->
            let sc1 = Queries.scev f in
            let folded = Fgv_passes.Constfold.run f in
            let sc2 = Queries.scev f in
            ignore (sc1 == sc2);
            Alcotest.(check bool) "edit recomputes a fresh analysis" false
              (sc1 == sc2);
            folded))
  in
  Alcotest.(check bool) "constfold did rewrite" true (folded > 0);
  Alcotest.(check int) "the stale entry was invalidated" 1
    (counter delta "incremental.invalidated");
  Alcotest.(check int) "both asks computed" 2
    (counter delta "incremental.recomputed")

(* A memo hit must merge the recorded counters and re-emit the recorded
   remarks: stripped of the engine's own namespace, the two asks are
   indistinguishable. *)
let test_replay_determinism () =
  let f = compile (s131 ()) in
  Q.with_ctx (fun () ->
      let (g1, remarks1), delta1 =
        Tm.capture (fun () ->
            Tr.collect_remarks (fun () -> Queries.depgraph f Ir.Rtop))
      in
      let (g2, remarks2), delta2 =
        Tm.capture (fun () ->
            Tr.collect_remarks (fun () -> Queries.depgraph f Ir.Rtop))
      in
      Alcotest.(check bool) "hit returns the computed object" true (g1 == g2);
      Alcotest.(check (list string)) "remark streams are byte-identical"
        (List.map (fun r -> J.to_string (Tr.remark_json r)) remarks1)
        (List.map (fun r -> J.to_string (Tr.remark_json r)) remarks2);
      let show d =
        List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v)
          (List.sort compare (non_incremental d))
      in
      Alcotest.(check (list string)) "counter deltas are identical"
        (show delta1) (show delta2))

(* The whole-pipeline view of the same contract, on floyd-warshall: the
   sv+v pipeline re-derives analyses across stages and sweeps, so inside
   its context the engine must both hit (unchanged function between
   stages) and invalidate (stages that rewrote the function).  The
   ask/hit/recompute ledger always balances. *)
let test_pipeline_counters () =
  let f = compile (floyd ()) in
  let _stats, delta =
    Tm.capture (fun () -> Fgv_passes.Pipelines.sv_versioning f)
  in
  let asked = counter delta "incremental.queries_asked" in
  let hits = counter delta "incremental.memo_hits" in
  let invalidated = counter delta "incremental.invalidated" in
  let recomputed = counter delta "incremental.recomputed" in
  Alcotest.(check bool) "pipeline asks queries" true (asked > 0);
  Alcotest.(check bool) "some asks hit" true (hits > 0);
  Alcotest.(check bool) "edits invalidate" true (invalidated > 0);
  Alcotest.(check int) "every ask either hits or recomputes" asked
    (hits + recomputed);
  Alcotest.(check bool) "invalidations recompute" true
    (invalidated <= recomputed)

(* ------------------------------------------------------------ service *)

let rq ?(pipeline = "sv+v") source =
  {
    P.rq_id = "";
    rq_source = source;
    rq_pipeline = pipeline;
    rq_no_restrict = false;
    rq_emit_c = false;
    rq_heap = P.default_heap;
  }

let unit_kernel name c =
  Printf.sprintf
    "kernel %s(float* restrict a, float* restrict b, int n) { for (int i = \
     0; i < n; i = i + 1) { a[i] = b[i] * %d.0; } }"
    name c

let test_service_units () =
  let svc = S.create ~jobs:1 () in
  let src v = unit_kernel "one" 2 ^ "\n" ^ unit_kernel "two" v in
  (* cold: both kernels compile *)
  (match S.handle_request svc (rq (src 3)) with
  | P.Compiled_many { artifacts = [ a; b ]; _ } ->
    Alcotest.(check string) "units in source order" "one" a.P.ar_func;
    Alcotest.(check string) "second unit" "two" b.P.ar_func
  | _ -> Alcotest.fail "expected two artifacts");
  Alcotest.(check int) "two units asked" 2 svc.S.uqueries;
  Alcotest.(check int) "cold: no unit hits" 0 svc.S.uhits;
  (* unchanged: both hit, and the request is a hit *)
  ignore (S.handle_request svc (rq (src 3)));
  Alcotest.(check int) "warm: both units hit" 2 svc.S.uhits;
  Alcotest.(check int) "request-level hit" 1 svc.S.hits;
  (* edit kernel two: one hit, one invalidated recompile *)
  let edited = S.handle_request svc (rq (src 4)) in
  Alcotest.(check int) "edited: untouched kernel still hits" 3 svc.S.uhits;
  Alcotest.(check int) "edited kernel was invalidated" 1 svc.S.uinvalidated;
  Alcotest.(check int) "three recompiles total" 3 svc.S.urecomputed;
  (* the incremental response is byte-identical to a fresh cold one *)
  let fresh = S.create ~jobs:1 () in
  Alcotest.(check string) "byte-identical to a fresh compile"
    (P.response_line (S.handle_request fresh (rq (src 4))))
    (P.response_line edited);
  (* request-level accounting still balances *)
  Alcotest.(check int) "hits + coalesced + misses = requests"
    svc.S.requests
    (svc.S.hits + svc.S.coalesced + svc.S.misses)

let test_unit_key_isolation () =
  (* the sibling's text is not in a unit's key: the same kernel batched
     with different partners keeps one key *)
  let one = unit_kernel "one" 2 and two = unit_kernel "two" 3 in
  let both = one ^ "\n" ^ two in
  let keys src =
    match Fgv_frontend.Parser.parse_program src with
    | units -> List.map (fun (_, slice) -> C.unit_key (rq src) slice) units
    | exception _ -> Alcotest.fail "expected the source to parse"
  in
  (match (keys both, keys one, keys two) with
  | [ k1; k2 ], [ k1' ], [ k2' ] ->
    Alcotest.(check string) "first unit key is partner-independent" k1 k1';
    Alcotest.(check string) "second unit key is partner-independent" k2 k2'
  | _ -> Alcotest.fail "unexpected unit split");
  (* whole-request and unit keys never collide, even for one kernel *)
  Alcotest.(check bool) "unit keys are tagged apart from request keys"
    false
    (List.mem (C.key (rq one)) (keys one))

(* 200-seed sweep: random 2-kernel sources, a random single-kernel edit,
   and the incremental response must byte-equal a fresh cold service's
   answer for the edited source. *)
let test_fuzz_incremental_equals_fresh () =
  let pipelines = [| "sv+v"; "o3"; "dse" |] in
  for seed = 0 to 199 do
    let st = Random.State.make [| 0xfeed; seed |] in
    let const () = 1 + Random.State.int st 9 in
    let k name c = unit_kernel name c in
    let c1 = const () and c2 = const () in
    let pipeline = pipelines.(Random.State.int st (Array.length pipelines)) in
    let src a b = k "alpha" a ^ "\n" ^ k "beta" b in
    let svc = S.create ~jobs:1 () in
    ignore (S.handle_request svc (rq ~pipeline (src c1 c2)));
    (* edit exactly one kernel to a guaranteed-different constant *)
    let c1', c2' =
      if Random.State.bool st then (c1 + 10, c2) else (c1, c2 + 10)
    in
    let incremental =
      P.response_line (S.handle_request svc (rq ~pipeline (src c1' c2')))
    in
    let fresh = S.create ~jobs:1 () in
    let cold =
      P.response_line (S.handle_request fresh (rq ~pipeline (src c1' c2')))
    in
    if incremental <> cold then
      Alcotest.failf "seed %d: incremental response differs from fresh" seed
  done

(* The unit-keyed service keeps the determinism contract across job
   counts: same multi-kernel request sequence, byte-identical responses
   and identical counter deltas at jobs 1 and jobs 4. *)
let test_service_jobs_fingerprint () =
  let srcs =
    [
      unit_kernel "a" 2 ^ "\n" ^ unit_kernel "b" 3 ^ "\n" ^ unit_kernel "c" 4;
      unit_kernel "a" 2 ^ "\n" ^ unit_kernel "b" 5 ^ "\n" ^ unit_kernel "c" 4;
      unit_kernel "d" 6;
    ]
  in
  let drive jobs =
    Tm.capture (fun () ->
        let svc = S.create ~jobs () in
        List.map
          (fun src -> P.response_line (S.handle_request svc (rq src)))
          srcs)
  in
  let out1, delta1 = drive 1 in
  let out4, delta4 = drive 4 in
  Alcotest.(check (list string)) "responses byte-identical at jobs 1 vs 4"
    out1 out4;
  let show d =
    List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) (List.sort compare d)
  in
  Alcotest.(check (list string)) "counter deltas identical at jobs 1 vs 4"
    (show delta1) (show delta4)

let suite =
  [
    Alcotest.test_case "engine memo hits" `Quick test_memo_hits;
    Alcotest.test_case "invalidation on edit" `Quick test_invalidation_on_edit;
    Alcotest.test_case "hit replay is observably identical" `Quick
      test_replay_determinism;
    Alcotest.test_case "pipeline ask/hit ledger balances" `Quick
      test_pipeline_counters;
    Alcotest.test_case "service splits kernels into units" `Quick
      test_service_units;
    Alcotest.test_case "unit keys are partner-independent" `Quick
      test_unit_key_isolation;
    Alcotest.test_case "fuzz: incremental equals fresh (200 seeds)" `Slow
      test_fuzz_incremental_equals_fresh;
    Alcotest.test_case "unit-keyed service jobs fingerprint" `Quick
      test_service_jobs_fingerprint;
  ]
