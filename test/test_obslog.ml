(* Tests for the observability layer (PR 9, DESIGN §16):

   - histogram quantile goldens on known distributions, and the exact
     min/max clamping contract;
   - merge associativity + commutativity as a qcheck property over
     fuzzed sample shards (byte-equality of the serialized JSON, the
     same form every consumer compares);
   - the Json float format round-trips bit-for-bit (bucket bounds and
     durations survive emit -> parse);
   - --log spec parsing;
   - the determinism contract: the non-"timing" projection of the
     service's event log and metrics snapshot is byte-identical at
     --jobs 1 and --jobs 4, and the access-log sequence for a 16x4
     cached batch mix matches its golden outcome order. *)

module J = Fgv_support.Json
module H = Fgv_support.Histogram
module Ev = Fgv_support.Eventlog
module S = Fgv_service.Service
module P = Fgv_service.Protocol

(* ---------------------------------------------------------- histogram *)

let test_histogram_basics () =
  let h = H.create () in
  Alcotest.(check int) "empty count" 0 (H.count h);
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (H.quantile h 0.5));
  H.record h 0.003;
  Alcotest.(check int) "one sample" 1 (H.count h);
  (* min = max = v, so clamping makes every quantile exact *)
  Alcotest.(check (float 0.0)) "singleton p50 is the sample" 0.003
    (H.quantile h 0.5);
  Alcotest.(check (float 0.0)) "singleton p99 is the sample" 0.003
    (H.quantile h 0.99);
  Alcotest.(check (float 0.0)) "min" 0.003 (H.min_sample h);
  Alcotest.(check (float 0.0)) "max" 0.003 (H.max_sample h)

let test_quantile_golden () =
  (* Uniform 1ms..1s in 1ms steps: quantiles must land within one
     bucket width (<= 12.5% relative) of the exact answer, and the
     extremes clamp to the exact observed min/max. *)
  let h = H.create () in
  for i = 1 to 1000 do
    H.record h (float_of_int i /. 1000.0)
  done;
  let within q exact =
    let v = H.quantile h q in
    let rel = Float.abs (v -. exact) /. exact in
    Alcotest.(check bool)
      (Printf.sprintf "q%.2f=%.6f within 12.5%% of %.3f" q v exact)
      true (rel <= 0.125)
  in
  within 0.5 0.5;
  within 0.9 0.9;
  within 0.99 0.99;
  Alcotest.(check (float 0.0)) "q0 clamps to min" 0.001 (H.quantile h 0.0);
  Alcotest.(check (float 0.0)) "q1 clamps to max" 1.0 (H.quantile h 1.0);
  Alcotest.(check int) "count" 1000 (H.count h)

let test_histogram_edges () =
  let h = H.create () in
  H.record h 0.0;
  H.record h (-5.0);
  H.record h 1e-12;
  H.record h 1e12;
  Alcotest.(check int) "under/overflow samples all count" 4 (H.count h);
  let buckets = H.buckets h in
  Alcotest.(check int) "two non-empty buckets" 2 (List.length buckets);
  (match buckets with
  | [ (lo0, _, c0); (lo1, hi1, c1) ] ->
    Alcotest.(check (float 0.0)) "underflow starts at 0" 0.0 lo0;
    Alcotest.(check int) "three underflow samples" 3 c0;
    Alcotest.(check bool) "overflow is unbounded" true (hi1 = infinity);
    Alcotest.(check bool) "overflow lo is finite" true (Float.is_finite lo1);
    Alcotest.(check int) "one overflow sample" 1 c1
  | _ -> Alcotest.fail "unexpected bucket shape");
  (* bucket bounds are exact binary floats: ldexp-built, so float_repr
     round-trips them (checked in depth below) *)
  List.iter
    (fun (lo, hi, _) ->
      List.iter
        (fun v ->
          if Float.is_finite v && not (Float.is_integer v) then
            match J.of_string (J.float_repr v) with
            | Ok (J.Float v') ->
              Alcotest.(check bool) "bucket bound round-trips" true (v = v')
            | _ -> Alcotest.fail "bucket bound did not parse back")
        [ lo; hi ])
    buckets

let hist_json h = J.to_string ~minify:true (H.to_json h)

let of_samples xs =
  let h = H.create () in
  List.iter (H.record h) xs;
  h

let prop_merge_assoc_comm =
  QCheck2.Test.make ~name:"histogram merge is associative and commutative"
    ~count:200
    QCheck2.Gen.(
      triple
        (list_size (int_bound 40) (float_bound_inclusive 2.0))
        (list_size (int_bound 40) (float_bound_inclusive 2.0))
        (list_size (int_bound 40) (float_bound_inclusive 2.0)))
    (fun (xs, ys, zs) ->
      let a () = of_samples xs and b () = of_samples ys
      and c () = of_samples zs in
      let merged into src =
        let m = H.copy into in
        H.merge_into ~into:m src;
        m
      in
      (* (a+b)+c = a+(b+c) and a+b = b+a, up to serialized bytes *)
      let left = merged (merged (a ()) (b ())) (c ()) in
      let right = merged (a ()) (merged (b ()) (c ())) in
      let ab = merged (a ()) (b ()) in
      let ba = merged (b ()) (a ()) in
      (* and merging equals recording the concatenated sample stream *)
      let flat = of_samples (xs @ ys @ zs) in
      hist_json left = hist_json right
      && hist_json ab = hist_json ba
      && hist_json left = hist_json flat)

let test_shard_merge_order_free () =
  let shard xs =
    snd (H.isolated (fun () -> List.iter (H.observe "t") xs))
  in
  let s1 = shard [ 0.001; 0.002 ] in
  let s2 = shard [ 0.004 ] in
  let s3 = shard [ 0.008; 0.5; 0.001 ] in
  let joined order =
    fst
      (H.isolated (fun () ->
           List.iter H.merge_shard order;
           match H.find "t" with
           | Some h -> hist_json h
           | None -> Alcotest.fail "merged histogram missing"))
  in
  Alcotest.(check string) "shard replay order cannot matter"
    (joined [ s1; s2; s3 ])
    (joined [ s3; s1; s2 ])

(* --------------------------------------------------------- float repr *)

let test_float_round_trip () =
  let check_rt x =
    match J.of_string (J.float_repr x) with
    | Ok (J.Float y) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s round-trips" (J.float_repr x))
        true
        (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
    | Ok (J.Int n) ->
      (* integral floats >= 1e15 may print without a dot; value-equal
         is the contract there *)
      Alcotest.(check bool) "int-shaped float value survives" true
        (float_of_int n = x)
    | _ -> Alcotest.fail ("did not parse back: " ^ J.float_repr x)
  in
  List.iter check_rt
    [
      0.1; 1.0 /. 3.0; 1e-300; 1.7976931348626157e308; 5e-324; 0.003;
      3.0; -0.0; 1e20; Float.pi; 0.30000000000000004; infinity;
      neg_infinity;
    ];
  (* and specifically every histogram bucket bound a real record hits *)
  let h = H.create () in
  List.iter (H.record h) [ 1e-9; 3.2e-6; 0.00041; 0.0121; 0.77; 901.0 ];
  List.iter
    (fun (lo, hi, _) ->
      check_rt lo;
      check_rt hi)
    (H.buckets h)

(* ----------------------------------------------------------- eventlog *)

let test_parse_spec () =
  let ok = Alcotest.(check (result (pair string string) string)) in
  let norm = Result.map (fun (p, l) -> (p, Ev.level_name l)) in
  ok "bare path" (Ok ("/tmp/x.jsonl", "info"))
    (norm (Ev.parse_spec "/tmp/x.jsonl"));
  ok "explicit level" (Ok ("/tmp/x.jsonl", "debug"))
    (norm (Ev.parse_spec "/tmp/x.jsonl=debug"));
  ok "warn level" (Ok ("log", "warn")) (norm (Ev.parse_spec "log=warn"));
  ok "'=' in the path stays in the path" (Ok ("run=3.jsonl", "info"))
    (norm (Ev.parse_spec "run=3.jsonl"));
  ok "'=' path with level" (Ok ("run=3.jsonl", "debug"))
    (norm (Ev.parse_spec "run=3.jsonl=debug"));
  Alcotest.(check bool) "empty path rejected" true
    (Result.is_error (Ev.parse_spec "=debug"))

(* Delete every "timing" member, recursively: the projection the
   determinism contract promises is byte-identical across --jobs. *)
let rec strip_timing (j : J.t) : J.t =
  match j with
  | J.Assoc fields ->
    J.Assoc
      (List.filter_map
         (fun (k, v) ->
           if k = "timing" then None else Some (k, strip_timing v))
         fields)
  | J.List items -> J.List (List.map strip_timing items)
  | other -> other

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* The 16x4 cached batch mix (the bench service lane's shape): one
   batch of 16 distinct kernels x 4 round-robin repeats, sent twice. *)
let mix_distinct = 16

let mix_repeats = 4

let mix_batch () =
  let pipes = [ "o3"; "sv+v"; "dse"; "combined" ] in
  let mk i =
    {
      P.rq_id = Printf.sprintf "r%d" i;
      rq_source =
        Printf.sprintf
          "kernel m%d(float* restrict a, float* restrict b, int n) { for \
           (int i = 0; i < n; i = i + 1) { a[i] = b[i] * %d.0; } }"
          i (i + 1);
      rq_pipeline = List.nth pipes (i mod List.length pipes);
      rq_no_restrict = false;
      rq_emit_c = false;
      rq_heap = P.default_heap;
    }
  in
  let distinct = List.init mix_distinct mk in
  List.concat (List.init mix_repeats (fun _ -> distinct))

(* Drive the mix at a job count with the event log capturing, return
   (log lines, metrics reply). *)
let drive_mix ~jobs =
  let path = Filename.temp_file "fgv-obslog" ".jsonl" in
  Ev.open_log ~path ~level:Ev.Info;
  let svc = S.create ~jobs () in
  ignore (S.handle_batch svc (mix_batch ()));
  ignore (S.handle_batch svc (mix_batch ()));
  let metrics =
    match S.handle_line svc {|{"op":"metrics"}|} with
    | S.Reply s -> s
    | S.Quit _ -> Alcotest.fail "metrics must not quit"
  in
  Ev.close ();
  let lines = read_lines path in
  Sys.remove path;
  (lines, metrics)

let projection line =
  match J.of_string line with
  | Ok j -> J.to_string ~minify:true (strip_timing j)
  | Error e -> Alcotest.fail ("log line is not JSON: " ^ e)

let test_log_and_metrics_jobs_determinism () =
  let lines1, metrics1 = drive_mix ~jobs:1 in
  let lines4, metrics4 = drive_mix ~jobs:4 in
  Alcotest.(check (list string))
    "event-log non-timing projection is byte-identical at jobs 1 vs 4"
    (List.map projection lines1)
    (List.map projection lines4);
  Alcotest.(check string)
    "metrics non-timing projection is byte-identical at jobs 1 vs 4"
    (projection metrics1) (projection metrics4)

let test_access_log_golden () =
  let lines, _ = drive_mix ~jobs:2 in
  let access =
    List.filter_map
      (fun line ->
        match J.of_string line with
        | Ok j when J.string_member "event" j = Some "access" -> Some j
        | _ -> None)
      lines
  in
  let n = mix_distinct * mix_repeats in
  Alcotest.(check int) "one access record per request" (2 * n)
    (List.length access);
  (* golden outcome sequence: batch 1 = 16 misses then 48 coalesced
     (round-robin repeats of the same keys), batch 2 = 64 hits *)
  let expected_outcome i =
    if i < n then if i < mix_distinct then "miss" else "coalesced"
    else "hit"
  in
  List.iteri
    (fun i j ->
      Alcotest.(check (option int))
        (Printf.sprintf "seq of record %d is monotonic" i)
        (Some (i + 1))
        (J.int_member "seq" j);
      Alcotest.(check (option string))
        (Printf.sprintf "outcome of record %d" i)
        (Some (expected_outcome i))
        (J.string_member "outcome" j);
      Alcotest.(check (option bool))
        (Printf.sprintf "record %d compiled fine" i)
        (Some true) (J.bool_member "ok" j);
      (* the wall-clock duration lives under timing, and only there *)
      match J.member "timing" j with
      | Some t ->
        Alcotest.(check bool)
          (Printf.sprintf "record %d has a duration" i)
          true
          (J.member "duration_s" t <> None)
      | None -> Alcotest.fail "access record has no timing member")
    access;
  (* the first line of any log is the schema header *)
  match lines with
  | first :: _ ->
    let j = Result.get_ok (J.of_string first) in
    Alcotest.(check (option string)) "log opens with the header"
      (Some "log-open")
      (J.string_member "event" j);
    Alcotest.(check (option int)) "header pins the schema"
      (Some Fgv_support.Version.log_schema)
      (J.int_member "schema" j)
  | [] -> Alcotest.fail "empty event log"

let test_telemetry_timer_histograms () =
  (* every *.time key gains distribution data: a timed thunk's snapshot
     carries a histogram whose count matches the timer count *)
  let module Tm = Fgv_support.Telemetry in
  let (), shard =
    Tm.isolated (fun () ->
        for _ = 1 to 5 do
          Tm.time "obslog.work" (fun () -> ignore (Sys.opaque_identity 42))
        done)
  in
  (match Tm.shard_timer_histograms shard with
  | [ ("obslog.work", h) ] ->
    Alcotest.(check int) "histogram saw every invocation" 5 (H.count h)
  | _ -> Alcotest.fail "expected exactly the obslog.work histogram");
  let (), merged =
    Tm.isolated (fun () ->
        Tm.merge_shard shard;
        Tm.merge_shard shard)
  in
  match Tm.shard_timer_histograms merged with
  | [ ("obslog.work", h) ] ->
    Alcotest.(check int) "merging shards sums histogram counts" 10
      (H.count h)
  | _ -> Alcotest.fail "expected the merged histogram"

let suite =
  [
    Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
    Alcotest.test_case "quantile goldens" `Quick test_quantile_golden;
    Alcotest.test_case "under/overflow buckets" `Quick test_histogram_edges;
    QCheck_alcotest.to_alcotest prop_merge_assoc_comm;
    Alcotest.test_case "shard merge is order-free" `Quick
      test_shard_merge_order_free;
    Alcotest.test_case "float repr round-trips" `Quick test_float_round_trip;
    Alcotest.test_case "--log spec parsing" `Quick test_parse_spec;
    Alcotest.test_case "log+metrics projection vs --jobs" `Quick
      test_log_and_metrics_jobs_determinism;
    Alcotest.test_case "access-log golden sequence" `Quick
      test_access_log_golden;
    Alcotest.test_case "telemetry timer histograms" `Quick
      test_telemetry_timer_histograms;
  ]
