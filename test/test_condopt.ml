(* Unit and property tests for the condition optimizations (SIV-A):
   redundant condition elimination, coalescing, promotion guards — plus
   the versioning cut finder on hand-built dependence graphs. *)

open Fgv_pssa
open Fgv_analysis
module V = Fgv_versioning

(* a tiny function supplying argument values for ranges *)
let mk_func () =
  let open Builder in
  let b = create ~name:"t" ~params:[ ("a", Ir.Tint); ("b", Ir.Tint) ] in
  let a = arg b 0 ~ty:Ir.Tint in
  let bb = arg b 1 ~ty:Ir.Tint in
  let f = finish b in
  (f, a, bb)

let range base lo len =
  {
    Scev.lo = Linexp.add_const lo (Linexp.of_value base);
    hi = Linexp.add_const (lo + len) (Linexp.of_value base);
  }

let test_range_offset () =
  let _, a, b = mk_func () in
  Alcotest.(check (option int)) "shifted by 7" (Some 7)
    (V.Condopt.range_offset (range a 7 4) (range a 0 4));
  Alcotest.(check (option int)) "different stretch" None
    (V.Condopt.range_offset (range a 0 4) (range a 0 6));
  Alcotest.(check (option int)) "different bases" None
    (V.Condopt.range_offset (range a 0 4) (range b 0 4))

let test_rce_equivalence () =
  let _, a, b = mk_func () in
  (* intersects([a,a+10),[b,b+2)) ≡ intersects([a+100,a+110),[b+100,b+102))
     — the paper's own example *)
  let at1 = Depcond.Aintersect (range a 0 10, range b 0 2) in
  let at2 = Depcond.Aintersect (range a 100 10, range b 100 2) in
  Alcotest.(check bool) "paper's RCE example" true
    (V.Condopt.atoms_equivalent at1 at2);
  (* swapped operands also count *)
  let at3 = Depcond.Aintersect (range b 100 2, range a 100 10) in
  Alcotest.(check bool) "swapped equivalence" true
    (V.Condopt.atoms_equivalent at1 at3);
  (* different shifts on each side do not *)
  let at4 = Depcond.Aintersect (range a 100 10, range b 50 2) in
  Alcotest.(check bool) "unequal shifts differ" false
    (V.Condopt.atoms_equivalent at1 at4);
  Alcotest.(check int) "eliminate_redundant keeps one" 1
    (List.length (V.Condopt.eliminate_redundant [ at1; at2; at3 ]))

let test_coalesce_hull () =
  let _, a, b = mk_func () in
  (* the paper's example: [a,a+10) vs [b,b+10) and [a+20,a+30) vs
     [b+40,b+50) coalesce into [a,a+30) vs [b,b+50) *)
  let at1 = Depcond.Aintersect (range a 0 10, range b 0 10) in
  let at2 = Depcond.Aintersect (range a 20 10, range b 40 10) in
  match V.Condopt.coalesce [ at1; at2 ] with
  | [ Depcond.Aintersect (r1, r2) ] ->
    Alcotest.(check (option int)) "hull a side lo" (Some 0)
      (Linexp.diff r1.Scev.lo (Linexp.of_value a));
    Alcotest.(check (option int)) "hull a side hi" (Some 30)
      (Linexp.diff r1.Scev.hi (Linexp.of_value a));
    Alcotest.(check (option int)) "hull b side hi" (Some 50)
      (Linexp.diff r2.Scev.hi (Linexp.of_value b))
  | l -> Alcotest.failf "expected one coalesced atom, got %d" (List.length l)

(* Coalescing must over-approximate: whenever an original check fires
   (ranges overlap), the hull check fires too. *)
let prop_coalesce_overapproximates =
  let open QCheck2.Gen in
  let gen = tup4 (int_range 0 20) (int_range 1 6) (int_range 0 20) (int_range 1 6) in
  QCheck2.Test.make ~name:"coalesced checks imply original checks" ~count:300
    (tup2 gen gen)
    (fun (((l1, w1, l2, w2) as _g1), (l3, w3, l4, w4)) ->
      let _, a, b = mk_func () in
      let at1 = Depcond.Aintersect (range a l1 w1, range b l2 w2) in
      let at2 = Depcond.Aintersect (range a l3 w3, range b l4 w4) in
      match V.Condopt.coalesce [ at1; at2 ] with
      | [ Depcond.Aintersect (h1, h2) ] ->
        (* concretely evaluate both on a grid of address bindings *)
        let overlap lo1 hi1 lo2 hi2 = lo1 < hi2 && lo2 < hi1 in
        let eval_atom la lb (r1 : Scev.range) (r2 : Scev.range) =
          let ev e =
            Linexp.constant e
            + List.fold_left
                (fun acc (v, k) -> acc + (k * if v = a then la else lb))
                0 (Linexp.terms e)
          in
          overlap (ev r1.Scev.lo) (ev r1.Scev.hi) (ev r2.Scev.lo) (ev r2.Scev.hi)
        in
        List.for_all
          (fun la ->
            List.for_all
              (fun lb ->
                let orig =
                  eval_atom la lb (range a l1 w1) (range b l2 w2)
                  || eval_atom la lb (range a l3 w3) (range b l4 w4)
                in
                let hull = eval_atom la lb h1 h2 in
                (not orig) || hull)
              [ 0; 5; 10; 15; 25; 40 ])
          [ 0; 5; 10; 15; 25; 40 ]
      | _ -> true (* not coalescible: nothing to check *))

(* ------------------------------------------------------------- cuts *)

let test_cut_prefers_conditional () =
  (* stores to a[0] and a[1] with a possibly-aliasing store to b[k] in
     between: the cut must contain only conditional (intersection)
     edges, and removing them separates the stores *)
  let f =
    Fgv_frontend.Lower_ast.compile_no_restrict
      {|
      kernel k(float* a, float* b, int m) {
        a[0] = 1.0;
        b[m] = 2.0;
        a[1] = 3.0;
      }
    |}
  in
  let scev = Scev.create f in
  let g = Depgraph.build f scev Ir.Rtop in
  let stores =
    List.filter_map
      (fun item ->
        match item with
        | Ir.I v -> (
          match (Ir.inst f v).Ir.kind with
          | Ir.Store { value; _ } -> (
            match (Ir.inst f value).Ir.kind with
            | Ir.Const (Ir.Cfloat x) when x <> 2.0 -> Some (Depgraph.node_index g (Ir.NI v))
            | _ -> None)
          | _ -> None)
        | _ -> None)
      f.Ir.fbody
  in
  match V.Cut.find g ~excluded:(fun _ -> false) ~s:stores ~t:stores with
  | None -> Alcotest.fail "expected a feasible cut"
  | Some cut ->
    Alcotest.(check bool) "nonempty cut" true (cut.V.Cut.cut_edges <> []);
    List.iter
      (fun e ->
        match e.Depgraph.e_cond with
        | Some _ -> ()
        | None -> Alcotest.fail "cut contains an unconditional edge")
      cut.V.Cut.cut_edges;
    (* removing the cut edges separates the stores *)
    let excl id = List.mem id (List.map (fun e -> e.Depgraph.e_id) cut.V.Cut.cut_edges) in
    Alcotest.(check bool) "separated" false
      (Depgraph.depends_on g ~excluded:excl stores stores)

let test_cut_infeasible_on_ssa_dep () =
  (* a store that reads the other store's... a load chain: making a store
     independent of the load it consumes is impossible *)
  let f =
    Fgv_frontend.Lower_ast.compile_no_restrict
      "kernel k(float* a) { float x = a[0]; a[1] = x; }"
  in
  let scev = Scev.create f in
  let g = Depgraph.build f scev Ir.Rtop in
  let node p =
    Array.to_list g.Depgraph.nodes
    |> List.find_map (fun n ->
           match n with
           | Ir.NI v when p (Ir.inst f v).Ir.kind -> Some (Depgraph.node_index g n)
           | _ -> None)
    |> Option.get
  in
  let load = node (function Ir.Load _ -> true | _ -> false) in
  let store = node (function Ir.Store _ -> true | _ -> false) in
  Alcotest.(check bool) "store -> load separation infeasible" true
    (V.Cut.find g ~excluded:(fun _ -> false) ~s:[ store ] ~t:[ load ] = None)

let test_profile_weighted_cut () =
  (* with profile weights, the cut prefers the unlikely edge *)
  let f =
    Fgv_frontend.Lower_ast.compile_no_restrict
      {|
      kernel k(float* a, float* b, float* c) {
        a[0] = 1.0;
        b[0] = 2.0;
        c[0] = 3.0;
        a[1] = 4.0;
      }
    |}
  in
  let scev = Scev.create f in
  let g = Depgraph.build f scev Ir.Rtop in
  let stores_a =
    List.filter_map
      (fun item ->
        match item with
        | Ir.I v -> (
          match (Ir.inst f v).Ir.kind with
          | Ir.Store { value; _ } -> (
            match (Ir.inst f value).Ir.kind with
            | Ir.Const (Ir.Cfloat (1.0 | 4.0)) ->
              Some (Depgraph.node_index g (Ir.NI v))
            | _ -> None)
          | _ -> None)
        | _ -> None)
      f.Ir.fbody
  in
  (* make one conditional edge expensive: the min-cut must avoid it and
     pick the other one(s) *)
  match
    V.Cut.find g
      ~weight:(fun e -> if e.Depgraph.e_id mod 2 = 0 then 10 else 1)
      ~excluded:(fun _ -> false) ~s:stores_a ~t:stores_a
  with
  | None -> Alcotest.fail "expected a cut"
  | Some cut ->
    let cost =
      List.fold_left
        (fun acc e -> acc + if e.Depgraph.e_id mod 2 = 0 then 10 else 1)
        0 cut.V.Cut.cut_edges
    in
    (* the unweighted cut of this graph has 2 edges; the weighted cut
       must not be more expensive than any 2-edge selection of cheap
       edges would allow *)
    Alcotest.(check bool) "weighted cut avoids expensive edges" true (cost <= 11)

(* ----------------------------------------------------- golden statistics *)

(* Lock the condition-optimization work counters (§VI: eliminated,
   coalesced, promoted) on two representative kernels.  Drift here means
   SIV-A behaviour changed — re-record deliberately, never ignore. *)

module Tm = Fgv_support.Telemetry
module W = Fgv_bench.Workload

let condopt_golden ~config ~apply name kernels expected =
  let k = List.find (fun k -> k.W.k_name = name) kernels in
  Tm.reset ();
  let f = W.compile_for config k in
  ignore (apply f);
  let actual = Tm.counters () in
  List.iter
    (fun (name, want) ->
      Alcotest.(check int) name want
        (try List.assoc name actual with Not_found -> 0))
    expected

let test_golden_condopt_s131 () =
  condopt_golden
    ~config:(W.sv_versioning ())
    ~apply:Fgv_passes.Pipelines.sv_versioning "s131" Fgv_bench.Tsvc.kernels
    [
      ("condopt.eliminated", 12);
      ("condopt.coalesced", 8);
      ("condopt.promoted_precise", 0);
      ("condopt.promoted_imprecise", 0);
      ("condopt.promote_failed", 4);
    ]

let test_golden_condopt_lbm_rle () =
  condopt_golden
    ~config:(W.cfg "rle" (fun f -> Fgv_passes.Pipelines.rle_pipeline f))
    ~apply:Fgv_passes.Pipelines.rle_pipeline "lbm_r" Fgv_bench.Specfp.kernels
    [
      ("condopt.eliminated", 0);
      ("condopt.coalesced", 0);
      ("condopt.promoted_imprecise", 1);
      ("pass.rle.eliminated", 5);
      ("pass.rle.groups", 2);
      ("cut.infeasible", 1);
      ("plan.infeasible", 1);
    ]

let suite =
  [
    Alcotest.test_case "range offsets" `Quick test_range_offset;
    Alcotest.test_case "RCE equivalence (paper example)" `Quick test_rce_equivalence;
    Alcotest.test_case "coalescing hull (paper example)" `Quick test_coalesce_hull;
    QCheck_alcotest.to_alcotest prop_coalesce_overapproximates;
    Alcotest.test_case "cut contains only conditional edges" `Quick
      test_cut_prefers_conditional;
    Alcotest.test_case "cut infeasible across SSA dependence" `Quick
      test_cut_infeasible_on_ssa_dep;
    Alcotest.test_case "profile-weighted cut" `Quick test_profile_weighted_cut;
    Alcotest.test_case "golden condopt stats: s131" `Quick test_golden_condopt_s131;
    Alcotest.test_case "golden condopt stats: lbm_r RLE" `Quick
      test_golden_condopt_lbm_rle;
  ]
