(* Tests for the versioning framework on the paper's running example
   (Fig. 1/2/12/15) and assorted kernels: plan inference shape, nested
   plans, materialization, and above all observational equivalence of the
   versioned program. *)

open Fgv_pssa
open Fgv_analysis
open Harness
module V = Fgv_versioning

let fig1_src =
  {|
  kernel fig1(float* X, float* Y) {
    Y[0] = 0.0;
    if (X[0] != 0.0) { cold_func(); }
    Y[1] = 0.0;
  }
|}

(* The top-level store instructions of a function, in program order. *)
let top_stores (f : Ir.func) =
  List.filter_map
    (fun item ->
      match item with
      | Ir.I v -> (
        match (Ir.inst f v).kind with Ir.Store _ -> Some (Ir.NI v) | _ -> None)
      | Ir.L _ -> None)
    f.fbody

let test_fig1_plan_shape () =
  let f = compile fig1_src in
  let s = V.Api.create f Ir.Rtop in
  let stores = top_stores f in
  Alcotest.(check int) "two stores" 2 (List.length stores);
  Alcotest.(check bool) "stores are initially dependent" false
    (V.Api.already_independent s stores);
  match V.Api.request_independence ~record:false s stores with
  | None -> Alcotest.fail "expected a feasible plan"
  | Some plan ->
    (* primary: versions both stores under the call's predicate c *)
    Alcotest.(check bool) "plan is not trivial" false (V.Plan.is_trivial plan);
    Alcotest.(check int) "one primary condition" 1 (List.length plan.V.Plan.p_conds);
    (match plan.V.Plan.p_conds with
    | [ Depcond.Apred _ ] -> ()
    | [ Depcond.Aintersect _ ] -> Alcotest.fail "primary condition should be the call predicate"
    | _ -> Alcotest.fail "unexpected primary conditions");
    (* nested: a secondary plan with the X/Y intersection check *)
    Alcotest.(check int) "one secondary plan" 1
      (List.length plan.V.Plan.p_secondaries);
    let sec = List.hd plan.V.Plan.p_secondaries in
    (match sec.V.Plan.p_conds with
    | [ Depcond.Aintersect _ ] -> ()
    | _ -> Alcotest.fail "secondary condition should be an intersection")

let run_both src request mems_args =
  let f_plain = compile src in
  let f_versioned = compile src in
  let s = V.Api.create f_versioned Ir.Rtop in
  (match request f_versioned s with
  | None -> Alcotest.fail "expected a feasible plan"
  | Some (_ : V.Plan.t) -> ());
  ignore (V.Api.materialize s);
  (match Verifier.verify_or_message f_versioned with
  | None -> ()
  | Some msg -> Alcotest.failf "versioned function is ill-formed: %s" msg);
  List.iter
    (fun (mem, args) ->
      let a = run_pssa f_plain ~args ~mem in
      let b = run_pssa f_versioned ~args ~mem in
      if not (Interp.equivalent a b) then begin
        print_string (Printer.to_string f_versioned);
        Alcotest.failf "versioning changed behaviour (args %s)"
          (String.concat ","
             (List.map (fun v -> Value.to_string v) args))
      end)
    mems_args;
  f_versioned

let test_fig1_materialization_equivalence () =
  let mem () = float_mem 16 (fun i -> float_of_int (i mod 3)) in
  let inputs =
    [
      (mem (), ints [ 4; 1 ]); (* no alias, X[0] != 0: call runs *)
      (mem (), ints [ 3; 3 ]); (* X = Y: store kills the condition *)
      (mem (), ints [ 4; 3 ]); (* X = Y + 1: aliases the second store *)
      (float_mem 16 (fun _ -> 0.0), ints [ 4; 1 ]); (* call never runs *)
      (* X = Y with X[0] initially nonzero: the original stores zero
         BEFORE the load, so the call must NOT run — any version that
         hoists the real load above the store gets this wrong *)
      (float_mem 16 (fun _ -> 1.0), ints [ 5; 5 ]);
      (float_mem 16 (fun _ -> 1.0), ints [ 6; 5 ]); (* X = Y+1 nonzero *)
    ]
  in
  let f =
    run_both fig1_src
      (fun f s -> V.Api.request_independence s (top_stores f))
      inputs
  in
  (* after versioning, the fast-path stores must be pairwise independent *)
  let scev = Scev.create f in
  let g = Depgraph.build f scev Ir.Rtop in
  let stores =
    List.filter
      (fun n ->
        match n with
        | Ir.NI v -> (
          match (Ir.inst f v).kind with
          | Ir.Store _ -> not (Pred.equal (Ir.inst f v).ipred Pred.tru)
          | _ -> false)
        | _ -> false)
      (Array.to_list g.Depgraph.nodes)
  in
  Alcotest.(check bool) "versioned function has versioned stores" true
    (List.length stores >= 2)

let test_fig1_fast_path_taken () =
  (* when X and Y do not alias, the original (check-passing) stores should
     execute and the clones should be skipped *)
  let f = compile fig1_src in
  let s = V.Api.create f Ir.Rtop in
  (match V.Api.request_independence s (top_stores f) with
  | None -> Alcotest.fail "expected plan"
  | Some _ -> ());
  ignore (V.Api.materialize s);
  let mem = float_mem 16 (fun _ -> 1.0) in
  let out = run_pssa f ~args:(ints [ 4; 1 ]) ~mem in
  (* the versioned program must still make the call exactly once *)
  Alcotest.(check int) "call count" 1 (List.length out.call_trace);
  (* skipped instructions exist (the clones) *)
  Alcotest.(check bool) "clones skipped" true (out.counters.skipped > 0)

(* Conditional store blocking reordering: store under a predicate between
   two stores we want to pack. *)
let cond_store_src =
  {|
  kernel condstore(float* a, float* b, int n, int k) {
    a[0] = 1.0;
    if (n > 10) { b[k] = 2.0; }
    a[1] = 3.0;
  }
|}

let test_conditional_store_versioning () =
  let mem () = float_mem 16 (fun _ -> 0.0) in
  let inputs =
    [
      (mem (), ints [ 0; 4; 20; 1 ]); (* store executes, no alias *)
      (mem (), ints [ 0; 0; 20; 1 ]); (* store executes, b[k] = a[1]: alias *)
      (mem (), ints [ 0; 4; 5; 1 ]); (* store predicated off *)
      (mem (), ints [ 2; 0; 20; 2 ]); (* b[k] = a[0] overlap pattern *)
    ]
  in
  ignore
    (run_both cond_store_src
       (fun f s -> V.Api.request_independence s (top_stores f))
       inputs)

(* Unprovable pointer aliasing between plain loads/stores. *)
let may_alias_src =
  {|
  kernel mayalias(float* a, float* b) {
    a[0] = 1.0;
    float x = b[0];
    a[1] = x + 1.0;
  }
|}

let test_may_alias_versioning () =
  let mem () = float_mem 8 (fun i -> float_of_int i) in
  let inputs =
    [
      (mem (), ints [ 0; 4 ]);
      (mem (), ints [ 0; 0 ]); (* b = a: load reads the stored value *)
      (mem (), ints [ 0; 1 ]); (* b = a+1: the second store clobbers b[0] *)
    ]
  in
  ignore
    (run_both may_alias_src
       (fun f s -> V.Api.request_independence s (top_stores f))
       inputs)

(* Versioning whole loops: two loops that may write overlapping arrays. *)
let loop_pair_src =
  {|
  kernel looppair(float* a, float* b, int n) {
    for (int i = 0; i < n; i = i + 1) { a[i] = a[i] + 1.0; }
    for (int j = 0; j < n; j = j + 1) { b[j] = b[j] * 2.0; }
  }
|}

let top_loops (f : Ir.func) =
  List.filter_map
    (fun item -> match item with Ir.L l -> Some (Ir.NL l) | Ir.I _ -> None)
    f.fbody

let test_loop_versioning () =
  let mem () = float_mem 32 (fun i -> float_of_int i) in
  let inputs =
    [
      (mem (), ints [ 0; 16; 8 ]); (* disjoint *)
      (mem (), ints [ 0; 0; 8 ]); (* identical *)
      (mem (), ints [ 0; 4; 8 ]); (* overlapping *)
      (mem (), ints [ 0; 16; 0 ]); (* zero trip *)
    ]
  in
  let f =
    run_both loop_pair_src
      (fun f s -> V.Api.request_independence s (top_loops f))
      inputs
  in
  (* the function should now contain four loops (two versions of each) *)
  Alcotest.(check int) "loop count" 4 (List.length (top_loops f))

(* Infeasible case: unconditional dependence through SSA values. *)
let infeasible_src =
  {|
  kernel infeasible(float* a) {
    float x = a[0];
    a[1] = x * 2.0;
  }
|}

let test_infeasible () =
  let f = compile infeasible_src in
  let s = V.Api.create f Ir.Rtop in
  (* make the store independent of the load it reads from: impossible *)
  let load =
    List.find_map
      (fun item ->
        match item with
        | Ir.I v -> (
          match (Ir.inst f v).kind with Ir.Load _ -> Some (Ir.NI v) | _ -> None)
        | _ -> None)
      f.fbody
    |> Option.get
  in
  let store = List.hd (top_stores f) in
  match V.Api.request_separation ~record:false s ~nodes:[ store ] ~input_nodes:[ load ] with
  | None -> () (* hmm: store depends on load via operand: infeasible *)
  | Some plan ->
    if not (V.Plan.is_trivial plan) then
      Alcotest.fail "expected infeasibility or triviality"

(* ----------------------------------------------------- golden statistics *)

(* Lock the framework's §VI work counters on two representative kernels.
   The pipelines are deterministic, so any drift in these numbers means a
   behavioural change in plan inference, the cut finder, or
   materialization — which must be deliberate and re-recorded here. *)

module Tm = Fgv_support.Telemetry
module W = Fgv_bench.Workload

let golden_counters ~config ~apply name kernels =
  let k = List.find (fun k -> k.W.k_name = name) kernels in
  Tm.reset ();
  let f = W.compile_for config k in
  ignore (apply f);
  Tm.counters ()

let check_golden expected actual =
  List.iter
    (fun (name, want) ->
      Alcotest.(check int) name want
        (try List.assoc name actual with Not_found -> 0))
    expected

let test_golden_stats_s131 () =
  let actual =
    golden_counters
      ~config:(W.sv_versioning ())
      ~apply:Fgv_passes.Pipelines.sv_versioning "s131" Fgv_bench.Tsvc.kernels
  in
  check_golden
    [
      ("plan.requests", 5);
      ("plan.inferred", 5);
      ("plan.conds", 24);
      ("plan.max_secondary_depth", 0);
      ("cut.queries", 5);
      ("cut.edges", 24);
      ("cut.graph_nodes", 139);
      ("cut.maxflow_augmenting", 24);
      ("cut.already_independent", 1);
      ("materialize.plans", 1);
      ("materialize.checks_emitted", 1);
      ("materialize.cloned_insts", 16);
      ("materialize.versioning_phis", 12);
    ]
    actual

let test_golden_stats_floyd_warshall () =
  let actual =
    golden_counters
      ~config:(W.sv_versioning ~restrict:false ())
      ~apply:Fgv_passes.Pipelines.sv_versioning "floyd-warshall"
      Fgv_bench.Polybench.kernels
  in
  check_golden
    [
      ("plan.requests", 7);
      ("plan.inferred", 7);
      ("plan.conds", 51);
      ("cut.queries", 7);
      ("cut.edges", 66);
      ("cut.graph_nodes", 273);
      ("materialize.plans", 1);
      ("materialize.cloned_insts", 27);
      ("materialize.versioning_phis", 23);
      ("pass.licm.hoisted", 104);
      ("pass.slp.vectors", 6);
    ]
    actual

let suite =
  [
    Alcotest.test_case "fig1 plan shape (nested)" `Quick test_fig1_plan_shape;
    Alcotest.test_case "fig1 materialization equivalence" `Quick
      test_fig1_materialization_equivalence;
    Alcotest.test_case "fig1 fast path" `Quick test_fig1_fast_path_taken;
    Alcotest.test_case "conditional store" `Quick test_conditional_store_versioning;
    Alcotest.test_case "may-alias load" `Quick test_may_alias_versioning;
    Alcotest.test_case "loop versioning" `Quick test_loop_versioning;
    Alcotest.test_case "infeasible request" `Quick test_infeasible;
    Alcotest.test_case "golden stats: s131" `Quick test_golden_stats_s131;
    Alcotest.test_case "golden stats: floyd-warshall" `Quick
      test_golden_stats_floyd_warshall;
  ]
