(* Regenerates the golden fast-mode C for the backend tests:

     dune exec test/gen_golden.exe > test/golden_s131.c

   Review the diff before committing — the golden file pins the
   emitter's exact output for s131 under sv+versioning. *)

module W = Fgv_bench.Workload

let () =
  let k =
    List.find (fun k -> k.W.k_name = "s131") Fgv_bench.Tsvc.kernels
  in
  let cfgn = W.sv_versioning () in
  let f = W.compile_for cfgn k in
  ignore (cfgn.W.c_apply f);
  let prog = Fgv_cfg.Lower.lower f in
  print_string (Fgv_backend.Emit.fast prog ~args:k.W.k_args ~mem:(W.fresh_mem k))
