(* fgvc — the mini-C kernel compiler driver.

   Compiles a kernel to predicated SSA, optionally applies one of the
   standard pipelines, and can print the PSSA, print the lowered CFG, or
   interpret the result with the cost model.

     fgvc kernel.c -p sv+v --dump-ir --run -a 0,64,16 --heap 256

   With [--fuzz N] no input file is needed: the driver runs a
   differential-fuzzing campaign (lib/fuzz) of N generated programs
   through the selected pipeline (default: all of them), writes a
   machine-readable failure report with a shrunk reproducer on mismatch,
   and exits 4.

     fgvc --fuzz 500 --seed 42
     fgvc --fuzz 200 --pipeline sv+v --fuzz-report report.json

   [--jobs N] fans the campaign's seeds out over N worker domains
   (default: POOL_JOBS or the machine's core count).  The failure
   report and the telemetry counters are byte-identical at any job
   count: the lowest failing seed wins, exactly as in a sequential
   scan.
*)

open Cmdliner
open Fgv_pssa
module P = Fgv_passes
module F = Fgv_fuzz
module Tm = Fgv_support.Telemetry

let pipelines : (string * (Ir.func -> unit)) list =
  [
    ("none", fun _ -> ());
    ("o3-novec", fun f -> ignore (P.Pipelines.o3_novec f));
    ("o3", fun f -> ignore (P.Pipelines.o3 f));
    ("sv", fun f -> ignore (P.Pipelines.sv f));
    ("sv+v", fun f -> ignore (P.Pipelines.sv_versioning f));
    ("rle", fun f -> ignore (P.Pipelines.rle_pipeline f));
    ("rle-static", fun f -> ignore (P.Pipelines.rle_pipeline ~versioning:false f));
  ]

let print_stats stats =
  match stats with
  | None -> 0
  | Some "json" ->
    print_endline (Tm.json_to_string (Tm.snapshot ()));
    0
  | Some "text" ->
    print_string (Tm.report ());
    0
  | Some other ->
    Printf.eprintf "unknown --stats format %s (expected text or json)\n" other;
    2

(* ---------------------------------------------------------- fuzz mode *)

let run_fuzz n seed pipeline report_file stats jobs =
  let pipelines =
    if pipeline = "none" then F.Oracle.pipeline_names
    else if List.mem_assoc pipeline F.Oracle.pipelines then [ pipeline ]
    else begin
      Printf.eprintf "unknown fuzz pipeline %s (one of: %s)\n" pipeline
        (String.concat ", " F.Oracle.pipeline_names);
      exit 2
    end
  in
  let jobs =
    if jobs > 0 then jobs else Fgv_support.Pool.default_jobs ()
  in
  let outcome = F.Campaign.run ~pipelines ~jobs ~n ~seed () in
  let report = F.Campaign.report_json outcome in
  let oc = open_out report_file in
  output_string oc (Tm.json_to_string report);
  output_char oc '\n';
  close_out oc;
  (match outcome.F.Campaign.c_failure with
  | None ->
    Printf.printf
      "fuzz: %d programs x %d pipelines, %d oracle runs, 0 mismatches \
       (report: %s)\n"
      outcome.F.Campaign.c_programs (List.length pipelines)
      (Tm.get "fuzz.oracle_runs") report_file
  | Some f ->
    let m = f.F.Campaign.f_mismatch in
    Printf.printf
      "fuzz: MISMATCH at program %d (seed %d): %s\n\
       shrunk to %d statements in %d steps:\n\n%s\n\n\
       report written to %s\n"
      f.F.Campaign.f_index f.F.Campaign.f_seed
      (F.Oracle.mismatch_to_string m)
      f.F.Campaign.f_shrunk_stmts f.F.Campaign.f_shrink_steps
      f.F.Campaign.f_shrunk report_file);
  let rc = print_stats stats in
  if rc <> 0 then rc
  else if outcome.F.Campaign.c_failure <> None then 4
  else 0

(* ------------------------------------------------------- compile mode *)

let run_driver file fuzz seed fuzz_report pipeline dump_ir dump_cfg run args
    heap no_restrict stats jobs =
  if fuzz > 0 then run_fuzz fuzz seed pipeline fuzz_report stats jobs
  else begin
  let file =
    match file with
    | Some f -> f
    | None ->
      Printf.eprintf "fgvc: expected a kernel FILE (or --fuzz N)\n";
      exit 2
  in
  let source =
    let ic = open_in file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let f =
    if no_restrict then Fgv_frontend.Lower_ast.compile_no_restrict source
    else Fgv_frontend.Lower_ast.compile source
  in
  let apply =
    match List.assoc_opt pipeline pipelines with
    | Some p -> p
    | None ->
      Printf.eprintf "unknown pipeline %s (one of: %s)\n" pipeline
        (String.concat ", " (List.map fst pipelines));
      exit 2
  in
  apply f;
  (match Verifier.verify_or_message f with
  | None -> ()
  | Some m ->
    Printf.eprintf "internal error: optimized IR is ill-formed: %s\n" m;
    exit 3);
  if dump_ir then Printer.print f;
  if dump_cfg then print_string (Fgv_cfg.Cir.to_string (Fgv_cfg.Lower.lower f));
  if run then begin
    let argv =
      if args = "" then []
      else
        List.map
          (fun s ->
            let s = String.trim s in
            match float_of_string_opt s with
            | Some x when String.contains s '.' -> Value.VFloat x
            | _ -> Value.VInt (int_of_string s))
          (String.split_on_char ',' args)
    in
    let mem = Array.init heap (fun i -> Value.VFloat (Float.of_int (i mod 7))) in
    let out = Interp.run f ~args:argv ~mem in
    let c = out.Interp.counters in
    Printf.printf
      "cost=%.0f  ops=%d vops=%d loads=%d vloads=%d stores=%d vstores=%d \
       calls=%d iterations=%d\n"
      (Interp.cost c) c.Interp.scalar_ops c.Interp.vector_ops c.Interp.loads
      c.Interp.vector_loads c.Interp.stores c.Interp.vector_stores
      c.Interp.calls c.Interp.iterations
  end;
  let rc = print_stats stats in
  if rc <> 0 then exit rc;
  0
  end

let file =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"mini-C kernel file (omit with --fuzz)")

let fuzz_opt =
  Arg.(value & opt int 0 & info [ "fuzz" ] ~docv:"N"
         ~doc:"differential-fuzz N generated programs instead of compiling a \
               file; exits 4 and writes a failure report on mismatch")

let seed_opt =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
         ~doc:"base seed for --fuzz; program i uses seed SEED+i, and a \
               failure report's seed replays that one program")

let fuzz_report_opt =
  Arg.(value & opt string "fuzz-report.json" & info [ "fuzz-report" ]
         ~docv:"FILE" ~doc:"where --fuzz writes its machine-readable report")

let pipeline =
  Arg.(value & opt string "none" & info [ "p"; "pipeline" ] ~docv:"PIPE"
         ~doc:"optimization pipeline: none, o3-novec, o3, sv, sv+v, rle, \
               rle-static (with --fuzz also sv+v-nopromo; none = fuzz all)")

let dump_ir =
  Arg.(value & flag & info [ "dump-ir" ] ~doc:"print the predicated SSA")

let dump_cfg =
  Arg.(value & flag & info [ "dump-cfg" ] ~doc:"print the lowered CFG SSA")

let run_flag = Arg.(value & flag & info [ "run" ] ~doc:"interpret the kernel")

let args_opt =
  Arg.(value & opt string "" & info [ "a"; "args" ] ~docv:"ARGS"
         ~doc:"comma-separated arguments (ints are addresses/ints, values \
               with a dot are floats)")

let heap_opt =
  Arg.(value & opt int 1024 & info [ "heap" ] ~docv:"CELLS" ~doc:"heap size in cells")

let no_restrict =
  Arg.(value & flag & info [ "no-restrict" ] ~doc:"ignore restrict qualifiers")

let jobs_opt =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "worker domains for --fuzz (0 = auto: $(b,POOL_JOBS) or the \
           machine's core count); results are byte-identical at any job \
           count")

let stats_opt =
  Arg.(
    value
    & opt ~vopt:(Some "text") (some string) None
    & info [ "stats" ] ~docv:"FMT"
        ~doc:
          "print the telemetry counters and timers the compile recorded \
           (plans, checks, cut sizes, condition optimizations, pass work); \
           $(docv) is $(b,text) (default) or $(b,json)")

let cmd =
  let doc = "compile and run mini-C kernels with fine-grained program versioning" in
  Cmd.v
    (Cmd.info "fgvc" ~doc)
    Term.(
      const run_driver $ file $ fuzz_opt $ seed_opt $ fuzz_report_opt
      $ pipeline $ dump_ir $ dump_cfg $ run_flag $ args_opt $ heap_opt
      $ no_restrict $ stats_opt $ jobs_opt)

let () = exit (Cmd.eval' cmd)
