(* fgvc — the mini-C kernel compiler driver.

   Compiles a kernel to predicated SSA, optionally applies one of the
   standard pipelines, and can print the PSSA, print the lowered CFG, or
   interpret the result with the cost model.

     fgvc kernel.c -p sv+v --dump-ir --run -a 0,64,16 --heap 256

   Observability (see DESIGN.md §11):

     fgvc kernel.c -p sv+v --trace trace.json   # Chrome/Perfetto spans
     fgvc kernel.c -p sv+v --remarks            # human-readable remarks
     fgvc kernel.c -p sv+v --remarks=json       # one JSON object per line
     fgvc kernel.c -p sv+v --dump-ir=DIR        # per-pass IR snapshots+diffs

   With [--fuzz N] no input file is needed: the driver runs a
   differential-fuzzing campaign (lib/fuzz) of N generated programs
   through the selected pipeline (default: all of them), writes a
   machine-readable failure report with a shrunk reproducer on mismatch,
   and exits 4.

     fgvc --fuzz 500 --seed 42
     fgvc --fuzz 200 --pipeline sv+v --fuzz-report report.json

   [--jobs N] fans the campaign's seeds out over N worker domains
   (default: POOL_JOBS or the machine's core count).  The failure
   report, the telemetry counters, and the remark stream are
   byte-identical at any job count: the lowest failing seed wins,
   exactly as in a sequential scan.

   With [--serve] the driver becomes a batch compile service speaking
   newline-delimited JSON (lib/service, DESIGN.md §15): requests in,
   artifacts out, repeats answered from a content-addressed cache.

     fgvc --serve --jobs 4 < requests.jsonl
     fgvc --serve --socket /tmp/fgvc.sock --cache-max 256
*)

open Cmdliner
open Fgv_pssa
module P = Fgv_passes
module F = Fgv_fuzz
module Tm = Fgv_support.Telemetry
module Tr = Fgv_support.Trace
module Ev = Fgv_support.Eventlog
module N = Fgv_backend.Native
module Udiff = Fgv_support.Udiff

(* Schema versions of every machine-readable output this tool family
   emits; printed by --version so consumers can pin against them. *)
let version_string = Fgv_support.Version.banner

(* The shared pipeline registry, plus the driver-only identity pipeline. *)
let pipelines :
    (string * (?on_pass:(string -> Ir.func -> unit) -> Ir.func -> unit)) list =
  ("none", fun ?on_pass:_ _ -> ()) :: P.Pipelines.registry

let print_stats stats =
  match stats with
  | None -> 0
  | Some "json" ->
    print_endline (Tm.json_to_string (Tm.snapshot ()));
    0
  | Some "text" ->
    print_string (Tm.report ());
    0
  | Some other ->
    Printf.eprintf "unknown --stats format %s (expected text or json)\n" other;
    2

(* ----------------------------------------------------- observability *)

(* Enable span/remark recording and the structured event log per the
   flags; returns a finalizer that writes the trace file, prints the
   remark stream, and closes the log. *)
let setup_observability trace remarks log =
  (match remarks with
  | None | Some "text" | Some "json" -> ()
  | Some other ->
    Printf.eprintf "unknown --remarks format %s (expected text or json)\n"
      other;
    exit 2);
  if trace <> None then Tr.set_spans true;
  if remarks <> None then Tr.set_remarks true;
  (match log with
  | None -> ()
  | Some spec -> (
    match Ev.parse_spec spec with
    | Ok (path, level) -> Ev.open_log ~path ~level
    | Error e ->
      Printf.eprintf "fgvc: bad --log argument %s: %s\n" spec e;
      exit 2));
  fun () ->
    (match remarks with
    | Some "json" -> print_string (Tr.remarks_jsonl ())
    | Some _ -> print_string (Tr.remarks_report ())
    | None -> ());
    (match trace with Some file -> Tr.write_chrome_trace file | None -> ());
    Ev.close ()

(* Per-pass IR snapshots: DIR/000-input.pssa, then NNN-<pass>.pssa and a
   unified NNN-<pass>.diff for every stage that changed the printed IR. *)
let snapshot_hook dir (f0 : Ir.func) : string -> Ir.func -> unit =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name s =
    let oc = open_out (Filename.concat dir name) in
    output_string oc s;
    close_out oc
  in
  let prev = ref (Printer.to_string f0) in
  let prev_name = ref "000-input" in
  write "000-input.pssa" !prev;
  let n = ref 0 in
  fun name f ->
    incr n;
    let base = Printf.sprintf "%03d-%s" !n name in
    let cur = Printer.to_string f in
    write (base ^ ".pssa") cur;
    let d =
      Udiff.unified
        ~from_label:(!prev_name ^ ".pssa")
        ~to_label:(base ^ ".pssa") !prev cur
    in
    if d <> "" then write (base ^ ".diff") d;
    prev := cur;
    prev_name := base

(* ---------------------------------------------------------- fuzz mode *)

let run_fuzz n seed pipeline report_file stats jobs native finalize =
  let pipelines =
    if pipeline = "none" then F.Oracle.pipeline_names
    else if List.mem_assoc pipeline F.Oracle.pipelines then [ pipeline ]
    else begin
      Printf.eprintf "unknown fuzz pipeline %s (one of: %s)\n" pipeline
        (String.concat ", " F.Oracle.pipeline_names);
      exit 2
    end
  in
  let jobs =
    if jobs > 0 then jobs else Fgv_support.Pool.default_jobs ()
  in
  if native && not (N.available ()) then begin
    Printf.eprintf
      "fgvc: --fuzz-native needs a C compiler (install cc/gcc/clang or set \
       FGV_CC)\n";
    exit 2
  end;
  let outcome = F.Campaign.run ~native ~pipelines ~jobs ~n ~seed () in
  let report = F.Campaign.report_json outcome in
  let oc = open_out report_file in
  output_string oc (Tm.json_to_string report);
  output_char oc '\n';
  close_out oc;
  (match outcome.F.Campaign.c_failure with
  | None ->
    Printf.printf
      "fuzz: %d programs x %d pipelines, %d oracle runs, %d native runs, 0 \
       mismatches (report: %s)\n"
      outcome.F.Campaign.c_programs (List.length pipelines)
      (Tm.get "fuzz.oracle_runs")
      (Tm.get "fuzz.native_runs")
      report_file
  | Some f ->
    let m = f.F.Campaign.f_mismatch in
    Printf.printf
      "fuzz: MISMATCH at program %d (seed %d): %s\n\
       shrunk to %d statements in %d steps:\n\n%s\n\n\
       report written to %s\n"
      f.F.Campaign.f_index f.F.Campaign.f_seed
      (F.Oracle.mismatch_to_string m)
      f.F.Campaign.f_shrunk_stmts f.F.Campaign.f_shrink_steps
      f.F.Campaign.f_shrunk report_file);
  finalize ();
  let rc = print_stats stats in
  if rc <> 0 then rc
  else if outcome.F.Campaign.c_failure <> None then 4
  else 0

(* --------------------------------------------------- native execution *)

(* [--run-native]: lower to the CFG, compile the checked-mode C with the
   system toolchain, run it, and cross-check class + final memory +
   impure-call trace against the CFG interpreter — the same differential
   the fuzz oracle applies, on the user's kernel.  On agreement, also
   compile the fast configuration and report measured ns/run.  A
   disagreement is a compiler bug and exits 5. *)
let run_native_differential (f : Ir.func) ~(argv : Value.t list) ~fresh_mem =
  if not (N.available ()) then begin
    Printf.eprintf
      "fgvc: --run-native needs a C compiler (install cc/gcc/clang or set \
       FGV_CC)\n";
    exit 2
  end;
  let prog = Fgv_cfg.Lower.lower f in
  let iclass, iout =
    match Fgv_cfg.Cinterp.run prog ~args:argv ~mem:(fresh_mem ()) with
    | out -> (N.NOk, Some out)
    | exception Value.Trap _ -> (N.NTrap, None)
    | exception Value.Undef_access op -> (N.NUndef op, None)
    | exception Fgv_cfg.Cinterp.Out_of_fuel -> (N.NFuel, None)
  in
  let obs =
    match N.compile_checked prog ~mem:(fresh_mem ()) with
    | Error e ->
      Printf.eprintf "fgvc: native compile failed: %s\n" e;
      exit 5
    | Ok c ->
      let res = N.run_checked c ~args:argv in
      N.release c;
      (match res with
      | Error e ->
        Printf.eprintf "fgvc: native run failed: %s\n" e;
        exit 5
      | Ok obs -> obs)
  in
  let class_ok =
    match (iclass, obs.N.n_class) with
    | N.NOk, N.NOk | N.NTrap, N.NTrap | N.NFuel, N.NFuel -> true
    | N.NUndef a, N.NUndef b -> a = b
    | _ -> false
  in
  (* memory and trace are compared on a normal finish only, matching the
     fuzz oracle's observation contract *)
  let mem_ok, trace_ok =
    match iout with
    | None -> (true, true)
    | Some out ->
      ( Array.length obs.N.n_mem = Array.length out.Fgv_cfg.Cinterp.memory
        && Array.for_all2 Value.equal obs.N.n_mem out.Fgv_cfg.Cinterp.memory,
        obs.N.n_trace = out.Fgv_cfg.Cinterp.call_trace )
  in
  if not (class_ok && mem_ok && trace_ok) then begin
    Printf.printf
      "native differential: MISMATCH (class %s vs %s, memory %s, trace %s)\n"
      (N.nclass_string obs.N.n_class)
      (N.nclass_string iclass)
      (if mem_ok then "agrees" else "DIFFERS")
      (if trace_ok then "agrees" else "DIFFERS");
    exit 5
  end;
  Printf.printf "native differential: OK (class %s, %d impure calls)\n"
    (N.nclass_string iclass)
    (List.length obs.N.n_trace);
  if iclass = N.NOk then
    match N.run_fast prog ~args:argv ~mem:(fresh_mem ()) with
    | Error e -> Printf.eprintf "fgvc: native timing failed: %s\n" e
    | Ok fr ->
      Printf.printf
        "native timing: %.1f ns/run (%d reps, compile %.2fs, checksum %h)\n"
        fr.N.nf_ns fr.N.nf_reps fr.N.nf_compile_s fr.N.nf_checksum

(* ------------------------------------------------------- service mode *)

let run_serve socket cache_max stats jobs slow_ms finalize =
  let module S = Fgv_service.Service in
  let svc =
    S.create
      ?jobs:(if jobs = 0 then None else Some jobs)
      ?slow_ms ~cache_max ()
  in
  (* No jobs field here: the serve-start record is part of the log's
     deterministic (non-timing) projection, which must not vary with
     --jobs (DESIGN §16). *)
  Ev.emit Ev.Info "serve-start"
    [
      ( "transport",
        Fgv_support.Json.String
          (match socket with Some _ -> "socket" | None -> "stdin") );
      ("cache_max", Int cache_max);
    ];
  (match socket with
  | Some path -> S.serve_socket svc path
  | None -> ignore (S.serve_channel svc stdin stdout));
  finalize ();
  let rc = print_stats stats in
  if rc <> 0 then exit rc;
  0

(* ------------------------------------------------------- compile mode *)

let run_driver file fuzz seed fuzz_report fuzz_native pipeline dump_ir
    dump_cfg run args heap no_restrict emit_c run_native stats jobs trace
    remarks serve socket stdin_proto cache_max log slow_ms =
  let finalize = setup_observability trace remarks log in
  if serve || stdin_proto || socket <> None then
    run_serve socket cache_max stats jobs slow_ms finalize
  else if fuzz > 0 then begin
    Ev.emit Ev.Info "fuzz-campaign"
      [
        ("n", Fgv_support.Json.Int fuzz);
        ("seed", Int seed);
        ("pipeline", String pipeline);
      ];
    run_fuzz fuzz seed pipeline fuzz_report stats jobs fuzz_native finalize
  end
  else begin
  let file =
    match file with
    | Some f -> f
    | None ->
      Printf.eprintf "fgvc: expected a kernel FILE (or --fuzz N)\n";
      exit 2
  in
  Ev.emit Ev.Info "compile"
    [
      ("file", Fgv_support.Json.String file);
      ("pipeline", String pipeline);
      ("no_restrict", Bool no_restrict);
    ];
  let source =
    let ic = open_in file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let f =
    if no_restrict then Fgv_frontend.Lower_ast.compile_no_restrict source
    else Fgv_frontend.Lower_ast.compile source
  in
  let apply =
    match List.assoc_opt pipeline pipelines with
    | Some p -> p
    | None ->
      Printf.eprintf "unknown pipeline %s (one of: %s)\n" pipeline
        (String.concat ", " (List.map fst pipelines));
      exit 2
  in
  let on_pass =
    match dump_ir with
    | Some dir when dir <> "-" -> Some (snapshot_hook dir f)
    | _ -> None
  in
  apply ?on_pass f;
  (match Verifier.verify_or_message f with
  | None -> ()
  | Some m ->
    Printf.eprintf "internal error: optimized IR is ill-formed: %s\n" m;
    exit 3);
  if dump_ir = Some "-" then Printer.print f;
  if dump_cfg then print_string (Fgv_cfg.Cir.to_string (Fgv_cfg.Lower.lower f));
  let argv =
    if args = "" then []
    else
      List.map
        (fun s ->
          let s = String.trim s in
          match float_of_string_opt s with
          | Some x when String.contains s '.' -> Value.VFloat x
          | _ -> Value.VInt (int_of_string s))
        (String.split_on_char ',' args)
  in
  let fresh_mem () =
    Array.init heap (fun i -> Value.VFloat (Float.of_int (i mod 7)))
  in
  (match emit_c with
  | None -> ()
  | Some out ->
    let prog = Fgv_cfg.Lower.lower f in
    let text = Fgv_backend.Emit.checked prog ~mem:(fresh_mem ()) in
    if out = "-" then print_string text
    else begin
      let oc = open_out out in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s\n" out
    end);
  if run_native then run_native_differential f ~argv ~fresh_mem;
  if run then begin
    let mem = fresh_mem () in
    let out = Interp.run f ~args:argv ~mem in
    let c = out.Interp.counters in
    Printf.printf
      "cost=%.0f  ops=%d vops=%d loads=%d vloads=%d stores=%d vstores=%d \
       calls=%d iterations=%d\n"
      (Interp.cost c) c.Interp.scalar_ops c.Interp.vector_ops c.Interp.loads
      c.Interp.vector_loads c.Interp.stores c.Interp.vector_stores
      c.Interp.calls c.Interp.iterations
  end;
  finalize ();
  let rc = print_stats stats in
  if rc <> 0 then exit rc;
  0
  end

let file =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"mini-C kernel file (omit with --fuzz)")

let fuzz_opt =
  Arg.(value & opt int 0 & info [ "fuzz" ] ~docv:"N"
         ~doc:"differential-fuzz N generated programs instead of compiling a \
               file; exits 4 and writes a failure report on mismatch")

let seed_opt =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
         ~doc:"base seed for --fuzz; program i uses seed SEED+i, and a \
               failure report's seed replays that one program")

let fuzz_report_opt =
  Arg.(value & opt string "fuzz-report.json" & info [ "fuzz-report" ]
         ~docv:"FILE" ~doc:"where --fuzz writes its machine-readable report")

let pipeline =
  Arg.(value & opt string "none" & info [ "p"; "pipeline" ] ~docv:"PIPE"
         ~doc:"optimization pipeline: none, o3-novec, o3, sv, sv+v, \
               sv+v-nopromo, rle, rle-static, dse, dse-static, distribute, \
               distribute-static, combined (with --fuzz, none = fuzz all)")

let dump_ir =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "dump-ir" ] ~docv:"DIR"
        ~doc:
          "print the final predicated SSA; with $(b,--dump-ir=DIR), instead \
           write per-pass IR snapshots into $(docv): 000-input.pssa, then \
           NNN-<pass>.pssa plus a unified NNN-<pass>.diff for every pass \
           that changed the IR")

let dump_cfg =
  Arg.(value & flag & info [ "dump-cfg" ] ~doc:"print the lowered CFG SSA")

let run_flag = Arg.(value & flag & info [ "run" ] ~doc:"interpret the kernel")

let args_opt =
  Arg.(value & opt string "" & info [ "a"; "args" ] ~docv:"ARGS"
         ~doc:"comma-separated arguments (ints are addresses/ints, values \
               with a dot are floats)")

let heap_opt =
  Arg.(value & opt int 1024 & info [ "heap" ] ~docv:"CELLS" ~doc:"heap size in cells")

let no_restrict =
  Arg.(value & flag & info [ "no-restrict" ] ~doc:"ignore restrict qualifiers")

let emit_c_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-c" ] ~docv:"FILE"
        ~doc:
          "lower the optimized kernel to checked-mode portable C (the \
           differential-testing configuration: tagged values, fuel, \
           memory/trace protocol) and write it to $(docv) ($(b,-) = stdout)")

let run_native_opt =
  Arg.(
    value & flag
    & info [ "run-native" ]
        ~doc:
          "compile the kernel natively with the system C toolchain and \
           cross-check class, final memory, and impure-call trace against \
           the CFG interpreter, then report measured ns/run from the fast \
           configuration; exits 5 on a differential mismatch")

let fuzz_native_opt =
  Arg.(
    value & flag
    & info [ "fuzz-native" ]
        ~doc:
          "with --fuzz: also run every generated program natively (checked \
           mode) as a fourth oracle; requires a C compiler")

let jobs_opt =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "worker domains for --fuzz and --serve (0 = auto: $(b,POOL_JOBS) \
           or the machine's core count); results are byte-identical at any \
           job count")

let stats_opt =
  Arg.(
    value
    & opt ~vopt:(Some "text") (some string) None
    & info [ "stats" ] ~docv:"FMT"
        ~doc:
          "print the telemetry counters and timers the compile recorded \
           (plans, checks, cut sizes, condition optimizations, pass work); \
           $(docv) is $(b,text) (default) or $(b,json)")

let trace_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "record hierarchical spans (pipelines, passes, plan inference, \
           cut, materialization) and write them to $(docv) as a Chrome \
           trace-event JSON, loadable in Perfetto or chrome://tracing")

let remarks_opt =
  Arg.(
    value
    & opt ~vopt:(Some "text") (some string) None
    & info [ "remarks" ] ~docv:"FMT"
        ~doc:
          "print optimization remarks (versioning decisions, cuts, emitted \
           checks, condition optimizations, per-pass work) to stdout; \
           $(docv) is $(b,text) (default) or $(b,json) for one JSON object \
           per line.  The stream is deterministic: byte-identical at any \
           --jobs count")

let serve_opt =
  Arg.(
    value & flag
    & info [ "serve" ]
        ~doc:
          "run as a compile service: read newline-delimited JSON compile \
           requests (or batches) from stdin and answer one response line \
           per request line on stdout, fanning distinct compiles across \
           --jobs worker domains and answering repeats from a \
           content-addressed artifact cache.  See also $(b,--socket), \
           $(b,--cache-max)")

let socket_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "with the compile service: listen on a Unix-domain socket at \
           $(docv) instead of stdin/stdout; the cache persists across \
           connections (implies $(b,--serve))")

let stdin_proto_opt =
  Arg.(
    value & flag
    & info [ "stdin-proto" ]
        ~doc:
          "explicit alias for the compile service's default stdin/stdout \
           transport (implies $(b,--serve))")

let cache_max_opt =
  Arg.(
    value
    & opt int Fgv_service.Cache.default_max
    & info [ "cache-max" ] ~docv:"N"
        ~doc:
          "with the compile service: keep at most $(docv) artifacts in the \
           cache, evicting least-recently-used entries past that")

let log_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "log" ] ~docv:"FILE[=LEVEL]"
        ~doc:
          "write a structured JSON-lines event log to $(docv): one object \
           per event (compiles, fuzz campaigns, service start, one access \
           record per service request), at $(b,debug), $(b,info) (default) \
           or $(b,warn) level.  Wall-clock data lives only under each \
           event's $(b,timing) member, so the rest of the log is \
           byte-identical at any --jobs count")

let slow_ms_opt =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "with the compile service: emit a warn-level $(b,slow-request) \
           event to the $(b,--log) file for every request that takes longer \
           than $(docv) milliseconds")

let cmd =
  let doc = "compile and run mini-C kernels with fine-grained program versioning" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "$(tname) compiles a mini-C kernel to predicated SSA, optionally \
         applies an optimization pipeline built around fine-grained program \
         versioning, and can print the IR, lower it to a CFG, or interpret \
         it under a cost model.  With $(b,--fuzz) it instead runs a \
         differential-fuzzing campaign over generated programs.";
      `S "COMPILE SERVICE";
      `P
        "$(b,--serve) turns $(tname) into a batch compile service speaking \
         newline-delimited JSON on stdin/stdout (or on a Unix socket with \
         $(b,--socket) PATH).  A request object carries $(b,source) plus \
         optional $(b,id), $(b,pipeline), $(b,no_restrict), $(b,emit_c), \
         $(b,heap); a JSON array of requests is one batch, compiled in \
         parallel.  Artifacts are cached content-addressed (key: \
         canonicalized source, pipeline, flags, tool version) with LRU \
         eviction at $(b,--cache-max) entries; cached responses are \
         byte-identical to fresh ones.  {\"op\": \"ping\"|\"stats\"|\
         \"metrics\"|\"shutdown\"} are control lines; $(b,metrics) returns \
         counters, cache stats, and request-latency histograms (add \
         \"format\":\"text\" for a Prometheus-style exposition).";
      `S "OBSERVABILITY";
      `P
        "$(b,--trace) FILE writes a Chrome trace-event JSON of the \
         compilation's span hierarchy (the service adds per-request spans \
         tagged with their sequence number).  $(b,--remarks)[=$(b,json)] \
         prints the optimization-remark stream.  $(b,--dump-ir)=DIR writes \
         before/after IR snapshots and unified diffs per pass.  \
         $(b,--stats)[=$(b,json)] prints the telemetry registry, each timer \
         with a latency histogram.  $(b,--log) FILE[=LEVEL] writes the \
         structured event log; $(b,--slow-ms) N flags slow service \
         requests in it.";
      `S Manpage.s_exit_status;
      `P "0 on success;";
      `P "2 on usage errors (unknown pipeline, bad format argument);";
      `P "3 when the optimized IR fails verification (a compiler bug);";
      `P "4 when $(b,--fuzz) found a miscompilation;";
      `P
        "5 when $(b,--run-native) found a native/interpreter differential \
         mismatch (or the native build of the kernel failed).";
    ]
  in
  Cmd.v
    (Cmd.info "fgvc" ~doc ~version:version_string ~man)
    Term.(
      const run_driver $ file $ fuzz_opt $ seed_opt $ fuzz_report_opt
      $ fuzz_native_opt $ pipeline $ dump_ir $ dump_cfg $ run_flag $ args_opt
      $ heap_opt $ no_restrict $ emit_c_opt $ run_native_opt $ stats_opt
      $ jobs_opt $ trace_opt $ remarks_opt $ serve_opt $ socket_opt
      $ stdin_proto_opt $ cache_max_opt $ log_opt $ slow_ms_opt)

let () = exit (Cmd.eval' cmd)
