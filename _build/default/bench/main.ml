(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (SV) over the simulator, then runs Bechamel
   wall-clock micro-benchmarks of the interpreter executing the baseline
   and versioned programs — one Bechamel test pair per paper table, as a
   sanity check that the cost model's direction agrees with real time.

   Usage:
     dune exec bench/main.exe               # everything
     dune exec bench/main.exe -- fig16      # one table
     dune exec bench/main.exe -- wallclock  # Bechamel timings only
*)

module E = Fgv_bench.Experiments
module W = Fgv_bench.Workload
open Fgv_pssa

let section title body =
  Printf.printf "==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n%!";
  print_string body;
  print_newline ()

(* --------------------------------------------------- bechamel timings *)

(* Compile + optimize once; the timed thunk only interprets. *)
let prepared (config : W.config) (k : W.kernel) =
  let f = W.compile_for config k in
  ignore (config.W.c_apply f);
  let args = k.W.k_args in
  fun () -> ignore (Interp.run f ~args ~mem:(W.fresh_mem k))

let wallclock_tests () =
  let pick name kernels = List.find (fun k -> k.W.k_name = name) kernels in
  let tsvc_k = pick "s131" Fgv_bench.Tsvc.kernels in
  let poly_k = pick "floyd-warshall" Fgv_bench.Polybench.kernels in
  let spec_k = pick "lbm_r" Fgv_bench.Specfp.kernels in
  [
    (* Fig. 19 representative: TSVC s131 (symbolic dependence distance) *)
    ("fig19/s131-O3", prepared (W.llvm_o3 ()) tsvc_k);
    ("fig19/s131-SV+V", prepared (W.sv_versioning ()) tsvc_k);
    (* Fig. 16 representative: floyd-warshall without restrict *)
    ("fig16/fw-O3", prepared (W.llvm_o3 ~restrict:false ()) poly_k);
    ("fig16/fw-SV+V", prepared (W.sv_versioning ~restrict:false ()) poly_k);
    (* Fig. 22 representative: the lbm surrogate, RLE off/on *)
    ( "fig22/lbm-base",
      prepared (W.cfg "rle-base" (fun f -> Fgv_passes.Pipelines.rle_baseline f)) spec_k );
    ( "fig22/lbm-RLE",
      prepared (W.cfg "rle" (fun f -> Fgv_passes.Pipelines.rle_pipeline f)) spec_k );
  ]

let wallclock () =
  let open Bechamel in
  let tests =
    List.map
      (fun (name, thunk) -> Test.make ~name (Staged.stage thunk))
      (wallclock_tests ())
  in
  let grouped = Test.make_grouped ~name:"fgv" ~fmt:"%s/%s" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Printf.printf "Bechamel wall-clock (monotonic ns per interpreter run)\n";
  Printf.printf "%-24s %14s\n" "benchmark" "ns/run";
  Printf.printf "---------------------------------------\n";
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some [ x ] -> Printf.sprintf "%14.0f" x
        | _ -> "?"
      in
      Printf.printf "%-24s %s\n" name est)
    results;
  print_newline ()

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let run_fig19 () = section "E2 / Fig. 19 (TSVC)" (E.fig19 ()) in
  let run_fig16 () = section "E1 / Fig. 16 (PolyBench)" (E.fig16 ()) in
  let run_fig22 () = section "E5 / Fig. 22 (SPEC FP surrogates, RLE)" (E.fig22 ()) in
  let run_s258 () = section "E4 / s258 speculation" (E.s258_speculation ()) in
  let run_a1 () = section "A1 / min-cut ablation" (E.ablation_mincut ()) in
  let run_a2 () =
    section "A2 / condition-optimization ablation" (E.ablation_condopt ())
  in
  match what with
  | "fig19" | "tsvc" -> run_fig19 ()
  | "fig16" | "polybench" -> run_fig16 ()
  | "fig22" | "rle" | "specfp" -> run_fig22 ()
  | "s258" -> run_s258 ()
  | "ablation-mincut" -> run_a1 ()
  | "ablation-condopt" -> run_a2 ()
  | "wallclock" -> wallclock ()
  | "all" ->
    run_fig19 ();
    run_fig16 ();
    run_fig22 ();
    run_s258 ();
    run_a1 ();
    run_a2 ();
    section "Wall-clock sanity (Bechamel)" "";
    wallclock ()
  | other ->
    Printf.eprintf
      "unknown table %s (try: fig16 fig19 fig22 s258 ablation-mincut \
       ablation-condopt wallclock all)\n"
      other;
    exit 1
