lib/frontend/lexer.ml: Array List Printf String
