lib/frontend/ast.ml: List
