lib/frontend/lower_ast.ml: Ast Builder Fgv_pssa Ir List Map Parser Pred Printf String Verifier
