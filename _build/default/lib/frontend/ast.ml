(* Abstract syntax of the mini-C kernel language.

   The language is deliberately small: scalars (int/float/bool), pointer
   parameters indexed with [p[e]] (multi-dimensional arrays are written
   with manual linearization, as PolyBench does internally), structured
   control flow, and calls to a fixed table of external functions.  It is
   just enough to express the TSVC / PolyBench / SPEC-surrogate kernels
   the evaluation needs, and it lowers directly to predicated SSA. *)

type ty = Tint | Tfloat | Tbool | Tptr of ty

let rec string_of_ty = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tbool -> "bool"
  | Tptr t -> string_of_ty t ^ "*"

type expr =
  | Eint of int
  | Efloat of float
  | Ebool of bool
  | Evar of string
  | Eindex of string * expr (* p[e], an rvalue load *)
  | Ebin of string * expr * expr (* "+" "-" "*" "/" "%" "<" ... "&&" "||" *)
  | Eun of string * expr (* "-" "!" *)
  | Eternary of expr * expr * expr
  | Ecall of string * expr list
  | Ecast of ty * expr

type stmt =
  | Sdecl of ty * string * expr
  | Sassign of string * expr
  | Sstore of string * expr * expr (* p[idx] = v *)
  | Sif of expr * stmt list * stmt list
  | Sfor of stmt * expr * stmt * stmt list (* init; cond; step *)
  | Swhile of expr * stmt list
  | Sexpr of expr (* expression evaluated for its side effect *)

type param = { pname : string; pty : ty; prestrict : bool }

type fdecl = { fdname : string; fdparams : param list; fdbody : stmt list }

(* Variables assigned (not declared) anywhere in a statement list; used
   to decide which variables need mu nodes at loop headers. *)
let rec assigned_vars stmts =
  List.concat_map assigned_of_stmt stmts

and assigned_of_stmt = function
  | Sdecl (_, x, _) -> [ x ] (* shadows; caller intersects with outer scope *)
  | Sassign (x, _) -> [ x ]
  | Sstore _ | Sexpr _ -> []
  | Sif (_, t, e) -> assigned_vars t @ assigned_vars e
  | Sfor (init, _, step, body) ->
    assigned_of_stmt init @ assigned_of_stmt step @ assigned_vars body
  | Swhile (_, body) -> assigned_vars body

(* Variables *declared* at the top level of a statement list. *)
let declared_vars stmts =
  List.filter_map (function Sdecl (_, x, _) -> Some x | _ -> None) stmts
