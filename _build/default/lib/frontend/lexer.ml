(* Hand-written lexer for the mini-C kernel language. *)

type token =
  | TInt of int
  | TFloat of float
  | TIdent of string
  | TPunct of string
  | TEOF

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

(* Two-character punctuators must be tried before one-character ones. *)
let puncts2 = [ "=="; "!="; "<="; ">="; "&&"; "||" ]
let puncts1 = [ "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "?"; ":"; "=";
                "<"; ">"; "+"; "-"; "*"; "/"; "%"; "!" ]

let tokenize (src : string) : token array =
  let n = String.length src in
  let tokens = ref [] in
  let pos = ref 0 in
  let line = ref 1 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let rec skip_ws () =
    match peek 0 with
    | Some (' ' | '\t' | '\r') ->
      incr pos;
      skip_ws ()
    | Some '\n' ->
      incr pos;
      incr line;
      skip_ws ()
    | Some '/' when peek 1 = Some '/' ->
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done;
      skip_ws ()
    | Some '/' when peek 1 = Some '*' ->
      pos := !pos + 2;
      let rec close () =
        if !pos + 1 >= n then fail "line %d: unterminated comment" !line
        else if src.[!pos] = '*' && src.[!pos + 1] = '/' then pos := !pos + 2
        else begin
          if src.[!pos] = '\n' then incr line;
          incr pos;
          close ()
        end
      in
      close ();
      skip_ws ()
    | _ -> ()
  in
  let lex_number () =
    let start = !pos in
    while !pos < n && is_digit src.[!pos] do
      incr pos
    done;
    let is_float = ref false in
    if !pos < n && src.[!pos] = '.' then begin
      is_float := true;
      incr pos;
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done
    end;
    if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
      is_float := true;
      incr pos;
      if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then incr pos;
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done
    end;
    let text = String.sub src start (!pos - start) in
    if !is_float then TFloat (float_of_string text) else TInt (int_of_string text)
  in
  let lex_ident () =
    let start = !pos in
    while !pos < n && is_ident_char src.[!pos] do
      incr pos
    done;
    TIdent (String.sub src start (!pos - start))
  in
  let try_punct () =
    let starts_with s =
      !pos + String.length s <= n && String.sub src !pos (String.length s) = s
    in
    match List.find_opt starts_with puncts2 with
    | Some s ->
      pos := !pos + 2;
      Some (TPunct s)
    | None -> (
      match List.find_opt starts_with puncts1 with
      | Some s ->
        incr pos;
        Some (TPunct s)
      | None -> None)
  in
  let continue_ = ref true in
  while !continue_ do
    skip_ws ();
    if !pos >= n then continue_ := false
    else begin
      let c = src.[!pos] in
      let tok =
        if is_digit c then lex_number ()
        else if is_ident_start c then lex_ident ()
        else
          match try_punct () with
          | Some t -> t
          | None -> fail "line %d: unexpected character %c" !line c
      in
      tokens := tok :: !tokens
    end
  done;
  Array.of_list (List.rev (TEOF :: !tokens))

let string_of_token = function
  | TInt n -> string_of_int n
  | TFloat x -> string_of_float x
  | TIdent s -> s
  | TPunct s -> "'" ^ s ^ "'"
  | TEOF -> "<eof>"
