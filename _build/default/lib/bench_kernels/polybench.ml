(* PolyBench/C kernels in mini-C (linearized indexing), for the Fig. 16
   experiment.  Sources carry restrict qualifiers; the harness compiles
   each kernel twice — honouring them ("restrict on") or stripping them
   ("restrict off", the configuration where LLVM must assume all arrays
   alias).

   Includes all five kernels the paper singles out as vectorizable only
   with fine-grained versioning (correlation, covariance,
   floyd-warshall, lu, ludcmp — triangular iteration spaces and in-place
   updates). *)

open Fgv_pssa

let n = 12 (* matrix dimension *)
let mat = n * n

(* base addresses for up to five matrices and four vectors *)
let m1 = 0
let m2 = mat
let m3 = 2 * mat
let m4 = 3 * mat
let v1 = 4 * mat
let v2 = (4 * mat) + n
let v3 = (4 * mat) + (2 * n)
let v4 = (4 * mat) + (3 * n)
let v5 = (4 * mat) + (4 * n)
let heap = (4 * mat) + (8 * n)

let vint x = Value.VInt x

let mk ?(note = "") name ~params ~args body =
  let ident = String.map (fun c -> if c = '-' then '_' else c) name in
  let ident = if ident.[0] >= '0' && ident.[0] <= '9' then "k" ^ ident else ident in
  Workload.mk ~name
    ~source:(Printf.sprintf "kernel %s(%s) {\n%s\n}" ident params body)
    ~args ~heap ~note ()

let kernels : Workload.kernel list =
  [
    mk "gemm" ~note:"dense matmul"
      ~params:
        "float* restrict cm, float* restrict am, float* restrict bm, int n"
      ~args:[ vint m1; vint m2; vint m3; vint n ]
      {|
      for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
          cm[i * n + j] = cm[i * n + j] * 1.2;
        }
        for (int kk = 0; kk < n; kk = kk + 1) {
          for (int j = 0; j < n; j = j + 1) {
            cm[i * n + j] = cm[i * n + j] + 1.5 * am[i * n + kk] * bm[kk * n + j];
          }
        }
      }
    |};
    mk "atax" ~note:"A^T (A x)"
      ~params:
        "float* restrict am, float* restrict x, float* restrict y, float* restrict tmp, int n"
      ~args:[ vint m1; vint v1; vint v2; vint v3; vint n ]
      {|
      for (int i = 0; i < n; i = i + 1) { y[i] = 0.0; }
      for (int i = 0; i < n; i = i + 1) {
        float t = 0.0;
        for (int j = 0; j < n; j = j + 1) { t = t + am[i * n + j] * x[j]; }
        tmp[i] = t;
        for (int j = 0; j < n; j = j + 1) {
          y[j] = y[j] + am[i * n + j] * t;
        }
      }
    |};
    mk "bicg" ~note:"BiCG kernel"
      ~params:
        "float* restrict am, float* restrict s, float* restrict q, float* restrict p, float* restrict r, int n"
      ~args:[ vint m1; vint v1; vint v2; vint v3; vint v4; vint n ]
      {|
      for (int i = 0; i < n; i = i + 1) { s[i] = 0.0; }
      for (int i = 0; i < n; i = i + 1) {
        float t = 0.0;
        for (int j = 0; j < n; j = j + 1) {
          s[j] = s[j] + r[i] * am[i * n + j];
          t = t + am[i * n + j] * p[j];
        }
        q[i] = t;
      }
    |};
    mk "mvt" ~note:"two mat-vec products"
      ~params:
        "float* restrict am, float* restrict x1, float* restrict x2, float* restrict y1, float* restrict y2, int n"
      ~args:[ vint m1; vint v1; vint v2; vint v3; vint v4; vint n ]
      {|
      for (int i = 0; i < n; i = i + 1) {
        float t = x1[i];
        for (int j = 0; j < n; j = j + 1) { t = t + am[i * n + j] * y1[j]; }
        x1[i] = t;
      }
      for (int i = 0; i < n; i = i + 1) {
        float t = x2[i];
        for (int j = 0; j < n; j = j + 1) { t = t + am[j * n + i] * y2[j]; }
        x2[i] = t;
      }
    |};
    mk "gesummv" ~note:"summed mat-vec"
      ~params:
        "float* restrict am, float* restrict bm, float* restrict x, float* restrict y, float* restrict tmp, int n"
      ~args:[ vint m1; vint m2; vint v1; vint v2; vint v3; vint n ]
      {|
      for (int i = 0; i < n; i = i + 1) {
        float t1 = 0.0;
        float t2 = 0.0;
        for (int j = 0; j < n; j = j + 1) {
          t1 = t1 + am[i * n + j] * x[j];
          t2 = t2 + bm[i * n + j] * x[j];
        }
        tmp[i] = t1;
        y[i] = 1.3 * t1 + 2.4 * t2;
      }
    |};
    mk "gemver" ~note:"vector multiple updates"
      ~params:
        "float* restrict am, float* restrict u1, float* restrict u2, float* restrict v1, float* restrict v2, float* restrict x, float* restrict y, float* restrict w, float* restrict z, int n"
      ~args:
        [ vint m1; vint v1; vint v2; vint v3; vint v4; vint v5;
          vint (v5 + n); vint (v5 + (2 * n)); vint (v5 + (3 * n)); vint n ]
      {|
      for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
          am[i * n + j] = am[i * n + j] + u1[i] * v1[j] + u2[i] * v2[j];
        }
      }
      for (int i = 0; i < n; i = i + 1) {
        float t = x[i];
        for (int j = 0; j < n; j = j + 1) { t = t + 1.1 * am[j * n + i] * y[j]; }
        x[i] = t + z[i];
      }
      for (int i = 0; i < n; i = i + 1) {
        float t = w[i];
        for (int j = 0; j < n; j = j + 1) { t = t + 1.2 * am[i * n + j] * x[j]; }
        w[i] = t;
      }
    |};
    mk "jacobi-1d" ~note:"1-D stencil, two steps"
      ~params:"float* restrict ax, float* restrict bx, int n"
      ~args:[ vint v1; vint v2; vint n ]
      {|
      for (int t = 0; t < 4; t = t + 1) {
        for (int i = 1; i < n - 1; i = i + 1) {
          bx[i] = 0.33333 * (ax[i - 1] + ax[i] + ax[i + 1]);
        }
        for (int i = 1; i < n - 1; i = i + 1) {
          ax[i] = 0.33333 * (bx[i - 1] + bx[i] + bx[i + 1]);
        }
      }
    |};
    mk "jacobi-2d" ~note:"2-D stencil"
      ~params:"float* restrict am, float* restrict bm, int n"
      ~args:[ vint m1; vint m2; vint n ]
      {|
      for (int t = 0; t < 2; t = t + 1) {
        for (int i = 1; i < n - 1; i = i + 1) {
          for (int j = 1; j < n - 1; j = j + 1) {
            bm[i * n + j] = 0.2 * (am[i * n + j] + am[i * n + j - 1] + am[i * n + j + 1] + am[(i + 1) * n + j] + am[(i - 1) * n + j]);
          }
        }
        for (int i = 1; i < n - 1; i = i + 1) {
          for (int j = 1; j < n - 1; j = j + 1) {
            am[i * n + j] = 0.2 * (bm[i * n + j] + bm[i * n + j - 1] + bm[i * n + j + 1] + bm[(i + 1) * n + j] + bm[(i - 1) * n + j]);
          }
        }
      }
    |};
    mk "trisolv" ~note:"triangular solve (recurrence)"
      ~params:
        "float* restrict lm, float* restrict x, float* restrict bv, int n"
      ~args:[ vint m1; vint v1; vint v2; vint n ]
      {|
      for (int i = 0; i < n; i = i + 1) {
        float t = bv[i];
        for (int j = 0; j < i; j = j + 1) { t = t - lm[i * n + j] * x[j]; }
        x[i] = t / (lm[i * n + i] + 3.0);
      }
    |};
    mk "2mm" ~note:"matmul chain"
      ~params:
        "float* restrict tmp, float* restrict am, float* restrict bm, float* restrict cm, float* restrict dm, int n"
      ~args:[ vint m1; vint m2; vint m3; vint m4; vint v1; vint 8 ]
      {|
      for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
          float t = 0.0;
          for (int kk = 0; kk < n; kk = kk + 1) {
            t = t + 1.5 * am[i * n + kk] * bm[kk * n + j];
          }
          tmp[i * n + j] = t;
        }
      }
      for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
          float t = dm[i * n + j] * 1.2;
          for (int kk = 0; kk < n; kk = kk + 1) {
            t = t + tmp[i * n + kk] * cm[kk * n + j];
          }
          dm[i * n + j] = t;
        }
      }
    |};
    mk "syrk" ~note:"symmetric rank-k update (triangular, in place)"
      ~params:"float* restrict cm, float* restrict am, int n"
      ~args:[ vint m1; vint m2; vint n ]
      {|
      for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j <= i; j = j + 1) {
          cm[i * n + j] = cm[i * n + j] * 1.2;
        }
        for (int kk = 0; kk < n; kk = kk + 1) {
          for (int j = 0; j <= i; j = j + 1) {
            cm[i * n + j] = cm[i * n + j] + 1.5 * am[i * n + kk] * am[j * n + kk];
          }
        }
      }
    |};
    mk "trmm" ~note:"triangular matmul, in place"
      ~params:"float* restrict am, float* restrict bm, int n"
      ~args:[ vint m1; vint m2; vint n ]
      {|
      for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
          float t = bm[i * n + j];
          for (int kk = i + 1; kk < n; kk = kk + 1) {
            t = t + am[kk * n + i] * bm[kk * n + j];
          }
          bm[i * n + j] = 1.5 * t;
        }
      }
    |};
    mk "doitgen" ~note:"multiresolution kernel"
      ~params:"float* restrict aq, float* restrict c4, float* restrict sum, int n"
      ~args:[ vint 0; vint 512; vint 576; vint 8 ]
      {|
      for (int r = 0; r < n; r = r + 1) {
        for (int q = 0; q < n; q = q + 1) {
          for (int pp = 0; pp < n; pp = pp + 1) {
            float t = 0.0;
            for (int s = 0; s < n; s = s + 1) {
              t = t + aq[r * n * n + q * n + s] * c4[s * n + pp];
            }
            sum[pp] = t;
          }
          for (int pp = 0; pp < n; pp = pp + 1) {
            aq[r * n * n + q * n + pp] = sum[pp];
          }
        }
      }
    |};
    (* ------ the five kernels the paper names (SV-A2, Fig. 16) ------- *)
    mk "floyd-warshall" ~note:"in-place shortest paths (paper Fig. 17)"
      ~params:"float* restrict path, int n"
      ~args:[ vint m1; vint n ]
      {|
      for (int kk = 0; kk < n; kk = kk + 1) {
        for (int i = 0; i < n; i = i + 1) {
          for (int j = 0; j < n; j = j + 1) {
            float alt = path[i * n + kk] + path[kk * n + j];
            path[i * n + j] = path[i * n + j] < alt ? path[i * n + j] : alt;
          }
        }
      }
    |};
    mk "lu" ~note:"in-place triangular factorization"
      ~params:"float* restrict am, int n"
      ~args:[ vint m1; vint n ]
      {|
      for (int kk = 0; kk < n; kk = kk + 1) {
        for (int j = kk + 1; j < n; j = j + 1) {
          am[kk * n + j] = am[kk * n + j] / (am[kk * n + kk] + 5.0);
        }
        for (int i = kk + 1; i < n; i = i + 1) {
          for (int j = kk + 1; j < n; j = j + 1) {
            am[i * n + j] = am[i * n + j] - am[i * n + kk] * am[kk * n + j];
          }
        }
      }
    |};
    mk "ludcmp" ~note:"LU with forward/backward substitution"
      ~params:
        "float* restrict am, float* restrict bv, float* restrict xv, float* restrict yv, int n"
      ~args:[ vint m1; vint v1; vint v2; vint v3; vint n ]
      {|
      for (int kk = 0; kk < n; kk = kk + 1) {
        for (int j = kk + 1; j < n; j = j + 1) {
          am[kk * n + j] = am[kk * n + j] / (am[kk * n + kk] + 5.0);
        }
        for (int i = kk + 1; i < n; i = i + 1) {
          for (int j = kk + 1; j < n; j = j + 1) {
            am[i * n + j] = am[i * n + j] - am[i * n + kk] * am[kk * n + j];
          }
        }
      }
      for (int i = 0; i < n; i = i + 1) {
        float t = bv[i];
        for (int j = 0; j < i; j = j + 1) { t = t - am[i * n + j] * yv[j]; }
        yv[i] = t;
      }
      for (int i = n - 1; i >= 0; i = i - 1) {
        float t = yv[i];
        for (int j = i + 1; j < n; j = j + 1) { t = t - am[i * n + j] * xv[j]; }
        xv[i] = t / (am[i * n + i] + 5.0);
      }
    |};
    mk "correlation" ~note:"in-place normalization + triangular"
      ~params:
        "float* restrict data, float* restrict corr, float* restrict mean, float* restrict stddev, int n"
      ~args:[ vint m1; vint m2; vint v1; vint v2; vint n ]
      {|
      float fn = (float) n;
      for (int j = 0; j < n; j = j + 1) {
        float t = 0.0;
        for (int i = 0; i < n; i = i + 1) { t = t + data[i * n + j]; }
        mean[j] = t / fn;
      }
      for (int j = 0; j < n; j = j + 1) {
        float t = 0.0;
        for (int i = 0; i < n; i = i + 1) {
          float dv = data[i * n + j] - mean[j];
          t = t + dv * dv;
        }
        stddev[j] = sqrt(t / fn) + 0.1;
      }
      for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
          data[i * n + j] = (data[i * n + j] - mean[j]) / (sqrt(fn) * stddev[j]);
        }
      }
      for (int i = 0; i < n; i = i + 1) {
        corr[i * n + i] = 1.0;
        for (int j = i + 1; j < n; j = j + 1) {
          float t = 0.0;
          for (int kk = 0; kk < n; kk = kk + 1) {
            t = t + data[kk * n + i] * data[kk * n + j];
          }
          corr[i * n + j] = t;
          corr[j * n + i] = t;
        }
      }
    |};
    mk "covariance" ~note:"in-place centering + triangular"
      ~params:
        "float* restrict data, float* restrict cov, float* restrict mean, int n"
      ~args:[ vint m1; vint m2; vint v1; vint n ]
      {|
      float fn = (float) n;
      for (int j = 0; j < n; j = j + 1) {
        float t = 0.0;
        for (int i = 0; i < n; i = i + 1) { t = t + data[i * n + j]; }
        mean[j] = t / fn;
      }
      for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
          data[i * n + j] = data[i * n + j] - mean[j];
        }
      }
      for (int i = 0; i < n; i = i + 1) {
        for (int j = i; j < n; j = j + 1) {
          float t = 0.0;
          for (int kk = 0; kk < n; kk = kk + 1) {
            t = t + data[kk * n + i] * data[kk * n + j];
          }
          cov[i * n + j] = t / (fn - 1.0);
          cov[j * n + i] = t / (fn - 1.0);
        }
      }
    |};
  ]
