(* Experiment harness: compiles benchmark kernels, applies optimization
   pipelines, runs the interpreters, and reports cost-model speedups and
   dynamic counters — the machinery behind the paper-shaped tables
   (Fig. 16, Fig. 19, Fig. 22). *)

open Fgv_pssa
module P = Fgv_passes

type kernel = {
  k_name : string;
  k_source : string; (* mini-C *)
  k_args : Value.t list; (* heap addresses and scalars *)
  k_heap : int; (* heap size in cells *)
  k_init : int -> float; (* initial value of each cell *)
  k_note : string; (* behavioural class, for the report *)
}

let mk ?(note = "") ~name ~source ~args ~heap ?(init = fun i ->
    Float.of_int ((i * 17 mod 31) - 11) *. 0.125) () =
  { k_name = name; k_source = source; k_args = args; k_heap = heap;
    k_init = init; k_note = note }

(* ------------------------------------------------------------- configs *)

type config = {
  c_name : string;
  c_restrict : bool; (* honour restrict qualifiers in the source *)
  c_apply : Ir.func -> P.Pipelines.pass_stats;
}

let cfg ?(restrict = true) name apply =
  { c_name = name; c_restrict = restrict; c_apply = apply }

let base_novec ?(restrict = true) () =
  cfg ~restrict "O3-novec" (fun f -> P.Pipelines.o3_novec f)

let llvm_o3 ?(restrict = true) () = cfg ~restrict "O3" (fun f -> P.Pipelines.o3 f)

let sv ?(restrict = true) () = cfg ~restrict "SV" (fun f -> P.Pipelines.sv f)

let sv_versioning ?(restrict = true) () =
  cfg ~restrict "SV+V" (fun f -> P.Pipelines.sv_versioning f)

(* --------------------------------------------------------------- runs *)

type run_result = {
  r_cost : float; (* architectural cost-model value *)
  r_counters : Interp.counters;
  r_branches : int; (* dynamic conditional branches (CFG interp) *)
  r_code_size : int; (* static CFG instruction count *)
  r_stats : P.Pipelines.pass_stats;
  r_outcome : Interp.outcome;
}

exception Kernel_error of string * exn

let compile_for (cfgn : config) (k : kernel) : Ir.func =
  if cfgn.c_restrict then Fgv_frontend.Lower_ast.compile k.k_source
  else Fgv_frontend.Lower_ast.compile_no_restrict k.k_source

let fresh_mem k = Array.init k.k_heap (fun i -> Value.VFloat (k.k_init i))

(* Apply a pipeline to a kernel and run it, collecting everything. *)
let run_config ?(with_cfg = true) (cfgn : config) (k : kernel) : run_result =
  try
    let f = compile_for cfgn k in
    let stats = cfgn.c_apply f in
    (match Verifier.verify_or_message f with
    | None -> ()
    | Some m -> failwith ("ill-formed after " ^ cfgn.c_name ^ ": " ^ m));
    let outcome = Interp.run f ~args:k.k_args ~mem:(fresh_mem k) in
    let branches, code_size =
      if with_cfg then begin
        let prog = Fgv_cfg.Lower.lower f in
        let c = Fgv_cfg.Cinterp.run prog ~args:k.k_args ~mem:(fresh_mem k) in
        (c.Fgv_cfg.Cinterp.counters.branches, Fgv_cfg.Cir.static_size prog)
      end
      else (0, 0)
    in
    {
      r_cost = Interp.cost outcome.counters;
      r_counters = outcome.counters;
      r_branches = branches;
      r_code_size = code_size;
      r_stats = stats;
      r_outcome = outcome;
    }
  with e -> raise (Kernel_error (k.k_name ^ "/" ^ cfgn.c_name, e))

(* Check that every configuration computes the same result as the
   unoptimized program (the harness refuses to report wrong-code
   "speedups"). *)
let check_equivalence (k : kernel) (cfgs : config list) : unit =
  let reference = Fgv_frontend.Lower_ast.compile_no_restrict k.k_source in
  let ref_out = Interp.run reference ~args:k.k_args ~mem:(fresh_mem k) in
  List.iter
    (fun c ->
      let f = compile_for c k in
      ignore (c.c_apply f);
      let out = Interp.run f ~args:k.k_args ~mem:(fresh_mem k) in
      if not (Interp.equivalent ref_out out) then
        failwith
          (Printf.sprintf "%s/%s computes a different result!" k.k_name c.c_name))
    cfgs

(* Speedups of each config over the first config (the baseline). *)
let speedups_over_baseline (k : kernel) (baseline : config) (cfgs : config list)
    : (string * float) list =
  let base = run_config ~with_cfg:false baseline k in
  List.map
    (fun c ->
      let r = run_config ~with_cfg:false c k in
      (c.c_name, base.r_cost /. r.r_cost))
    cfgs
