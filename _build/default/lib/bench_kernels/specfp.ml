(* SPEC 2017 FP surrogate kernels for the Fig. 22 experiment (versioned
   redundant load elimination).

   SPEC sources are proprietary, so each benchmark is replaced by a
   synthetic kernel engineered to exhibit the redundant-load profile the
   paper reports for it (DESIGN.md documents the substitution):

   - lbm_r:     streaming stencil that reloads the same source cells many
                times across possibly-aliasing stores (the paper measures
                26% of loads eliminated, 6.4% speedup);
   - blender_r: reloads whose elimination unlocks downstream GVN
                (19% more GVN deletions in the paper);
   - namd_r:    loop-invariant loads blocked by in-loop stores, which
                RLE + LICM can hoist (50% more LICM hoists);
   - parest_r / povray_r: few redundant loads guarded by wide check sets
                (slight slowdowns in the paper: -0.5% / -1.7%);
   - imagick_r: loads already provably independent (nothing to do);
   - nab_r:     eliminations that roughly pay for their checks (0.0%). *)

open Fgv_pssa

let len = 64
let a0 = 0
let a1 = len
let a2 = 2 * len
let a3 = 3 * len
let a4 = 4 * len
let heap = 5 * len

let vints xs = List.map (fun x -> Value.VInt x) xs

let mk ?(note = "") name ~params ~args body =
  Workload.mk ~name
    ~source:(Printf.sprintf "kernel %s(%s) {\n%s\n}" name params body)
    ~args ~heap ~note ()

let kernels : Workload.kernel list =
  [
    mk "lbm_r" ~note:"streaming stencil, dense reloads"
      ~params:"float* src, float* dst, int n"
      ~args:(vints [ a0; a1; len ])
      {|
      for (int i = 1; i < n - 1; i = i + 1) {
        float r1 = src[i];
        dst[i] = r1 * 0.5;
        float r2 = src[i];
        dst[i] = dst[i] + r2 * 0.25;
        float r3 = src[i];
        dst[i] = dst[i] + r3 * 0.125;
        float r4 = src[i];
        dst[i] = dst[i] + r4 * 0.0625;
        float r5 = src[i];
        dst[i] = dst[i] + r5 * 0.03125;
        float r6 = src[i];
        dst[i] = dst[i] + r6 * 0.015625;
      }
    |};
    mk "blender_r" ~note:"reloads feeding common subexpressions"
      ~params:"float* px, float* out, int n"
      ~args:(vints [ a0; a1; len ])
      {|
      for (int i = 0; i < n - 1; i = i + 1) {
        float c1 = px[i] * 0.7 + 0.1;
        out[i] = c1 * c1;
        float c2 = px[i] * 0.7 + 0.1;
        out[i] = out[i] + c2 * 2.0;
        float c3 = px[i] * 0.7 + 0.1;
        out[i] = out[i] + c3 * 3.0;
      }
    |};
    mk "namd_r" ~note:"invariant loads blocked by in-loop stores"
      ~params:"float* f, float* pos, float* acc, int n"
      ~args:(vints [ a0; a1; a2; len ])
      {|
      for (int i = 0; i < n; i = i + 1) {
        float q = pos[0];
        acc[i] = acc[i] + q * f[i];
        float q2 = pos[0];
        acc[i] = acc[i] + q2 * q2;
      }
    |};
    mk "parest_r" ~note:"few reloads, wide check set"
      ~params:"float* m, float* r1v, float* r2v, float* r3v, int n"
      ~args:(vints [ a0; a1; a2; a3; len ])
      {|
      for (int i = 0; i < n; i = i + 1) {
        float x = m[i];
        r1v[i] = x * 2.0;
        r2v[i] = x * 3.0;
        r3v[i] = x * 4.0;
        float y = m[i];
        r1v[i] = r1v[i] + y;
      }
    |};
    mk "povray_r" ~note:"reload across many stores"
      ~params:"float* scene, float* o1, float* o2, float* o3, float* o4, int n"
      ~args:(vints [ a0; a1; a2; a3; a4; len ])
      {|
      for (int i = 0; i < n; i = i + 1) {
        float t = scene[i];
        o1[i] = t + 1.0;
        o2[i] = t + 2.0;
        o3[i] = t + 3.0;
        o4[i] = t + 4.0;
        float u = scene[i];
        o1[i] = o1[i] * u;
      }
    |};
    mk "imagick_r" ~note:"independent loads (nothing to eliminate)"
      ~params:"float* img, float* out, int n"
      ~args:(vints [ a0; a1; len ])
      {|
      for (int i = 1; i < n - 1; i = i + 1) {
        float p = img[i - 1] + img[i] + img[i + 1];
        out[i] = p * 0.3333;
      }
    |};
    mk "nab_r" ~note:"eliminations that pay for their checks"
      ~params:"float* xs, float* fs, int n"
      ~args:(vints [ a0; a1; len ])
      {|
      for (int i = 0; i < n - 1; i = i + 1) {
        float x = xs[i];
        fs[i] = x * 1.5;
        float y = xs[i];
        fs[i + 1] = fs[i + 1] + y;
      }
    |};
  ]
