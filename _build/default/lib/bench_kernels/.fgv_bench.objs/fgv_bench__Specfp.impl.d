lib/bench_kernels/specfp.ml: Fgv_pssa List Printf Value Workload
