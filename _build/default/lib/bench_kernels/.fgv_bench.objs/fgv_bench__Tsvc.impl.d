lib/bench_kernels/tsvc.ml: Fgv_pssa List Printf String Value Workload
