lib/bench_kernels/experiments.ml: Array Depgraph Fgv_analysis Fgv_frontend Fgv_passes Fgv_pssa Fgv_support Fgv_versioning Float Interp Ir List Polybench Printf Scev Specfp Tsvc Value Workload
