lib/bench_kernels/workload.ml: Array Fgv_cfg Fgv_frontend Fgv_passes Fgv_pssa Float Interp Ir List Printf Value Verifier
