lib/bench_kernels/polybench.ml: Fgv_pssa Printf String Value Workload
