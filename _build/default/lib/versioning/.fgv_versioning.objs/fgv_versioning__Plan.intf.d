lib/versioning/plan.mli: Depcond Depgraph Fgv_analysis Fgv_pssa Ir
