lib/versioning/condopt.mli: Depcond Fgv_analysis Fgv_pssa Ir Plan Scev
