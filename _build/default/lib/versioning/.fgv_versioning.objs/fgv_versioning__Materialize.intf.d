lib/versioning/materialize.mli: Fgv_pssa Ir Plan
