lib/versioning/api.mli: Condopt Depgraph Fgv_analysis Fgv_pssa Ir Plan Scev
