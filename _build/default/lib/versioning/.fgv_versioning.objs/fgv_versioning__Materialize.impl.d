lib/versioning/materialize.ml: Array Condopt Depcond Depgraph Fgv_analysis Fgv_pssa Hashtbl Ir Linexp List Option Plan Pred Printf Scev
