lib/versioning/api.ml: Condopt Depcond Depgraph Fgv_analysis Fgv_pssa Hashtbl Ir List Materialize Option Plan Scev
