lib/versioning/plan.ml: Array Buffer Cut Depcond Depgraph Fgv_analysis Fgv_pssa Ir List Printf String
