lib/versioning/condopt.ml: Alias Depcond Fgv_analysis Fgv_pssa Ir Linexp List Plan Pred Scev
