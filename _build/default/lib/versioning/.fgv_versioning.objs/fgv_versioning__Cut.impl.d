lib/versioning/cut.ml: Array Depgraph Fgv_analysis Fgv_graph List
