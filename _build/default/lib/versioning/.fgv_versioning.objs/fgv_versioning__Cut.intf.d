lib/versioning/cut.mli: Depgraph Fgv_analysis
