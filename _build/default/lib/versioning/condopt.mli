(** Optimizations on versioning conditions before materialization
    (paper SIV-A): redundant condition elimination, condition
    coalescing, and condition promotion. *)

open Fgv_pssa
open Fgv_analysis

val range_offset : Scev.range -> Scev.range -> int option
(** Constant offset between two ranges; defined only when both bounds
    shift by the same amount. *)

val atoms_equivalent : Depcond.atom -> Depcond.atom -> bool
(** Truth-preserving equivalence: intersection checks whose two sides are
    shifted by one common constant (possibly with operands swapped),
    or structurally equal predicates. *)

val eliminate_redundant : Depcond.atom list -> Depcond.atom list
(** Keep one representative per equivalence class. *)

val coalesce : Depcond.atom list -> Depcond.atom list
(** Merge intersection checks into cheaper over-approximating hulls when
    all bounds differ by constants.  May fail more often than the
    originals — sound, applied after redundant-condition elimination. *)

val promote_best_effort :
  Scev.t -> enclosing:Ir.loop_id list -> Depcond.atom list -> Depcond.atom list
(** For each intersection check, widen it out of the deepest prefix of
    [enclosing] (innermost loop first) whose induction variables are
    affine with known extents, so LICM can hoist the check.  Per the
    paper, imprecise promotion is only applied across different memory
    objects; checks that cannot be promoted are kept unchanged. *)

type config = {
  redundant_elim : bool;
  coalescing : bool;
  promotion : bool;
}

val default_config : config
(** RCE and coalescing on, promotion off. *)

val none_config : config
(** Everything off (the A2 ablation). *)

val optimize_plan :
  ?config:config -> Scev.t -> enclosing:Ir.loop_id list -> Plan.t -> Plan.t
(** Apply the enabled optimizations to a whole plan tree. *)
