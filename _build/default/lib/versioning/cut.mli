(** Dependence-graph cuts by reduction to min-cut (Fig. 8 of the paper).

    Finds a set of *conditional* dependence edges whose removal makes
    every node of T unreachable from S along dependence edges, using
    node-splitting and Dinic max-flow with capacity 1 (or a profile
    weight) on conditional edges and n+1 elsewhere. *)

open Fgv_analysis

type result = {
  cut_edges : Depgraph.edge list;
      (** the cut-set: conditional edges to sever; their conditions become
          the plan's versioning conditions *)
  source_nodes : int list;
      (** dependence-graph node indices on the source side of the cut
          that can still reach T: they must be versioned together with
          the input nodes (Fig. 13 l.31) *)
}

val already_independent : result
(** The empty cut returned when no node of T is reachable from S. *)

val find :
  ?weight:(Depgraph.edge -> int) ->
  Depgraph.t ->
  excluded:(int -> bool) ->
  s:int list ->
  t:int list ->
  result option
(** [find g ~excluded ~s ~t] computes a minimum cut separating [s] from
    [t] over the dependence edges not in [excluded].  [weight] biases the
    cut using profile information (the likelihood of each conditional
    dependence occurring; default 1, minimizing the number of checks).
    [None] when separation would require severing an unconditional
    edge — versioning is infeasible (SIII-A). *)
