(** Materialization of versioning plans into IR (Fig. 14 of the paper).

    Lowers plan trees deepest-secondaries-first: emits one run-time check
    per unique condition set (computed over a private clone of the
    check's operand chain — original code is never reordered), clones
    every versioned node, strengthens the original's predicate with the
    check and the clone's with its negation, joins values with
    versioning phis, redirects uses per Fig. 14, prunes phi arms whose
    gates contradict the asserted conditions, and records
    scoped-independence facts (the paper's scoped-noalias analogue,
    SIV-B). *)

open Fgv_pssa

exception Error of string
(** Internal materialization failure (also used to reject a plan that
    turns out not to be materializable in the current program state). *)

val run :
  Ir.func -> Ir.region -> Plan.t list -> bool * (Ir.value_id -> Ir.value_id)
(** Materialize the plans, one plan tree at a time (later trees see
    earlier trees' versioning phis in their conditions).

    Returns [(ok, subst)].  [ok = false] means at least one tree had to
    be skipped: everything that was materialized remains
    semantics-preserving, but the skipped plans' independence guarantees
    were NOT established, so the caller must not perform the
    transformation that requested them.

    [subst] maps each versioned value to its outermost versioning phi —
    the value valid on every path.  A client that redirects uses to a
    versioned value (e.g. RLE collapsing a load group onto its leader)
    MUST redirect to [subst leader], not to the leader itself, whose
    predicate has been narrowed by the checks. *)
