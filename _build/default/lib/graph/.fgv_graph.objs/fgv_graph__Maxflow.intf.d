lib/graph/maxflow.mli:
