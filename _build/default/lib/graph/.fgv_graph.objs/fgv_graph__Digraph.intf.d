lib/graph/digraph.mli:
