(* A small directed-graph module over dense integer node ids.
   Used for dependence graphs and for reachability queries. *)

type t = {
  n : int;
  succ : int list array;  (* successors, most recently added first *)
  pred : int list array;
}

let create n = { n; succ = Array.make n []; pred = Array.make n [] }

let size t = t.n

let add_edge t ~src ~dst =
  t.succ.(src) <- dst :: t.succ.(src);
  t.pred.(dst) <- src :: t.pred.(dst)

let successors t v = t.succ.(v)
let predecessors t v = t.pred.(v)

(* All nodes reachable from [roots] following successor edges, including
   the roots themselves. *)
let reachable t roots =
  let seen = Array.make t.n false in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter go t.succ.(v)
    end
  in
  List.iter go roots;
  seen

(* Reverse reachability: all nodes that can reach one of [roots]. *)
let co_reachable t roots =
  let seen = Array.make t.n false in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter go t.pred.(v)
    end
  in
  List.iter go roots;
  seen

exception Cycle of int

(* Topological order (dependencies after dependents is NOT assumed;
   successors are emitted after their node). Raises [Cycle v] when a cycle
   through [v] exists. *)
let topological_sort t =
  let state = Array.make t.n 0 in
  (* 0 = unvisited, 1 = on stack, 2 = done *)
  let out = ref [] in
  let rec visit v =
    match state.(v) with
    | 1 -> raise (Cycle v)
    | 2 -> ()
    | _ ->
      state.(v) <- 1;
      List.iter visit t.succ.(v);
      state.(v) <- 2;
      out := v :: !out
  in
  for v = 0 to t.n - 1 do
    visit v
  done;
  !out
