(** Directed graph over node ids [0, n). Parallel edges are permitted. *)

type t

val create : int -> t
val size : t -> int
val add_edge : t -> src:int -> dst:int -> unit
val successors : t -> int -> int list
val predecessors : t -> int -> int list

val reachable : t -> int list -> bool array
(** Nodes reachable from the roots (roots included). *)

val co_reachable : t -> int list -> bool array
(** Nodes that can reach one of the roots (roots included). *)

exception Cycle of int

val topological_sort : t -> int list
(** Order where every node precedes its successors. Raises {!Cycle}. *)
