(* The labeled dependence graph over the items of one region (Fig. 7).

   Nodes are the region's items in program order (a nested loop is one
   node).  An edge i -> j means "i depends on j" (j precedes i) and
   carries its dependence condition; conditional edges are exactly the
   ones a versioning cut may sever. *)

open Fgv_pssa

type edge = {
  e_id : int; (* dense id, used as the max-flow tag *)
  e_src : int; (* node index: the dependent (later) node *)
  e_dst : int; (* node index: the dependee (earlier) node *)
  e_cond : Depcond.atom list option; (* None = unconditional *)
}

type t = {
  g_ctx : Depcond.ctx;
  nodes : Ir.node array; (* in program order *)
  index : (Ir.node, int) Hashtbl.t;
  mutable edges : edge array;
}

let node_index t n =
  match Hashtbl.find_opt t.index n with
  | Some i -> i
  | None -> invalid_arg "Depgraph.node_index: node not in region"

let build (f : Ir.func) (scev : Scev.t) (region : Ir.region) : t =
  let ctx = Depcond.make_ctx f scev region in
  let nodes =
    Array.of_list (List.map Ir.node_of_item (Ir.region_items f region))
  in
  let index = Hashtbl.create (Array.length nodes) in
  Array.iteri (fun k n -> Hashtbl.replace index n k) nodes;
  let edges = ref [] in
  let next_id = ref 0 in
  let n = Array.length nodes in
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      match Depcond.compute ctx nodes.(i) nodes.(j) with
      | Depcond.Never -> ()
      | Depcond.Always ->
        edges := { e_id = !next_id; e_src = i; e_dst = j; e_cond = None } :: !edges;
        incr next_id
      | Depcond.When atoms ->
        edges :=
          { e_id = !next_id; e_src = i; e_dst = j; e_cond = Some atoms } :: !edges;
        incr next_id
    done
  done;
  { g_ctx = ctx; nodes; index; edges = Array.of_list (List.rev !edges) }

let edge_conditional e = e.e_cond <> None

(* Successor lists along dependence direction (src -> dst), optionally
   excluding a set of edges (by id). *)
let dependence_succ t ~(excluded : int -> bool) =
  let succ = Array.make (Array.length t.nodes) [] in
  Array.iter
    (fun e -> if not (excluded e.e_id) then succ.(e.e_src) <- e :: succ.(e.e_src))
    t.edges;
  succ

(* Is any node of [targets] reachable from [sources] along dependence
   edges, ignoring edges in [excluded]?  Used by tests and by clients to
   ask "are these already independent". *)
let depends_on t ~(excluded : int -> bool) (sources : int list)
    (targets : int list) : bool =
  let succ = dependence_succ t ~excluded in
  let n = Array.length t.nodes in
  let target = Array.make n false in
  List.iter (fun i -> target.(i) <- true) targets;
  let seen = Array.make n false in
  let found = ref false in
  (* a source only "reaches" a target through at least one edge, so the
     DFS starts from the sources' dependence successors (this ignores the
     trivial s -> s reachability the paper's footnote mentions) *)
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      if target.(v) then found := true;
      List.iter (fun e -> go e.e_dst) succ.(v)
    end
  in
  List.iter (fun s -> List.iter (fun e -> go e.e_dst) succ.(s)) sources;
  !found

let to_string t =
  let f = t.g_ctx.Depcond.cf in
  let node_str n =
    match n with
    | Ir.NI v -> Printer.string_of_inst f (Ir.inst f v)
    | Ir.NL l -> Printf.sprintf "loop L%d" l
  in
  let buf = Buffer.create 512 in
  Array.iteri
    (fun k n -> Buffer.add_string buf (Printf.sprintf "node %d: %s\n" k (node_str n)))
    t.nodes;
  Array.iter
    (fun e ->
      let label =
        match e.e_cond with
        | None -> "always"
        | Some atoms ->
          String.concat " \\/ "
            (List.map (Depcond.atom_to_string t.g_ctx.Depcond.cscev) atoms)
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d -> %d [%s]\n" e.e_src e.e_dst label))
    t.edges;
  Buffer.contents buf
