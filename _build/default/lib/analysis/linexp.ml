(* Linear integer expressions over SSA values:  Σ coeff_i * v_i + konst.

   Used to represent memory addresses and range bounds symbolically.  Two
   addresses whose difference reduces to a constant can be disambiguated
   statically; everything else becomes a run-time intersection check. *)

open Fgv_pssa

type t = { terms : (Ir.value_id * int) list; konst : int }
(* terms sorted by value id, no zero coefficients *)

let norm terms =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v, k) ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt tbl v) in
      Hashtbl.replace tbl v (cur + k))
    terms;
  Hashtbl.fold (fun v k acc -> if k = 0 then acc else (v, k) :: acc) tbl []
  |> List.sort compare

let make terms konst = { terms = norm terms; konst }
let const k = { terms = []; konst = k }
let of_value v = { terms = [ (v, 1) ]; konst = 0 }
let is_const e = e.terms = []

let add a b = make (a.terms @ b.terms) (a.konst + b.konst)

let scale k e =
  if k = 0 then const 0
  else { terms = List.map (fun (v, c) -> (v, c * k)) e.terms; konst = e.konst * k }

let sub a b = add a (scale (-1) b)
let add_const k e = { e with konst = e.konst + k }
let equal a b = a.terms = b.terms && a.konst = b.konst

(* [diff a b] is [Some k] when a - b is the constant k. *)
let diff a b =
  let d = sub a b in
  if is_const d then Some d.konst else None

let terms e = e.terms
let constant e = e.konst

(* Substitute a value with a linear expression. *)
let subst v e repl =
  match List.assoc_opt v e.terms with
  | None -> e
  | Some k ->
    let rest = List.filter (fun (w, _) -> w <> v) e.terms in
    add { terms = rest; konst = e.konst } (scale k repl)

let mentions e v = List.mem_assoc v e.terms

let values e = List.map fst e.terms

let to_string name e =
  let parts =
    List.map
      (fun (v, k) ->
        if k = 1 then name v
        else if k = -1 then "-" ^ name v
        else Printf.sprintf "%d*%s" k (name v))
      e.terms
  in
  let parts = if e.konst <> 0 || parts = [] then parts @ [ string_of_int e.konst ] else parts in
  String.concat " + " parts
