(* Dependence conditions (Fig. 5 and Fig. 6 of the paper).

   Given two dependence-graph nodes i and j (instructions or loops,
   ordered i after j), [compute] returns the condition under which i
   *directly* depends on j:

   - [Never]: no dependence;
   - [Always]: unconditional (SSA uses, proven-overlapping accesses,
     opaque calls);
   - [When atoms]: the dependence exists only if one of the atoms holds
     at run time: a control predicate (j actually executes) or a memory
     intersection. *)

open Fgv_pssa

type atom =
  | Apred of Pred.t
  | Aintersect of Scev.range * Scev.range

type cond = Never | Always | When of atom list

(* Values a condition's run-time check would read (Fig. 13 line 14:
   [operands(dep_cond)]). *)
let atom_operands = function
  | Apred p -> Pred.literals p
  | Aintersect (r1, r2) ->
    List.sort_uniq compare (Scev.range_values r1 @ Scev.range_values r2)

let cond_operands = function
  | Never | Always -> []
  | When atoms -> List.sort_uniq compare (List.concat_map atom_operands atoms)

let atom_to_string scev = function
  | Apred p -> Pred.to_string (Ir.value_name scev.Scev.func) p
  | Aintersect (r1, r2) ->
    Printf.sprintf "intersects(%s, %s)" (Scev.range_to_string scev r1)
      (Scev.range_to_string scev r2)

(* Join two condition results as a disjunction. *)
let join a b =
  match a, b with
  | Always, _ | _, Always -> Always
  | Never, c | c, Never -> c
  | When x, When y -> When (x @ y)

type ctx = {
  cf : Ir.func;
  cscev : Scev.t;
  cregion : Ir.region;
  ceff : Ir.value_id -> Pred.t; (* effective predicates for scope queries *)
  (* loops nested anywhere under the region: member accesses of sibling
     loop nodes must have their ranges promoted out of these *)
  under : (Ir.loop_id, unit) Hashtbl.t;
  (* region-level item that defines each value (values defined inside a
     sibling loop map to that loop node) *)
  def_item : (Ir.value_id, Ir.node) Hashtbl.t;
}

let make_ctx f scev region =
  let under = Hashtbl.create 8 in
  let def_item = Hashtbl.create 64 in
  let rec register_under lid =
    Hashtbl.replace under lid ();
    List.iter
      (function Ir.L l -> register_under l | Ir.I _ -> ())
      (Ir.loop f lid).body
  in
  List.iter
    (fun item ->
      let node = Ir.node_of_item item in
      List.iter
        (fun v -> Hashtbl.replace def_item v node)
        (Ir.defined_values f item);
      match item with
      | Ir.L lid -> register_under lid
      | Ir.I _ -> ())
    (Ir.region_items f region);
  {
    cf = f;
    cscev = scev;
    cregion = region;
    ceff = Ir.effective_preds f;
    under;
    def_item;
  }

let def_item ctx v = Hashtbl.find_opt ctx.def_item v

(* The memory range of an access, promoted out of every loop nested under
   the region so that the bounds are computable at region level.  [None]
   means "all of memory" (opaque calls or failed promotion). *)
let region_range ctx v : Scev.range option =
  match Scev.range_of_access ctx.cscev v with
  | None -> None
  | Some r -> Scev.promote_range ctx.cscev ~out_of:(Hashtbl.mem ctx.under) r

(* Memory-vs-memory condition for two accesses (at least one writes). *)
let memory_pair ctx i_v j_v : cond =
  if Ir.in_indep_scope ~eff:ctx.ceff ctx.cf i_v j_v then Never
  else
    match region_range ctx i_v, region_range ctx j_v with
    | None, _ | _, None -> Always (* arbitrary memory on one side *)
    | Some r1, Some r2 -> (
      match Alias.relate ctx.cf r1 r2 with
      | Alias.Disjoint -> Never
      | Alias.Overlap -> Always
      | Alias.Unknown -> When [ Aintersect (r1, r2) ])

(* All memory instructions of a node (Fig. 6's [mem_instructions]). *)
let mem_insts ctx node =
  match node with
  | Ir.NI v -> if Ir.is_memory_inst (Ir.inst ctx.cf v) then [ v ] else []
  | Ir.NL lid -> Ir.memory_insts ctx.cf (Ir.L lid)


(* Memory condition between two nodes: union over write-involving pairs
   of member accesses. *)
let memory_cond ctx i j =
  let is1 = mem_insts ctx i and is2 = mem_insts ctx j in
  List.fold_left
    (fun acc i1 ->
      List.fold_left
        (fun acc j1 ->
          let w1 = Ir.may_write_inst (Ir.inst ctx.cf i1) in
          let w2 = Ir.may_write_inst (Ir.inst ctx.cf j1) in
          if w1 || w2 then join acc (memory_pair ctx i1 j1) else acc)
        acc is2)
    Never is1

(* Values a node reads that it does not define (register inputs). *)
let free_values ctx node =
  match node with
  | Ir.NI v -> Ir.all_operands (Ir.inst ctx.cf v)
  | Ir.NL lid ->
    let f = ctx.cf in
    let defined = Hashtbl.create 32 in
    List.iter
      (fun v -> Hashtbl.replace defined v ())
      (Ir.defined_values f (Ir.L lid));
    let used = ref [] in
    let rec collect lid =
      let lp = Ir.loop f lid in
      List.iter
        (fun m -> used := Ir.all_operands (Ir.inst f m) @ !used)
        lp.mus;
      used := Pred.literals lp.lpred @ Pred.literals lp.cont @ !used;
      List.iter
        (function
          | Ir.I v -> used := Ir.all_operands (Ir.inst f v) @ !used
          | Ir.L l -> collect l)
        lp.body
    in
    collect lid;
    List.sort_uniq compare
      (List.filter (fun v -> not (Hashtbl.mem defined v)) !used)

(* Does node i read a value defined by node j? *)
let reads_from ctx i j =
  List.exists
    (fun v ->
      match def_item ctx v with
      | Some d -> d = j
      | None -> false)
    (free_values ctx i)

(* Fig. 6: the direct dependence condition c(i, j).  [i] comes after [j]
   in program order. *)
let compute ctx (i : Ir.node) (j : Ir.node) : cond =
  match i, j with
  | Ir.NI iv, Ir.NI jv -> (
    let ii = Ir.inst ctx.cf iv in
    let ji = Ir.inst ctx.cf jv in
    match ii.kind with
    | Phi ops when List.exists (fun (_, v) -> v = jv) ops
                   && not (List.mem jv (Pred.literals ii.ipred))
                   && not
                        (List.exists
                           (fun (p, _) -> List.mem jv (Pred.literals p))
                           ops) ->
      (* a phi depends on an operand only under that operand's gate *)
      let p =
        Pred.or_list
          (List.filter_map (fun (p, v) -> if v = jv then Some p else None) ops)
      in
      if Pred.equal p Pred.tru then Always
      else if Pred.equal p Pred.fls then Never
      else When [ Apred p ]
    | Select { cond; if_true; if_false }
      when jv <> cond && (jv = if_true || jv = if_false)
           && not (List.mem jv (Pred.literals ii.ipred)) ->
      let arm_pred positive = Pred.and_ ii.ipred (Pred.lit ~positive cond) in
      let conds =
        (if jv = if_true then [ Apred (arm_pred true) ] else [])
        @ if jv = if_false then [ Apred (arm_pred false) ] else []
      in
      When conds
    | _ ->
      if List.mem jv (Ir.all_operands ii) then Always
      else if not (Ir.may_write_inst ii) && not (Ir.may_write_inst ji) then
        Never
      else if not (Ir.is_memory_inst ii) || not (Ir.is_memory_inst ji) then
        Never
      else if Pred.equal (Pred.and_ ii.ipred ji.ipred) Pred.fls then
        (* contradictory predicates: within one region execution the two
           accesses can never both run (e.g. the two arms of a versioning
           diamond), so no ordering constraint exists between them *)
        Never
      else if
        (* j executes under a strictly more specific predicate: the
           dependence requires j to actually execute *)
        Pred.implies ji.ipred ii.ipred && not (Pred.equal ji.ipred ii.ipred)
      then
        if Pred.equal ji.ipred Pred.fls then Never else When [ Apred ji.ipred ]
      else memory_pair ctx iv jv)
  | _ ->
    (* at least one loop node: register inputs are unconditional;
       memory dependencies are the union over member accesses *)
    let reg = if reads_from ctx i j then Always else Never in
    join reg (memory_cond ctx i j)
