(** Static disambiguation of address ranges: constant-difference
    reasoning on linear address expressions, plus [restrict]-qualified
    pointer parameters (promised to address distinct allocations). *)

open Fgv_pssa

type relation =
  | Disjoint  (** proven never to overlap *)
  | Overlap  (** proven to overlap (assuming both are nonempty) *)
  | Unknown  (** cannot tell statically: a run-time check candidate *)

val restrict_base : Ir.func -> Scev.range -> Ir.value_id option
(** The single restrict-qualified parameter the range is based on. *)

val range_mentions : Scev.range -> Ir.value_id -> bool

val relate : Ir.func -> Scev.range -> Scev.range -> relation
(** Relation between two half-open ranges [lo, hi). *)
