(* Static disambiguation of address ranges.

   Two levers, mirroring what a production compiler has:
   - constant-difference reasoning on linear address expressions (same
     base, different offsets);
   - [restrict]-qualified pointer parameters, which are promised to point
     into distinct allocations.

   Everything else is [Unknown], which the versioning framework turns
   into a run-time intersection check. *)

open Fgv_pssa

type relation = Disjoint | Overlap | Unknown

(* The single restrict-qualified parameter a range is based on, if any. *)
let restrict_base (f : Ir.func) (r : Scev.range) : Ir.value_id option =
  let arg_terms =
    List.filter
      (fun (v, _) ->
        match (Ir.inst f v).kind with
        | Arg n -> List.mem n f.restrict_args
        | _ -> false)
      (Linexp.terms r.lo)
  in
  match arg_terms with
  | [ (v, 1) ] -> Some v
  | _ -> None

let range_mentions (r : Scev.range) v =
  Linexp.mentions r.lo v || Linexp.mentions r.hi v

(* Relation between two half-open ranges [lo, hi). *)
let relate (f : Ir.func) (r1 : Scev.range) (r2 : Scev.range) : relation =
  if Linexp.equal r1.lo r2.lo && Linexp.equal r1.hi r2.hi then
    (* identical symbolic ranges (e.g. the whole-array window of an
       in-place loop compared with itself): definitely overlapping *)
    Overlap
  else
  let d12 = Linexp.diff r1.hi r2.lo in
  let d21 = Linexp.diff r2.hi r1.lo in
  match d12, d21 with
  | Some d, _ when d <= 0 -> Disjoint
  | _, Some d when d <= 0 -> Disjoint
  | Some _, Some _ -> Overlap
  | _ -> (
    match restrict_base f r1, restrict_base f r2 with
    | Some p, _ when not (range_mentions r2 p) -> Disjoint
    | _, Some q when not (range_mentions r1 q) -> Disjoint
    | _ -> Unknown)
