lib/analysis/alias.mli: Fgv_pssa Ir Scev
