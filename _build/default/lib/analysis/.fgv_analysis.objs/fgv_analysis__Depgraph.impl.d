lib/analysis/depgraph.ml: Array Buffer Depcond Fgv_pssa Hashtbl Ir List Printer Printf Scev String
