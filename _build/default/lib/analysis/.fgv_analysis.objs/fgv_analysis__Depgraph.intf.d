lib/analysis/depgraph.mli: Depcond Fgv_pssa Hashtbl Ir Scev
