lib/analysis/linexp.ml: Fgv_pssa Hashtbl Ir List Option Printf String
