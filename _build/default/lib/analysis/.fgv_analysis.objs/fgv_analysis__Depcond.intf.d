lib/analysis/depcond.mli: Fgv_pssa Hashtbl Ir Pred Scev
