lib/analysis/alias.ml: Fgv_pssa Ir Linexp List Scev
