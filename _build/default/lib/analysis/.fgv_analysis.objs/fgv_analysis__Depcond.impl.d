lib/analysis/depcond.ml: Alias Fgv_pssa Hashtbl Ir List Pred Printf Scev
