lib/analysis/scev.ml: Fgv_pssa Hashtbl Ir Linexp List Option Pred Printf
