(* Dead code elimination for PSSA.

   An instruction is dead when it has no side effects and no users; a
   loop is dead when nothing it defines is used outside it and its body
   has no side effects.  Runs to a fixpoint. *)

open Fgv_pssa

let has_side_effect f v =
  let i = Ir.inst f v in
  match i.kind with
  | Ir.Store _ -> true
  | Ir.Call { effect = Ir.Impure; _ } -> true
  | Ir.Call { effect = Ir.Readonly; _ } -> false
  | _ -> false

(* One sweep; returns the number of items removed. *)
let sweep (f : Ir.func) : int =
  let users = Ir.compute_users f in
  (* values read by loop guards / continue predicates count as uses *)
  let pred_uses = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ lp ->
      List.iter
        (fun v -> Hashtbl.replace pred_uses v ())
        (Pred.literals lp.Ir.lpred @ Pred.literals lp.Ir.cont))
    f.Ir.loop_arena;
  let used v = users v <> [] || Hashtbl.mem pred_uses v in
  let removed = ref 0 in
  let rec live_loop lid =
    let lp = Ir.loop f lid in
    let defs = Ir.defined_values f (Ir.L lid) in
    let escapes =
      (* defined values used by instructions outside the loop: etas *)
      List.exists
        (fun v ->
          List.exists
            (fun u -> not (List.mem u defs))
            (users v))
        defs
    in
    escapes
    || List.exists
         (fun item ->
           match item with
           | Ir.I v -> has_side_effect f v
           | Ir.L l -> live_loop l)
         lp.body
  in
  let rec clean items =
    List.filter_map
      (fun item ->
        match item with
        | Ir.I v ->
          if has_side_effect f v || used v then Some item
          else begin
            Hashtbl.remove f.Ir.arena v;
            incr removed;
            None
          end
        | Ir.L lid ->
          if live_loop lid then begin
            let lp = Ir.loop f lid in
            lp.body <- clean lp.body;
            Some item
          end
          else begin
            List.iter
              (fun v -> Hashtbl.remove f.Ir.arena v)
              (Ir.defined_values f item);
            Hashtbl.remove f.Ir.loop_arena lid;
            incr removed;
            None
          end)
      items
  in
  f.Ir.fbody <- clean f.Ir.fbody;
  !removed

let run (f : Ir.func) : int =
  let total = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let n = sweep f in
    total := !total + n;
    continue_ := n > 0
  done;
  !total
