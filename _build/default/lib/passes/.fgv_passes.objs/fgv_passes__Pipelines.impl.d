lib/passes/pipelines.ml: Constfold Dce Fgv_pssa Fgv_versioning Gvn Ifconv Ir Licm Loopvec Rle Slp Unroll
