lib/passes/rle.ml: Fgv_analysis Fgv_pssa Fgv_versioning Hashtbl Ir Linexp List Option Pred Scev
