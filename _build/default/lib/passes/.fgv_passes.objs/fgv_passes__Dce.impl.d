lib/passes/dce.ml: Fgv_pssa Hashtbl Ir List Pred
