lib/passes/licm.ml: Alias Fgv_analysis Fgv_pssa Ir List Pred Scev
