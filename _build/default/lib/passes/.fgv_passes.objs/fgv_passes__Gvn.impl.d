lib/passes/gvn.ml: Fgv_pssa Hashtbl Ir List Option Pred Printf
