lib/passes/slp.ml: Array Depcond Depgraph Fgv_analysis Fgv_pssa Fgv_versioning Hashtbl Ir Linexp List Option Pred Scev
