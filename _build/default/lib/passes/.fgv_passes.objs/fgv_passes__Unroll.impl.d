lib/passes/unroll.ml: Fgv_analysis Fgv_pssa Hashtbl Ir Linexp List Option Pred Scev
