lib/passes/loopvec.ml: Alias Depcond Fgv_analysis Fgv_pssa Fgv_versioning Hashtbl Ir List Scev Slp Unroll
