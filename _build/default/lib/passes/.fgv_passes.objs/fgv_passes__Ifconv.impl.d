lib/passes/ifconv.ml: Fgv_pssa Ir List Pred
