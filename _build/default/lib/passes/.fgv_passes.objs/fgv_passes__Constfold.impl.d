lib/passes/constfold.ml: Bool Fgv_pssa Float Hashtbl Int64 Ir List Option Pred
