(* Union-find with path compression and union by rank.
   Used by redundant-condition elimination to partition intersection checks
   into equivalence classes. *)

type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx <> ry then begin
    if t.rank.(rx) < t.rank.(ry) then t.parent.(rx) <- ry
    else if t.rank.(rx) > t.rank.(ry) then t.parent.(ry) <- rx
    else begin
      t.parent.(ry) <- rx;
      t.rank.(rx) <- t.rank.(rx) + 1
    end
  end

let same t x y = find t x = find t y

(* Groups of elements, each group listed in ascending order. *)
let groups t =
  let n = Array.length t.parent in
  let tbl = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let r = find t i in
    let cur = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (i :: cur)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) tbl []
