(* Plain-text table rendering for the experiment harness.
   Columns are sized to their widest cell; the first column is
   left-aligned, all others right-aligned. *)

type t = { header : string list; mutable rows : string list list }

let create header = { header; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let add_sep t = t.rows <- [ "--" ] :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: List.filter (fun r -> r <> [ "--" ]) rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  List.iter measure all;
  let buf = Buffer.create 1024 in
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    if i = 0 then cell ^ String.make (max 0 n) ' '
    else String.make (max 0 n) ' ' ^ cell
  in
  let emit_row row =
    let cells = List.mapi pad row in
    Buffer.add_string buf (String.concat "  " cells);
    Buffer.add_char buf '\n'
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  let rule () =
    Buffer.add_string buf (String.make (max 1 total_width) '-');
    Buffer.add_char buf '\n'
  in
  emit_row t.header;
  rule ();
  List.iter (fun row -> if row = [ "--" ] then rule () else emit_row row) rows;
  Buffer.contents buf

let print t = print_string (render t)
