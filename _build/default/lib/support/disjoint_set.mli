(** Union-find over integers [0, n). *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> unit

val same : t -> int -> int -> bool

val groups : t -> int list list
(** All equivalence classes; each class sorted ascending. *)
