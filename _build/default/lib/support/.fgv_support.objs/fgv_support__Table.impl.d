lib/support/table.ml: Array Buffer List String
