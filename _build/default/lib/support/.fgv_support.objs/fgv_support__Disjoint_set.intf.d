lib/support/disjoint_set.mli:
