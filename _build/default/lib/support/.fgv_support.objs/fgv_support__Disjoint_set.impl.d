lib/support/disjoint_set.ml: Array Hashtbl
