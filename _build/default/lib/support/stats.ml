(* Small numeric helpers used by the experiment harness. *)

let geomean xs =
  match xs with
  | [] -> invalid_arg "Stats.geomean: empty"
  | _ ->
    let n = List.length xs in
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (log_sum /. float_of_int n)

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percent_change ~from ~to_ =
  if from = 0.0 then 0.0 else (to_ -. from) /. from *. 100.0

let speedup ~base ~opt = if opt = 0.0 then infinity else base /. opt
