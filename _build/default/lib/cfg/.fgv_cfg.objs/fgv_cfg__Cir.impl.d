lib/cfg/cir.ml: Buffer Fgv_pssa Hashtbl List Printf String
