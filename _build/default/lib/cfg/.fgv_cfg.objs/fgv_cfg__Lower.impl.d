lib/cfg/lower.ml: Cir Fgv_pssa Hashtbl Ir List Pred Printf
