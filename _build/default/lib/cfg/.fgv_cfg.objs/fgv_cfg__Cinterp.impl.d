lib/cfg/cinterp.ml: Array Cir Fgv_pssa Hashtbl Interp Ir List Option Value
