(* A conventional CFG-based SSA IR: the target of the final lowering step
   ("conversion back to SSA with control flow", Fig. 15c of the paper).
   The CFG interpreter is the source of the dynamic branch counts that the
   paper's Fig. 22 reports. *)

type cvalue = int
type block_id = int

type ckind =
  | KConst of Fgv_pssa.Ir.const
  | KArg of int
  | KBinop of Fgv_pssa.Ir.binop * cvalue * cvalue
  | KCmp of Fgv_pssa.Ir.cmpop * cvalue * cvalue
  | KCast of Fgv_pssa.Ir.ty * cvalue
  | KNot of cvalue
  | KSelect of cvalue * cvalue * cvalue
  | KPhi of (block_id * cvalue) list
  | KLoad of cvalue
  | KStore of cvalue * cvalue
  | KCall of string * cvalue list * Fgv_pssa.Ir.effect_kind
  | KSplat of cvalue
  | KVecbuild of cvalue list
  | KExtract of cvalue * int

type cinst = { cid : cvalue; mutable ck : ckind; cty : Fgv_pssa.Ir.ty }

type term =
  | Br of block_id
  | CondBr of cvalue * block_id * block_id
  | Ret

type block = {
  bid : block_id;
  mutable insts : cinst list; (* in execution order *)
  mutable term : term;
}

type prog = {
  pname : string;
  blocks : (block_id, block) Hashtbl.t;
  mutable block_order : block_id list; (* creation order, for printing *)
  mutable entry : block_id;
  mutable next_value : int;
  mutable next_block : int;
}

let create_prog name =
  {
    pname = name;
    blocks = Hashtbl.create 16;
    block_order = [];
    entry = 0;
    next_value = 0;
    next_block = 0;
  }

let new_block p =
  let bid = p.next_block in
  p.next_block <- bid + 1;
  let b = { bid; insts = []; term = Ret } in
  Hashtbl.replace p.blocks bid b;
  p.block_order <- bid :: p.block_order;
  b

let block p bid =
  match Hashtbl.find_opt p.blocks bid with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Cir.block: unknown block b%d" bid)

(* Append an instruction to a block, returning its value id. *)
let emit p b ck cty =
  let cid = p.next_value in
  p.next_value <- cid + 1;
  let i = { cid; ck; cty } in
  b.insts <- b.insts @ [ i ];
  cid

let static_size p =
  Hashtbl.fold (fun _ b acc -> acc + List.length b.insts + 1) p.blocks 0

let string_of_ckind ck =
  let open Fgv_pssa.Ir in
  let v n = Printf.sprintf "%%%d" n in
  match ck with
  | KConst (Cint n) -> Printf.sprintf "const %d" n
  | KConst (Cfloat x) -> Printf.sprintf "const %g" x
  | KConst (Cbool b) -> Printf.sprintf "const %b" b
  | KConst (Cundef _) -> "undef"
  | KArg n -> Printf.sprintf "arg %d" n
  | KBinop (op, a, b) -> Printf.sprintf "%s %s, %s" (string_of_binop op) (v a) (v b)
  | KCmp (op, a, b) -> Printf.sprintf "cmp %s %s, %s" (string_of_cmpop op) (v a) (v b)
  | KCast (t, a) -> Printf.sprintf "cast %s to %s" (v a) (string_of_ty t)
  | KNot a -> Printf.sprintf "not %s" (v a)
  | KSelect (c, a, b) -> Printf.sprintf "select %s, %s, %s" (v c) (v a) (v b)
  | KPhi ops ->
    "phi "
    ^ String.concat ", "
        (List.map (fun (b, x) -> Printf.sprintf "[b%d: %s]" b (v x)) ops)
  | KLoad a -> Printf.sprintf "load [%s]" (v a)
  | KStore (a, x) -> Printf.sprintf "store [%s], %s" (v a) (v x)
  | KCall (f, args, _) ->
    Printf.sprintf "call %s(%s)" f (String.concat ", " (List.map v args))
  | KSplat a -> Printf.sprintf "splat %s" (v a)
  | KVecbuild vs -> "vec(" ^ String.concat ", " (List.map v vs) ^ ")"
  | KExtract (a, n) -> Printf.sprintf "extract %s, %d" (v a) n

let to_string p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "cfg %s (entry b%d) {\n" p.pname p.entry);
  List.iter
    (fun bid ->
      let b = block p bid in
      Buffer.add_string buf (Printf.sprintf "b%d:\n" bid);
      List.iter
        (fun i ->
          Buffer.add_string buf
            (Printf.sprintf "  %%%d = %s\n" i.cid (string_of_ckind i.ck)))
        b.insts;
      (match b.term with
      | Br d -> Buffer.add_string buf (Printf.sprintf "  br b%d\n" d)
      | CondBr (c, t, e) ->
        Buffer.add_string buf (Printf.sprintf "  br %%%d, b%d, b%d\n" c t e)
      | Ret -> Buffer.add_string buf "  ret\n"))
    (List.rev p.block_order);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
