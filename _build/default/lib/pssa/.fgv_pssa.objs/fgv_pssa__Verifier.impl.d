lib/pssa/verifier.ml: Hashtbl Ir List Pred Printf
