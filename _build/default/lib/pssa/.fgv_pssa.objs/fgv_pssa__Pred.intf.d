lib/pssa/pred.mli:
