lib/pssa/builder.ml: Ir List Pred
