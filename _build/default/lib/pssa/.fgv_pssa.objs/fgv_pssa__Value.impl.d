lib/pssa/value.ml: Array Int64 Printf String
