lib/pssa/pred.ml: List String
