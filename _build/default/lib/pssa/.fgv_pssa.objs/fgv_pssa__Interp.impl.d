lib/pssa/interp.ml: Array Float Hashtbl Ir List Option Pred Value
