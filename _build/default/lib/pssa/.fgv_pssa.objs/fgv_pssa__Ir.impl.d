lib/pssa/ir.ml: Hashtbl List Option Pred Printf
