lib/pssa/printer.ml: Buffer Ir List Pred Printf String
