(* Structural well-formedness checks for PSSA functions.

   Catching a broken invariant right after the transform that introduced
   it is far cheaper than debugging a wrong interpretation result, so all
   passes re-verify in tests. *)

open Ir

exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

(* Direct enclosing loop of every placed value (None = top region), and
   the parent loop of every placed loop. *)
let enclosing_maps f =
  let value_in : (value_id, loop_id option) Hashtbl.t = Hashtbl.create 64 in
  let loop_in : (loop_id, loop_id option) Hashtbl.t = Hashtbl.create 16 in
  let rec walk enclosing items =
    List.iter
      (fun item ->
        match item with
        | I v -> Hashtbl.replace value_in v enclosing
        | L lid ->
          let lp = loop f lid in
          Hashtbl.replace loop_in lid enclosing;
          List.iter (fun m -> Hashtbl.replace value_in m (Some lid)) lp.mus;
          walk (Some lid) lp.body)
      items
  in
  walk None f.fbody;
  (value_in, loop_in)

let verify f =
  (* 1. no duplicate definitions in the body tree; everything in arena *)
  let seen_v = Hashtbl.create 64 and seen_l = Hashtbl.create 16 in
  let rec collect items =
    List.iter
      (fun item ->
        match item with
        | I v ->
          if Hashtbl.mem seen_v v then fail "value v%d defined twice" v;
          if not (Hashtbl.mem f.arena v) then fail "value v%d not in arena" v;
          Hashtbl.replace seen_v v ()
        | L lid ->
          let lp = loop f lid in
          if Hashtbl.mem seen_l lid then fail "loop L%d listed twice" lid;
          Hashtbl.replace seen_l lid ();
          List.iter
            (fun m ->
              if Hashtbl.mem seen_v m then fail "mu v%d defined twice" m;
              (match (inst f m).kind with
              | Mu { loop; _ } ->
                if loop <> lid then
                  fail "mu v%d references loop L%d, listed in L%d" m loop lid
              | _ -> fail "loop L%d header contains non-mu v%d" lid m);
              Hashtbl.replace seen_v m ())
            lp.mus;
          collect lp.body)
      items
  in
  collect f.fbody;
  let value_in, loop_in = enclosing_maps f in
  (* is value [v] defined inside loop [lid] at any depth? *)
  let rec in_loop lid v =
    match Hashtbl.find_opt value_in v with
    | Some (Some l) -> l = lid || loop_nested_in lid l
    | _ -> false
  and loop_nested_in lid l =
    match Hashtbl.find_opt loop_in l with
    | Some (Some parent) -> parent = lid || loop_nested_in lid parent
    | _ -> false
  in
  (* 2. defs precede uses in program order, modulo mu back-edges *)
  let order = compute_order f in
  let check_uses v =
    let i = inst f v in
    let is_back_edge o =
      match i.kind with
      | Mu { recur; loop; _ } -> o = recur && (o = v || in_loop loop o)
      | _ -> false
    in
    List.iter
      (fun o ->
        if not (Hashtbl.mem f.arena o) then fail "v%d uses undefined value v%d" v o;
        if not (Hashtbl.mem seen_v o) then
          fail "v%d uses value v%d that is not placed in the body" v o;
        if not (is_back_edge o) && order (NI o) >= order (NI v) then
          fail "v%d uses v%d which does not precede it" v o)
      (all_operands i)
  in
  Hashtbl.iter (fun v _ -> if Hashtbl.mem seen_v v then check_uses v) f.arena;
  (* 3. predicate literals are boolean *)
  Hashtbl.iter
    (fun v _ ->
      if Hashtbl.mem seen_v v then
        List.iter
          (fun l ->
            if (inst f l).ty <> Tbool then
              fail "predicate of v%d uses non-boolean v%d" v l)
          (Pred.literals (inst f v).ipred))
    f.arena;
  (* 4. etas reference placed loops that precede them *)
  Hashtbl.iter
    (fun v _ ->
      if Hashtbl.mem seen_v v then
        match (inst f v).kind with
        | Eta { loop; _ } ->
          if not (Hashtbl.mem seen_l loop) then
            fail "eta v%d references unplaced loop L%d" v loop;
          if order (NL loop) >= order (NI v) then
            fail "eta v%d does not follow its loop L%d" v loop
        | _ -> ())
    f.arena;
  (* 5. loop continue predicates only use placed values *)
  Hashtbl.iter
    (fun lid lp ->
      if Hashtbl.mem seen_l lid then
        List.iter
          (fun l ->
            if not (Hashtbl.mem seen_v l) then
              fail "loop L%d cont uses unplaced value v%d" lid l)
          (Pred.literals lp.cont))
    f.loop_arena

let verify_or_message f =
  match verify f with
  | () -> None
  | exception Invalid msg -> Some msg
