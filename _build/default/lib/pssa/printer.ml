(* Textual rendering of PSSA functions, close to the paper's notation:
   each line is "<def> = <op> ...  ; <predicate>". *)

open Ir

let rec string_of_const = function
  | Cint n -> string_of_int n
  | Cfloat x -> Printf.sprintf "%g" x
  | Cbool b -> string_of_bool b
  | Cundef t -> "undef:" ^ string_of_ty t

and string_of_kind f kind =
  let v = value_name f in
  match kind with
  | Const c -> "const " ^ string_of_const c
  | Arg n ->
    let pname = try fst (List.nth f.params n) with _ -> string_of_int n in
    Printf.sprintf "arg %d (%s)" n pname
  | Binop (op, a, b) -> Printf.sprintf "%s %s, %s" (string_of_binop op) (v a) (v b)
  | Cmp (op, a, b) -> Printf.sprintf "cmp %s %s, %s" (string_of_cmpop op) (v a) (v b)
  | Cast (t, a) -> Printf.sprintf "cast %s to %s" (v a) (string_of_ty t)
  | Select { cond; if_true; if_false } ->
    Printf.sprintf "select %s, %s, %s" (v cond) (v if_true) (v if_false)
  | Phi ops ->
    let parts =
      List.map
        (fun (p, x) -> Printf.sprintf "%s: %s" (Pred.to_string v p) (v x))
        ops
    in
    "phi(" ^ String.concat ", " parts ^ ")"
  | Mu { init; recur; loop } ->
    Printf.sprintf "mu(%s, %s) @L%d" (v init) (v recur) loop
  | Eta { loop; value } -> Printf.sprintf "eta L%d %s" loop (v value)
  | Load { addr } -> Printf.sprintf "load [%s]" (v addr)
  | Store { addr; value } -> Printf.sprintf "store [%s], %s" (v addr) (v value)
  | Call { callee; args; effect } ->
    let e =
      match effect with Pure -> "pure " | Readonly -> "readonly " | Impure -> ""
    in
    Printf.sprintf "call %s%s(%s)" e callee (String.concat ", " (List.map v args))
  | Splat a -> Printf.sprintf "splat %s" (v a)
  | Vecbuild vs -> "vec(" ^ String.concat ", " (List.map v vs) ^ ")"
  | Extract (a, n) -> Printf.sprintf "extract %s, %d" (v a) n

let string_of_inst f i =
  let v = value_name f in
  let lhs = if i.ty = Tvoid then "" else Printf.sprintf "%s = " (v i.id) in
  Printf.sprintf "%s%s ; %s" lhs (string_of_kind f i.kind)
    (Pred.to_string v i.ipred)

let to_string f =
  let buf = Buffer.create 1024 in
  let v = value_name f in
  let indent n = String.make (2 * n) ' ' in
  let rec pp_items depth items =
    List.iter
      (fun item ->
        match item with
        | I id ->
          Buffer.add_string buf (indent depth);
          Buffer.add_string buf (string_of_inst f (inst f id));
          Buffer.add_char buf '\n'
        | L lid ->
          let lp = loop f lid in
          Buffer.add_string buf (indent depth);
          Buffer.add_string buf
            (Printf.sprintf "loop L%d ; %s\n" lp.lid (Pred.to_string v lp.lpred));
          List.iter
            (fun m ->
              Buffer.add_string buf (indent (depth + 1));
              Buffer.add_string buf (string_of_inst f (inst f m));
              Buffer.add_char buf '\n')
            lp.mus;
          pp_items (depth + 1) lp.body;
          Buffer.add_string buf (indent depth);
          Buffer.add_string buf
            (Printf.sprintf "while %s\n" (Pred.to_string v lp.cont)))
      items
  in
  let params =
    String.concat ", "
      (List.map (fun (n, t) -> Printf.sprintf "%s: %s" n (string_of_ty t)) f.params)
  in
  Buffer.add_string buf (Printf.sprintf "func %s(%s) {\n" f.fname params);
  pp_items 1 f.fbody;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let print f = print_string (to_string f)
