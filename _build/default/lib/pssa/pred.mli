(** Predicates of predicated SSA: [p ::= true | v | !v | p & p | p "|" p]
    over boolean SSA values, kept in a normalized structural form. *)

type value_id = int

type t = private
  | Ptrue
  | Pfalse
  | Plit of { v : value_id; positive : bool }
  | Pand of t list
  | Por of t list

val tru : t
val fls : t

val lit : ?positive:bool -> value_id -> t
(** Literal over a boolean SSA value. *)

val and_ : t -> t -> t
val and_list : t list -> t
val or_ : t -> t -> t
val or_list : t list -> t

val not_ : t -> t
(** Negation (De Morgan over the structure). *)

val equal : t -> t -> bool
val compare_t : t -> t -> int

val implies : t -> t -> bool
(** Sound, incomplete implication: [implies p q] true means p entails q.
    Complete for conjunctions of literals. *)

val literals : t -> value_id list
(** Boolean SSA values mentioned, sorted, unique. *)

val eval : (value_id -> bool) -> t -> bool

val rename : (value_id -> value_id) -> t -> t
(** Rename the underlying SSA values (re-normalizes). *)

val to_string : (value_id -> string) -> t -> string
