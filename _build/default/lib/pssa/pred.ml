(* Predicates of predicated SSA (Fig. 3 of the paper):

     p ::= true | v | v-bar | p1 /\ p2 | p1 \/ p2

   where v is an SSA value of boolean type.  Predicates are kept in a
   normalized structural form (flattened, sorted, de-duplicated and/or
   lists) so that structural equality coincides with the equality the
   framework needs, and so that [implies] can be decided syntactically for
   the predicates that structured control flow produces. *)

type value_id = int

type t =
  | Ptrue
  | Pfalse
  | Plit of { v : value_id; positive : bool }
  | Pand of t list (* >= 2 elements, sorted, no nested Pand/Ptrue *)
  | Por of t list (* >= 2 elements, sorted, no nested Por/Pfalse *)

let tru = Ptrue
let fls = Pfalse
let lit ?(positive = true) v = Plit { v; positive }

let rec compare_t a b =
  match a, b with
  | Ptrue, Ptrue | Pfalse, Pfalse -> 0
  | Ptrue, _ -> -1
  | _, Ptrue -> 1
  | Pfalse, _ -> -1
  | _, Pfalse -> 1
  | Plit a, Plit b ->
    let c = compare a.v b.v in
    if c <> 0 then c else compare a.positive b.positive
  | Plit _, _ -> -1
  | _, Plit _ -> 1
  | Pand a, Pand b -> compare_list a b
  | Pand _, _ -> -1
  | _, Pand _ -> 1
  | Por a, Por b -> compare_list a b

and compare_list a b =
  match a, b with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: a, y :: b ->
    let c = compare_t x y in
    if c <> 0 then c else compare_list a b

let equal a b = compare_t a b = 0

let norm_list xs = List.sort_uniq compare_t xs

(* Detect complementary literal pairs in a sorted conjunct/disjunct list. *)
let has_complement xs =
  let rec go = function
    | Plit a :: (Plit b :: _ as rest) ->
      (a.v = b.v && a.positive <> b.positive) || go rest
    | _ :: rest -> go rest
    | [] -> false
  in
  go xs

let and_list ps =
  let flat =
    List.concat_map (function Pand xs -> xs | Ptrue -> [] | p -> [ p ]) ps
  in
  if List.exists (fun p -> p = Pfalse) flat then Pfalse
  else
    match norm_list flat with
    | [] -> Ptrue
    | [ p ] -> p
    | xs -> if has_complement xs then Pfalse else Pand xs

let and_ a b = and_list [ a; b ]

let or_list ps =
  let flat =
    List.concat_map (function Por xs -> xs | Pfalse -> [] | p -> [ p ]) ps
  in
  if List.exists (fun p -> p = Ptrue) flat then Ptrue
  else
    match norm_list flat with
    | [] -> Pfalse
    | [ p ] -> p
    | xs -> if has_complement xs then Ptrue else Por xs

let or_ a b = or_list [ a; b ]

let rec not_ = function
  | Ptrue -> Pfalse
  | Pfalse -> Ptrue
  | Plit { v; positive } -> Plit { v; positive = not positive }
  | Pand xs -> or_list (List.map not_ xs)
  | Por xs -> and_list (List.map not_ xs)

(* Sound, incomplete implication test.  Complete for the conjunctions of
   literals that structured control flow produces, which is what the
   framework relies on (cf. the pred(j).implies(pred(i)) test in Fig. 6). *)
let rec implies p q =
  if equal p q then true
  else
    match p, q with
    | Pfalse, _ -> true
    | _, Ptrue -> true
    | Ptrue, _ -> false
    | _, Pfalse -> false
    | Por xs, _ -> List.for_all (fun x -> implies x q) xs
    | _, Pand ys -> List.for_all (fun y -> implies p y) ys
    | Pand xs, _ -> List.exists (fun x -> equal x q) xs || subsumes_or xs q
    | Plit _, Por ys -> List.exists (fun y -> implies p y) ys
    | Plit _, _ -> false

and subsumes_or xs q =
  match q with
  | Por ys -> List.exists (fun y -> implies (Pand xs) y) ys
  | _ -> false

(* All boolean SSA values mentioned by the predicate.  These are the
   "operands" of a control-predicate dependence condition. *)
let rec literals p =
  match p with
  | Ptrue | Pfalse -> []
  | Plit { v; _ } -> [ v ]
  | Pand xs | Por xs -> List.sort_uniq compare (List.concat_map literals xs)

(* Evaluate under an environment giving the runtime boolean of each value. *)
let rec eval lookup = function
  | Ptrue -> true
  | Pfalse -> false
  | Plit { v; positive } -> if positive then lookup v else not (lookup v)
  | Pand xs -> List.for_all (eval lookup) xs
  | Por xs -> List.exists (eval lookup) xs

(* Substitute values for values (used when cloning versioned code). *)
let rec rename f = function
  | (Ptrue | Pfalse) as p -> p
  | Plit { v; positive } -> Plit { v = f v; positive }
  | Pand xs -> and_list (List.map (rename f) xs)
  | Por xs -> or_list (List.map (rename f) xs)

let rec to_string value_name = function
  | Ptrue -> "true"
  | Pfalse -> "false"
  | Plit { v; positive } ->
    if positive then value_name v else "!" ^ value_name v
  | Pand xs ->
    "(" ^ String.concat " & " (List.map (to_string value_name) xs) ^ ")"
  | Por xs ->
    "(" ^ String.concat " | " (List.map (to_string value_name) xs) ^ ")"
