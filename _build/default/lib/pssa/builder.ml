(* Convenience layer for constructing PSSA functions in program order.

   The builder keeps a stack of open regions (the function body plus any
   loops being built) and a current predicate per region; emitted
   instructions are appended to the innermost region under the current
   predicate.  Loop bodies restart at predicate [true], matching Fig. 4
   where body predicates are relative to one iteration. *)

open Ir

type frame = {
  mutable items_rev : item list;
  mutable pred_stack : Pred.t list; (* innermost first; conjunction applies *)
  frame_loop : loop option;
}

type t = { func : func; mutable frames : frame list }

let create ~name ~params =
  let func = create_func ~name ~params in
  { func; frames = [ { items_rev = []; pred_stack = []; frame_loop = None } ] }

let top b =
  match b.frames with
  | f :: _ -> f
  | [] -> invalid_arg "Builder: no open region"

let cur_pred b = Pred.and_list (top b).pred_stack

(* Push/pop a control predicate (e.g. when entering an [if]). *)
let push_pred b p =
  let f = top b in
  f.pred_stack <- p :: f.pred_stack

let pop_pred b =
  let f = top b in
  match f.pred_stack with
  | _ :: rest -> f.pred_stack <- rest
  | [] -> invalid_arg "Builder.pop_pred: empty predicate stack"

let emit ?name ?pred b ~kind ~ty =
  let p = match pred with Some p -> p | None -> cur_pred b in
  let i = new_inst ?name b.func ~kind ~ty ~pred:p in
  let f = top b in
  f.items_rev <- I i.id :: f.items_rev;
  i.id

(* ------------------------------------------------------------ constants *)

let const_int ?name b n = emit ?name b ~kind:(Const (Cint n)) ~ty:Tint
let const_float ?name b x = emit ?name b ~kind:(Const (Cfloat x)) ~ty:Tfloat
let const_bool ?name b v = emit ?name b ~kind:(Const (Cbool v)) ~ty:Tbool
let undef ?name b ty = emit ?name b ~kind:(Const (Cundef ty)) ~ty
let arg ?name b idx ~ty = emit ?name b ~kind:(Arg idx) ~ty

(* ----------------------------------------------------------- operations *)

let binop ?name b op a c ~ty = emit ?name b ~kind:(Binop (op, a, c)) ~ty
let add ?name b a c = binop ?name b Add a c ~ty:Tint
let sub ?name b a c = binop ?name b Sub a c ~ty:Tint
let mul ?name b a c = binop ?name b Mul a c ~ty:Tint
let fadd ?name b a c = binop ?name b Fadd a c ~ty:Tfloat
let fsub ?name b a c = binop ?name b Fsub a c ~ty:Tfloat
let fmul ?name b a c = binop ?name b Fmul a c ~ty:Tfloat
let fdiv ?name b a c = binop ?name b Fdiv a c ~ty:Tfloat
let cmp ?name b op a c = emit ?name b ~kind:(Cmp (op, a, c)) ~ty:Tbool
let cast ?name b ty a = emit ?name b ~kind:(Cast (ty, a)) ~ty

let select ?name b ~cond ~if_true ~if_false ~ty =
  emit ?name b ~kind:(Select { cond; if_true; if_false }) ~ty

let phi ?name ?pred b ops ~ty = emit ?name ?pred b ~kind:(Phi ops) ~ty
let load ?name b addr ~ty = emit ?name b ~kind:(Load { addr }) ~ty
let store ?name b ~addr ~value = emit ?name b ~kind:(Store { addr; value }) ~ty:Tvoid

let call ?name ?(effect = Impure) b callee args ~ty =
  emit ?name b ~kind:(Call { callee; args; effect }) ~ty

let splat ?name b v ~lanes ~ty = emit ?name b ~kind:(Splat v) ~ty:(Tvec (ty, lanes))

let vecbuild ?name b vs ~ty =
  emit ?name b ~kind:(Vecbuild vs) ~ty:(Tvec (ty, List.length vs))

let extract ?name b v lane ~ty = emit ?name b ~kind:(Extract (v, lane)) ~ty

(* -------------------------------------------------------------- loops *)

(* Opens a loop item in the current region. Inside, the predicate context
   restarts at true. Finish with [finish_loop]. *)
let begin_loop b =
  let guard = cur_pred b in
  let lp = new_loop b.func ~pred:guard in
  b.frames <-
    { items_rev = []; pred_stack = []; frame_loop = Some lp } :: b.frames;
  lp

(* A mu node for the loop currently being built. The recur operand is
   typically a forward reference; create with init twice then patch via
   [set_mu_recur]. *)
let mu ?name b lp ~init ~ty =
  let i =
    new_inst ?name b.func ~kind:(Mu { init; recur = init; loop = lp.lid })
      ~ty ~pred:Pred.tru
  in
  lp.mus <- lp.mus @ [ i.id ];
  i.id

let set_mu_recur b m recur =
  let i = inst b.func m in
  match i.kind with
  | Mu mu -> i.kind <- Mu { mu with recur }
  | _ -> invalid_arg "Builder.set_mu_recur: not a mu"

let finish_loop b lp ~cont =
  match b.frames with
  | frame :: rest ->
    (match frame.frame_loop with
    | Some l when l.lid = lp.lid -> ()
    | _ -> invalid_arg "Builder.finish_loop: loop mismatch");
    lp.body <- List.rev frame.items_rev;
    lp.cont <- cont;
    b.frames <- rest;
    let parent = top b in
    parent.items_rev <- L lp.lid :: parent.items_rev
  | [] -> invalid_arg "Builder.finish_loop: no open region"

let eta ?name b lp v ~ty =
  emit ?name b ~kind:(Eta { loop = lp.lid; value = v }) ~ty

(* ------------------------------------------------------------- closing *)

let finish b =
  match b.frames with
  | [ frame ] ->
    b.func.fbody <- List.rev frame.items_rev;
    b.func
  | _ -> invalid_arg "Builder.finish: unclosed loop"
