(* Tests for the Dinic max-flow used by the cut finder: known graphs plus
   a cross-check against an independent Edmonds-Karp implementation on
   random networks. *)

module Maxflow = Fgv_graph.Maxflow

let check_int = Alcotest.(check int)

let test_single_edge () =
  let g = Maxflow.create 2 in
  Maxflow.add_edge g ~src:0 ~dst:1 ~cap:7;
  check_int "single edge" 7 (Maxflow.solve g ~source:0 ~sink:1)

let test_two_paths () =
  let g = Maxflow.create 4 in
  Maxflow.add_edge g ~src:0 ~dst:1 ~cap:3;
  Maxflow.add_edge g ~src:1 ~dst:3 ~cap:2;
  Maxflow.add_edge g ~src:0 ~dst:2 ~cap:4;
  Maxflow.add_edge g ~src:2 ~dst:3 ~cap:5;
  check_int "two paths" 6 (Maxflow.solve g ~source:0 ~sink:3)

let test_classic () =
  (* classic CLRS example; max flow 23 *)
  let g = Maxflow.create 6 in
  let e = Maxflow.add_edge g in
  e ~src:0 ~dst:1 ~cap:16;
  e ~src:0 ~dst:2 ~cap:13;
  e ~src:1 ~dst:2 ~cap:10;
  e ~src:2 ~dst:1 ~cap:4;
  e ~src:1 ~dst:3 ~cap:12;
  e ~src:3 ~dst:2 ~cap:9;
  e ~src:2 ~dst:4 ~cap:14;
  e ~src:4 ~dst:3 ~cap:7;
  e ~src:3 ~dst:5 ~cap:20;
  e ~src:4 ~dst:5 ~cap:4;
  check_int "clrs" 23 (Maxflow.solve g ~source:0 ~sink:5)

let test_disconnected () =
  let g = Maxflow.create 3 in
  Maxflow.add_edge g ~src:0 ~dst:1 ~cap:5;
  check_int "no path" 0 (Maxflow.solve g ~source:0 ~sink:2)

let test_cut_tags () =
  (* a -1-> b -9-> c: the min cut is the tagged cheap edge *)
  let g = Maxflow.create 3 in
  Maxflow.add_edge ~tag:42 g ~src:0 ~dst:1 ~cap:1;
  Maxflow.add_edge ~tag:7 g ~src:1 ~dst:2 ~cap:9;
  let flow = Maxflow.solve g ~source:0 ~sink:2 in
  check_int "flow" 1 flow;
  Alcotest.(check (list int)) "cut tags" [ 42 ] (Maxflow.cut_edge_tags g ~source:0)

(* Independent Edmonds-Karp implementation for cross-checking. *)
let edmonds_karp n edges ~source ~sink =
  let cap = Array.make_matrix n n 0 in
  List.iter (fun (s, d, c) -> cap.(s).(d) <- cap.(s).(d) + c) edges;
  let total = ref 0 in
  let rec loop () =
    let parent = Array.make n (-1) in
    parent.(source) <- source;
    let q = Queue.create () in
    Queue.add source q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      for w = 0 to n - 1 do
        if parent.(w) < 0 && cap.(v).(w) > 0 then begin
          parent.(w) <- v;
          Queue.add w q
        end
      done
    done;
    if parent.(sink) >= 0 then begin
      let rec bottleneck v acc =
        if v = source then acc
        else bottleneck parent.(v) (min acc cap.(parent.(v)).(v))
      in
      let b = bottleneck sink max_int in
      let rec push v =
        if v <> source then begin
          cap.(parent.(v)).(v) <- cap.(parent.(v)).(v) - b;
          cap.(v).(parent.(v)) <- cap.(v).(parent.(v)) + b;
          push parent.(v)
        end
      in
      push sink;
      total := !total + b;
      loop ()
    end
  in
  loop ();
  !total

let random_graph_gen =
  let open QCheck2.Gen in
  let* n = int_range 2 8 in
  let* nedges = int_range 0 20 in
  let* edges =
    list_size (return nedges)
      (tup3 (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 1 10))
  in
  return (n, edges)

let prop_matches_edmonds_karp =
  QCheck2.Test.make ~name:"Dinic matches Edmonds-Karp on random graphs"
    ~count:300 random_graph_gen
    (fun (n, edges) ->
      let edges = List.filter (fun (s, d, _) -> s <> d) edges in
      let g = Maxflow.create n in
      List.iter (fun (s, d, c) -> Maxflow.add_edge g ~src:s ~dst:d ~cap:c) edges;
      let source = 0 and sink = n - 1 in
      Maxflow.solve g ~source ~sink = edmonds_karp n edges ~source ~sink)

let prop_cut_separates =
  QCheck2.Test.make ~name:"removing the min-cut edges disconnects s from t"
    ~count:300 random_graph_gen
    (fun (n, edges) ->
      let edges = List.filter (fun (s, d, _) -> s <> d) edges in
      let g = Maxflow.create n in
      List.iteri
        (fun tag (s, d, c) -> Maxflow.add_edge ~tag g ~src:s ~dst:d ~cap:c)
        edges;
      let source = 0 and sink = n - 1 in
      ignore (Maxflow.solve g ~source ~sink);
      let cut = Maxflow.cut_edge_tags g ~source in
      (* residual reachability without the cut edges must not reach t *)
      let dg = Fgv_graph.Digraph.create n in
      List.iteri
        (fun tag (s, d, _) ->
          if not (List.mem tag cut) then Fgv_graph.Digraph.add_edge dg ~src:s ~dst:d)
        edges;
      not (Fgv_graph.Digraph.reachable dg [ source ]).(sink))

let suite =
  [
    Alcotest.test_case "single edge" `Quick test_single_edge;
    Alcotest.test_case "two paths" `Quick test_two_paths;
    Alcotest.test_case "clrs example" `Quick test_classic;
    Alcotest.test_case "disconnected" `Quick test_disconnected;
    Alcotest.test_case "cut tags" `Quick test_cut_tags;
    QCheck_alcotest.to_alcotest prop_matches_edmonds_karp;
    QCheck_alcotest.to_alcotest prop_cut_separates;
  ]
