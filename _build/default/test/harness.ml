(* Shared helpers for the test suites: compiling kernels, building
   memories, running both interpreters, and comparing outcomes. *)

open Fgv_pssa

let compile = Fgv_frontend.Lower_ast.compile

let float_mem n f = Array.init n (fun i -> Value.VFloat (f i))

let ints xs = List.map (fun n -> Value.VInt n) xs

let float_at mem i =
  match mem.(i) with
  | Value.VFloat x -> x
  | v -> Alcotest.failf "expected float at %d, got %s" i (Value.to_string v)

(* Run a PSSA function on a *copy* of the given memory. *)
let run_pssa ?ffi f ~args ~mem = Interp.run ?ffi f ~args ~mem:(Array.copy mem)

(* Lower to CFG and run on a copy of the given memory. *)
let run_cfg ?ffi f ~args ~mem =
  let prog = Fgv_cfg.Lower.lower f in
  Fgv_cfg.Cinterp.run ?ffi prog ~args ~mem:(Array.copy mem)

let check_mem_floats msg expected (outcome : Interp.outcome) =
  List.iteri
    (fun i x ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "%s[%d]" msg i)
        x
        (float_at outcome.memory i))
    expected

(* Compare a PSSA outcome with a CFG outcome observationally: same final
   memory, same external calls in the same order. *)
let cross_equivalent (a : Interp.outcome) (b : Fgv_cfg.Cinterp.outcome) =
  Array.length a.memory = Array.length b.memory
  && Array.for_all2 Value.equal a.memory b.memory
  && List.length a.call_trace = List.length b.call_trace
  && List.for_all2
       (fun (n1, a1) (n2, a2) ->
         n1 = n2
         && List.length a1 = List.length a2
         && List.for_all2 Value.equal a1 a2)
       a.call_trace b.call_trace
