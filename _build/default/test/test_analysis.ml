(* Unit tests for the analysis layer: linear expressions, SCEV,
   alias relations, and dependence conditions (Fig. 6). *)

open Fgv_pssa
open Fgv_analysis
open Harness

(* ------------------------------------------------------------- linexp *)

let test_linexp_algebra () =
  let open Linexp in
  let a = of_value 1 and b = of_value 2 in
  let e = add (scale 3 a) (add_const 5 b) in
  Alcotest.(check (option int)) "diff of shifted" (Some 7)
    (diff (add_const 7 e) e);
  Alcotest.(check (option int)) "diff unrelated" None (diff a b);
  Alcotest.(check bool) "x - x is const 0" true (is_const (sub a a));
  Alcotest.(check int) "konst" 5 (constant (add_const 5 (of_value 3)));
  (* substitution: 3a + b + 5 with a := b + 1 -> 4b + 8 *)
  let s = subst 1 (add_const 5 (add (scale 3 a) b)) (add_const 1 b) in
  Alcotest.(check (option int)) "subst result" (Some 0)
    (diff s (add_const 8 (scale 4 b)));
  Alcotest.(check bool) "mentions" true (mentions e 1);
  Alcotest.(check bool) "not mentions" false (mentions e 9)

let prop_linexp_add_commutes =
  QCheck2.Test.make ~name:"linexp add commutes/normalizes" ~count:300
    QCheck2.Gen.(
      list_size (int_range 0 6) (tup2 (int_range 0 4) (int_range (-5) 5)))
    (fun terms ->
      let e1 = Linexp.make terms 3 in
      let e2 =
        List.fold_left
          (fun acc (v, k) -> Linexp.add acc (Linexp.scale k (Linexp.of_value v)))
          (Linexp.const 3) terms
      in
      Linexp.equal e1 e2)

(* --------------------------------------------------------------- scev *)

let sum_with_stride_src =
  {|
  kernel k(float* a, float* b, int n) {
    for (int i = 0; i < n; i = i + 1) {
      a[i * 2 + 3] = b[i] + 1.0;
    }
  }
|}

let test_scev_affine () =
  let f = compile sum_with_stride_src in
  let scev = Scev.create f in
  (* find the loop and its mu *)
  let lid =
    List.find_map (function Ir.L l -> Some l | Ir.I _ -> None) f.Ir.fbody
    |> Option.get
  in
  let lp = Ir.loop f lid in
  let mu = List.hd lp.Ir.mus in
  (match Scev.mu_affine scev mu with
  | Some ma ->
    Alcotest.(check int) "stride" 1 ma.Scev.ma_stride;
    Alcotest.(check bool) "init is 0" true
      (Linexp.equal ma.Scev.ma_init (Linexp.const 0))
  | None -> Alcotest.fail "mu should be affine");
  (* trip count of for (i = 0; i < n; i++) is n *)
  (match Scev.trip scev lp with
  | Some t ->
    let n_arg =
      List.find_map
        (fun item ->
          match item with
          | Ir.I v -> (
            match (Ir.inst f v).Ir.kind with Ir.Arg 2 -> Some v | _ -> None)
          | _ -> None)
        f.Ir.fbody
      |> Option.get
    in
    Alcotest.(check bool) "trip = n" true (Linexp.equal t (Linexp.of_value n_arg))
  | None -> Alcotest.fail "trip should be known");
  (* the store address a + 2i + 3 must decompose with coefficient 2 *)
  let store =
    List.find_map
      (fun item ->
        match item with
        | Ir.I v -> (
          match (Ir.inst f v).Ir.kind with Ir.Store _ -> Some v | _ -> None)
        | _ -> None)
      lp.Ir.body
    |> Option.get
  in
  match Scev.range_of_access scev store with
  | Some r ->
    Alcotest.(check bool) "coefficient 2 on the mu" true
      (List.mem_assoc mu (Linexp.terms r.Scev.lo)
      && List.assoc mu (Linexp.terms r.Scev.lo) = 2)
  | None -> Alcotest.fail "store range"

let test_scev_promote () =
  let f = compile sum_with_stride_src in
  let scev = Scev.create f in
  let lid =
    List.find_map (function Ir.L l -> Some l | Ir.I _ -> None) f.Ir.fbody
    |> Option.get
  in
  let lp = Ir.loop f lid in
  let store =
    List.find_map
      (fun item ->
        match item with
        | Ir.I v -> (
          match (Ir.inst f v).Ir.kind with Ir.Store _ -> Some v | _ -> None)
        | _ -> None)
      lp.Ir.body
    |> Option.get
  in
  let r = Option.get (Scev.range_of_access scev store) in
  match Scev.promote_range scev ~out_of:(fun l -> l = lid) r with
  | Some p ->
    let mu = List.hd lp.Ir.mus in
    Alcotest.(check bool) "promoted range is loop-invariant" false
      (Linexp.mentions p.Scev.lo mu || Linexp.mentions p.Scev.hi mu)
  | None -> Alcotest.fail "promotion should succeed"

let test_descending_promote () =
  let f =
    compile
      {|
      kernel k(float* a, float* b, int n) {
        for (int i = n - 1; i >= 0; i = i - 1) { a[i] = b[i]; }
      }
    |}
  in
  let scev = Scev.create f in
  let lid =
    List.find_map (function Ir.L l -> Some l | Ir.I _ -> None) f.Ir.fbody
    |> Option.get
  in
  let lp = Ir.loop f lid in
  let store =
    List.find_map
      (fun item ->
        match item with
        | Ir.I v -> (
          match (Ir.inst f v).Ir.kind with Ir.Store _ -> Some v | _ -> None)
        | _ -> None)
      lp.Ir.body
    |> Option.get
  in
  let r = Option.get (Scev.range_of_access scev store) in
  match Scev.promote_range scev ~out_of:(fun l -> l = lid) r with
  | Some p ->
    let mu = List.hd lp.Ir.mus in
    Alcotest.(check bool) "descending promotion is invariant" false
      (Linexp.mentions p.Scev.lo mu || Linexp.mentions p.Scev.hi mu)
  | None -> Alcotest.fail "descending promotion should succeed"

(* -------------------------------------------------------------- alias *)

let test_alias_relations () =
  let f = compile "kernel k(float* restrict a, float* restrict b, float* c) { a[0] = b[0] + c[0]; }" in
  (* find the three arg values *)
  let arg n =
    List.find_map
      (fun item ->
        match item with
        | Ir.I v -> (
          match (Ir.inst f v).Ir.kind with
          | Ir.Arg m when m = n -> Some v
          | _ -> None)
        | _ -> None)
      f.Ir.fbody
    |> Option.get
  in
  let range base lo len =
    { Scev.lo = Linexp.add_const lo (Linexp.of_value base);
      hi = Linexp.add_const (lo + len) (Linexp.of_value base) }
  in
  let a = arg 0 and b = arg 1 and c = arg 2 in
  Alcotest.(check bool) "same base, disjoint offsets" true
    (Alias.relate f (range a 0 4) (range a 4 4) = Alias.Disjoint);
  Alcotest.(check bool) "same base, overlapping offsets" true
    (Alias.relate f (range a 0 4) (range a 3 4) = Alias.Overlap);
  Alcotest.(check bool) "identical symbolic ranges overlap" true
    (Alias.relate f (range a 0 4) (range a 0 4) = Alias.Overlap);
  Alcotest.(check bool) "restrict args are disjoint" true
    (Alias.relate f (range a 0 4) (range b 0 4) = Alias.Disjoint);
  Alcotest.(check bool) "restrict vs plain is disjoint" true
    (Alias.relate f (range a 0 4) (range c 0 4) = Alias.Disjoint);
  (* two plain pointers are unknown: recompile without restrict *)
  let f2 = Fgv_frontend.Lower_ast.compile_no_restrict
      "kernel k(float* restrict a, float* restrict b, float* c) { a[0] = b[0] + c[0]; }" in
  let arg2 n =
    List.find_map
      (fun item ->
        match item with
        | Ir.I v -> (
          match (Ir.inst f2 v).Ir.kind with
          | Ir.Arg m when m = n -> Some v
          | _ -> None)
        | _ -> None)
      f2.Ir.fbody
    |> Option.get
  in
  let range2 base lo len =
    { Scev.lo = Linexp.add_const lo (Linexp.of_value base);
      hi = Linexp.add_const (lo + len) (Linexp.of_value base) }
  in
  Alcotest.(check bool) "plain pointers are unknown" true
    (Alias.relate f2 (range2 (arg2 0) 0 4) (range2 (arg2 1) 0 4) = Alias.Unknown)

(* ------------------------------------------------- dependence conditions *)

let dep_between f (src_kind : Ir.inst_kind -> bool) (dst_kind : Ir.inst_kind -> bool) =
  let scev = Scev.create f in
  let g = Depgraph.build f scev Ir.Rtop in
  let find p =
    Array.to_list g.Depgraph.nodes
    |> List.find_map (fun n ->
           match n with
           | Ir.NI v when p (Ir.inst f v).Ir.kind -> Some n
           | _ -> None)
    |> Option.get
  in
  let i = Depgraph.node_index g (find src_kind) in
  let j = Depgraph.node_index g (find dst_kind) in
  List.find_opt
    (fun e -> e.Depgraph.e_src = i && e.Depgraph.e_dst = j)
    (Array.to_list g.Depgraph.edges)

let test_depcond_memory_pair () =
  (* load *b after store *a, plain pointers: conditional intersection *)
  let f =
    Fgv_frontend.Lower_ast.compile_no_restrict
      "kernel k(float* a, float* b) { a[0] = 1.0; float x = b[0]; a[1] = x; }"
  in
  let is_store0 = function
    | Ir.Store { value; _ } -> (
      match (Ir.inst f value).Ir.kind with
      | Ir.Const (Ir.Cfloat 1.0) -> true
      | _ -> false)
    | _ -> false
  in
  let is_load = function Ir.Load _ -> true | _ -> false in
  match dep_between f is_load is_store0 with
  | Some e -> (
    match e.Depgraph.e_cond with
    | Some [ Depcond.Aintersect _ ] -> ()
    | Some _ -> Alcotest.fail "expected a single intersection condition"
    | None -> Alcotest.fail "expected a conditional edge")
  | None -> Alcotest.fail "expected a dependence edge"

let test_depcond_pred_rule () =
  (* a store guarded by a condition: the later load depends on it only
     when it executes (Fig. 6's predicate rule) *)
  let f =
    Fgv_frontend.Lower_ast.compile_no_restrict
      {|
      kernel k(float* a, float* b, int n) {
        if (n > 0) { a[0] = 1.0; }
        float x = b[0];
        a[1] = x;
      }
    |}
  in
  let is_guarded_store k =
    match k with
    | Ir.Store { value; _ } -> (
      match (Ir.inst f value).Ir.kind with
      | Ir.Const (Ir.Cfloat 1.0) -> true
      | _ -> false)
    | _ -> false
  in
  let is_load = function Ir.Load _ -> true | _ -> false in
  match dep_between f is_load is_guarded_store with
  | Some e -> (
    match e.Depgraph.e_cond with
    | Some [ Depcond.Apred _ ] -> ()
    | Some [ Depcond.Aintersect _ ] ->
      Alcotest.fail "expected the predicate rule, got an intersection"
    | _ -> Alcotest.fail "expected one predicate condition")
  | None -> Alcotest.fail "expected a dependence edge"

let test_depcond_restrict_kills_edge () =
  let f =
    compile
      "kernel k(float* restrict a, float* restrict b) { a[0] = 1.0; float x = b[0]; a[1] = x; }"
  in
  let is_store0 = function
    | Ir.Store { value; _ } -> (
      match (Ir.inst f value).Ir.kind with
      | Ir.Const (Ir.Cfloat 1.0) -> true
      | _ -> false)
    | _ -> false
  in
  let is_load = function Ir.Load _ -> true | _ -> false in
  Alcotest.(check bool) "no edge between restrict-disjoint accesses" true
    (dep_between f is_load is_store0 = None)

let suite =
  [
    Alcotest.test_case "linexp algebra" `Quick test_linexp_algebra;
    QCheck_alcotest.to_alcotest prop_linexp_add_commutes;
    Alcotest.test_case "scev affine + trip + ranges" `Quick test_scev_affine;
    Alcotest.test_case "scev promotion" `Quick test_scev_promote;
    Alcotest.test_case "scev descending promotion" `Quick test_descending_promote;
    Alcotest.test_case "alias relations" `Quick test_alias_relations;
    Alcotest.test_case "dependence condition: intersection" `Quick
      test_depcond_memory_pair;
    Alcotest.test_case "dependence condition: predicate rule" `Quick
      test_depcond_pred_rule;
    Alcotest.test_case "restrict removes the edge" `Quick
      test_depcond_restrict_kills_edge;
  ]
