(* Tests for the support utilities. *)

module DS = Fgv_support.Disjoint_set
module Stats = Fgv_support.Stats
module Table = Fgv_support.Table
module Digraph = Fgv_graph.Digraph

let test_disjoint_set () =
  let d = DS.create 8 in
  DS.union d 0 1;
  DS.union d 2 3;
  DS.union d 1 3;
  Alcotest.(check bool) "0 ~ 3" true (DS.same d 0 3);
  Alcotest.(check bool) "0 !~ 4" false (DS.same d 0 4);
  let groups = DS.groups d in
  Alcotest.(check bool) "one group of four" true
    (List.exists (fun g -> List.sort compare g = [ 0; 1; 2; 3 ]) groups);
  Alcotest.(check int) "five groups" 5 (List.length groups)

let test_stats () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "speedup" 2.0 (Stats.speedup ~base:4.0 ~opt:2.0)

let test_table_render () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_sep t;
  Table.add_row t [ "beta"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true
    (String.length s > 0
    &&
    let lines = String.split_on_char '\n' s in
    List.exists (fun l -> l = "name   value" || String.length l > 0) lines);
  (* right alignment of the numeric column *)
  Alcotest.(check bool) "aligned" true
    (List.exists
       (fun l -> l <> "" && l.[String.length l - 1] = '1')
       (String.split_on_char '\n' s))

let test_digraph_reachability () =
  let g = Digraph.create 5 in
  Digraph.add_edge g ~src:0 ~dst:1;
  Digraph.add_edge g ~src:1 ~dst:2;
  Digraph.add_edge g ~src:3 ~dst:4;
  let r = Digraph.reachable g [ 0 ] in
  Alcotest.(check bool) "0 reaches 2" true r.(2);
  Alcotest.(check bool) "0 does not reach 4" false r.(4);
  let co = Digraph.co_reachable g [ 2 ] in
  Alcotest.(check bool) "0 co-reaches 2" true co.(0);
  let order = Digraph.topological_sort g in
  let pos x = Option.get (List.find_index (fun y -> y = x) order) in
  Alcotest.(check bool) "topo order" true (pos 0 < pos 1 && pos 1 < pos 2)

let test_digraph_cycle () =
  let g = Digraph.create 2 in
  Digraph.add_edge g ~src:0 ~dst:1;
  Digraph.add_edge g ~src:1 ~dst:0;
  match Digraph.topological_sort g with
  | exception Digraph.Cycle _ -> ()
  | _ -> Alcotest.fail "expected cycle detection"

let suite =
  [
    Alcotest.test_case "disjoint set" `Quick test_disjoint_set;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "digraph reachability" `Quick test_digraph_reachability;
    Alcotest.test_case "digraph cycle detection" `Quick test_digraph_cycle;
  ]
