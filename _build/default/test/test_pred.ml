(* Unit and property tests for the predicate algebra. *)

open Fgv_pssa

let check = Alcotest.(check bool)

(* Random predicates over a small set of boolean variables. *)
let pred_gen =
  let open QCheck2.Gen in
  sized (fun size ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                return Pred.tru;
                return Pred.fls;
                map (fun v -> Pred.lit v) (int_range 0 4);
                map (fun v -> Pred.lit ~positive:false v) (int_range 0 4);
              ]
          else
            oneof
              [
                map (fun v -> Pred.lit v) (int_range 0 4);
                map2 Pred.and_ (self (n / 2)) (self (n / 2));
                map2 Pred.or_ (self (n / 2)) (self (n / 2));
                map Pred.not_ (self (n - 1));
              ])
        (min size 8))

let envs =
  (* all assignments to 5 boolean variables *)
  List.init 32 (fun bits v -> bits land (1 lsl v) <> 0)

let eval_all p = List.map (fun env -> Pred.eval env p) envs

let test_basics () =
  check "true & p = p" true
    (Pred.equal (Pred.and_ Pred.tru (Pred.lit 0)) (Pred.lit 0));
  check "p & !p = false" true
    (Pred.equal (Pred.and_ (Pred.lit 0) (Pred.lit ~positive:false 0)) Pred.fls);
  check "p | !p = true" true
    (Pred.equal (Pred.or_ (Pred.lit 0) (Pred.lit ~positive:false 0)) Pred.tru);
  check "and is commutative" true
    (Pred.equal
       (Pred.and_ (Pred.lit 0) (Pred.lit 1))
       (Pred.and_ (Pred.lit 1) (Pred.lit 0)));
  check "demorgan" true
    (Pred.equal
       (Pred.not_ (Pred.and_ (Pred.lit 0) (Pred.lit 1)))
       (Pred.or_ (Pred.lit ~positive:false 0) (Pred.lit ~positive:false 1)))

let test_implies_basics () =
  let a = Pred.lit 0 and b = Pred.lit 1 in
  check "a&b implies a" true (Pred.implies (Pred.and_ a b) a);
  check "a implies a|b" true (Pred.implies a (Pred.or_ a b));
  check "a does not imply a&b" false (Pred.implies a (Pred.and_ a b));
  check "false implies anything" true (Pred.implies Pred.fls a);
  check "anything implies true" true (Pred.implies b Pred.tru)

let test_literals () =
  let p = Pred.and_ (Pred.lit 3) (Pred.or_ (Pred.lit 1) (Pred.lit ~positive:false 3)) in
  Alcotest.(check (list int)) "literals" [ 1; 3 ] (Pred.literals p)

(* Properties *)

let prop_normalization_sound =
  QCheck2.Test.make ~name:"and_/or_/not_ preserve semantics under eval"
    ~count:500
    QCheck2.Gen.(tup2 pred_gen pred_gen)
    (fun (p, q) ->
      let conj = Pred.and_ p q and disj = Pred.or_ p q and neg = Pred.not_ p in
      List.for_all
        (fun env ->
          Pred.eval env conj = (Pred.eval env p && Pred.eval env q)
          && Pred.eval env disj = (Pred.eval env p || Pred.eval env q)
          && Pred.eval env neg = not (Pred.eval env p))
        envs)

let prop_implies_sound =
  QCheck2.Test.make ~name:"implies is sound (p => q semantically)" ~count:500
    QCheck2.Gen.(tup2 pred_gen pred_gen)
    (fun (p, q) ->
      (not (Pred.implies p q))
      || List.for_all
           (fun env -> (not (Pred.eval env p)) || Pred.eval env q)
           envs)

let prop_equal_iff_same_truth_table =
  QCheck2.Test.make ~name:"structural equality implies same truth table"
    ~count:500
    QCheck2.Gen.(tup2 pred_gen pred_gen)
    (fun (p, q) -> (not (Pred.equal p q)) || eval_all p = eval_all q)

let prop_rename_identity =
  QCheck2.Test.make ~name:"rename with identity is equal" ~count:200 pred_gen
    (fun p -> Pred.equal (Pred.rename (fun v -> v) p) p)

let suite =
  [
    Alcotest.test_case "basic laws" `Quick test_basics;
    Alcotest.test_case "implies basics" `Quick test_implies_basics;
    Alcotest.test_case "literals" `Quick test_literals;
    QCheck_alcotest.to_alcotest prop_normalization_sound;
    QCheck_alcotest.to_alcotest prop_implies_sound;
    QCheck_alcotest.to_alcotest prop_equal_iff_same_truth_table;
    QCheck_alcotest.to_alcotest prop_rename_identity;
  ]
