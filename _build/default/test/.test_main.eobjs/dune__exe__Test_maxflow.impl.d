test/test_maxflow.ml: Alcotest Array Fgv_graph List QCheck2 QCheck_alcotest Queue
