test/test_frontend.ml: Alcotest Fgv_frontend Fgv_pssa Float Harness List Printer Printf String
