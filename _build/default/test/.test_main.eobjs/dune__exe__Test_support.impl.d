test/test_support.ml: Alcotest Array Fgv_graph Fgv_support List Option String
