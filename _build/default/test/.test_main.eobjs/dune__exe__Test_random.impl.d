test/test_random.ml: Array Ast Fgv_cfg Fgv_frontend Fgv_passes Fgv_pssa Fgv_versioning Float Harness Interp Ir List Lower_ast Printf QCheck2 QCheck_alcotest String Value Verifier
