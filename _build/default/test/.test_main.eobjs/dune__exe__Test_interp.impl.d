test/test_interp.ml: Alcotest Builder Fgv_pssa Harness Interp Ir List Printf Value
