test/test_cfg.ml: Alcotest Fgv_cfg Float Harness List
