test/harness.ml: Alcotest Array Fgv_cfg Fgv_frontend Fgv_pssa Interp List Printf Value
