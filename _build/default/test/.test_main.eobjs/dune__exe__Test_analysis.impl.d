test/test_analysis.ml: Alcotest Alias Array Depcond Depgraph Fgv_analysis Fgv_frontend Fgv_pssa Harness Ir Linexp List Option QCheck2 QCheck_alcotest Scev
