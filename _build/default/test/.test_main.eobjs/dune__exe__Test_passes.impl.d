test/test_passes.ml: Alcotest Fgv_passes Fgv_pssa Float Harness Interp Ir List Printf Value Verifier
