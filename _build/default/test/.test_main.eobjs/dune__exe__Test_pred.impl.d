test/test_pred.ml: Alcotest Fgv_pssa List Pred QCheck2 QCheck_alcotest
