test/test_condopt.ml: Alcotest Array Builder Depcond Depgraph Fgv_analysis Fgv_frontend Fgv_pssa Fgv_versioning Ir Linexp List Option QCheck2 QCheck_alcotest Scev
