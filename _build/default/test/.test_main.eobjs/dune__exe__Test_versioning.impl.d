test/test_versioning.ml: Alcotest Array Depcond Depgraph Fgv_analysis Fgv_pssa Fgv_versioning Harness Interp Ir List Option Pred Printer Scev String Value Verifier
