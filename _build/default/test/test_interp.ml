(* Interpreter semantics tests: vector operations, undef propagation,
   bounds trapping, fuel, the cost model, and loop edge cases. *)

open Fgv_pssa
open Harness

let build_simple body_fn =
  let b = Builder.create ~name:"t" ~params:[ ("p", Ir.Tint) ] in
  let p = Builder.arg b 0 ~ty:Ir.Tint in
  body_fn b p;
  Builder.finish b

let run ?fuel f ~mem = Interp.run ?fuel f ~args:[ Value.VInt 0 ] ~mem

let test_vector_ops () =
  let f =
    build_simple (fun b p ->
        let v = Builder.load b p ~ty:(Ir.Tvec (Ir.Tfloat, 4)) in
        let two = Builder.const_float b 2.0 in
        let s = Builder.splat b two ~lanes:4 ~ty:Ir.Tfloat in
        let m = Builder.binop b Ir.Fmul v s ~ty:(Ir.Tvec (Ir.Tfloat, 4)) in
        let four = Builder.const_int b 4 in
        let addr = Builder.add b p four in
        ignore (Builder.store b ~addr ~value:m))
  in
  let mem = float_mem 8 (fun i -> float_of_int i) in
  let out = run f ~mem in
  List.iteri
    (fun i expected ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "lane %d" i)
        expected
        (float_at out.memory (4 + i)))
    [ 0.0; 2.0; 4.0; 6.0 ];
  Alcotest.(check int) "one vector load" 1 out.counters.vector_loads;
  Alcotest.(check int) "one vector store" 1 out.counters.vector_stores

let test_extract_and_build () =
  let f =
    build_simple (fun b p ->
        let a = Builder.load b p ~ty:Ir.Tfloat in
        let one = Builder.const_float b 1.0 in
        let v = Builder.vecbuild b [ a; one; a; one ] ~ty:Ir.Tfloat in
        let e2 = Builder.extract b v 2 ~ty:Ir.Tfloat in
        let four = Builder.const_int b 4 in
        let addr = Builder.add b p four in
        ignore (Builder.store b ~addr ~value:e2))
  in
  let mem = float_mem 8 (fun i -> float_of_int (i + 3)) in
  let out = run f ~mem in
  Alcotest.(check (float 1e-9)) "lane 2 extracted" 3.0 (float_at out.memory 4)

let test_undef_propagation () =
  let f =
    build_simple (fun b p ->
        let u = Builder.undef b Ir.Tfloat in
        let one = Builder.const_float b 1.0 in
        let s = Builder.fadd b u one in
        (* the undef sum is never stored; the function stores 1.0 *)
        ignore s;
        ignore (Builder.store b ~addr:p ~value:one))
  in
  let out = run f ~mem:(float_mem 4 (fun _ -> 0.0)) in
  Alcotest.(check (float 1e-9)) "stored" 1.0 (float_at out.memory 0)

let test_oob_traps () =
  let f =
    build_simple (fun b p ->
        let big = Builder.const_int b 1000 in
        let addr = Builder.add b p big in
        let one = Builder.const_float b 1.0 in
        ignore (Builder.store b ~addr ~value:one))
  in
  match run f ~mem:(float_mem 4 (fun _ -> 0.0)) with
  | exception Value.Trap _ -> ()
  | _ -> Alcotest.fail "expected out-of-bounds trap"

let test_fuel () =
  let f =
    compile
      "kernel spin(float* a) { int x = 1; while (x > 0) { x = x + 1; } a[0] = 1.0; }"
  in
  match Interp.run ~fuel:1000 f ~args:[ Value.VInt 0 ] ~mem:(float_mem 4 (fun _ -> 0.0)) with
  | exception Interp.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_zero_trip_etas () =
  (* a skipped loop's etas observe the mu inits *)
  let f =
    compile
      {|
      kernel k(float* a, int n) {
        int s = 7;
        for (int i = 0; i < n; i = i + 1) { s = s + 1; }
        a[0] = (float) s;
      }
    |}
  in
  let out = Interp.run f ~args:(ints [ 0; 0 ]) ~mem:(float_mem 4 (fun _ -> 0.0)) in
  Alcotest.(check (float 1e-9)) "eta = init on zero trip" 7.0 (float_at out.memory 0);
  let out = Interp.run f ~args:(ints [ 0; 5 ]) ~mem:(float_mem 4 (fun _ -> 0.0)) in
  Alcotest.(check (float 1e-9)) "eta after 5 iters" 12.0 (float_at out.memory 0)

let test_counted_induction_exit_value () =
  (* after for (i = 0; i < n; i++), i == n *)
  let f =
    compile
      {|
      kernel k(float* a, int n) {
        int i = 0;
        for (i = 0; i < n; i = i + 1) { a[1] = 0.0; }
        a[0] = (float) i;
      }
    |}
  in
  let out = Interp.run f ~args:(ints [ 0; 9 ]) ~mem:(float_mem 4 (fun _ -> 0.0)) in
  Alcotest.(check (float 1e-9)) "exit value" 9.0 (float_at out.memory 0)

let test_cost_model_prefers_vector () =
  (* same computation scalar vs vector must cost less in vector form *)
  let scalar =
    build_simple (fun b p ->
        for k = 0 to 3 do
          let kc = Builder.const_int b k in
          let addr = Builder.add b p kc in
          let x = Builder.load b addr ~ty:Ir.Tfloat in
          let one = Builder.const_float b 1.0 in
          let y = Builder.fadd b x one in
          let eight = Builder.const_int b (8 + k) in
          let daddr = Builder.add b p eight in
          ignore (Builder.store b ~addr:daddr ~value:y)
        done)
  in
  let vector =
    build_simple (fun b p ->
        let v = Builder.load b p ~ty:(Ir.Tvec (Ir.Tfloat, 4)) in
        let one = Builder.const_float b 1.0 in
        let s = Builder.splat b one ~lanes:4 ~ty:Ir.Tfloat in
        let y = Builder.binop b Ir.Fadd v s ~ty:(Ir.Tvec (Ir.Tfloat, 4)) in
        let eight = Builder.const_int b 8 in
        let daddr = Builder.add b p eight in
        ignore (Builder.store b ~addr:daddr ~value:y))
  in
  let mem () = float_mem 16 (fun i -> float_of_int i) in
  let a = run scalar ~mem:(mem ()) in
  let b = run vector ~mem:(mem ()) in
  Alcotest.(check bool) "same results" true (Interp.equivalent a b);
  Alcotest.(check bool) "vector is cheaper" true
    (Interp.cost b.counters < Interp.cost a.counters)

let test_call_trace_only_impure () =
  let f =
    compile
      {|
      kernel k(float* a) {
        a[0] = sqrt(4.0);
        cold_func();
      }
    |}
  in
  let out = Interp.run f ~args:(ints [ 2 ]) ~mem:(float_mem 4 (fun _ -> 0.0)) in
  Alcotest.(check int) "only the impure call is observable" 1
    (List.length out.call_trace);
  Alcotest.(check (float 1e-9)) "sqrt applied" 2.0 (float_at out.memory 2)

let suite =
  [
    Alcotest.test_case "vector ops" `Quick test_vector_ops;
    Alcotest.test_case "extract/build" `Quick test_extract_and_build;
    Alcotest.test_case "undef propagation" `Quick test_undef_propagation;
    Alcotest.test_case "out-of-bounds traps" `Quick test_oob_traps;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel;
    Alcotest.test_case "zero-trip etas" `Quick test_zero_trip_etas;
    Alcotest.test_case "induction exit value" `Quick test_counted_induction_exit_value;
    Alcotest.test_case "cost model prefers vector" `Quick test_cost_model_prefers_vector;
    Alcotest.test_case "call trace is impure-only" `Quick test_call_trace_only_impure;
  ]
