(* End-to-end tests: compile mini-C kernels to PSSA, interpret, and check
   results against straightforward OCaml reference computations. *)

open Fgv_pssa
open Harness

let check_float = Alcotest.(check (float 1e-9))

let sum_src =
  {|
  kernel sum(float* a, float* out, int n) {
    float s = 0.0;
    for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }
    out[0] = s;
  }
|}

let test_sum () =
  let f = compile sum_src in
  let n = 17 in
  let mem = float_mem 32 (fun i -> float_of_int i *. 0.5) in
  (* a at 0..16, out at 20 *)
  let out = run_pssa f ~args:(ints [ 0; 20; n ]) ~mem in
  let expected = List.init n (fun i -> float_of_int i *. 0.5) |> List.fold_left ( +. ) 0.0 in
  check_float "sum" expected (float_at out.memory 20)

let test_sum_zero_trip () =
  let f = compile sum_src in
  let mem = float_mem 8 (fun _ -> 1.0) in
  let out = run_pssa f ~args:(ints [ 0; 4; 0 ]) ~mem in
  check_float "zero-trip sum" 0.0 (float_at out.memory 4)

let cond_src =
  {|
  kernel relu(float* a, float* b, int n) {
    for (int i = 0; i < n; i = i + 1) {
      float x = a[i];
      if (x > 0.0) { b[i] = x; } else { b[i] = 0.0 - x; }
    }
  }
|}

let test_conditional () =
  let f = compile cond_src in
  let n = 10 in
  let mem = float_mem 24 (fun i -> if i mod 2 = 0 then float_of_int i else -.float_of_int i) in
  let out = run_pssa f ~args:(ints [ 0; 12; n ]) ~mem in
  for i = 0 to n - 1 do
    let input = if i mod 2 = 0 then float_of_int i else -.float_of_int i in
    check_float (Printf.sprintf "abs[%d]" i) (Float.abs input) (float_at out.memory (12 + i))
  done

let nested_src =
  {|
  kernel rowsum(float* a, float* out, int n, int m) {
    for (int i = 0; i < n; i = i + 1) {
      float s = 0.0;
      for (int j = 0; j < m; j = j + 1) { s = s + a[i * m + j]; }
      out[i] = s;
    }
  }
|}

let test_nested_loops () =
  let f = compile nested_src in
  let n = 4 and m = 5 in
  let mem = float_mem 32 (fun i -> float_of_int (i * i mod 7)) in
  let out = run_pssa f ~args:(ints [ 0; 24; n; m ]) ~mem in
  for i = 0 to n - 1 do
    let expected = ref 0.0 in
    for j = 0 to m - 1 do
      let cell = (i * m) + j in
      expected := !expected +. float_of_int (cell * cell mod 7)
    done;
    check_float (Printf.sprintf "row[%d]" i) !expected (float_at out.memory (24 + i))
  done

let while_src =
  {|
  kernel collatz_steps(float* out, int start) {
    int x = start;
    int steps = 0;
    while (x != 1) {
      if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
      steps = steps + 1;
    }
    out[0] = (float) steps;
  }
|}

let test_while () =
  let f = compile while_src in
  let mem = float_mem 2 (fun _ -> 0.0) in
  let out = run_pssa f ~args:(ints [ 0; 6 ]) ~mem in
  (* 6 -> 3 -> 10 -> 5 -> 16 -> 8 -> 4 -> 2 -> 1 : 8 steps *)
  check_float "collatz(6)" 8.0 (float_at out.memory 0)

let fig1_src =
  {|
  kernel fig1(float* X, float* Y) {
    Y[0] = 0.0;
    if (X[0] != 0.0) { cold_func(); }
    Y[1] = 0.0;
  }
|}

(* The paper's running example: pointer arguments really can alias. *)
let test_running_example_no_alias () =
  let f = compile fig1_src in
  let mem = float_mem 8 (fun _ -> 1.0) in
  (* X at 4, Y at 1: no alias; X[0] = 1.0 so cold_func runs (writes 42 to cell 0) *)
  let out = run_pssa f ~args:(ints [ 4; 1 ]) ~mem in
  check_float "cold_func clobbered cell 0" 42.0 (float_at out.memory 0);
  check_float "Y[0]" 0.0 (float_at out.memory 1);
  check_float "Y[1]" 0.0 (float_at out.memory 2);
  Alcotest.(check int) "one call" 1 (List.length out.call_trace)

let test_running_example_alias () =
  let f = compile fig1_src in
  let mem = float_mem 8 (fun _ -> 1.0) in
  (* X = Y: the store Y[0] = 0 zeroes X[0], so cold_func must NOT run *)
  let out = run_pssa f ~args:(ints [ 3; 3 ]) ~mem in
  Alcotest.(check int) "no call" 0 (List.length out.call_trace)

let ternary_src =
  {|
  kernel clampmax(float* a, float* b, int n, float hi) {
    for (int i = 0; i < n; i = i + 1) {
      b[i] = a[i] > hi ? hi : a[i];
    }
  }
|}

let test_ternary () =
  let f = compile ternary_src in
  let n = 6 in
  let mem = float_mem 16 (fun i -> float_of_int i) in
  let out =
    run_pssa f ~args:[ VInt 0; VInt 8; VInt n; VFloat 3.5 ] ~mem
  in
  for i = 0 to n - 1 do
    check_float
      (Printf.sprintf "clamp[%d]" i)
      (Float.min (float_of_int i) 3.5)
      (float_at out.memory (8 + i))
  done

let test_parse_errors () =
  let bad = [ "kernel f( { }"; "kernel f() { x = 1; }"; "kernel f() { int x = ; }" ] in
  List.iter
    (fun src ->
      match compile src with
      | exception (Fgv_frontend.Parser.Error _ | Fgv_frontend.Lower_ast.Error _ | Fgv_frontend.Lexer.Error _) -> ()
      | _ -> Alcotest.failf "expected error for %s" src)
    bad

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_printer_roundtrip_smoke () =
  let f = compile sum_src in
  let text = Printer.to_string f in
  Alcotest.(check bool) "mentions mu" true (contains text "mu(");
  Alcotest.(check bool) "mentions while" true (contains text "while")

let suite =
  [
    Alcotest.test_case "sum" `Quick test_sum;
    Alcotest.test_case "sum zero trip" `Quick test_sum_zero_trip;
    Alcotest.test_case "conditional" `Quick test_conditional;
    Alcotest.test_case "nested loops" `Quick test_nested_loops;
    Alcotest.test_case "while loop" `Quick test_while;
    Alcotest.test_case "running example (no alias)" `Quick test_running_example_no_alias;
    Alcotest.test_case "running example (alias)" `Quick test_running_example_alias;
    Alcotest.test_case "ternary" `Quick test_ternary;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "printer smoke" `Quick test_printer_roundtrip_smoke;
  ]
