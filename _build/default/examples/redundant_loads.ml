(* Case study: redundant load elimination via versioning (paper SV-B).

   The loop reloads src[i] again and again because the stores to dst in
   between *might* alias it.  Static analysis cannot prove otherwise
   (plain pointer parameters), so the baseline keeps every load.  The
   versioning framework makes the loads of each group independent under
   a run-time disjointness check; the group then collapses onto its
   leader, and the whole loop is guarded by one hoisted check with a
   scalar clone as the fallback.

     dune exec examples/redundant_loads.exe
*)

open Fgv_pssa
module P = Fgv_passes

let source =
  {|
  kernel smooth(float* src, float* dst, int n) {
    for (int i = 1; i < n - 1; i = i + 1) {
      float a = src[i];
      dst[i] = a * 0.5;
      float b = src[i];
      dst[i] = dst[i] + b * 0.25;
      float c = src[i];
      dst[i] = dst[i] + c * 0.25;
    }
  }
|}

let len = 64

let fresh_mem () =
  Array.init (2 * len) (fun i -> Value.VFloat (Float.of_int (i mod 9) *. 0.5))

let run name pipeline ~src ~dst =
  let f = Fgv_frontend.Lower_ast.compile source in
  pipeline f;
  let out =
    Interp.run f
      ~args:[ Value.VInt src; Value.VInt dst; Value.VInt len ]
      ~mem:(fresh_mem ())
  in
  Printf.printf "  %-12s loads=%4d  cost=%6.0f\n" name
    out.Interp.counters.Interp.loads
    (Interp.cost out.Interp.counters);
  out

let () =
  print_endline "redundant load elimination (src and dst may alias)";
  print_endline "disjoint pointers (fast path):";
  let base = run "baseline" (fun f -> ignore (P.Pipelines.rle_baseline f)) ~src:0 ~dst:len in
  let rle = run "RLE+version" (fun f -> ignore (P.Pipelines.rle_pipeline f)) ~src:0 ~dst:len in
  assert (Interp.equivalent base rle);
  Printf.printf "  -> %.1f%% of dynamic loads eliminated, %.2fx faster\n\n"
    (100.0
    *. Float.of_int (base.Interp.counters.Interp.loads - rle.Interp.counters.Interp.loads)
    /. Float.of_int base.Interp.counters.Interp.loads)
    (Interp.cost base.Interp.counters /. Interp.cost rle.Interp.counters);
  print_endline "overlapping pointers (checks fail, fallback):";
  let base = run "baseline" (fun f -> ignore (P.Pipelines.rle_baseline f)) ~src:0 ~dst:4 in
  let rle = run "RLE+version" (fun f -> ignore (P.Pipelines.rle_pipeline f)) ~src:0 ~dst:4 in
  if Interp.equivalent base rle then
    print_endline "  -> identical results: the fallback preserved the aliasing semantics"
  else failwith "MISMATCH"
