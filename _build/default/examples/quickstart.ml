(* Quickstart: the paper's running example (Fig. 1), end to end.

   Builds the function with the mini-C frontend, asks the versioning
   framework to make the two stores to Y independent, prints the
   inferred (nested) plan and the materialized program, and runs both
   versions on aliasing and non-aliasing inputs to show they behave
   identically while the fast path executes when the pointers are
   disjoint.

     dune exec examples/quickstart.exe
*)

open Fgv_pssa
module V = Fgv_versioning

let source =
  {|
  kernel fig1(float* X, float* Y) {
    Y[0] = 0.0;
    if (X[0] != 0.0) { cold_func(); }
    Y[1] = 0.0;
  }
|}

let stores f =
  List.filter_map
    (fun item ->
      match item with
      | Ir.I v -> (
        match (Ir.inst f v).Ir.kind with
        | Ir.Store _ -> Some (Ir.NI v)
        | _ -> None)
      | Ir.L _ -> None)
    f.Ir.fbody

let run_case f ~x_addr ~y_addr =
  let mem = Array.init 8 (fun _ -> Value.VFloat 1.0) in
  let out =
    Interp.run f ~args:[ Value.VInt x_addr; Value.VInt y_addr ] ~mem
  in
  Printf.printf "  X=%d Y=%d:  cold_func calls = %d, skipped insts = %d\n"
    x_addr y_addr
    (List.length out.Interp.call_trace)
    out.Interp.counters.Interp.skipped

let () =
  let original = Fgv_frontend.Lower_ast.compile source in
  print_endline "--- original program (predicated SSA) ---";
  Printer.print original;

  let f = Fgv_frontend.Lower_ast.compile source in
  let session = V.Api.create f Ir.Rtop in
  (match V.Api.request_independence session (stores f) with
  | None -> failwith "versioning infeasible?!"
  | Some plan ->
    print_endline "--- inferred nested versioning plan (cf. Fig. 12) ---";
    print_string (V.Plan.to_string session.V.Api.s_graph plan));
  ignore (V.Api.materialize session);

  print_endline "--- versioned program (cf. Fig. 15b) ---";
  Printer.print f;

  print_endline "--- lowered to SSA with control flow (cf. Fig. 15c) ---";
  print_string (Fgv_cfg.Cir.to_string (Fgv_cfg.Lower.lower f));

  print_endline "--- behaviour (original vs. versioned) ---";
  print_endline " original:";
  run_case original ~x_addr:4 ~y_addr:1;
  run_case original ~x_addr:3 ~y_addr:3;
  print_endline " versioned:";
  run_case f ~x_addr:4 ~y_addr:1;
  (* no alias: fast path *)
  run_case f ~x_addr:3 ~y_addr:3;
  (* X = Y: checks fail, fallback path preserves the original semantics *)
  print_endline "done."
