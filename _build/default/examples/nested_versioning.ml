(* Nested versioning (paper SIII-B): when the run-time checks themselves
   depend on the code being versioned, the framework infers a secondary
   plan that makes the checks computable first.

   This example requests independence of two stores separated by a
   conditional call whose condition is loaded from possibly-aliasing
   memory — the exact shape of the paper's running example — and also a
   deeper variant where the condition chain is longer, producing a
   secondary plan whose own conditions need hoisting.

     dune exec examples/nested_versioning.exe
*)

open Fgv_pssa
module V = Fgv_versioning

let stores f =
  List.filter_map
    (fun item ->
      match item with
      | Ir.I v -> (
        match (Ir.inst f v).Ir.kind with
        | Ir.Store _ -> Some (Ir.NI v)
        | _ -> None)
      | Ir.L _ -> None)
    f.Ir.fbody

let demo name source =
  Printf.printf "=== %s ===\n" name;
  let f = Fgv_frontend.Lower_ast.compile source in
  let session = V.Api.create f Ir.Rtop in
  (match V.Api.request_independence session (stores f) with
  | None -> print_endline "infeasible"
  | Some plan ->
    let rec depth (p : V.Plan.t) =
      1 + List.fold_left (fun a s -> max a (depth s)) 0 p.V.Plan.p_secondaries
    in
    Printf.printf "plan depth: %d level(s) of versioning\n" (depth plan);
    print_string (V.Plan.to_string session.V.Api.s_graph plan);
    ignore (V.Api.materialize session);
    (match Verifier.verify_or_message f with
    | None -> ()
    | Some m -> failwith m);
    (* behavioural check under aliasing and non-aliasing inputs *)
    let reference = Fgv_frontend.Lower_ast.compile source in
    List.iter
      (fun args ->
        let mem () = Array.init 16 (fun i -> Value.VFloat (Float.of_int i)) in
        let a = Interp.run reference ~args ~mem:(mem ()) in
        let b = Interp.run f ~args ~mem:(mem ()) in
        if not (Interp.equivalent a b) then failwith "behaviour changed!")
      [ [ Value.VInt 8; Value.VInt 1 ]; [ Value.VInt 2; Value.VInt 2 ];
        [ Value.VInt 3; Value.VInt 2 ] ];
    print_endline "verified: identical behaviour on aliasing and disjoint inputs");
  print_newline ()

let () =
  demo "running example (one secondary level)"
    {|
    kernel fig1(float* X, float* Y) {
      Y[0] = 0.0;
      if (X[0] != 0.0) { cold_func(); }
      Y[1] = 0.0;
    }
  |};
  demo "longer condition chain"
    {|
    kernel deep(float* X, float* Y) {
      Y[0] = 1.0;
      float t = X[0] * 2.0 + X[1];
      if (t > 3.0) { cold_func(); }
      Y[1] = 2.0;
    }
  |}
