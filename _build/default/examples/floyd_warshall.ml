(* Case study: vectorizing floyd-warshall (paper SV-A2, Fig. 17/18).

   The kernel updates `path` in place, so the write to path[i][j] may
   conflict with the reads of path[k][j] — but only on iterations where
   the rows actually coincide.  Classic loop versioning cannot express
   that (its upfront whole-range checks always fail), so neither our
   LLVM-style baseline nor static SLP vectorizes the loop.  Fine-grained
   versioning checks the conflict at run time and runs vector code on
   the safe iterations.

     dune exec examples/floyd_warshall.exe
*)

open Fgv_pssa
module P = Fgv_passes

let n = 12

let source =
  {|
  kernel floyd(float* path, int n) {
    for (int kk = 0; kk < n; kk = kk + 1) {
      for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
          float alt = path[i * n + kk] + path[kk * n + j];
          path[i * n + j] = path[i * n + j] < alt ? path[i * n + j] : alt;
        }
      }
    }
  }
|}

let fresh_mem () =
  Array.init (n * n) (fun i -> Value.VFloat (Float.of_int ((i * 7 mod 23) + 1)))

let run name pipeline =
  let f = Fgv_frontend.Lower_ast.compile_no_restrict source in
  pipeline f;
  let out = Interp.run f ~args:[ Value.VInt 0; Value.VInt n ] ~mem:(fresh_mem ()) in
  let c = out.Interp.counters in
  Printf.printf "%-18s cost=%8.0f  vector stores=%4d  scalar stores=%4d\n" name
    (Interp.cost c) c.Interp.vector_stores c.Interp.stores;
  out

let () =
  Printf.printf "floyd-warshall, %dx%d, in-place shortest paths\n\n" n n;
  let base = run "scalar -O3" (fun f -> ignore (P.Pipelines.o3_novec f)) in
  let o3 = run "classic versioning" (fun f -> ignore (P.Pipelines.o3 f)) in
  let sv = run "SLP (static)" (fun f -> ignore (P.Pipelines.sv f)) in
  let svv = run "SLP + versioning" (fun f -> ignore (P.Pipelines.sv_versioning f)) in
  print_newline ();
  (* all four must agree on the shortest paths *)
  List.iter
    (fun (name, out) ->
      if not (Interp.equivalent base out) then
        failwith ("MISMATCH in " ^ name))
    [ ("classic", o3); ("slp", sv); ("slp+v", svv) ];
  Printf.printf "all configurations compute identical shortest paths\n";
  Printf.printf "speedup of SLP+versioning over scalar: %.2fx\n"
    (Interp.cost base.Interp.counters /. Interp.cost svv.Interp.counters);
  Printf.printf
    "(classic loop versioning runs %d vector stores: its upfront checks \
     always fail)\n"
    o3.Interp.counters.Interp.vector_stores
