examples/quickstart.ml: Array Fgv_cfg Fgv_frontend Fgv_pssa Fgv_versioning Interp Ir List Printer Printf Value
