examples/quickstart.mli:
