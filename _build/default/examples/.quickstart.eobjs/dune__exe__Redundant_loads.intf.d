examples/redundant_loads.mli:
