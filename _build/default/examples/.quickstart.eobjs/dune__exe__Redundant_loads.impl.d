examples/redundant_loads.ml: Array Fgv_frontend Fgv_passes Fgv_pssa Float Interp Printf Value
