examples/nested_versioning.mli:
