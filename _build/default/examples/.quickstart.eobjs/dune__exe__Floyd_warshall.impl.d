examples/floyd_warshall.ml: Array Fgv_frontend Fgv_passes Fgv_pssa Float Interp List Printf Value
