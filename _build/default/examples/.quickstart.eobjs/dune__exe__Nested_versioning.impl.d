examples/nested_versioning.ml: Array Fgv_frontend Fgv_pssa Fgv_versioning Float Interp Ir List Printf Value Verifier
