examples/floyd_warshall.mli:
