(** The framework's client interface — the two functions the paper's
    SIV describes (plan inference, plan materialization) plus session
    plumbing.

    A session binds a function and one region (the function body, or one
    loop body).  Clients request independence of node groups; accepted
    plans accumulate in the session and are lowered together by
    {!materialize}. *)

open Fgv_pssa
open Fgv_analysis

type session = {
  s_func : Ir.func;
  s_region : Ir.region;
  s_scev : Scev.t;
  s_graph : Depgraph.t;  (** the region's condition-labeled dependence graph *)
  mutable s_plans : Plan.t list;
  s_condopt : Condopt.config;
  s_enclosing : Ir.loop_id list;
      (** loops enclosing the region, innermost first (promotion targets) *)
}

val create :
  ?condopt:Condopt.config -> ?scev:Scev.t -> Ir.func -> Ir.region -> session
(** Build a session (SCEV + dependence graph) for one region.  [?scev]
    reuses a caller's analysis of the same, unmodified function instead
    of running it again. *)

val node_of_value : session -> Ir.value_id -> Ir.node option
(** Region-level node containing a value (the value's own instruction, or
    the sibling loop it lives in). *)

val already_independent : session -> Ir.node list -> bool
(** Pairwise independent without any versioning? *)

val request_independence :
  ?record:bool -> session -> Ir.node list -> Plan.t option
(** Paper interface function 1: infer (and by default record) a plan
    making the nodes pairwise independent; conditions are optimized per
    the session's {!Condopt.config}.  [None] = infeasible. *)

val request_separation :
  ?record:bool ->
  session ->
  nodes:Ir.node list ->
  input_nodes:Ir.node list ->
  Plan.t option
(** The general form: no node of [nodes] depends on [input_nodes]. *)

val record_plan : session -> Plan.t -> unit
(** Record a plan previously obtained with [~record:false]. *)

val merge_plans : Ir.func -> Plan.t list -> Plan.t list
(** Merge secondary-free plans whose condition sets are equivalent
    (modulo constant shifts) so they share one check; per-plan
    independence guarantees are preserved as explicit scope pairs. *)

val union_plans :
  Ir.func -> extra_nodes:Ir.node list -> Plan.t list -> Plan.t option
(** Union plans into a single plan guarded by all their conditions
    (coarser: any condition true sends everything to the fallback).
    [extra_nodes] are versioned alongside — e.g. every member of every
    SLP pack, keeping the check-passing path purely rewritten code. *)

val materialize :
  ?loop_upgrade:bool -> session -> (Ir.value_id -> Ir.value_id) option
(** Paper interface function 2: lower every recorded plan.  With
    [loop_upgrade] and a loop-body region, plans whose conditions are
    loop-invariant are lifted to loop-granularity versioning (one check
    guards the whole loop, whose clone is the fallback).

    Returns [None] if any plan could not be materialized — its
    independence guarantee was then NOT established.  On success the
    returned substitution maps each versioned value to its outermost
    versioning phi (see {!Materialize.run}); clients redirecting uses to
    a versioned value must redirect to its image under the
    substitution. *)

val pending_plans : session -> Plan.t list
(** Plans recorded so far, oldest first. *)
