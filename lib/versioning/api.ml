(* The two-function interface the paper describes (SIV): versioning-plan
   inference and plan materialization, over one region of a function.

   A client builds a session, asks (possibly repeatedly) for groups of
   instructions or loops to be made independent, and finally materializes
   every accepted plan at once. *)

open Fgv_pssa
open Fgv_analysis
module Q = Fgv_incremental.Engine

type session = {
  s_func : Ir.func;
  s_region : Ir.region;
  s_scev : Scev.t;
  s_graph : Depgraph.t;
  mutable s_plans : Plan.t list;
  s_condopt : Condopt.config;
  (* loops enclosing the region, innermost first: what condition
     promotion widens out of *)
  s_enclosing : Ir.loop_id list;
}

(* Plan inference as registered queries (DESIGN §17): the inferred plan
   is a pure function of the dependence graph — itself a pure function
   of the function content and the region — and of the requested node
   sets, so the memo key is region + node ids.  Condition optimization
   runs downstream of the memo (it depends on the session's condopt
   config, which is not part of the key). *)
let infer_nodes_q : Plan.t option Q.query = Q.register "versioning.plan_nodes"

let infer_sep_q : Plan.t option Q.query = Q.register "versioning.plan_separation"

let node_key = function
  | Ir.NI v -> "i" ^ string_of_int v
  | Ir.NL l -> "l" ^ string_of_int l

let nodes_key nodes = String.concat "," (List.map node_key nodes)

let create ?(condopt = Condopt.default_config) ?scev (f : Ir.func)
    (region : Ir.region) : session =
  (* callers that already ran SCEV on the unmodified function (e.g. the
     SLP packer) pass it in rather than paying a second analysis;
     otherwise sessions share one SCEV through the query engine *)
  let scev = match scev with Some s -> s | None -> Queries.scev f in
  let graph = Queries.depgraph ~scev f region in
  let chain = Ir.region_chain f region in
  let enclosing =
    List.rev
      (List.filter_map
         (function Ir.Rloop l -> Some l | Ir.Rtop -> None)
         chain)
  in
  { s_func = f; s_region = region; s_scev = scev; s_graph = graph;
    s_plans = []; s_condopt = condopt; s_enclosing = enclosing }

(* Region-level node that contains a value (the value itself, or the
   sibling loop it lives in). *)
let node_of_value s (v : Ir.value_id) : Ir.node option =
  Depcond.def_item s.s_graph.Depgraph.g_ctx v

(* Are the nodes already pairwise independent (no versioning needed)? *)
let already_independent s (nodes : Ir.node list) : bool =
  let idx = List.map (Depgraph.node_index s.s_graph) nodes in
  not (Depgraph.depends_on s.s_graph ~excluded:(fun _ -> false) idx idx)

(* Paper interface function 1: infer a versioning plan that makes the
   given nodes pairwise independent.  On success the plan is recorded in
   the session (call [materialize] to lower all recorded plans); [None]
   means versioning is infeasible. *)
let request_independence ?(record = true) s (nodes : Ir.node list) :
    Plan.t option =
  match
    Q.get infer_nodes_q s.s_func
      ~key:(Queries.region_key s.s_region ^ ";" ^ nodes_key nodes)
      (fun () -> Plan.infer_for_nodes s.s_graph nodes)
  with
  | None -> None
  | Some plan ->
    let plan =
      Condopt.optimize_plan ~config:s.s_condopt s.s_scev
        ~enclosing:s.s_enclosing plan
    in
    if record && not (Plan.is_trivial plan) then s.s_plans <- plan :: s.s_plans;
    Some plan

(* Make [nodes] independent of [input_nodes] (the general form). *)
let request_separation ?(record = true) s ~(nodes : Ir.node list)
    ~(input_nodes : Ir.node list) : Plan.t option =
  match
    Q.get infer_sep_q s.s_func
      ~key:
        (Queries.region_key s.s_region ^ ";" ^ nodes_key nodes ^ "|"
       ^ nodes_key input_nodes)
      (fun () -> Plan.infer s.s_graph ~nodes ~input_nodes)
  with
  | None -> None
  | Some plan ->
    let plan =
      Condopt.optimize_plan ~config:s.s_condopt s.s_scev
        ~enclosing:s.s_enclosing plan
    in
    if record && not (Plan.is_trivial plan) then s.s_plans <- plan :: s.s_plans;
    Some plan

(* Record a plan obtained with [record:false] (e.g. after a client's own
   acceptance logic ran). *)
let record_plan s (plan : Plan.t) =
  if not (Plan.is_trivial plan) then s.s_plans <- plan :: s.s_plans

(* Plans without secondaries whose condition sets are equal can share a
   single check and a single clone generation: merge their node sets.
   (SLP tends to produce many such plans — one per pack — whose
   conditions coincide after redundant-condition elimination.) *)
let merge_plans (f : Ir.func) (plans : Plan.t list) : Plan.t list =
  let mergeable, rest =
    List.partition (fun p -> p.Plan.p_secondaries = []) plans
  in
  (* the independence guarantee is per plan (its nodes vs its inputs);
     flatten it into explicit pairs before merging so the union does not
     claim independence across plans *)
  let explicit_pairs (p : Plan.t) =
    let mems node =
      Ir.memory_insts f (match node with Ir.NI v -> Ir.I v | Ir.NL l -> Ir.L l)
    in
    List.concat_map
      (fun a_node ->
        List.concat_map
          (fun b_node ->
            if a_node = b_node then []
            else
              List.concat_map
                (fun a ->
                  List.filter_map
                    (fun b -> if a <> b then Some (a, b) else None)
                    (mems b_node))
                (mems a_node))
          p.Plan.p_inputs)
      p.Plan.p_nodes
    @ p.Plan.p_scope_pairs
  in
  (* two condition sets are interchangeable when every atom has an
     exactly equivalent counterpart (redundant-condition-elimination
     equivalence is truth-preserving, SIV-A) *)
  let conds_equiv c1 c2 =
    List.length c1 = List.length c2
    && List.for_all (fun a -> List.exists (Condopt.atoms_equivalent a) c2) c1
    && List.for_all (fun b -> List.exists (Condopt.atoms_equivalent b) c1) c2
  in
  let merged = ref [] in
  List.iter
    (fun p ->
      let key = Plan.dedup_atoms p.Plan.p_conds in
      let pairs = explicit_pairs p in
      match
        List.find_opt (fun q -> conds_equiv q.Plan.p_conds key) !merged
      with
      | None ->
        merged :=
          { p with Plan.p_conds = key; p_inputs = []; p_scope_pairs = pairs }
          :: !merged
      | Some q ->
        merged :=
          {
            q with
            Plan.p_nodes = List.sort_uniq compare (p.Plan.p_nodes @ q.Plan.p_nodes);
            p_scope_pairs = List.sort_uniq compare (pairs @ q.Plan.p_scope_pairs);
          }
          :: List.filter (fun r -> r != q) !merged)
    mergeable;
  List.rev !merged @ rest

(* Union a set of plans into a single plan guarded by the union of their
   conditions (any condition true sends *everything* to the fallback).
   Coarser than per-plan checks but sound: each constituent's conditions
   are included, so its independence guarantee is active whenever the
   union check passes.  [extra_nodes] are versioned alongside (a client
   uses this for nodes it rewrites together with the planned ones, e.g.
   every member of every SLP pack, so that the fast path contains only
   the rewritten code and the fallback only the clones). *)
let union_plans (f : Ir.func) ~(extra_nodes : Ir.node list) (plans : Plan.t list)
    : Plan.t option =
  let plans = List.filter (fun p -> not (Plan.is_trivial p)) plans in
  match plans with
  | [] -> None
  | _ ->
    let explicit_pairs (p : Plan.t) =
      let mems node =
        Ir.memory_insts f
          (match node with Ir.NI v -> Ir.I v | Ir.NL l -> Ir.L l)
      in
      List.concat_map
        (fun a_node ->
          List.concat_map
            (fun b_node ->
              if a_node = b_node then []
              else
                List.concat_map
                  (fun a ->
                    List.filter_map
                      (fun b -> if a <> b then Some (a, b) else None)
                      (mems b_node))
                  (mems a_node))
            p.Plan.p_inputs)
        p.Plan.p_nodes
      @ p.Plan.p_scope_pairs
    in
    let conds =
      Condopt.eliminate_redundant
        (Plan.dedup_atoms (List.concat_map (fun p -> p.Plan.p_conds) plans))
    in
    (* the unified check reads the conditions' operand chains before any
       versioned code; a node on those chains must therefore not be
       versioned by the union (it stays unversioned and reads versioning
       phis where needed, which is correct on both paths) *)
    let protected_values = Hashtbl.create 16 in
    let rec close v =
      if not (Hashtbl.mem protected_values v) then begin
        Hashtbl.replace protected_values v ();
        match Hashtbl.find_opt f.Ir.arena v with
        | Some i -> List.iter close (Ir.all_operands i)
        | None -> ()
      end
    in
    List.iter close (List.concat_map Depcond.atom_operands conds);
    let protected_node = function
      | Ir.NI v -> Hashtbl.mem protected_values v
      | Ir.NL l ->
        List.exists (Hashtbl.mem protected_values)
          (Ir.defined_values f (Ir.L l))
    in
    Some
      {
        Plan.p_nodes =
          List.sort_uniq compare
            (extra_nodes @ List.concat_map (fun p -> p.Plan.p_nodes) plans)
          |> List.filter (fun n -> not (protected_node n));
        p_inputs = [];
        p_conds = conds;
        p_cut_edge_ids = [];
        p_secondaries = List.concat_map (fun p -> p.Plan.p_secondaries) plans;
        p_scope_pairs =
          List.sort_uniq compare (List.concat_map explicit_pairs plans);
      }

(* Paper interface function 2: materialize every recorded plan.

   With [loop_upgrade] (and a loop-body region), plans whose conditions
   are all loop-invariant and that have no secondaries are lifted to
   *loop-granularity* versioning in the parent region: one check guards
   the whole loop, whose clone is the fallback, instead of per-iteration
   dual paths.  Loops are first-class versionable nodes in the
   framework, so this is just a different choice of N. *)
let materialize ?(loop_upgrade = false) (s : session) :
    (Ir.value_id -> Ir.value_id) option =
  if s.s_plans = [] then Some (fun v -> v)
  else begin
    let f = s.s_func in
    let plans = merge_plans f (List.rev s.s_plans) in
    let upgraded, direct =
      match s.s_region with
      | Ir.Rloop lid when loop_upgrade ->
        let order = Ir.compute_order f in
        let loop_start = order (Ir.NL lid) in
        let invariant p =
          p.Plan.p_secondaries = []
          && List.for_all
               (fun a ->
                 List.for_all
                   (fun v -> order (Ir.NI v) < loop_start)
                   (Depcond.atom_operands a))
               p.Plan.p_conds
        in
        let up, rest = List.partition invariant plans in
        (match up with
        | [] -> (None, rest)
        | _ ->
          let conds =
            Condopt.eliminate_redundant
              (Plan.dedup_atoms (List.concat_map (fun p -> p.Plan.p_conds) up))
          in
          let pairs =
            List.sort_uniq compare
              (List.concat_map (fun p -> p.Plan.p_scope_pairs) up)
          in
          ( Some
              ( lid,
                {
                  Plan.p_nodes = [ Ir.NL lid ];
                  p_inputs = [];
                  p_conds = conds;
                  p_cut_edge_ids = [];
                  p_secondaries = [];
                  p_scope_pairs = pairs;
                } ),
            rest ))
      | _ -> (None, plans)
    in
    let ok1, subst1 =
      match upgraded with
      | Some (lid, loop_plan) ->
        let parents = Ir.parent_regions f in
        let parent =
          Option.value ~default:Ir.Rtop (Hashtbl.find_opt parents (Ir.NL lid))
        in
        Materialize.run f parent [ loop_plan ]
      | None -> (true, fun v -> v)
    in
    let ok2, subst2 =
      if direct <> [] then Materialize.run f s.s_region direct
      else (true, fun v -> v)
    in
    s.s_plans <- [];
    if ok1 && ok2 then
      Some
        (fun v ->
          let v' = subst1 v in
          if v' <> v then v' else subst2 v)
    else None
  end

let pending_plans s = List.rev s.s_plans
