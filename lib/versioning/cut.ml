(* Dependence-graph cuts by reduction to min-cut (Fig. 8 of the paper).

   Given node sets S and T of the dependence graph, find a set of
   *conditional* dependence edges whose removal makes every node of T
   unreachable from S along dependence edges.  Construction:

   - a DFS from S discovers the relevant subgraph;
   - every discovered node is split into an in-node and an out-node
     joined by a high-capacity auxiliary edge; a dependence edge i -> j
     becomes out(i) -> in(j);
   - source -> out(s) for s in S, in(t) -> sink for t in T;
   - conditional edges have capacity 1 (or a profile weight), everything
     else n+1 where n is the number of unconditional edges discovered.

   If the max-flow exceeds n, separating S from T would require cutting
   an unconditional dependence: versioning is infeasible. *)

open Fgv_analysis
module Ir = Fgv_pssa.Ir
module Tm = Fgv_support.Telemetry
module Tr = Fgv_support.Trace

(* Remark anchor for a cut query: the region's function and loop. *)
let cut_anchor (g : Depgraph.t) =
  let ctx = g.Depgraph.g_ctx in
  Tr.anchor
    ?loop:(match ctx.Depcond.cregion with
          | Ir.Rloop l -> Some l
          | Ir.Rtop -> None)
    ctx.Depcond.cf.Ir.fname

type result = {
  cut_edges : Depgraph.edge list; (* conditional edges to sever *)
  source_nodes : int list;
  (* dependence-graph nodes on the source side of the cut that can still
     reach T through the (uncut) dependence graph; these must be
     versioned together with the input nodes (Fig. 13 line 31) *)
}

let already_independent = { cut_edges = []; source_nodes = [] }

(* [weight] lets profile information bias the cut toward checking
   dependencies that are unlikely to occur (paper SIII-A, last
   paragraph); the default weight 1 minimizes the number of checks. *)
let find ?(weight = fun (_ : Depgraph.edge) -> 1) (g : Depgraph.t)
    ~(excluded : int -> bool) ~(s : int list) ~(t : int list) : result option =
  Tr.with_span ~cat:"versioning" "cut.find" @@ fun () ->
  let succ = Depgraph.dependence_succ g ~excluded in
  let n_nodes = Array.length g.Depgraph.nodes in
  (* 1. discover the subgraph reachable from S *)
  let discovered = Array.make n_nodes false in
  let rec dfs v =
    if not discovered.(v) then begin
      discovered.(v) <- true;
      List.iter (fun e -> dfs e.Depgraph.e_dst) succ.(v)
    end
  in
  List.iter dfs s;
  Tm.incr "cut.queries";
  Tm.incr ~by:(Array.fold_left (fun a d -> if d then a + 1 else a) 0 discovered)
    "cut.graph_nodes";
  if not (Depgraph.depends_on g ~excluded s t) then begin
    Tm.incr "cut.already_independent";
    Some already_independent
  end
  else begin
    (* 2. build the flow network over discovered nodes *)
    let edges_in_scope =
      List.filter
        (fun e ->
          (not (excluded e.Depgraph.e_id))
          && discovered.(e.Depgraph.e_src)
          && discovered.(e.Depgraph.e_dst))
        (Array.to_list g.Depgraph.edges)
    in
    let n_uncond =
      List.length (List.filter (fun e -> e.Depgraph.e_cond = None) edges_in_scope)
    in
    let total_weight =
      List.fold_left
        (fun acc e ->
          acc + match e.Depgraph.e_cond with None -> 0 | Some _ -> weight e)
        0 edges_in_scope
    in
    let big = n_uncond + total_weight + 1 in
    let in_node k = 2 * k and out_node k = (2 * k) + 1 in
    let net = Fgv_graph.Maxflow.create (2 * n_nodes) in
    let source = Fgv_graph.Maxflow.add_node net in
    let sink = Fgv_graph.Maxflow.add_node net in
    Array.iteri
      (fun k disc ->
        if disc then
          Fgv_graph.Maxflow.add_edge net ~src:(in_node k) ~dst:(out_node k) ~cap:big)
      discovered;
    List.iter
      (fun e ->
        let cap =
          match e.Depgraph.e_cond with None -> big | Some _ -> max 1 (weight e)
        in
        Fgv_graph.Maxflow.add_edge ~tag:e.Depgraph.e_id net
          ~src:(out_node e.Depgraph.e_src) ~dst:(in_node e.Depgraph.e_dst) ~cap)
      edges_in_scope;
    List.iter
      (fun k ->
        if discovered.(k) then
          Fgv_graph.Maxflow.add_edge net ~src:source ~dst:(out_node k) ~cap:big)
      (List.sort_uniq compare s);
    List.iter
      (fun k ->
        if discovered.(k) then
          Fgv_graph.Maxflow.add_edge net ~src:(in_node k) ~dst:sink ~cap:big)
      (List.sort_uniq compare t);
    let flow = Fgv_graph.Maxflow.solve net ~source ~sink in
    Tm.incr ~by:(Fgv_graph.Maxflow.augmenting_paths net) "cut.maxflow_augmenting";
    (* a cut consisting solely of conditional edges costs at most
       [total_weight]; more flow means an unconditional dependence must
       be severed, so versioning is infeasible *)
    if flow > total_weight then begin
      Tm.incr "cut.infeasible";
      Tr.remark (cut_anchor g) (Tr.Cut_infeasible { flow });
      None
    end
    else begin
      (* 3. recover the cut *)
      let cut_ids = Fgv_graph.Maxflow.cut_edge_tags net ~source in
      let cut_edges =
        List.filter (fun e -> List.mem e.Depgraph.e_id cut_ids)
          (Array.to_list g.Depgraph.edges)
      in
      assert (List.for_all (fun e -> e.Depgraph.e_cond <> None) cut_edges);
      let side = Fgv_graph.Maxflow.source_side net ~source in
      (* nodes on the source side that can reach T in the (uncut)
         dependence graph, excluding trivial self-reachability *)
      let reaches_t =
        let target = Array.make n_nodes false in
        List.iter (fun k -> target.(k) <- true) t;
        let memo = Array.make n_nodes (-1) in
        (* -1 unknown, 0 no, 1 yes *)
        let rec reach v =
          if memo.(v) >= 0 then memo.(v) = 1
          else begin
            memo.(v) <- 0;
            let r =
              List.exists
                (fun e -> target.(e.Depgraph.e_dst) || reach e.Depgraph.e_dst)
                succ.(v)
            in
            if r then memo.(v) <- 1;
            r
          end
        in
        reach
      in
      let source_nodes =
        List.filter
          (fun k -> discovered.(k) && side.(out_node k) && reaches_t k)
          (List.init n_nodes (fun k -> k))
      in
      Tm.incr ~by:(List.length cut_edges) "cut.edges";
      Tr.remark (cut_anchor g)
        (Tr.Cut_found { edges = List.length cut_edges; capacity = flow });
      Some { cut_edges; source_nodes }
    end
  end
