(* Materialization of versioning plans (Fig. 14 of the paper).

   Plans are lowered level by level, deepest secondaries first.  At each
   level:

   A. for every unique set of versioning conditions, the instructions
      computing the run-time check are emitted immediately before the
      first versioned node of that set.  When the check reads values
      defined further down, it computes over a PRIVATE CLONE of their
      register chain rather than moving original code; any memory the
      cloned chain reads "too early" is covered by adding the crossing
      dependence's own condition to the check (see phase A below for the
      correctness argument);
   B. every versioned node is cloned; the original's predicate is
      strengthened with the check and the clone's with its negation;
      a versioning phi joins the two values (for loops, one phi per
      live-out eta);
   C. uses are redirected per Fig. 14 lines 44-60: an original user
      versioned under a superset of conditions keeps the original value;
      a cloned user whose conditions are a subset of the value's uses
      the cloned value; every other user reads the versioning phi;
      phi arms whose gates contradict the asserted conditions are
      dropped on the success side (Fig. 14's last step);
   D. scoped-independence facts (the paper's scoped-noalias metadata,
      SIV-B) are recorded so later analyses see the established
      independence; dead versioning phis are left to the pipeline DCE.

   Within one plan tree the parent's conditions deliberately read the
   original (check-passing side) values — the parent check's outcome is
   irrelevant whenever a secondary check failed.  Across independent
   plan trees, values versioned earlier are substituted with their
   versioning phis. *)

open Fgv_pssa
open Fgv_analysis
module Tm = Fgv_support.Telemetry
module Tr = Fgv_support.Trace

(* Remark anchor for materialization: the region's function and loop. *)
let mat_anchor (f : Ir.func) (region : Ir.region) =
  Tr.anchor
    ?loop:(match region with Ir.Rloop l -> Some l | Ir.Rtop -> None)
    f.Ir.fname

(* Versioning phis created on this domain; [run] snapshots it around
   each plan tree to report per-plan phi counts.  Domain-local so that
   concurrent materializations on other domains cannot bleed into the
   delta (which would make the remark stream schedule-dependent). *)
let phis_created_key : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

let phis_created () = Domain.DLS.get phis_created_key

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------ emission *)

type emitter = { ef : Ir.func; mutable acc : Ir.item list (* reversed *) }

let emit ?(name = "") em kind ty =
  let i = Ir.new_inst ~name em.ef ~kind ~ty ~pred:Pred.tru in
  em.acc <- Ir.I i.id :: em.acc;
  i.id

let emitted em = List.rev em.acc

let materialize_pred em (p : Pred.t) : Ir.value_id =
  let rec go p =
    match Pred.view p with
    | Ptrue -> emit em (Ir.Const (Cbool true)) Tbool
    | Pfalse -> emit em (Ir.Const (Cbool false)) Tbool
    | Plit { v; positive } ->
      if positive then v
      else
        let fls = emit em (Ir.Const (Cbool false)) Tbool in
        emit ~name:"not" em (Ir.Cmp (Eq, v, fls)) Tbool
    | Pand ps ->
      let vs = List.map go ps in
      List.fold_left
        (fun acc v -> emit em (Ir.Binop (Band, acc, v)) Tbool)
        (List.hd vs) (List.tl vs)
    | Por ps ->
      let vs = List.map go ps in
      List.fold_left
        (fun acc v -> emit em (Ir.Binop (Bor, acc, v)) Tbool)
        (List.hd vs) (List.tl vs)
  in
  go p

let materialize_linexp em (e : Linexp.t) : Ir.value_id =
  match Linexp.terms e, Linexp.constant e with
  | [ (v, 1) ], 0 -> v
  | terms, konst ->
    let start = emit em (Ir.Const (Cint konst)) Tint in
    List.fold_left
      (fun acc (v, k) ->
        let term =
          if k = 1 then v
          else
            let kc = emit em (Ir.Const (Cint k)) Tint in
            emit em (Ir.Binop (Mul, v, kc)) Tint
        in
        emit em (Ir.Binop (Add, acc, term)) Tint)
      start terms

(* Emit code computing whether the atom (a dependence condition) holds. *)
let materialize_atom em (atom : Depcond.atom) : Ir.value_id =
  match atom with
  | Depcond.Apred p -> materialize_pred em p
  | Depcond.Aintersect (r1, r2) ->
    let lo1 = materialize_linexp em r1.Scev.lo in
    let hi1 = materialize_linexp em r1.Scev.hi in
    let lo2 = materialize_linexp em r2.Scev.lo in
    let hi2 = materialize_linexp em r2.Scev.hi in
    (* half-open overlap: lo1 < hi2 && lo2 < hi1 *)
    let c1 = emit em (Ir.Cmp (Lt, lo1, hi2)) Tbool in
    let c2 = emit em (Ir.Cmp (Lt, lo2, hi1)) Tbool in
    emit ~name:"ovl" em (Ir.Binop (Band, c1, c2)) Tbool

(* chk = true iff *none* of the conditions hold *)
let materialize_check em atoms : Ir.value_id =
  match atoms with
  | [] -> emit ~name:"chk" em (Ir.Const (Cbool true)) Tbool
  | _ ->
    let vs = List.map (materialize_atom em) atoms in
    let any =
      List.fold_left
        (fun acc v -> emit em (Ir.Binop (Bor, acc, v)) Tbool)
        (List.hd vs) (List.tl vs)
    in
    let fls = emit em (Ir.Const (Cbool false)) Tbool in
    emit ~name:"chk" em (Ir.Cmp (Eq, any, fls)) Tbool

(* ----------------------------------------------------- substitutions *)

let subst_linexp s e =
  List.fold_left
    (fun acc (v, k) -> Linexp.add acc (Linexp.scale k (Linexp.of_value (s v))))
    (Linexp.const (Linexp.constant e))
    (Linexp.terms e)

let subst_atom s = function
  | Depcond.Apred p -> Depcond.Apred (Pred.rename s p)
  | Depcond.Aintersect (r1, r2) ->
    let sr r = { Scev.lo = subst_linexp s r.Scev.lo; hi = subst_linexp s r.Scev.hi } in
    Depcond.Aintersect (sr r1, sr r2)

(* ------------------------------------------------------ item utilities *)

let item_matches node item =
  match node, item with
  | Ir.NI v, Ir.I w -> v = w
  | Ir.NL l, Ir.L m -> l = m
  | _ -> false

let index_of_node items node =
  let rec go k = function
    | [] -> None
    | item :: rest -> if item_matches node item then Some k else go (k + 1) rest
  in
  go 0 items

let insert_after_node items node new_items =
  let rec go = function
    | [] -> fail "Materialize: anchor node not found in region"
    | item :: rest ->
      if item_matches node item then item :: (new_items @ rest)
      else item :: go rest
  in
  go items

let insert_before_index items idx new_items =
  let rec go k = function
    | rest when k = idx -> new_items @ rest
    | [] -> fail "Materialize: bad insertion index"
    | item :: rest -> item :: go (k + 1) rest
  in
  go 0 items

(* ------------------------------------------------------------- a level *)

type versioned = {
  v_node : Ir.node;
  v_conds : Depcond.atom list; (* canonical *)
  v_chk : Ir.value_id;
  v_remap : (Ir.value_id, Ir.value_id) Hashtbl.t; (* orig -> clone values *)
  v_clone : Ir.item;
  (* versioned values observable at region level: the instruction itself,
     or the etas of a versioned loop; each paired with its phi if any *)
  mutable v_outs : (Ir.value_id * Ir.value_id * Ir.value_id option) list;
  (* (orig value, clone value, versioning phi) *)
}

let rec materialize_level (f : Ir.func) (region : Ir.region)
    ~(outer : Ir.value_id -> Ir.value_id) (plans : Plan.t list) :
    Ir.value_id -> Ir.value_id =
  let plans = List.filter (fun p -> not (Plan.is_trivial p)) plans in
  (* 1. deepest levels first.  [child_local] maps values versioned by the
     secondary levels to their junction phis; it is returned to *other*
     plan trees but deliberately NOT applied to this tree's own
     conditions: a parent check only matters when its secondaries'
     checks passed, so it reads the original (check-passing side)
     values, whose independence is exactly what the secondaries
     guarantee. *)
  let secondaries = List.concat_map (fun p -> p.Plan.p_secondaries) plans in
  let child_local =
    if secondaries = [] then fun (v : Ir.value_id) -> v
    else materialize_level f region ~outer secondaries
  in
  if plans = [] then child_local
  else begin
    (* 2. versioning table: node -> union of conditions (post outer
       subst) *)
    let table : (Ir.node, Depcond.atom list) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun p ->
        let atoms = List.map (subst_atom outer) p.Plan.p_conds in
        List.iter
          (fun node ->
            let cur = Option.value ~default:[] (Hashtbl.find_opt table node) in
            Hashtbl.replace table node (Plan.dedup_atoms (atoms @ cur)))
          p.Plan.p_nodes)
      plans;
    (* groups: one check per unique condition set *)
    let groups : (Depcond.atom list * Ir.node list) list =
      Hashtbl.fold (fun node conds acc -> (conds, node) :: acc) table []
      |> List.sort (fun (c1, n1) (c2, n2) ->
             (* structural atom order: interned predicate ids are
                arbitrary, so polymorphic compare is not stable here *)
             let c = List.compare Depcond.compare_atom c1 c2 in
             if c <> 0 then c else Stdlib.compare (n1 : Ir.node) n2)
      |> List.fold_left
           (fun acc (conds, node) ->
             match acc with
             | (c, ns) :: rest when c = conds -> (c, node :: ns) :: rest
             | _ -> (conds, [ node ]) :: acc)
           []
    in
    (* 3. phase A: emit each group's check before the group's first
       versioned node.

       The check may read values defined further down (e.g. the phi'd
       comparison of the running example).  Instead of moving original
       code — which would corrupt the ordering of the fallback paths —
       the check computes over a PRIVATE CLONE of the operand chain:

       - the register chain of the condition operands (everything at or
         after the insertion point) is cloned, predicates and all;
       - every cloned load that thereby reads memory before a may-write
         it originally followed contributes that dependence's condition
         to the check: if the dependence is real at run time, the check
         fails and only untouched original code executes — the clone's
         stale value is never observable;
       - an *unconditional* crossing dependence cannot be covered this
         way and aborts materialization of the plan (the caller skips
         the transformation). *)
    let chk_of_group : (Depcond.atom list, Ir.value_id) Hashtbl.t =
      Hashtbl.create 8
    in
    (* One analysis serves every group: the only mutation phase A performs
       is inserting check chains, whose instructions never may-write
       (clones of pure/load code plus the comparison network), so no
       dependence edge can involve an inserted item and every graph query
       below concerns pre-existing nodes only.  Positions are still taken
       from the refreshed item list so insertion indexes account for
       earlier groups' checks. *)
    let scev = Queries.scev f in
    let ctx = Depcond.make_ctx f scev region in
    (* the graph's edges are consulted only when a check chain reaches
       below its insertion point (a cloned load must collect the
       conditions of the dependences it crosses) — a rare shape, so the
       quadratic construction is deferred to first use *)
    let g = lazy (Queries.depgraph ~scev f region) in
    let succ =
      lazy (Depgraph.dependence_succ (Lazy.force g) ~excluded:(fun _ -> false))
    in
    List.iter
      (fun (conds, group_nodes) ->
        let items = Ir.region_items f region in
        let pos : (Ir.node, int) Hashtbl.t =
          Hashtbl.create (List.length items)
        in
        List.iteri
          (fun k item -> Hashtbl.replace pos (Ir.node_of_item item) k)
          items;
        let pos_opt node = Hashtbl.find_opt pos node in
        let insert_pos =
          List.fold_left
            (fun acc n ->
              match pos_opt n with
              | Some k -> min acc k
              | None -> fail "Materialize: versioned node not in region")
            max_int group_nodes
        in
        let chain : (Ir.value_id, unit) Hashtbl.t = Hashtbl.create 8 in
        let rec close_chain v =
          if not (Hashtbl.mem chain v) then
            match Depcond.def_item ctx v with
            | Some node -> (
              match pos_opt node with
              | Some k when k >= insert_pos -> (
                match node with
                | Ir.NL _ ->
                  fail
                    "Materialize: a check operand is defined by a loop \
                     below the insertion point"
                | Ir.NI _ ->
                  let i = Ir.inst f v in
                  (match i.kind with
                  | Ir.Call { effect = Ir.Impure | Ir.Readonly; _ } ->
                    fail "Materialize: check chain contains an opaque call"
                  | _ -> ());
                  Hashtbl.replace chain v ();
                  List.iter close_chain (Ir.all_operands i))
              | _ -> ())
            | None -> ()
        in
        List.iter close_chain (List.concat_map Depcond.atom_operands conds);
        (* memory coverage for the cloned loads, to fixpoint (the added
           atoms bring their own operand chains, which may contain more
           loads) *)
        let extra_atoms = ref [] in
        let scanned : (Ir.value_id, unit) Hashtbl.t = Hashtbl.create 8 in
        let scan_load v =
          if not (Hashtbl.mem scanned v) then begin
            Hashtbl.replace scanned v ();
            let node = Ir.NI v in
            let gg = Lazy.force g in
            let idx = Depgraph.node_index gg node in
            List.iter
              (fun e ->
                let target = gg.Depgraph.nodes.(e.Depgraph.e_dst) in
                match pos_opt target with
                | Some k when k >= insert_pos ->
                  if not (Depcond.reads_from ctx node target) then begin
                    match e.Depgraph.e_cond with
                    | Some atoms -> extra_atoms := atoms @ !extra_atoms
                    | None ->
                      fail
                        "Materialize: a check load unconditionally \
                         conflicts with code below the insertion point"
                  end
                | _ -> ())
              (Lazy.force succ).(idx)
          end
        in
        let rec saturate () =
          let before = Hashtbl.length chain in
          Hashtbl.iter
            (fun v () -> if Ir.may_read_inst (Ir.inst f v) then scan_load v)
            chain;
          List.iter close_chain
            (List.concat_map Depcond.atom_operands !extra_atoms);
          if Hashtbl.length chain <> before then saturate ()
        in
        saturate ();
        (* clone the chain in original order, then compute the check over
           the clones *)
        let remap : (Ir.value_id, Ir.value_id) Hashtbl.t = Hashtbl.create 8 in
        let subst v = Option.value ~default:v (Hashtbl.find_opt remap v) in
        let em = { ef = f; acc = [] } in
        List.iter
          (fun item ->
            match item with
            | Ir.I v when Hashtbl.mem chain v ->
              let i = Ir.inst f v in
              let c =
                Ir.new_inst ~name:(i.name ^ "_chk") f
                  ~kind:(Ir.rename_kind subst i.kind)
                  ~ty:i.ty
                  ~pred:(Pred.rename subst i.ipred)
              in
              Hashtbl.replace remap v c.id;
              em.acc <- Ir.I c.id :: em.acc
            | _ -> ())
          items;
        let checked_atoms =
          Condopt.eliminate_redundant (Plan.dedup_atoms (conds @ !extra_atoms))
          |> List.map (subst_atom subst)
        in
        let chk = materialize_check em checked_atoms in
        Tm.incr "materialize.checks_emitted";
        Tm.incr ~by:(List.length checked_atoms) "materialize.checked_atoms";
        Tm.incr ~by:(Hashtbl.length remap) "materialize.check_chain_cloned";
        Tr.remark (mat_anchor f region)
          (Tr.Check_emitted
             {
               atoms = List.length checked_atoms;
               cloned = Hashtbl.length remap;
             });
        Hashtbl.replace chk_of_group conds chk;
        let items' = insert_before_index items insert_pos (emitted em) in
        Ir.set_region_items f region items')
      groups;
    (* 4. phase B: clone and re-predicate *)
    let versioned : versioned list =
      List.concat_map
        (fun (conds, group_nodes) ->
          let chk = Hashtbl.find chk_of_group conds in
          (* process in program order so clones interleave predictably *)
          let items = Ir.region_items f region in
          let ordered =
            List.sort
              (fun a b ->
                compare (index_of_node items a) (index_of_node items b))
              group_nodes
          in
          (* An eta over a loop versioned in this same group is already
             handled as that loop's live-out (cloned eta + joining phi
             below): versioning it again as a plain instruction would
             produce a second clone still reading the *original* loop,
             and its [clone_of_value] entry would shadow the correct
             one during use redirection. *)
          let group_loops =
            List.filter_map
              (function Ir.NL l -> Some l | Ir.NI _ -> None)
              group_nodes
          in
          let ordered =
            List.filter
              (fun node ->
                match node with
                | Ir.NI v -> (
                  match (Ir.inst f v).Ir.kind with
                  | Ir.Eta { loop; _ } -> not (List.mem loop group_loops)
                  | _ -> true)
                | Ir.NL _ -> true)
              ordered
          in
          List.map
            (fun node ->
              let remap = Hashtbl.create 16 in
              let orig_item =
                match node with Ir.NI v -> Ir.I v | Ir.NL l -> Ir.L l
              in
              let clone = Ir.clone_item f remap orig_item in
              Tm.incr "materialize.nodes_versioned";
              Tm.incr ~by:(Hashtbl.length remap) "materialize.cloned_insts";
              let ok = Pred.lit chk and notok = Pred.lit ~positive:false chk in
              let v =
                {
                  v_node = node;
                  v_conds = conds;
                  v_chk = chk;
                  v_remap = remap;
                  v_clone = clone;
                  v_outs = [];
                }
              in
              (match node, clone with
              | Ir.NI ov, Ir.I cv ->
                let oi = Ir.inst f ov and ci = Ir.inst f cv in
                let base_pred = oi.ipred in
                oi.ipred <- Pred.and_ base_pred ok;
                ci.ipred <- Pred.and_ ci.ipred notok;
                let items = Ir.region_items f region in
                let items = insert_after_node items node [ clone ] in
                let phi =
                  if oi.ty = Tvoid then None
                  else begin
                    let p =
                      Ir.new_inst ~name:(oi.name ^ "_vphi") f
                        ~kind:(Ir.Phi [ (oi.ipred, ov); (ci.ipred, cv) ])
                        ~ty:oi.ty ~pred:base_pred
                    in
                    Tm.incr "materialize.versioning_phis";
                    incr (phis_created ());
                    Some p.id
                  end
                in
                let items =
                  match phi with
                  | Some p ->
                    insert_after_node items (Ir.NI cv) [ Ir.I p ]
                  | None -> items
                in
                Ir.set_region_items f region items;
                v.v_outs <- [ (ov, cv, phi) ]
              | Ir.NL ol, Ir.L cl ->
                let olp = Ir.loop f ol and clp = Ir.loop f cl in
                let base_pred = olp.lpred in
                olp.lpred <- Pred.and_ base_pred ok;
                clp.lpred <- Pred.and_ clp.lpred notok;
                let items = Ir.region_items f region in
                let items = insert_after_node items node [ clone ] in
                Ir.set_region_items f region items;
                (* live-outs: every eta over the original loop gets a
                   cloned eta over the cloned loop plus a joining phi *)
                let etas = ref [] in
                Ir.iter_insts f (fun i ->
                    match i.kind with
                    | Ir.Eta { loop; value } when loop = ol ->
                      (* skip etas created below for this same loop *)
                      if not (Hashtbl.mem remap i.id) then
                        etas := (i.id, value) :: !etas
                    | _ -> ());
                List.iter
                  (fun (eta_id, src_value) ->
                    let ei = Ir.inst f eta_id in
                    let mapped =
                      Option.value ~default:src_value
                        (Hashtbl.find_opt remap src_value)
                    in
                    let eta' =
                      Ir.new_inst ~name:(ei.name ^ "_v") f
                        ~kind:(Ir.Eta { loop = cl; value = mapped })
                        ~ty:ei.ty ~pred:ei.ipred
                    in
                    let phi =
                      Ir.new_inst ~name:(ei.name ^ "_vphi") f
                        ~kind:
                          (Ir.Phi
                             [
                               (Pred.and_ ei.ipred ok, eta_id);
                               (Pred.and_ ei.ipred notok, eta'.id);
                             ])
                        ~ty:ei.ty ~pred:ei.ipred
                    in
                    Tm.incr "materialize.versioning_phis";
                    incr (phis_created ());
                    let items = Ir.region_items f region in
                    let items =
                      insert_after_node items (Ir.NI eta_id)
                        [ Ir.I eta'.id; Ir.I phi.id ]
                    in
                    Ir.set_region_items f region items;
                    Hashtbl.replace remap eta_id eta'.id;
                    v.v_outs <- (eta_id, eta'.id, Some phi.id) :: v.v_outs)
                  !etas
              | _ -> assert false);
              v)
            ordered)
        groups
    in
    (* 5. phase C: redirect uses (Fig. 14 lines 44-60) *)
    let conds_of_value : (Ir.value_id, Depcond.atom list) Hashtbl.t =
      Hashtbl.create 32
    in
    let clone_of_value : (Ir.value_id, Ir.value_id) Hashtbl.t =
      Hashtbl.create 32
    in
    let phi_of_value : (Ir.value_id, Ir.value_id) Hashtbl.t = Hashtbl.create 32 in
    let all_phis = ref [] in
    List.iter
      (fun v ->
        List.iter
          (fun (ov, cv, phi) ->
            Hashtbl.replace conds_of_value ov v.v_conds;
            Hashtbl.replace clone_of_value ov cv;
            Option.iter
              (fun p ->
                Hashtbl.replace phi_of_value ov p;
                all_phis := p :: !all_phis)
              phi)
          v.v_outs)
      versioned;
    (* membership: value -> versioned node (original or clone side) *)
    let in_orig : (Ir.value_id, versioned) Hashtbl.t = Hashtbl.create 64 in
    let in_clone : (Ir.value_id, versioned) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun v ->
        let orig_item =
          match v.v_node with Ir.NI i -> Ir.I i | Ir.NL l -> Ir.L l
        in
        List.iter
          (fun d -> Hashtbl.replace in_orig d v)
          (Ir.defined_values f orig_item);
        List.iter
          (fun d -> Hashtbl.replace in_clone d v)
          (Ir.defined_values f v.v_clone))
      versioned;
    let subset a b = List.for_all (fun x -> List.mem x b) a in
    let users = Ir.compute_users f in
    let redirect ov =
      let conds_v = Hashtbl.find conds_of_value ov in
      let clone_v = Hashtbl.find clone_of_value ov in
      let phi_v = Hashtbl.find_opt phi_of_value ov in
      let replace_with_phi user =
        match phi_v with
        | Some p -> Ir.replace_uses_in_inst f ~user ~old_v:ov ~new_v:p
        | None -> ()
      in
      (* An original user may keep the original value only when its own
         check passing implies the value's check passed (conds_v subset
         of the user's conds).  Dually, a cloned user may use the cloned
         value only when its check *failing* implies the value's check
         failed (user's conds subset of conds_v).  Every other user reads
         the versioning phi, which is correct on both paths. *)
      List.iter
        (fun user ->
          if Some user <> phi_v then
            match Hashtbl.find_opt in_orig user, Hashtbl.find_opt in_clone user with
            | Some u, _ when subset conds_v u.v_conds ->
              () (* original user keeps the original value *)
            | _, Some u when subset u.v_conds conds_v ->
              Ir.replace_uses_in_inst f ~user ~old_v:ov ~new_v:clone_v
            | _ -> replace_with_phi user)
        (users ov);
      (* guard / continue predicates of loops *)
      Hashtbl.iter
        (fun lid lp ->
          let mentions p = List.mem ov (Pred.literals p) in
          if mentions lp.Ir.lpred || mentions lp.Ir.cont then begin
            let owner =
              List.find_opt
                (fun v ->
                  match v.v_node, v.v_clone with
                  | Ir.NL l, _ when l = lid -> true
                  | _, Ir.L l when l = lid -> true
                  | _ -> false)
                versioned
            in
            let is_clone_side =
              match owner with
              | Some v -> (match v.v_clone with Ir.L l -> l = lid | _ -> false)
              | None -> false
            in
            let new_v =
              match owner with
              | Some u when is_clone_side ->
                if subset u.v_conds conds_v then Some clone_v else phi_v
              | Some u when subset conds_v u.v_conds -> None
              | _ -> phi_v
            in
            match new_v with
            | None -> ()
            | Some nv ->
              let s x = if x = ov then nv else x in
              lp.Ir.lpred <- Pred.rename s lp.Ir.lpred;
              lp.Ir.cont <- Pred.rename s lp.Ir.cont
          end)
        f.Ir.loop_arena
    in
    Hashtbl.iter (fun ov _ -> redirect ov) conds_of_value;
    (* 5b. Fig. 14 last step: on the success side, phi arms whose gate
       would make a versioning condition true are dead — the check
       asserted those conditions false.  Dropping the arm removes the
       dependence the cut severed (e.g. the s258 recurrence when
       speculating that the branch is taken). *)
    List.iter
      (fun v ->
        List.iter
          (fun (ov, _, _) ->
            let i = Ir.inst f ov in
            match i.kind with
            | Ir.Phi arms ->
              let apreds =
                List.filter_map
                  (function Depcond.Apred q -> Some q | _ -> None)
                  v.v_conds
              in
              if apreds <> [] then begin
                let live =
                  List.filter
                    (fun (pa, _) ->
                      not (List.exists (fun q -> Pred.implies pa q) apreds))
                    arms
                in
                if List.length live < List.length arms then i.kind <- Ir.Phi live
              end
            | _ -> ())
          v.v_outs)
      versioned;
    (* (Unused versioning phis are left for the pipeline's global DCE:
       a later plan's substituted conditions may still reference them.) *)
    (* 7. record scoped-independence facts (paper SIV-B) *)
    List.iter
      (fun p ->
        let atoms = List.map (subst_atom outer) p.Plan.p_conds in
        let canonical = Plan.dedup_atoms atoms in
        (* the guarantee is active under any check that includes this
           plan's conditions; each versioned node's own group check does *)
        ignore canonical;
        let mems node = Ir.memory_insts f (match node with Ir.NI v -> Ir.I v | Ir.NL l -> Ir.L l) in
        let node_chk node =
          match Hashtbl.find_opt table node with
          | Some conds -> Hashtbl.find_opt chk_of_group conds
          | None -> None
        in
        List.iter
          (fun a_node ->
            List.iter
              (fun b_node ->
                if a_node <> b_node then
                  match node_chk a_node with
                  | None -> ()
                  | Some chk ->
                    List.iter
                      (fun a ->
                        List.iter
                          (fun b ->
                            if a <> b then
                              Ir.add_indep_scope f a b (Pred.lit chk))
                          (mems b_node))
                      (mems a_node))
              p.Plan.p_inputs)
          p.Plan.p_nodes;
        (* client-specified intra-node pairs (e.g. classic loop
           versioning: member accesses of one versioned loop) *)
        (match p.Plan.p_nodes with
        | first :: _ when p.Plan.p_scope_pairs <> [] -> (
          match node_chk first with
          | Some chk ->
            List.iter
              (fun (a, b) -> Ir.add_indep_scope f a b (Pred.lit chk))
              p.Plan.p_scope_pairs
          | None -> ())
        | _ -> ()))
      plans;
    (* local substitution exposed to other plan trees: the junction phi
       of the *outermost* level that versioned the value (an inner phi's
       original arm is itself redirected to the outer phi during fixup,
       so the inner phi is the complete merge) *)
    fun v ->
      let c = child_local v in
      if c <> v then c
      else match Hashtbl.find_opt phi_of_value v with Some p -> p | None -> v
  end

(* Public entry point: materialize a list of inferred plans.

   Top-level plans are materialized one plan-tree at a time (with earlier
   plans' versioning phis substituted into later plans' conditions): the
   check-hoisting legality argument of plan inference is per-plan, so a
   single batch may only contain the nodes of one plan. *)
let rec tree_nodes p =
  List.length p.Plan.p_nodes
  + List.fold_left (fun a s -> a + tree_nodes s) 0 p.Plan.p_secondaries

let run (f : Ir.func) (region : Ir.region) (plans : Plan.t list) :
    bool * (Ir.value_id -> Ir.value_id) =
  Tr.with_span ~cat:"versioning" "materialize.run" @@ fun () ->
  let all_ok = ref true in
  let total = ref (fun (v : Ir.value_id) -> v) in
  List.iter
    (fun plan ->
      (* A tree that turns out not to be materializable (its checks
         cannot be hoisted in the *current* program state, e.g. after an
         earlier tree's clones changed the dependence structure) is
         skipped.  Everything materialized so far is semantics-preserving
         on its own — at worst some dead check code remains — but the
         caller must know the independence guarantee was NOT established
         and give up on the transformation that wanted it. *)
      let phis_before = !(phis_created ()) in
      match materialize_level f region ~outer:!total [ plan ] with
      | local ->
        Tm.incr "materialize.plans";
        Tr.remark (mat_anchor f region)
          (Tr.Versioned
             {
               nodes = tree_nodes plan;
               conds = Plan.conds_count plan;
               phis = !(phis_created ()) - phis_before;
             });
        let prev = !total in
        (* the OUTERMOST (earliest) versioning phi is the total merge:
           later trees rewire its arms when they version the value
           again, so an earlier mapping takes precedence *)
        total :=
          fun v ->
            let p = prev v in
            if p <> v then p else local v
      | exception Error msg ->
        Tm.incr "materialize.aborted";
        Tr.remark (mat_anchor f region) (Tr.Materialize_aborted { reason = msg });
        all_ok := false)
    plans;
  (!all_ok, !total)
