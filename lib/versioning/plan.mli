(** Versioning plans and their inference (Fig. 13 of the paper).

    A plan describes — without transforming the program — a set of
    dependence-graph nodes to version and the conditions under which the
    versioned copies must run instead, plus the nested secondary plans
    that make those conditions computable before the versioned code. *)

open Fgv_pssa
open Fgv_analysis

type t = {
  p_nodes : Ir.node list;
      (** nodes to version: the source side of the cut that can reach the
          input nodes, plus the input nodes themselves (Fig. 13 l.31) *)
  p_inputs : Ir.node list;
      (** the nodes whose independence was requested *)
  p_conds : Depcond.atom list;
      (** versioning conditions, all asserted false at run time; if any
          is true execution falls back to the clones *)
  p_cut_edge_ids : int list;
      (** dependence edges severed by this plan's cut (used by the
          update-cut step of nested inference) *)
  p_secondaries : t list;
      (** plans materialized before this one so the conditions can be
          evaluated first (the paper's nested versioning) *)
  p_scope_pairs : (Ir.value_id * Ir.value_id) list;
      (** extra memory-instruction pairs that become disjoint under this
          plan's check — used by clients whose guarantee is within a node
          (e.g. classic loop versioning over one loop's accesses) *)
}

val is_trivial : t -> bool
(** No conditions and no secondaries: the request was already satisfied. *)

val all_cut_edge_ids : t -> int list
(** Severed dependence edges of the whole plan tree. *)

val conds_count : t -> int
(** Total number of run-time conditions in the tree (ablation metric). *)

val secondary_depth : t -> int
(** Nesting depth of the secondary-plan tree (0 = no secondaries). *)

val count_plans : t -> int
(** Number of plans in the tree, the root included. *)

val dedup_atoms : Depcond.atom list -> Depcond.atom list
(** Canonical sorted, de-duplicated atom list. *)

exception Infeasible

val infer :
  Depgraph.t -> nodes:Ir.node list -> input_nodes:Ir.node list -> t option
(** Infer a plan guaranteeing that no node in [nodes] depends on
    [input_nodes] once materialized. [None] when separating them would
    require severing an unconditional dependence. *)

val infer_for_nodes : Depgraph.t -> Ir.node list -> t option
(** Fig. 13's [infer_version_plans_for_insts]: make the given nodes
    pairwise independent. *)

val to_string : Depgraph.t -> t -> string
(** Render the plan tree in the paper's N/C/V' notation (cf. Fig. 12). *)
