(* The declarative wish-spec layer (DESIGN §13).

   Every versioning client follows the same skeleton: enumerate
   candidate transformations, express each one's blocking dependences as
   a *wish* ("make these nodes independent", "separate these readers
   from that store", "guard this loop with these condition atoms"),
   hand the wishes to plan inference, materialize the accepted plans,
   and apply the rewrite only where the wish was granted.  This module
   factors the skeleton so a client is a [spec] — data plus a rewrite —
   rather than a bespoke traversal: RLE, DSE, and loop distribution are
   all registered through {!run_spec}.

   Outcome discipline (shared by every client):
   - [Granted_static]    — the wish already holds; the rewrite is safe
                           even if materialization later fails.
   - [Granted_versioned] — a plan was recorded; the rewrite is safe only
                           if the session materializes ([ok = true]).
   - [Denied]            — the wished-away dependence is unconditional
                           (or versioning is disabled); no rewrite. *)

open Fgv_pssa
open Fgv_analysis
module Tm = Fgv_support.Telemetry
module Tr = Fgv_support.Trace

type want =
  | Independent of Ir.node list
      (** make the nodes pairwise independent (RLE-shaped) *)
  | Separated of { nodes : Ir.node list; from_ : Ir.node list }
      (** no node of [nodes] may depend on [from_] (DSE-shaped) *)
  | Guarded_loop of {
      loop : Ir.loop_id;
      atoms : Depcond.atom list;
      pairs : (Ir.value_id * Ir.value_id) list;
    }
      (** version the whole loop under the given condition atoms, with
          [pairs] becoming disjoint under the check (distribution /
          classic loop-versioning shape); the session must be on the
          loop's parent region *)

type outcome =
  | Granted_static
  | Granted_versioned of { conds : int }
  | Denied

type 'a spec = {
  sp_client : string;  (** telemetry / remark namespace *)
  sp_loop_upgrade : bool;  (** materialize with loop-granularity upgrade *)
  sp_enumerate : Api.session -> 'a list;
      (** candidates, in deterministic program order *)
  sp_want : Api.session -> 'a -> want;
  sp_describe : 'a -> string;  (** short label for the remark stream *)
  sp_apply :
    Api.session ->
    ok:bool ->
    subst:(Ir.value_id -> Ir.value_id) ->
    ('a * outcome) list ->
    unit;
      (** the rewrite: called once after materialization with every
          candidate's outcome.  [ok] is false when materialization
          failed — then only [Granted_static] candidates may be
          rewritten.  Uses redirected to a versioned value must go
          through [subst]. *)
}

(* Decide one wish against the session.  Only non-trivial plans are
   recorded (trivial means the independence already holds), mirroring
   what [Api.request_independence] does internally. *)
let decide ~versioning (s : Api.session) (w : want) : outcome =
  match w with
  | Independent nodes ->
    if Api.already_independent s nodes then Granted_static
    else if not versioning then Denied
    else (
      match Api.request_independence s nodes with
      | Some plan -> Granted_versioned { conds = Plan.conds_count plan }
      | None -> Denied)
  | Separated { nodes; from_ } ->
    if nodes = [] || from_ = [] then Granted_static
    else (
      match
        Api.request_separation ~record:false s ~nodes ~input_nodes:from_
      with
      | Some plan when Plan.is_trivial plan -> Granted_static
      | Some plan ->
        if versioning then begin
          Api.record_plan s plan;
          Granted_versioned { conds = Plan.conds_count plan }
        end
        else Denied
      | None -> Denied)
  | Guarded_loop { atoms = []; _ } -> Granted_static
  | Guarded_loop { loop; atoms; pairs } ->
    if not versioning then Denied
    else begin
      let atoms = Plan.dedup_atoms atoms in
      let plan =
        {
          Plan.p_nodes = [ Ir.NL loop ];
          p_inputs = [ Ir.NL loop ];
          p_conds = atoms;
          p_cut_edge_ids = [];
          p_secondaries = [];
          p_scope_pairs = pairs;
        }
      in
      Api.record_plan s plan;
      Granted_versioned { conds = List.length atoms }
    end

let spec_anchor (s : Api.session) =
  Tr.anchor
    ?loop:(match s.Api.s_region with
          | Ir.Rloop l -> Some l
          | Ir.Rtop -> None)
    s.Api.s_func.Ir.fname

(* Run one spec over one region: enumerate, decide, materialize, apply.
   Returns the per-candidate outcomes so callers can aggregate stats.

   SCEV sharing: [Api.create] asks the incremental query engine for SCEV
   (and the dependence graph) when [?scev] is not donated, so inside one
   pipeline run consecutive specs over the same unmodified function —
   dse's forward and kill specs, rle after dse, every region of the
   standard walk — reuse one analysis instead of rebuilding per spec. *)
let run_spec ?(versioning = true) ?condopt ?scev (spec : 'a spec)
    (f : Ir.func) (region : Ir.region) : ('a * outcome) list =
  let condopt =
    Option.value condopt
      ~default:{ Condopt.default_config with promotion = true }
  in
  let s = Api.create ~condopt ?scev f region in
  let anchor = spec_anchor s in
  let decided =
    List.map
      (fun c ->
        let o = decide ~versioning s (spec.sp_want s c) in
        let wanted = spec.sp_describe c in
        (match o with
        | Granted_static ->
          Tm.incr ("wish." ^ spec.sp_client ^ ".granted_static");
          Tr.remark anchor
            (Tr.Wish_granted
               { client = spec.sp_client; wanted; conds = 0; static = true })
        | Granted_versioned { conds } ->
          Tm.incr ("wish." ^ spec.sp_client ^ ".granted_versioned");
          Tr.remark anchor
            (Tr.Wish_granted
               { client = spec.sp_client; wanted; conds; static = false })
        | Denied ->
          Tm.incr ("wish." ^ spec.sp_client ^ ".denied");
          Tr.remark anchor (Tr.Wish_denied { client = spec.sp_client; wanted }));
        (c, o))
      (spec.sp_enumerate s)
  in
  let ok, subst =
    match Api.materialize ~loop_upgrade:spec.sp_loop_upgrade s with
    | Some subst -> (true, subst)
    | None -> (false, fun v -> v)
  in
  spec.sp_apply s ~ok ~subst decided;
  decided

(* The standard region walk every region-at-a-time client uses: the
   function body first, then each loop body, deterministically. *)
let all_regions (f : Ir.func) : Ir.region list =
  let rec regions items acc =
    List.fold_left
      (fun acc item ->
        match item with
        | Ir.I _ -> acc
        | Ir.L lid -> regions (Ir.loop f lid).Ir.body (Ir.Rloop lid :: acc))
      acc items
  in
  regions f.Ir.fbody [ Ir.Rtop ]
