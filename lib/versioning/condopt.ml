(* Optimizations on versioning conditions before materialization
   (paper SIV-A): redundant condition elimination, condition coalescing,
   and condition promotion. *)

open Fgv_pssa
open Fgv_analysis
module Tm = Fgv_support.Telemetry
module Tr = Fgv_support.Trace

(* Constant offset between two ranges, defined only when the lower and
   upper bounds shift by the same amount. *)
let range_offset (r1 : Scev.range) (r2 : Scev.range) : int option =
  match Linexp.diff r1.Scev.lo r2.Scev.lo, Linexp.diff r1.Scev.hi r2.Scev.hi with
  | Some a, Some b when a = b -> Some a
  | _ -> None

(* Two intersection checks are equivalent when both sides are shifted by
   the same constant (possibly with the operands swapped). *)
let atoms_equivalent a b =
  match a, b with
  | Depcond.Apred p, Depcond.Apred q -> Pred.equal p q
  | Depcond.Aintersect (ra, rb), Depcond.Aintersect (rx, ry) ->
    (match range_offset rx ra, range_offset ry rb with
    | Some d1, Some d2 when d1 = d2 -> true
    | _ -> (
      match range_offset rx rb, range_offset ry ra with
      | Some d1, Some d2 when d1 = d2 -> true
      | _ -> false))
  | _ -> false

(* Redundant condition elimination: keep one representative per
   equivalence class. *)
let eliminate_redundant atoms =
  List.fold_left
    (fun kept atom ->
      if List.exists (atoms_equivalent atom) kept then kept else atom :: kept)
    [] atoms
  |> List.rev

(* Hull of two ranges whose bounds differ by constants. *)
let range_hull r1 r2 =
  let pick_lo =
    match Linexp.diff r1.Scev.lo r2.Scev.lo with
    | Some d -> Some (if d <= 0 then r1.Scev.lo else r2.Scev.lo)
    | None -> None
  in
  let pick_hi =
    match Linexp.diff r1.Scev.hi r2.Scev.hi with
    | Some d -> Some (if d >= 0 then r1.Scev.hi else r2.Scev.hi)
    | None -> None
  in
  match pick_lo, pick_hi with
  | Some lo, Some hi -> Some { Scev.lo; hi }
  | _ -> None

(* Condition coalescing: replace two intersection checks with a single
   over-approximating check when both sides can be hulled.  The result
   is cheaper but may fail when the originals would pass, so this runs
   after redundant-condition elimination (paper SIV-A). *)
let coalesce atoms =
  let try_merge a b =
    match a, b with
    | Depcond.Aintersect (ra, rb), Depcond.Aintersect (rx, ry) -> (
      match range_hull ra rx, range_hull rb ry with
      | Some h1, Some h2 -> Some (Depcond.Aintersect (h1, h2))
      | _ -> (
        match range_hull ra ry, range_hull rb rx with
        | Some h1, Some h2 -> Some (Depcond.Aintersect (h1, h2))
        | _ -> None))
    | _ -> None
  in
  let rec fixpoint atoms =
    let rec scan acc = function
      | [] -> None
      | atom :: rest -> (
        let merged =
          List.find_map
            (fun other ->
              match try_merge atom other with
              | Some m -> Some (other, m)
              | None -> None)
            rest
        in
        match merged with
        | Some (other, m) ->
          Some (acc @ (m :: List.filter (fun x -> x != other) rest))
        | None -> scan (acc @ [ atom ]) rest)
    in
    match scan [] atoms with Some atoms' -> fixpoint atoms' | None -> atoms
  in
  fixpoint atoms

(* Condition promotion: rewrite each intersection check so that it no
   longer depends on the iteration of the given loops (typically the
   loops enclosing the versioned region), allowing LICM to hoist the
   check.  Promotion widens ranges using trip counts, so a promoted
   check can fail where the original passed; checks that cannot be
   promoted are kept as they are. *)
(* Best-effort promotion: for each intersection check, widen it out of
   the deepest prefix of the enclosing loops (innermost first) for which
   all induction variables are affine with known extents.  Promoting out
   of even one loop lets LICM hoist and amortize the check. *)
(* Remark anchor for condition work: the function and the innermost
   enclosing loop (what promotion widens out of). *)
let cond_anchor scev ~(enclosing : Ir.loop_id list) =
  Tr.anchor
    ?loop:(match enclosing with l :: _ -> Some l | [] -> None)
    scev.Scev.func.Ir.fname

let promote_best_effort scev ~(enclosing : Ir.loop_id list) atoms =
  let f = scev.Scev.func in
  let rec take n l =
    match l with x :: rest when n > 0 -> x :: take (n - 1) rest | _ -> []
  in
  (* try promoting out of all enclosing loops first, then progressively
     fewer (always including the innermost) *)
  let n_enc = List.length enclosing in
  let candidates = List.init n_enc (fun i -> take (n_enc - i) enclosing) in
  List.map
    (fun atom ->
      match atom with
      | Depcond.Apred _ -> atom
      | Depcond.Aintersect (r1, r2) ->
        let range_eq a b =
          Linexp.equal a.Scev.lo b.Scev.lo && Linexp.equal a.Scev.hi b.Scev.hi
        in
        let same_object a b =
          (* both ranges based on the same pointer argument: intra-object
             checks, which imprecise promotion must not widen
             one-sidedly (paper SIV-A) *)
          List.exists
            (fun v ->
              (match (Ir.inst f v).Ir.kind with Ir.Arg _ -> true | _ -> false)
              && Linexp.mentions b.Scev.lo v)
            (Linexp.values a.Scev.lo)
        in
        let try_with loops =
          let out_of l = List.mem l loops in
          match
            ( Scev.promote_range scev ~out_of r1,
              Scev.promote_range scev ~out_of r2 )
          with
          | Some p1, Some p2 ->
            (* imprecise promotion is only applied to checks involving
               different memory objects (paper SIV-A): widening an
               intra-object check usually makes it always fail (e.g.
               s131's symbolic distance, floyd-warshall's in-row read);
               also reject results that statically always overlap *)
            if same_object r1 r2 && not (range_eq p1 r1 && range_eq p2 r2)
            then None
            else if Alias.relate f p1 p2 = Alias.Overlap then None
            else Some (Depcond.Aintersect (p1, p2))
          | _ -> None
        in
        let rec first = function
          | [] -> None
          | loops :: rest -> (
            match try_with loops with Some a -> Some a | None -> first rest)
        in
        (match first candidates with
        | None ->
          Tm.incr "condopt.promote_failed";
          Tr.remark (cond_anchor scev ~enclosing) Tr.Promotion_failed;
          atom
        | Some promoted ->
          (* unchanged ranges mean the check was already invariant in
             every promoted loop: precise promotion (no widening) *)
          let precise = promoted = atom in
          if precise then Tm.incr "condopt.promoted_precise"
          else Tm.incr "condopt.promoted_imprecise";
          Tr.remark (cond_anchor scev ~enclosing) (Tr.Cond_promoted { precise });
          promoted))
    atoms

type config = {
  redundant_elim : bool;
  coalescing : bool;
  promotion : bool;
}

let default_config = { redundant_elim = true; coalescing = true; promotion = false }

let none_config = { redundant_elim = false; coalescing = false; promotion = false }

(* Optimize a whole plan tree. *)
let rec optimize_plan ?(config = default_config) scev ~enclosing (p : Plan.t) :
    Plan.t =
  let atoms = p.Plan.p_conds in
  let atoms =
    if config.redundant_elim then begin
      let kept = eliminate_redundant atoms in
      Tm.incr ~by:(List.length atoms - List.length kept) "condopt.eliminated";
      kept
    end
    else atoms
  in
  let atoms =
    if config.coalescing then begin
      let merged = coalesce atoms in
      Tm.incr ~by:(List.length atoms - List.length merged) "condopt.coalesced";
      merged
    end
    else atoms
  in
  let atoms =
    if config.promotion then promote_best_effort scev ~enclosing atoms
    else atoms
  in
  {
    p with
    Plan.p_conds = atoms;
    p_secondaries =
      List.map (optimize_plan ~config scev ~enclosing) p.Plan.p_secondaries;
  }
