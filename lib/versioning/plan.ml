(* Versioning plans and their inference (Fig. 13 of the paper).

   A plan names the dependence-graph nodes to version, the conditions to
   assert false at run time, and the secondary plans that make those
   conditions computable before the versioned code.  Inference is
   iterative where the paper is recursive-with-update: after inferring a
   secondary plan we re-run the cut with the secondary's severed edges
   excluded (which the paper notes is equivalent to [update_cut]) and
   check that the new conditions are themselves independent; the
   program-order argument of SIII-C bounds the number of rounds. *)

open Fgv_pssa
open Fgv_analysis
module Tm = Fgv_support.Telemetry
module Tr = Fgv_support.Trace

type t = {
  p_nodes : Ir.node list; (* versioned: source side + input nodes *)
  p_inputs : Ir.node list; (* the nodes whose independence was requested *)
  p_conds : Depcond.atom list; (* all asserted false at run time *)
  p_cut_edge_ids : int list; (* severed dependence edges, for update_cut *)
  p_secondaries : t list; (* materialized before this plan *)
  (* extra memory-instruction pairs that become disjoint under this
     plan's check (used by clients, e.g. classic loop versioning, whose
     guarantees are within a node rather than across nodes) *)
  p_scope_pairs : (Ir.value_id * Ir.value_id) list;
}

let is_trivial p = p.p_conds = [] && p.p_secondaries = []

(* All cut edges severed by a plan tree (the dependencies that no longer
   exist once the whole tree is materialized). *)
let rec all_cut_edge_ids p =
  p.p_cut_edge_ids @ List.concat_map all_cut_edge_ids p.p_secondaries

let rec conds_count p =
  List.length p.p_conds
  + List.fold_left (fun a s -> a + conds_count s) 0 p.p_secondaries

(* Nesting depth of the secondary-plan tree (0 = no secondaries). *)
let rec secondary_depth p =
  List.fold_left (fun a s -> max a (1 + secondary_depth s)) 0 p.p_secondaries

let rec count_plans p =
  1 + List.fold_left (fun a s -> a + count_plans s) 0 p.p_secondaries

(* Canonical, de-duplicated atom list. *)
(* Structural order, not polymorphic compare: predicates are interned
   and their ids are arbitrary, so only [Depcond.compare_atom] is stable
   across runs and job counts. *)
let dedup_atoms atoms = List.sort_uniq Depcond.compare_atom atoms

exception Infeasible

let atoms_of_cut (cut : Cut.result) =
  dedup_atoms
    (List.concat_map
       (fun e ->
         match e.Depgraph.e_cond with
         | Some atoms -> atoms
         | None -> assert false)
       cut.Cut.cut_edges)

(* Dependence-graph nodes that define the values a condition set reads
   (condition operands defined outside the region need no versioning). *)
let operand_nodes (g : Depgraph.t) atoms =
  let ops = List.concat_map Depcond.atom_operands atoms in
  List.sort_uniq compare
    (List.filter_map (fun v -> Depcond.def_item g.Depgraph.g_ctx v) ops)

let node_indices g nodes = List.map (Depgraph.node_index g) nodes

(* Values defined by the given nodes (used for the "directly uses"
   rejection of Fig. 13 line 16). *)
let defined_by g nodes =
  let f = g.Depgraph.g_ctx.Depcond.cf in
  List.concat_map
    (fun n ->
      match n with
      | Ir.NI v -> [ v ]
      | Ir.NL lid -> Ir.defined_values f (Ir.L lid))
    nodes

let max_rounds = 32

(* Infer a plan making [nodes] independent of [input_nodes].
   [excluded] are dependence edges already severed by enclosing plans. *)
let rec infer_rec (g : Depgraph.t) ~(excluded : int list) ~(nodes : Ir.node list)
    ~(input_nodes : Ir.node list) ~depth : t option =
  if depth > max_rounds then None
  else begin
    let s = node_indices g nodes and t = node_indices g input_nodes in
    let excl id = List.mem id excluded in
    match Cut.find g ~excluded:excl ~s ~t with
    | None -> None
    | Some cut when cut.Cut.cut_edges = [] ->
      Some
        {
          p_nodes = [];
          p_inputs = input_nodes;
          p_conds = [];
          p_cut_edge_ids = [];
          p_secondaries = [];
          p_scope_pairs = [];
        }
    | Some cut -> (
      let conds = atoms_of_cut cut in
      (* Fig. 13 line 16: a condition that directly reads a value defined
         by the input nodes can never be hoisted above them *)
      let ops = List.concat_map Depcond.atom_operands conds in
      let input_defs = defined_by g input_nodes in
      if List.exists (fun v -> List.mem v input_defs) ops then None
      else begin
        let op_nodes = operand_nodes g conds in
        let op_idx = node_indices g op_nodes in
        if not (Depgraph.depends_on g ~excluded:excl op_idx t) then
          (* conditions are already computable before the inputs *)
          Some
            {
              p_nodes =
                List.sort_uniq compare
                  (List.map (fun k -> g.Depgraph.nodes.(k)) cut.Cut.source_nodes
                  @ input_nodes);
              p_inputs = input_nodes;
              p_conds = conds;
              p_cut_edge_ids =
                List.map (fun e -> e.Depgraph.e_id) cut.Cut.cut_edges;
              p_secondaries = [];
              p_scope_pairs = [];
            }
        else
          match
            infer_rec g ~excluded ~nodes:op_nodes ~input_nodes ~depth:(depth + 1)
          with
          | None -> None
          | Some secondary ->
            (* update_cut: drop the edges the secondary eliminates and
               re-run; iterate in case the refreshed cut picked new
               conditions that need their own secondary *)
            let excluded' = all_cut_edge_ids secondary @ excluded in
            (match
               infer_rec g ~excluded:excluded' ~nodes ~input_nodes
                 ~depth:(depth + 1)
             with
            | None -> None
            | Some updated ->
              Some
                {
                  updated with
                  p_secondaries = secondary :: updated.p_secondaries;
                })
      end)
  end

(* Public entry points *)

(* Remark anchor for plan inference: the region's function and loop,
   plus the first requested node when it is an instruction. *)
let plan_anchor (g : Depgraph.t) (nodes : Ir.node list) =
  let ctx = g.Depgraph.g_ctx in
  let f = ctx.Depcond.cf in
  Tr.anchor
    ?loop:(match ctx.Depcond.cregion with
          | Ir.Rloop l -> Some l
          | Ir.Rtop -> None)
    ?value:(match nodes with
           | Ir.NI v :: _ -> Some (Ir.value_name f v)
           | _ -> None)
    f.Ir.fname

let infer g ~nodes ~input_nodes =
  Tm.incr "plan.requests";
  Tr.with_span ~cat:"versioning" "plan.infer" @@ fun () ->
  match infer_rec g ~excluded:[] ~nodes ~input_nodes ~depth:0 with
  | None ->
    Tm.incr "plan.infeasible";
    Tr.remark (plan_anchor g nodes) Tr.Plan_infeasible;
    None
  | Some plan ->
    Tm.incr ~by:(count_plans plan) "plan.inferred";
    Tm.incr ~by:(conds_count plan) "plan.conds";
    Tm.set_max "plan.max_secondary_depth" (secondary_depth plan);
    let depth = secondary_depth plan in
    if depth > 0 then
      Tr.remark (plan_anchor g nodes)
        (Tr.Secondary_plan { depth; plans = count_plans plan });
    Some plan

(* Fig. 13 [infer_version_plans_for_insts]: make a set of nodes pairwise
   independent. *)
let infer_for_nodes g nodes = infer g ~nodes ~input_nodes:nodes

let rec to_string (g : Depgraph.t) p =
  let f = g.Depgraph.g_ctx.Depcond.cf in
  let scev = g.Depgraph.g_ctx.Depcond.cscev in
  let node_str = function
    | Ir.NI v -> Ir.value_name f v
    | Ir.NL l -> Printf.sprintf "L%d" l
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "N = {%s}\n" (String.concat ", " (List.map node_str p.p_nodes)));
  Buffer.add_string buf
    (Printf.sprintf "C = {%s}\n"
       (String.concat ", " (List.map (Depcond.atom_to_string scev) p.p_conds)));
  List.iter
    (fun s ->
      Buffer.add_string buf "V' =\n";
      Buffer.add_string buf (to_string g s))
    p.p_secondaries;
  Buffer.contents buf
