(* Recursive-descent parser for the mini-C kernel language.

   Precedence (loosest to tightest):
     ternary  ?:
     ||
     &&
     == != < <= > >=
     + -
     * / %
     unary - !
     postfix  p[e]  f(args)
     primary *)

open Ast

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type state = { tokens : Lexer.token array; mutable idx : int }

let peek st = st.tokens.(st.idx)
let advance st = st.idx <- st.idx + 1

let expect_punct st p =
  match peek st with
  | TPunct q when q = p -> advance st
  | t -> fail "expected '%s', got %s" p (Lexer.string_of_token t)

let expect_ident st =
  match peek st with
  | TIdent s ->
    advance st;
    s
  | t -> fail "expected identifier, got %s" (Lexer.string_of_token t)

let accept_punct st p =
  match peek st with
  | TPunct q when q = p ->
    advance st;
    true
  | _ -> false

let accept_keyword st kw =
  match peek st with
  | TIdent s when s = kw ->
    advance st;
    true
  | _ -> false

let is_type_keyword = function
  | "int" | "float" | "bool" -> true
  | _ -> false

let parse_base_ty st =
  match peek st with
  | TIdent "int" ->
    advance st;
    Tint
  | TIdent "float" ->
    advance st;
    Tfloat
  | TIdent "bool" ->
    advance st;
    Tbool
  | t -> fail "expected type, got %s" (Lexer.string_of_token t)

(* ---------------------------------------------------------- expressions *)

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let c = parse_or st in
  if accept_punct st "?" then begin
    let t = parse_expr st in
    expect_punct st ":";
    let e = parse_ternary st in
    Eternary (c, t, e)
  end
  else c

and parse_or st =
  let rec go acc =
    if accept_punct st "||" then go (Ebin ("||", acc, parse_and st)) else acc
  in
  go (parse_and st)

and parse_and st =
  let rec go acc =
    if accept_punct st "&&" then go (Ebin ("&&", acc, parse_cmp st)) else acc
  in
  go (parse_cmp st)

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | TPunct (("==" | "!=" | "<" | "<=" | ">" | ">=") as p) ->
      advance st;
      Some p
    | _ -> None
  in
  match op with Some p -> Ebin (p, lhs, parse_add st) | None -> lhs

and parse_add st =
  let rec go acc =
    match peek st with
    | TPunct (("+" | "-") as p) ->
      advance st;
      go (Ebin (p, acc, parse_mul st))
    | _ -> acc
  in
  go (parse_mul st)

and parse_mul st =
  let rec go acc =
    match peek st with
    | TPunct (("*" | "/" | "%") as p) ->
      advance st;
      go (Ebin (p, acc, parse_unary st))
    | _ -> acc
  in
  go (parse_unary st)

and parse_unary st =
  if accept_punct st "-" then Eun ("-", parse_unary st)
  else if accept_punct st "!" then Eun ("!", parse_unary st)
  else parse_postfix st

and parse_postfix st =
  match peek st with
  | TIdent name when not (is_type_keyword name) -> (
    match st.tokens.(st.idx + 1) with
    | TPunct "[" ->
      advance st;
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      Eindex (name, idx)
    | TPunct "(" ->
      advance st;
      advance st;
      let args = parse_args st in
      Ecall (name, args)
    | _ -> parse_primary st)
  | _ -> parse_primary st

and parse_args st =
  if accept_punct st ")" then []
  else begin
    let rec go acc =
      let e = parse_expr st in
      if accept_punct st "," then go (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_primary st =
  match peek st with
  | TInt n ->
    advance st;
    Eint n
  | TFloat x ->
    advance st;
    Efloat x
  | TIdent "true" ->
    advance st;
    Ebool true
  | TIdent "false" ->
    advance st;
    Ebool false
  | TIdent name when not (is_type_keyword name) ->
    advance st;
    Evar name
  | TPunct "(" -> (
    advance st;
    (* cast or parenthesized expression *)
    match peek st with
    | TIdent t when is_type_keyword t ->
      let ty = parse_base_ty st in
      expect_punct st ")";
      Ecast (ty, parse_unary st)
    | _ ->
      let e = parse_expr st in
      expect_punct st ")";
      e)
  | t -> fail "expected expression, got %s" (Lexer.string_of_token t)

(* ----------------------------------------------------------- statements *)

let rec parse_stmt st : stmt =
  match peek st with
  | TIdent "if" ->
    advance st;
    expect_punct st "(";
    let c = parse_expr st in
    expect_punct st ")";
    let then_ = parse_block_or_stmt st in
    let else_ = if accept_keyword st "else" then parse_block_or_stmt st else [] in
    Sif (c, then_, else_)
  | TIdent "for" ->
    advance st;
    expect_punct st "(";
    let init = parse_simple_stmt st in
    expect_punct st ";";
    let cond = parse_expr st in
    expect_punct st ";";
    let step = parse_simple_stmt st in
    expect_punct st ")";
    let body = parse_block_or_stmt st in
    Sfor (init, cond, step, body)
  | TIdent "while" ->
    advance st;
    expect_punct st "(";
    let c = parse_expr st in
    expect_punct st ")";
    let body = parse_block_or_stmt st in
    Swhile (c, body)
  | _ ->
    let s = parse_simple_stmt st in
    expect_punct st ";";
    s

and parse_block_or_stmt st =
  if accept_punct st "{" then begin
    let rec go acc =
      if accept_punct st "}" then List.rev acc else go (parse_stmt st :: acc)
    in
    go []
  end
  else [ parse_stmt st ]

(* A statement with no trailing ';': declaration, assignment, store, or
   expression statement.  Used directly inside for-headers. *)
and parse_simple_stmt st : stmt =
  match peek st with
  | TIdent t when is_type_keyword t ->
    let ty = parse_base_ty st in
    let name = expect_ident st in
    expect_punct st "=";
    Sdecl (ty, name, parse_expr st)
  | TIdent name -> (
    match st.tokens.(st.idx + 1) with
    | TPunct "=" ->
      advance st;
      advance st;
      Sassign (name, parse_expr st)
    | TPunct "[" -> (
      (* could be a store (p[e] = v) or an expression statement *)
      let save = st.idx in
      advance st;
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      if accept_punct st "=" then Sstore (name, idx, parse_expr st)
      else begin
        st.idx <- save;
        Sexpr (parse_expr st)
      end)
    | _ -> Sexpr (parse_expr st))
  | _ -> Sexpr (parse_expr st)

(* ------------------------------------------------------------ functions *)

let parse_param st : param =
  let ty = parse_base_ty st in
  let is_ptr = accept_punct st "*" in
  let prestrict = accept_keyword st "restrict" in
  let pname = expect_ident st in
  { pname; pty = (if is_ptr then Tptr ty else ty); prestrict }

let parse_fdecl st : fdecl =
  if not (accept_keyword st "kernel") then
    fail "expected 'kernel', got %s" (Lexer.string_of_token (peek st));
  let fdname = expect_ident st in
  expect_punct st "(";
  let fdparams =
    if accept_punct st ")" then []
    else begin
      let rec go acc =
        let p = parse_param st in
        if accept_punct st "," then go (p :: acc)
        else begin
          expect_punct st ")";
          List.rev (p :: acc)
        end
      in
      go []
    end
  in
  expect_punct st "{";
  let rec body acc =
    if accept_punct st "}" then List.rev acc else body (parse_stmt st :: acc)
  in
  { fdname; fdparams; fdbody = body [] }

let parse (src : string) : fdecl =
  let st = { tokens = Lexer.tokenize src; idx = 0 } in
  let fd = parse_fdecl st in
  (match peek st with
  | TEOF -> ()
  | t -> fail "trailing input: %s" (Lexer.string_of_token t));
  fd

(* Parse a whole translation unit: one or more kernels.  Each returned
   declaration comes with its own token slice — the exact tokens the
   kernel was parsed from — which is what the compile service
   fingerprints to key per-function cache entries (an edit to one kernel
   must not disturb the others' keys). *)
let parse_program (src : string) : (fdecl * Lexer.token array) list =
  let st = { tokens = Lexer.tokenize src; idx = 0 } in
  let rec go acc =
    match peek st with
    | TEOF -> List.rev acc
    | _ ->
      let start = st.idx in
      let fd = parse_fdecl st in
      let slice = Array.sub st.tokens start (st.idx - start) in
      go ((fd, slice) :: acc)
  in
  match go [] with
  | [] -> fail "empty input: expected at least one kernel"
  | fds -> fds
