(* Lowering from the mini-C AST to predicated SSA.

   SSA construction is the classic structured-control-flow scheme:
   - an environment maps each variable to its current SSA value;
   - [if] lowers both branches under pushed predicates and joins the
     assigned variables with gated phis;
   - loops create a mu node per variable that is live into the loop and
     assigned inside it, and an eta node per such variable after it;
   - [for]/[while] conditions are evaluated once before the loop (the
     guard: PSSA loops are do-while) and once at the end of each
     iteration (the continue predicate). *)

open Fgv_pssa
module B = Builder
module VarMap = Map.Make (String)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type entry = { v : Ir.value_id; ety : Ast.ty }

let ir_ty : Ast.ty -> Ir.ty = function
  | Ast.Tint -> Ir.Tint
  | Ast.Tfloat -> Ir.Tfloat
  | Ast.Tbool -> Ir.Tbool
  | Ast.Tptr _ -> Ir.Tint (* addresses are cell indices *)

(* External functions known to the frontend: argument types, result type,
   effect.  Every entry has a runtime implementation in the interpreters'
   FFI tables. *)
let externs : (string * (Ast.ty list * Ast.ty * Ir.effect_kind)) list =
  [
    ("sqrt", ([ Ast.Tfloat ], Ast.Tfloat, Ir.Pure));
    ("fabs", ([ Ast.Tfloat ], Ast.Tfloat, Ir.Pure));
    ("exp", ([ Ast.Tfloat ], Ast.Tfloat, Ir.Pure));
    ("cold_func", ([], Ast.Tint, Ir.Impure));
    (* reads arbitrary memory, writes none: for RLE stress kernels *)
    ("opaque_read", ([ Ast.Tint ], Ast.Tfloat, Ir.Readonly));
    (* writes arbitrary memory: a spurious-write generator *)
    ("opaque_touch", ([ Ast.Tint ], Ast.Tint, Ir.Impure));
  ]

let find_var env x =
  match VarMap.find_opt x env with
  | Some e -> e
  | None -> fail "undefined variable %s" x

(* Convert a value to the requested scalar type, inserting casts. *)
let coerce b (v, ty) want =
  if ty = want then v
  else
    match ty, want with
    | Ast.Tint, Ast.Tfloat -> B.cast b Ir.Tfloat v
    | Ast.Tfloat, Ast.Tint -> B.cast b Ir.Tint v
    | _ -> fail "cannot convert %s to %s" (Ast.string_of_ty ty) (Ast.string_of_ty want)

(* Promote two operands to a common arithmetic type. *)
let promote b (v1, t1) (v2, t2) =
  match t1, t2 with
  | t1, t2 when t1 = t2 -> (v1, v2, t1)
  | Ast.Tint, Ast.Tfloat -> (B.cast b Ir.Tfloat v1, v2, Ast.Tfloat)
  | Ast.Tfloat, Ast.Tint -> (v1, B.cast b Ir.Tfloat v2, Ast.Tfloat)
  | _ -> fail "type mismatch: %s vs %s" (Ast.string_of_ty t1) (Ast.string_of_ty t2)

let rec lower_expr b env (e : Ast.expr) : Ir.value_id * Ast.ty =
  match e with
  | Eint n -> (B.const_int b n, Ast.Tint)
  | Efloat x -> (B.const_float b x, Ast.Tfloat)
  | Ebool v -> (B.const_bool b v, Ast.Tbool)
  | Evar x ->
    let e = find_var env x in
    (e.v, e.ety)
  | Eindex (x, idx) -> (
    let p = find_var env x in
    match p.ety with
    | Ast.Tptr elem ->
      let iv = coerce b (lower_expr b env idx) Ast.Tint in
      let addr = B.add b p.v iv in
      (B.load b addr ~ty:(ir_ty elem), elem)
    | _ -> fail "%s is not a pointer" x)
  | Ebin (op, l, r) -> lower_binop b env op l r
  | Eun ("-", e) -> (
    let v, t = lower_expr b env e in
    match t with
    | Ast.Tint ->
      let z = B.const_int b 0 in
      (B.sub b z v, Ast.Tint)
    | Ast.Tfloat ->
      let z = B.const_float b 0.0 in
      (B.fsub b z v, Ast.Tfloat)
    | _ -> fail "cannot negate %s" (Ast.string_of_ty t))
  | Eun ("!", e) ->
    let v, t = lower_expr b env e in
    if t <> Ast.Tbool then fail "'!' needs a bool";
    let fls = B.const_bool b false in
    (B.cmp b Ir.Eq v fls, Ast.Tbool)
  | Eun (op, _) -> fail "unknown unary operator %s" op
  | Eternary (c, t, e) ->
    let cv, ct = lower_expr b env c in
    if ct <> Ast.Tbool then fail "ternary condition must be bool";
    let tv, tt = lower_expr b env t in
    let ev, et = lower_expr b env e in
    let tv, ev, ty = promote b (tv, tt) (ev, et) in
    (B.select b ~cond:cv ~if_true:tv ~if_false:ev ~ty:(ir_ty ty), ty)
  | Ecall (name, args) -> (
    match List.assoc_opt name externs with
    | None -> fail "unknown function %s" name
    | Some (arg_tys, ret_ty, effect) ->
      if List.length args <> List.length arg_tys then
        fail "%s expects %d arguments" name (List.length arg_tys);
      let argv =
        List.map2 (fun a t -> coerce b (lower_expr b env a) t) args arg_tys
      in
      (B.call b name argv ~effect ~ty:(ir_ty ret_ty), ret_ty))
  | Ecast (ty, e) ->
    let v = coerce b (lower_expr b env e) ty in
    (v, ty)

and lower_binop b env op l r =
  match op with
  | "&&" | "||" ->
    let lv, lt = lower_expr b env l in
    let rv, rt = lower_expr b env r in
    if lt <> Ast.Tbool || rt <> Ast.Tbool then fail "'%s' needs bools" op;
    let bop = if op = "&&" then Ir.Band else Ir.Bor in
    (B.binop b bop lv rv ~ty:Ir.Tbool, Ast.Tbool)
  | "==" | "!=" | "<" | "<=" | ">" | ">=" ->
    let lv, lt = lower_expr b env l in
    let rv, rt = lower_expr b env r in
    let lv, rv, ty = promote b (lv, lt) (rv, rt) in
    let cop =
      match ty, op with
      | Ast.Tfloat, "==" -> Ir.Feq
      | Ast.Tfloat, "!=" -> Ir.Fne
      | Ast.Tfloat, "<" -> Ir.Flt
      | Ast.Tfloat, "<=" -> Ir.Fle
      | Ast.Tfloat, ">" -> Ir.Fgt
      | Ast.Tfloat, ">=" -> Ir.Fge
      | _, "==" -> Ir.Eq
      | _, "!=" -> Ir.Ne
      | _, "<" -> Ir.Lt
      | _, "<=" -> Ir.Le
      | _, ">" -> Ir.Gt
      | _, ">=" -> Ir.Ge
      | _ -> assert false
    in
    (B.cmp b cop lv rv, Ast.Tbool)
  | "+" | "-" | "*" | "/" | "%" ->
    let lv, lt = lower_expr b env l in
    let rv, rt = lower_expr b env r in
    let lv, rv, ty = promote b (lv, lt) (rv, rt) in
    let bop =
      match ty, op with
      | Ast.Tint, "+" -> Ir.Add
      | Ast.Tint, "-" -> Ir.Sub
      | Ast.Tint, "*" -> Ir.Mul
      | Ast.Tint, "/" -> Ir.Div
      | Ast.Tint, "%" -> Ir.Rem
      | Ast.Tfloat, "+" -> Ir.Fadd
      | Ast.Tfloat, "-" -> Ir.Fsub
      | Ast.Tfloat, "*" -> Ir.Fmul
      | Ast.Tfloat, "/" -> Ir.Fdiv
      | _ -> fail "operator %s not defined on %s" op (Ast.string_of_ty ty)
    in
    (B.binop b bop lv rv ~ty:(ir_ty ty), ty)
  | _ -> fail "unknown operator %s" op

(* --------------------------------------------------------- statements *)

let rec lower_stmts b env stmts =
  List.fold_left (fun env s -> lower_stmt b env s) env stmts

and lower_stmt b env (s : Ast.stmt) : entry VarMap.t =
  match s with
  | Sdecl (ty, x, e) ->
    let v = coerce b (lower_expr b env e) ty in
    VarMap.add x { v; ety = ty } env
  | Sassign (x, e) ->
    let old = find_var env x in
    let v = coerce b (lower_expr b env e) old.ety in
    VarMap.add x { old with v } env
  | Sstore (x, idx, e) -> (
    let p = find_var env x in
    match p.ety with
    | Ast.Tptr elem ->
      let iv = coerce b (lower_expr b env idx) Ast.Tint in
      let addr = B.add b p.v iv in
      let v = coerce b (lower_expr b env e) elem in
      ignore (B.store b ~addr ~value:v);
      env
    | _ -> fail "%s is not a pointer" x)
  | Sexpr e ->
    ignore (lower_expr b env e);
    env
  | Sif (c, then_, else_) ->
    let cv, ct = lower_expr b env c in
    if ct <> Ast.Tbool then fail "if condition must be bool";
    let cur = B.cur_pred b in
    B.push_pred b (Pred.lit cv);
    let env_t = lower_stmts b env then_ in
    B.pop_pred b;
    B.push_pred b (Pred.lit ~positive:false cv);
    let env_e = lower_stmts b env else_ in
    B.pop_pred b;
    (* join assigned variables with gated phis over the branch preds *)
    VarMap.mapi
      (fun x ent ->
        let vt = (find_var env_t x).v and ve = (find_var env_e x).v in
        if vt = ve then ent
        else
          let p_t = Pred.and_ cur (Pred.lit cv) in
          let p_e = Pred.and_ cur (Pred.lit ~positive:false cv) in
          let v =
            B.phi ~name:x b [ (p_t, vt); (p_e, ve) ] ~ty:(ir_ty ent.ety)
          in
          { ent with v })
      env
  | Sfor (init, cond, step, body) ->
    let env1 = lower_stmt b env init in
    lower_loop b env1 ~cond ~body ~step:(Some step)
  | Swhile (cond, body) -> lower_loop b env ~cond ~body ~step:None

and lower_loop b env ~cond ~body ~step =
  (* variables that need mus: assigned in the body/step and visible
     before the loop *)
  let assigned =
    Ast.assigned_vars body
    @ (match step with Some s -> Ast.assigned_of_stmt s | None -> [])
  in
  let carried =
    List.sort_uniq compare (List.filter (fun x -> VarMap.mem x env) assigned)
  in
  (* guard: evaluate the condition once before entering *)
  let c0, ct = lower_expr b env cond in
  if ct <> Ast.Tbool then fail "loop condition must be bool";
  B.push_pred b (Pred.lit c0);
  let lp = B.begin_loop b in
  (* inside the loop the predicate context restarts *)
  let mus =
    List.map
      (fun x ->
        let ent = find_var env x in
        let m = B.mu ~name:x b lp ~init:ent.v ~ty:(ir_ty ent.ety) in
        (x, m))
      carried
  in
  let env_loop =
    List.fold_left
      (fun e (x, m) -> VarMap.add x { (find_var e x) with v = m } e)
      env mus
  in
  let env_body = lower_stmts b env_loop body in
  let env_step =
    match step with Some s -> lower_stmt b env_body s | None -> env_body
  in
  (* patch mu recur operands and evaluate the continue condition *)
  List.iter (fun (x, m) -> B.set_mu_recur b m (find_var env_step x).v) mus;
  let c1, _ = lower_expr b env_step cond in
  B.finish_loop b lp ~cont:(Pred.lit c1);
  (* the guard literal only applied to the loop item itself *)
  B.pop_pred b;
  (* after the loop each carried variable reads its eta *)
  List.fold_left
    (fun e (x, m) ->
      let ent = find_var e x in
      let v = B.eta ~name:x b lp m ~ty:(ir_ty ent.ety) in
      VarMap.add x { ent with v } e)
    env mus

(* ------------------------------------------------------------- driver *)

let lower_fdecl (fd : Ast.fdecl) : Ir.func =
  let params = List.map (fun p -> (p.Ast.pname, ir_ty p.Ast.pty)) fd.fdparams in
  let b = B.create ~name:fd.fdname ~params in
  let env =
    List.fold_left
      (fun (i, env) p ->
        let v = B.arg ~name:p.Ast.pname b i ~ty:(ir_ty p.Ast.pty) in
        (i + 1, VarMap.add p.Ast.pname { v; ety = p.Ast.pty } env))
      (0, VarMap.empty) fd.fdparams
    |> snd
  in
  ignore (lower_stmts b env fd.fdbody);
  let f = B.finish b in
  f.restrict_args <-
    List.filteri (fun i _ -> (List.nth fd.fdparams i).Ast.prestrict)
      (List.mapi (fun i _ -> i) fd.fdparams)
    |> List.map (fun i -> i);
  f

(* Parse and lower a kernel, verifying the result.  Each compile starts
   a fresh predicate intern generation so table state (and the
   pred.hashcons_* counters) never depends on what the domain compiled
   before. *)
let compile (src : string) : Ir.func =
  Pred.reset ();
  let fd = Parser.parse src in
  let f = lower_fdecl fd in
  Verifier.verify f;
  f

(* Compile with the restrict qualifiers stripped (the PolyBench
   "restrict off" configuration). *)
let compile_no_restrict (src : string) : Ir.func =
  Pred.reset ();
  let fd = Parser.parse src in
  let fd = { fd with fdparams = List.map (fun p -> { p with Ast.prestrict = false }) fd.fdparams } in
  let f = lower_fdecl fd in
  Verifier.verify f;
  f

(* Lower one already-parsed declaration (the compile service parses a
   whole translation unit once, then compiles each kernel as its own
   cacheable unit).  The same fresh-generation discipline as [compile]
   applies per unit, so a unit's lowering never depends on which units
   were compiled before it. *)
let compile_fdecl ?(no_restrict = false) (fd : Ast.fdecl) : Ir.func =
  Pred.reset ();
  let fd =
    if no_restrict then
      { fd with
        Ast.fdparams =
          List.map (fun p -> { p with Ast.prestrict = false }) fd.Ast.fdparams }
    else fd
  in
  let f = lower_fdecl fd in
  Verifier.verify f;
  f
