(* The compile-service wire protocol (DESIGN §15): newline-delimited
   JSON over stdin/stdout or a Unix socket.  One line is either

   - a compile request (a JSON object with a "source" member),
   - a batch of compile requests (a JSON array of such objects), or
   - a control operation
     ({"op": "ping" | "stats" | "metrics" | "shutdown"}; metrics takes
     an optional "format": "json" | "text").

   A request line yields one response line; a batch line yields one
   JSON-array line of responses in request order.  Responses carry {b
   no} cache metadata and no timestamps: a response served from the
   artifact cache is byte-identical to one compiled fresh — that is the
   service's determinism contract, and what lets clients diff responses
   across runs.  Cache effectiveness is observable out-of-band via
   {"op": "stats"} and the service.* telemetry counters. *)

module J = Fgv_support.Json
module Version = Fgv_support.Version

let protocol_version = Version.service_protocol

(* ------------------------------------------------------------ requests *)

(* Everything that can change the artifact is an explicit field here and
   participates in the cache key (see {!Cache.key}); [rq_id] is echo-only
   client correlation and deliberately does not. *)
type request = {
  rq_id : string;  (** echoed verbatim in the response; "" when absent *)
  rq_source : string;  (** mini-C kernel text *)
  rq_pipeline : string;  (** a {!Fgv_passes.Pipelines.registry} name, or "none" *)
  rq_no_restrict : bool;  (** compile ignoring [restrict] qualifiers *)
  rq_emit_c : bool;  (** include the checked-mode C lowering *)
  rq_heap : int;  (** heap cells baked into the emitted C memory image *)
}

let default_heap = 1024

let decode_request (j : J.t) : (request, string) result =
  match j with
  | J.Assoc _ -> (
    match J.string_member "source" j with
    | None -> Error "request needs a string \"source\" member"
    | Some source -> (
      let str key default = J.string_member ~default key j in
      let boolean key = J.bool_member ~default:false key j in
      let int_ key default = J.int_member ~default key j in
      match (str "id" "", str "pipeline" "none", boolean "no_restrict",
             boolean "emit_c", int_ "heap" default_heap)
      with
      | Some id, Some pipeline, Some no_restrict, Some emit_c, Some heap ->
        if heap < 1 || heap > 1 lsl 24 then
          Error "\"heap\" must be a positive cell count"
        else
          Ok
            {
              rq_id = id;
              rq_source = source;
              rq_pipeline = pipeline;
              rq_no_restrict = no_restrict;
              rq_emit_c = emit_c;
              rq_heap = heap;
            }
      | _ -> Error "request member has the wrong type"))
  | _ -> Error "request must be a JSON object"

let encode_request (r : request) : J.t =
  J.Assoc
    ((if r.rq_id = "" then [] else [ ("id", J.String r.rq_id) ])
    @ [
        ("source", J.String r.rq_source);
        ("pipeline", J.String r.rq_pipeline);
        ("no_restrict", J.Bool r.rq_no_restrict);
        ("emit_c", J.Bool r.rq_emit_c);
        ("heap", J.Int r.rq_heap);
      ])

(* ----------------------------------------------------------- artifacts *)

(* What a compile produces, and what the cache stores: the printed
   optimized PSSA, the optimization-remark stream the compile emitted
   (as the same flat objects [--remarks=json] prints), the checked-mode
   C when requested, and the per-compile telemetry counter snapshot
   (recorded against an isolated registry, so it is a pure function of
   the request).  Every field is deterministic — no wall-clock anywhere
   — which is what makes cached replies byte-identical to fresh ones. *)
type artifact = {
  ar_func : string;  (** kernel name, anchors the service's remarks *)
  ar_ir : string;  (** printed optimized PSSA *)
  ar_remarks : J.t list;
  ar_c : string option;
  ar_counters : (string * int) list;
}

(* A multi-kernel source compiles each kernel as its own cacheable unit
   and answers with [Compiled_many] in source order; a single-kernel
   source keeps the historical flat encoding, so protocol 2 clients are
   byte-compatible until they send a batched translation unit. *)
type response =
  | Compiled of { id : string; artifact : artifact }
  | Compiled_many of { id : string; artifacts : artifact list }
  | Failed of { id : string; error : string }

let encode_artifact (a : artifact) : (string * J.t) list =
  [
    ("function", J.String a.ar_func);
    ("ir", J.String a.ar_ir);
    ("remarks", J.List a.ar_remarks);
  ]
  @ (match a.ar_c with None -> [] | Some c -> [ ("c", J.String c) ])
  @ [
      ( "counters",
        J.Assoc (List.map (fun (k, v) -> (k, J.Int v)) a.ar_counters) );
    ]

let encode_response (r : response) : J.t =
  match r with
  | Failed { id; error } ->
    J.Assoc
      ((if id = "" then [] else [ ("id", J.String id) ])
      @ [ ("ok", J.Bool false); ("error", J.String error) ])
  | Compiled { id; artifact = a } ->
    J.Assoc
      ((if id = "" then [] else [ ("id", J.String id) ])
      @ [ ("ok", J.Bool true) ]
      @ encode_artifact a)
  | Compiled_many { id; artifacts } ->
    J.Assoc
      ((if id = "" then [] else [ ("id", J.String id) ])
      @ [
          ("ok", J.Bool true);
          ( "functions",
            J.List (List.map (fun a -> J.Assoc (encode_artifact a)) artifacts)
          );
        ])

let response_line (r : response) : string =
  J.to_string ~minify:true (encode_response r)

(* ------------------------------------------------------------- control *)

(* The metrics snapshot is served as JSON by default; "text" asks for a
   Prometheus-style exposition (DESIGN §16) carried in the reply's
   "body" member, so the wire framing stays one JSON line either way. *)
type metrics_format = Mjson | Mtext

type control =
  | Cping
  | Cstats
  | Cmetrics of metrics_format
  | Cshutdown

let control_name = function
  | Cping -> "ping"
  | Cstats -> "stats"
  | Cmetrics _ -> "metrics"
  | Cshutdown -> "shutdown"

type line =
  | Single of request
  | Batch of request list
  | Control of control
  | Malformed of string

(* Classify one wire line.  A batch with a malformed element is rejected
   whole: answering k of n requests while silently dropping the rest
   would desynchronize the client's correlation by position. *)
let decode_line (text : string) : line =
  match J.of_string text with
  | Error e -> Malformed ("bad JSON: " ^ e)
  | Ok (J.List items) -> (
    let rec decode acc = function
      | [] -> Batch (List.rev acc)
      | item :: rest -> (
        match decode_request item with
        | Ok r -> decode (r :: acc) rest
        | Error e ->
          Malformed
            (Printf.sprintf "batch element %d: %s" (List.length acc) e))
    in
    match items with
    | [] -> Malformed "empty batch"
    | items -> decode [] items)
  | Ok j -> (
    match J.string_member "op" j with
    | Some "ping" -> Control Cping
    | Some "stats" -> Control Cstats
    | Some "metrics" -> (
      match J.string_member ~default:"json" "format" j with
      | Some "json" -> Control (Cmetrics Mjson)
      | Some "text" -> Control (Cmetrics Mtext)
      | Some f -> Malformed ("unknown metrics format " ^ f)
      | None -> Malformed "\"format\" must be a string")
    | Some "shutdown" -> Control Cshutdown
    | Some op -> Malformed ("unknown op " ^ op)
    | None -> (
      match decode_request j with
      | Ok r -> Single r
      | Error e -> Malformed e))

let error_line (msg : string) : string =
  response_line (Failed { id = ""; error = msg })
