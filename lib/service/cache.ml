(* Content-addressed artifact cache for the compile service (DESIGN
   §15), following the two exemplars the roadmap names: mandala's
   content-based versioning ("recompute only when the logic behind it
   has changed") and version_manager's fingerprint-index-eviction
   triple.

   The key is a digest of everything that determines the artifact and
   nothing that doesn't:

   - the {e canonicalized} source — the lexed token stream, so
     whitespace and comment edits (and numerically identical float
     literals) map to the same key;
   - the pipeline name;
   - the flags that steer compilation ([no_restrict]; [heap]
     participates only when [emit_c] does, because the heap image is
     baked into the emitted C and affects nothing else);
   - the tool version ({!Fgv_support.Version.tool}) — the compiler
     itself is the "logic behind" every artifact, so upgrading it must
     invalidate the whole cache rather than serve stale codegen.

   The request [id] is correlation metadata and deliberately absent.

   Eviction is least-recently-used with a hard entry cap
   ([--cache-max], version_manager's [max_versions]): every lookup
   stamps the entry with a monotonic tick, and inserting past the cap
   evicts the smallest stamp.  Stamps are unique, so eviction order is
   deterministic whatever the hashtable's iteration order.

   Failed compiles are never cached: an error response is cheap to
   recompute and a cached failure would outlive transient causes. *)

module Tm = Fgv_support.Telemetry
module Version = Fgv_support.Version
module Lexer = Fgv_frontend.Lexer

let schema_version = Version.cache_schema

(* ------------------------------------------------------ key derivation *)

(* One token, rendered unambiguously: floats by IEEE bits (1.0 and 1.00
   collide on purpose; 0.1 and 0.2 never), everything else by spelling.
   Space-joining is injective because no token's rendering contains a
   space. *)
let token_repr = function
  | Lexer.TInt n -> string_of_int n
  | Lexer.TFloat x -> Printf.sprintf "f%Lx" (Int64.bits_of_float x)
  | Lexer.TIdent s -> s
  | Lexer.TPunct s -> s
  | Lexer.TEOF -> "$"

(* The canonical text the key hashes: the token stream when the source
   lexes, the raw bytes (tagged, so the two spaces can't collide) when
   it doesn't — an unlexable request still gets a stable key, it just
   loses whitespace-insensitivity along with everything else. *)
let canonical_source (src : string) : string =
  match Lexer.tokenize src with
  | tokens ->
    String.concat " " (List.map token_repr (Array.to_list tokens))
  | exception Lexer.Error _ -> "!raw\x00" ^ src

let flag_fields (rq : Protocol.request) : string list =
  [
    rq.rq_pipeline;
    (if rq.rq_no_restrict then "no-restrict" else "restrict");
    (if rq.rq_emit_c then Printf.sprintf "emit-c:%d" rq.rq_heap else "no-c");
  ]

let key (rq : Protocol.request) : string =
  let fields =
    Version.tool :: canonical_source rq.rq_source :: flag_fields rq
  in
  Digest.to_hex (Digest.string (String.concat "\x00" fields))

(* Per-function sub-key (DESIGN §17): the canonical text is one kernel's
   own token slice, so in a batched translation unit an edit to one
   kernel changes only that kernel's key — every untouched sibling keeps
   hitting.  The "unit:" tag keeps unit keys disjoint from whole-request
   keys even for a single-kernel source whose slice happens to equal the
   full token stream. *)
let unit_canonical (slice : Lexer.token array) : string =
  String.concat " " (List.map token_repr (Array.to_list slice))

let unit_key (rq : Protocol.request) (slice : Lexer.token array) : string =
  let fields =
    Version.tool :: ("unit:" ^ unit_canonical slice) :: flag_fields rq
  in
  Digest.to_hex (Digest.string (String.concat "\x00" fields))

(* ------------------------------------------------------------ the cache *)

type slot = {
  mutable s_artifact : Protocol.artifact;
  mutable s_stamp : int;
}

type t = {
  tbl : (string, slot) Hashtbl.t;
  max_entries : int;
  mutable tick : int;
  mutable evictions : int;  (** lifetime total, for the stats op *)
}

let default_max = 128

let create ?(max_entries = default_max) () : t =
  {
    tbl = Hashtbl.create 64;
    max_entries = max 1 max_entries;
    tick = 0;
    evictions = 0;
  }

let length (c : t) = Hashtbl.length c.tbl

let capacity (c : t) = c.max_entries

let evictions (c : t) = c.evictions

let mem (c : t) (k : string) = Hashtbl.mem c.tbl k

(* Lookup bumps recency; call order therefore defines the LRU order, so
   the service touches entries in request order (deterministic at any
   job count — workers never touch the cache). *)
let find (c : t) (k : string) : Protocol.artifact option =
  match Hashtbl.find_opt c.tbl k with
  | None -> None
  | Some slot ->
    c.tick <- c.tick + 1;
    slot.s_stamp <- c.tick;
    Some slot.s_artifact

let evict_lru (c : t) =
  let victim =
    Hashtbl.fold
      (fun k slot acc ->
        match acc with
        | Some (_, stamp) when stamp <= slot.s_stamp -> acc
        | _ -> Some (k, slot.s_stamp))
      c.tbl None
  in
  match victim with
  | None -> ()
  | Some (k, _) ->
    Hashtbl.remove c.tbl k;
    c.evictions <- c.evictions + 1;
    Tm.incr "service.cache.evictions"

let insert (c : t) (k : string) (a : Protocol.artifact) : unit =
  c.tick <- c.tick + 1;
  (match Hashtbl.find_opt c.tbl k with
  | Some slot ->
    slot.s_artifact <- a;
    slot.s_stamp <- c.tick
  | None -> Hashtbl.replace c.tbl k { s_artifact = a; s_stamp = c.tick });
  while Hashtbl.length c.tbl > c.max_entries do
    evict_lru c
  done
