(* The compile-service loop (DESIGN §15): take {!Protocol} lines from a
   channel or a Unix socket, fan distinct compiles across the
   work-stealing {!Fgv_support.Pool}, answer from the content-addressed
   {!Cache} when the key is already resolved.

   Determinism contract: for a fixed request sequence the response byte
   stream is identical at any [--jobs] count and whatever the cache has
   absorbed, because

   - each compile runs against an isolated telemetry registry and a
     remark collector, so artifacts are pure functions of the request;
   - worker shards are merged back in request order, never join order;
   - cache recency/eviction is driven only from the coordinating domain,
     in request order;
   - responses carry no cache metadata and no timestamps.

   Hit accounting (the only place cached and fresh diverge, and it is
   out-of-band): a request whose key is already resolved in the cache is
   a {e hit}; a duplicate of an earlier request in the same batch is
   {e coalesced} (one compile serves all copies, but the cache cannot
   take credit); everything else is a {e miss}.  So
   hits + coalesced + misses = requests. *)

module J = Fgv_support.Json
module Tm = Fgv_support.Telemetry
module Tr = Fgv_support.Trace
module H = Fgv_support.Histogram
module Ev = Fgv_support.Eventlog
module Pool = Fgv_support.Pool
module Version = Fgv_support.Version
module Lower_ast = Fgv_frontend.Lower_ast
module P = Protocol

type t = {
  cache : Cache.t;
  jobs : int;
  slow_ms : float option;
      (** emit a warn-level event when a request exceeds this *)
  started : float;  (** wall clock at {!create}, for metrics uptime *)
  h_request : H.t;  (** per-request service latency (coordinator-only) *)
  h_batch : H.t;  (** whole-batch wall time (coordinator-only) *)
  mutable requests : int;
  mutable batches : int;
  mutable hits : int;
  mutable coalesced : int;
  mutable misses : int;
  mutable errors : int;
  (* incremental (per-kernel unit) accounting, DESIGN §17: a request
     splits into one unit per top-level kernel; each unit is asked,
     and either hits the artifact cache, coalesces onto a same-batch
     duplicate, or recompiles.  [uinvalidated] counts recompiles of a
     kernel {e name} the service had already compiled under a different
     content fingerprint — i.e. edits detected, not first sights. *)
  mutable uqueries : int;
  mutable uhits : int;
  mutable uinvalidated : int;
  mutable urecomputed : int;
  fp_by_name : (string, string) Hashtbl.t;
      (** kernel name -> unit key of its last compiled content *)
}

let create ?(jobs = Pool.default_jobs ()) ?cache_max ?slow_ms () : t =
  {
    cache = Cache.create ?max_entries:cache_max ();
    jobs = max 1 jobs;
    slow_ms;
    started = Unix.gettimeofday ();
    h_request = H.create ();
    h_batch = H.create ();
    requests = 0;
    batches = 0;
    hits = 0;
    coalesced = 0;
    misses = 0;
    errors = 0;
    uqueries = 0;
    uhits = 0;
    uinvalidated = 0;
    urecomputed = 0;
    fp_by_name = Hashtbl.create 64;
  }

(* ----------------------------------------------------------- compiling *)

(* Optimize and package one lowered function: pipeline, verifier,
   optional C lowering.  Shared by the whole-source fallback path and
   the per-kernel unit path. *)
let package_artifact (rq : P.request) (f : Fgv_pssa.Ir.func) :
    (P.artifact, string) result =
  match
    if rq.P.rq_pipeline = "none" then Some (fun ?on_pass:_ _f -> ())
    else Fgv_passes.Pipelines.find rq.P.rq_pipeline
  with
  | None ->
    Error
      (Printf.sprintf "unknown pipeline %s (one of: %s)" rq.P.rq_pipeline
         (String.concat ", " ("none" :: Fgv_passes.Pipelines.names)))
  | Some apply -> (
    match Tr.collect_remarks (fun () -> apply ?on_pass:None f) with
    | exception exn ->
      Error ("pipeline crashed: " ^ Printexc.to_string exn)
    | (), remarks -> (
      match Fgv_pssa.Verifier.verify_or_message f with
      | Some m -> Error ("optimized IR is ill-formed: " ^ m)
      | None ->
        let c =
          if not rq.P.rq_emit_c then None
          else
            let mem =
              Array.init rq.P.rq_heap (fun i ->
                  Fgv_pssa.Value.VFloat (Float.of_int (i mod 7)))
            in
            Some (Fgv_backend.Emit.checked (Fgv_cfg.Lower.lower f) ~mem)
        in
        Ok
          {
            P.ar_func = f.Fgv_pssa.Ir.fname;
            ar_ir = Fgv_pssa.Printer.to_string f;
            ar_remarks = List.map Tr.remark_json remarks;
            ar_c = c;
            ar_counters = [];
          }))

(* One cold whole-source compile: frontend, pipeline, verifier, optional
   C lowering.  Runs inside a pool worker under an isolated telemetry
   registry, so the counter snapshot it returns is exactly this
   compile's.  Remarks are collected rather than streamed: they belong
   to the artifact.  Used when the source does not split into kernel
   units (it does not lex/parse), so the request's own error comes from
   the same frontend path it always did. *)
let compile_artifact (rq : P.request) : (P.artifact, string) result =
  match
    (if rq.rq_no_restrict then Lower_ast.compile_no_restrict
     else Lower_ast.compile)
      rq.rq_source
  with
  | exception Fgv_frontend.Lexer.Error m -> Error ("lex error: " ^ m)
  | exception Fgv_frontend.Parser.Error m -> Error ("parse error: " ^ m)
  | exception Lower_ast.Error m -> Error ("lowering error: " ^ m)
  | f -> package_artifact rq f

(* One cold per-kernel compile, from the already-parsed declaration. *)
let compile_unit (rq : P.request) (fd : Fgv_frontend.Ast.fdecl) :
    (P.artifact, string) result =
  match Lower_ast.compile_fdecl ~no_restrict:rq.P.rq_no_restrict fd with
  | exception Lower_ast.Error m -> Error ("lowering error: " ^ m)
  | f -> package_artifact rq f

(* ------------------------------------------------------------- batches *)

(* One compile unit of a request: a top-level kernel with its own cache
   sub-key, or the whole source when it does not parse (so the error
   response comes from the same frontend path it always did, and is
   never cached). *)
type unit_src =
  | Ufn of Fgv_frontend.Ast.fdecl
  | Uwhole

(* Split a request into (unit, key) pairs, in source order. *)
let split_units (rq : P.request) : (unit_src * string) list =
  match Fgv_frontend.Parser.parse_program rq.P.rq_source with
  | units ->
    List.map (fun (fd, slice) -> (Ufn fd, Cache.unit_key rq slice)) units
  | exception (Fgv_frontend.Lexer.Error _ | Fgv_frontend.Parser.Error _) ->
    [ (Uwhole, Cache.key rq) ]

type resolution =
  | Hit of P.artifact * float
      (** artifact grabbed at classification, before any insert can
          evict it, plus the lookup's wall seconds *)
  | Await of [ `Miss | `Coalesced ]

(* Outcome slug for access-log records and slow-request warnings.  A
   multi-unit request reports the most expensive outcome any of its
   units had: one recompiled kernel makes the request a miss however
   many siblings hit. *)
let resolution_name = function
  | Hit _ -> "hit"
  | Await `Miss -> "miss"
  | Await `Coalesced -> "coalesced"

let request_outcome (units : resolution list) : string =
  if List.exists (function Await `Miss -> true | _ -> false) units then "miss"
  else if List.exists (function Await `Coalesced -> true | _ -> false) units
  then "coalesced"
  else "hit"

let handle_batch (t : t) (reqs : P.request list) : P.response list =
  t.batches <- t.batches + 1;
  Tm.incr "service.batches";
  let batch_start = Unix.gettimeofday () in
  let seq_base = t.requests in
  (* seq of the i-th request of this batch, monotonic per service *)
  let seq i = seq_base + i + 1 in
  let keyed = List.map (fun rq -> (rq, split_units rq)) reqs in
  (* Classify every unit in request order; collect distinct unresolved
     keys in first-occurrence order (tagged with their request seq so
     worker spans can carry it).  All cache touches happen here on the
     coordinating domain, so recency and eviction stay deterministic at
     any job count. *)
  let pending = ref [] in
  let pending_set = Hashtbl.create 16 in
  let plan =
    List.mapi
      (fun i (rq, units) ->
        t.requests <- t.requests + 1;
        Tm.incr "service.requests";
        Tr.with_span ~cat:"service"
          ~args:[ ("seq", J.Int (seq i)) ]
          "service.lookup"
          (fun () ->
            List.map
              (fun (u, key) ->
                t.uqueries <- t.uqueries + 1;
                Tm.incr "service.incremental.queries_asked";
                let t0 = Unix.gettimeofday () in
                match Cache.find t.cache key with
                | Some a ->
                  let dt = Unix.gettimeofday () -. t0 in
                  t.uhits <- t.uhits + 1;
                  Tm.incr "service.cache.hits";
                  Tm.incr "service.incremental.memo_hits";
                  Tr.remark (Tr.anchor a.P.ar_func)
                    (Tr.Cache_hit { key; pipeline = rq.P.rq_pipeline });
                  Hit (a, dt)
                | None ->
                  if Hashtbl.mem pending_set key then begin
                    Tm.incr "service.cache.coalesced";
                    Await `Coalesced
                  end
                  else begin
                    Tm.incr "service.cache.misses";
                    t.urecomputed <- t.urecomputed + 1;
                    Tm.incr "service.incremental.recomputed";
                    (* an edit: this kernel name was compiled before,
                       under different content/flags *)
                    (match u with
                    | Ufn fd ->
                      let name = fd.Fgv_frontend.Ast.fdname in
                      (match Hashtbl.find_opt t.fp_by_name name with
                      | Some old_key when old_key <> key ->
                        t.uinvalidated <- t.uinvalidated + 1;
                        Tm.incr "service.incremental.invalidated"
                      | _ -> ());
                      Hashtbl.replace t.fp_by_name name key
                    | Uwhole -> ());
                    Hashtbl.add pending_set key ();
                    pending := (rq, u, key, seq i) :: !pending;
                    Await `Miss
                  end)
              units))
      keyed
  in
  (* Compile the distinct misses in parallel, each against an isolated
     telemetry registry; merge shards back in request order so the
     global counters are deterministic at any job count.  Each compile
     is a trace span carrying its request seq, and its wall seconds
     ride back with the result for the access log (a coalesced
     duplicate shares the one compile's duration). *)
  let fresh = Hashtbl.create 16 in
  (match List.rev !pending with
  | [] -> ()
  | pending ->
    let compiled =
      Pool.map ~jobs:t.jobs
        (fun (rq, u, key, sq) ->
          let t0 = Unix.gettimeofday () in
          let result, shard =
            Tr.with_span ~cat:"service"
              ~args:
                [ ("seq", J.Int sq); ("pipeline", J.String rq.P.rq_pipeline) ]
              "service.compile"
              (fun () ->
                Tm.isolated (fun () ->
                    Tm.incr "service.compiles";
                    match u with
                    | Uwhole -> compile_artifact rq
                    | Ufn fd -> compile_unit rq fd))
          in
          let result =
            Result.map
              (fun a -> { a with P.ar_counters = Tm.shard_counters shard })
              result
          in
          (key, result, shard, Unix.gettimeofday () -. t0))
        pending
    in
    List.iter
      (fun (key, result, shard, dur) ->
        Tm.merge_shard shard;
        Hashtbl.replace fresh key (result, dur);
        match result with
        | Ok a -> Cache.insert t.cache key a
        | Error _ -> ())
      compiled);
  (* Answer in request order, units in source order.  A request whose
     units all compiled answers [Compiled] (one unit, the historical
     flat encoding) or [Compiled_many]; any failed unit fails the whole
     request with the first unit's error — partial translation units
     would be unanchorable by position.  Failed compiles are not
     cached, but every same-batch duplicate shares the one error. *)
  let unit_result key = function
    | Hit (a, _) -> Ok a
    | Await _ -> (
      match Hashtbl.find_opt fresh key with
      | Some (r, _) -> r
      | None -> Error "internal: compile lost")
  in
  let responses =
    List.map2
      (fun (rq, units) resolutions ->
        let results =
          List.map2 (fun (_, key) r -> unit_result key r) units resolutions
        in
        match
          List.find_opt (function Error _ -> true | Ok _ -> false) results
        with
        | Some (Error e) ->
          t.errors <- t.errors + 1;
          Tm.incr "service.errors";
          P.Failed { id = rq.P.rq_id; error = e }
        | _ -> (
          match List.map Result.get_ok results with
          | [ a ] -> P.Compiled { id = rq.P.rq_id; artifact = a }
          | artifacts -> P.Compiled_many { id = rq.P.rq_id; artifacts }))
      keyed plan
  in
  (* Request-level hit accounting: unchanged semantics for the
     single-kernel sources every pre-batching client sends (one unit =
     one request), and hits + coalesced + misses = requests always. *)
  List.iter
    (fun resolutions ->
      match request_outcome resolutions with
      | "hit" -> t.hits <- t.hits + 1
      | "coalesced" -> t.coalesced <- t.coalesced + 1
      | _ -> t.misses <- t.misses + 1)
    plan;
  (* Access log + latency histograms, in request order, coordinator
     only — the event file's line order matches seq at any job count.
     Every field except the [timing] member is a pure function of the
     request stream (DESIGN §16); a coalesced request reports its
     provider's compile duration, a multi-unit request the sum of its
     units'. *)
  let unit_duration key = function
    | Hit (_, dt) -> dt
    | Await _ -> (
      match Hashtbl.find_opt fresh key with Some (_, d) -> d | None -> 0.0)
  in
  let duration_of units resolutions =
    List.fold_left2
      (fun acc (_, key) r -> acc +. unit_duration key r)
      0.0 units resolutions
  in
  List.iteri
    (fun i ((rq, units), (resolutions, response)) ->
      let dur = duration_of units resolutions in
      H.record t.h_request dur;
      let outcome = request_outcome resolutions in
      let key = match units with (_, k) :: _ -> k | [] -> "" in
      if Ev.enabled Ev.Info then
        Ev.emit Ev.Info "access"
          ([
             ("seq", J.Int (seq i));
             ("outcome", String outcome);
             ("pipeline", String rq.P.rq_pipeline);
             ("key", String key);
           ]
          @ (match units with
            | _ :: _ :: _ -> [ ("units", J.Int (List.length units)) ]
            | _ -> [])
          @
          match response with
          | P.Compiled { artifact = a; _ } ->
            [
              ("ok", J.Bool true);
              ("function", String a.P.ar_func);
              ("remarks", Int (List.length a.P.ar_remarks));
              ("counters", Int (List.length a.P.ar_counters));
            ]
          | P.Compiled_many { artifacts; _ } ->
            [
              ("ok", J.Bool true);
              ( "function",
                String
                  (String.concat ","
                     (List.map (fun a -> a.P.ar_func) artifacts)) );
              ( "remarks",
                Int
                  (List.fold_left
                     (fun n a -> n + List.length a.P.ar_remarks)
                     0 artifacts) );
              ( "counters",
                Int
                  (List.fold_left
                     (fun n a -> n + List.length a.P.ar_counters)
                     0 artifacts) );
            ]
          | P.Failed { error; _ } ->
            [ ("ok", J.Bool false); ("error", String error) ])
          ~timing:[ ("duration_s", J.Float dur) ];
      match t.slow_ms with
      | Some threshold when dur *. 1000.0 > threshold ->
        Ev.emit Ev.Warn "slow-request"
          [
            ("seq", J.Int (seq i));
            ("outcome", String outcome);
            ("key", String key);
            ("threshold_ms", Float threshold);
          ]
          ~timing:[ ("duration_s", J.Float dur) ]
      | _ -> ())
    (List.combine keyed (List.combine plan responses));
  let batch_dur = Unix.gettimeofday () -. batch_start in
  H.record t.h_batch batch_dur;
  Ev.emit Ev.Debug "batch"
    [
      ("size", J.Int (List.length reqs));
      ("compiles", Int (Hashtbl.length fresh));
    ]
    ~timing:[ ("duration_s", J.Float batch_dur) ];
  responses

let handle_request (t : t) (rq : P.request) : P.response =
  match handle_batch t [ rq ] with [ r ] -> r | _ -> assert false

(* ------------------------------------------------------------- control *)

let ping_line (t : t) : string =
  J.to_string ~minify:true
    (J.Assoc
       [
         ("ok", J.Bool true);
         ("version", J.String Version.banner);
         ("protocol", J.Int P.protocol_version);
         ("cache_schema", J.Int Cache.schema_version);
         ("jobs", J.Int t.jobs);
       ])

(* One snapshot type feeds both {"op":"stats"} and {"op":"metrics"}
   (both formats), so the two endpoints cannot drift: every field here
   is a deterministic function of the request stream — wall-clock data
   (uptime, the latency histograms) is added only by the metrics
   encoders, under their "timing" member. *)
type snapshot = {
  sn_requests : int;
  sn_batches : int;
  sn_hits : int;
  sn_coalesced : int;
  sn_misses : int;
  sn_errors : int;
  sn_entries : int;
  sn_capacity : int;
  sn_evictions : int;
  (* per-kernel unit accounting (DESIGN §17) *)
  sn_uqueries : int;
  sn_uhits : int;
  sn_uinvalidated : int;
  sn_urecomputed : int;
}

let snapshot (t : t) : snapshot =
  {
    sn_requests = t.requests;
    sn_batches = t.batches;
    sn_hits = t.hits;
    sn_coalesced = t.coalesced;
    sn_misses = t.misses;
    sn_errors = t.errors;
    sn_entries = Cache.length t.cache;
    sn_capacity = Cache.capacity t.cache;
    sn_evictions = Cache.evictions t.cache;
    sn_uqueries = t.uqueries;
    sn_uhits = t.uhits;
    sn_uinvalidated = t.uinvalidated;
    sn_urecomputed = t.urecomputed;
  }

(* Unit-level reuse: how many per-kernel asks the artifact cache
   answered.  The bench incremental lane's reuse-rate figure. *)
let reuse_rate (sn : snapshot) : float =
  if sn.sn_uqueries = 0 then 0.0
  else float_of_int sn.sn_uhits /. float_of_int sn.sn_uqueries

let incremental_json (sn : snapshot) : J.t =
  J.Assoc
    [
      ("queries_asked", J.Int sn.sn_uqueries);
      ("memo_hits", J.Int sn.sn_uhits);
      ("invalidated", J.Int sn.sn_uinvalidated);
      ("recomputed", J.Int sn.sn_urecomputed);
      ("reuse_rate", J.Float (reuse_rate sn));
    ]

let hit_rate (sn : snapshot) : float =
  if sn.sn_requests = 0 then 0.0
  else float_of_int sn.sn_hits /. float_of_int sn.sn_requests

let stats_line (t : t) : string =
  let sn = snapshot t in
  J.to_string ~minify:true
    (J.Assoc
       [
         ("ok", J.Bool true);
         ("requests", J.Int sn.sn_requests);
         ("batches", J.Int sn.sn_batches);
         ("hits", J.Int sn.sn_hits);
         ("coalesced", J.Int sn.sn_coalesced);
         ("misses", J.Int sn.sn_misses);
         ("errors", J.Int sn.sn_errors);
         ("entries", J.Int sn.sn_entries);
         ("capacity", J.Int sn.sn_capacity);
         ("evictions", J.Int sn.sn_evictions);
         ("incremental", incremental_json sn);
       ])

(* {"op":"metrics"}: the same snapshot plus the latency histograms and
   uptime — everything wall-derived under "timing", so the non-timing
   projection is byte-identical at any --jobs (DESIGN §16). *)
let metrics_json (t : t) : J.t =
  let sn = snapshot t in
  J.Assoc
    [
      ("ok", J.Bool true);
      ("schema", J.Int Version.metrics_schema);
      ( "counters",
        J.Assoc
          [
            ("requests", J.Int sn.sn_requests);
            ("batches", J.Int sn.sn_batches);
            ("hits", J.Int sn.sn_hits);
            ("coalesced", J.Int sn.sn_coalesced);
            ("misses", J.Int sn.sn_misses);
            ("errors", J.Int sn.sn_errors);
          ] );
      ( "cache",
        J.Assoc
          [
            ("entries", J.Int sn.sn_entries);
            ("capacity", J.Int sn.sn_capacity);
            ("evictions", J.Int sn.sn_evictions);
            ("hit_rate", J.Float (hit_rate sn));
          ] );
      ("incremental", incremental_json sn);
      ( "timing",
        J.Assoc
          [
            ("uptime_s", J.Float (Unix.gettimeofday () -. t.started));
            ( "histograms",
              J.Assoc
                [
                  ("request", H.to_json t.h_request);
                  ("batch", H.to_json t.h_batch);
                ] );
          ] );
    ]

(* Prometheus-style text exposition of the same snapshot.  Histograms
   use the standard cumulative _bucket{le=...} encoding; there is no
   _sum series because histograms deliberately keep no float sum (see
   Histogram). *)
let metrics_text (t : t) : string =
  let sn = snapshot t in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let scalar name kind v = line "# TYPE %s %s" name kind; line "%s %s" name v in
  let counter name v = scalar name "counter" (string_of_int v) in
  let gauge name v = scalar name "gauge" v in
  let prom_float v =
    match J.float_repr v with "1e999" -> "+Inf" | "-1e999" -> "-Inf" | s -> s
  in
  let histogram name h =
    line "# TYPE %s histogram" name;
    let cum = ref 0 in
    List.iter
      (fun (_, hi, c) ->
        cum := !cum + c;
        if hi <> infinity then
          line "%s_bucket{le=\"%s\"} %d" name (prom_float hi) !cum)
      (H.buckets h);
    line "%s_bucket{le=\"+Inf\"} %d" name (H.count h);
    line "%s_count %d" name (H.count h)
  in
  counter "fgv_requests_total" sn.sn_requests;
  counter "fgv_batches_total" sn.sn_batches;
  counter "fgv_cache_hits_total" sn.sn_hits;
  counter "fgv_cache_coalesced_total" sn.sn_coalesced;
  counter "fgv_cache_misses_total" sn.sn_misses;
  counter "fgv_errors_total" sn.sn_errors;
  gauge "fgv_cache_entries" (string_of_int sn.sn_entries);
  gauge "fgv_cache_capacity" (string_of_int sn.sn_capacity);
  counter "fgv_cache_evictions_total" sn.sn_evictions;
  gauge "fgv_cache_hit_rate" (prom_float (hit_rate sn));
  counter "fgv_incremental_queries_total" sn.sn_uqueries;
  counter "fgv_incremental_memo_hits_total" sn.sn_uhits;
  counter "fgv_incremental_invalidated_total" sn.sn_uinvalidated;
  counter "fgv_incremental_recomputed_total" sn.sn_urecomputed;
  gauge "fgv_incremental_reuse_rate" (prom_float (reuse_rate sn));
  gauge "fgv_uptime_seconds"
    (prom_float (Unix.gettimeofday () -. t.started));
  histogram "fgv_request_duration_seconds" t.h_request;
  histogram "fgv_batch_duration_seconds" t.h_batch;
  Buffer.contents buf

let metrics_line (t : t) (fmt : P.metrics_format) : string =
  match fmt with
  | P.Mjson -> J.to_string ~minify:true (metrics_json t)
  | P.Mtext ->
    J.to_string ~minify:true
      (J.Assoc
         [
           ("ok", J.Bool true);
           ("schema", J.Int Version.metrics_schema);
           ("format", J.String "text");
           ("body", J.String (metrics_text t));
         ])

type step = Reply of string | Quit of string

(* One wire line in, one wire line out (plus whether to stop). *)
let handle_line (t : t) (text : string) : step =
  match P.decode_line text with
  | P.Malformed e -> Reply (P.error_line e)
  | P.Single rq -> Reply (P.response_line (handle_request t rq))
  | P.Batch rqs ->
    Reply
      (J.to_string ~minify:true
         (J.List (List.map P.encode_response (handle_batch t rqs))))
  | P.Control c -> (
    Ev.emit Ev.Debug "control" [ ("op", J.String (P.control_name c)) ];
    match c with
    | P.Cping -> Reply (ping_line t)
    | P.Cstats -> Reply (stats_line t)
    | P.Cmetrics fmt -> Reply (metrics_line t fmt)
    | P.Cshutdown ->
      Quit (J.to_string ~minify:true (J.Assoc [ ("ok", J.Bool true) ])))

(* ----------------------------------------------------------- transports *)

let serve_channel (t : t) (ic : in_channel) (oc : out_channel) :
    [ `Eof | `Shutdown ] =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> `Eof
    | line when String.trim line = "" -> loop ()
    | line -> (
      match handle_line t line with
      | Reply s ->
        output_string oc s;
        output_char oc '\n';
        flush oc;
        loop ()
      | Quit s ->
        output_string oc s;
        output_char oc '\n';
        flush oc;
        `Shutdown)
  in
  loop ()

(* Unix-domain socket transport: connections are accepted and served one
   at a time (the parallelism budget lives inside a batch, not across
   clients), the cache persists across connections, and {"op":
   "shutdown"} from any client stops the accept loop. *)
let serve_socket (t : t) (path : string) : unit =
  if Sys.unix then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let outcome =
          (* A client hanging up mid-reply is its problem, not ours. *)
          try serve_channel t ic oc with Sys_error _ -> `Eof
        in
        (try close_out_noerr oc with Sys_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        match outcome with `Shutdown -> () | `Eof -> accept_loop ()
      in
      accept_loop ())
