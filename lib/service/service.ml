(* The compile-service loop (DESIGN §15): take {!Protocol} lines from a
   channel or a Unix socket, fan distinct compiles across the
   work-stealing {!Fgv_support.Pool}, answer from the content-addressed
   {!Cache} when the key is already resolved.

   Determinism contract: for a fixed request sequence the response byte
   stream is identical at any [--jobs] count and whatever the cache has
   absorbed, because

   - each compile runs against an isolated telemetry registry and a
     remark collector, so artifacts are pure functions of the request;
   - worker shards are merged back in request order, never join order;
   - cache recency/eviction is driven only from the coordinating domain,
     in request order;
   - responses carry no cache metadata and no timestamps.

   Hit accounting (the only place cached and fresh diverge, and it is
   out-of-band): a request whose key is already resolved in the cache is
   a {e hit}; a duplicate of an earlier request in the same batch is
   {e coalesced} (one compile serves all copies, but the cache cannot
   take credit); everything else is a {e miss}.  So
   hits + coalesced + misses = requests. *)

module J = Fgv_support.Json
module Tm = Fgv_support.Telemetry
module Tr = Fgv_support.Trace
module Pool = Fgv_support.Pool
module Version = Fgv_support.Version
module Lower_ast = Fgv_frontend.Lower_ast
module P = Protocol

type t = {
  cache : Cache.t;
  jobs : int;
  mutable requests : int;
  mutable batches : int;
  mutable hits : int;
  mutable coalesced : int;
  mutable misses : int;
  mutable errors : int;
}

let create ?(jobs = Pool.default_jobs ()) ?cache_max () : t =
  {
    cache = Cache.create ?max_entries:cache_max ();
    jobs = max 1 jobs;
    requests = 0;
    batches = 0;
    hits = 0;
    coalesced = 0;
    misses = 0;
    errors = 0;
  }

(* ----------------------------------------------------------- compiling *)

(* One cold compile: frontend, pipeline, verifier, optional C lowering.
   Runs inside a pool worker under an isolated telemetry registry, so
   the counter snapshot it returns is exactly this compile's.  Remarks
   are collected rather than streamed: they belong to the artifact. *)
let compile_artifact (rq : P.request) : (P.artifact, string) result =
  match
    ( (if rq.rq_no_restrict then Lower_ast.compile_no_restrict
       else Lower_ast.compile)
        rq.rq_source,
      if rq.rq_pipeline = "none" then Some (fun ?on_pass:_ _f -> ())
      else Fgv_passes.Pipelines.find rq.rq_pipeline )
  with
  | exception Fgv_frontend.Lexer.Error m -> Error ("lex error: " ^ m)
  | exception Fgv_frontend.Parser.Error m -> Error ("parse error: " ^ m)
  | exception Lower_ast.Error m -> Error ("lowering error: " ^ m)
  | _, None ->
    Error
      (Printf.sprintf "unknown pipeline %s (one of: %s)" rq.rq_pipeline
         (String.concat ", " ("none" :: Fgv_passes.Pipelines.names)))
  | f, Some apply -> (
    match Tr.collect_remarks (fun () -> apply ?on_pass:None f) with
    | exception exn ->
      Error ("pipeline crashed: " ^ Printexc.to_string exn)
    | (), remarks -> (
      match Fgv_pssa.Verifier.verify_or_message f with
      | Some m -> Error ("optimized IR is ill-formed: " ^ m)
      | None ->
        let c =
          if not rq.rq_emit_c then None
          else
            let mem =
              Array.init rq.rq_heap (fun i ->
                  Fgv_pssa.Value.VFloat (Float.of_int (i mod 7)))
            in
            Some (Fgv_backend.Emit.checked (Fgv_cfg.Lower.lower f) ~mem)
        in
        Ok
          {
            P.ar_func = f.Fgv_pssa.Ir.fname;
            ar_ir = Fgv_pssa.Printer.to_string f;
            ar_remarks = List.map Tr.remark_json remarks;
            ar_c = c;
            ar_counters = [];
          }))

(* ------------------------------------------------------------- batches *)

type resolution =
  | Hit of P.artifact  (** grabbed at classification, before any insert
                           can evict it *)
  | Await of [ `Miss | `Coalesced ]

let handle_batch (t : t) (reqs : P.request list) : P.response list =
  t.batches <- t.batches + 1;
  Tm.incr "service.batches";
  let keyed = List.map (fun rq -> (rq, Cache.key rq)) reqs in
  (* Classify in request order; collect distinct unresolved keys in
     first-occurrence order. *)
  let pending = ref [] in
  let pending_set = Hashtbl.create 16 in
  let plan =
    List.map
      (fun (rq, key) ->
        t.requests <- t.requests + 1;
        Tm.incr "service.requests";
        match Cache.find t.cache key with
        | Some a ->
          t.hits <- t.hits + 1;
          Tm.incr "service.cache.hits";
          Tr.remark (Tr.anchor a.P.ar_func)
            (Tr.Cache_hit { key; pipeline = rq.P.rq_pipeline });
          Hit a
        | None ->
          if Hashtbl.mem pending_set key then begin
            t.coalesced <- t.coalesced + 1;
            Tm.incr "service.cache.coalesced";
            Await `Coalesced
          end
          else begin
            t.misses <- t.misses + 1;
            Tm.incr "service.cache.misses";
            Hashtbl.add pending_set key ();
            pending := (rq, key) :: !pending;
            Await `Miss
          end)
      keyed
  in
  (* Compile the distinct misses in parallel, each against an isolated
     telemetry registry; merge shards back in request order so the
     global counters are deterministic at any job count. *)
  let fresh = Hashtbl.create 16 in
  (match List.rev !pending with
  | [] -> ()
  | pending ->
    let compiled =
      Pool.map ~jobs:t.jobs
        (fun (rq, key) ->
          let result, shard =
            Tm.isolated (fun () ->
                Tm.incr "service.compiles";
                compile_artifact rq)
          in
          let result =
            Result.map
              (fun a -> { a with P.ar_counters = Tm.shard_counters shard })
              result
          in
          (key, result, shard))
        pending
    in
    List.iter
      (fun (key, result, shard) ->
        Tm.merge_shard shard;
        Hashtbl.replace fresh key result;
        match result with
        | Ok a -> Cache.insert t.cache key a
        | Error _ -> ())
      compiled);
  (* Answer in request order.  Failed compiles are not cached, but every
     same-batch duplicate shares the one error. *)
  List.map2
    (fun (rq, key) resolution ->
      match resolution with
      | Hit a -> P.Compiled { id = rq.P.rq_id; artifact = a }
      | Await _ -> (
        match Hashtbl.find_opt fresh key with
        | Some (Ok a) -> P.Compiled { id = rq.P.rq_id; artifact = a }
        | Some (Error e) ->
          t.errors <- t.errors + 1;
          Tm.incr "service.errors";
          P.Failed { id = rq.P.rq_id; error = e }
        | None ->
          t.errors <- t.errors + 1;
          P.Failed { id = rq.P.rq_id; error = "internal: compile lost" }))
    keyed plan

let handle_request (t : t) (rq : P.request) : P.response =
  match handle_batch t [ rq ] with [ r ] -> r | _ -> assert false

(* ------------------------------------------------------------- control *)

let ping_line (t : t) : string =
  J.to_string ~minify:true
    (J.Assoc
       [
         ("ok", J.Bool true);
         ("version", J.String Version.banner);
         ("protocol", J.Int P.protocol_version);
         ("cache_schema", J.Int Cache.schema_version);
         ("jobs", J.Int t.jobs);
       ])

let stats_line (t : t) : string =
  J.to_string ~minify:true
    (J.Assoc
       [
         ("ok", J.Bool true);
         ("requests", J.Int t.requests);
         ("batches", J.Int t.batches);
         ("hits", J.Int t.hits);
         ("coalesced", J.Int t.coalesced);
         ("misses", J.Int t.misses);
         ("errors", J.Int t.errors);
         ("entries", J.Int (Cache.length t.cache));
         ("evictions", J.Int (Cache.evictions t.cache));
       ])

type step = Reply of string | Quit of string

(* One wire line in, one wire line out (plus whether to stop). *)
let handle_line (t : t) (text : string) : step =
  match P.decode_line text with
  | P.Malformed e -> Reply (P.error_line e)
  | P.Single rq -> Reply (P.response_line (handle_request t rq))
  | P.Batch rqs ->
    Reply
      (J.to_string ~minify:true
         (J.List (List.map P.encode_response (handle_batch t rqs))))
  | P.Control "ping" -> Reply (ping_line t)
  | P.Control "stats" -> Reply (stats_line t)
  | P.Control _shutdown ->
    Quit (J.to_string ~minify:true (J.Assoc [ ("ok", J.Bool true) ]))

(* ----------------------------------------------------------- transports *)

let serve_channel (t : t) (ic : in_channel) (oc : out_channel) :
    [ `Eof | `Shutdown ] =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> `Eof
    | line when String.trim line = "" -> loop ()
    | line -> (
      match handle_line t line with
      | Reply s ->
        output_string oc s;
        output_char oc '\n';
        flush oc;
        loop ()
      | Quit s ->
        output_string oc s;
        output_char oc '\n';
        flush oc;
        `Shutdown)
  in
  loop ()

(* Unix-domain socket transport: connections are accepted and served one
   at a time (the parallelism budget lives inside a batch, not across
   clients), the cache persists across connections, and {"op":
   "shutdown"} from any client stops the accept loop. *)
let serve_socket (t : t) (path : string) : unit =
  if Sys.unix then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        let outcome =
          (* A client hanging up mid-reply is its problem, not ours. *)
          try serve_channel t ic oc with Sys_error _ -> `Eof
        in
        (try close_out_noerr oc with Sys_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        match outcome with `Shutdown -> () | `Eof -> accept_loop ()
      in
      accept_loop ())
