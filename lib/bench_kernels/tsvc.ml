(* TSVC kernels (Callahan, Dongarra & Levine) in mini-C, for the Fig. 19
   experiment.  TSVC's arrays are global and therefore known disjoint; we
   model that with restrict-qualified pointer parameters.  LEN is kept
   small (the interpreter's cost model is scale-free).

   The selection covers every behavioural class the paper discusses:
   - plain vectorizable loops (the baseline handles them);
   - loops whose dependencies are loop-variant or data-dependent, which
     only fine-grained versioning vectorizes (s281, s1113, s131, ...);
   - control-flow loops (if-converted);
   - loops no one vectorizes (true recurrences, strided, reductions). *)

open Fgv_pssa

let len = 64

(* array base addresses *)
let a = 0
let b = len
let c = 2 * len
let d = 3 * len
let e = 4 * len
let aa = 5 * len
let heap = 6 * len

let args5 extra =
  List.map (fun n -> Value.VInt n) ([ a; b; c; d; e; aa ] @ extra)

let std_params = "float* restrict a, float* restrict b, float* restrict c, float* restrict d, float* restrict e, float* restrict aa, int n"

let k ?(extra = []) ?(note = "") name body =
  Workload.mk ~name
    ~source:(Printf.sprintf "kernel %s(%s%s) {\n%s\n}" name std_params
               (String.concat ""
                  (List.map (fun (p, _) -> ", int " ^ p) extra))
               body)
    ~args:(args5 (len :: List.map snd extra))
    ~heap ~note ()

let kernels : Workload.kernel list =
  [
    (* ------------------------- plain vectorizable ------------------- *)
    k "s000" ~note:"clean elementwise"
      {| for (int i = 0; i < n; i = i + 1) { a[i] = b[i] + 1.0; } |};
    k "vpv" ~note:"clean elementwise"
      {| for (int i = 0; i < n; i = i + 1) { a[i] = a[i] + b[i]; } |};
    k "vtv" ~note:"clean elementwise"
      {| for (int i = 0; i < n; i = i + 1) { a[i] = a[i] * b[i]; } |};
    k "vpvtv" ~note:"clean elementwise"
      {| for (int i = 0; i < n; i = i + 1) { a[i] = a[i] + b[i] * c[i]; } |};
    k "s1251" ~note:"scalar expansion"
      {| for (int i = 0; i < n; i = i + 1) {
           float s = b[i] + c[i];
           a[i] = s * s;
         } |};
    k "s121" ~note:"anti-dependence, distance 1"
      {| for (int i = 0; i < n - 1; i = i + 1) { a[i] = a[i + 1] + b[i]; } |};
    k "s112" ~note:"descending, write-after-read"
      {| for (int i = n - 2; i >= 0; i = i - 1) { a[i + 1] = a[i] + b[i]; } |};
    k "s241" ~note:"store-to-load forwarding"
      {| for (int i = 0; i < n; i = i + 1) {
           a[i] = b[i] * c[i];
           d[i] = a[i] * e[i];
         } |};
    k "s243" ~note:"three statements"
      {| for (int i = 0; i < n - 1; i = i + 1) {
           a[i] = b[i] + c[i] * d[i];
           b[i] = a[i] + d[i] * e[i];
           a[i] = b[i] + a[i + 1] * d[i];
         } |};
    k "s2244" ~note:"two statements, distinct arrays"
      {| for (int i = 0; i < n - 1; i = i + 1) {
           a[i + 1] = b[i] + e[i];
           a[i] = b[i] + c[i];
         } |};
    (* -------------------- need fine-grained versioning -------------- *)
    k "s281" ~note:"crossing read (paper Fig. 20)"
      {| for (int i = 0; i < n; i = i + 1) {
           float x = a[n - i - 1] + b[i] * c[i];
           a[i] = x - 1.0;
           b[i] = x;
         } |};
    k "s1113" ~note:"read of a[n/2] conflicts mid-array"
      {| for (int i = 0; i < n; i = i + 1) {
           a[i] = a[n / 2] + b[i];
         } |};
    k "s131" ~extra:[ ("m", 1) ] ~note:"symbolic dependence distance"
      {| for (int i = 0; i < n - 1; i = i + 1) {
           a[i] = a[i + m] + b[i];
         } |};
    k "s151" ~extra:[ ("m", 1) ] ~note:"symbolic dependence distance"
      {| for (int i = 0; i < n - 1; i = i + 1) {
           a[i] = a[i + m] + b[i];
           b[i] = b[i] + 1.0;
         } |};
    k "s162" ~extra:[ ("m", 1) ] ~note:"guarded symbolic distance"
      {| if (m > 0) {
           for (int i = 0; i < n - 1; i = i + 1) {
             a[i] = a[i + m] + b[i];
           }
         } |};
    k "s276" ~extra:[ ("m", 32) ] ~note:"crossing threshold"
      {| for (int i = 0; i < n; i = i + 1) {
           if (i < m) { a[i] = a[i] + b[i] * c[i]; }
           else { a[i] = a[i] + b[i] * d[i]; }
         } |};
    (* -------------------------- control flow ------------------------ *)
    k "vif" ~note:"conditional store"
      {| for (int i = 0; i < n; i = i + 1) {
           if (b[i] > 0.0) { a[i] = b[i]; }
         } |};
    k "s271" ~note:"conditional update"
      {| for (int i = 0; i < n; i = i + 1) {
           if (b[i] > 0.0) { a[i] = a[i] + b[i] * c[i]; }
         } |};
    k "s272" ~extra:[ ("t", 0) ] ~note:"two-sided conditional"
      {| for (int i = 0; i < n; i = i + 1) {
           if (e[i] >= (float) t) {
             a[i] = a[i] + c[i] * d[i];
             b[i] = b[i] + c[i] * c[i];
           }
         } |};
    k "s273" ~note:"conditional with side computation"
      {| for (int i = 0; i < n; i = i + 1) {
           a[i] = a[i] + d[i] * e[i];
           if (a[i] < 0.0) { b[i] = b[i] + d[i] * e[i]; }
           c[i] = c[i] + a[i] * d[i];
         } |};
    k "s258" ~note:"speculative scalar (paper Fig. 21)"
      {| float s = 0.0;
         for (int i = 0; i < n; i = i + 1) {
           if (a[i] > 0.0) { s = d[i] * d[i]; }
           b[i] = s * c[i] + d[i];
           e[i] = (s + 1.0) * aa[i];
         } |};
    k "s253" ~note:"conditional select chain"
      {| for (int i = 0; i < n; i = i + 1) {
           float s = a[i] > b[i] ? a[i] - b[i] * d[i] : c[i];
           c[i] = s + d[i];
           a[i] = s * s;
         } |};
    (* --------------------- not vectorizable by anyone --------------- *)
    k "s111" ~note:"stride-2 loop"
      {| for (int i = 1; i < n; i = i + 2) { a[i] = a[i - 1] + b[i]; } |};
    k "s211" ~note:"loop-carried flow dependence"
      {| for (int i = 1; i < n - 1; i = i + 1) {
           a[i] = b[i - 1] + c[i] * d[i];
           b[i] = b[i + 1] - e[i] * d[i];
         } |};
    k "s322" ~note:"second-order recurrence"
      {| for (int i = 2; i < n; i = i + 1) {
           a[i] = a[i] + a[i - 1] * b[i] + a[i - 2] * c[i];
         } |};
    k "s3111" ~note:"sum reduction"
      {| float s = 0.0;
         for (int i = 0; i < n; i = i + 1) {
           if (a[i] > 0.0) { s = s + a[i]; }
         }
         b[0] = s; |};
    k "s1112" ~note:"descending clean"
      {| for (int i = n - 1; i >= 0; i = i - 1) {
           a[i] = b[i] + 1.0;
         } |};
    (* ------------------------- more loop classes -------------------- *)
    k "s113" ~note:"read of a[0] each iteration"
      {| for (int i = 1; i < n; i = i + 1) { a[i] = a[0] + b[i]; } |};
    k "s1115" ~note:"2-D in-place with transpose read"
      {| for (int i = 0; i < 8; i = i + 1) {
           for (int j = 0; j < 8; j = j + 1) {
             aa[i * 8 + j] = aa[i * 8 + j] * aa[j * 8 + i] + b[j];
           }
         } |};
    k "s116" ~note:"manually unrolled copy chain"
      {| for (int i = 0; i < n - 5; i = i + 5) {
           a[i] = a[i + 1] * a[i];
           a[i + 1] = a[i + 2] * a[i + 1];
           a[i + 2] = a[i + 3] * a[i + 2];
           a[i + 3] = a[i + 4] * a[i + 3];
           a[i + 4] = a[i + 5] * a[i + 4];
         } |};
    k "s1119" ~note:"2-D sum over rows"
      {| for (int i = 1; i < 8; i = i + 1) {
           for (int j = 0; j < 8; j = j + 1) {
             aa[i * 8 + j] = aa[(i - 1) * 8 + j] + b[j];
           }
         } |};
    k "s124" ~note:"if/else feeding one store"
      {| for (int i = 0; i < n; i = i + 1) {
           float t = 0.0;
           if (b[i] > 0.0) { t = b[i] + d[i] * d[i]; }
           else { t = c[i] + d[i] * e[i]; }
           a[i] = t;
         } |};
    k "s125" ~note:"flattened 2-D elementwise"
      {| for (int i = 0; i < 8; i = i + 1) {
           for (int j = 0; j < 8; j = j + 1) {
             c[8 * i + j] = aa[i * 8 + j] + aa[i * 8 + j] * d[j];
           }
         } |};
    k "s173" ~note:"offset by symbolic half"
      {| for (int i = 0; i < n / 2; i = i + 1) {
           a[i + n / 2] = a[i] + b[i];
         } |};
    k "s174" ~extra:[ ("m", 32) ] ~note:"offset by parameter"
      {| for (int i = 0; i < m; i = i + 1) {
           a[i + m] = a[i] + b[i];
         } |};
    k "s175" ~note:"stride from parameter (here 1)"
      {| for (int i = 0; i < n - 1; i = i + 1) {
           a[i] = a[i + 1] + b[i];
         } |};
    k "s212" ~note:"write before read, distance 1"
      {| for (int i = 0; i < n - 1; i = i + 1) {
           a[i] = a[i] * c[i];
           b[i] = a[i + 1] * d[i] + b[i];
         } |};
    k "s221" ~note:"partially vectorizable recurrence"
      {| for (int i = 1; i < n; i = i + 1) {
           a[i] = a[i] + c[i] * d[i];
           b[i] = b[i - 1] + a[i] + d[i];
         } |};
    k "s222" ~note:"recurrence between two updates"
      {| for (int i = 1; i < n; i = i + 1) {
           a[i] = a[i] + b[i] * c[i];
           e[i] = e[i - 1] * e[i - 1];
           a[i] = a[i] - b[i] * c[i];
         } |};
    k "s2251" ~note:"clean stream fused with a recurrence"
      {| for (int i = 1; i < n; i = i + 1) {
           a[i] = b[i] + c[i] * d[i];
           e[i] = e[i - 1] * e[i - 1];
         } |};
    k "s231" ~note:"2-D column recurrence"
      {| for (int i = 0; i < 8; i = i + 1) {
           for (int j = 1; j < 8; j = j + 1) {
             aa[j * 8 + i] = aa[(j - 1) * 8 + i] + b[j];
           }
         } |};
    k "s235" ~note:"imperfect nest with column update"
      {| for (int i = 0; i < 8; i = i + 1) {
           a[i] = a[i] + b[i] * c[i];
           for (int j = 1; j < 8; j = j + 1) {
             aa[j * 8 + i] = aa[(j - 1) * 8 + i] + b[j] * a[i];
           }
         } |};
    k "s242" ~extra:[ ("s1", 1); ("s2", 2) ] ~note:"scalar carried sum"
      {| for (int i = 1; i < n; i = i + 1) {
           a[i] = a[i - 1] + (float) s1 + (float) s2 + b[i] + c[i] + d[i];
         } |};
    k "s251" ~note:"scalar expansion chain"
      {| for (int i = 0; i < n; i = i + 1) {
           float s = b[i] + c[i] * d[i];
           a[i] = s * s;
         } |};
    k "s261" ~note:"wrap-around scalar"
      {| float t = b[0];
         for (int i = 1; i < n; i = i + 1) {
           a[i] = t + a[i];
           t = c[i] * d[i];
         } |};
    k "s291" ~note:"wrap-around index"
      {| int im1 = n - 1;
         for (int i = 0; i < n; i = i + 1) {
           a[i] = (b[i] + b[im1]) * 0.5;
           im1 = i;
         } |};
    k "s293" ~note:"broadcast of element 0"
      {| for (int i = 0; i < n; i = i + 1) { a[i] = a[0]; } |};
    k "s311" ~note:"plain sum reduction"
      {| float s = 0.0;
         for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }
         b[0] = s; |};
    k "s451" ~note:"mixed select and arithmetic"
      {| for (int i = 0; i < n; i = i + 1) {
           a[i] = (b[i] > c[i] ? b[i] : c[i]) + d[i];
         } |};
    k "s452" ~note:"induction in the value"
      {| for (int i = 0; i < n; i = i + 1) {
           a[i] = b[i] + c[i] * (float) (i + 1);
         } |};
    k "s471" ~extra:[ ("m", 16) ] ~note:"two stores, one strided by m"
      {| for (int i = 0; i < m; i = i + 1) {
           c[i + m] = b[i] + e[i];
           a[i] = c[i] + b[i] * d[i];
         } |};
    k "va" ~note:"plain copy"
      {| for (int i = 0; i < n; i = i + 1) { a[i] = b[i]; } |};
    k "vag" ~note:"broadcast scalar multiply"
      {| for (int i = 0; i < n; i = i + 1) { a[i] = b[i] * 2.5 + 1.0; } |};
  ]
