(* Native wall-clock rows: the bench lane that runs kernels for real.

   Every other figure in the harness reports *cost-model* speedups —
   architectural cost ratios computed by the interpreter.  This lane
   lowers each kernel's baseline and versioned pipelines through the
   native backend ({!Fgv_backend.Emit.fast}), compiles them with the
   system C compiler at -O2 -march=native, and measures nanoseconds per
   kernel execution with a calibrated monotonic-clock loop.  The rows
   put the measured speedup next to the model's prediction, and each
   native binary's final-memory checksum is validated against the CFG
   interpreter (relative tolerance 1e-6: -march=native may contract
   FMAs, so bit-exactness is deliberately not demanded here — the
   checked backend, not this one, owns exactness).

   Figure pairing mirrors the paper lanes:
   - fig19: TSVC, -O3 model vs. SV+versioning
   - fig16: PolyBench without restrict, -O3 vs. SV+versioning
   - fig22: SPECfp, redundant-load-elimination baseline vs. pipeline *)

module W = Workload
module P = Fgv_passes
module N = Fgv_backend.Native
module Pool = Fgv_support.Pool
module Stats = Fgv_support.Stats

let available = N.available

type row = {
  nr_figure : string; (* "fig19" | "fig16" | "fig22" *)
  nr_name : string;
  nr_model_speedup : float; (* cost-model prediction, baseline/versioned *)
  nr_checksum_ok : bool; (* both binaries agree with the interpreter *)
  nr_static_ns : float; (* measured ns/run, baseline pipeline *)
  nr_versioned_ns : float; (* measured ns/run, versioned pipeline *)
  nr_static_reps : int;
  nr_versioned_reps : int;
}

let native_speedup (r : row) : float =
  if r.nr_versioned_ns <= 0.0 then 1.0
  else r.nr_static_ns /. r.nr_versioned_ns

(* Compile [k] under [cfgn], run it natively in fast mode, and check the
   final-memory checksum against the CFG interpreter's. *)
let fast_run (cfgn : W.config) (k : W.kernel) :
    (float * int * bool, string) result =
  let f = W.compile_for cfgn k in
  ignore (cfgn.W.c_apply f);
  let prog = Fgv_cfg.Lower.lower f in
  let iout = Fgv_cfg.Cinterp.run prog ~args:k.W.k_args ~mem:(W.fresh_mem k) in
  let want = N.checksum_of_mem iout.Fgv_cfg.Cinterp.memory in
  match N.run_fast prog ~args:k.W.k_args ~mem:(W.fresh_mem k) with
  | Error e -> Error e
  | Ok fr ->
    let err =
      if want = 0.0 then Float.abs fr.N.nf_checksum
      else Float.abs ((fr.N.nf_checksum -. want) /. want)
    in
    Ok (fr.N.nf_ns, fr.N.nf_reps, err <= 1e-6)

let mk_row ~figure ~(base : W.config) ~(vers : W.config) (k : W.kernel) : row =
  let model =
    let b = W.run_config ~with_cfg:false base k in
    let v = W.run_config ~with_cfg:false vers k in
    b.W.r_cost /. v.W.r_cost
  in
  match (fast_run base k, fast_run vers k) with
  | Ok (bns, brep, bok), Ok (vns, vrep, vok) ->
    {
      nr_figure = figure;
      nr_name = k.W.k_name;
      nr_model_speedup = model;
      nr_checksum_ok = bok && vok;
      nr_static_ns = bns;
      nr_versioned_ns = vns;
      nr_static_reps = brep;
      nr_versioned_reps = vrep;
    }
  | Error e, _ | _, Error e ->
    raise (W.Kernel_error (k.W.k_name ^ "/" ^ figure ^ " (native)", Failure e))

let specs () =
  List.map (fun k -> ("fig19", W.llvm_o3 (), W.sv_versioning (), k)) Tsvc.kernels
  @ List.map
      (fun k ->
        ( "fig16",
          W.llvm_o3 ~restrict:false (),
          W.sv_versioning ~restrict:false (),
          k ))
      Polybench.kernels
  @ List.map
      (fun k ->
        ( "fig22",
          W.cfg "rle-base" (fun f -> P.Pipelines.rle_baseline f),
          W.cfg "rle" (fun f -> P.Pipelines.rle_pipeline f),
          k ))
      Specfp.kernels

(* [?kernels] filters by kernel name (all when omitted) — CI smoke runs
   a handful of rows, the full lane runs everything. *)
let rows ?kernels ?(jobs = 1) () : row list =
  let keep (_, _, _, (k : W.kernel)) =
    match kernels with None -> true | Some names -> List.mem k.W.k_name names
  in
  Pool.map ~jobs
    (fun (figure, base, vers, k) -> mk_row ~figure ~base ~vers k)
    (List.filter keep (specs ()))

let table_of_rows (rows : row list) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-8s %-16s %10s %10s %12s %12s %4s\n" "figure" "kernel"
       "model" "native" "static ns" "version ns" "sum");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-8s %-16s %9.2fx %9.2fx %12.1f %12.1f %4s\n"
           r.nr_figure r.nr_name r.nr_model_speedup (native_speedup r)
           r.nr_static_ns r.nr_versioned_ns
           (if r.nr_checksum_ok then "ok" else "BAD")))
    rows;
  let geo fig =
    let sel = List.filter (fun r -> r.nr_figure = fig) rows in
    if sel = [] then ()
    else
      Buffer.add_string buf
        (Printf.sprintf "%s geomean: model %.2fx native %.2fx\n" fig
           (Stats.geomean (List.map (fun r -> r.nr_model_speedup) sel))
           (Stats.geomean (List.map native_speedup sel)))
  in
  List.iter geo [ "fig19"; "fig16"; "fig22" ];
  Buffer.contents buf
