(* The paper's experiments (SV), regenerated over the simulator:

   - Fig. 19: TSVC speedups over the LLVM-style -O3 baseline;
   - Fig. 16: PolyBench speedups over -O3 without vectorization, with
     and without restrict;
   - Fig. 22: versioned redundant load elimination on the SPEC FP
     surrogates (speedup, loads eliminated, branch increase, extra LICM
     hoists, extra GVN deletions, code size);
   - the s258 speculation study (SV-A2);
   - ablations: min-cut vs naive all-conditional-edges cut, and the
     condition optimizations of SIV-A.

   Row loops take [?jobs] and fan kernels out across a
   {!Fgv_support.Pool}: each row compiles, optimizes and interprets its
   kernel under several configurations on a private [Ir.func], so rows
   are independent and the tables they produce are identical at any job
   count (the cost model is deterministic; pool results come back in
   kernel order).  Telemetry recorded by the rows merges back into the
   caller's registry at the join, so the per-figure counter deltas that
   [bench/main.exe --json] captures are job-count-independent too. *)

open Fgv_pssa
module P = Fgv_passes
module W = Workload
module Table = Fgv_support.Table
module Stats = Fgv_support.Stats
module Pool = Fgv_support.Pool

let pct x = Printf.sprintf "%.1f%%" (x *. 100.0)
let sp x = Printf.sprintf "%.2fx" x

(* ------------------------------------------------------------ Fig. 19 *)

type tsvc_row = {
  t_name : string;
  t_sv : float; (* speedup over O3 *)
  t_svv : float;
  t_newly_vectorized : bool; (* vector code only with versioning *)
}

let tsvc_rows ?(check = true) ?(jobs = 1) () : tsvc_row list =
  Pool.map ~jobs
    (fun k ->
      let base = W.run_config ~with_cfg:false (W.llvm_o3 ()) k in
      let sv = W.run_config ~with_cfg:false (W.sv ()) k in
      let svv = W.run_config ~with_cfg:false (W.sv_versioning ()) k in
      if check then
        W.check_equivalence k [ W.base_novec (); W.llvm_o3 (); W.sv (); W.sv_versioning () ];
      let vec r =
        r.W.r_counters.Interp.vector_stores + r.W.r_counters.Interp.vector_loads > 0
      in
      {
        t_name = k.W.k_name;
        t_sv = base.W.r_cost /. sv.W.r_cost;
        t_svv = base.W.r_cost /. svv.W.r_cost;
        t_newly_vectorized = vec svv && not (vec sv);
      })
    Tsvc.kernels

let fig19_of_rows (rows : tsvc_row list) : string =
  let t = Table.create [ "TSVC loop"; "SV"; "SV+versioning"; "newly vectorized" ] in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.t_name; sp r.t_sv; sp r.t_svv; (if r.t_newly_vectorized then "yes" else "") ])
    rows;
  Table.add_sep t;
  let geo f = Stats.geomean (List.map f rows) in
  Table.add_row t
    [ "geomean"; sp (geo (fun r -> r.t_sv)); sp (geo (fun r -> r.t_svv)); "" ];
  let newly = List.length (List.filter (fun r -> r.t_newly_vectorized) rows) in
  "Fig. 19 — TSVC speedup over LLVM-style -O3 (higher is better)\n"
  ^ Table.render t
  ^ Printf.sprintf
      "versioning newly vectorizes %d loops; paper: SV 1.09x, SV+V 1.17x, 13 \
       loops\n"
      newly

let fig19 ?check ?jobs () : string = fig19_of_rows (tsvc_rows ?check ?jobs ())

(* ------------------------------------------------------------ Fig. 16 *)

type poly_row = {
  p_name : string;
  p_o3 : float; (* over O3-novec, restrict per setting *)
  p_sv : float;
  p_svv : float;
  p_newly : bool;
}

let polybench_rows ?(check = true) ?(jobs = 1) ~restrict () : poly_row list =
  Pool.map ~jobs
    (fun k ->
      let base = W.run_config ~with_cfg:false (W.base_novec ~restrict ()) k in
      let o3 = W.run_config ~with_cfg:false (W.llvm_o3 ~restrict ()) k in
      let sv = W.run_config ~with_cfg:false (W.sv ~restrict ()) k in
      let svv = W.run_config ~with_cfg:false (W.sv_versioning ~restrict ()) k in
      if check then
        W.check_equivalence k
          [ W.base_novec ~restrict (); W.llvm_o3 ~restrict ();
            W.sv ~restrict (); W.sv_versioning ~restrict () ];
      let vec r =
        r.W.r_counters.Interp.vector_stores + r.W.r_counters.Interp.vector_loads > 0
      in
      {
        p_name = k.W.k_name;
        p_o3 = base.W.r_cost /. o3.W.r_cost;
        p_sv = base.W.r_cost /. sv.W.r_cost;
        p_svv = base.W.r_cost /. svv.W.r_cost;
        p_newly = vec svv && not (vec sv);
      })
    Polybench.kernels

let fig16_of_rows ~restrict (rows : poly_row list) : string =
  let t =
    Table.create [ "PolyBench kernel"; "O3"; "SV"; "SV+versioning"; "newly vec." ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.p_name; sp r.p_o3; sp r.p_sv; sp r.p_svv;
          (if r.p_newly then "yes" else "") ])
    rows;
  Table.add_sep t;
  let geo f = Stats.geomean (List.map f rows) in
  Table.add_row t
    [ "geomean"; sp (geo (fun r -> r.p_o3)); sp (geo (fun r -> r.p_sv));
      sp (geo (fun r -> r.p_svv)); "" ];
  Printf.sprintf
    "Fig. 16 — PolyBench speedup over -O3-without-vectorization (restrict %s)\n"
    (if restrict then "ON" else "OFF")
  ^ Table.render t

let fig16_one ?check ?jobs ~restrict () : string =
  fig16_of_rows ~restrict (polybench_rows ?check ?jobs ~restrict ())

let fig16 ?check ?jobs () : string =
  fig16_one ?check ?jobs ~restrict:false ()
  ^ "\n"
  ^ fig16_one ?check ?jobs ~restrict:true ()
  ^ "paper: restrict OFF geomeans SV+V 1.65x over scalar / 1.50x over -O3;\n\
     restrict ON 1.76x / 1.51x; versioning newly vectorizes correlation,\n\
     covariance, floyd-warshall, lu, ludcmp\n"

(* ------------------------------------------------------------ Fig. 22 *)

type rle_row = {
  f_name : string;
  f_speedup : float;
  f_loads_eliminated : float; (* fraction of dynamic loads *)
  f_branches_increase : float;
  f_licm_extra : float;
  f_gvn_extra : float;
  f_size_increase : float;
}

let rle_rows ?(check = true) ?(jobs = 1) () : rle_row list =
  Pool.map ~jobs
    (fun k ->
      let base =
        W.run_config
          (W.cfg "rle-base" (fun f -> P.Pipelines.rle_baseline f))
          k
      in
      let rle =
        W.run_config (W.cfg "rle" (fun f -> P.Pipelines.rle_pipeline f)) k
      in
      if check then
        W.check_equivalence k
          [ W.cfg "rle-base" (fun f -> P.Pipelines.rle_baseline f);
            W.cfg "rle" (fun f -> P.Pipelines.rle_pipeline f) ];
      let frac a b = if b = 0 then 0.0 else float_of_int (a - b) /. float_of_int a in
      let growth a b = if a = 0 then 0.0 else float_of_int (b - a) /. float_of_int a in
      let extra a b = if a = 0 then float_of_int b else growth a b in
      {
        f_name = k.W.k_name;
        f_speedup = base.W.r_cost /. rle.W.r_cost;
        f_loads_eliminated =
          frac base.W.r_counters.Interp.loads rle.W.r_counters.Interp.loads;
        f_branches_increase = growth base.W.r_branches rle.W.r_branches;
        f_licm_extra =
          extra base.W.r_stats.P.Pipelines.licm_hoisted
            rle.W.r_stats.P.Pipelines.licm_hoisted;
        f_gvn_extra =
          extra base.W.r_stats.P.Pipelines.gvn_deleted
            rle.W.r_stats.P.Pipelines.gvn_deleted;
        f_size_increase = growth base.W.r_code_size rle.W.r_code_size;
      })
    Specfp.kernels

let fig22_of_rows (rows : rle_row list) : string =
  let t =
    Table.create
      [ "benchmark"; "speedup"; "loads elim."; "branches+"; "LICM+"; "GVN+";
        "size+" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.f_name;
          Printf.sprintf "%+.1f%%" ((r.f_speedup -. 1.0) *. 100.0);
          pct r.f_loads_eliminated; pct r.f_branches_increase;
          pct r.f_licm_extra; pct r.f_gvn_extra; pct r.f_size_increase ])
    rows;
  Table.add_sep t;
  let geo f = Stats.geomean (List.map (fun r -> Float.max 0.01 (1.0 +. f r)) rows) -. 1.0 in
  Table.add_row t
    [ "geomean";
      Printf.sprintf "%+.1f%%" ((Stats.geomean (List.map (fun r -> r.f_speedup) rows) -. 1.0) *. 100.0);
      pct (geo (fun r -> r.f_loads_eliminated));
      pct (geo (fun r -> r.f_branches_increase));
      pct (geo (fun r -> r.f_licm_extra));
      pct (geo (fun r -> r.f_gvn_extra));
      pct (geo (fun r -> r.f_size_increase)) ];
  "Fig. 22 — versioned redundant load elimination on SPEC FP surrogates\n"
  ^ Table.render t
  ^ "paper: speedup geomean +1.2% (lbm +6.4%, blender +4.7%), 4.8% loads\n\
     eliminated, 5.5% more branches, 6.4% more LICM hoists, 8.5% more GVN\n\
     deletions, 2.3% code growth\n"

let fig22 ?check ?jobs () : string = fig22_of_rows (rle_rows ?check ?jobs ())

(* ----------------------------------- DSE / distribution clients figure *)

type client_row = {
  v_client : string;
  v_kernel : string;
  v_speedup : float; (* static-client cost / versioned-client cost *)
  v_newly_vectorized : bool;
  v_forwarded : int;
  v_killed : int;
  v_pieces : int;
}

let tsvc_kernel name = List.find (fun k -> k.W.k_name = name) Tsvc.kernels

(* The new wish-spec clients need conditional dependences to version, so
   the configurations compile without restrict: statically every array
   may alias, and only versioning recovers the transformation. *)
let client_cfg client ~versioning =
  let name = if versioning then client else client ^ "-static" in
  let apply f =
    match client with
    | "dse" -> P.Pipelines.dse_pipeline ~versioning f
    | "distribute" -> P.Pipelines.distribute_pipeline ~versioning f
    | "combined" -> P.Pipelines.combined ~versioning f
    | _ -> invalid_arg ("client_cfg: " ^ client)
  in
  W.cfg ~restrict:false name apply

let client_specs =
  [
    ("dse", "s222");
    ("distribute", "s222");
    ("distribute", "s2251");
    ("combined", "s222");
    ("combined", "s2251");
  ]

let clients_rows ?(check = true) ?(jobs = 1) () : client_row list =
  Pool.map ~jobs
    (fun (client, kname) ->
      let k = tsvc_kernel kname in
      let static = W.run_config (client_cfg client ~versioning:false) k in
      let versioned = W.run_config (client_cfg client ~versioning:true) k in
      if check then
        W.check_equivalence k
          [
            W.base_novec ~restrict:false ();
            client_cfg client ~versioning:false;
            client_cfg client ~versioning:true;
          ];
      let vec r =
        r.W.r_counters.Interp.vector_stores
        + r.W.r_counters.Interp.vector_loads
        > 0
      in
      {
        v_client = client;
        v_kernel = kname;
        v_speedup = static.W.r_cost /. versioned.W.r_cost;
        v_newly_vectorized = vec versioned && not (vec static);
        v_forwarded = versioned.W.r_stats.P.Pipelines.dse_forwarded;
        v_killed = versioned.W.r_stats.P.Pipelines.dse_killed;
        v_pieces = versioned.W.r_stats.P.Pipelines.distribute_pieces;
      })
    client_specs

let clients_of_rows (rows : client_row list) : string =
  let t =
    Table.create
      [ "client"; "kernel"; "vs static"; "newly vec."; "forwarded"; "killed";
        "pieces" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [ r.v_client; r.v_kernel; sp r.v_speedup;
          (if r.v_newly_vectorized then "yes" else "");
          string_of_int r.v_forwarded; string_of_int r.v_killed;
          string_of_int r.v_pieces ])
    rows;
  "Versioned DSE / loop distribution vs their static counterparts\n"
  ^ Table.render t
  ^ "versioning recovers what restrict-less static analysis cannot: dead\n\
     stores behind may-aliasing recurrences, and distribution that frees\n\
     the clean sub-loop for vectorization (s222/s2251 shapes)\n"

let clients ?check ?jobs () : string = clients_of_rows (clients_rows ?check ?jobs ())

(* ------------------------------------------- s258 speculation (SV-A2) *)

let s258_src params =
  Printf.sprintf
    {|
  kernel s258(%s) {
    float s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
      if (a[i] > 0.0) { s = d[i] * d[i]; }
      b[i] = s * c[i] + d[i];
      e[i] = (s + 1.0) * aa[i];
    }
  }|}
    params

let s258_speculation ?(jobs = 1) () : string =
  let len = 64 in
  let mk_kernel ~restrict ~positive_frac name =
    let params =
      if restrict then
        "float* restrict a, float* restrict b, float* restrict c, float* \
         restrict d, float* restrict e, float* restrict aa, int n"
      else "float* a, float* b, float* c, float* d, float* e, float* aa, int n"
    in
    let init i =
      (* the a array controls the branch; choose sign by fraction *)
      if i < len then
        if i * 100 mod len * 100 / len < int_of_float (positive_frac *. 100.0)
        then 1.0
        else -1.0
      else Float.of_int ((i * 17 mod 31) - 11) *. 0.125
    in
    let init i = if i < len then (if (i * 131 mod 100) < int_of_float (positive_frac *. 100.0) then 1.0 else -1.0) else init i in
    {
      W.k_name = name;
      k_source = s258_src params;
      k_args = List.map (fun x -> Value.VInt x) [ 0; len; 2 * len; 3 * len; 4 * len; 5 * len; len ];
      k_heap = 6 * len;
      k_init = init;
      k_note = "";
    }
  in
  let t = Table.create [ "configuration"; "SV"; "SV+versioning" ] in
  let rows =
    Pool.map ~jobs
      (fun (label, restrict, frac) ->
        let k = mk_kernel ~restrict ~positive_frac:frac label in
        let base = W.run_config ~with_cfg:false (W.base_novec ~restrict ()) k in
        let sv = W.run_config ~with_cfg:false (W.sv ~restrict ()) k in
        let svv = W.run_config ~with_cfg:false (W.sv_versioning ~restrict ()) k in
        W.check_equivalence k [ W.sv ~restrict (); W.sv_versioning ~restrict () ];
        [ label; sp (base.W.r_cost /. sv.W.r_cost);
          sp (base.W.r_cost /. svv.W.r_cost) ])
      [
        ("globals (restrict), 99% positive", true, 0.99);
        ("globals (restrict), 50% positive", true, 0.5);
        ("pointer params, 99% positive (2-level versioning)", false, 0.99);
      ]
  in
  List.iter (Table.add_row t) rows;
  "s258 speculation study (speedup over scalar -O3-novec)\n" ^ Table.render t
  ^ "paper: ~2.0x with >99% positive entries; same with arrays as pointer\n\
     parameters, which needs two levels of versioning\n"

(* ------------------------------------------------------------ ablations *)

(* A1: number of run-time checks with the min-cut versus the naive
   strategy that checks *every* conditional dependence among the
   requested nodes (what a versioning scheme without the min-cut
   reduction would emit). *)
let ablation_mincut ?(jobs = 1) () : string =
  let open Fgv_analysis in
  let t = Table.create [ "kernel"; "min-cut checks"; "all-cond-edges"; "saved" ] in
  let total_min = ref 0 and total_naive = ref 0 in
  let kernel_checks =
    Pool.map ~jobs
      (fun (k : W.kernel) ->
      let f = Fgv_frontend.Lower_ast.compile_no_restrict k.W.k_source in
      ignore (P.Pipelines.o3_novec f);
      ignore (P.Ifconv.run f);
      ignore (P.Unroll.run ~factor:4 f);
      ignore (P.Constfold.run f);
      (* find the innermost unrolled regions and measure both strategies
         on the store groups SLP would seed *)
      let rec regions items acc =
        List.fold_left
          (fun acc item ->
            match item with
            | Ir.I _ -> acc
            | Ir.L lid -> regions (Ir.loop f lid).Ir.body (Ir.Rloop lid :: acc))
          acc items
      in
      let min_checks = ref 0 and naive_checks = ref 0 in
      List.iter
        (fun region ->
          let scev = Scev.create f in
          let g = Depgraph.build f scev region in
          let stores =
            List.filter_map
              (fun item ->
                match item with
                | Ir.I v -> (
                  match (Ir.inst f v).Ir.kind with
                  | Ir.Store _ -> Some (Ir.NI v)
                  | _ -> None)
                | _ -> None)
              (Ir.region_items f region)
          in
          if List.length stores >= 2 then begin
            (match Fgv_versioning.Plan.infer_for_nodes g stores with
            | Some plan ->
              min_checks := !min_checks + Fgv_versioning.Plan.conds_count plan
            | None -> ());
            (* naive: every conditional edge in the subgraph reachable
               from the stores *)
            let idx = List.map (Depgraph.node_index g) stores in
            let succ = Depgraph.dependence_succ g ~excluded:(fun _ -> false) in
            let seen = Array.make (Array.length g.Depgraph.nodes) false in
            let conds = ref 0 in
            let rec dfs v =
              if not seen.(v) then begin
                seen.(v) <- true;
                List.iter
                  (fun e ->
                    (match e.Depgraph.e_cond with
                    | Some atoms -> conds := !conds + List.length atoms
                    | None -> ());
                    dfs e.Depgraph.e_dst)
                  succ.(v)
              end
            in
            List.iter dfs idx;
            naive_checks := !naive_checks + !conds
          end)
        (regions f.Ir.fbody [ Ir.Rtop ]);
      (k.W.k_name, !min_checks, !naive_checks))
      Polybench.kernels
  in
  List.iter
    (fun (name, min_checks, naive_checks) ->
      if naive_checks > 0 then begin
        total_min := !total_min + min_checks;
        total_naive := !total_naive + naive_checks;
        Table.add_row t
          [ name; string_of_int min_checks; string_of_int naive_checks;
            Printf.sprintf "%.0f%%"
              (100.0 *. (1.0 -. (float_of_int min_checks /. float_of_int naive_checks))) ]
      end)
    kernel_checks;
  Table.add_sep t;
  Table.add_row t
    [ "total"; string_of_int !total_min; string_of_int !total_naive;
      Printf.sprintf "%.0f%%"
        (if !total_naive = 0 then 0.0
         else 100.0 *. (1.0 -. (float_of_int !total_min /. float_of_int !total_naive))) ];
  "Ablation A1 — run-time conditions: min-cut vs all conditional edges\n"
  ^ Table.render t

(* A2: condition optimizations on/off — dynamic cost of the versioned
   program with redundant-condition elimination and coalescing disabled. *)
let ablation_condopt ?(jobs = 1) () : string =
  let t = Table.create [ "kernel"; "condopt ON"; "condopt OFF"; "overhead" ] in
  let rows =
    Pool.map ~jobs
      (fun (k : W.kernel) ->
      let with_opt =
        W.run_config ~with_cfg:false (W.sv_versioning ~restrict:false ()) k
      in
      let without =
        W.run_config ~with_cfg:false
          (W.cfg ~restrict:false "SV+V-noopt" (fun f ->
               let config =
                 {
                   P.Slp.default_config with
                   condopt = Fgv_versioning.Condopt.none_config;
                 }
               in
               let stats = P.Pipelines.new_pass_stats () in
               P.Pipelines.scalar_passes f stats;
               ignore (P.Ifconv.run f);
               ignore (P.Unroll.run ~factor:4 f);
               ignore (P.Constfold.run f);
               let n, s = P.Slp.run ~config f in
               stats.P.Pipelines.slp_vectors <- n;
               stats.P.Pipelines.slp_plans <- s.P.Slp.plans_used;
               P.Pipelines.scalar_passes f stats;
               stats))
          k
      in
      let ratio = without.W.r_cost /. with_opt.W.r_cost in
      ( ratio,
        [ k.W.k_name;
          Printf.sprintf "%.0f" with_opt.W.r_cost;
          Printf.sprintf "%.0f" without.W.r_cost;
          Printf.sprintf "%.2fx" ratio ] ))
      Polybench.kernels
  in
  List.iter (fun (_, row) -> Table.add_row t row) rows;
  Table.add_sep t;
  Table.add_row t
    [ "geomean"; ""; "";
      Printf.sprintf "%.2fx" (Stats.geomean (List.map fst rows)) ];
  "Ablation A2 — cost without redundant-condition elimination/coalescing\n"
  ^ Table.render t
