(** The condition-labeled dependence graph over one region's items
    (Fig. 7 of the paper).  Nodes are the region's sibling items in
    program order — a nested loop is a single node — and an edge
    [i -> j] means "i depends on j", labeled with its dependence
    condition. *)

open Fgv_pssa

type edge = {
  e_id : int;  (** dense id; doubles as the max-flow tag *)
  e_src : int;  (** node index of the dependent (later) node *)
  e_dst : int;  (** node index of the dependee (earlier) node *)
  e_cond : Depcond.atom list option;
      (** [None] = unconditional; [Some atoms] = conditional (severable
          by a versioning cut) *)
}

type t = {
  g_ctx : Depcond.ctx;
  nodes : Ir.node array;  (** region items in program order *)
  index : (Ir.node, int) Hashtbl.t;
  mutable edges : edge array;
}

val node_index : t -> Ir.node -> int
(** Index of a region-level node; raises if absent. *)

val build : Ir.func -> Scev.t -> Ir.region -> t
(** Sparse construction: enumerate candidate pairs from a def→use index
    and per-node memory-access summaries, and run Fig. 6 only on those;
    every skipped pair is provably [Depcond.Never].  Produces the same
    graph — edge ids, conditions, order — as {!build_naive}, bumps the
    [depgraph.pairs_pruned] telemetry counter, and emits a
    [Graph_sparsity] remark per region. *)

val build_naive : Ir.func -> Scev.t -> Ir.region -> t
(** Reference builder: Fig. 6 on every pair (quadratic).  Oracle for the
    sparse-equivalence property test. *)

val edge_conditional : edge -> bool

val dependence_succ : t -> excluded:(int -> bool) -> edge list array
(** Per-node outgoing dependence edges, omitting the excluded edge ids. *)

val depends_on : t -> excluded:(int -> bool) -> int list -> int list -> bool
(** Is any target reachable from a source along dependence edges (through
    at least one edge — trivial self-reachability is ignored, cf. the
    paper's footnote)? *)

val to_string : t -> string
