(* Dependence conditions (Fig. 5 and Fig. 6 of the paper).

   Given two dependence-graph nodes i and j (instructions or loops,
   ordered i after j), [compute] returns the condition under which i
   *directly* depends on j:

   - [Never]: no dependence;
   - [Always]: unconditional (SSA uses, proven-overlapping accesses,
     opaque calls);
   - [When atoms]: the dependence exists only if one of the atoms holds
     at run time: a control predicate (j actually executes) or a memory
     intersection. *)

open Fgv_pssa
module Tm = Fgv_support.Telemetry

type atom =
  | Apred of Pred.t
  | Aintersect of Scev.range * Scev.range

type cond = Never | Always | When of atom list

(* Structural atom order (predicates by [Pred.compare_t], ranges by their
   integer linear expressions): stable across runs, generations, and job
   counts, so it is safe anywhere the order is observable. *)
let compare_atom a b =
  match a, b with
  | Apred p, Apred q -> Pred.compare_t p q
  | Apred _, Aintersect _ -> -1
  | Aintersect _, Apred _ -> 1
  | Aintersect (a1, a2), Aintersect (b1, b2) ->
    let c = Stdlib.compare (a1 : Scev.range) b1 in
    if c <> 0 then c else Stdlib.compare (a2 : Scev.range) b2

(* Values a condition's run-time check would read (Fig. 13 line 14:
   [operands(dep_cond)]). *)
let atom_operands = function
  | Apred p -> Pred.literals p
  | Aintersect (r1, r2) ->
    List.sort_uniq compare (Scev.range_values r1 @ Scev.range_values r2)

let cond_operands = function
  | Never | Always -> []
  | When atoms -> List.sort_uniq compare (List.concat_map atom_operands atoms)

let atom_to_string scev = function
  | Apred p -> Pred.to_string (Ir.value_name scev.Scev.func) p
  | Aintersect (r1, r2) ->
    Printf.sprintf "intersects(%s, %s)" (Scev.range_to_string scev r1)
      (Scev.range_to_string scev r2)

(* Join two condition results as a disjunction.  The atom list is kept
   sorted and duplicate-free so one dependence never emits the same
   run-time check twice downstream. *)
let join a b =
  match a, b with
  | Always, _ | _, Always -> Always
  | Never, c | c, Never -> c
  | When x, When y -> When (List.sort_uniq compare_atom (x @ y))

(* Per-region summary of one memory access: its region-promoted range
   and the restrict parameter the range is based on, both computed once
   (the naive pairwise build re-derived the SCEV promotion for every
   node pair the access participated in). *)
type access = {
  acc_v : Ir.value_id;
  acc_write : bool;
  acc_range : Scev.range option;
  acc_base : Ir.value_id option;
}

type ctx = {
  cf : Ir.func;
  cscev : Scev.t;
  cregion : Ir.region;
  ceff : Ir.value_id -> Pred.t; (* effective predicates for scope queries *)
  (* loops nested anywhere under the region: member accesses of sibling
     loop nodes must have their ranges promoted out of these *)
  under : (Ir.loop_id, unit) Hashtbl.t;
  (* region-level item that defines each value (values defined inside a
     sibling loop map to that loop node) *)
  def_item : (Ir.value_id, Ir.node) Hashtbl.t;
  (* caches, all keyed on per-region-stable data (see DESIGN §12):
     region-promoted ranges per access, access summaries and register
     inputs per node *)
  crange : (Ir.value_id, Scev.range option) Hashtbl.t;
  caccess : (Ir.node, access list) Hashtbl.t;
  cfree : (Ir.node, Ir.value_id list) Hashtbl.t;
}

let make_ctx f scev region =
  let under = Hashtbl.create 8 in
  let def_item = Hashtbl.create 64 in
  let rec register_under lid =
    Hashtbl.replace under lid ();
    List.iter
      (function Ir.L l -> register_under l | Ir.I _ -> ())
      (Ir.loop f lid).body
  in
  List.iter
    (fun item ->
      let node = Ir.node_of_item item in
      List.iter
        (fun v -> Hashtbl.replace def_item v node)
        (Ir.defined_values f item);
      match item with
      | Ir.L lid -> register_under lid
      | Ir.I _ -> ())
    (Ir.region_items f region);
  {
    cf = f;
    cscev = scev;
    cregion = region;
    ceff = Ir.effective_preds f;
    under;
    def_item;
    crange = Hashtbl.create 32;
    caccess = Hashtbl.create 32;
    cfree = Hashtbl.create 64;
  }

let def_item ctx v = Hashtbl.find_opt ctx.def_item v

(* The memory range of an access, promoted out of every loop nested under
   the region so that the bounds are computable at region level.  [None]
   means "all of memory" (opaque calls or failed promotion).  Memoized:
   the promotion walks the SCEV and used to be re-derived for every node
   pair the access participated in. *)
let region_range ctx v : Scev.range option =
  match Hashtbl.find_opt ctx.crange v with
  | Some r -> r
  | None ->
    let r =
      match Scev.range_of_access ctx.cscev v with
      | None -> None
      | Some r -> Scev.promote_range ctx.cscev ~out_of:(Hashtbl.mem ctx.under) r
    in
    Hashtbl.add ctx.crange v r;
    r

(* Memory-vs-memory condition for two accesses (at least one writes). *)
let memory_pair ctx i_v j_v : cond =
  if Ir.in_indep_scope ~eff:ctx.ceff ctx.cf i_v j_v then Never
  else
    match region_range ctx i_v, region_range ctx j_v with
    | None, _ | _, None -> Always (* arbitrary memory on one side *)
    | Some r1, Some r2 -> (
      match Alias.relate ctx.cf r1 r2 with
      | Alias.Disjoint -> Never
      | Alias.Overlap -> Always
      | Alias.Unknown -> When [ Aintersect (r1, r2) ])

(* All memory instructions of a node (Fig. 6's [mem_instructions]). *)
let mem_insts ctx node =
  match node with
  | Ir.NI v -> if Ir.is_memory_inst (Ir.inst ctx.cf v) then [ v ] else []
  | Ir.NL lid -> Ir.memory_insts ctx.cf (Ir.L lid)

(* The node's memory accesses with their promoted ranges and restrict
   bases, computed once per node. *)
let accesses ctx node =
  match Hashtbl.find_opt ctx.caccess node with
  | Some l -> l
  | None ->
    let l =
      List.map
        (fun v ->
          let range = region_range ctx v in
          {
            acc_v = v;
            acc_write = Ir.may_write_inst (Ir.inst ctx.cf v);
            acc_range = range;
            acc_base =
              (match range with
              | Some r -> Alias.restrict_base ctx.cf r
              | None -> None);
          })
        (mem_insts ctx node)
    in
    Hashtbl.add ctx.caccess node l;
    l

(* Accesses based on distinct restrict parameters, with neither range
   mentioning the other's base, address distinct allocations:
   [Alias.relate] is [Disjoint] by construction (the difference of the
   bounds mentions both bases with nonzero coefficients, so the
   constant-difference test cannot conclude first), hence [memory_pair]
   is [Never] and need not run at all. *)
let bucket_disjoint a1 a2 =
  match a1.acc_base, a2.acc_base, a1.acc_range, a2.acc_range with
  | Some p, Some q, Some r1, Some r2 ->
    p <> q
    && (not (Alias.range_mentions r2 p))
    && not (Alias.range_mentions r1 q)
  | _ -> false

(* Memory condition between two nodes: union over write-involving pairs
   of member accesses, pruning pairs whose restrict buckets prove them
   disjoint. *)
let memory_cond ctx i j =
  let is1 = accesses ctx i and is2 = accesses ctx j in
  List.fold_left
    (fun acc a1 ->
      List.fold_left
        (fun acc a2 ->
          if not (a1.acc_write || a2.acc_write) then acc
          else if bucket_disjoint a1 a2 then begin
            Tm.incr "depcond.mem_pairs_pruned";
            acc
          end
          else join acc (memory_pair ctx a1.acc_v a2.acc_v))
        acc is2)
    Never is1

(* Values a node reads that it does not define (register inputs).
   Memoized per node: the loop-node case walks the whole loop body. *)
let free_values_uncached ctx node =
  match node with
  | Ir.NI v -> Ir.all_operands (Ir.inst ctx.cf v)
  | Ir.NL lid ->
    let f = ctx.cf in
    let defined = Hashtbl.create 32 in
    List.iter
      (fun v -> Hashtbl.replace defined v ())
      (Ir.defined_values f (Ir.L lid));
    let used = ref [] in
    let rec collect lid =
      let lp = Ir.loop f lid in
      List.iter
        (fun m -> used := Ir.all_operands (Ir.inst f m) @ !used)
        lp.mus;
      used := Pred.literals lp.lpred @ Pred.literals lp.cont @ !used;
      List.iter
        (function
          | Ir.I v -> used := Ir.all_operands (Ir.inst f v) @ !used
          | Ir.L l -> collect l)
        lp.body
    in
    collect lid;
    List.sort_uniq compare
      (List.filter (fun v -> not (Hashtbl.mem defined v)) !used)

let free_values ctx node =
  match Hashtbl.find_opt ctx.cfree node with
  | Some l -> l
  | None ->
    let l = free_values_uncached ctx node in
    Hashtbl.add ctx.cfree node l;
    l

(* Does node i read a value defined by node j? *)
let reads_from ctx i j =
  List.exists
    (fun v ->
      match def_item ctx v with
      | Some d -> d = j
      | None -> false)
    (free_values ctx i)

(* Fig. 6: the direct dependence condition c(i, j).  [i] comes after [j]
   in program order. *)
let compute ctx (i : Ir.node) (j : Ir.node) : cond =
  Tm.incr "depcond.compute_calls";
  match i, j with
  | Ir.NI iv, Ir.NI jv -> (
    let ii = Ir.inst ctx.cf iv in
    let ji = Ir.inst ctx.cf jv in
    match ii.kind with
    | Phi ops when List.exists (fun (_, v) -> v = jv) ops
                   && not (List.mem jv (Pred.literals ii.ipred))
                   && not
                        (List.exists
                           (fun (p, _) -> List.mem jv (Pred.literals p))
                           ops) ->
      (* a phi depends on an operand only under that operand's gate *)
      let p =
        Pred.or_list
          (List.filter_map (fun (p, v) -> if v = jv then Some p else None) ops)
      in
      if Pred.equal p Pred.tru then Always
      else if Pred.equal p Pred.fls then Never
      else When [ Apred p ]
    | Select { cond; if_true; if_false }
      when jv <> cond && (jv = if_true || jv = if_false)
           && not (List.mem jv (Pred.literals ii.ipred)) ->
      let arm_pred positive = Pred.and_ ii.ipred (Pred.lit ~positive cond) in
      let conds =
        (if jv = if_true then [ Apred (arm_pred true) ] else [])
        @ if jv = if_false then [ Apred (arm_pred false) ] else []
      in
      When conds
    | _ ->
      if List.mem jv (Ir.all_operands ii) then Always
      else if not (Ir.may_write_inst ii) && not (Ir.may_write_inst ji) then
        Never
      else if not (Ir.is_memory_inst ii) || not (Ir.is_memory_inst ji) then
        Never
      else if Pred.equal (Pred.and_ ii.ipred ji.ipred) Pred.fls then
        (* contradictory predicates: within one region execution the two
           accesses can never both run (e.g. the two arms of a versioning
           diamond), so no ordering constraint exists between them *)
        Never
      else if
        (* j executes under a strictly more specific predicate: the
           dependence requires j to actually execute *)
        Pred.implies ji.ipred ii.ipred && not (Pred.equal ji.ipred ii.ipred)
      then
        if Pred.equal ji.ipred Pred.fls then Never else When [ Apred ji.ipred ]
      else memory_pair ctx iv jv)
  | _ ->
    (* at least one loop node: register inputs are unconditional;
       memory dependencies are the union over member accesses *)
    let reg = if reads_from ctx i j then Always else Never in
    join reg (memory_cond ctx i j)
