(* The labeled dependence graph over the items of one region (Fig. 7).

   Nodes are the region's items in program order (a nested loop is one
   node).  An edge i -> j means "i depends on j" (j precedes i) and
   carries its dependence condition; conditional edges are exactly the
   ones a versioning cut may sever. *)

open Fgv_pssa
module Tm = Fgv_support.Telemetry
module Tr = Fgv_support.Trace

type edge = {
  e_id : int; (* dense id, used as the max-flow tag *)
  e_src : int; (* node index: the dependent (later) node *)
  e_dst : int; (* node index: the dependee (earlier) node *)
  e_cond : Depcond.atom list option; (* None = unconditional *)
}

type t = {
  g_ctx : Depcond.ctx;
  nodes : Ir.node array; (* in program order *)
  index : (Ir.node, int) Hashtbl.t;
  mutable edges : edge array;
}

let node_index t n =
  match Hashtbl.find_opt t.index n with
  | Some i -> i
  | None -> invalid_arg "Depgraph.node_index: node not in region"

(* Shared scaffolding of both builders. *)
let prepare (f : Ir.func) (scev : Scev.t) (region : Ir.region) =
  let ctx = Depcond.make_ctx f scev region in
  let nodes =
    Array.of_list (List.map Ir.node_of_item (Ir.region_items f region))
  in
  let index = Hashtbl.create (max 1 (Array.length nodes)) in
  Array.iteri (fun k n -> Hashtbl.replace index n k) nodes;
  (ctx, nodes, index)

(* The reference builder: Fig. 6 on every pair.  Quadratic in the region
   size; kept as the oracle for the sparse-equivalence property test and
   as the compile-time baseline. *)
let build_naive (f : Ir.func) (scev : Scev.t) (region : Ir.region) : t =
  let ctx, nodes, index = prepare f scev region in
  let edges = ref [] in
  let next_id = ref 0 in
  let n = Array.length nodes in
  for i = 1 to n - 1 do
    for j = 0 to i - 1 do
      match Depcond.compute ctx nodes.(i) nodes.(j) with
      | Depcond.Never -> ()
      | Depcond.Always ->
        edges := { e_id = !next_id; e_src = i; e_dst = j; e_cond = None } :: !edges;
        incr next_id
      | Depcond.When atoms ->
        edges :=
          { e_id = !next_id; e_src = i; e_dst = j; e_cond = Some atoms } :: !edges;
        incr next_id
    done
  done;
  { g_ctx = ctx; nodes; index; edges = Array.of_list (List.rev !edges) }

(* Sparse construction.  For each node i the candidate dependees are

   - register candidates: nodes defining a free value of i (a def->use
     lookup through [Depcond.def_item]; this covers the SSA-operand,
     phi-gate, and select-arm cases of Fig. 6, since those all require j
     to define an operand of i), and
   - memory candidates: nodes j where both sides have memory accesses,
     some cross pair involves a write, and the pair is not provably
     dependence-free from the per-access summaries alone.

   Every pair outside the candidate set is one [Depcond.compute] would
   map to [Never] (see DESIGN §12 for the case analysis), so scanning
   candidates in (i ascending, j ascending) order reproduces the naive
   builder's edge array — ids, conditions, order — exactly.  The
   equivalence is pinned by a property test over the fuzz corpus. *)
let build (f : Ir.func) (scev : Scev.t) (region : Ir.region) : t =
  let ctx, nodes, index = prepare f scev region in
  let n = Array.length nodes in
  (* per-node summaries, each computed once *)
  let accs = Array.map (Depcond.accesses ctx) nodes in
  let has_write =
    Array.map (List.exists (fun a -> a.Depcond.acc_write)) accs
  in
  (* execution predicate of instruction nodes: a memory-only pair of
     instructions with distinct predicates can still carry a control
     dependence (the pred(j).implies(pred(i)) case of Fig. 6), so only
     same-predicate instruction pairs may be pruned on range evidence *)
  let ipred =
    Array.map
      (function
        | Ir.NI v -> Some (Ir.inst f v).Ir.ipred
        | Ir.NL _ -> None)
      nodes
  in
  (* Restrict-bucket summaries.  The pairwise [bucket_disjoint] sweep
     over two nodes' access lists is O(|i|·|j|) — as expensive as the
     memory walk it tries to avoid when sibling loops carry hundreds of
     accesses.  Over the (few) distinct restrict bases of the region,
     per-node bitmask summaries make the same decision O(1) per pair:
     all write-involving cross pairs are bucket-disjoint iff every
     access of both subsets has a base, the base sets are disjoint, and
     neither side's ranges mention the other side's bases. *)
  let base_bits = Hashtbl.create 8 in
  Array.iter
    (List.iter (fun a ->
         match a.Depcond.acc_base with
         | Some b when not (Hashtbl.mem base_bits b) ->
           Hashtbl.add base_bits b (Hashtbl.length base_bits)
         | _ -> ()))
    accs;
  let nbases = Hashtbl.length base_bits in
  (* (members, every member based, base mask, mention mask) *)
  let summarize sel l =
    List.fold_left
      (fun ((count, ok, bases, ment) as acc) a ->
        if not (sel a) then acc
        else
          match a.Depcond.acc_base, a.Depcond.acc_range with
          | Some b, Some r when nbases <= 62 ->
            let ment =
              Hashtbl.fold
                (fun b' k m ->
                  if Alias.range_mentions r b' then m lor (1 lsl k) else m)
                base_bits ment
            in
            (count + 1, ok, bases lor (1 lsl Hashtbl.find base_bits b), ment)
          | _ -> (count + 1, false, bases, ment))
      (0, true, 0, 0) l
  in
  let all_sum = Array.map (summarize (fun _ -> true)) accs in
  let write_sum =
    Array.map (summarize (fun a -> a.Depcond.acc_write)) accs
  in
  (* every pair of [w]'s members against [a]'s is bucket-disjoint *)
  let buckets_disjoint (wc, wok, wb, wm) (_, aok, ab, am) =
    wc = 0 || (wok && aok && wb land ab = 0 && wm land ab = 0 && wb land am = 0)
  in
  (* can the memory side of pair (i, j) be pruned without Fig. 6? *)
  let mem_prunable i j =
    (match ipred.(i), ipred.(j) with
    | Some p, Some q -> Pred.equal p q
    | _ -> true)
    && buckets_disjoint write_sum.(i) all_sum.(j)
    && buckets_disjoint write_sum.(j) all_sum.(i)
  in
  let edges = ref [] in
  let next_id = ref 0 in
  let computed = ref 0 in
  let cand = Array.make (max 1 n) false in
  for i = 1 to n - 1 do
    (* register candidates of i *)
    List.iter
      (fun v ->
        match Depcond.def_item ctx v with
        | Some d ->
          let k = Hashtbl.find index d in
          if k < i then cand.(k) <- true
        | None -> ())
      (Depcond.free_values ctx nodes.(i));
    (* memory candidates of i *)
    if accs.(i) <> [] then
      for j = 0 to i - 1 do
        if
          (not cand.(j))
          && accs.(j) <> []
          && (has_write.(i) || has_write.(j))
          && not (mem_prunable i j)
        then cand.(j) <- true
      done;
    for j = 0 to i - 1 do
      if cand.(j) then begin
        cand.(j) <- false;
        incr computed;
        match Depcond.compute ctx nodes.(i) nodes.(j) with
        | Depcond.Never -> ()
        | Depcond.Always ->
          edges :=
            { e_id = !next_id; e_src = i; e_dst = j; e_cond = None } :: !edges;
          incr next_id
        | Depcond.When atoms ->
          edges :=
            { e_id = !next_id; e_src = i; e_dst = j; e_cond = Some atoms }
            :: !edges;
          incr next_id
      end
    done
  done;
  let pruned = (n * (n - 1) / 2) - !computed in
  Tm.incr ~by:pruned "depgraph.pairs_pruned";
  Tr.remark
    (Tr.anchor
       ?loop:(match region with Ir.Rloop l -> Some l | Ir.Rtop -> None)
       f.Ir.fname)
    (Tr.Graph_sparsity
       { nodes = n; edges = !next_id; pairs_pruned = pruned });
  { g_ctx = ctx; nodes; index; edges = Array.of_list (List.rev !edges) }

let edge_conditional e = e.e_cond <> None

(* Successor lists along dependence direction (src -> dst), optionally
   excluding a set of edges (by id). *)
let dependence_succ t ~(excluded : int -> bool) =
  let succ = Array.make (Array.length t.nodes) [] in
  Array.iter
    (fun e -> if not (excluded e.e_id) then succ.(e.e_src) <- e :: succ.(e.e_src))
    t.edges;
  succ

(* Is any node of [targets] reachable from [sources] along dependence
   edges, ignoring edges in [excluded]?  Used by tests and by clients to
   ask "are these already independent". *)
let depends_on t ~(excluded : int -> bool) (sources : int list)
    (targets : int list) : bool =
  let succ = dependence_succ t ~excluded in
  let n = Array.length t.nodes in
  let target = Array.make n false in
  List.iter (fun i -> target.(i) <- true) targets;
  let seen = Array.make n false in
  let found = ref false in
  (* a source only "reaches" a target through at least one edge, so the
     DFS starts from the sources' dependence successors (this ignores the
     trivial s -> s reachability the paper's footnote mentions) *)
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      if target.(v) then found := true;
      List.iter (fun e -> go e.e_dst) succ.(v)
    end
  in
  List.iter (fun s -> List.iter (fun e -> go e.e_dst) succ.(s)) sources;
  !found

let to_string t =
  let f = t.g_ctx.Depcond.cf in
  let node_str n =
    match n with
    | Ir.NI v -> Printer.string_of_inst f (Ir.inst f v)
    | Ir.NL l -> Printf.sprintf "loop L%d" l
  in
  let buf = Buffer.create 512 in
  Array.iteri
    (fun k n -> Buffer.add_string buf (Printf.sprintf "node %d: %s\n" k (node_str n)))
    t.nodes;
  Array.iter
    (fun e ->
      let label =
        match e.e_cond with
        | None -> "always"
        | Some atoms ->
          String.concat " \\/ "
            (List.map (Depcond.atom_to_string t.g_ctx.Depcond.cscev) atoms)
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d -> %d [%s]\n" e.e_src e.e_dst label))
    t.edges;
  Buffer.contents buf
