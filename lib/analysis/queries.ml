(* The analysis stack as registered incremental queries (DESIGN §17).

   SCEV and the region dependence graph are the two analyses every
   versioning client and every pass re-derives; registering them here
   means that, inside an active {!Fgv_incremental.Engine.with_ctx} (one
   pipeline run — see pipelines.ml), a function that has not changed
   since the last ask answers from the memo table, with the recorded
   counters and remarks replayed so the hit is observably identical to
   a recomputation.

   Outside a context (unit tests, ad-hoc harness code) these are plain
   wrappers over [Scev.create] / [Depgraph.build] with zero overhead.

   Contract notes:
   - the SCEV query is region-independent, so its key is empty;
   - the dependence-graph query records a read-edge on the SCEV query
     (it asks for SCEV through {!scev} inside its own computation), so
     a SCEV recomputed against changed content turns the graph red;
   - both memoized values hold pointers into the physical function
     they were computed on, which is exactly what the engine's
     physical-identity + fingerprint validity check permits. *)

module Q = Fgv_incremental.Engine
open Fgv_pssa

let scev_q : Scev.t Q.query = Q.register "analysis.scev"
let depgraph_q : Depgraph.t Q.query = Q.register "analysis.depgraph"

let region_key = function
  | Ir.Rtop -> "top"
  | Ir.Rloop l -> "loop:" ^ string_of_int l

let scev (f : Ir.func) : Scev.t =
  Q.get scev_q f ~key:"" (fun () -> Scev.create f)

(* [?scev] keeps the existing sharing contract: a caller that already
   ran SCEV on the same, unmodified function can donate it to a cold
   build.  On a memo hit the donation is ignored — the cached graph was
   derived from fingerprint-identical content. *)
let depgraph ?scev:(donated : Scev.t option) (f : Ir.func)
    (region : Ir.region) : Depgraph.t =
  Q.get depgraph_q f ~key:(region_key region) (fun () ->
      let sc = match donated with Some sc -> sc | None -> scev f in
      Depgraph.build f sc region)
