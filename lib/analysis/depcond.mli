(** Dependence conditions (Fig. 5 and Fig. 6 of the paper): the necessary
    condition under which one node *directly* depends on another. *)

open Fgv_pssa

type atom =
  | Apred of Pred.t
      (** the dependence exists only if this control predicate holds
          (i.e. the earlier instruction actually executes) *)
  | Aintersect of Scev.range * Scev.range
      (** the dependence exists only if the two memory ranges overlap *)

type cond =
  | Never  (** no dependence *)
  | Always  (** unconditional: SSA use, proven overlap, opaque call *)
  | When of atom list  (** dependence iff any atom holds (a disjunction) *)

val compare_atom : atom -> atom -> int
(** Structural total order on atoms (predicates via [Pred.compare_t]):
    stable across runs and job counts — the order for any observable
    sorting of atoms. *)

val atom_operands : atom -> Ir.value_id list
(** Values a run-time check of the atom would read (Fig. 13 l.14). *)

val cond_operands : cond -> Ir.value_id list

val atom_to_string : Scev.t -> atom -> string

val join : cond -> cond -> cond
(** Disjunction of two condition results; the merged atom list is
    [compare_atom]-sorted and duplicate-free. *)

(** Per-region summary of one memory access (range promoted to region
    level, restrict base of that range), computed once per access. *)
type access = {
  acc_v : Ir.value_id;
  acc_write : bool;
  acc_range : Scev.range option;
  acc_base : Ir.value_id option;
}

type ctx = {
  cf : Ir.func;
  cscev : Scev.t;
  cregion : Ir.region;
  ceff : Ir.value_id -> Pred.t;
      (** effective predicates (own pred ∧ enclosing loop guards) *)
  under : (Ir.loop_id, unit) Hashtbl.t;
      (** loops nested under the region (member ranges promote out of
          these) *)
  def_item : (Ir.value_id, Ir.node) Hashtbl.t;
      (** region-level item defining each value *)
  crange : (Ir.value_id, Scev.range option) Hashtbl.t;
      (** memo: region-promoted range per access *)
  caccess : (Ir.node, access list) Hashtbl.t;
      (** memo: access summaries per node *)
  cfree : (Ir.node, Ir.value_id list) Hashtbl.t;
      (** memo: register inputs per node *)
}

val make_ctx : Ir.func -> Scev.t -> Ir.region -> ctx

val def_item : ctx -> Ir.value_id -> Ir.node option

val region_range : ctx -> Ir.value_id -> Scev.range option
(** Memory range of an access, promoted to region level; [None] means all
    of memory (opaque call / failed promotion). *)

val mem_insts : ctx -> Ir.node -> Ir.value_id list
(** Fig. 6's [mem_instructions]: the node's memory accesses. *)

val accesses : ctx -> Ir.node -> access list
(** The node's memory accesses with promoted ranges and restrict bases
    (memoized). *)

val bucket_disjoint : access -> access -> bool
(** Distinct restrict buckets: the two accesses provably address
    distinct allocations, so their [memory_pair] is [Never]. *)

val free_values : ctx -> Ir.node -> Ir.value_id list
(** Values the node reads but does not define (register inputs). *)

val reads_from : ctx -> Ir.node -> Ir.node -> bool
(** Does node i read a value defined by node j? *)

val compute : ctx -> Ir.node -> Ir.node -> cond
(** Fig. 6's [c(i, j)]: the condition for [i] (later in program order) to
    directly depend on [j].  Bumps the [depcond.compute_calls] telemetry
    counter — the number CI pins to guard graph-construction cost. *)
