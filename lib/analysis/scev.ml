(* Scalar-evolution-lite: decompose integer values into linear
   expressions, recognize affine induction variables (mus with constant
   strides), compute trip counts for counted loops, and promote address
   ranges out of loops (the engine behind the paper's condition
   promotion, SIV-A). *)

open Fgv_pssa

type mu_affine = {
  ma_loop : Ir.loop_id;
  ma_init : Linexp.t; (* value on the first iteration *)
  ma_stride : int; (* added on every subsequent iteration *)
}

type t = {
  func : Ir.func;
  lin_memo : (Ir.value_id, Linexp.t) Hashtbl.t;
  mu_memo : (Ir.value_id, mu_affine option) Hashtbl.t;
  trip_memo : (Ir.loop_id, Linexp.t option) Hashtbl.t;
  enclosing : (Ir.value_id, Ir.loop_id list) Hashtbl.t;
  order : Ir.node -> int;
}

let create f =
  let enclosing = Hashtbl.create 64 in
  let rec walk loops items =
    List.iter
      (fun item ->
        match item with
        | Ir.I v -> Hashtbl.replace enclosing v loops
        | Ir.L lid ->
          let lp = Ir.loop f lid in
          List.iter (fun m -> Hashtbl.replace enclosing m (lid :: loops)) lp.mus;
          walk (lid :: loops) lp.body)
      items
  in
  walk [] f.fbody;
  {
    func = f;
    lin_memo = Hashtbl.create 64;
    mu_memo = Hashtbl.create 16;
    trip_memo = Hashtbl.create 16;
    enclosing;
    order = Ir.compute_order f;
  }

let enclosing_loops t v = Option.value ~default:[] (Hashtbl.find_opt t.enclosing v)

(* Decompose a value into a linear expression.  Mus and anything
   non-affine stay as opaque terms. *)
let rec linexp t v : Linexp.t =
  match Hashtbl.find_opt t.lin_memo v with
  | Some e -> e
  | None ->
    let e = compute_linexp t v in
    Hashtbl.replace t.lin_memo v e;
    e

and compute_linexp t v =
  let i = Ir.inst t.func v in
  match i.kind with
  | Const (Cint n) -> Linexp.const n
  | Binop (Add, a, b) -> Linexp.add (linexp t a) (linexp t b)
  | Binop (Sub, a, b) -> Linexp.sub (linexp t a) (linexp t b)
  | Binop (Mul, a, b) ->
    let ea = linexp t a and eb = linexp t b in
    if Linexp.is_const ea then Linexp.scale (Linexp.constant ea) eb
    else if Linexp.is_const eb then Linexp.scale (Linexp.constant eb) ea
    else Linexp.of_value v
  | _ -> Linexp.of_value v

(* Is this mu an affine induction variable (recur = mu + constant)? *)
let mu_affine t m : mu_affine option =
  match Hashtbl.find_opt t.mu_memo m with
  | Some r -> r
  | None ->
    let r =
      match (Ir.inst t.func m).kind with
      | Mu { init; recur; loop } -> (
        let er = linexp t recur in
        match Linexp.terms er with
        | [ (v, 1) ] when v = m ->
          Some
            { ma_loop = loop; ma_init = linexp t init; ma_stride = Linexp.constant er }
        | _ -> None)
      | _ -> None
    in
    Hashtbl.replace t.mu_memo m r;
    r

(* Trip count of a counted loop (given that its guard held), as a linear
   expression over values defined before the loop; None when the loop is
   not recognizably counted. *)
let rec trip t (lp : Ir.loop) : Linexp.t option =
  match Hashtbl.find_opt t.trip_memo lp.lid with
  | Some r -> r
  | None ->
    let r = compute_trip t lp in
    Hashtbl.replace t.trip_memo lp.lid r;
    r

and compute_trip t lp =
  let open Ir in
  match Pred.view lp.cont with
  | Pred.Plit { v = c; positive = true } -> (
    match (inst t.func c).kind with
    | Cmp (op, x, bound) -> (
      let ex = linexp t x and eb = linexp t bound in
      (* find the single mu term of this loop in ex *)
      let mu_terms =
        List.filter
          (fun (v, _) ->
            match mu_affine t v with
            | Some ma -> ma.ma_loop = lp.lid
            | None -> false)
          (Linexp.terms ex)
      in
      match mu_terms with
      | [ (m, 1) ] -> (
        let ma = Option.get (mu_affine t m) in
        (* base of the tested expression on iteration 0 *)
        let base = Linexp.subst m ex ma.ma_init in
        (* the bound and base must be loop-invariant: their terms must be
           defined before the loop *)
        let invariant e =
          List.for_all
            (fun v -> t.order (NI v) < t.order (NL lp.lid))
            (Linexp.values e)
        in
        if not (invariant base && invariant eb) then None
        else
          match op, ma.ma_stride with
          (* ascending: tested value = base + k *)
          | Lt, 1 -> Some (Linexp.add_const 1 (Linexp.sub eb base))
          | Le, 1 -> Some (Linexp.add_const 2 (Linexp.sub eb base))
          (* descending: tested value = base - k *)
          | Gt, -1 -> Some (Linexp.add_const 1 (Linexp.sub base eb))
          | Ge, -1 -> Some (Linexp.add_const 2 (Linexp.sub base eb))
          | _ -> None)
      | _ -> None)
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------- ranges *)

(* A half-open address range [lo, hi) in cells. *)
type range = { lo : Linexp.t; hi : Linexp.t }

let range_of_access t v : range option =
  let i = Ir.inst t.func v in
  let width ty = Ir.lanes_of_ty ty in
  match i.kind with
  | Load { addr } ->
    let lo = linexp t addr in
    Some { lo; hi = Linexp.add_const (width i.ty) lo }
  | Store { addr; value } ->
    let lo = linexp t addr in
    let w = width (Ir.inst t.func value).ty in
    Some { lo; hi = Linexp.add_const w lo }
  | Call _ -> None (* arbitrary memory *)
  | _ -> None

(* Over-approximation of the total advance of the loop's counting mu:
   a linear expression A and the counting stride |sc| such that the mu
   tested by the continue predicate advances by at most A (in absolute
   value) over all iterations.  Any other affine mu of the loop with
   stride sm (|sm| divisible by |sc|) then spans at most A * |sm|/|sc|.
   Works for strides beyond 1 (e.g. unrolled loops counting by the
   unroll factor). *)
let loop_advance t (lp : Ir.loop) : (Linexp.t * int) option =
  let open Ir in
  match Pred.view lp.cont with
  | Pred.Plit { v = c; positive = true } -> (
    match (inst t.func c).kind with
    | Cmp (op, x, bound) -> (
      let ex = linexp t x and eb = linexp t bound in
      let mu_terms =
        List.filter
          (fun (v, _) ->
            match mu_affine t v with
            | Some ma -> ma.ma_loop = lp.lid
            | None -> false)
          (Linexp.terms ex)
      in
      match mu_terms with
      | [ (m, 1) ] -> (
        let ma = Option.get (mu_affine t m) in
        let base = Linexp.subst m ex ma.ma_init in
        let invariant e =
          List.for_all
            (fun v -> t.order (NI v) < t.order (NL lp.lid))
            (Linexp.values e)
        in
        if not (invariant base && invariant eb) || ma.ma_stride = 0 then None
        else
          (* do-while: iteration T-2 still satisfied the condition, so
             (T-1)*|sc| <= (condition slack) + |sc| *)
          match op, ma.ma_stride > 0 with
          | Lt, true ->
            Some
              ( Linexp.add_const (ma.ma_stride - 1) (Linexp.sub eb base),
                ma.ma_stride )
          | Le, true ->
            Some (Linexp.add_const ma.ma_stride (Linexp.sub eb base), ma.ma_stride)
          | Gt, false ->
            Some
              ( Linexp.add_const (-ma.ma_stride - 1) (Linexp.sub base eb),
                -ma.ma_stride )
          | Ge, false ->
            Some (Linexp.add_const (-ma.ma_stride) (Linexp.sub base eb), -ma.ma_stride)
          | _ -> None)
      | _ -> None)
    | _ -> None)
  | _ -> None

(* Promote a range out of the given loops: substitute each affine mu of
   those loops with its extremal values over the loop's iteration space.
   Conservative (the promoted range is a superset); fails when a mu is
   not affine or the loop's extent is unknown.  This is the paper's
   "imprecise" condition promotion. *)
let rec promote_range t ~(out_of : Ir.loop_id -> bool) (r : range) :
    range option =
  (* a value must be eliminated if it is defined inside any loop we are
     promoting out of (its runtime value varies across the iterations the
     promoted check must cover) *)
  let needs_elimination v = List.exists out_of (enclosing_loops t v) in
  let candidates =
    List.filter needs_elimination (range_values_raw r)
  in
  match candidates with
  | [] -> Some r
  | m :: _ -> (
    match mu_affine t m with
    | None -> None (* loop-varying but not an affine induction: give up *)
    | Some ma -> (
      let lp = Ir.loop t.func ma.ma_loop in
      match loop_advance t lp with
      | None -> None
      | Some (_, sc) when ma.ma_stride mod sc <> 0 || ma.ma_stride = 0 -> None
      | Some (adv, sc) ->
        (* value of the mu ranges over [init, init + advance] (or the
           reverse for negative strides) *)
        let k = abs ma.ma_stride / sc in
        let total = Linexp.scale k adv in
        let min_e, max_e =
          if ma.ma_stride > 0 then (ma.ma_init, Linexp.add ma.ma_init total)
          else (Linexp.sub ma.ma_init total, ma.ma_init)
        in
        let subst_ext e ~toward_hi =
          match List.assoc_opt m (Linexp.terms e) with
          | None -> e
          | Some k ->
            let repl = if (k > 0) = toward_hi then max_e else min_e in
            Linexp.subst m e repl
        in
        let r' =
          {
            lo = subst_ext r.lo ~toward_hi:false;
            hi = subst_ext r.hi ~toward_hi:true;
          }
        in
        promote_range t ~out_of r'))

and range_values_raw r =
  List.sort_uniq compare (Linexp.values r.lo @ Linexp.values r.hi)

(* All values a range's bounds mention (the "operands" of an intersection
   dependence condition). *)
let range_values r =
  List.sort_uniq compare (Linexp.values r.lo @ Linexp.values r.hi)

let range_to_string t r =
  let name = Ir.value_name t.func in
  Printf.sprintf "[%s, %s)" (Linexp.to_string name r.lo) (Linexp.to_string name r.hi)
