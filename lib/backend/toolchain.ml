(* System C toolchain discovery and invocation.

   The backend drives whatever compiler the host provides: [FGV_CC]
   overrides, otherwise the first of cc / gcc / clang on PATH wins.
   Everything degrades gracefully when there is no compiler at all —
   {!find_cc} returns [None] and every native consumer (bench lane,
   fuzz differential, fgvc --run-native) reports or skips instead of
   failing. *)

module Tm = Fgv_support.Telemetry
module Proc = Fgv_support.Proc

type mode =
  | Checked (* -O0, no -march: keeps FP bit-exact vs. the interpreter *)
  | Fast (* -O2 -march=native: the SLP-vectorizing configuration *)

let candidates = [ "cc"; "gcc"; "clang" ]

let find_cc () =
  match Sys.getenv_opt "FGV_CC" with
  | Some cc -> Proc.find_in_path cc
  | None -> List.find_map Proc.find_in_path candidates

let available () = find_cc () <> None

let mode_flags = function
  | Checked -> [ "-O0"; "-w" ]
  | Fast -> [ "-O2"; "-march=native"; "-w" ]

(* Compile [src] to [exe].  Fast mode retries without -march=native for
   toolchains that reject it (some cross setups); checked mode never
   adds -march in the first place. *)
let compile ~(mode : mode) ~(src : string) ~(exe : string) :
    (unit, string) result =
  match find_cc () with
  | None -> Error "no C compiler (install cc/gcc/clang or set FGV_CC)"
  | Some cc ->
    let attempt flags = Proc.run cc (flags @ [ src; "-o"; exe; "-lm" ]) in
    let r = attempt (mode_flags mode) in
    let r =
      if (not (Proc.ok r)) && mode = Fast then attempt [ "-O2"; "-w" ] else r
    in
    Tm.incr "native.compiles";
    Tm.incr ~by:(int_of_float (r.Proc.p_wall_s *. 1000.)) "native.compile_ms";
    if Proc.ok r then Ok ()
    else begin
      Tm.incr "native.compile_errors";
      let err = String.trim r.Proc.p_stderr in
      let err =
        if String.length err > 400 then String.sub err 0 400 ^ "..." else err
      in
      Error
        (Printf.sprintf "%s failed (%s): %s" (Filename.basename cc)
           (Proc.status_string r.Proc.p_status)
           err)
    end
