(* Compile-and-run orchestration for the native backend.

   Checked mode produces an {!obs} — the native twin of a CFG
   interpreter outcome: final memory, the impure-call trace, and a run
   classification — parsed from the protocol the emitted program prints
   (see {!Emit}).  Values cross the process boundary as little tokens
   ([i:<dec>], [f:<IEEE bits in hex>], [b:0/1], [u], [v:lane;lane;...]),
   so floats round-trip bit-exactly, NaN payloads included.

   Fast mode compiles the benchmarking configuration and reports
   nanoseconds per kernel execution plus a checksum of final memory for
   validation. *)

module Tm = Fgv_support.Telemetry
module Proc = Fgv_support.Proc
open Fgv_pssa

let available = Toolchain.available

(* ---------------- value tokens (OCaml side of the protocol) ------- *)

let rec value_token (v : Value.t) : string =
  match v with
  | Value.VUndef -> "u"
  | Value.VInt n -> Printf.sprintf "i:%d" n
  | Value.VFloat x -> Printf.sprintf "f:%016Lx" (Int64.bits_of_float x)
  | Value.VBool b -> if b then "b:1" else "b:0"
  | Value.VVec xs ->
    "v:"
    ^ String.concat ";" (Array.to_list (Array.map value_token xs))

let token_value (s : string) : Value.t =
  let scalar s =
    if s = "u" then Value.VUndef
    else if String.length s < 2 then failwith ("bad value token: " ^ s)
    else
      let tail = String.sub s 2 (String.length s - 2) in
      match s.[0] with
      | 'i' -> Value.VInt (int_of_string tail)
      | 'f' -> Value.VFloat (Int64.float_of_bits (Int64.of_string ("0x" ^ tail)))
      | 'b' -> Value.VBool (tail = "1")
      | _ -> failwith ("bad value token: " ^ s)
  in
  if String.length s >= 2 && s.[0] = 'v' && s.[1] = ':' then
    let tail = String.sub s 2 (String.length s - 2) in
    Value.VVec
      (Array.of_list (List.map scalar (String.split_on_char ';' tail)))
  else scalar s

(* ---------------- checked runs ------------------------------------ *)

type nclass =
  | NOk
  | NTrap
  | NUndef of string (* "load" | "store" *)
  | NFuel

type obs = {
  n_class : nclass;
  n_mem : Value.t array;
  n_trace : (string * Value.t list) list; (* impure calls, oldest first *)
}

let nclass_string = function
  | NOk -> "ok"
  | NTrap -> "trap"
  | NUndef op -> "undef " ^ op
  | NFuel -> "fuel"

let parse_obs ~(memn : int) (out : string) : (obs, string) result =
  let mem = Array.make memn Value.VUndef in
  let trace = ref [] in
  let cls = ref None in
  let bad = ref None in
  let line l =
    match String.split_on_char ' ' l with
    | [ "M"; idx; tok ] ->
      let i = int_of_string idx in
      if i >= 0 && i < memn then mem.(i) <- token_value tok
    | "C" :: name :: toks -> trace := (name, List.map token_value toks) :: !trace
    | [ "X"; "ok" ] -> cls := Some NOk
    | [ "X"; "trap" ] -> cls := Some NTrap
    | [ "X"; "undef"; op ] -> cls := Some (NUndef op)
    | [ "X"; "fuel" ] -> cls := Some NFuel
    | [] | [ "" ] -> ()
    | _ -> bad := Some l
  in
  (try List.iter line (String.split_on_char '\n' out)
   with e -> bad := Some (Printexc.to_string e));
  match !bad, !cls with
  | Some l, _ -> Error (Printf.sprintf "unparseable native output: %S" l)
  | None, None -> Error "native run printed no classification line"
  | None, Some c -> Ok { n_class = c; n_mem = mem; n_trace = List.rev !trace }

(* A compiled checked program: one compile serves any number of runs
   (the fuzz oracle reuses it across memory layouts). *)
type compiled = {
  nc_dir : string;
  nc_exe : string;
  nc_memn : int;
}

let fresh_dir () =
  let base = Filename.temp_file "fgv-native" "" in
  Sys.remove base;
  Unix.mkdir base 0o700;
  base

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let release (c : compiled) =
  let rm f = try Sys.remove f with Sys_error _ -> () in
  rm c.nc_exe;
  rm (Filename.concat c.nc_dir "prog.c");
  try Unix.rmdir c.nc_dir with Unix.Unix_error _ -> ()

let compile_checked ?fuel (p : Fgv_cfg.Cir.prog) ~(mem : Value.t array) :
    (compiled, string) result =
  let src_text = Emit.checked ?fuel p ~mem in
  let dir = fresh_dir () in
  let src = Filename.concat dir "prog.c" in
  let exe = Filename.concat dir "prog" in
  write_file src src_text;
  match Toolchain.compile ~mode:Toolchain.Checked ~src ~exe with
  | Ok () -> Ok { nc_dir = dir; nc_exe = exe; nc_memn = Array.length mem }
  | Error e ->
    release { nc_dir = dir; nc_exe = exe; nc_memn = 0 };
    Error e

let run_checked (c : compiled) ~(args : Value.t list) : (obs, string) result =
  let r = Proc.run c.nc_exe (List.map value_token args) in
  Tm.incr "native.runs";
  Tm.incr ~by:(int_of_float (r.Proc.p_wall_s *. 1000.)) "native.run_ms";
  if not (Proc.ok r) then
    Error
      (Printf.sprintf "native run %s: %s" (Proc.status_string r.Proc.p_status)
         (String.trim r.Proc.p_stderr))
  else parse_obs ~memn:c.nc_memn r.Proc.p_stdout

(* ---------------- fast runs --------------------------------------- *)

type fast_result = {
  nf_checksum : float; (* checksum of final memory after one run *)
  nf_ns : float; (* nanoseconds per kernel execution *)
  nf_reps : int; (* calibrated repetition count *)
  nf_compile_s : float;
  nf_run_s : float;
}

(* The checksum the emitted fast program computes, replayed on an
   interpreter memory image so the two sides can be compared. *)
let checksum_of_mem (mem : Value.t array) : float =
  Array.fold_left
    (fun acc (v : Value.t) ->
      acc
      +.
      match v with
      | Value.VFloat x -> x
      | Value.VInt n -> float_of_int n
      | Value.VBool b -> if b then 1.0 else 0.0
      | _ -> 0.0)
    0.0 mem

let parse_fast (out : string) ~compile_s ~run_s : (fast_result, string) result =
  let checksum = ref None and ns = ref None and reps = ref None in
  List.iter
    (fun l ->
      match String.split_on_char ' ' l with
      | [ "checksum"; bits ] ->
        checksum := Some (Int64.float_of_bits (Int64.of_string ("0x" ^ bits)))
      | [ "ns"; x ] -> ns := Some (float_of_string x)
      | [ "reps"; n ] -> reps := Some (int_of_string n)
      | _ -> ())
    (String.split_on_char '\n' out);
  match !checksum, !ns, !reps with
  | Some c, Some n, Some r ->
    Ok
      {
        nf_checksum = c;
        nf_ns = n;
        nf_reps = r;
        nf_compile_s = compile_s;
        nf_run_s = run_s;
      }
  | _ -> Error "native fast run: missing checksum/ns/reps output"

let run_fast (p : Fgv_cfg.Cir.prog) ~(args : Value.t list)
    ~(mem : Value.t array) : (fast_result, string) result =
  let src_text = Emit.fast p ~args ~mem in
  let dir = fresh_dir () in
  let src = Filename.concat dir "prog.c" in
  let exe = Filename.concat dir "prog" in
  write_file src src_text;
  let t0 = Unix.gettimeofday () in
  let res =
    match Toolchain.compile ~mode:Toolchain.Fast ~src ~exe with
    | Error e -> Error e
    | Ok () -> (
      let compile_s = Unix.gettimeofday () -. t0 in
      let r = Proc.run exe [] in
      Tm.incr "native.runs";
      Tm.incr ~by:(int_of_float (r.Proc.p_wall_s *. 1000.)) "native.run_ms";
      if not (Proc.ok r) then
        Error
          (Printf.sprintf "native run %s: %s"
             (Proc.status_string r.Proc.p_status)
             (String.trim r.Proc.p_stderr))
      else parse_fast r.Proc.p_stdout ~compile_s ~run_s:r.Proc.p_wall_s)
  in
  release { nc_dir = dir; nc_exe = exe; nc_memn = 0 };
  res
