(* The incremental query engine — see engine.mli for the contract.

   Implementation notes:

   - Values of different queries share one memo table, so each query
     carries a universal embedding (the classic exception trick: a
     locally declared constructor gives an injection/projection pair
     without Obj).  A projection failure can only mean two queries were
     registered under one name, which [register] forbids.

   - The context lives in [Domain.DLS]: installing it never takes a
     lock, and two pool workers can never see each other's memo
     entries (analysis objects hold pointers into the worker's own IR
     copy — sharing them across domains would be unsound as well as
     nondeterministic).

   - Read-edges: while a computation runs, a dependency list sits on
     the context's stack; every nested ask (hit or miss) appends
     (query, key, fingerprint-at-read) to the top of the stack.  The
     recorded edges make green-checking transitive enough in practice:
     an entry whose own fingerprint matches but whose inputs were
     recomputed to a different stamp is treated as red. *)

module Tm = Fgv_support.Telemetry
module Tr = Fgv_support.Trace
open Fgv_pssa

(* ----------------------------------------------------- universal values *)

type univ = exn

type 'a query = {
  q_name : string;
  q_inject : 'a -> univ;
  q_project : univ -> 'a option;
}

let registered : (string, unit) Hashtbl.t = Hashtbl.create 16

let register (type a) name : a query =
  if Hashtbl.mem registered name then
    invalid_arg ("Engine.register: duplicate query name " ^ name);
  Hashtbl.add registered name ();
  let module M = struct
    exception E of a
  end in
  {
    q_name = name;
    q_inject = (fun x -> M.E x);
    q_project = (function M.E x -> Some x | _ -> None);
  }

(* ------------------------------------------------------------- the table *)

(* One read-edge: the ask that a computation made, with the dependee's
   fingerprint at read time. *)
type dep = { d_query : string; d_key : string; d_fp : string }

type entry = {
  e_value : univ;
  e_func : Ir.func;  (** physical identity the value is tied to *)
  e_fp : string;  (** [fingerprint e_func] when computed *)
  e_deps : dep list;
  e_shard : Tm.shard;  (** counters/timers the computation recorded *)
  e_remarks : (Tr.anchor * Tr.remark) list;
}

type ctx = {
  table : (string * string, entry) Hashtbl.t;
  mutable dep_stack : dep list ref list;
      (** innermost computation's read-edge collector first *)
}

let slot : ctx option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () : ctx option = !(Domain.DLS.get slot)

let active () = current () <> None

let with_ctx k =
  let cell = Domain.DLS.get slot in
  match !cell with
  | Some _ -> k () (* re-entrant: nested pipelines share the memo table *)
  | None ->
    cell := Some { table = Hashtbl.create 64; dep_stack = [] };
    Fun.protect ~finally:(fun () -> cell := None) k

let fingerprint (f : Ir.func) : string =
  Digest.to_hex (Digest.string (Printer.to_string f))

(* ---------------------------------------------------------------- asking *)

let record_read ctx q key fp =
  match ctx.dep_stack with
  | [] -> ()
  | deps :: _ -> deps := { d_query = q; d_key = key; d_fp = fp } :: !deps

(* Green iff every recorded read still resolves to an entry carrying the
   fingerprint it had when read.  A dropped dependee is green too: the
   entry's own fingerprint already vouches for the function content the
   dependee was derived from. *)
let deps_green ctx (e : entry) =
  List.for_all
    (fun d ->
      match Hashtbl.find_opt ctx.table (d.d_query, d.d_key) with
      | None -> true
      | Some dep_entry -> dep_entry.e_fp = d.d_fp)
    e.e_deps

let own_counter name = String.length name >= 12 && String.sub name 0 12 = "incremental."

let compute_entry ctx (q : 'a query) (f : Ir.func) ~key ~fp compute : entry * 'a =
  Tm.incr "incremental.recomputed";
  let deps = ref [] in
  ctx.dep_stack <- deps :: ctx.dep_stack;
  let (value, remarks), shard =
    Fun.protect
      ~finally:(fun () -> ctx.dep_stack <- List.tl ctx.dep_stack)
      (fun () -> Tm.isolated (fun () -> Tr.collect_remarks compute))
  in
  (* the computation's work reaches the live registry and the live
     remark stream exactly once, here — a later hit replays the same *)
  Tm.merge_shard shard;
  List.iter (fun (a, r) -> Tr.remark a r) remarks;
  let entry =
    {
      e_value = q.q_inject value;
      e_func = f;
      e_fp = fp;
      e_deps = !deps;
      e_shard = Tm.shard_filter_counters (fun n -> not (own_counter n)) shard;
      e_remarks = remarks;
    }
  in
  Hashtbl.replace ctx.table (q.q_name, key) entry;
  (entry, value)

let get (type a) (q : a query) (f : Ir.func) ~key (compute : unit -> a) : a =
  match current () with
  | None -> compute ()
  | Some ctx -> (
    Tm.incr "incremental.queries_asked";
    let fp = fingerprint f in
    let table_key = (q.q_name, key) in
    let cached =
      match Hashtbl.find_opt ctx.table table_key with
      | Some e when e.e_func == f && e.e_fp = fp && deps_green ctx e -> (
        match q.q_project e.e_value with
        | Some v -> Some (e, v)
        | None -> None (* impossible: names are unique *))
      | Some _ ->
        Tm.incr "incremental.invalidated";
        Hashtbl.remove ctx.table table_key;
        None
      | None -> None
    in
    match cached with
    | Some (e, v) ->
      Tm.incr "incremental.memo_hits";
      (* replay: the hit is observably a recomputation *)
      Tm.merge_shard e.e_shard;
      List.iter (fun (a, r) -> Tr.remark a r) e.e_remarks;
      record_read ctx q.q_name key fp;
      v
    | None ->
      let _entry, v = compute_entry ctx q f ~key ~fp compute in
      record_read ctx q.q_name key fp;
      v)
