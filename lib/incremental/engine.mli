(** The incremental query engine (DESIGN §17): memoized,
    dependency-tracked analyses over the mutable PSSA IR, in the
    red-green style of demand-driven incremental compilers.

    A {b query} is a named, registered unit of analysis; an {b ask}
    ({!get}) is one demand for its value over one function and one
    caller-chosen key (the region, the node set — whatever, beyond the
    function's own content, determines the result).  Asks inside an
    active context ({!with_ctx}) consult a memo table; asks outside one
    compute directly with zero bookkeeping, so analyses stay usable from
    unit tests and ad-hoc harness code unchanged.

    {b Validity (red-green).}  The IR is mutable and analysis results
    capture pointers into it, so a memo entry is keyed by the {e
    physical} function it was computed on and stamped with the
    function's {!fingerprint} (a digest of its printed form).  An entry
    is {e green} — replayed without recomputation — iff the ask is for
    the same physical function, the current fingerprint equals the
    recorded one, and every recorded read-edge (a nested ask the
    computation made) still resolves to an entry with the fingerprint it
    had when read.  Anything else is {e red}: the entry is dropped and
    the query recomputes.  Fingerprint equality stands in for value
    equality — conservative (an edit that does not change the printed
    function, e.g. none, would be missed; a semantically irrelevant edit
    recomputes needlessly) but sound, because the printer renders every
    value id, operand, predicate, and loop the analyses can observe.

    {b Determinism contract (DESIGN §16, extended).}  A memo hit must be
    observably identical to a recomputation: the computation runs under
    an isolated telemetry registry and a remark collector, both are
    stored with the value, and a hit merges the stored counter shard and
    re-emits the stored remarks exactly as a recomputation would have.
    The engine's own [incremental.*] counters are stripped from stored
    shards so replay never double-counts asks.  Contexts are
    domain-local and scoped to one pipeline run, so worker domains never
    share analysis objects and [--jobs] determinism is preserved.

    Counters (all under the [incremental.] namespace):
    [queries_asked], [memo_hits], [invalidated] (entry existed but was
    red), [recomputed]. *)

open Fgv_pssa

type 'a query

val register : string -> 'a query
(** Declare a query under a unique name (the memo-key namespace and the
    label validation errors use).  Registering two queries with the same
    name raises [Invalid_argument]: their memo entries would collide. *)

val fingerprint : Ir.func -> string
(** Digest of the function's printed form — the engine's validity stamp.
    Exposed for the service's edit-tracking and for tests. *)

val with_ctx : (unit -> 'a) -> 'a
(** Run the thunk with a fresh memo context installed on the calling
    domain; re-entrant (an inner [with_ctx] reuses the active context,
    so nested pipelines share one memo table).  The context is dropped
    when the outermost call returns, also on exceptions: memoized
    analysis objects hold pointers into the IR and must not outlive the
    compile that built them. *)

val active : unit -> bool
(** Is a context installed on the calling domain? *)

val get : 'a query -> Ir.func -> key:string -> (unit -> 'a) -> 'a
(** [get q f ~key compute] answers the ask.  [key] must capture every
    input of [compute] other than [f]'s own content (region, node set,
    configuration); callers own that contract.  With no active context
    this is exactly [compute ()]. *)
