(* Reference interpreter for PSSA with an architectural cost model.

   Semantics:
   - items execute in order; an instruction whose predicate evaluates to
     false is skipped and its value becomes undef;
   - a loop whose guard holds runs with do-while semantics: mus take
     their init value on the first iteration and their recur value on
     subsequent ones; after the final iteration the mus are advanced one
     more time so that etas observe the exit value (e.g. i == n after a
     counted loop);
   - undef propagates through arithmetic (LLVM-poison style) and reads as
     false in predicates; loading or storing through an undef address
     traps.

   The interpreter records an observable trace (external calls in order,
   plus the final memory) that the test suite uses to check that program
   transformations are semantics-preserving. *)

open Ir

type counters = {
  mutable scalar_ops : int;
  mutable vector_ops : int;
  mutable loads : int;
  mutable vector_loads : int;
  mutable stores : int;
  mutable vector_stores : int;
  mutable calls : int;
  mutable iterations : int; (* loop iterations executed *)
  mutable skipped : int; (* predicated-off instructions *)
}

let new_counters () =
  {
    scalar_ops = 0;
    vector_ops = 0;
    loads = 0;
    vector_loads = 0;
    stores = 0;
    vector_stores = 0;
    calls = 0;
    iterations = 0;
    skipped = 0;
  }

type outcome = {
  memory : Value.t array;
  call_trace : (string * Value.t list) list; (* in execution order *)
  counters : counters;
}

exception Out_of_fuel

(* External functions: receive argument values and the memory array
   (which impure functions may mutate); return the result value. *)
type ffi = (string * (Value.t list -> Value.t array -> Value.t)) list

let default_ffi : ffi =
  [
    ("sqrt", fun args _ -> VFloat (sqrt (Value.to_float (List.hd args))));
    ("fabs", fun args _ -> VFloat (Float.abs (Value.to_float (List.hd args))));
    ("exp", fun args _ -> VFloat (exp (Value.to_float (List.hd args))));
    (* the paper's running example: a rarely-executed opaque call that
       clobbers the first memory cell *)
    ( "cold_func",
      fun _ mem ->
        if Array.length mem > 0 then mem.(0) <- VFloat 42.0;
        VInt 0 );
    (* reads one (wrapped) cell; numeric whatever the cell holds *)
    ( "opaque_read",
      fun args mem ->
        if Array.length mem = 0 then VFloat 0.0
        else
          let i = Value.to_int (List.hd args) in
          let i = ((i mod Array.length mem) + Array.length mem) mod Array.length mem in
          (match mem.(i) with
          | VFloat x -> VFloat x
          | VInt n -> VFloat (Float.of_int n)
          | VBool b -> VFloat (if b then 1.0 else 0.0)
          | _ -> VFloat 0.0) );
    (* clobbers one (wrapped) cell: a spurious-write generator *)
    ( "opaque_touch",
      fun args mem ->
        if Array.length mem > 0 then begin
          let i = Value.to_int (List.hd args) in
          let i = ((i mod Array.length mem) + Array.length mem) mod Array.length mem in
          mem.(i) <- VFloat 7.0
        end;
        VInt 0 );
  ]

let lift_int_op op a b = Value.VInt (op (Value.to_int a) (Value.to_int b))
let lift_float_op op a b = Value.VFloat (op (Value.to_float a) (Value.to_float b))

let apply_binop op (a : Value.t) (b : Value.t) : Value.t =
  if Value.is_undef a || Value.is_undef b then VUndef
  else
    match op with
    (* integer semantics (wrap, rounding, casts) are pinned in {!Intsem}
       so the native C backend can mirror them exactly *)
    | Add -> lift_int_op Intsem.add a b
    | Sub -> lift_int_op Intsem.sub a b
    | Mul -> lift_int_op Intsem.mul a b
    | Div ->
      let d = Value.to_int b in
      if d = 0 then Value.trap "integer division by zero"
      else lift_int_op Intsem.div a b
    | Rem ->
      let d = Value.to_int b in
      if d = 0 then Value.trap "integer remainder by zero"
      else lift_int_op Intsem.rem a b
    | Fadd -> lift_float_op ( +. ) a b
    | Fsub -> lift_float_op ( -. ) a b
    | Fmul -> lift_float_op ( *. ) a b
    | Fdiv -> lift_float_op ( /. ) a b
    | Fmin -> lift_float_op Intsem.fmin a b
    | Fmax -> lift_float_op Intsem.fmax a b
    | Band -> VBool (Value.to_bool a && Value.to_bool b)
    | Bor -> VBool (Value.to_bool a || Value.to_bool b)

let apply_cmp op (a : Value.t) (b : Value.t) : Value.t =
  if Value.is_undef a || Value.is_undef b then VUndef
  else
    match op with
    | Eq -> VBool (Value.to_int a = Value.to_int b)
    | Ne -> VBool (Value.to_int a <> Value.to_int b)
    | Lt -> VBool (Value.to_int a < Value.to_int b)
    | Le -> VBool (Value.to_int a <= Value.to_int b)
    | Gt -> VBool (Value.to_int a > Value.to_int b)
    | Ge -> VBool (Value.to_int a >= Value.to_int b)
    | Feq -> VBool (Value.to_float a = Value.to_float b)
    | Fne -> VBool (Value.to_float a <> Value.to_float b)
    | Flt -> VBool (Value.to_float a < Value.to_float b)
    | Fle -> VBool (Value.to_float a <= Value.to_float b)
    | Fgt -> VBool (Value.to_float a > Value.to_float b)
    | Fge -> VBool (Value.to_float a >= Value.to_float b)

(* Apply a scalar operation lanewise when either operand is a vector. *)
let lanewise2 op a b =
  match a, b with
  | Value.VVec xs, Value.VVec ys ->
    if Array.length xs <> Array.length ys then
      Value.trap "vector width mismatch"
    else Value.VVec (Array.map2 op xs ys)
  | Value.VVec xs, y -> Value.VVec (Array.map (fun x -> op x y) xs)
  | x, Value.VVec ys -> Value.VVec (Array.map (fun y -> op x y) ys)
  | x, y -> op x y

let run ?(fuel = 100_000_000) ?(ffi = default_ffi) (f : func)
    ~(args : Value.t list) ~(mem : Value.t array) : outcome =
  let env : (value_id, Value.t) Hashtbl.t = Hashtbl.create 256 in
  let counters = new_counters () in
  let trace = ref [] in
  let fuel_left = ref fuel in
  let lookup v = Option.value ~default:Value.VUndef (Hashtbl.find_opt env v) in
  let eval_pred p = Pred.eval (fun v -> Value.to_bool (lookup v)) p in
  let burn () =
    decr fuel_left;
    if !fuel_left <= 0 then raise Out_of_fuel
  in
  let check_addr a =
    if a < 0 || a >= Array.length mem then
      Value.trap "out-of-bounds access at %d (heap %d)" a (Array.length mem)
  in
  let count_op i =
    match i.ty with
    | Tvec _ -> counters.vector_ops <- counters.vector_ops + 1
    | _ -> counters.scalar_ops <- counters.scalar_ops + 1
  in
  let exec_inst (i : inst) : Value.t =
    burn ();
    match i.kind with
    | Const (Cint n) -> VInt n
    | Const (Cfloat x) -> VFloat x
    | Const (Cbool b) -> VBool b
    | Const (Cundef _) -> VUndef
    | Arg n -> (
      match List.nth_opt args n with
      | Some v -> v
      | None -> Value.trap "missing argument %d" n)
    | Binop (op, a, b) ->
      count_op i;
      lanewise2 (apply_binop op) (lookup a) (lookup b)
    | Cmp (op, a, b) ->
      count_op i;
      lanewise2 (apply_cmp op) (lookup a) (lookup b)
    | Cast (t, a) ->
      count_op i;
      let rec cast1 v =
        if Value.is_undef v then Value.VUndef
        else
          match v, t with
          | Value.VVec xs, _ -> Value.VVec (Array.map cast1 xs)
          | _, (Tfloat | Tvec (Tfloat, _)) ->
            VFloat (Intsem.to_float (Value.to_int v))
          | _, (Tint | Tvec (Tint, _)) ->
            VInt (Intsem.of_float (Value.to_float v))
          | _, (Tbool | Tvec (Tbool, _)) -> VBool (Value.to_bool v)
          | _ -> Value.trap "unsupported cast"
      in
      cast1 (lookup a)
    | Select { cond; if_true; if_false } -> (
      count_op i;
      match lookup cond with
      | VVec lanes ->
        let tv = lookup if_true and fv = lookup if_false in
        let lane k v =
          let pick src =
            match src with Value.VVec xs -> xs.(k) | s -> s
          in
          if Value.to_bool v then pick tv else pick fv
        in
        VVec (Array.mapi lane lanes)
      | c -> if Value.to_bool c then lookup if_true else lookup if_false)
    | Phi ops -> (
      match List.find_opt (fun (p, _) -> eval_pred p) ops with
      | Some (_, v) -> lookup v
      | None -> VUndef)
    | Mu _ -> Value.trap "mu executed outside loop header"
    | Eta { value; _ } -> lookup value
    | Load { addr } -> (
      let av = lookup addr in
      if Value.is_undef av then Value.undef_access "load";
      let a = Value.to_int av in
      match i.ty with
      | Tvec (_, n) ->
        counters.vector_loads <- counters.vector_loads + 1;
        check_addr a;
        check_addr (a + n - 1);
        VVec (Array.init n (fun k -> mem.(a + k)))
      | _ ->
        counters.loads <- counters.loads + 1;
        check_addr a;
        mem.(a))
    | Store { addr; value } -> (
      let av = lookup addr in
      if Value.is_undef av then Value.undef_access "store";
      let a = Value.to_int av in
      match lookup value with
      | VVec lanes ->
        counters.vector_stores <- counters.vector_stores + 1;
        check_addr a;
        check_addr (a + Array.length lanes - 1);
        Array.iteri (fun k v -> mem.(a + k) <- v) lanes;
        VUndef
      | v ->
        counters.stores <- counters.stores + 1;
        check_addr a;
        mem.(a) <- v;
        VUndef)
    | Call { callee; args = cargs; effect } -> (
      counters.calls <- counters.calls + 1;
      let argv = List.map lookup cargs in
      (* only impure calls are observable events: pure and read-only
         calls are deterministic functions the optimizer may duplicate,
         reorder, or hoist *)
      if effect = Impure then trace := (callee, argv) :: !trace;
      match List.assoc_opt callee ffi with
      | Some fn -> fn argv mem
      | None -> Value.trap "unknown external function %s" callee)
    | Splat v -> (
      count_op i;
      match i.ty with
      | Tvec (_, n) -> VVec (Array.make n (lookup v))
      | _ -> Value.trap "splat with non-vector type")
    | Vecbuild vs ->
      count_op i;
      VVec (Array.of_list (List.map lookup vs))
    | Extract (v, k) -> (
      count_op i;
      match lookup v with
      | VVec xs when k < Array.length xs -> xs.(k)
      | VVec _ -> Value.trap "extract lane out of range"
      | VUndef -> VUndef
      | _ -> Value.trap "extract from non-vector")
  in
  let rec exec_items items =
    List.iter
      (fun item ->
        match item with
        | I v ->
          let i = inst f v in
          if eval_pred i.ipred then Hashtbl.replace env v (exec_inst i)
          else begin
            counters.skipped <- counters.skipped + 1;
            Hashtbl.replace env v Value.VUndef
          end
        | L lid -> exec_loop (loop f lid))
      items
  and exec_loop lp =
    if eval_pred lp.lpred then begin
      (* first iteration: mus take their init values *)
      List.iter
        (fun m ->
          match (inst f m).kind with
          | Mu { init; _ } -> Hashtbl.replace env m (lookup init)
          | _ -> Value.trap "non-mu in loop header")
        lp.mus;
      let continue_ = ref true in
      while !continue_ do
        burn ();
        counters.iterations <- counters.iterations + 1;
        exec_items lp.body;
        (* advance mus: compute all next values, then commit *)
        let next =
          List.map
            (fun m ->
              match (inst f m).kind with
              | Mu { recur; _ } -> (m, lookup recur)
              | _ -> assert false)
            lp.mus
        in
        let cont_now = eval_pred lp.cont in
        List.iter (fun (m, v) -> Hashtbl.replace env m v) next;
        continue_ := cont_now
      done
    end
    else begin
      (* skipped loop: etas over mus observe the init values *)
      List.iter
        (fun m ->
          match (inst f m).kind with
          | Mu { init; _ } -> Hashtbl.replace env m (lookup init)
          | _ -> ())
        lp.mus;
      (* values defined in the body stay undef *)
      List.iter
        (fun v -> Hashtbl.replace env v Value.VUndef)
        (List.concat_map (defined_values f) lp.body)
    end
  in
  exec_items f.fbody;
  { memory = mem; call_trace = List.rev !trace; counters }

(* Observable equivalence of two outcomes: same final memory and the same
   external calls in the same order with the same arguments. *)
let equivalent (a : outcome) (b : outcome) =
  Array.length a.memory = Array.length b.memory
  && Array.for_all2 Value.equal a.memory b.memory
  && List.length a.call_trace = List.length b.call_trace
  && List.for_all2
       (fun (n1, a1) (n2, a2) ->
         n1 = n2
         && List.length a1 = List.length a2
         && List.for_all2 Value.equal a1 a2)
       a.call_trace b.call_trace

(* Architectural cost model: what the speedup tables are computed from.
   A vector operation costs the same as a scalar one (the machine has
   4-wide SIMD); memory operations are slightly more expensive; calls are
   expensive.  Loop iteration overhead models the branch/induction cost a
   real CPU pays per iteration. *)
let cost (c : counters) =
  float_of_int c.scalar_ops
  +. float_of_int c.vector_ops
  +. (2.0 *. float_of_int (c.loads + c.vector_loads))
  +. (2.0 *. float_of_int (c.stores + c.vector_stores))
  +. (20.0 *. float_of_int c.calls)
  +. (1.0 *. float_of_int c.iterations)
