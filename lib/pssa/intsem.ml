(* Pinned integer semantics for [Ir.Tint] values.

   Every component that evaluates integer arithmetic — the PSSA
   interpreter, the CFG interpreter, the constant folder, and the native
   C backend — must agree bit-for-bit, or differential execution reports
   phantom miscompiles.  This module is the single place those semantics
   are written down; everything else calls it (or, for the C backend,
   transliterates it — see lib/backend/emit.ml, which cites the
   corresponding helper for each emitted C function).

   The model: [Tint] is a [Sys.int_size]-bit (63 on 64-bit hosts) two's
   complement integer.

   - [add]/[sub]/[mul] wrap modulo 2^63.  OCaml's native [int] already
     does exactly this; the C emitter must re-normalize after each
     64-bit operation (sign-extend from bit 62, [wrap] below).
   - [div] truncates toward zero; [rem] takes the sign of the dividend
     (C99 semantics; also OCaml's).  Division by zero traps *before*
     these are reached.  [min_int / -1] wraps to [min_int] — in C this
     is well-defined because the 63-bit operands never hit the one
     int64 UB case (INT64_MIN / -1).
   - [of_float] (the [Cast Tint] semantics) truncates toward zero; NaN
     and values outside the *64-bit* range convert to 0 (the x86-64
     "integer indefinite" 0x8000000000000000, which wraps to 0 in 63
     bits).  This pins what [int_of_float] happens to do on x86-64 as
     the portable, documented behaviour.
   - [to_float] (the [Cast Tfloat] semantics) is exact rounding of the
     63-bit integer to the nearest double, i.e. C's [(double)x].
   - There are no shift operators in [Ir.binop], so no shift-width
     semantics to pin. *)

let bits = Sys.int_size

(* Re-normalize a value that may have escaped the 63-bit range (only
   possible when mirroring these semantics in 64-bit arithmetic; on the
   OCaml side native ints cannot escape, so this is the identity). *)
let wrap (x : int) : int = x

let add a b = a + b
let sub a b = a - b
let mul a b = a * b

(* Callers check for a zero divisor (and trap) first. *)
let div a b = a / b
let rem a b = a mod b

let to_float = float_of_int

(* 2^63 as a float; doubles >= this bound (or < its negation) are out of
   64-bit range.  The comparisons below are exact: the bound itself is a
   representable double. *)
let two63 = Float.ldexp 1.0 63

let of_float (x : float) : int =
  if Float.is_nan x then 0
  else if x >= two63 || x < -.two63 then 0
  else
    (* in 64-bit range: Int64.of_float truncates toward zero, and
       Int64.to_int drops the top bit, wrapping into 63 bits — the same
       normalization the C backend applies after its (int64_t) cast *)
    Int64.to_int (Int64.of_float x)

(* Floating min/max with the OCaml [Float.min]/[Float.max] semantics the
   interpreters use for [Fmin]/[Fmax] (NOT C's fmin/fmax, which *drop*
   NaNs): a NaN argument is returned as-is (payload preserved), and when
   both arguments are zeros, [fmin] prefers -0. and [fmax] prefers +0.
   Kept here so the backend has one named spec to transliterate. *)
let fmin = Float.min
let fmax = Float.max
