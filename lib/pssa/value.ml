(* Runtime values for the interpreters.  Addresses are plain integers
   indexing a flat cell heap, which is what lets may-alias pointers
   actually alias at run time (the whole point of the paper). *)

type t =
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VVec of t array
  | VUndef

exception Trap of string

(* Loading or storing through an address that was never computed (the
   instruction producing it was predicated off, or a dead phi operand
   became undef).  Raised as its own exception — not a generic {!Trap} —
   so differential-testing oracles can classify "both interpreters
   trapped on an undef address at the same operation" as agreement
   instead of parsing trap messages.  [op] is ["load"] or ["store"]. *)
exception Undef_access of string

let undef_access op = raise (Undef_access op)

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

let to_int = function
  | VInt n -> n
  | VBool true -> 1
  | VBool false -> 0
  | v -> trap "expected int, got %s" (match v with
      | VFloat _ -> "float" | VVec _ -> "vector" | VUndef -> "undef" | _ -> "?")

let to_float = function
  | VFloat x -> x
  | v -> trap "expected float, got %s" (match v with
      | VInt _ -> "int" | VBool _ -> "bool" | VVec _ -> "vector"
      | VUndef -> "undef" | _ -> "?")

(* Undefined booleans read as false: a predicate literal that was never
   computed can only come from a context whose enclosing predicate is
   already false (see interp.ml), so the overall evaluation is
   unaffected. *)
let to_bool = function
  | VBool b -> b
  | VInt n -> n <> 0
  | VUndef -> false
  | _ -> trap "expected bool"

let is_undef = function VUndef -> true | _ -> false

let rec equal a b =
  match a, b with
  | VInt x, VInt y -> x = y
  | VFloat x, VFloat y ->
    (* bit-compare: interpreters are deterministic, NaN == NaN here *)
    Int64.bits_of_float x = Int64.bits_of_float y
  | VBool x, VBool y -> x = y
  | VVec x, VVec y ->
    Array.length x = Array.length y
    && Array.for_all2 (fun a b -> equal a b) x y
  | VUndef, VUndef -> true
  | _ -> false

let rec to_string = function
  | VInt n -> string_of_int n
  | VFloat x -> Printf.sprintf "%h" x
  | VBool b -> string_of_bool b
  | VVec a ->
    "<" ^ String.concat ", " (Array.to_list (Array.map to_string a)) ^ ">"
  | VUndef -> "undef"
