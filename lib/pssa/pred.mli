(** Predicates of predicated SSA: [p ::= true | v | !v | p & p | p "|" v]
    over boolean SSA values, kept in a normalized structural form and
    hash-consed: within one intern generation (see {!reset}) two
    structurally equal predicates are one physical value, so {!equal}
    answers by physical equality and the connectives and {!implies} are
    memoized on intern ids.

    Concurrency: intern and memo tables are per-domain ([Domain.DLS]);
    predicates must not cross domains (except {!tru}/{!fls}, which are
    shared constants). *)

type value_id = int

type t
(** An interned predicate.  Abstract: inspect with {!view}. *)

(** The shape of a predicate, one level deep.  [Pand]/[Por] children are
    themselves interned, >= 2 elements, sorted by {!compare_t}, with no
    nested conjunction/disjunction of the same kind. *)
type view =
  | Ptrue
  | Pfalse
  | Plit of { v : value_id; positive : bool }
  | Pand of t list
  | Por of t list

val view : t -> view

val id : t -> int
(** The intern id: unique per domain for the domain's lifetime (ids are
    not reused across {!reset} generations).  Ids depend on construction
    history — never use them for deterministic ordering or output. *)

val tru : t
val fls : t

val lit : ?positive:bool -> value_id -> t
(** Literal over a boolean SSA value. *)

val and_ : t -> t -> t
val and_list : t list -> t
val or_ : t -> t -> t
val or_list : t list -> t

val not_ : t -> t
(** Negation (De Morgan over the structure). *)

val equal : t -> t -> bool
(** Structural equality; physical equality on the fast path (complete
    within one intern generation). *)

val compare_t : t -> t -> int
(** Structural total order — stable across runs and generations; the
    order normal forms are sorted in.  Use this wherever the order is
    observable (output, golden counters). *)

val compare : t -> t -> int
(** Intern-id order: a fast arbitrary total order, consistent with
    {!equal} only within one generation and dependent on construction
    history.  For ephemeral intra-compile structures only. *)

val implies : t -> t -> bool
(** Sound, incomplete implication: [implies p q] true means p entails q.
    Complete for conjunctions of literals.  Memoized. *)

val literals : t -> value_id list
(** Boolean SSA values mentioned, sorted, unique.  Memoized. *)

val eval : (value_id -> bool) -> t -> bool

val rename : (value_id -> value_id) -> t -> t
(** Rename the underlying SSA values (re-normalizes). *)

val to_string : (value_id -> string) -> t -> string

val reset : unit -> unit
(** Start a fresh intern generation on the calling domain: drop the
    intern and memo tables (the id counter survives, so stale predicates
    stay harmless).  Called at the start of every compile so per-compile
    telemetry ([pred.hashcons_hits]/[pred.hashcons_misses]) and table
    footprints are deterministic regardless of what the domain ran
    before. *)
