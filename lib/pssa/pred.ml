(* Predicates of predicated SSA (Fig. 3 of the paper):

     p ::= true | v | v-bar | p1 /\ p2 | p1 \/ p2

   where v is an SSA value of boolean type.  Predicates are kept in a
   normalized structural form (flattened, sorted, de-duplicated and/or
   lists) so that structural equality coincides with the equality the
   framework needs, and so that [implies] can be decided syntactically for
   the predicates that structured control flow produces.

   Representation: hash-consed.  Every normalized predicate is interned
   in a per-domain table keyed by the shape of its node over the ids of
   its (already interned) children, so within one intern generation two
   structurally equal predicates are one physical value.  This buys:

   - [equal] that answers by physical equality on its fast path;
   - [and_]/[or_]/[not_]/[implies]/[literals] memoized on intern ids,
     which turns the quadratic re-normalization work the dependence
     analysis used to do into table lookups.

   Soundness never depends on canonicity: ids are unique per domain for
   the whole domain lifetime (the id counter survives {!reset}), so a
   memo entry can never be confused between generations, and every
   observable result (normal forms, orders, counters per compile) is the
   same as the plain structural implementation's.  Deterministic
   orderings must use {!compare_t} (structural); {!compare} (id compare)
   is only a fast arbitrary total order within one generation.

   Concurrency: the intern and memo tables are [Domain.DLS] per-domain
   state, so pool workers never share or contend.  Predicates must not
   cross domains (see CONTRIBUTING.md) — except {!tru}/{!fls}, which are
   module-level constants with reserved ids and therefore compare
   correctly everywhere. *)

module Tm = Fgv_support.Telemetry

type value_id = int

type t = { pid : int; node : node }

and node =
  | Ptrue
  | Pfalse
  | Plit of { v : value_id; positive : bool }
  | Pand of t list (* >= 2 elements, sorted, no nested Pand/Ptrue *)
  | Por of t list (* >= 2 elements, sorted, no nested Por/Pfalse *)

type view = node =
  | Ptrue
  | Pfalse
  | Plit of { v : value_id; positive : bool }
  | Pand of t list
  | Por of t list

let view p = p.node
let id p = p.pid

(* Reserved ids 0/1: shared across domains and generations. *)
let tru = { pid = 0; node = Ptrue }
let fls = { pid = 1; node = Pfalse }

(* ------------------------------------------------------ intern tables *)

(* A node's identity is its shape over the ids of its children.  A
   literal packs (v, positive) into one int. *)
type key = Klit of int | Kand of int list | Kor of int list

module Key = struct
  type t = key

  let equal a b =
    match a, b with
    | Klit a, Klit b -> a = b
    | Kand a, Kand b | Kor a, Kor b -> List.equal Int.equal a b
    | _ -> false

  (* fold the whole child list: the generic hash caps its traversal and
     would collide long conjunctions *)
  let hash = function
    | Klit v -> Hashtbl.hash (0, v)
    | Kand pids -> List.fold_left (fun h p -> (h * 31) + p) 17 pids
    | Kor pids -> List.fold_left (fun h p -> (h * 31) + p) 19 pids
end

module H = Hashtbl.Make (Key)

type state = {
  mutable next_pid : int;
  intern : t H.t;
  and_memo : (int * int, t) Hashtbl.t;
  or_memo : (int * int, t) Hashtbl.t;
  not_memo : (int, t) Hashtbl.t;
  implies_memo : (int * int, bool) Hashtbl.t;
  literals_memo : (int, value_id list) Hashtbl.t;
}

let fresh_state () =
  {
    next_pid = 2;
    intern = H.create 256;
    and_memo = Hashtbl.create 256;
    or_memo = Hashtbl.create 64;
    not_memo = Hashtbl.create 64;
    implies_memo = Hashtbl.create 256;
    literals_memo = Hashtbl.create 64;
  }

let state_key : state Domain.DLS.key = Domain.DLS.new_key fresh_state
let state () = Domain.DLS.get state_key

let reset () =
  let s = state () in
  H.reset s.intern;
  Hashtbl.reset s.and_memo;
  Hashtbl.reset s.or_memo;
  Hashtbl.reset s.not_memo;
  Hashtbl.reset s.implies_memo;
  Hashtbl.reset s.literals_memo
(* next_pid deliberately survives: ids stay unique across generations,
   so a stale predicate (built before the reset) can never alias a memo
   entry of a fresh one. *)

let key_of_node = function
  | Ptrue | Pfalse -> assert false (* tru/fls are never interned *)
  | Plit { v; positive } -> Klit ((v lsl 1) lor Bool.to_int positive)
  | Pand xs -> Kand (List.map (fun p -> p.pid) xs)
  | Por xs -> Kor (List.map (fun p -> p.pid) xs)

let intern node =
  match node with
  | Ptrue -> tru
  | Pfalse -> fls
  | _ -> (
    let s = state () in
    let k = key_of_node node in
    match H.find_opt s.intern k with
    | Some p ->
      Tm.incr "pred.hashcons_hits";
      p
    | None ->
      Tm.incr "pred.hashcons_misses";
      let p = { pid = s.next_pid; node } in
      s.next_pid <- s.next_pid + 1;
      H.add s.intern k p;
      p)

let lit ?(positive = true) v = intern (Plit { v; positive })

(* --------------------------------------------------------- comparison *)

(* Structural order, identical to the pre-hash-consing implementation:
   this is the order normal forms are sorted in and the order consumers
   may use for deterministic output.  Physical equality short-circuits
   the recursion. *)
let rec compare_t a b =
  if a == b then 0
  else
    match a.node, b.node with
    | Ptrue, Ptrue | Pfalse, Pfalse -> 0
    | Ptrue, _ -> -1
    | _, Ptrue -> 1
    | Pfalse, _ -> -1
    | _, Pfalse -> 1
    | Plit a, Plit b ->
      let c = compare a.v b.v in
      if c <> 0 then c else compare a.positive b.positive
    | Plit _, _ -> -1
    | _, Plit _ -> 1
    | Pand a, Pand b -> compare_list a b
    | Pand _, _ -> -1
    | _, Pand _ -> 1
    | Por a, Por b -> compare_list a b

and compare_list a b =
  match a, b with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: a, y :: b ->
    let c = compare_t x y in
    if c <> 0 then c else compare_list a b

(* Within one generation two structurally equal predicates are one
   physical value, so the fallback only pays for the (rare) comparison
   against a predicate interned before a {!reset}. *)
let rec equal a b =
  a == b
  ||
  match a.node, b.node with
  | Plit x, Plit y -> x.v = y.v && x.positive = y.positive
  | Pand xs, Pand ys | Por xs, Por ys -> List.equal equal xs ys
  | _ -> false

let compare a b = Stdlib.compare a.pid b.pid

(* ------------------------------------------------------ constructors *)

let norm_list xs = List.sort_uniq compare_t xs

(* Detect complementary literal pairs in a sorted conjunct/disjunct list
   (same-v literals are adjacent under [compare_t]). *)
let has_complement xs =
  let rec go = function
    | { node = Plit a; _ } :: ({ node = Plit b; _ } :: _ as rest) ->
      (a.v = b.v && a.positive <> b.positive) || go rest
    | _ :: rest -> go rest
    | [] -> false
  in
  go xs

let and_list ps =
  let flat =
    List.concat_map
      (fun p -> match p.node with Pand xs -> xs | Ptrue -> [] | _ -> [ p ])
      ps
  in
  if List.exists (fun p -> p == fls) flat then fls
  else
    match norm_list flat with
    | [] -> tru
    | [ p ] -> p
    | xs -> if has_complement xs then fls else intern (Pand xs)

let or_list ps =
  let flat =
    List.concat_map
      (fun p -> match p.node with Por xs -> xs | Pfalse -> [] | _ -> [ p ])
      ps
  in
  if List.exists (fun p -> p == tru) flat then tru
  else
    match norm_list flat with
    | [] -> fls
    | [ p ] -> p
    | xs -> if has_complement xs then tru else intern (Por xs)

let and_ a b =
  if a == b then a
  else if a == tru then b
  else if b == tru then a
  else if a == fls || b == fls then fls
  else
    let s = state () in
    let k = if a.pid <= b.pid then (a.pid, b.pid) else (b.pid, a.pid) in
    match Hashtbl.find_opt s.and_memo k with
    | Some r -> r
    | None ->
      let r = and_list [ a; b ] in
      Hashtbl.add s.and_memo k r;
      r

let or_ a b =
  if a == b then a
  else if a == fls then b
  else if b == fls then a
  else if a == tru || b == tru then tru
  else
    let s = state () in
    let k = if a.pid <= b.pid then (a.pid, b.pid) else (b.pid, a.pid) in
    match Hashtbl.find_opt s.or_memo k with
    | Some r -> r
    | None ->
      let r = or_list [ a; b ] in
      Hashtbl.add s.or_memo k r;
      r

let rec not_ p =
  match p.node with
  | Ptrue -> fls
  | Pfalse -> tru
  | _ -> (
    let s = state () in
    match Hashtbl.find_opt s.not_memo p.pid with
    | Some r -> r
    | None ->
      let r =
        match p.node with
        | Ptrue | Pfalse -> assert false
        | Plit { v; positive } -> intern (Plit { v; positive = not positive })
        | Pand xs -> or_list (List.map not_ xs)
        | Por xs -> and_list (List.map not_ xs)
      in
      Hashtbl.add s.not_memo p.pid r;
      r)

(* ---------------------------------------------------------- analyses *)

(* Sound, incomplete implication test.  Complete for the conjunctions of
   literals that structured control flow produces, which is what the
   framework relies on (cf. the pred(j).implies(pred(i)) test in Fig. 6). *)
let rec implies p q =
  if p == q then true
  else if p == fls then true
  else if q == tru then true
  else if p == tru then false
  else if q == fls then false
  else
    let s = state () in
    let k = (p.pid, q.pid) in
    match Hashtbl.find_opt s.implies_memo k with
    | Some r -> r
    | None ->
      let r = compute_implies p q in
      Hashtbl.add s.implies_memo k r;
      r

and compute_implies p q =
  if equal p q then true
  else
    match p.node, q.node with
    | Por xs, _ -> List.for_all (fun x -> implies x q) xs
    | _, Pand ys -> List.for_all (fun y -> implies p y) ys
    | Pand xs, Por ys ->
      List.exists (fun x -> equal x q) xs
      || List.exists (fun y -> implies p y) ys
    | Pand xs, _ -> List.exists (fun x -> equal x q) xs
    | Plit _, Por ys -> List.exists (fun y -> implies p y) ys
    | _ -> false

(* All boolean SSA values mentioned by the predicate.  These are the
   "operands" of a control-predicate dependence condition. *)
let rec literals p =
  match p.node with
  | Ptrue | Pfalse -> []
  | Plit { v; _ } -> [ v ]
  | Pand xs | Por xs -> (
    let s = state () in
    match Hashtbl.find_opt s.literals_memo p.pid with
    | Some r -> r
    | None ->
      let r = List.sort_uniq Stdlib.compare (List.concat_map literals xs) in
      Hashtbl.add s.literals_memo p.pid r;
      r)

(* Evaluate under an environment giving the runtime boolean of each value. *)
let rec eval lookup p =
  match p.node with
  | Ptrue -> true
  | Pfalse -> false
  | Plit { v; positive } -> if positive then lookup v else not (lookup v)
  | Pand xs -> List.for_all (eval lookup) xs
  | Por xs -> List.exists (eval lookup) xs

(* Substitute values for values (used when cloning versioned code). *)
let rec rename f p =
  match p.node with
  | Ptrue | Pfalse -> p
  | Plit { v; positive } -> lit ~positive (f v)
  | Pand xs -> and_list (List.map (rename f) xs)
  | Por xs -> or_list (List.map (rename f) xs)

let rec to_string value_name p =
  match p.node with
  | Ptrue -> "true"
  | Pfalse -> "false"
  | Plit { v; positive } ->
    if positive then value_name v else "!" ^ value_name v
  | Pand xs ->
    "(" ^ String.concat " & " (List.map (to_string value_name) xs) ^ ")"
  | Por xs ->
    "(" ^ String.concat " | " (List.map (to_string value_name) xs) ^ ")"
