(* Predicated SSA IR (Fig. 3 of the paper).

   A function is a flat list of items (instructions or loops); every item
   carries an execution predicate.  Loops are explicit: a loop has a guard
   predicate, a list of mu nodes (loop-carried values), a body (itself a
   list of items) and a continue predicate evaluated at the end of every
   iteration (do-while semantics).  Values defined inside a loop are read
   after it through eta nodes that denote the value at loop exit.

   Instructions live in a per-function arena keyed by integer ids; items
   reference them by id, which makes cloning, predication updates, and the
   list surgery performed by versioning materialization cheap and local. *)

type value_id = int
type loop_id = int

(* ---------------------------------------------------------------- types *)

type ty =
  | Tint (* also used for addresses *)
  | Tfloat
  | Tbool
  | Tvec of ty * int (* element type, lane count *)
  | Tvoid

let rec string_of_ty = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tbool -> "bool"
  | Tvec (t, n) -> Printf.sprintf "<%d x %s>" n (string_of_ty t)
  | Tvoid -> "void"

let scalar_of_ty = function Tvec (t, _) -> t | t -> t
let lanes_of_ty = function Tvec (_, n) -> n | _ -> 1

(* ------------------------------------------------------------ operators *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | Fadd | Fsub | Fmul | Fdiv
  | Fmin | Fmax
  | Band | Bor (* boolean *)

type cmpop = Eq | Ne | Lt | Le | Gt | Ge | Flt | Fle | Fgt | Fge | Feq | Fne

let string_of_binop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
  | Fmin -> "fmin" | Fmax -> "fmax" | Band -> "and" | Bor -> "or"

let string_of_cmpop = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
  | Flt -> "flt" | Fle -> "fle" | Fgt -> "fgt" | Fge -> "fge"
  | Feq -> "feq" | Fne -> "fne"

type const = Cint of int | Cfloat of float | Cbool of bool | Cundef of ty

(* Side-effect summary of a call.  [Pure] calls are pure functions of
   their arguments; [Readonly] calls may read arbitrary memory; [Impure]
   calls may read and write arbitrary memory (the default for unknown
   functions, matching the paper's running example). *)
type effect_kind = Pure | Readonly | Impure

(* -------------------------------------------------------- instructions *)

type inst_kind =
  | Const of const
  | Arg of int (* parameter index *)
  | Binop of binop * value_id * value_id
  | Cmp of cmpop * value_id * value_id
  | Cast of ty * value_id (* target scalar type *)
  | Select of { cond : value_id; if_true : value_id; if_false : value_id }
  | Phi of (Pred.t * value_id) list (* gated by operand predicates *)
  | Mu of { init : value_id; recur : value_id; loop : loop_id }
  | Eta of { loop : loop_id; value : value_id } (* value at loop exit *)
  | Load of { addr : value_id } (* width given by the result type *)
  | Store of { addr : value_id; value : value_id }
  | Call of { callee : string; args : value_id list; effect : effect_kind }
  | Splat of value_id (* scalar -> vector broadcast *)
  | Vecbuild of value_id list (* gather scalars into a vector *)
  | Extract of value_id * int (* lane extract *)

type inst = {
  id : value_id;
  mutable kind : inst_kind;
  mutable ty : ty;
  mutable ipred : Pred.t; (* execution predicate *)
  mutable name : string; (* printing hint *)
}

(* ----------------------------------------------------- items and loops *)

type loop = {
  lid : loop_id;
  mutable lpred : Pred.t; (* guard: does the loop execute at all *)
  mutable mus : value_id list;
  mutable body : item list;
  mutable cont : Pred.t; (* continue predicate, end of each iteration *)
}

and item = I of value_id | L of loop_id

type func = {
  fname : string;
  params : (string * ty) list;
  mutable fbody : item list;
  arena : (value_id, inst) Hashtbl.t;
  loop_arena : (loop_id, loop) Hashtbl.t;
  mutable next_value : int;
  mutable next_loop : int;
  (* Scoped-noalias analogue (paper SIV-B): pairs of memory instructions
     established disjoint when the given predicate holds. *)
  mutable indep_scopes : (value_id * value_id * Pred.t) list;
  (* Indices of pointer parameters declared [restrict]: each points into
     a distinct allocation, so accesses through different restrict
     pointers never alias. *)
  mutable restrict_args : int list;
}

(* Dependence-graph node: an instruction or a whole loop (Fig. 6). *)
type node = NI of value_id | NL of loop_id

let node_of_item = function I v -> NI v | L l -> NL l

(* --------------------------------------------------------- construction *)

let create_func ~name ~params =
  {
    fname = name;
    params;
    fbody = [];
    arena = Hashtbl.create 64;
    loop_arena = Hashtbl.create 8;
    next_value = 0;
    next_loop = 0;
    indep_scopes = [];
    restrict_args = [];
  }

let inst f v =
  match Hashtbl.find_opt f.arena v with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Ir.inst: unknown value v%d" v)

let loop f l =
  match Hashtbl.find_opt f.loop_arena l with
  | Some lp -> lp
  | None -> invalid_arg (Printf.sprintf "Ir.loop: unknown loop L%d" l)

(* Create an instruction in the arena; the caller places it in a region. *)
let new_inst ?(name = "") f ~kind ~ty ~pred =
  let id = f.next_value in
  f.next_value <- id + 1;
  let i = { id; kind; ty; ipred = pred; name } in
  Hashtbl.replace f.arena id i;
  i

let new_loop f ~pred =
  let lid = f.next_loop in
  f.next_loop <- lid + 1;
  let lp = { lid; lpred = pred; mus = []; body = []; cont = Pred.fls } in
  Hashtbl.replace f.loop_arena lid lp;
  lp

let value_name f v =
  match Hashtbl.find_opt f.arena v with
  | Some i when i.name <> "" -> Printf.sprintf "%%%s.%d" i.name v
  | Some _ -> Printf.sprintf "%%v%d" v
  | None -> Printf.sprintf "%%DEAD.%d" v

(* ------------------------------------------------------------- operands *)

(* Data operands: SSA values read to compute the instruction, not
   including the values referenced by its execution predicate. *)
let data_operands kind =
  match kind with
  | Const _ | Arg _ -> []
  | Binop (_, a, b) | Cmp (_, a, b) -> [ a; b ]
  | Cast (_, a) | Splat a | Extract (a, _) -> [ a ]
  | Select { cond; if_true; if_false } -> [ cond; if_true; if_false ]
  | Phi ops ->
    List.concat_map (fun (p, v) -> v :: Pred.literals p) ops
  | Mu { init; recur; _ } -> [ init; recur ]
  | Eta { value; _ } -> [ value ]
  | Load { addr } -> [ addr ]
  | Store { addr; value } -> [ addr; value ]
  | Call { args; _ } -> args
  | Vecbuild vs -> vs

(* All values the instruction depends on unconditionally in order to be
   evaluated, including its execution predicate's literals. *)
let all_operands i =
  List.sort_uniq compare (data_operands i.kind @ Pred.literals i.ipred)

let may_write_inst i =
  match i.kind with
  | Store _ -> true
  | Call { effect = Impure; _ } -> true
  | _ -> false

let may_read_inst i =
  match i.kind with
  | Load _ -> true
  | Call { effect = Readonly | Impure; _ } -> true
  | _ -> false

let is_memory_inst i = may_write_inst i || may_read_inst i

(* All memory instructions inside an item (recursively for loops).
   This is what Fig. 6 calls [mem_instructions] of a loop. *)
let rec memory_insts f item =
  match item with
  | I v -> if is_memory_inst (inst f v) then [ v ] else []
  | L lid ->
    let lp = loop f lid in
    List.concat_map (memory_insts f) lp.body

let node_may_write f = function
  | NI v -> may_write_inst (inst f v)
  | NL lid ->
    List.exists
      (fun v -> may_write_inst (inst f v))
      (memory_insts f (L lid))

(* ---------------------------------------------------------- renumbering *)

(* Replace every use of [old_v] with [new_v] inside an instruction kind. *)
let rename_kind subst kind =
  let s v = subst v in
  match kind with
  | Const _ | Arg _ -> kind
  | Binop (op, a, b) -> Binop (op, s a, s b)
  | Cmp (op, a, b) -> Cmp (op, s a, s b)
  | Cast (t, a) -> Cast (t, s a)
  | Select { cond; if_true; if_false } ->
    Select { cond = s cond; if_true = s if_true; if_false = s if_false }
  | Phi ops -> Phi (List.map (fun (p, v) -> (Pred.rename s p, s v)) ops)
  | Mu { init; recur; loop } -> Mu { init = s init; recur = s recur; loop }
  | Eta { loop; value } -> Eta { loop; value = s value }
  | Load { addr } -> Load { addr = s addr }
  | Store { addr; value } -> Store { addr = s addr; value = s value }
  | Call { callee; args; effect } ->
    Call { callee; args = List.map s args; effect }
  | Splat a -> Splat (s a)
  | Vecbuild vs -> Vecbuild (List.map s vs)
  | Extract (a, n) -> Extract (s a, n)

(* ----------------------------------------------------- region utilities *)

type region = Rtop | Rloop of loop_id

let region_items f = function
  | Rtop -> f.fbody
  | Rloop lid -> (loop f lid).body

let set_region_items f region items =
  match region with
  | Rtop -> f.fbody <- items
  | Rloop lid -> (loop f lid).body <- items

let item_eq a b =
  match a, b with
  | I x, I y -> x = y
  | L x, L y -> x = y
  | _ -> false

(* Map each node to the region that directly contains it, and each mu to
   its loop's *parent* region (mus belong to the loop header). *)
let parent_regions f =
  let tbl : (node, region) Hashtbl.t = Hashtbl.create 64 in
  let rec walk region items =
    List.iter
      (fun item ->
        Hashtbl.replace tbl (node_of_item item) region;
        match item with
        | I _ -> ()
        | L lid ->
          let lp = loop f lid in
          List.iter (fun m -> Hashtbl.replace tbl (NI m) (Rloop lid)) lp.mus;
          walk (Rloop lid) lp.body)
      items
  in
  walk Rtop f.fbody;
  tbl

(* Chain of regions from Rtop down to the given region. *)
let region_chain f region =
  let parents = parent_regions f in
  let rec up acc r =
    match r with
    | Rtop -> Rtop :: acc
    | Rloop lid ->
      let parent =
        match Hashtbl.find_opt parents (NL lid) with
        | Some p -> p
        | None -> Rtop
      in
      up (r :: acc) parent
  in
  up [] region

(* --------------------------------------------------------- program order *)

(* Assign every node (and every mu) a position consistent with program
   order: mus first, then body items in sequence; a loop's position is
   where it starts.  Used for the termination argument of plan inference
   and by the verifier. *)
let compute_order f =
  let tbl : (node, int) Hashtbl.t = Hashtbl.create 64 in
  let counter = ref 0 in
  let next () =
    let c = !counter in
    counter := c + 1;
    c
  in
  let rec walk items =
    List.iter
      (fun item ->
        match item with
        | I v -> Hashtbl.replace tbl (NI v) (next ())
        | L lid ->
          let lp = loop f lid in
          Hashtbl.replace tbl (NL lid) (next ());
          List.iter (fun m -> Hashtbl.replace tbl (NI m) (next ())) lp.mus;
          walk lp.body)
      items
  in
  walk f.fbody;
  fun node ->
    match Hashtbl.find_opt tbl node with
    | Some n -> n
    | None -> invalid_arg "Ir.compute_order: node not in function body"

(* ----------------------------------------------------------------- users *)

(* Map from value to the instructions that use it as a data operand or in
   their execution predicate.  Recomputed on demand. *)
let compute_users f =
  let tbl : (value_id, value_id list) Hashtbl.t = Hashtbl.create 64 in
  let add user v =
    let cur = Option.value ~default:[] (Hashtbl.find_opt tbl v) in
    Hashtbl.replace tbl v (user :: cur)
  in
  let visit_inst i = List.iter (add i.id) (all_operands i) in
  Hashtbl.iter (fun _ i -> visit_inst i) f.arena;
  fun v -> Option.value ~default:[] (Hashtbl.find_opt tbl v)

(* Direct use test: does instruction [i] read value [j]? *)
let uses f i j = List.mem j (all_operands (inst f i))

(* --------------------------------------------------------------- cloning *)

(* Deep-clone an item.  Internal definitions get fresh ids; references to
   values defined outside the cloned item are preserved.  Returns the new
   item and extends [remap] with old-id -> new-id for every cloned value
   (so callers can redirect uses / build versioning phis). *)
let clone_item f remap item =
  let loop_remap : (loop_id, loop_id) Hashtbl.t = Hashtbl.create 8 in
  (* pass 1: allocate fresh value ids for all internal definitions and
     fresh loop ids for all internal loops *)
  let rec collect item =
    match item with
    | I v ->
      let fresh = f.next_value in
      f.next_value <- fresh + 1;
      Hashtbl.replace remap v fresh
    | L lid ->
      let lp = loop f lid in
      let nl = new_loop f ~pred:Pred.tru in
      Hashtbl.replace loop_remap lid nl.lid;
      List.iter
        (fun m ->
          let fresh = f.next_value in
          f.next_value <- fresh + 1;
          Hashtbl.replace remap m fresh)
        lp.mus;
      List.iter collect lp.body
  in
  collect item;
  let subst v = Option.value ~default:v (Hashtbl.find_opt remap v) in
  let subst_loop l = Option.value ~default:l (Hashtbl.find_opt loop_remap l) in
  let clone_inst v =
    let i = inst f v in
    let id = subst v in
    let kind =
      match rename_kind subst i.kind with
      | Mu mu -> Mu { mu with loop = subst_loop mu.loop }
      | Eta e -> Eta { e with loop = subst_loop e.loop }
      | k -> k
    in
    let clone =
      { id; kind; ty = i.ty; ipred = Pred.rename subst i.ipred; name = i.name }
    in
    Hashtbl.replace f.arena id clone;
    id
  in
  (* pass 2: build the clones *)
  let rec build item =
    match item with
    | I v -> I (clone_inst v)
    | L lid ->
      let lp = loop f lid in
      let nl = loop f (subst_loop lid) in
      nl.lpred <- Pred.rename subst lp.lpred;
      nl.mus <- List.map clone_inst lp.mus;
      nl.body <- List.map build lp.body;
      nl.cont <- Pred.rename subst lp.cont;
      L nl.lid
  in
  let result = build item in
  (* carry scoped-independence facts over to the clones: the fact "x and
     y are disjoint when p holds" is about addresses, which the clones
     share (external values are not renamed; internal ones are renamed
     consistently) *)
  let transferred =
    List.filter_map
      (fun (x, y, p) ->
        match Hashtbl.find_opt remap x, Hashtbl.find_opt remap y with
        | Some x', Some y' -> Some (x', y', Pred.rename subst p)
        | _ -> None)
      f.indep_scopes
  in
  f.indep_scopes <- transferred @ f.indep_scopes;
  result

(* Loop-id remapping produced by the last [clone_item] call is recovered
   by comparing mu kinds; expose a helper instead: replace loop references
   in an instruction (used for etas cloned separately). *)
let retarget_eta f v ~new_loop =
  let i = inst f v in
  match i.kind with
  | Eta e -> i.kind <- Eta { e with loop = new_loop }
  | _ -> invalid_arg "Ir.retarget_eta: not an eta"

(* ------------------------------------------------------ use replacement *)

(* Replace uses of [old_v] by [new_v] in the given instruction only. *)
let replace_uses_in_inst f ~user ~old_v ~new_v =
  let i = inst f user in
  let subst v = if v = old_v then new_v else v in
  i.kind <- rename_kind subst i.kind;
  i.ipred <- Pred.rename subst i.ipred

(* Replace uses of [old_v] by [new_v] everywhere, including loop guard /
   continue predicates. *)
let replace_all_uses f ~old_v ~new_v =
  let subst v = if v = old_v then new_v else v in
  Hashtbl.iter
    (fun _ i ->
      if i.id <> new_v then begin
        i.kind <- rename_kind subst i.kind;
        i.ipred <- Pred.rename subst i.ipred
      end)
    f.arena;
  Hashtbl.iter
    (fun _ lp ->
      lp.lpred <- Pred.rename subst lp.lpred;
      lp.cont <- Pred.rename subst lp.cont)
    f.loop_arena

(* Batched form of [replace_all_uses]: apply a whole substitution map in
   a single arena walk.  Callers like GVN accumulate hundreds of
   replacements, and one full walk per replacement is quadratic in the
   function size.  The map must be flat (no value in its domain appears
   in its range).  Predicates are rebuilt only when one of their
   literals is actually substituted. *)
let replace_uses_map f (map : (value_id, value_id) Hashtbl.t) =
  if Hashtbl.length map > 0 then begin
    let subst v = Option.value ~default:v (Hashtbl.find_opt map v) in
    let rename_pred p =
      if List.exists (Hashtbl.mem map) (Pred.literals p) then
        Pred.rename subst p
      else p
    in
    Hashtbl.iter
      (fun _ i ->
        i.kind <- rename_kind subst i.kind;
        i.ipred <- rename_pred i.ipred)
      f.arena;
    Hashtbl.iter
      (fun _ lp ->
        lp.lpred <- rename_pred lp.lpred;
        lp.cont <- rename_pred lp.cont)
      f.loop_arena
  end

(* ----------------------------------------------------- reachability set *)

(* All value ids defined by an item, recursively. *)
let rec defined_values f item =
  match item with
  | I v -> [ v ]
  | L lid ->
    let lp = loop f lid in
    lp.mus @ List.concat_map (defined_values f) lp.body

(* ---------------------------------------------------------------- misc *)

let iter_insts f g = Hashtbl.iter (fun _ i -> g i) f.arena

(* Static instruction count of the live body (code-size metric). *)
let static_size f =
  let rec count items =
    List.fold_left
      (fun acc item ->
        match item with
        | I _ -> acc + 1
        | L lid ->
          let lp = loop f lid in
          acc + 1 + List.length lp.mus + count lp.body)
      0 items
  in
  count f.fbody

(* Record a scoped independence fact (paper SIV-B). *)
let add_indep_scope f a b p = f.indep_scopes <- (a, b, p) :: f.indep_scopes

(* Effective predicate of every placed value: its own predicate
   conjoined with the guards of all enclosing loops.  This is the
   condition under which the instruction actually executes, seen from
   the top of the function. *)
let effective_preds f =
  let tbl : (value_id, Pred.t) Hashtbl.t = Hashtbl.create 64 in
  let rec walk ctx items =
    List.iter
      (fun item ->
        match item with
        | I v -> Hashtbl.replace tbl v (Pred.and_ ctx (inst f v).ipred)
        | L lid ->
          let lp = loop f lid in
          let ctx' = Pred.and_ ctx lp.lpred in
          List.iter (fun m -> Hashtbl.replace tbl m ctx') lp.mus;
          walk ctx' lp.body)
      items
  in
  walk Pred.tru f.fbody;
  fun v ->
    match Hashtbl.find_opt tbl v with
    | Some p -> p
    | None -> (inst f v).ipred

(* Is the pair (a, b) covered by a recorded independence fact?  The
   recorded disjointness holds whenever p holds; a dependence can only
   occur when both instructions execute, so it suffices that the
   conjunction of their (effective) predicates implies p. *)
let in_indep_scope ?eff f a b =
  let eff = match eff with Some e -> e | None -> fun v -> (inst f v).ipred in
  List.exists
    (fun (x, y, p) ->
      ((x = a && y = b) || (x = b && y = a))
      && Pred.implies (Pred.and_ (eff a) (eff b)) p)
    f.indep_scopes
