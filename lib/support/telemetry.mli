(** Framework telemetry: named counters, wall-clock timers, and
    per-phase scopes, with a hand-rolled JSON emitter.

    The registry is a process-wide singleton: passes and the versioning
    framework bump counters unconditionally (increments are a hashtable
    update, cheap next to any analysis they instrument), and entry points
    decide whether to report.  Sessions that need isolated numbers (the
    benchmark harness, golden tests) call {!reset} between runs, or use
    {!capture} to measure the counter delta of one thunk. *)

(** Minimal JSON document tree, sufficient for the telemetry reports and
    the benchmark output. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Assoc of (string * json) list

val json_to_string : ?minify:bool -> json -> string
(** Serialize with proper string escaping.  [minify:false] (default)
    pretty-prints with two-space indentation; floats are emitted in a
    form every JSON parser accepts (no [nan]/[inf], no bare [.5]). *)

(** {1 Counters} *)

val incr : ?by:int -> string -> unit
(** Add [by] (default 1) to the named counter, creating it at zero.  The
    name is qualified by the current {!with_scope} stack. *)

val set_max : string -> int -> unit
(** Raise the named counter to [v] if it is currently lower (running
    maxima, e.g. recursion depths). *)

val get : string -> int
(** Current value (0 if never bumped).  The name is taken as already
    fully qualified; scopes do not apply. *)

val counters : unit -> (string * int) list
(** All counters with their fully qualified names, sorted by name. *)

(** {1 Timers} *)

val time : string -> (unit -> 'a) -> 'a
(** Run the thunk, accumulating its wall-clock duration (and an
    invocation count) into the named timer.  Re-raises exceptions but
    still records the elapsed time.  Scope-qualified like {!incr}. *)

val timer_total : string -> float
(** Accumulated seconds (0. if never run); fully qualified name. *)

val timers : unit -> (string * float * int) list
(** All timers as (name, total seconds, invocations), sorted by name. *)

(** {1 Scopes} *)

val with_scope : string -> (unit -> 'a) -> 'a
(** Qualify every counter and timer recorded inside the thunk with
    ["scope."]; scopes nest ("a.b.counter").  The scope's own wall-clock
    time accumulates into a timer named after the scope. *)

(** {1 Snapshots} *)

val reset : unit -> unit
(** Drop every counter, timer, and open-scope qualifier: the next
    session starts from an empty registry. *)

val snapshot : unit -> json
(** The whole registry as [{"counters": {...}, "timers": {...}}], keys
    sorted; timers as [{"total_s": float, "count": int}]. *)

val capture : (unit -> 'a) -> 'a * (string * int) list
(** Run the thunk and return the counter *delta* it caused (counters
    whose value changed, sorted by name).  Does not reset the registry;
    nesting captures is fine. *)

val report : unit -> string
(** Human-readable table of counters and timers (for [--stats]). *)
