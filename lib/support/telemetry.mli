(** Framework telemetry: named counters, wall-clock timers, and
    per-phase scopes.

    The registry is a per-domain singleton: passes and the versioning
    framework bump counters unconditionally (increments are a hashtable
    update, cheap next to any analysis they instrument), and entry points
    decide whether to report.  Sessions that need isolated numbers (the
    benchmark harness, golden tests) call {!reset} between runs, or use
    {!capture} to measure the counter delta of one thunk.

    Concurrency contract: every recording function touches only the
    calling domain's shard, so no operation here ever takes a lock and
    parallel tasks never contend.  A single-domain program behaves
    exactly as if the registry were process-global.  {!Pool} workers
    accumulate into their own shards and the pool folds them into the
    spawning domain's registry when the workers join ({!merge_joined}:
    counters summed, timer totals maxed across workers, timer counts
    summed), so a {!capture} wrapped around a [Pool.map] still observes
    every counter the tasks bumped.  For per-task attribution (e.g. the
    fuzz campaign's deterministic replay of a parallel prefix), wrap the
    task body in {!isolated} and re-apply the returned shards in any
    order you like with {!merge_shard}. *)

(** Deprecated alias for {!Json.t}, re-exported with constructors so
    existing [Telemetry.Assoc]-style call sites keep compiling.  New
    code should use {!Json} directly. *)
type json = Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Assoc of (string * json) list

val json_to_string : ?minify:bool -> json -> string
(** Deprecated alias for {!Json.to_string}. *)

(** {1 Counters} *)

val incr : ?by:int -> string -> unit
(** Add [by] (default 1) to the named counter, creating it at zero.  The
    name is qualified by the current {!with_scope} stack. *)

val set_max : string -> int -> unit
(** Raise the named counter to [v] if it is currently lower (running
    maxima, e.g. recursion depths).  The counter's base name must start
    with ["max_"]: shard merges combine such counters by maximum rather
    than by sum, so parallel runs report the same value as sequential
    ones. *)

val get : string -> int
(** Current value (0 if never bumped).  The name is taken as already
    fully qualified; scopes do not apply. *)

val counters : unit -> (string * int) list
(** All counters with their fully qualified names, sorted by name. *)

(** {1 Timers} *)

val time : string -> (unit -> 'a) -> 'a
(** Run the thunk, accumulating its wall-clock duration (and an
    invocation count) into the named timer.  Re-raises exceptions but
    still records the elapsed time.  Scope-qualified like {!incr}. *)

val timer_total : string -> float
(** Accumulated seconds (0. if never run); fully qualified name. *)

val timers : unit -> (string * float * int) list
(** All timers as (name, total seconds, invocations), sorted by name. *)

(** {1 Scopes} *)

val with_scope : string -> (unit -> 'a) -> 'a
(** Qualify every counter and timer recorded inside the thunk with
    ["scope."]; scopes nest ("a.b.counter").  The scope's own wall-clock
    time accumulates into a timer named after the scope. *)

(** {1 Snapshots} *)

val reset : unit -> unit
(** Drop every counter, timer, and open-scope qualifier: the next
    session starts from an empty registry. *)

val snapshot : unit -> json
(** The whole registry as [{"counters": {...}, "timers": {...}}], keys
    sorted; timers as [{"total_s": float, "count": int, "histogram":
    {...}}] — the histogram member is {!Histogram.to_json} of every
    duration the timer recorded, so [--stats=json] consumers get
    latency distributions for each [*.time] key without extra
    instrumentation. *)

val capture : (unit -> 'a) -> 'a * (string * int) list
(** Run the thunk and return the counter *delta* it caused (counters
    whose value changed, sorted by name).  Does not reset the registry;
    nesting captures is fine. *)

(** {1 Shards}

    A shard is an immutable snapshot of one registry — what one task or
    one pool worker recorded.  Shards are plain data and may safely
    cross domains. *)

type shard

val empty_shard : shard

val shard_is_empty : shard -> bool

val shard_counters : shard -> (string * int) list
(** The shard's counters, sorted by fully qualified name. *)

val shard_filter_counters : (string -> bool) -> shard -> shard
(** The same shard with only the counters [keep] accepts (timers are
    untouched).  The incremental query engine strips its own
    [incremental.*] bookkeeping from memoized shards with this, so a
    memo-hit replay re-emits exactly the analysis work and never
    double-counts the engine's asks. *)

val shard_timers : shard -> (string * float * int) list
(** The shard's timers as (name, total seconds, invocations), sorted
    by fully qualified name. *)

val shard_timer_histograms : shard -> (string * Histogram.t) list
(** The per-timer latency histograms the shard captured, sorted by
    name.  The histograms are owned by the shard (copies taken when it
    was snapshotted) — callers may read or merge them freely; the
    bench harness uses this to attach per-row time distributions. *)

val shard_of_current : unit -> shard
(** Snapshot the calling domain's registry (without clearing it). *)

val isolated : (unit -> 'a) -> 'a * shard
(** Run the thunk against a fresh, empty registry and return everything
    it recorded as a shard; the calling domain's registry is untouched
    and restored afterwards (also on exceptions, in which case the
    shard is discarded and the exception re-raised). *)

val merge_shard : shard -> unit
(** Fold one shard into the calling domain's registry: counters summed
    (["max_"]-based counters combined by maximum), timer totals and
    counts summed, timer histograms merged ({!Histogram.merge_into}) —
    i.e. as if the shard's work had been recorded here sequentially.
    Use this to replay {!isolated} task shards in a deterministic
    order. *)

val merge_joined : shard list -> unit
(** Fold the shards of a parallel join into the calling domain's
    registry: counters summed (["max_"]-based counters combined by
    maximum); for each timer, the *maximum* total
    across the shards (the critical path of the slowest worker) is
    added once, while invocation counts sum and histograms merge
    across all workers (every sample is one real invocation, so the
    distribution aggregates even though the total does not).
    {!Pool.map} calls this
    with its workers' shards, so timer totals under [--jobs N]
    approximate wall-clock rather than aggregate CPU time. *)

val report : unit -> string
(** Human-readable table of counters and timers (for [--stats]). *)
