(** Decision-level observability for the versioning pipeline: (1)
    hierarchical wall-clock {b spans} exported as Chrome trace-event
    JSON (loadable in Perfetto / [chrome://tracing]), and (2) a typed
    {b optimization-remark} stream — which dependence edges the min-cut
    chose, which run-time checks were emitted, when plan inference
    recursed into a secondary plan, which conditions were eliminated /
    coalesced / promoted, what each pass did — anchored to functions,
    loops, and instructions.

    Both streams are off by default and cost one atomic load per
    instrumentation site when disabled, so the compiler is instrumented
    unconditionally and entry points opt in ([fgvc --trace/--remarks],
    [bench --trace]).

    Concurrency contract (same shape as {!Telemetry}): recording writes
    only the calling domain's buffer (a [Domain.DLS] shard), never a
    lock.  {!Pool.map} captures each {e task}'s events with {!isolated}
    and replays the shards in {e input index order} at the join, so the
    remark stream is byte-identical at any [--jobs] count; span
    timestamps are wall-clock and therefore not deterministic, but their
    per-domain nesting always is. *)

(** {1 Enablement} *)

val set_spans : bool -> unit
val set_remarks : bool -> unit
val spans_on : unit -> bool
val remarks_on : unit -> bool

val active : unit -> bool
(** Either stream enabled — gate for per-task capture in {!Pool}. *)

val remarks_recording : unit -> bool
(** Remarks are being recorded {e on this domain}: either the global
    [set_remarks] flag is on, or a {!collect_remarks} is in progress
    here.  Instrumentation sites that do nontrivial work to build a
    remark should gate on this, not on {!remarks_on}. *)

(** {1 Spans} *)

val with_span :
  ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span (begin/end events on the calling
    domain's timeline).  [cat] groups spans in the viewer (default
    ["fgv"]); [args] attach attributes shown on click.  Spans nest;
    exceptions still close the span.  No-op when spans are disabled. *)

(** {1 Remarks} *)

(** Where a decision happened: the function, optionally the loop
    (region) and the anchor instruction's printed name. *)
type anchor = {
  a_func : string;
  a_loop : int option;
  a_value : string option;
}

val anchor : ?loop:int -> ?value:string -> string -> anchor

(** The remark taxonomy (DESIGN §11).  Every variant is a decision the
    paper's framework takes, not a counter: counters stay in
    {!Telemetry}. *)
type remark =
  | Versioned of { nodes : int; conds : int; phis : int }
      (** a plan was materialized: [nodes] cloned under [conds]
          run-time conditions, joined by [phis] versioning phis *)
  | Cut_found of { edges : int; capacity : int }
      (** the min-cut severed [edges] conditional dependence edges of
          total capacity [capacity] (Fig. 8/9) *)
  | Cut_infeasible of { flow : int }
      (** separating S from T would cut an unconditional dependence *)
  | Check_emitted of { atoms : int; cloned : int }
      (** a run-time check of [atoms] condition atoms was emitted,
          cloning [cloned] instructions of operand chain *)
  | Secondary_plan of { depth : int; plans : int }
      (** plan inference recursed (Fig. 13): [plans] plans in the tree,
          nested [depth] deep *)
  | Plan_infeasible
      (** no plan makes the requested nodes independent *)
  | Cond_eliminated of { removed : int }
      (** redundant-condition elimination dropped [removed] atoms
          (paper §IV-A) *)
  | Cond_coalesced of { merged : int }
      (** condition coalescing merged [merged] atoms into hulls *)
  | Cond_promoted of { precise : bool }
      (** a check was promoted out of enclosing loops; [precise] means
          no widening was needed *)
  | Promotion_failed
      (** no enclosing-loop prefix admitted promotion; check kept *)
  | Pass_applied of { pass : string; work : (string * int) list }
      (** a pass transformed the function; [work] names what it did *)
  | Pass_skipped of { pass : string; reason : string }
      (** a pass ran and found nothing to do *)
  | Materialize_aborted of { reason : string }
      (** a plan tree could not be materialized in the current program
          state; the transformation that wanted it gave up *)
  | Graph_sparsity of { nodes : int; edges : int; pairs_pruned : int }
      (** a region's dependence graph was built sparsely: of the
          all-pairs candidate space, [pairs_pruned] pairs were pruned
          without computing a dependence condition (DESIGN §12) *)
  | Wish_granted of { client : string; wanted : string; conds : int;
                      static : bool }
      (** a wish-spec client's candidate was granted: [static] means the
          wished independence already held (no run-time conditions);
          otherwise a plan of [conds] conditions was recorded *)
  | Wish_denied of { client : string; wanted : string }
      (** a wish-spec client's candidate could not be granted: the
          wished-away dependence is not versionable *)
  | Store_eliminated of { forwarded : int; killed : int }
      (** DSE resolved stores in a region: [forwarded] loads now read
          the stored value directly, [killed] dead stores were removed *)
  | Loop_distributed of { pieces : int; conds : int }
      (** a loop was split into [pieces] independently schedulable
          sub-loops under [conds] run-time conditions *)
  | Cache_hit of { key : string; pipeline : string }
      (** the compile service answered a request from its
          content-addressed artifact cache: [key] is the content hash
          (DESIGN §15), [pipeline] the pipeline the artifact was
          compiled with — no pass ran *)

val remark : anchor -> remark -> unit
(** Append to the calling domain's remark stream (no-op when remarks
    are disabled). *)

(** {1 Export} *)

val chrome_trace : unit -> Json.t
(** The calling domain's span buffer as a Chrome trace-event document:
    [{"traceEvents": [...], "displayTimeUnit": "ms", "otherData":
    {"schema_version": 1}}] with ["B"]/["E"] duration events (µs
    timestamps relative to process start) and ["M"] thread-name
    metadata per domain. *)

val write_chrome_trace : string -> unit
(** [chrome_trace] serialized to a file. *)

val remarks : unit -> (anchor * remark) list
(** The calling domain's remark stream, in emission order. *)

val remark_json : anchor * remark -> Json.t
(** One remark as a flat object: [{"remark": "<slug>", "function": ...,
    "loop"?, "value"?, <payload fields>}]. *)

val remark_text : anchor * remark -> string
(** One remark as a human line, LLVM [-Rpass]-style:
    ["remark: fn:L0:v12: <message>"]. *)

val remarks_jsonl : unit -> string
(** Every remark as minified JSON, one per line (the [--remarks=json]
    stream). *)

val remarks_report : unit -> string
(** Every remark as human text, one per line (the [--remarks] stream). *)

val reset : unit -> unit
(** Drop the calling domain's span and remark buffers (enablement flags
    are untouched). *)

(** {1 Shards}

    An ordered snapshot of one task's spans and remarks; plain data,
    safe to cross domains. *)

type shard

val empty_shard : shard
val shard_is_empty : shard -> bool

val isolated : (unit -> 'a) -> 'a * shard
(** Run the thunk against a fresh, empty buffer and return everything
    it recorded; the calling domain's buffer is untouched and restored
    afterwards (also on exceptions, discarding the shard). *)

val merge_shard : shard -> unit
(** Append one shard's events to the calling domain's buffer, in the
    shard's order.  Replaying {!isolated} shards in a deterministic
    order makes the merged remark stream deterministic. *)

val collect_remarks : (unit -> 'a) -> 'a * (anchor * remark) list
(** Run the thunk with remarks force-enabled and isolated, restore the
    previous enablement, and return what it emitted — how the fuzz
    campaign attaches the failing pipeline's decisions to a failure
    report without polluting the global stream.  The force is
    domain-local, so concurrent pool workers collecting remarks never
    interfere (the global {!set_remarks} flag is untouched). *)
