(** Minimal JSON document tree and emitter, shared by every subsystem
    that writes machine-readable output: telemetry snapshots, the bench
    harness's figure documents, the fuzz campaign's failure reports, and
    the trace/remark streams.

    One emitter means one set of escaping and float-formatting rules —
    extracted from {!Telemetry}, where three near-copies used to live —
    and one strict test-side parser ([test/harness.ml]) exercises them
    all. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Serialize with proper string escaping.  [minify:false] (default)
    pretty-prints with two-space indentation; floats are emitted in a
    form every JSON parser accepts (no [nan]/[inf], no bare [.5]). *)

val escape_string : string -> string
(** ["…"]-quoted JSON string literal with control characters escaped. *)

val float_repr : float -> string
(** The float formatting [to_string] uses: integral floats as ["3.0"],
    NaN as ["null"], infinities as out-of-range exponents (["1e999"],
    which standard parsers read back as IEEE infinity), every other
    finite float as ["%.17g"].  Round-trip guarantee: for finite [x],
    [of_string (float_repr x) = Ok (Float x)] bit-for-bit — 17
    significant digits are sufficient for binary64, so histogram
    bucket bounds and measured durations survive emit→parse cycles
    exactly (pinned by a unit test in [test_obslog]). *)

val of_string : string -> (t, string) result
(** Strict parse of one JSON value (the full standard grammar; rejects
    trailing garbage).  Returns [Error "at <pos>: <why>"] rather than
    raising: the compile-service protocol answers malformed request
    lines with error responses.  [test/harness.ml] keeps an independent
    parser so the emitter is never validated only by its own inverse. *)

(** {1 Object accessors}

    Defaulting lookups over [Assoc] documents, for protocol decoding.
    Each returns [None] when the member exists with the wrong type;
    [default] applies only when the member is absent. *)

val member : string -> t -> t option
val string_member : ?default:string -> string -> t -> string option
val int_member : ?default:int -> string -> t -> int option
val bool_member : ?default:bool -> string -> t -> bool option
