(** A work-stealing domain pool for embarrassingly parallel maps, built
    on OCaml 5 [Domain]/[Mutex] only (no external dependencies).

    [map ~jobs f xs] evaluates [f] over [xs] on [jobs] worker domains
    and returns the results in input order.  Each worker owns a
    contiguous slice of the index range and pops tasks from its front;
    an idle worker steals from the back of another worker's slice, so
    uneven task costs balance without a central queue bottleneck.

    Guarantees:

    - {b Deterministic ordering}: results (and captured exceptions) are
      reported by input index, never by completion order.
    - {b Exception isolation}: a task that raises does not kill the
      run; every task still executes.  {!try_map} reports per-task
      [result]s; {!map} re-raises the lowest-index exception after all
      tasks have finished — the same exception a sequential
      left-to-right run would have surfaced first.
    - {b Telemetry}: each worker domain records into its own
      {!Telemetry} shard; at join the shards are folded into the
      calling domain's registry ({!Telemetry.merge_joined}: counters
      summed, timer totals maxed, timer counts summed).  A
      [Telemetry.capture] around a [map] therefore sees every counter
      the tasks bumped, at any job count.
    - {b No nesting}: calling [map]/[try_map] from inside a pool task
      raises {!Nested_map} at any job count (also at [~jobs:1], so a
      sequential run cannot silently accept a structure that would
      deadlock resources in a parallel one).  Parallelize at one level
      and keep the work below it pure.

    Tasks must not mutate state shared with other tasks; per-task and
    per-[Ir.func] state is fine.  See CONTRIBUTING.md "Concurrency
    rules". *)

exception Nested_map
(** Raised by {!map}/{!try_map} when called from inside a pool task. *)

val default_jobs : unit -> int
(** The [POOL_JOBS] environment variable if set to a positive integer,
    otherwise [Domain.recommended_domain_count ()].  Entry points use
    this as the default for their [--jobs] flag. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] evaluated on [jobs] domains
    (clamped to [max 1 (min jobs (length xs))]; [~jobs:1] runs inline
    on the calling domain, spawning nothing).  If any task raised, the
    lowest-index exception is re-raised after all tasks finish. *)

val try_map : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Like {!map} but per-task exceptions are captured in place, so one
    failed task reports while its siblings' results survive. *)
