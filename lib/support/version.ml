(* The tool version and the schema version of every machine-readable
   output the fgv tool family emits, in one place: the fgvc driver
   prints them ([--version]), the bench harness stamps its JSON
   document, and the compile service folds [tool] into every cache key
   — a new compiler version must never serve artifacts cached by an
   old one (DESIGN §15). *)

let tool = "fgv 0.9"

let bench_json_schema = 7
let fuzz_report_schema = 3
let trace_schema = 1
let service_protocol = 3
let cache_schema = 2
let log_schema = 1
let metrics_schema = 1

(* What [fgvc --version] prints; consumers pin against these. *)
let banner =
  Printf.sprintf
    "%s (bench-json=%d fuzz-report=%d trace=%d service-proto=%d \
     cache-schema=%d log-schema=%d metrics-schema=%d)"
    tool bench_json_schema fuzz_report_schema trace_schema service_protocol
    cache_schema log_schema metrics_schema
