(** Line-based unified diffs, for the per-pass IR snapshots of
    [fgvc --dump-ir]: each pass's before/after printer output is diffed
    so a miscompile hunt starts from "what did this pass change" rather
    than two full dumps.

    The implementation is a plain LCS over lines — quadratic, which is
    fine for IR dumps of kernel-sized functions — with standard
    [@@ -l,n +l,n @@] hunk headers and [context] lines of surrounding
    context. *)

val unified :
  ?context:int ->
  ?from_label:string ->
  ?to_label:string ->
  string ->
  string ->
  string
(** [unified before after] is the unified diff between the two texts
    (split on ['\n']), or [""] when they are equal.  [context] defaults
    to 3; the labels default to ["before"]/["after"] and appear on the
    [---]/[+++] header lines. *)
