(* Unified diff over lines via a longest-common-subsequence DP.  See the
   interface; sizing note: IR dumps are at most a few hundred lines, so
   the O(n*m) table is microseconds and keeps the code dependency-free. *)

type op = Keep of string | Del of string | Add of string

let split_lines s =
  match String.split_on_char '\n' s with
  | [ "" ] -> [||]
  | parts ->
    (* a trailing newline produces a final empty element that is not a
       line of its own *)
    let parts =
      match List.rev parts with
      | "" :: rest -> List.rev rest
      | _ -> parts
    in
    Array.of_list parts

let ops_of (a : string array) (b : string array) : op list =
  let n = Array.length a and m = Array.length b in
  (* lcs.(i).(j) = LCS length of a[i..] and b[j..] *)
  let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      lcs.(i).(j) <-
        (if a.(i) = b.(j) then 1 + lcs.(i + 1).(j + 1)
         else max lcs.(i + 1).(j) lcs.(i).(j + 1))
    done
  done;
  (* on ties prefer the deletion so removed lines print before added
     ones, as conventional diffs do *)
  let rec walk i j acc =
    if i < n && j < m && a.(i) = b.(j) then walk (i + 1) (j + 1) (Keep a.(i) :: acc)
    else if i < n && (j = m || lcs.(i + 1).(j) >= lcs.(i).(j + 1)) then
      walk (i + 1) j (Del a.(i) :: acc)
    else if j < m then walk i (j + 1) (Add b.(j) :: acc)
    else List.rev acc
  in
  walk 0 0 []

let unified ?(context = 3) ?(from_label = "before") ?(to_label = "after")
    (before : string) (after : string) : string =
  if before = after then ""
  else begin
    let ops = Array.of_list (ops_of (split_lines before) (split_lines after)) in
    let len = Array.length ops in
    let is_change = function Keep _ -> false | Del _ | Add _ -> true in
    (* group change positions into hunks no farther than 2*context apart *)
    let groups =
      let acc = ref [] and cur = ref None in
      Array.iteri
        (fun k op ->
          if is_change op then
            match !cur with
            | Some (first, last) when k - last <= 2 * context ->
              cur := Some (first, k)
            | Some g ->
              acc := g :: !acc;
              cur := Some (k, k)
            | None -> cur := Some (k, k))
        ops;
      (match !cur with Some g -> acc := g :: !acc | None -> ());
      List.rev !acc
    in
    (* 1-based line number of the a/b line at op position k (i.e. lines
       consumed before it, plus one) *)
    let a_before = Array.make (len + 1) 0 and b_before = Array.make (len + 1) 0 in
    Array.iteri
      (fun k op ->
        let da, db =
          match op with Keep _ -> (1, 1) | Del _ -> (1, 0) | Add _ -> (0, 1)
        in
        a_before.(k + 1) <- a_before.(k) + da;
        b_before.(k + 1) <- b_before.(k) + db)
      ops;
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Printf.sprintf "--- %s\n+++ %s\n" from_label to_label);
    List.iter
      (fun (first, last) ->
        let start = max 0 (first - context) in
        let stop = min (len - 1) (last + context) in
        let a_count = a_before.(stop + 1) - a_before.(start) in
        let b_count = b_before.(stop + 1) - b_before.(start) in
        (* the conventional empty-range header uses the preceding line *)
        let a_start = if a_count = 0 then a_before.(start) else a_before.(start) + 1 in
        let b_start = if b_count = 0 then b_before.(start) else b_before.(start) + 1 in
        Buffer.add_string buf
          (Printf.sprintf "@@ -%d,%d +%d,%d @@\n" a_start a_count b_start b_count);
        for k = start to stop do
          let prefix, line =
            match ops.(k) with
            | Keep l -> (' ', l)
            | Del l -> ('-', l)
            | Add l -> ('+', l)
          in
          Buffer.add_char buf prefix;
          Buffer.add_string buf line;
          Buffer.add_char buf '\n'
        done)
      groups;
    Buffer.contents buf
  end
