(* Structured JSON-lines event log.  See the .mli for the schema and
   the determinism contract; DESIGN §16 for the event vocabulary.

   The sink is one global mutable cell behind a mutex.  That is the
   right shape here: a log is a process-wide side channel (like the
   trace stream), opened once by the driver, and per-event cost is a
   handful of allocations + one [output_string] + [flush] — the flush
   dominates, and serializing emitters keeps lines whole.  Workers in
   the pool do not emit on the hot path anyway: access records are
   written by the service coordinator, in request order, after each
   batch merges. *)

type level = Debug | Info | Warn

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2
let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | _ -> None

let parse_spec spec =
  let fallback = Ok (spec, Info) in
  match String.rindex_opt spec '=' with
  | None -> fallback
  | Some i -> (
    let path = String.sub spec 0 i in
    let suffix = String.sub spec (i + 1) (String.length spec - i - 1) in
    match level_of_string suffix with
    | Some lvl ->
      if path = "" then Error "empty log path before '='" else Ok (path, lvl)
    | None ->
      (* The suffix is not a level name: treat '=' as part of the path
         unless it looks like a level typo worth rejecting loudly. *)
      if suffix = "" then Error "empty level after '='" else fallback)

type sink = { oc : out_channel; threshold : level; opened_at : float }

let sink : sink option ref = ref None
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let is_open () = with_lock (fun () -> !sink <> None)

let enabled lvl =
  with_lock (fun () ->
      match !sink with
      | None -> false
      | Some s -> level_rank lvl >= level_rank s.threshold)

(* Emit assuming the lock is held and the level passed the threshold. *)
let write_locked s lvl event fields timing =
  let now = Unix.gettimeofday () -. s.opened_at in
  let line =
    Json.Assoc
      ([ ("event", Json.String event); ("level", String (level_name lvl)) ]
      @ fields
      @ [ ("timing", Json.Assoc (timing @ [ ("ts_s", Json.Float now) ])) ])
  in
  output_string s.oc (Json.to_string ~minify:true line);
  output_char s.oc '\n';
  flush s.oc

let emit ?(timing = []) lvl event fields =
  with_lock (fun () ->
      match !sink with
      | None -> ()
      | Some s ->
        if level_rank lvl >= level_rank s.threshold then
          write_locked s lvl event fields timing)

let close_locked () =
  match !sink with
  | None -> ()
  | Some s ->
    (try flush s.oc with Sys_error _ -> ());
    (try close_out s.oc with Sys_error _ -> ());
    sink := None

let open_log ~path ~level =
  with_lock (fun () ->
      close_locked ();
      let oc = open_out path in
      let s = { oc; threshold = level; opened_at = Unix.gettimeofday () } in
      sink := Some s;
      write_locked s Info "log-open"
        [
          ("schema", Json.Int Version.log_schema);
          ("tool", String Version.tool);
          ("threshold", String (level_name level));
        ]
        [])

let close () = with_lock close_locked
