(** Structured JSON-lines event log ([fgvc --log FILE[=LEVEL]]).

    One JSON object per line, minified, flushed per event:

    {v {"event":"access","level":"info",<fields...>,"timing":{"ts_s":...,...}} v}

    Members appear in exactly that order: ["event"], ["level"], the
    caller's fields in the order given, then ["timing"] last.  Every
    event carries a ["timing"] object; the wall-clock timestamp
    ["ts_s"] (seconds since the log was opened) is added to it
    automatically, after any caller-supplied timing fields.

    Determinism contract (DESIGN §16): everything wall-clock-derived —
    durations, timestamps, rates — lives under the ["timing"] key and
    {e only} there; every other field must be a pure function of the
    input stream.  Consequently the non-[timing] projection of the log
    (each line with its ["timing"] member deleted) is byte-identical
    across runs at any [--jobs] level, and CI diffs it the same way it
    diffs fuzz reports.  Events that exist {e because} of a timing
    measurement ([--slow-ms] warnings) are the documented exception:
    the contract holds with [--slow-ms] unset.

    The sink is global and [Mutex]-guarded: any domain may emit, lines
    never interleave.  The coordinator alone emits order-sensitive
    records (service access logs) so sequence numbers stay monotonic
    in the file. *)

type level = Debug | Info | Warn

val level_name : level -> string
(** ["debug"] / ["info"] / ["warn"]. *)

val level_of_string : string -> level option

val parse_spec : string -> (string * level, string) result
(** Parse a [--log] argument [FILE[=LEVEL]] into (path, threshold);
    the level defaults to [Info].  The {e last} ['='] separates the
    suffix, and only when it names a level — so paths containing ['=']
    still work unless they end in [=debug]/[=info]/[=warn]. *)

val open_log : path:string -> level:level -> unit
(** Open (truncate) [path] and start logging events at or above
    [level].  Emits a ["log-open"] event recording the schema version,
    tool banner, and threshold.  Replaces any previously open log. *)

val is_open : unit -> bool

val enabled : level -> bool
(** Whether an event at this level would be written — lets callers
    skip building field lists when nobody is listening. *)

val emit : ?timing:(string * Json.t) list -> level -> string ->
  (string * Json.t) list -> unit
(** [emit level event fields] writes one line (no-op when below the
    threshold or no log is open).  [fields] must respect the
    determinism contract; anything wall-clock-derived goes in
    [?timing].  Field names ["event"], ["level"], ["timing"] are
    reserved. *)

val close : unit -> unit
(** Flush and close the sink; subsequent emits are no-ops.  Safe to
    call when nothing is open. *)
