(* Log-bucketed latency histograms.  See the .mli for the contract.

   Bucket scheme: octaves [2^e, 2^(e+1)) for e in [e_min, e_max), each
   split into [sub_buckets] linear sub-buckets
   [2^e·(1+s/8), 2^e·(1+(s+1)/8)).  With e_min = -30 and e_max = 10
   that spans ~0.93 ns .. 1024 s in 40·8 = 320 regular buckets, plus
   one underflow bucket [0, 2^-30) at index 0 and one overflow bucket
   [2^10, ∞) at the end — 322 ints per histogram.

   Indexing is [frexp]: for v > 0, [frexp v = (m, e')] with m in
   [0.5, 1), so v = m·2^e' lies in octave e'-1 and the sub-bucket is
   ⌊(2m - 1)·8⌋ — a handful of float ops, no table walk, and a pure
   function of the sample's bits (the determinism contract rests on
   this).  Bounds are rebuilt with [ldexp], hence exact binary floats
   that survive %.17g round-trips.

   There is intentionally NO running sum of samples: float addition is
   order-sensitive, and a sum would break the merge-associativity
   property test_obslog fuzzes.  Min/max are kept instead (exact
   sample values; min and max of a multiset are order-free). *)

let sub_buckets = 8
let e_min = -30
let e_max = 10
let n_regular = (e_max - e_min) * sub_buckets
let n_buckets = n_regular + 2 (* + underflow + overflow *)
let overflow = n_buckets - 1

type t = {
  counts : int array; (* length n_buckets *)
  mutable total : int;
  mutable mn : float; (* nan when empty *)
  mutable mx : float;
}

let create () =
  { counts = Array.make n_buckets 0; total = 0; mn = nan; mx = nan }

let copy h =
  { counts = Array.copy h.counts; total = h.total; mn = h.mn; mx = h.mx }

let index_of v =
  if not (v > 0.0) then 0 (* ≤ 0, NaN *)
  else
    let m, e' = Float.frexp v in
    let oct = e' - 1 in
    if oct < e_min then 0
    else if oct >= e_max then overflow
    else
      let sub = int_of_float (((m *. 2.0) -. 1.0) *. float_of_int sub_buckets) in
      let sub = if sub >= sub_buckets then sub_buckets - 1 else sub in
      1 + ((oct - e_min) * sub_buckets) + sub

(* Inverse of [index_of] for regular buckets: exact binary bounds. *)
let bucket_lo i =
  if i = 0 then 0.0
  else if i = overflow then Float.ldexp 1.0 e_max
  else
    let r = i - 1 in
    let oct = e_min + (r / sub_buckets) and sub = r mod sub_buckets in
    Float.ldexp (1.0 +. (float_of_int sub /. float_of_int sub_buckets)) oct

let bucket_hi i = if i = overflow then infinity else bucket_lo (i + 1)

let record h v =
  let i = index_of v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.total <- h.total + 1;
  (* NaN samples count but do not disturb min/max. *)
  if Float.is_nan v then ()
  else begin
    if Float.is_nan h.mn || v < h.mn then h.mn <- v;
    if Float.is_nan h.mx || v > h.mx then h.mx <- v
  end

let count h = h.total
let min_sample h = h.mn
let max_sample h = h.mx

let merge_into ~into src =
  for i = 0 to n_buckets - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.total <- into.total + src.total;
  if not (Float.is_nan src.mn) then
    if Float.is_nan into.mn || src.mn < into.mn then into.mn <- src.mn;
  if not (Float.is_nan src.mx) then
    if Float.is_nan into.mx || src.mx > into.mx then into.mx <- src.mx

let quantile h q =
  if h.total = 0 then nan
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int h.total)) in
      if r < 1 then 1 else r
    in
    (* The 1st and the last order statistic are known exactly. *)
    if rank <= 1 && not (Float.is_nan h.mn) then h.mn
    else if rank >= h.total && not (Float.is_nan h.mx) then h.mx
    else begin
    let i = ref 0 and cum = ref h.counts.(0) in
    while !cum < rank do
      incr i;
      cum := !cum + h.counts.(!i)
    done;
    let i = !i in
    (* Interpolate linearly inside the bucket: the rank'th sample of
       the [counts.(i)] samples here, assuming uniform spread. *)
    let below = !cum - h.counts.(i) in
    let frac =
      float_of_int (rank - below) /. float_of_int h.counts.(i)
    in
    let lo = bucket_lo i in
    let hi = bucket_hi i in
    let v =
      if i = overflow then lo (* no finite width to spread over *)
      else lo +. (frac *. (hi -. lo))
    in
    (* Clamp to observed extremes: buckets overshoot real samples. *)
    let v = if not (Float.is_nan h.mn) && v < h.mn then h.mn else v in
    let v = if not (Float.is_nan h.mx) && v > h.mx then h.mx else v in
    v
    end
  end

let buckets h =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.counts.(i) > 0 then
      acc := (bucket_lo i, bucket_hi i, h.counts.(i)) :: !acc
  done;
  !acc

let to_json h =
  let fl v : Json.t = if Float.is_nan v then Null else Float v in
  let q p = if h.total = 0 then Json.Null else fl (quantile h p) in
  Json.Assoc
    [
      ("count", Int h.total);
      ("min", fl h.mn);
      ("max", fl h.mx);
      ("p50", q 0.5);
      ("p90", q 0.9);
      ("p99", q 0.99);
      ( "buckets",
        List
          (List.map
             (fun (lo, hi, c) ->
               Json.Assoc [ ("lo", Float lo); ("hi", Float hi); ("count", Int c) ])
             (buckets h)) );
    ]

(* ------------------------------------------------------------------ *)
(* Named registry, Domain.DLS-sharded like Telemetry.                 *)

type registry = (string, t) Hashtbl.t

let registry_key : registry Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let registry () = Domain.DLS.get registry_key

let observe name v =
  let reg = registry () in
  let h =
    match Hashtbl.find_opt reg name with
    | Some h -> h
    | None ->
      let h = create () in
      Hashtbl.add reg name h;
      h
  in
  record h v

let named () =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) (registry ()) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find name = Hashtbl.find_opt (registry ()) name
let reset () = Hashtbl.reset (registry ())

type shard = (string * t) list

let empty_shard : shard = []
let shard_is_empty s = s = []

let isolated f =
  let saved = registry () in
  let fresh : registry = Hashtbl.create 16 in
  Domain.DLS.set registry_key fresh;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set registry_key saved)
    (fun () ->
      let r = f () in
      let shard =
        Hashtbl.fold (fun name h acc -> (name, copy h) :: acc) fresh []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      (r, shard))

let merge_shard (s : shard) =
  let reg = registry () in
  List.iter
    (fun (name, h) ->
      match Hashtbl.find_opt reg name with
      | Some into -> merge_into ~into h
      | None -> Hashtbl.add reg name (copy h))
    s
