(* Child-process orchestration for the native backend: run a command,
   capture stdout/stderr and the exit status, and time the run.

   Output is captured through temporary files rather than pipes: the
   children here (a C compiler, a compiled kernel) can write megabytes
   of diagnostics, and redirecting to files needs no pumping thread and
   cannot deadlock.  [Unix.create_process] forks and immediately execs,
   which is safe from pool worker domains. *)

type result = {
  p_status : Unix.process_status;
  p_stdout : string;
  p_stderr : string;
  p_wall_s : float;
}

let ok (r : result) = r.p_status = Unix.WEXITED 0

let status_string = function
  | Unix.WEXITED n -> Printf.sprintf "exited %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped by signal %d" n

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Run [prog args] (prog resolved via PATH by execvp), returning status,
   captured output, and wall-clock seconds.  Paths in [args] should be
   absolute: the child inherits our working directory, and callers may
   run from pool worker domains where chdir would race. *)
let run (prog : string) (args : string list) : result =
  let out_file = Filename.temp_file "fgv-proc" ".out" in
  let err_file = Filename.temp_file "fgv-proc" ".err" in
  let argv = Array.of_list (prog :: args) in
  let t0 = Unix.gettimeofday () in
  let finally () =
    (try Sys.remove out_file with Sys_error _ -> ());
    try Sys.remove err_file with Sys_error _ -> ()
  in
  Fun.protect ~finally (fun () ->
      let out_fd =
        Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
      in
      let err_fd =
        Unix.openfile err_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
      in
      let pid =
        Fun.protect
          ~finally:(fun () ->
            Unix.close out_fd;
            Unix.close err_fd)
          (fun () ->
            Unix.create_process prog argv Unix.stdin out_fd err_fd)
      in
      let _, status = Unix.waitpid [] pid in
      {
        p_status = status;
        p_stdout = read_file out_file;
        p_stderr = read_file err_file;
        p_wall_s = Unix.gettimeofday () -. t0;
      })

(* Search PATH for an executable; used to locate the system C compiler
   (and to skip the native lanes gracefully when there is none). *)
let find_in_path (name : string) : string option =
  if Filename.is_implicit name then
    let dirs =
      String.split_on_char ':' (try Sys.getenv "PATH" with Not_found -> "")
    in
    List.find_map
      (fun dir ->
        if dir = "" then None
        else
          let candidate = Filename.concat dir name in
          if Sys.file_exists candidate && not (Sys.is_directory candidate)
          then Some candidate
          else None)
      dirs
  else if Sys.file_exists name then Some name
  else None
