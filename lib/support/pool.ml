(* Work-stealing domain pool.  See the interface for the contract.

   Scheduling: the index range [0, n) is pre-split into one contiguous
   slice per worker.  A worker takes from the *front* of its own slice
   and, once empty, scans the other slices and steals from the *back*
   of the first non-empty one.  Slices are guarded by one mutex each —
   a take or steal is a couple of integer updates under an uncontended
   lock, which is noise next to any task this repo runs (a task
   compiles and interprets whole kernels).  No condition variables are
   needed: the task set is fixed at [map] entry, so a worker that finds
   every slice empty is done, not waiting.

   Determinism: the results array is indexed by input position and each
   cell is written by exactly one worker, so the output order never
   depends on the schedule.  Telemetry determinism is the shards'
   problem (see telemetry.mli); the pool's only job is to hand every
   worker's shard to [Telemetry.merge_joined] at join.

   Tracing: when {!Trace.active} (spans or remarks enabled), each TASK
   runs under [Trace.isolated] and the per-task shards are replayed in
   input index order at the join — per task, not per worker, because
   work stealing makes the worker→index assignment schedule-dependent
   while the index order is not.  The remark stream is therefore
   byte-identical at any job count; span timestamps stay wall-clock. *)

exception Nested_map

(* True while the current domain is executing a pool task (set in
   worker domains, and around the inline [~jobs:1] loop). *)
let in_task_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let default_jobs () =
  match Sys.getenv_opt "POOL_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* ------------------------------------------------------------- slices *)

type slice = { lock : Mutex.t; mutable lo : int; mutable hi : int }
(* invariant: the slice owns indices [lo, hi) *)

let take_front (s : slice) =
  Mutex.lock s.lock;
  let r =
    if s.lo < s.hi then begin
      let i = s.lo in
      s.lo <- i + 1;
      Some i
    end
    else None
  in
  Mutex.unlock s.lock;
  r

let steal_back (s : slice) =
  Mutex.lock s.lock;
  let r =
    if s.lo < s.hi then begin
      let i = s.hi - 1 in
      s.hi <- i;
      Some i
    end
    else None
  in
  Mutex.unlock s.lock;
  r

(* ---------------------------------------------------------------- map *)

let run_task f (tasks : 'a array) (results : ('b, exn) result option array)
    (trace_shards : Trace.shard array) i =
  if Trace.active () then begin
    let r, shard =
      Trace.isolated (fun () ->
          match f tasks.(i) with v -> Ok v | exception e -> Error e)
    in
    (* each index is written by exactly one worker: no lock needed *)
    results.(i) <- Some r;
    trace_shards.(i) <- shard
  end
  else
    results.(i) <-
      Some (match f tasks.(i) with v -> Ok v | exception e -> Error e)

let worker f tasks results trace_shards (slices : slice array) (w : int) () =
  Domain.DLS.set in_task_key true;
  let jobs = Array.length slices in
  let rec own () =
    match take_front slices.(w) with
    | Some i ->
      run_task f tasks results trace_shards i;
      own ()
    | None -> steal 1
  and steal k =
    if k < jobs then
      match steal_back slices.((w + k) mod jobs) with
      | Some i ->
        run_task f tasks results trace_shards i;
        own () (* the victim may still be full; re-prefer our slice *)
      | None -> steal (k + 1)
  in
  own ();
  Telemetry.shard_of_current ()

let collect n (results : ('b, exn) result option array) =
  List.init n (fun i ->
      match results.(i) with
      | Some r -> r
      | None -> Error (Failure "Pool: task never ran (pool bug)"))

let try_map ?jobs (f : 'a -> 'b) (xs : 'a list) : ('b, exn) result list =
  if Domain.DLS.get in_task_key then raise Nested_map;
  let tasks = Array.of_list xs in
  let n = Array.length tasks in
  let jobs =
    max 1 (min n (match jobs with Some j -> j | None -> default_jobs ()))
  in
  if n = 0 then []
  else if jobs = 1 then begin
    (* inline: same task semantics (including nested-map rejection, which
       surfaces as a captured task error exactly as in a worker), no
       domains, telemetry recorded directly into the caller's registry *)
    Domain.DLS.set in_task_key true;
    let results =
      List.map
        (fun x -> match f x with v -> Ok v | exception e -> Error e)
        xs
    in
    Domain.DLS.set in_task_key false;
    results
  end
  else begin
    let results : ('b, exn) result option array = Array.make n None in
    let trace_shards = Array.make n Trace.empty_shard in
    let slices =
      Array.init jobs (fun w ->
          { lock = Mutex.create (); lo = w * n / jobs; hi = (w + 1) * n / jobs })
    in
    let domains =
      Array.init jobs (fun w ->
          Domain.spawn (worker f tasks results trace_shards slices w))
    in
    let shards = Array.to_list (Array.map Domain.join domains) in
    Telemetry.merge_joined shards;
    (* trace events replay in input order: deterministic remark stream *)
    Array.iter Trace.merge_shard trace_shards;
    collect n results
  end

let map ?jobs f xs =
  let results = try_map ?jobs f xs in
  List.map (function Ok v -> v | Error e -> raise e) results
