(** Log-bucketed (HDR-style) histograms for latency distributions.

    A histogram summarizes a stream of non-negative wall-clock samples
    (seconds) into exponential buckets: each power-of-two octave is
    split into {!sub_buckets} linear sub-buckets, so every bucket's
    width is at most 1/{!sub_buckets} of its lower bound (≤ 12.5%
    relative quantile error) while the whole range from ~1 ns to ~17
    minutes costs a few hundred ints.  Bucket bounds are exact binary
    floats (built with [ldexp]), so they serialize round-trippably
    through {!Json.float_repr} and are identical on every platform.

    Determinism contract: the bucket index of a sample is a pure
    function of its bits, and {!merge_into} sums bucket counts and
    combines min/max — an associative, commutative operation (there is
    deliberately no floating-point sum inside, which would be
    order-sensitive).  Two histograms fed the same multiset of samples
    in any order, or merged from any sharding of it, serialize to
    byte-identical JSON.  The {e samples} themselves are wall-clock
    and therefore not deterministic — consumers must keep histogram
    output under ["timing"] keys (DESIGN §16).

    Concurrency: a {!t} is plain mutable data with no internal locking
    — confine each instance to one domain (the named registry below is
    [Domain.DLS]-sharded exactly like {!Telemetry} for exactly this
    reason).  {!Telemetry} embeds one histogram per timer, so every
    [*.time] key gains distribution data and histogram shards ride the
    existing telemetry shard machinery. *)

type t

val sub_buckets : int
(** Linear sub-buckets per power-of-two octave (8). *)

val create : unit -> t

val copy : t -> t
(** A deep copy that shares no mutable state with the original — how
    histograms cross domains inside {!Telemetry} shards. *)

val record : t -> float -> unit
(** Add one sample.  Samples ≤ 0, NaN, and samples below the smallest
    bound land in the underflow bucket; samples past the largest bound
    land in the overflow bucket.  O(1), allocation-free. *)

val count : t -> int
(** Total samples recorded (including under/overflow). *)

val min_sample : t -> float
(** Smallest sample seen ([nan] when empty). *)

val max_sample : t -> float
(** Largest sample seen ([nan] when empty). *)

val merge_into : into:t -> t -> unit
(** Fold the second histogram into [into]: bucket counts sum, min/max
    combine.  Associative and commutative up to byte-identical
    {!to_json} output, whatever the merge tree. *)

val quantile : t -> float -> float
(** [quantile h q] for [q] in [0,1]: the sample value at rank
    ⌈q·count⌉, linearly interpolated inside its bucket and clamped to
    the observed [min,max].  [nan] when the histogram is empty.
    Accurate to the bucket width (≤ 12.5% relative). *)

val buckets : t -> (float * float * int) list
(** The non-empty buckets as [(lo, hi, count)], in increasing value
    order.  [hi] of the overflow bucket is [infinity]. *)

val to_json : t -> Json.t
(** [{"count": n, "min": s, "max": s, "p50": s, "p90": s, "p99": s,
    "buckets": [{"lo": s, "hi": s, "count": n}, ...]}] — min/max and
    the quantiles are [null] when empty.  Deterministic for a fixed
    sample multiset (see above). *)

(** {1 Named registry}

    A per-domain registry of named histograms, mirroring {!Telemetry}:
    recording touches only the calling domain's shard (never a lock),
    and pooled workers hand their shards back for an order-controlled
    replay.  {!Telemetry} timers do {e not} go through this registry —
    their histograms live inside the timer cells; this registry is for
    standalone series (e.g. per-task samples a worker records). *)

val observe : string -> float -> unit
(** Record one sample into the calling domain's named histogram,
    creating it empty on first use. *)

val named : unit -> (string * t) list
(** The calling domain's histograms, sorted by name.  The returned
    [t]s are live — copy before crossing domains. *)

val find : string -> t option

val reset : unit -> unit
(** Drop every named histogram of the calling domain. *)

type shard
(** An immutable snapshot of one domain's named histograms; plain
    data, safe to cross domains. *)

val empty_shard : shard
val shard_is_empty : shard -> bool

val isolated : (unit -> 'a) -> 'a * shard
(** Run the thunk against a fresh, empty registry and return what it
    recorded as a shard; the calling domain's registry is untouched
    and restored afterwards (also on exceptions, discarding the
    shard). *)

val merge_shard : shard -> unit
(** Fold one shard into the calling domain's registry ({!merge_into}
    per name).  Because merging is associative and commutative, the
    replay order cannot change any histogram's serialized form. *)
