(* Per-domain telemetry registry.  See the interface for the contract;
   the implementation notes here are about the few non-obvious choices:

   - counters and timers live in separate hashtables keyed by their
     fully qualified name, so [reset] is two [Hashtbl.reset]s;
   - the scope stack is a plain mutable list of prefixes; qualification
     happens at record time, so a counter bumped under two different
     scopes is two distinct registry entries;
   - the whole registry is domain-local (one shard per domain, allocated
     on first use through [Domain.DLS]), so recording never takes a
     lock: a pool worker writes only its own shard, and the shards are
     folded into the spawning domain's registry when the workers join
     ({!merge_joined}).  Single-domain programs see exactly the old
     process-global behaviour, because the main domain's shard *is* the
     registry;
   - JSON documents are built with the shared {!Json} module (the
     emitter used to live here and was extracted). *)

(* Re-exported with constructors so legacy [Telemetry.Assoc]-style users
   keep compiling; new code should use {!Json} directly. *)
type json = Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Assoc of (string * json) list

let json_to_string = Json.to_string

(* ----------------------------------------------------------- registry *)

(* Each timer carries a latency histogram alongside the running total,
   so every *.time key has distribution data, not just a mean.  The
   histogram is mutated by the owning domain only (the registry is
   domain-local) and crosses domains exclusively as copies inside
   shards. *)
type timer = {
  mutable total : float;
  mutable count : int;
  hist : Histogram.t;
}

type registry = {
  counter_tbl : (string, int ref) Hashtbl.t;
  timer_tbl : (string, timer) Hashtbl.t;
  mutable scope_stack : string list; (* innermost first *)
}

let fresh_registry () =
  {
    counter_tbl = Hashtbl.create 64;
    timer_tbl = Hashtbl.create 16;
    scope_stack = [];
  }

(* One registry per domain.  The key's initializer runs lazily the first
   time a domain records anything, so every spawned worker starts with
   an empty shard and the main domain keeps its registry for the whole
   process lifetime. *)
let registry_key : registry Domain.DLS.key =
  Domain.DLS.new_key fresh_registry

let cur () = Domain.DLS.get registry_key

let qualify reg name =
  match reg.scope_stack with
  | [] -> name
  | stack -> String.concat "." (List.rev stack) ^ "." ^ name

let counter_ref reg qname =
  match Hashtbl.find_opt reg.counter_tbl qname with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace reg.counter_tbl qname r;
    r

let incr ?(by = 1) name =
  let reg = cur () in
  let r = counter_ref reg (qualify reg name) in
  r := !r + by

let set_max name v =
  let reg = cur () in
  let r = counter_ref reg (qualify reg name) in
  if v > !r then r := v

let get name =
  match Hashtbl.find_opt (cur ()).counter_tbl name with
  | Some r -> !r
  | None -> 0

let counters () =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) (cur ()).counter_tbl []
  |> List.sort compare

let timer_cell reg qname =
  match Hashtbl.find_opt reg.timer_tbl qname with
  | Some t -> t
  | None ->
    let t = { total = 0.0; count = 0; hist = Histogram.create () } in
    Hashtbl.replace reg.timer_tbl qname t;
    t

let record_time reg qname dt =
  let t = timer_cell reg qname in
  t.total <- t.total +. dt;
  t.count <- t.count + 1;
  Histogram.record t.hist dt

let time name f =
  let reg = cur () in
  let qname = qualify reg name in
  let start = Unix.gettimeofday () in
  match f () with
  | result ->
    record_time (cur ()) qname (Unix.gettimeofday () -. start);
    result
  | exception e ->
    record_time (cur ()) qname (Unix.gettimeofday () -. start);
    raise e

let timer_total name =
  match Hashtbl.find_opt (cur ()).timer_tbl name with
  | Some t -> t.total
  | None -> 0.0

let timers () =
  Hashtbl.fold
    (fun name t acc -> (name, t.total, t.count) :: acc)
    (cur ()).timer_tbl []
  |> List.sort compare

let with_scope name f =
  (* time under the *enclosing* qualification, then push for the body *)
  let reg = cur () in
  let qname = qualify reg name in
  let start = Unix.gettimeofday () in
  reg.scope_stack <- name :: reg.scope_stack;
  let finish () =
    (* re-fetch: an [isolated] inside the scope swapped registries *)
    let reg = cur () in
    (match reg.scope_stack with
    | s :: rest when s == name -> reg.scope_stack <- rest
    | _ -> () (* a reset inside the scope cleared the stack: fine *));
    record_time reg qname (Unix.gettimeofday () -. start)
  in
  match f () with
  | result ->
    finish ();
    result
  | exception e ->
    finish ();
    raise e

let reset () =
  let reg = cur () in
  Hashtbl.reset reg.counter_tbl;
  Hashtbl.reset reg.timer_tbl;
  reg.scope_stack <- []

let snapshot_of_registry reg : json =
  let cs =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) reg.counter_tbl []
    |> List.sort compare
  in
  let ts =
    Hashtbl.fold (fun name t acc -> (name, t) :: acc) reg.timer_tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Assoc
    [
      ("counters", Assoc (List.map (fun (n, v) -> (n, Int v)) cs));
      ( "timers",
        Assoc
          (List.map
             (fun (n, t) ->
               ( n,
                 Assoc
                   [
                     ("total_s", Float t.total);
                     ("count", Int t.count);
                     ("histogram", Histogram.to_json t.hist);
                   ] ))
             ts) );
    ]

let snapshot () : json = snapshot_of_registry (cur ())

let capture f =
  let before = counters () in
  let result = f () in
  let after = counters () in
  let old name =
    match List.assoc_opt name before with Some v -> v | None -> 0
  in
  let delta =
    List.filter_map
      (fun (name, v) -> if v <> old name then Some (name, v - old name) else None)
      after
  in
  (result, delta)

(* ------------------------------------------------------------- shards *)

(* A shard is an immutable snapshot of a registry: what one task or one
   pool worker recorded.  Shards cross domains by value, so merging
   never aliases live hashtables between domains. *)
type shard = {
  s_counters : (string * int) list;
  s_timers : (string * float * int * Histogram.t) list;
      (* histograms are copies: the shard owns them outright *)
}

let shard_of_registry reg : shard =
  {
    s_counters =
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) reg.counter_tbl []
      |> List.sort compare;
    s_timers =
      Hashtbl.fold
        (fun name t acc ->
          (name, t.total, t.count, Histogram.copy t.hist) :: acc)
        reg.timer_tbl []
      |> List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b);
  }

let shard_of_current () = shard_of_registry (cur ())

let empty_shard = { s_counters = []; s_timers = [] }

let shard_is_empty s = s.s_counters = [] && s.s_timers = []

let shard_counters s = s.s_counters

let shard_filter_counters keep s =
  { s with s_counters = List.filter (fun (n, _) -> keep n) s.s_counters }

let shard_timers s =
  List.map (fun (name, total, count, _) -> (name, total, count)) s.s_timers

let shard_timer_histograms s =
  List.map (fun (name, _, _, h) -> (name, h)) s.s_timers

let isolated f =
  let saved = cur () in
  Domain.DLS.set registry_key (fresh_registry ());
  match f () with
  | result ->
    let shard = shard_of_current () in
    Domain.DLS.set registry_key saved;
    (result, shard)
  | exception e ->
    Domain.DLS.set registry_key saved;
    raise e

(* [set_max] counters — base name starting with "max_" — hold a maximum,
   not a sum: merging two shards (or a shard into a registry) must take
   the larger value, or parallel runs would report inflated "maxima". *)
let is_max_counter name =
  let base =
    match String.rindex_opt name '.' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  String.length base >= 4 && String.sub base 0 4 = "max_"

let merge_counter reg (name, v) =
  let r = counter_ref reg name in
  if is_max_counter name then (if v > !r then r := v) else r := !r + v

let merge_shard (s : shard) =
  let reg = cur () in
  List.iter (merge_counter reg) s.s_counters;
  List.iter
    (fun (name, total, count, hist) ->
      let t = timer_cell reg name in
      t.total <- t.total +. total;
      t.count <- t.count + count;
      Histogram.merge_into ~into:t.hist hist)
    s.s_timers

let merge_joined (shards : shard list) =
  (* Parallel-join semantics: the shards ran concurrently, so counters
     sum (work is work) but a timer's contribution to the parent is the
     *maximum* shard total — the critical path — while invocation
     counts still sum.  Summing totals across workers would report more
     seconds than the join took on the wall clock. *)
  let reg = cur () in
  List.iter (fun s -> List.iter (merge_counter reg) s.s_counters) shards;
  (* Histograms sum even here: each sample is one real invocation, so
     the distribution aggregates across workers — only the scalar
     total takes the critical-path maximum. *)
  let maxima : (string, float * int * Histogram.t) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun s ->
      List.iter
        (fun (name, total, count, hist) ->
          match Hashtbl.find_opt maxima name with
          | Some (mx, cnt, h) ->
            Histogram.merge_into ~into:h hist;
            Hashtbl.replace maxima name (Float.max mx total, cnt + count, h)
          | None ->
            Hashtbl.replace maxima name (total, count, Histogram.copy hist))
        s.s_timers)
    shards;
  Hashtbl.iter
    (fun name (mx, count, hist) ->
      let t = timer_cell reg name in
      t.total <- t.total +. mx;
      t.count <- t.count + count;
      Histogram.merge_into ~into:t.hist hist)
    maxima

let report () =
  let buf = Buffer.create 256 in
  let cs = counters () and ts = timers () in
  if cs <> [] then begin
    Buffer.add_string buf "counters:\n";
    let width =
      List.fold_left (fun w (n, _) -> max w (String.length n)) 0 cs
    in
    List.iter
      (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "  %-*s %d\n" width n v))
      cs
  end;
  if ts <> [] then begin
    Buffer.add_string buf "timers:\n";
    let width =
      List.fold_left (fun w (n, _, _) -> max w (String.length n)) 0 ts
    in
    List.iter
      (fun (n, total, count) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-*s %10.3f ms  (%d calls)\n" width n
             (total *. 1000.0) count))
      ts
  end;
  if cs = [] && ts = [] then Buffer.add_string buf "(no telemetry recorded)\n";
  Buffer.contents buf
