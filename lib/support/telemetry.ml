(* Process-wide telemetry registry.  See the interface for the contract;
   the implementation notes here are about the few non-obvious choices:

   - counters and timers live in separate hashtables keyed by their
     fully qualified name, so [reset] is two [Hashtbl.reset]s;
   - the scope stack is a plain mutable list of prefixes; qualification
     happens at record time, so a counter bumped under two different
     scopes is two distinct registry entries;
   - the JSON emitter is hand-rolled (no dependency): the only subtle
     parts are string escaping and float formatting, both below. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Assoc of (string * json) list

(* ------------------------------------------------------------ emitter *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* JSON has no NaN/Infinity; also "%.17g" can print "1e+3" style
   exponents, which are fine, but never a leading '.' or trailing '.'
   without digits — normalize "1." to "1.0". *)
let float_repr x =
  if Float.is_nan x then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else if x = Float.infinity then "1e999"
  else if x = Float.neg_infinity then "-1e999"
  else Printf.sprintf "%.17g" x

let json_to_string ?(minify = false) (j : json) : string =
  let buf = Buffer.create 256 in
  let pad depth = if not minify then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if not minify then Buffer.add_char buf '\n' in
  let rec go depth j =
    match j with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float x -> Buffer.add_string buf (float_repr x)
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun k item ->
          if k > 0 then begin Buffer.add_char buf ','; nl () end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Assoc [] -> Buffer.add_string buf "{}"
    | Assoc fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun k (key, v) ->
          if k > 0 then begin Buffer.add_char buf ','; nl () end;
          pad (depth + 1);
          Buffer.add_string buf (escape_string key);
          Buffer.add_string buf (if minify then ":" else ": ");
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf

(* ----------------------------------------------------------- registry *)

type timer = { mutable total : float; mutable count : int }

let counter_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 64
let timer_tbl : (string, timer) Hashtbl.t = Hashtbl.create 16
let scope_stack : string list ref = ref [] (* innermost first *)

let qualify name =
  match !scope_stack with
  | [] -> name
  | stack -> String.concat "." (List.rev stack) ^ "." ^ name

let counter_ref qname =
  match Hashtbl.find_opt counter_tbl qname with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace counter_tbl qname r;
    r

let incr ?(by = 1) name =
  let r = counter_ref (qualify name) in
  r := !r + by

let set_max name v =
  let r = counter_ref (qualify name) in
  if v > !r then r := v

let get name = match Hashtbl.find_opt counter_tbl name with Some r -> !r | None -> 0

let counters () =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) counter_tbl []
  |> List.sort compare

let timer_cell qname =
  match Hashtbl.find_opt timer_tbl qname with
  | Some t -> t
  | None ->
    let t = { total = 0.0; count = 0 } in
    Hashtbl.replace timer_tbl qname t;
    t

let record_time qname dt =
  let t = timer_cell qname in
  t.total <- t.total +. dt;
  t.count <- t.count + 1

let time name f =
  let qname = qualify name in
  let start = Unix.gettimeofday () in
  match f () with
  | result ->
    record_time qname (Unix.gettimeofday () -. start);
    result
  | exception e ->
    record_time qname (Unix.gettimeofday () -. start);
    raise e

let timer_total name =
  match Hashtbl.find_opt timer_tbl name with Some t -> t.total | None -> 0.0

let timers () =
  Hashtbl.fold (fun name t acc -> (name, t.total, t.count) :: acc) timer_tbl []
  |> List.sort compare

let with_scope name f =
  (* time under the *enclosing* qualification, then push for the body *)
  let qname = qualify name in
  let start = Unix.gettimeofday () in
  scope_stack := name :: !scope_stack;
  let finish () =
    (match !scope_stack with
    | s :: rest when s == name -> scope_stack := rest
    | _ -> () (* a reset inside the scope cleared the stack: fine *));
    record_time qname (Unix.gettimeofday () -. start)
  in
  match f () with
  | result ->
    finish ();
    result
  | exception e ->
    finish ();
    raise e

let reset () =
  Hashtbl.reset counter_tbl;
  Hashtbl.reset timer_tbl;
  scope_stack := []

let snapshot () : json =
  Assoc
    [
      ("counters", Assoc (List.map (fun (n, v) -> (n, Int v)) (counters ())));
      ( "timers",
        Assoc
          (List.map
             (fun (n, total, count) ->
               (n, Assoc [ ("total_s", Float total); ("count", Int count) ]))
             (timers ())) );
    ]

let capture f =
  let before = counters () in
  let result = f () in
  let after = counters () in
  let old name =
    match List.assoc_opt name before with Some v -> v | None -> 0
  in
  let delta =
    List.filter_map
      (fun (name, v) -> if v <> old name then Some (name, v - old name) else None)
      after
  in
  (result, delta)

let report () =
  let buf = Buffer.create 256 in
  let cs = counters () and ts = timers () in
  if cs <> [] then begin
    Buffer.add_string buf "counters:\n";
    let width =
      List.fold_left (fun w (n, _) -> max w (String.length n)) 0 cs
    in
    List.iter
      (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "  %-*s %d\n" width n v))
      cs
  end;
  if ts <> [] then begin
    Buffer.add_string buf "timers:\n";
    let width =
      List.fold_left (fun w (n, _, _) -> max w (String.length n)) 0 ts
    in
    List.iter
      (fun (n, total, count) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-*s %10.3f ms  (%d calls)\n" width n
             (total *. 1000.0) count))
      ts
  end;
  if cs = [] && ts = [] then Buffer.add_string buf "(no telemetry recorded)\n";
  Buffer.contents buf
