(* The shared hand-rolled JSON emitter (no dependency): the only subtle
   parts are string escaping and float formatting, both below. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* JSON has no NaN/Infinity; also "%.17g" can print "1e+3" style
   exponents, which are fine, but never a leading '.' or trailing '.'
   without digits — normalize "1." to "1.0". *)
let float_repr x =
  if Float.is_nan x then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else if x = Float.infinity then "1e999"
  else if x = Float.neg_infinity then "-1e999"
  else Printf.sprintf "%.17g" x

let to_string ?(minify = false) (j : t) : string =
  let buf = Buffer.create 256 in
  let pad depth = if not minify then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if not minify then Buffer.add_char buf '\n' in
  let rec go depth j =
    match j with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float x -> Buffer.add_string buf (float_repr x)
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun k item ->
          if k > 0 then begin Buffer.add_char buf ','; nl () end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Assoc [] -> Buffer.add_string buf "{}"
    | Assoc fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun k (key, v) ->
          if k > 0 then begin Buffer.add_char buf ','; nl () end;
          pad (depth + 1);
          Buffer.add_string buf (escape_string key);
          Buffer.add_string buf (if minify then ":" else ": ");
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf
