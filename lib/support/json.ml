(* The shared hand-rolled JSON emitter (no dependency): the only subtle
   parts are string escaping and float formatting, both below. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* JSON has no NaN/Infinity; also "%.17g" can print "1e+3" style
   exponents, which are fine, but never a leading '.' or trailing '.'
   without digits — normalize "1." to "1.0". *)
let float_repr x =
  if Float.is_nan x then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else if x = Float.infinity then "1e999"
  else if x = Float.neg_infinity then "-1e999"
  else Printf.sprintf "%.17g" x

let to_string ?(minify = false) (j : t) : string =
  let buf = Buffer.create 256 in
  let pad depth = if not minify then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if not minify then Buffer.add_char buf '\n' in
  let rec go depth j =
    match j with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float x -> Buffer.add_string buf (float_repr x)
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun k item ->
          if k > 0 then begin Buffer.add_char buf ','; nl () end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Assoc [] -> Buffer.add_string buf "{}"
    | Assoc fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun k (key, v) ->
          if k > 0 then begin Buffer.add_char buf ','; nl () end;
          pad (depth + 1);
          Buffer.add_string buf (escape_string key);
          Buffer.add_string buf (if minify then ":" else ": ");
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 j;
  Buffer.contents buf

(* ------------------------------------------------------------- parser *)

(* A strict parser for the same grammar the emitter produces (plus the
   full standard escape set), added for the compile-service protocol:
   requests arrive as newline-delimited JSON and must round-trip through
   the same [t].  Errors are positions + messages, never exceptions —
   the service answers a malformed line with an error response rather
   than dying.  The test suite's independent parser in [test/harness.ml]
   deliberately stays separate so emitter bugs cannot hide behind this
   consumer. *)
let of_string (s : string) : (t, string) result =
  let pos = ref 0 in
  let len = String.length s in
  let exception Parse of string in
  let fail msg = raise (Parse (Printf.sprintf "at %d: %s" !pos msg)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if
      !pos + String.length word <= len
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > len then fail "truncated \\u escape";
          let code =
            match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
            | Some c -> c
            | None -> fail "bad \\u escape"
          in
          (* ASCII escapes decode; anything wider is preserved as UTF-8
             bytes would be — the emitter only escapes control chars *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_string buf (String.sub s (!pos - 2) 6);
          pos := !pos + 4
        | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "raw control character in string"
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> (
      match float_of_string_opt text with
      | Some x -> Float x
      | None -> fail ("bad number " ^ text))
  in
  let rec parse_value depth =
    if depth > 512 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Assoc []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Assoc (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value (depth + 1) in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "expected a value"
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg

(* -------------------------------------------------- object accessors *)

(* Tiny lookup helpers for protocol decoding: total, defaulting
   accessors over [Assoc] documents. *)

let member (key : string) (j : t) : t option =
  match j with Assoc fields -> List.assoc_opt key fields | _ -> None

let string_member ?default key j =
  match member key j with
  | Some (String s) -> Some s
  | Some _ -> None
  | None -> default

let int_member ?default key j =
  match member key j with
  | Some (Int n) -> Some n
  | Some _ -> None
  | None -> default

let bool_member ?default key j =
  match member key j with
  | Some (Bool b) -> Some b
  | Some _ -> None
  | None -> default
