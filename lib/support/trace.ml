(* See the interface for the contract.  Implementation notes:

   - enablement is two process-global [Atomic.t bool]s read by every
     domain; a disabled site is one atomic load and a branch.  The
     per-compile force used by [collect_remarks] is domain-local (a
     DLS cell), never the global flag — see the note at its
     definition;
   - buffers are per-domain through [Domain.DLS], reversed lists (append
     is a cons); export reverses once;
   - span events are explicit Begin/End pairs rather than completed
     spans, so nesting is encoded by order (deterministically testable)
     and maps 1:1 onto Chrome's "B"/"E" duration events;
   - timestamps are [Unix.gettimeofday] relative to one process-wide
     epoch, in microseconds as the Chrome format wants.  They make span
     *durations* non-deterministic, which is fine: determinism is only
     promised for the remark stream, which carries no timestamps. *)

let spans_flag = Atomic.make false
let remarks_flag = Atomic.make false

let set_spans b = Atomic.set spans_flag b
let set_remarks b = Atomic.set remarks_flag b
let spans_on () = Atomic.get spans_flag
let remarks_on () = Atomic.get remarks_flag

(* [collect_remarks] force-enables remark recording for one domain
   only.  It used to toggle the process-global atomic, which raced
   under the pool: a worker finishing its collection would restore the
   flag to "off" while a sibling was mid-collect, silently truncating
   the sibling's remark stream (observed as nondeterministic remark
   counts in service batches at --jobs > 1). *)
let force_remarks_key : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let remarks_recording () =
  Atomic.get remarks_flag || !(Domain.DLS.get force_remarks_key)

let active () = spans_on () || remarks_on ()

let epoch = Unix.gettimeofday ()

let now_us () = (Unix.gettimeofday () -. epoch) *. 1e6

(* ------------------------------------------------------------ buffers *)

type anchor = {
  a_func : string;
  a_loop : int option;
  a_value : string option;
}

let anchor ?loop ?value a_func = { a_func; a_loop = loop; a_value = value }

type remark =
  | Versioned of { nodes : int; conds : int; phis : int }
  | Cut_found of { edges : int; capacity : int }
  | Cut_infeasible of { flow : int }
  | Check_emitted of { atoms : int; cloned : int }
  | Secondary_plan of { depth : int; plans : int }
  | Plan_infeasible
  | Cond_eliminated of { removed : int }
  | Cond_coalesced of { merged : int }
  | Cond_promoted of { precise : bool }
  | Promotion_failed
  | Pass_applied of { pass : string; work : (string * int) list }
  | Pass_skipped of { pass : string; reason : string }
  | Materialize_aborted of { reason : string }
  | Graph_sparsity of { nodes : int; edges : int; pairs_pruned : int }
  | Wish_granted of { client : string; wanted : string; conds : int;
                      static : bool }
  | Wish_denied of { client : string; wanted : string }
  | Store_eliminated of { forwarded : int; killed : int }
  | Loop_distributed of { pieces : int; conds : int }
  | Cache_hit of { key : string; pipeline : string }

type span_entry =
  | Sbegin of {
      name : string;
      cat : string;
      ts : float;
      tid : int;
      args : (string * Json.t) list;
    }
  | Send of { ts : float; tid : int }

type buf = {
  mutable spans : span_entry list; (* reversed *)
  mutable rems : (anchor * remark) list; (* reversed *)
}

let fresh_buf () = { spans = []; rems = [] }

let buf_key : buf Domain.DLS.key = Domain.DLS.new_key fresh_buf

let cur () = Domain.DLS.get buf_key

let tid () = (Domain.self () :> int)

(* -------------------------------------------------------------- spans *)

let with_span ?(cat = "fgv") ?(args = []) name f =
  if not (spans_on ()) then f ()
  else begin
    let b = cur () in
    b.spans <- Sbegin { name; cat; ts = now_us (); tid = tid (); args } :: b.spans;
    let finish () =
      (* re-fetch: an [isolated] inside the span swapped buffers *)
      let b = cur () in
      b.spans <- Send { ts = now_us (); tid = tid () } :: b.spans
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* ------------------------------------------------------------ remarks *)

let remark a r =
  if remarks_recording () then begin
    let b = cur () in
    b.rems <- (a, r) :: b.rems
  end

(* ------------------------------------------------------------- export *)

let span_event_json = function
  | Sbegin { name; cat; ts; tid; args } ->
    Json.Assoc
      ([
         ("name", Json.String name);
         ("cat", Json.String cat);
         ("ph", Json.String "B");
         ("ts", Json.Float ts);
         ("pid", Json.Int 1);
         ("tid", Json.Int tid);
       ]
      @ if args = [] then [] else [ ("args", Json.Assoc args) ])
  | Send { ts; tid } ->
    Json.Assoc
      [
        ("ph", Json.String "E");
        ("ts", Json.Float ts);
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
      ]

let chrome_trace () : Json.t =
  let entries = List.rev (cur ()).spans in
  let tids =
    List.sort_uniq compare
      (List.map (function Sbegin b -> b.tid | Send e -> e.tid) entries)
  in
  let metadata =
    Json.Assoc
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("args", Json.Assoc [ ("name", Json.String "fgv") ]);
      ]
    :: List.map
         (fun t ->
           Json.Assoc
             [
               ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", Json.Int 1);
               ("tid", Json.Int t);
               ( "args",
                 Json.Assoc
                   [ ("name", Json.String (Printf.sprintf "domain %d" t)) ] );
             ])
         tids
  in
  Json.Assoc
    [
      ("traceEvents", Json.List (metadata @ List.map span_event_json entries));
      ("displayTimeUnit", Json.String "ms");
      ("otherData", Json.Assoc [ ("schema_version", Json.Int Version.trace_schema) ]);
    ]

let write_chrome_trace file =
  let oc = open_out file in
  output_string oc (Json.to_string (chrome_trace ()));
  output_char oc '\n';
  close_out oc

let remarks () = List.rev (cur ()).rems

let slug_and_payload :
    remark -> string * (string * Json.t) list = function
  | Versioned { nodes; conds; phis } ->
    ( "versioned",
      [ ("nodes", Json.Int nodes); ("conds", Json.Int conds);
        ("phis", Json.Int phis) ] )
  | Cut_found { edges; capacity } ->
    ("cut-found", [ ("edges", Json.Int edges); ("capacity", Json.Int capacity) ])
  | Cut_infeasible { flow } -> ("cut-infeasible", [ ("flow", Json.Int flow) ])
  | Check_emitted { atoms; cloned } ->
    ( "check-emitted",
      [ ("atoms", Json.Int atoms); ("cloned", Json.Int cloned) ] )
  | Secondary_plan { depth; plans } ->
    ( "secondary-plan",
      [ ("depth", Json.Int depth); ("plans", Json.Int plans) ] )
  | Plan_infeasible -> ("plan-infeasible", [])
  | Cond_eliminated { removed } ->
    ("cond-eliminated", [ ("removed", Json.Int removed) ])
  | Cond_coalesced { merged } ->
    ("cond-coalesced", [ ("merged", Json.Int merged) ])
  | Cond_promoted { precise } ->
    ("cond-promoted", [ ("precise", Json.Bool precise) ])
  | Promotion_failed -> ("promotion-failed", [])
  | Pass_applied { pass; work } ->
    ( "pass-applied",
      ("pass", Json.String pass)
      :: List.map (fun (k, v) -> (k, Json.Int v)) work )
  | Pass_skipped { pass; reason } ->
    ( "pass-skipped",
      [ ("pass", Json.String pass); ("reason", Json.String reason) ] )
  | Materialize_aborted { reason } ->
    ("materialize-aborted", [ ("reason", Json.String reason) ])
  | Graph_sparsity { nodes; edges; pairs_pruned } ->
    ( "graph-sparsity",
      [ ("nodes", Json.Int nodes); ("edges", Json.Int edges);
        ("pairs_pruned", Json.Int pairs_pruned) ] )
  | Wish_granted { client; wanted; conds; static } ->
    ( "wish-granted",
      [ ("client", Json.String client); ("wanted", Json.String wanted);
        ("conds", Json.Int conds); ("static", Json.Bool static) ] )
  | Wish_denied { client; wanted } ->
    ( "wish-denied",
      [ ("client", Json.String client); ("wanted", Json.String wanted) ] )
  | Store_eliminated { forwarded; killed } ->
    ( "store-eliminated",
      [ ("forwarded", Json.Int forwarded); ("killed", Json.Int killed) ] )
  | Loop_distributed { pieces; conds } ->
    ( "loop-distributed",
      [ ("pieces", Json.Int pieces); ("conds", Json.Int conds) ] )
  | Cache_hit { key; pipeline } ->
    ( "cache-hit",
      [ ("key", Json.String key); ("pipeline", Json.String pipeline) ] )

let remark_json (a, r) : Json.t =
  let slug, payload = slug_and_payload r in
  Json.Assoc
    (("remark", Json.String slug)
     :: ("function", Json.String a.a_func)
     :: (match a.a_loop with
        | Some l -> [ ("loop", Json.Int l) ]
        | None -> [])
    @ (match a.a_value with
      | Some v -> [ ("value", Json.String v) ]
      | None -> [])
    @ payload)

let remark_message = function
  | Versioned { nodes; conds; phis } ->
    Printf.sprintf
      "versioned %d node(s) under %d run-time condition(s), %d versioning \
       phi(s)"
      nodes conds phis
  | Cut_found { edges; capacity } ->
    Printf.sprintf
      "min-cut severed %d conditional dependence edge(s) (capacity %d)" edges
      capacity
  | Cut_infeasible { flow } ->
    Printf.sprintf
      "cut infeasible: separating the nodes requires severing an \
       unconditional dependence (flow %d)"
      flow
  | Check_emitted { atoms; cloned } ->
    Printf.sprintf
      "emitted run-time check of %d condition atom(s), cloning %d \
       operand-chain instruction(s)"
      atoms cloned
  | Secondary_plan { depth; plans } ->
    Printf.sprintf
      "plan inference recursed: %d plan(s) in a secondary tree of depth %d"
      plans depth
  | Plan_infeasible -> "no versioning plan makes the requested nodes independent"
  | Cond_eliminated { removed } ->
    Printf.sprintf "redundant-condition elimination removed %d atom(s)" removed
  | Cond_coalesced { merged } ->
    Printf.sprintf "condition coalescing merged %d atom(s) into hulls" merged
  | Cond_promoted { precise } ->
    if precise then "check promoted out of enclosing loops (precise: no widening)"
    else "check promoted out of enclosing loops (imprecise: ranges widened)"
  | Promotion_failed -> "condition promotion failed; check kept loop-variant"
  | Pass_applied { pass; work } ->
    Printf.sprintf "%s: %s" pass
      (if work = [] then "applied"
       else
         String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) work))
  | Pass_skipped { pass; reason } -> Printf.sprintf "%s skipped: %s" pass reason
  | Materialize_aborted { reason } ->
    Printf.sprintf "plan materialization aborted: %s" reason
  | Graph_sparsity { nodes; edges; pairs_pruned } ->
    Printf.sprintf
      "dependence graph: %d node(s), %d edge(s), %d candidate pair(s) pruned \
       without computing a condition"
      nodes edges pairs_pruned
  | Wish_granted { client; wanted; conds; static } ->
    if static then
      Printf.sprintf "%s: wish for %s already holds (no checks needed)" client
        wanted
    else
      Printf.sprintf "%s: wish for %s granted under %d run-time condition(s)"
        client wanted conds
  | Wish_denied { client; wanted } ->
    Printf.sprintf "%s: wish for %s denied (dependence not versionable)"
      client wanted
  | Store_eliminated { forwarded; killed } ->
    Printf.sprintf "forwarded %d stored value(s) to loads, killed %d dead \
                    store(s)"
      forwarded killed
  | Loop_distributed { pieces; conds } ->
    Printf.sprintf
      "loop distributed into %d sub-loop(s) under %d run-time condition(s)"
      pieces conds
  | Cache_hit { key; pipeline } ->
    Printf.sprintf "served from artifact cache (pipeline %s, key %s)" pipeline
      key

let remark_text (a, r) =
  let loc =
    a.a_func
    ^ (match a.a_loop with Some l -> Printf.sprintf ":L%d" l | None -> "")
    ^ match a.a_value with Some v -> ":" ^ v | None -> ""
  in
  Printf.sprintf "remark: %s: %s" loc (remark_message r)

let remarks_jsonl () =
  String.concat ""
    (List.map
       (fun r -> Json.to_string ~minify:true (remark_json r) ^ "\n")
       (remarks ()))

let remarks_report () =
  String.concat "" (List.map (fun r -> remark_text r ^ "\n") (remarks ()))

let reset () =
  let b = cur () in
  b.spans <- [];
  b.rems <- []

(* ------------------------------------------------------------- shards *)

type shard = {
  sh_spans : span_entry list; (* in order *)
  sh_rems : (anchor * remark) list; (* in order *)
}

let empty_shard = { sh_spans = []; sh_rems = [] }

let shard_is_empty s = s.sh_spans = [] && s.sh_rems = []

let isolated f =
  let saved = cur () in
  Domain.DLS.set buf_key (fresh_buf ());
  match f () with
  | v ->
    let b = cur () in
    let shard = { sh_spans = List.rev b.spans; sh_rems = List.rev b.rems } in
    Domain.DLS.set buf_key saved;
    (v, shard)
  | exception e ->
    Domain.DLS.set buf_key saved;
    raise e

let merge_shard s =
  if not (shard_is_empty s) then begin
    let b = cur () in
    b.spans <- List.rev_append s.sh_spans b.spans;
    b.rems <- List.rev_append s.sh_rems b.rems
  end

let collect_remarks f =
  let force = Domain.DLS.get force_remarks_key in
  let saved = !force in
  force := true;
  match isolated f with
  | v, shard ->
    force := saved;
    (v, shard.sh_rems)
  | exception e ->
    force := saved;
    raise e
