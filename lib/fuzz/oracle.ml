(* Multi-oracle equivalence checker for the differential-fuzzing
   subsystem.

   One generated program is judged by three oracles:

   1. the PSSA reference interpreter on the *untransformed* function
      (ground truth);
   2. the PSSA interpreter on the function after a full optimization
      pipeline;
   3. the CFG interpreter ({!Fgv_cfg.Cinterp}) on the transformed
      function lowered through {!Fgv_cfg.Lower} — which cross-checks the
      CFG lowering itself, not just the pipeline;
   4. (opt-in, [~native:true]) the native C backend: the CFG program is
      lowered to checked C ({!Fgv_backend.Emit.checked}), compiled with
      the system toolchain, and executed as a separate process — which
      cross-checks the C lowering and the pinned {!Fgv_pssa.Intsem}
      semantics against real hardware arithmetic.  One compile serves
      every binding layout (arguments travel on argv).  When no C
      compiler is on PATH the native oracle silently stands down, so
      campaigns behave identically minus the extra coverage.

   All three must agree on the observable behaviour — final memory plus
   the ordered impure-call trace — under *every* binding layout the
   generator's binding generator produces (disjoint, identical,
   partially overlapping bases).  Additionally {!Fgv_pssa.Verifier} runs
   after every individual pass (via the pipelines' [?on_pass] hook), so
   an IR invariant broken by one transform is blamed on that transform,
   not discovered at the end of the pipeline.

   Runs that trap are classified by trap kind: both sides raising
   {!Fgv_pssa.Value.Undef_access} on the same operation (or both
   trapping, or both running out of fuel) counts as agreement — the
   transformed program is allowed to fault exactly like the original —
   while a trap on one side only is a mismatch. *)

open Fgv_pssa
open Fgv_frontend
module P = Fgv_passes
module Tm = Fgv_support.Telemetry
module N = Fgv_backend.Native

type observation = {
  o_mem : Value.t array;
  o_trace : (string * Value.t list) list;
}

type run_class =
  | Finished of observation
  | Trapped of string  (** [Value.Trap] message *)
  | Undef_trap of string  (** [Value.Undef_access] operation *)
  | Exhausted  (** interpreter fuel ran out *)

(* Raised out of the [?on_pass] hook so a broken invariant names the
   offending pass. *)
exception Pass_broke_ir of { pass : string; message : string }

type mismatch = {
  mm_pipeline : string;
  mm_kind : string;
      (** "verifier" | "pssa-diff" | "cfg-diff" | "pipeline-crash"
          | "cfg-lower-crash" | "native-compile-crash" | "native-crash"
          | "native-diff" *)
  mm_pass : string option;  (** for "verifier": the offending pass *)
  mm_binding : int list;  (** pointer bases; [] when not binding-specific *)
  mm_detail : string;
}

let mismatch_to_string m =
  Printf.sprintf "[%s/%s%s]%s %s" m.mm_pipeline m.mm_kind
    (match m.mm_pass with Some p -> " after " ^ p | None -> "")
    (match m.mm_binding with
    | [] -> ""
    | bs -> " bases=" ^ String.concat "," (List.map string_of_int bs))
    m.mm_detail

(* ----------------------------------------------------------- pipelines *)

(* Every pipeline in {!Fgv_passes.Pipelines.registry}, under the same
   names the [fgvc] driver and the compile service use — the oracle
   sweep is exactly the shared registry (including "sv+v-nopromo", which
   pins condition promotion off so both promotion settings are fuzzed),
   with the per-pass verifier hook made mandatory. *)
let pipelines :
    (string * (on_pass:(string -> Ir.func -> unit) -> Ir.func -> unit)) list =
  List.map
    (fun (name, apply) ->
      (name, fun ~on_pass f -> apply ?on_pass:(Some on_pass) f))
    P.Pipelines.registry

let pipeline_names = List.map fst pipelines

let verify_after_each_pass pass f =
  match Verifier.verify_or_message f with
  | None -> ()
  | Some message -> raise (Pass_broke_ir { pass; message })

(* ----------------------------------------------------------- execution *)

(* Fuel low enough that a pathological program cannot stall a campaign:
   generated loops run at most a few hundred iterations. *)
let fuel = 2_000_000

let classify (run : unit -> observation) : run_class =
  match run () with
  | obs -> Finished obs
  | exception Value.Undef_access op -> Undef_trap op
  | exception Value.Trap msg -> Trapped msg
  | exception Interp.Out_of_fuel | exception Fgv_cfg.Cinterp.Out_of_fuel ->
    Exhausted

let run_pssa config (f : Ir.func) (layout : int list) : run_class =
  Tm.incr "fuzz.oracle_runs";
  classify (fun () ->
      let out =
        Interp.run ~fuel f
          ~args:(Generator.args_for config layout)
          ~mem:(Generator.fresh_mem config)
      in
      { o_mem = out.Interp.memory; o_trace = out.Interp.call_trace })

let run_cfg config (prog : Fgv_cfg.Cir.prog) (layout : int list) : run_class =
  Tm.incr "fuzz.oracle_runs";
  classify (fun () ->
      let out =
        Fgv_cfg.Cinterp.run ~fuel prog
          ~args:(Generator.args_for config layout)
          ~mem:(Generator.fresh_mem config)
      in
      { o_mem = out.Fgv_cfg.Cinterp.memory;
        o_trace = out.Fgv_cfg.Cinterp.call_trace })

let observations_equal (a : observation) (b : observation) =
  Array.length a.o_mem = Array.length b.o_mem
  && Array.for_all2 Value.equal a.o_mem b.o_mem
  && List.length a.o_trace = List.length b.o_trace
  && List.for_all2
       (fun (n1, a1) (n2, a2) ->
         n1 = n2
         && List.length a1 = List.length a2
         && List.for_all2 Value.equal a1 a2)
       a.o_trace b.o_trace

let class_name = function
  | Finished _ -> "finished"
  | Trapped m -> "trap: " ^ m
  | Undef_trap op -> "undef-address " ^ op
  | Exhausted -> "out of fuel"

(* First differing observable, for the report. *)
let diff_detail (a : observation) (b : observation) =
  let cell = ref None in
  Array.iteri
    (fun i x ->
      if !cell = None && not (Value.equal x b.o_mem.(i)) then cell := Some i)
    a.o_mem;
  match !cell with
  | Some i ->
    Printf.sprintf "mem[%d]: reference %s, subject %s" i
      (Value.to_string a.o_mem.(i))
      (Value.to_string b.o_mem.(i))
  | None ->
    Printf.sprintf "impure-call traces differ (reference %d calls: %s; subject %d calls: %s)"
      (List.length a.o_trace)
      (String.concat ";" (List.map fst a.o_trace))
      (List.length b.o_trace)
      (String.concat ";" (List.map fst b.o_trace))

(* Agreement up to identical faulting: equal observations, or the same
   trap class (same operation for undef-address traps). *)
let runs_agree (a : run_class) (b : run_class) : string option =
  match (a, b) with
  | Finished x, Finished y ->
    if observations_equal x y then None else Some (diff_detail x y)
  | Trapped _, Trapped _ -> None
  | Undef_trap x, Undef_trap y ->
    if x = y then None
    else Some (Printf.sprintf "undef-address trap on %s vs %s" x y)
  | Exhausted, Exhausted -> None
  | x, y ->
    Some (Printf.sprintf "reference %s, subject %s" (class_name x) (class_name y))

(* --------------------------------------------------------- the checker *)

(* Compare two PSSA functions observationally over the given layouts
   (used directly by property tests that transform [subject] piecemeal,
   e.g. through the versioning API rather than a whole pipeline). *)
let compare_funcs ~(config : Generator.config) ~layouts ~(label : string)
    (reference : Ir.func) (subject : Ir.func) : mismatch option =
  List.find_map
    (fun layout ->
      let a = run_pssa config reference layout in
      let b = run_pssa config subject layout in
      match runs_agree a b with
      | None -> None
      | Some detail ->
        Tm.incr "fuzz.mismatches";
        Some
          {
            mm_pipeline = label;
            mm_kind = "pssa-diff";
            mm_pass = None;
            mm_binding = layout;
            mm_detail = detail;
          })
    layouts

(* Map a native observation to the shared run classification.  The
   native side cannot carry a trap message, but {!runs_agree} treats any
   two [Trapped] as agreeing regardless of message, so none is needed. *)
let class_of_native (obs : N.obs) : run_class =
  match obs.N.n_class with
  | N.NOk -> Finished { o_mem = obs.N.n_mem; o_trace = obs.N.n_trace }
  | N.NTrap -> Trapped "(native)"
  | N.NUndef op -> Undef_trap op
  | N.NFuel -> Exhausted

(* Fourth oracle: compile the CFG program to checked C once, run it
   natively under every layout, and compare against the PSSA reference
   interpreter. *)
let check_native ~(config : Generator.config) ~layouts ~name
    (reference : Ir.func) (prog : Fgv_cfg.Cir.prog) : mismatch option =
  let mismatch kind binding detail =
    Tm.incr "fuzz.mismatches";
    Some
      {
        mm_pipeline = name;
        mm_kind = kind;
        mm_pass = None;
        mm_binding = binding;
        mm_detail = detail;
      }
  in
  match N.compile_checked ~fuel prog ~mem:(Generator.fresh_mem config) with
  | Error e -> mismatch "native-compile-crash" [] e
  | Ok compiled ->
    let result =
      List.find_map
        (fun layout ->
          Tm.incr "fuzz.native_runs";
          let a = run_pssa config reference layout in
          match
            N.run_checked compiled ~args:(Generator.args_for config layout)
          with
          | Error e -> mismatch "native-crash" layout e
          | Ok obs -> (
            match runs_agree a (class_of_native obs) with
            | None -> None
            | Some detail -> mismatch "native-diff" layout detail))
        layouts
    in
    N.release compiled;
    result

(* Run one pipeline over a fresh lowering of [fd] and check the
   oracles under every layout. *)
let check_pipeline ?(native = false) ~(config : Generator.config)
    (fd : Fgv_frontend.Ast.fdecl) (name : string) : mismatch option =
  let runner =
    match List.assoc_opt name pipelines with
    | Some r -> r
    | None -> invalid_arg ("Oracle.check_pipeline: unknown pipeline " ^ name)
  in
  match Lower_ast.lower_fdecl fd with
  | exception Lower_ast.Error _ ->
    Tm.incr "fuzz.rejected";
    None
  | reference -> (
    let subject = Lower_ast.lower_fdecl fd in
    let layouts = Generator.layouts_for config in
    match runner ~on_pass:verify_after_each_pass subject with
    | exception Pass_broke_ir { pass; message } ->
      Tm.incr "fuzz.mismatches";
      Some
        {
          mm_pipeline = name;
          mm_kind = "verifier";
          mm_pass = Some pass;
          mm_binding = [];
          mm_detail = message;
        }
    | exception e ->
      Tm.incr "fuzz.mismatches";
      Some
        {
          mm_pipeline = name;
          mm_kind = "pipeline-crash";
          mm_pass = None;
          mm_binding = [];
          mm_detail = Printexc.to_string e;
        }
    | () -> (
      match compare_funcs ~config ~layouts ~label:name reference subject with
      | Some m -> Some m
      | None -> (
        (* third oracle: CFG lowering of the transformed function *)
        match Fgv_cfg.Lower.lower subject with
        | exception e ->
          Tm.incr "fuzz.mismatches";
          Some
            {
              mm_pipeline = name;
              mm_kind = "cfg-lower-crash";
              mm_pass = None;
              mm_binding = [];
              mm_detail = Printexc.to_string e;
            }
        | prog -> (
          let cfg_mismatch =
            List.find_map
              (fun layout ->
                let a = run_pssa config reference layout in
                let b = run_cfg config prog layout in
                match runs_agree a b with
                | None -> None
                | Some detail ->
                  Tm.incr "fuzz.mismatches";
                  Some
                    {
                      mm_pipeline = name;
                      mm_kind = "cfg-diff";
                      mm_pass = None;
                      mm_binding = layout;
                      mm_detail = detail;
                    })
              layouts
          in
          match cfg_mismatch with
          | Some m -> Some m
          | None ->
            if native && N.available () then
              check_native ~config ~layouts ~name reference prog
            else None))))

(* Check one program against every requested pipeline; first mismatch
   wins. *)
let check ?(native = false) ?(pipelines = pipeline_names)
    ~(config : Generator.config) (fd : Fgv_frontend.Ast.fdecl) :
    mismatch option =
  Tm.incr "fuzz.programs";
  List.find_map (fun name -> check_pipeline ~native ~config fd name) pipelines
