(* Fuzz-campaign driver: generate N programs, judge each with the
   multi-oracle checker, and on the first mismatch shrink the program
   and produce a machine-readable failure report.

   Per-program seeds are [base_seed + index], and everything the
   generator varies (pointer count, int arrays, restrict) is a function
   of the per-program seed alone, so a reported failure replays with
   [fgvc --fuzz 1 --seed <that seed>].

   Parallelism ([~jobs]): seeds fan out across a {!Fgv_support.Pool} of
   worker domains, but the campaign's observable output is byte-for-byte
   identical at any job count:

   - the reported failure is the one with the LOWEST index, not the
     first one found on the wall clock.  A shared lowest-failing-index
     cell lets in-flight workers skip indices above a known failure,
     while every index below it is still checked — so the minimum is
     exact, matching what the sequential scan stops at;
   - each program is checked under {!Fgv_support.Telemetry.isolated},
     and only the shards of the sequential prefix [0 .. failing index]
     (all of them on a clean campaign) are merged back, in index order.
     Counters such as [fuzz.oracle_runs] therefore match the [--jobs 1]
     run exactly; work done speculatively past a failure is discarded;
   - shrinking runs on the calling domain after the workers join, on
     the same program the sequential campaign would shrink. *)

module Tm = Fgv_support.Telemetry
module Tr = Fgv_support.Trace
module J = Fgv_support.Json
module Pool = Fgv_support.Pool

type failure = {
  f_seed : int;  (** per-program seed: the replay handle *)
  f_index : int;  (** position in the campaign *)
  f_mismatch : Oracle.mismatch;
  f_program : string;  (** rendered original program *)
  f_shrunk : string;  (** rendered minimal reproducer *)
  f_shrunk_stmts : int;
  f_shrink_steps : int;
  f_remarks : (Tr.anchor * Tr.remark) list;
      (** optimization remarks from re-running the failing pipeline on the
          shrunk reproducer: what the compiler *decided* on the minimal
          program that still miscompiles *)
}

type outcome = {
  c_programs : int;
  c_seed : int;
  c_pipelines : string list;
  c_native : bool;  (** was the native differential oracle enabled? *)
  c_failure : failure option;
}

(* A shrink candidate reproduces the failure when the *same pipeline*
   reports a mismatch of the *same kind* — chasing a different bug
   mid-reduction would minimize the wrong thing. *)
let same_failure (m0 : Oracle.mismatch) (m : Oracle.mismatch) =
  m.Oracle.mm_pipeline = m0.Oracle.mm_pipeline
  && m.Oracle.mm_kind = m0.Oracle.mm_kind

let shrink_failure ~native ~config (fd : Fgv_frontend.Ast.fdecl)
    (m0 : Oracle.mismatch) =
  let still_failing cand =
    match
      Oracle.check ~native ~pipelines:[ m0.Oracle.mm_pipeline ] ~config cand
    with
    | Some m -> same_failure m0 m
    | None -> false
  in
  Shrink.shrink ~still_failing fd

let mk_failure ~native ~config ~index ~pseed (fd : Fgv_frontend.Ast.fdecl)
    (m : Oracle.mismatch) : failure =
  let shrunk, steps = shrink_failure ~native ~config fd m in
  (* Re-run the failing pipeline once on the reproducer with remarks
     force-enabled: the decision sequence (cuts, checks, versioned nodes,
     pass work) is the first thing a human wants when triaging.  Telemetry
     from this extra run is isolated away so report counters stay a
     function of the campaign alone. *)
  let (), remarks =
    Tr.collect_remarks (fun () ->
        let (), (_ : Tm.shard) =
          Tm.isolated (fun () ->
              ignore
                (Oracle.check ~native ~pipelines:[ m.Oracle.mm_pipeline ]
                   ~config shrunk))
        in
        ())
  in
  {
    f_seed = pseed;
    f_index = index;
    f_mismatch = m;
    f_program = Generator.render fd;
    f_shrunk = Generator.render shrunk;
    f_shrunk_stmts = Shrink.stmt_count_list shrunk.Fgv_frontend.Ast.fdbody;
    f_shrink_steps = steps;
    f_remarks = remarks;
  }

(* The original sequential scan: stop at the first mismatch. *)
let run_sequential ~native ~config ~pipelines ~n ~seed () : outcome =
  let failure = ref None in
  let i = ref 0 in
  while !failure = None && !i < n do
    let pseed = seed + !i in
    let cfg = Generator.vary config ~seed:pseed in
    let fd = Generator.generate ~config:cfg ~seed:pseed () in
    (match Oracle.check ~native ~pipelines ~config:cfg fd with
    | None -> ()
    | Some m ->
      failure := Some (mk_failure ~native ~config:cfg ~index:!i ~pseed fd m));
    incr i
  done;
  {
    c_programs = !i;
    c_seed = seed;
    c_pipelines = pipelines;
    c_native = native;
    c_failure = !failure;
  }

(* Parallel scan over all indices with an early-exit watermark.  A task
   bails only when its index is ABOVE the best (lowest) failing index
   known so far; the watermark only ever decreases, so every index at
   or below the final minimum is guaranteed to have run — the minimum
   is exact, not a race winner. *)
let run_parallel ~native ~config ~pipelines ~jobs ~n ~seed () : outcome =
  let watermark = Atomic.make max_int in
  let rec lower_to i =
    let cur = Atomic.get watermark in
    if i < cur && not (Atomic.compare_and_set watermark cur i) then lower_to i
  in
  let check_one i =
    if i > Atomic.get watermark then None
    else begin
      let pseed = seed + i in
      let cfg = Generator.vary config ~seed:pseed in
      let fd = Generator.generate ~config:cfg ~seed:pseed () in
      (* trace events are isolated per task for the same reason telemetry
         is: only the sequential prefix's shards are replayed below, in
         index order, so the remark stream is byte-identical at any job
         count.  (The pool's own per-task trace isolation then sees an
         empty buffer and merges nothing.) *)
      let (verdict, shard), tshard =
        Tr.isolated (fun () ->
            Tm.isolated (fun () ->
                Oracle.check ~native ~pipelines ~config:cfg fd))
      in
      (match verdict with Some _ -> lower_to i | None -> ());
      Some (verdict, shard, tshard, fd, cfg, pseed)
    end
  in
  let results = Pool.map ~jobs check_one (List.init n Fun.id) in
  let results = Array.of_list results in
  let k = Atomic.get watermark in
  let last = if k = max_int then n - 1 else k in
  (* replay the sequential prefix's telemetry in index order *)
  for i = 0 to last do
    match results.(i) with
    | Some (_, shard, tshard, _, _, _) ->
      Tm.merge_shard shard;
      Tr.merge_shard tshard
    | None -> assert false (* i <= watermark: the task cannot have bailed *)
  done;
  let failure =
    if k = max_int then None
    else
      match results.(k) with
      | Some (Some m, _, _, fd, cfg, pseed) ->
        Some (mk_failure ~native ~config:cfg ~index:k ~pseed fd m)
      | _ -> assert false
  in
  {
    c_programs = last + 1;
    c_seed = seed;
    c_pipelines = pipelines;
    c_native = native;
    c_failure = failure;
  }

let run ?(native = false) ?(config = Generator.default_config)
    ?(pipelines = Oracle.pipeline_names) ?(jobs = 1) ~n ~seed () : outcome =
  Tm.time "fuzz.campaign" (fun () ->
      if n <= 0 then
        { c_programs = 0; c_seed = seed; c_pipelines = pipelines;
          c_native = native; c_failure = None }
      else if jobs <= 1 then
        run_sequential ~native ~config ~pipelines ~n ~seed ()
      else run_parallel ~native ~config ~pipelines ~jobs ~n ~seed ())

(* ------------------------------------------------------------- report *)

let failure_json (f : failure) : J.t =
  let m = f.f_mismatch in
  J.Assoc
    [
      ("seed", J.Int f.f_seed);
      ("index", J.Int f.f_index);
      ("pipeline", J.String m.Oracle.mm_pipeline);
      ("kind", J.String m.Oracle.mm_kind);
      ( "pass",
        match m.Oracle.mm_pass with
        | Some p -> J.String p
        | None -> J.Null );
      ("binding", J.List (List.map (fun b -> J.Int b) m.Oracle.mm_binding));
      ("detail", J.String m.Oracle.mm_detail);
      ("program", J.String f.f_program);
      ("shrunk", J.String f.f_shrunk);
      ("shrunk_stmts", J.Int f.f_shrunk_stmts);
      ("shrink_steps", J.Int f.f_shrink_steps);
      ("remarks", J.List (List.map Tr.remark_json f.f_remarks));
      ( "reproduce",
        J.String
          (Printf.sprintf "fgvc --fuzz 1 --seed %d --pipeline %s" f.f_seed
             m.Oracle.mm_pipeline) );
    ]

(* Deliberately contains no [jobs] field and no timings: the report is
   a function of (n, seed, pipelines, code under test) alone, and CI
   pins that it is byte-identical across job counts. *)
let report_json (o : outcome) : J.t =
  J.Assoc
    [
      ("schema_version", J.Int Fgv_support.Version.fuzz_report_schema);
      ("tool", J.String "fgvc --fuzz");
      ("programs", J.Int o.c_programs);
      ("seed", J.Int o.c_seed);
      ("pipelines", J.List (List.map (fun p -> J.String p) o.c_pipelines));
      ("native", J.Bool o.c_native);
      ("oracle_runs", J.Int (Tm.get "fuzz.oracle_runs"));
      ("native_runs", J.Int (Tm.get "fuzz.native_runs"));
      ("mismatches", J.Int (Tm.get "fuzz.mismatches"));
      ( "failure",
        match o.c_failure with
        | None -> J.Null
        | Some f -> failure_json f );
    ]
