(* Fuzz-campaign driver: generate N programs, judge each with the
   multi-oracle checker, and on the first mismatch shrink the program
   and produce a machine-readable failure report.

   Per-program seeds are [base_seed + index], and everything the
   generator varies (pointer count, int arrays, restrict) is a function
   of the per-program seed alone, so a reported failure replays with
   [fgvc --fuzz 1 --seed <that seed>]. *)

module Tm = Fgv_support.Telemetry

type failure = {
  f_seed : int;  (** per-program seed: the replay handle *)
  f_index : int;  (** position in the campaign *)
  f_mismatch : Oracle.mismatch;
  f_program : string;  (** rendered original program *)
  f_shrunk : string;  (** rendered minimal reproducer *)
  f_shrunk_stmts : int;
  f_shrink_steps : int;
}

type outcome = {
  c_programs : int;
  c_seed : int;
  c_pipelines : string list;
  c_failure : failure option;
}

(* A shrink candidate reproduces the failure when the *same pipeline*
   reports a mismatch of the *same kind* — chasing a different bug
   mid-reduction would minimize the wrong thing. *)
let same_failure (m0 : Oracle.mismatch) (m : Oracle.mismatch) =
  m.Oracle.mm_pipeline = m0.Oracle.mm_pipeline
  && m.Oracle.mm_kind = m0.Oracle.mm_kind

let shrink_failure ~config (fd : Fgv_frontend.Ast.fdecl)
    (m0 : Oracle.mismatch) =
  let still_failing cand =
    match
      Oracle.check ~pipelines:[ m0.Oracle.mm_pipeline ] ~config cand
    with
    | Some m -> same_failure m0 m
    | None -> false
  in
  Shrink.shrink ~still_failing fd

let run ?(config = Generator.default_config)
    ?(pipelines = Oracle.pipeline_names) ~n ~seed () : outcome =
  Tm.time "fuzz.campaign" (fun () ->
      let failure = ref None in
      let i = ref 0 in
      while !failure = None && !i < n do
        let pseed = seed + !i in
        let cfg = Generator.vary config ~seed:pseed in
        let fd = Generator.generate ~config:cfg ~seed:pseed () in
        (match Oracle.check ~pipelines ~config:cfg fd with
        | None -> ()
        | Some m ->
          let shrunk, steps = shrink_failure ~config:cfg fd m in
          failure :=
            Some
              {
                f_seed = pseed;
                f_index = !i;
                f_mismatch = m;
                f_program = Generator.render fd;
                f_shrunk = Generator.render shrunk;
                f_shrunk_stmts = Shrink.stmt_count_list shrunk.Fgv_frontend.Ast.fdbody;
                f_shrink_steps = steps;
              });
        incr i
      done;
      {
        c_programs = !i;
        c_seed = seed;
        c_pipelines = pipelines;
        c_failure = !failure;
      })

(* ------------------------------------------------------------- report *)

let failure_json (f : failure) : Tm.json =
  let m = f.f_mismatch in
  Tm.Assoc
    [
      ("seed", Tm.Int f.f_seed);
      ("index", Tm.Int f.f_index);
      ("pipeline", Tm.String m.Oracle.mm_pipeline);
      ("kind", Tm.String m.Oracle.mm_kind);
      ( "pass",
        match m.Oracle.mm_pass with
        | Some p -> Tm.String p
        | None -> Tm.Null );
      ("binding", Tm.List (List.map (fun b -> Tm.Int b) m.Oracle.mm_binding));
      ("detail", Tm.String m.Oracle.mm_detail);
      ("program", Tm.String f.f_program);
      ("shrunk", Tm.String f.f_shrunk);
      ("shrunk_stmts", Tm.Int f.f_shrunk_stmts);
      ("shrink_steps", Tm.Int f.f_shrink_steps);
      ( "reproduce",
        Tm.String
          (Printf.sprintf "fgvc --fuzz 1 --seed %d --pipeline %s" f.f_seed
             m.Oracle.mm_pipeline) );
    ]

let report_json (o : outcome) : Tm.json =
  Tm.Assoc
    [
      ("schema_version", Tm.Int 1);
      ("tool", Tm.String "fgvc --fuzz");
      ("programs", Tm.Int o.c_programs);
      ("seed", Tm.Int o.c_seed);
      ("pipelines", Tm.List (List.map (fun p -> Tm.String p) o.c_pipelines));
      ("oracle_runs", Tm.Int (Tm.get "fuzz.oracle_runs"));
      ("mismatches", Tm.Int (Tm.get "fuzz.mismatches"));
      ( "failure",
        match o.c_failure with
        | None -> Tm.Null
        | Some f -> failure_json f );
    ]
