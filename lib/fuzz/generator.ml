(* Seeded, size-parameterized structured program generator for the
   differential-fuzzing subsystem.

   Programs are mini-C kernels over 2-4 possibly-aliasing pointer
   parameters (float arrays, optionally one int array) plus an [int n]
   trip-count parameter.  The grammar is deliberately richer than the
   hand-written suites: nested counted loops (so secondary / nested
   versioning plans fire), guarded and unconditional stores, scalar
   declarations and loop-carried reassignments, conditionals with else
   branches, impure and read-only opaque calls, ternaries, casts, and
   [restrict]-qualified variants.

   Two invariants make the output useful for differential testing:

   - Determinism: the whole program is a pure function of [(config,
     seed)].  A failure report only needs the seed to reproduce.
   - In-bounds by construction: every index expression is a sum of
     in-scope induction variables and a small constant offset whose
     static maximum stays below {!span}, and the binding layouts bound
     every pointer at least [span] cells from the end of its heap
     region.  Generated programs therefore essentially never trap, so
     oracle runs compare real memory states instead of trap classes.

   The generator is also the home of the *binding* generator: the
   memory layouts (disjoint / identical / partially overlapping bases)
   under which the oracle evaluates each program. *)

open Fgv_frontend
open Fgv_pssa

type config = {
  size : int;  (** statement budget for the whole program *)
  n_ptrs : int;  (** pointer parameters, 2..4 *)
  int_arrays : bool;  (** make the last pointer an [int*] *)
  restrict_ptrs : bool;  (** qualify the pointers [restrict] *)
  max_loop_depth : int;  (** loop nesting allowed (>= 2 nests plans) *)
  allow_calls : bool;  (** impure/readonly opaque calls *)
}

let default_config =
  {
    size = 14;
    n_ptrs = 3;
    int_arrays = false;
    restrict_ptrs = false;
    max_loop_depth = 2;
    allow_calls = true;
  }

(* ------------------------------------------------------------ geometry *)

(* Each pointer's accesses stay within [base, base+span).  Float
   pointers are bound inside [0, float_region); an int pointer inside
   [float_region, heap_cells). *)
let span = 16
let float_region = 64
let heap_cells = 96
let trip_n = 8 (* value of the [n] parameter *)

(* Initial heap: deterministic float pattern in the float region, small
   ints in the int region (so int-array loads type-check at runtime). *)
let fresh_mem (_ : config) : Value.t array =
  Array.init heap_cells (fun i ->
      if i < float_region then
        Value.VFloat (Float.of_int ((i * 11 mod 13) - 6) *. 0.5)
      else Value.VInt ((i * 7 mod 11) - 5))

(* Derive the per-seed configuration the campaign driver uses: pointer
   count, int-array presence and restrict qualification all vary, but
   only as a function of the seed, so one seed reproduces one program. *)
let vary (c : config) ~seed =
  {
    c with
    n_ptrs = 2 + (seed mod 3);
    int_arrays = seed mod 5 = 1;
    restrict_ptrs = seed mod 4 = 3;
  }

let param_names (c : config) =
  List.init c.n_ptrs (fun i -> Printf.sprintf "p%d" i)

let ptr_elem (c : config) i =
  if c.int_arrays && i = c.n_ptrs - 1 then Ast.Tint else Ast.Tfloat

let params (c : config) : Ast.param list =
  List.mapi
    (fun i name ->
      {
        Ast.pname = name;
        pty = Ast.Tptr (ptr_elem c i);
        prestrict = c.restrict_ptrs;
      })
    (param_names c)
  @ [ { Ast.pname = "n"; pty = Ast.Tint; prestrict = false } ]

(* ------------------------------------------------------------ bindings *)

(* Base addresses per pointer.  Float pointers get every aliasing
   relationship the versioning checks must distinguish; a trailing int
   pointer lives in its own region (mixing it into the float region
   would only produce type traps, not interesting aliasing). *)
let layouts (c : config) : int list list =
  let k = if c.int_arrays then c.n_ptrs - 1 else c.n_ptrs in
  let float_layouts =
    [
      List.init k (fun i -> i * span); (* disjoint *)
      List.init k (fun _ -> 0); (* identical *)
      List.init k (fun i -> i * (span / 2)); (* chained half-overlap *)
      List.init k (fun i -> (k - 1 - i) * span); (* disjoint, reversed *)
      List.init k (fun i -> if i < 2 then 0 else i * span);
      (* first two identical *)
      List.init k (fun i -> i * 5); (* tight overlap *)
    ]
  in
  let with_int l = if c.int_arrays then l @ [ float_region ] else l in
  List.sort_uniq compare (List.map with_int float_layouts)

(* Restrict-qualified pointers must not overlap: binding them to
   overlapping regions is undefined behaviour, not a miscompile. *)
let disjoint_layouts (c : config) : int list list =
  let k = if c.int_arrays then c.n_ptrs - 1 else c.n_ptrs in
  let with_int l = if c.int_arrays then l @ [ float_region ] else l in
  List.sort_uniq compare
    [
      with_int (List.init k (fun i -> i * span));
      with_int (List.init k (fun i -> (k - 1 - i) * span));
    ]

let layouts_for (c : config) =
  if c.restrict_ptrs then disjoint_layouts c else layouts c

let args_for (_ : config) (layout : int list) : Value.t list =
  List.map (fun b -> Value.VInt b) layout @ [ Value.VInt trip_n ]

(* ---------------------------------------------------------- generation *)

type scope = {
  mutable fresh : int;
  mutable floats : string list;  (** float scalars in scope *)
  mutable ints : string list;  (** int scalars in scope (non-induction) *)
  mutable ivs : (string * int) list;  (** induction vars, static max *)
  mutable budget : int;  (** statements left to emit *)
  mutable loops : int;  (** loops emitted so far *)
}

let rint st n = if n <= 0 then 0 else Random.State.int st n
let pick st xs = List.nth xs (rint st (List.length xs))
let chance st p = Random.State.float st 1.0 < p

(* A bounded index expression: induction variables plus a constant
   offset, with static maximum < span. *)
let gen_index st (sc : scope) : Ast.expr =
  let rec add_ivs acc bound ivs =
    match ivs with
    | [] -> (acc, bound)
    | (iv, mx) :: rest ->
      if bound + mx < span - 1 && chance st 0.5 then
        add_ivs (Ast.Ebin ("+", acc, Ast.Evar iv)) (bound + mx) rest
      else (acc, bound)
  in
  let ivs =
    (* consider innermost first: shuffle cheaply by rotating *)
    match sc.ivs with
    | [] -> []
    | x :: rest -> if chance st 0.3 then rest @ [ x ] else x :: rest
  in
  let base, bound =
    match ivs with
    | (iv, mx) :: rest when chance st 0.8 ->
      add_ivs (Ast.Evar iv) mx rest
    | _ -> (Ast.Eint 0, 0)
  in
  let off = rint st (span - bound) in
  if off = 0 then base
  else
    match base with
    | Ast.Eint 0 -> Ast.Eint off
    | b -> Ast.Ebin ("+", b, Ast.Eint off)

let float_lit st =
  Ast.Efloat (Float.of_int (rint st 25 - 8) *. 0.25)

let float_ptrs c =
  List.filteri (fun i _ -> ptr_elem c i = Ast.Tfloat) (param_names c)

let int_ptrs c =
  List.filteri (fun i _ -> ptr_elem c i = Ast.Tint) (param_names c)

(* Integer-typed expression (a value, not an address). *)
let rec gen_iexpr st c sc depth : Ast.expr =
  if depth <= 0 then
    match
      List.concat
        [
          [ `Const; `Const ];
          (if sc.ints <> [] then [ `Var ] else []);
          (if sc.ivs <> [] then [ `Iv ] else []);
          (if int_ptrs c <> [] then [ `Load ] else []);
        ]
      |> pick st
    with
    | `Const -> Ast.Eint (rint st 9 - 2)
    | `Var -> Ast.Evar (pick st sc.ints)
    | `Iv -> Ast.Evar (fst (pick st sc.ivs))
    | `Load -> Ast.Eindex (pick st (int_ptrs c), gen_index st sc)
  else
    match rint st 4 with
    | 0 | 1 ->
      Ast.Ebin
        ( pick st [ "+"; "-"; "*" ],
          gen_iexpr st c sc (depth - 1),
          gen_iexpr st c sc (depth - 1) )
    | 2 ->
      Ast.Eternary
        ( gen_bexpr st c sc (depth - 1),
          gen_iexpr st c sc (depth - 1),
          gen_iexpr st c sc (depth - 1) )
    | _ -> gen_iexpr st c sc 0

(* Float-typed expression. *)
and gen_fexpr st c sc depth : Ast.expr =
  if depth <= 0 then
    match
      List.concat
        [
          [ `Const ];
          (if sc.floats <> [] then [ `Var; `Var ] else []);
          (if float_ptrs c <> [] then [ `Load; `Load ] else []);
        ]
      |> pick st
    with
    | `Const -> float_lit st
    | `Var -> Ast.Evar (pick st sc.floats)
    | `Load -> Ast.Eindex (pick st (float_ptrs c), gen_index st sc)
  else
    match rint st 8 with
    | 0 | 1 | 2 ->
      Ast.Ebin
        ( pick st [ "+"; "-"; "*"; "*"; "/" ],
          gen_fexpr st c sc (depth - 1),
          gen_fexpr st c sc (depth - 1) )
    | 3 ->
      Ast.Eternary
        ( gen_bexpr st c sc (depth - 1),
          gen_fexpr st c sc (depth - 1),
          gen_fexpr st c sc (depth - 1) )
    | 4 -> Ast.Ecast (Ast.Tfloat, gen_iexpr st c sc (depth - 1))
    | 5 when chance st 0.5 ->
      Ast.Ecall (pick st [ "fabs"; "sqrt" ], [ gen_fexpr st c sc (depth - 1) ])
    | _ -> gen_fexpr st c sc 0

and gen_bexpr st c sc depth : Ast.expr =
  let cmp =
    if chance st 0.7 || float_ptrs c = [] then
      Ast.Ebin
        ( pick st [ "<"; ">"; "<=" ],
          gen_fexpr st c sc (max 0 (depth - 1)),
          float_lit st )
    else
      Ast.Ebin
        (pick st [ "<"; ">"; "==" ], gen_iexpr st c sc 0, Ast.Eint (rint st 5))
  in
  if depth > 1 && chance st 0.2 then
    Ast.Ebin (pick st [ "&&"; "||" ], cmp, gen_bexpr st c sc (depth - 1))
  else cmp

let gen_store st c sc : Ast.stmt =
  let ptrs = param_names c in
  let i = rint st (List.length ptrs) in
  let p = List.nth ptrs i in
  let value =
    match ptr_elem c i with
    | Ast.Tint -> gen_iexpr st c sc (1 + rint st 2)
    | _ -> gen_fexpr st c sc (1 + rint st 2)
  in
  Ast.Sstore (p, gen_index st sc, value)

let gen_decl st c sc : Ast.stmt =
  let name = Printf.sprintf "x%d" sc.fresh in
  sc.fresh <- sc.fresh + 1;
  if chance st 0.75 || int_ptrs c = [] then begin
    let s = Ast.Sdecl (Ast.Tfloat, name, gen_fexpr st c sc 2) in
    sc.floats <- name :: sc.floats;
    s
  end
  else begin
    let s = Ast.Sdecl (Ast.Tint, name, gen_iexpr st c sc 2) in
    sc.ints <- name :: sc.ints;
    s
  end

let gen_assign st c sc : Ast.stmt option =
  match (sc.floats, sc.ints) with
  | [], [] -> None
  | fs, is ->
    if fs <> [] && (is = [] || chance st 0.7) then
      Some (Ast.Sassign (pick st fs, gen_fexpr st c sc 2))
    else Some (Ast.Sassign (pick st is, gen_iexpr st c sc 2))

let gen_call st c sc : Ast.stmt =
  if not c.allow_calls then gen_store st c sc
  else
    match rint st 3 with
    | 0 -> Ast.Sexpr (Ast.Ecall ("cold_func", []))
    | 1 -> Ast.Sexpr (Ast.Ecall ("opaque_touch", [ Ast.Eint (rint st span) ]))
    | _ ->
      (* guarded rare call: the paper's running-example shape *)
      Ast.Sif
        ( gen_bexpr st c sc 1,
          [ Ast.Sexpr (Ast.Ecall ("cold_func", [])) ],
          [] )

(* Same-address store pair with an optional interleaved may-alias
   access: the DSE client's hot path.  The first store is killable when
   the accesses in between are versioned away; a load of the same cell
   in between is a forwardable load. *)
let gen_dse_pair st c sc : Ast.stmt list =
  sc.budget <- sc.budget - 2;
  let ptrs = param_names c in
  let i = rint st (List.length ptrs) in
  let p = List.nth ptrs i in
  let idx = gen_index st sc in
  let elem = ptr_elem c i in
  let gen_val depth =
    match elem with
    | Ast.Tint -> gen_iexpr st c sc depth
    | _ -> gen_fexpr st c sc depth
  in
  let first = Ast.Sstore (p, idx, gen_val 1) in
  let middle =
    match rint st 4 with
    | 0 -> []
    | 1 -> [ gen_store st c sc ] (* may-alias writer *)
    | 2 ->
      (* read the just-stored cell: a forwardable load *)
      let name = Printf.sprintf "x%d" sc.fresh in
      sc.fresh <- sc.fresh + 1;
      let s = Ast.Sdecl (elem, name, Ast.Eindex (p, idx)) in
      (match elem with
      | Ast.Tint -> sc.ints <- name :: sc.ints
      | _ -> sc.floats <- name :: sc.floats);
      [ s ]
    | _ -> [ Ast.Sif (gen_bexpr st c sc 1, [ gen_store st c sc ], []) ]
  in
  let second =
    (* sometimes accumulate through the cell, giving the pair a flow
       dependence the forwarder must resolve before the kill can fire *)
    if chance st 0.5 then gen_val 1
    else Ast.Ebin ("+", Ast.Eindex (p, idx), gen_val 0)
  in
  (first :: middle) @ [ Ast.Sstore (p, idx, second) ]

(* Snapshot/restore lexical scope around nested blocks: declarations
   inside a branch or loop body are not visible after it. *)
let save sc = (sc.floats, sc.ints, sc.ivs)

let restore sc (f, i, v) =
  sc.floats <- f;
  sc.ints <- i;
  sc.ivs <- v

(* A distribution-shaped loop: a clean elementwise stream fused with a
   loop-carried recurrence through a possibly-aliasing pointer — the
   s222/s2251 shape the distribute client splits. *)
let gen_dist_loop st c sc : Ast.stmt =
  sc.loops <- sc.loops + 1;
  sc.budget <- sc.budget - 1;
  let iv = Printf.sprintf "i%d" sc.fresh in
  sc.fresh <- sc.fresh + 1;
  let trip = 4 + rint st 4 in
  let fps = float_ptrs c in
  let p = pick st fps in
  let q = pick st fps in
  let snap = save sc in
  sc.ivs <- (iv, trip - 1) :: sc.ivs;
  let clean = Ast.Sstore (p, Ast.Evar iv, gen_fexpr st c sc 1) in
  let recur =
    Ast.Sstore
      ( q,
        Ast.Ebin ("+", Ast.Evar iv, Ast.Eint 1),
        Ast.Ebin ("*", Ast.Eindex (q, Ast.Evar iv), float_lit st) )
  in
  let body = if chance st 0.5 then [ clean; recur ] else [ recur; clean ] in
  restore sc snap;
  Ast.Sfor
    ( Ast.Sdecl (Ast.Tint, iv, Ast.Eint 0),
      Ast.Ebin ("<", Ast.Evar iv, Ast.Eint trip),
      Ast.Sassign (iv, Ast.Ebin ("+", Ast.Evar iv, Ast.Eint 1)),
      body )

let rec gen_stmt st c sc ~loop_depth : Ast.stmt list =
  sc.budget <- sc.budget - 1;
  let want_loop =
    loop_depth < c.max_loop_depth && sc.budget > 1
    && chance st (if loop_depth = 0 then 0.35 else 0.45)
  in
  if want_loop then [ gen_loop st c sc ~loop_depth ]
  else
    match rint st 12 with
    | 0 | 1 | 2 -> [ gen_store st c sc ]
    | 3 | 4 -> [ gen_decl st c sc ]
    | 5 -> (
      match gen_assign st c sc with
      | Some s -> [ s ]
      | None -> [ gen_decl st c sc ])
    | 6 -> [ gen_call st c sc ]
    | 7 when sc.budget > 1 -> [ gen_if st c sc ~loop_depth ]
    | 8 -> gen_dse_pair st c sc
    | 9 when loop_depth < c.max_loop_depth && sc.budget > 1 ->
      [ gen_dist_loop st c sc ]
    | _ ->
      (* guarded store: conditional dependence for the framework *)
      [ Ast.Sif (gen_bexpr st c sc 1, [ gen_store st c sc ], []) ]

and gen_if st c sc ~loop_depth : Ast.stmt =
  let cond = gen_bexpr st c sc 2 in
  let snap = save sc in
  let then_ = gen_block st c sc ~loop_depth (1 + rint st 2) in
  restore sc snap;
  let else_ =
    if chance st 0.4 then begin
      let e = gen_block st c sc ~loop_depth (1 + rint st 2) in
      restore sc snap;
      e
    end
    else []
  in
  Ast.Sif (cond, then_, else_)

and gen_loop st c sc ~loop_depth : Ast.stmt =
  sc.loops <- sc.loops + 1;
  let iv = Printf.sprintf "i%d" sc.fresh in
  sc.fresh <- sc.fresh + 1;
  (* counted loop: a small constant trip count, or [n] when no other
     induction variable constrains the index budget *)
  let use_n = sc.ivs = [] && chance st 0.4 in
  let trip = if use_n then trip_n else 2 + rint st 3 in
  let bound = if use_n then Ast.Evar "n" else Ast.Eint trip in
  let snap = save sc in
  sc.ivs <- (iv, trip - 1) :: sc.ivs;
  let body_len = 1 + rint st (if loop_depth = 0 then 3 else 2) in
  let body = gen_block st c sc ~loop_depth:(loop_depth + 1) body_len in
  (* make sure loops touch memory: an empty-effect loop body tests
     nothing the straight-line code doesn't *)
  let body =
    if
      List.exists
        (function
          | Ast.Sstore _ | Ast.Sif _ | Ast.Sfor _ | Ast.Sexpr _ -> true
          | _ -> false)
        body
    then body
    else body @ [ gen_store st c sc ]
  in
  restore sc snap;
  Ast.Sfor
    ( Ast.Sdecl (Ast.Tint, iv, Ast.Eint 0),
      Ast.Ebin ("<", Ast.Evar iv, bound),
      Ast.Sassign (iv, Ast.Ebin ("+", Ast.Evar iv, Ast.Eint 1)),
      body )

and gen_block st c sc ~loop_depth n : Ast.stmt list =
  let rec go acc k =
    if k = 0 || sc.budget <= 0 then List.rev acc
    else go (List.rev_append (gen_stmt st c sc ~loop_depth) acc) (k - 1)
  in
  go [] n

let generate ?(config = default_config) ~seed () : Ast.fdecl =
  let st = Random.State.make [| seed; 0x5eed |] in
  let sc =
    { fresh = 0; floats = []; ints = []; ivs = []; budget = config.size;
      loops = 0 }
  in
  let rec top acc =
    if sc.budget <= 0 then List.rev acc
    else top (List.rev_append (gen_stmt st config sc ~loop_depth:0) acc)
  in
  let body = top [] in
  (* a program with no store has no observable memory behaviour *)
  let body =
    if
      List.exists
        (let rec has_store = function
           | Ast.Sstore _ -> true
           | Ast.Sif (_, t, e) ->
             List.exists has_store t || List.exists has_store e
           | Ast.Sfor (_, _, _, b) | Ast.Swhile (_, b) ->
             List.exists has_store b
           | _ -> false
         in
         has_store)
        body
    then body
    else body @ [ gen_store st config sc ]
  in
  { Ast.fdname = "fuzz"; fdparams = params config; fdbody = body }

(* ----------------------------------------------------------- rendering *)

(* Pretty-print back to *parseable* mini-C, so a failure report is a
   file you can hand straight to [fgvc].  Floats keep a decimal point
   (the lexer would read "2" as an int). *)
let render_float x =
  let s = Printf.sprintf "%.12g" x in
  if String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'n' || ch = 'i') s
  then s
  else s ^ ".0"

let rec render_expr = function
  | Ast.Eint n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
  | Ast.Efloat x ->
    if x < 0.0 then Printf.sprintf "(0.0 - %s)" (render_float (-.x))
    else render_float x
  | Ast.Ebool b -> string_of_bool b
  | Ast.Evar x -> x
  | Ast.Eindex (p, e) -> Printf.sprintf "%s[%s]" p (render_expr e)
  | Ast.Ebin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (render_expr a) op (render_expr b)
  | Ast.Eun (op, a) -> Printf.sprintf "%s(%s)" op (render_expr a)
  | Ast.Eternary (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (render_expr c) (render_expr a)
      (render_expr b)
  | Ast.Ecall (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map render_expr args))
  | Ast.Ecast (t, e) ->
    Printf.sprintf "(%s) (%s)" (Ast.string_of_ty t) (render_expr e)

let rec render_stmt ind s =
  let pad = String.make ind ' ' in
  match s with
  | Ast.Sdecl (t, x, e) ->
    Printf.sprintf "%s%s %s = %s;" pad (Ast.string_of_ty t) x (render_expr e)
  | Ast.Sassign (x, e) -> Printf.sprintf "%s%s = %s;" pad x (render_expr e)
  | Ast.Sstore (p, i, e) ->
    Printf.sprintf "%s%s[%s] = %s;" pad p (render_expr i) (render_expr e)
  | Ast.Sexpr e -> Printf.sprintf "%s%s;" pad (render_expr e)
  | Ast.Sif (c, t, e) ->
    Printf.sprintf "%sif (%s) {\n%s\n%s}%s" pad (render_expr c)
      (render_stmts (ind + 2) t)
      pad
      (if e = [] then ""
       else Printf.sprintf " else {\n%s\n%s}" (render_stmts (ind + 2) e) pad)
  | Ast.Sfor (init, c, step, body) ->
    Printf.sprintf "%sfor (%s; %s; %s) {\n%s\n%s}" pad
      (render_simple init) (render_expr c) (render_simple step)
      (render_stmts (ind + 2) body)
      pad
  | Ast.Swhile (c, body) ->
    Printf.sprintf "%swhile (%s) {\n%s\n%s}" pad (render_expr c)
      (render_stmts (ind + 2) body)
      pad

(* A statement without its trailing ';', as for-headers are parsed. *)
and render_simple s =
  let t = String.trim (render_stmt 0 s) in
  if String.length t > 0 && t.[String.length t - 1] = ';' then
    String.sub t 0 (String.length t - 1)
  else t

and render_stmts ind = function
  | [] -> ""
  | ss -> String.concat "\n" (List.map (render_stmt ind) ss)

let render_param (p : Ast.param) =
  match p.Ast.pty with
  | Ast.Tptr t ->
    Printf.sprintf "%s*%s %s" (Ast.string_of_ty t)
      (if p.Ast.prestrict then " restrict" else "")
      p.Ast.pname
  | t -> Printf.sprintf "%s %s" (Ast.string_of_ty t) p.Ast.pname

let render (fd : Ast.fdecl) =
  Printf.sprintf "kernel %s(%s) {\n%s\n}" fd.Ast.fdname
    (String.concat ", " (List.map render_param fd.Ast.fdparams))
    (render_stmts 2 fd.Ast.fdbody)
