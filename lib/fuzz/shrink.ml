(* Greedy delta-debugging reducer over the mini-C AST.

   Given a failing program and a [still_failing] predicate (normally:
   "the oracle still reports a mismatch of the same kind for the same
   pipeline"), the shrinker repeatedly applies the first single-step
   reduction that keeps the failure alive, until no reduction does (or a
   step cap is hit).  Reductions, roughly by aggressiveness:

   - drop a statement (at any nesting depth);
   - unnest control flow: replace an [if] with one of its branches, a
     loop with [init; body] (one unrolled iteration), a [while] with its
     body;
   - shrink constants toward zero (halving first, so the reducer can
     walk down a magnitude without skipping the interesting value);
   - collapse expressions: a binary operation to one operand, a ternary
     to one arm, an index expression to a constant.

   Type-invalid candidates (dropping a declaration that still has uses,
   collapsing a float expression to an int operand, ...) are rejected by
   the frontend during the oracle re-check, so [still_failing] simply
   returns false for them: no type bookkeeping is needed here.

   Every accepted reduction bumps the [fuzz.shrink_steps] telemetry
   counter; every candidate tried bumps [fuzz.shrink_attempts]. *)

open Fgv_frontend
module Tm = Fgv_support.Telemetry

(* All one-step reductions of an expression (same type where possible;
   ill-typed candidates are filtered by the re-check). *)
let rec shrink_expr (e : Ast.expr) : Ast.expr list =
  match e with
  | Ast.Eint 0 -> []
  | Ast.Eint n ->
    (* jump to zero first: halving alone can take hundreds of accepted
       steps to walk a float down to a denormal *)
    Ast.Eint 0 :: (if n / 2 <> 0 then [ Ast.Eint (n / 2) ] else [])
  | Ast.Efloat x ->
    if x = 0.0 then []
    else
      Ast.Efloat 0.0
      :: (if x /. 2.0 <> 0.0 then [ Ast.Efloat (x /. 2.0) ] else [])
  | Ast.Ebool _ | Ast.Evar _ -> []
  | Ast.Eindex (p, i) ->
    (if i <> Ast.Eint 0 then [ Ast.Eindex (p, Ast.Eint 0) ] else [])
    @ List.map (fun i' -> Ast.Eindex (p, i')) (shrink_expr i)
  | Ast.Ebin (op, a, b) ->
    [ a; b ]
    @ List.map (fun a' -> Ast.Ebin (op, a', b)) (shrink_expr a)
    @ List.map (fun b' -> Ast.Ebin (op, a, b')) (shrink_expr b)
  | Ast.Eun (op, a) ->
    (a :: List.map (fun a' -> Ast.Eun (op, a')) (shrink_expr a))
  | Ast.Eternary (c, a, b) ->
    [ a; b ]
    @ List.map (fun c' -> Ast.Eternary (c', a, b)) (shrink_expr c)
    @ List.map (fun a' -> Ast.Eternary (c, a', b)) (shrink_expr a)
    @ List.map (fun b' -> Ast.Eternary (c, a, b')) (shrink_expr b)
  | Ast.Ecall (f, args) ->
    List.mapi
      (fun i _ ->
        List.map
          (fun a' ->
            Ast.Ecall (f, List.mapi (fun j a -> if i = j then a' else a) args))
          (shrink_expr (List.nth args i)))
      args
    |> List.concat
  | Ast.Ecast (t, a) ->
    List.map (fun a' -> Ast.Ecast (t, a')) (shrink_expr a)

(* One-step reductions of a single statement.  Each candidate is the
   replacement statement *list* (a structural reduction may splice in
   several statements, or none). *)
let rec shrink_stmt (s : Ast.stmt) : Ast.stmt list list =
  match s with
  | Ast.Sdecl (t, x, e) ->
    List.map (fun e' -> [ Ast.Sdecl (t, x, e') ]) (shrink_expr e)
  | Ast.Sassign (x, e) ->
    List.map (fun e' -> [ Ast.Sassign (x, e') ]) (shrink_expr e)
  | Ast.Sstore (p, i, e) ->
    List.map (fun i' -> [ Ast.Sstore (p, i', e) ]) (shrink_expr i)
    @ List.map (fun e' -> [ Ast.Sstore (p, i, e') ]) (shrink_expr e)
  | Ast.Sexpr e -> List.map (fun e' -> [ Ast.Sexpr e' ]) (shrink_expr e)
  | Ast.Sif (c, t, e) ->
    [ t; e ]
    @ List.map (fun t' -> [ Ast.Sif (c, t', e) ]) (shrink_stmts t)
    @ List.map (fun e' -> [ Ast.Sif (c, t, e') ]) (shrink_stmts e)
    @ List.map (fun c' -> [ Ast.Sif (c', t, e) ]) (shrink_expr c)
  | Ast.Sfor (init, c, step, body) ->
    (* unnest: one unrolled iteration keeps the induction variable's
       declaration in scope for the body *)
    [ init :: body ]
    @ List.map (fun b' -> [ Ast.Sfor (init, c, step, b') ]) (shrink_stmts body)
    @ List.map (fun c' -> [ Ast.Sfor (init, c', step, body) ]) (shrink_expr c)
  | Ast.Swhile (c, body) ->
    [ body ]
    @ List.map (fun b' -> [ Ast.Swhile (c, b') ]) (shrink_stmts body)

(* All one-step reductions of a statement list: drop one statement, or
   reduce one statement in place. *)
and shrink_stmts (ss : Ast.stmt list) : Ast.stmt list list =
  let drops =
    List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) ss) ss
  in
  let replaced =
    List.concat
      (List.mapi
         (fun i s ->
           List.map
             (fun repl ->
               List.concat
                 (List.mapi (fun j s' -> if i = j then repl else [ s' ]) ss))
             (shrink_stmt s))
         ss)
  in
  drops @ replaced

let candidates (fd : Ast.fdecl) : Ast.fdecl list =
  List.map (fun body -> { fd with Ast.fdbody = body }) (shrink_stmts fd.Ast.fdbody)

(* Greedy reduction loop: take the first candidate that still fails,
   restart from it; stop at a fixpoint or after [max_steps] accepted
   reductions.  Returns the reduced program and the number of accepted
   steps. *)
let shrink ?(max_steps = 500) ~(still_failing : Ast.fdecl -> bool)
    (fd0 : Ast.fdecl) : Ast.fdecl * int =
  let steps = ref 0 in
  let rec go fd =
    if !steps >= max_steps then fd
    else
      let next =
        List.find_opt
          (fun c ->
            Tm.incr "fuzz.shrink_attempts";
            still_failing c)
          (candidates fd)
      in
      match next with
      | Some c ->
        incr steps;
        Tm.incr "fuzz.shrink_steps";
        go c
      | None -> fd
  in
  let reduced = go fd0 in
  (reduced, !steps)

(* Statement count of a program (all nesting levels), for reporting and
   for the test suite's "shrinks to <= k statements" assertions. *)
let rec stmt_count_list ss = List.fold_left (fun n s -> n + stmt_count s) 0 ss

and stmt_count = function
  | Ast.Sdecl _ | Ast.Sassign _ | Ast.Sstore _ | Ast.Sexpr _ -> 1
  | Ast.Sif (_, t, e) -> 1 + stmt_count_list t + stmt_count_list e
  | Ast.Sfor (init, _, step, body) ->
    1 + stmt_count init + stmt_count step + stmt_count_list body
  | Ast.Swhile (_, body) -> 1 + stmt_count_list body
