(* Interpreter for the CFG IR with dynamic counters.

   This is where the paper-style performance counters come from: executed
   branches (conditional branches taken or not), dynamically executed
   loads/stores, and total instructions. *)

open Fgv_pssa
module C = Cir

type counters = {
  mutable insts : int;
  mutable branches : int; (* conditional branches executed *)
  mutable loads : int;
  mutable vector_loads : int;
  mutable stores : int;
  mutable vector_stores : int;
  mutable calls : int;
}

let new_counters () =
  {
    insts = 0;
    branches = 0;
    loads = 0;
    vector_loads = 0;
    stores = 0;
    vector_stores = 0;
    calls = 0;
  }

type outcome = {
  memory : Value.t array;
  call_trace : (string * Value.t list) list;
  counters : counters;
}

exception Out_of_fuel

let run ?(fuel = 100_000_000) ?(ffi = Interp.default_ffi) (p : C.prog)
    ~(args : Value.t list) ~(mem : Value.t array) : outcome =
  let env : (C.cvalue, Value.t) Hashtbl.t = Hashtbl.create 256 in
  let counters = new_counters () in
  let trace = ref [] in
  let fuel_left = ref fuel in
  let lookup v = Option.value ~default:Value.VUndef (Hashtbl.find_opt env v) in
  let check_addr a =
    if a < 0 || a >= Array.length mem then
      Value.trap "out-of-bounds access at %d" a
  in
  let exec_inst prev_block (i : C.cinst) : Value.t =
    decr fuel_left;
    if !fuel_left <= 0 then raise Out_of_fuel;
    counters.insts <- counters.insts + 1;
    match i.ck with
    | KConst (Cint n) -> VInt n
    | KConst (Cfloat x) -> VFloat x
    | KConst (Cbool b) -> VBool b
    | KConst (Cundef _) -> VUndef
    | KArg n -> (
      match List.nth_opt args n with
      | Some v -> v
      | None -> Value.trap "missing argument %d" n)
    | KBinop (op, a, b) ->
      Interp.lanewise2 (Interp.apply_binop op) (lookup a) (lookup b)
    | KCmp (op, a, b) ->
      Interp.lanewise2 (Interp.apply_cmp op) (lookup a) (lookup b)
    | KCast (t, a) ->
      let rec cast1 v =
        if Value.is_undef v then Value.VUndef
        else
          match v, t with
          | Value.VVec xs, _ -> Value.VVec (Array.map cast1 xs)
          | _, (Ir.Tfloat | Ir.Tvec (Ir.Tfloat, _)) ->
            VFloat (Intsem.to_float (Value.to_int v))
          | _, (Ir.Tint | Ir.Tvec (Ir.Tint, _)) ->
            VInt (Intsem.of_float (Value.to_float v))
          | _, (Ir.Tbool | Ir.Tvec (Ir.Tbool, _)) -> VBool (Value.to_bool v)
          | _ -> Value.trap "unsupported cast"
      in
      cast1 (lookup a)
    | KNot a -> VBool (not (Value.to_bool (lookup a)))
    | KSelect (c, a, b) -> (
      match lookup c with
      | VVec lanes ->
        let tv = lookup a and fv = lookup b in
        let pick src k = match src with Value.VVec xs -> xs.(k) | s -> s in
        VVec
          (Array.mapi
             (fun k v -> if Value.to_bool v then pick tv k else pick fv k)
             lanes)
      | cv -> if Value.to_bool cv then lookup a else lookup b)
    | KPhi ops -> (
      match List.assoc_opt prev_block ops with
      | Some v -> lookup v
      | None -> Value.trap "phi: no incoming for predecessor b%d" prev_block)
    | KLoad a -> (
      let av = lookup a in
      if Value.is_undef av then Value.undef_access "load";
      let addr = Value.to_int av in
      match i.cty with
      | Ir.Tvec (_, n) ->
        counters.vector_loads <- counters.vector_loads + 1;
        check_addr addr;
        check_addr (addr + n - 1);
        VVec (Array.init n (fun k -> mem.(addr + k)))
      | _ ->
        counters.loads <- counters.loads + 1;
        check_addr addr;
        mem.(addr))
    | KStore (a, x) -> (
      let av = lookup a in
      if Value.is_undef av then Value.undef_access "store";
      let addr = Value.to_int av in
      match lookup x with
      | VVec lanes ->
        counters.vector_stores <- counters.vector_stores + 1;
        check_addr addr;
        check_addr (addr + Array.length lanes - 1);
        Array.iteri (fun k v -> mem.(addr + k) <- v) lanes;
        VUndef
      | v ->
        counters.stores <- counters.stores + 1;
        check_addr addr;
        mem.(addr) <- v;
        VUndef)
    | KCall (callee, cargs, effect) -> (
      counters.calls <- counters.calls + 1;
      let argv = List.map lookup cargs in
      if effect = Ir.Impure then trace := (callee, argv) :: !trace;
      match List.assoc_opt callee ffi with
      | Some fn -> fn argv mem
      | None -> Value.trap "unknown external function %s" callee)
    | KSplat a -> (
      match i.cty with
      | Ir.Tvec (_, n) -> VVec (Array.make n (lookup a))
      | _ -> Value.trap "splat with non-vector type")
    | KVecbuild vs -> VVec (Array.of_list (List.map lookup vs))
    | KExtract (a, k) -> (
      match lookup a with
      | VVec xs when k < Array.length xs -> xs.(k)
      | VUndef -> VUndef
      | _ -> Value.trap "bad extract")
  in
  let prev = ref (-1) and cur = ref p.entry and running = ref true in
  while !running do
    let b = C.block p !cur in
    (* phis in a block are conceptually parallel; all our phis only read
       values from predecessor blocks, so sequential evaluation is safe *)
    List.iter (fun i -> Hashtbl.replace env i.C.cid (exec_inst !prev i)) b.insts;
    match b.term with
    | Br next ->
      prev := !cur;
      cur := next
    | CondBr (c, t, e) ->
      counters.branches <- counters.branches + 1;
      prev := !cur;
      cur := if Value.to_bool (lookup c) then t else e
    | Ret -> running := false
  done;
  { memory = mem; call_trace = List.rev !trace; counters }
