(* Lowering from predicated SSA to CFG SSA.

   Strategy:
   - consecutive instructions sharing the same non-trivial predicate are
     grouped into one guarded diamond (one conditional branch per group);
     values defined inside a diamond are merged with phis (undef on the
     skip path), so any later use sees a dominating definition;
   - PSSA gated phis become select chains over their operand predicates
     (data-flow equivalent and insensitive to block placement);
   - loops become guard / header / latch / exit structure: mus turn into
     header phis (init from the preheader, recur from the latch) and etas
     into exit-join phis (recur value from the latch, init/undef when the
     guard skipped the loop). *)

open Fgv_pssa
module C = Cir

type env = {
  prog : C.prog;
  func : Ir.func;
  values : (Ir.value_id, C.cvalue) Hashtbl.t;
  mutable cur : C.block;
}

let lookup st v =
  match Hashtbl.find_opt st.values v with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Lower: value v%d not lowered yet" v)

(* Materialize a predicate as a boolean cvalue in the current block. *)
let rec lower_pred st (p : Pred.t) : C.cvalue =
  match Pred.view p with
  | Ptrue -> C.emit st.prog st.cur (KConst (Cbool true)) Tbool
  | Pfalse -> C.emit st.prog st.cur (KConst (Cbool false)) Tbool
  | Plit { v; positive } ->
    let c = lookup st v in
    if positive then c else C.emit st.prog st.cur (KNot c) Tbool
  | Pand ps ->
    let cs = List.map (lower_pred st) ps in
    List.fold_left
      (fun acc c -> C.emit st.prog st.cur (KBinop (Band, acc, c)) Tbool)
      (List.hd cs) (List.tl cs)
  | Por ps ->
    let cs = List.map (lower_pred st) ps in
    List.fold_left
      (fun acc c -> C.emit st.prog st.cur (KBinop (Bor, acc, c)) Tbool)
      (List.hd cs) (List.tl cs)

(* Lower one instruction into the current block (predicate ignored). *)
let lower_inst st (i : Ir.inst) : C.cvalue =
  let v = lookup st in
  let emit ck = C.emit st.prog st.cur ck i.ty in
  match i.kind with
  | Const c -> emit (KConst c)
  | Arg n -> emit (KArg n)
  | Binop (op, a, b) -> emit (KBinop (op, v a, v b))
  | Cmp (op, a, b) -> emit (KCmp (op, v a, v b))
  | Cast (t, a) -> emit (KCast (t, v a))
  | Select { cond; if_true; if_false } ->
    emit (KSelect (v cond, v if_true, v if_false))
  | Phi ops ->
    (* select chain over operand predicates *)
    let undef = C.emit st.prog st.cur (KConst (Cundef i.ty)) i.ty in
    List.fold_left
      (fun acc (p, x) ->
        let c = lower_pred st p in
        C.emit st.prog st.cur (KSelect (c, v x, acc)) i.ty)
      undef (List.rev ops)
  | Mu _ -> invalid_arg "Lower: mu outside loop header"
  | Eta { value; _ } ->
    (* the exit-join phi was recorded when the loop was lowered *)
    v value
  | Load { addr } -> emit (KLoad (v addr))
  | Store { addr; value } -> emit (KStore (v addr, v value))
  | Call { callee; args; effect } -> emit (KCall (callee, List.map v args, effect))
  | Splat a -> emit (KSplat (v a))
  | Vecbuild vs -> emit (KVecbuild (List.map v vs))
  | Extract (a, n) -> emit (KExtract (v a, n))

(* Group maximal runs of instructions sharing one predicate. *)
type chunk = Run of Pred.t * Ir.value_id list | LoopChunk of Ir.loop_id

let chunks_of_items f items =
  let rec go acc cur items =
    match items with
    | [] -> List.rev (close acc cur)
    | Ir.I v :: rest ->
      let p = (Ir.inst f v).ipred in
      (match cur with
      | Some (q, vs) when Pred.equal p q -> go acc (Some (q, v :: vs)) rest
      | _ -> go (close acc cur) (Some (p, [ v ])) rest)
    | Ir.L lid :: rest -> go (LoopChunk lid :: close acc cur) None rest
  and close acc = function
    | None -> acc
    | Some (p, vs) -> Run (p, List.rev vs) :: acc
  in
  go [] None items

let rec lower_items st items =
  let f = st.func in
  List.iter
    (fun chunk ->
      match chunk with
      | Run (p, vs) when Pred.equal p Pred.tru ->
        List.iter
          (fun v -> Hashtbl.replace st.values v (lower_inst st (Ir.inst f v)))
          vs
      | Run (p, vs) when Pred.equal p Pred.fls ->
        (* statically dead: bind to undef *)
        List.iter
          (fun v ->
            let i = Ir.inst f v in
            Hashtbl.replace st.values v
              (C.emit st.prog st.cur (KConst (Cundef i.ty)) i.ty))
          vs
      | Run (p, vs) ->
        (* one diamond per predicate run *)
        let cond = lower_pred st p in
        (* undefs for the skip path, emitted before the branch *)
        let undefs =
          List.map
            (fun v ->
              let i = Ir.inst f v in
              (v, C.emit st.prog st.cur (KConst (Cundef i.ty)) i.ty))
            vs
        in
        let from_block = st.cur in
        let bthen = C.new_block st.prog in
        let bmerge = C.new_block st.prog in
        from_block.term <- CondBr (cond, bthen.bid, bmerge.bid);
        st.cur <- bthen;
        let defs =
          List.map
            (fun v ->
              let c = lower_inst st (Ir.inst f v) in
              Hashtbl.replace st.values v c;
              (v, c))
            vs
        in
        let exit_then = st.cur in
        (* lowering an instruction never opens new blocks, so the then
           block is still current *)
        exit_then.term <- Br bmerge.bid;
        st.cur <- bmerge;
        List.iter2
          (fun (v, c) (_, u) ->
            let i = Ir.inst f v in
            if i.ty <> Tvoid then begin
              let phi =
                C.emit st.prog st.cur
                  (KPhi [ (exit_then.bid, c); (from_block.bid, u) ])
                  i.ty
              in
              Hashtbl.replace st.values v phi
            end)
          defs undefs
      | LoopChunk lid -> lower_loop st (Ir.loop f lid))
    (chunks_of_items f items)

and lower_loop st lp =
  let f = st.func in
  let p = st.prog in
  let guard_block = st.cur in
  (* init cvalues, available before the branch *)
  let inits =
    List.map
      (fun m ->
        match (Ir.inst f m).kind with
        | Mu { init; _ } -> (m, lookup st init)
        | _ -> assert false)
      lp.mus
  in
  let guard_cond = lower_pred st lp.lpred in
  let header = C.new_block p in
  let exit = C.new_block p in
  let after = C.new_block p in
  guard_block.term <- CondBr (guard_cond, header.bid, after.bid);
  (* header phis for mus; latch incoming patched below *)
  st.cur <- header;
  let mu_phis =
    List.map
      (fun (m, init_cv) ->
        let ty = (Ir.inst f m).ty in
        let phi = C.emit p header (KPhi [ (guard_block.bid, init_cv) ]) ty in
        Hashtbl.replace st.values m phi;
        (m, phi))
      inits
  in
  lower_items st lp.body;
  (* latch: advance mus, evaluate continue predicate *)
  let latch = st.cur in
  let recur_cvs =
    List.map
      (fun m ->
        match (Ir.inst f m).kind with
        | Mu { recur; _ } -> (m, lookup st recur)
        | _ -> assert false)
      lp.mus
  in
  let cont_cv = lower_pred st lp.cont in
  latch.term <- CondBr (cont_cv, header.bid, exit.bid);
  (* patch header phis with the latch incoming *)
  List.iter
    (fun (m, phi_cv) ->
      let phi_inst =
        List.find (fun (i : C.cinst) -> i.cid = phi_cv) header.insts
      in
      let recur_cv = List.assoc m recur_cvs in
      match phi_inst.ck with
      | KPhi ops -> phi_inst.ck <- KPhi (ops @ [ (latch.bid, recur_cv) ])
      | _ -> assert false)
    mu_phis;
  exit.term <- Br after.bid;
  (* after block: join the loop-exit values with the skip path *)
  st.cur <- after;
  (* mus: recur value if the loop ran, init value if skipped *)
  List.iter
    (fun (m, init_cv) ->
      let ty = (Ir.inst f m).ty in
      let recur_cv = List.assoc m recur_cvs in
      let phi =
        C.emit p after
          (KPhi [ (exit.bid, recur_cv); (guard_block.bid, init_cv) ])
          ty
      in
      Hashtbl.replace st.values m phi)
    inits;
  (* body values observed by etas: body value if the loop ran, undef
     otherwise *)
  let eta_sources = ref [] in
  Ir.iter_insts f (fun i ->
      match i.kind with
      | Eta { loop; value } when loop = lp.lid ->
        if not (List.mem value lp.mus) then
          eta_sources := value :: !eta_sources
      | _ -> ());
  List.sort_uniq compare !eta_sources
  |> List.iter (fun v ->
         match Hashtbl.find_opt st.values v with
         | None -> () (* value not lowered: eta is dead *)
         | Some cv ->
           let ty = (Ir.inst f v).ty in
           (* phi operands must dominate their incoming edge, so the undef
              for the skip path lives in the guard block (appending after
              its terminator was chosen is fine: insts always execute
              before the terminator) *)
           let undef_in_guard =
             let b = C.block p guard_block.bid in
             C.emit p b (KConst (Cundef ty)) ty
           in
           let phi =
             C.emit p after
               (KPhi [ (exit.bid, cv); (guard_block.bid, undef_in_guard) ])
               ty
           in
           Hashtbl.replace st.values v phi)

let lower (f : Ir.func) : C.prog =
  let prog = C.create_prog f.fname in
  let entry = C.new_block prog in
  prog.entry <- entry.bid;
  let st = { prog; func = f; values = Hashtbl.create 256; cur = entry } in
  lower_items st f.fbody;
  st.cur.term <- Ret;
  prog
