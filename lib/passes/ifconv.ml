(* If-conversion for innermost loop bodies, as vectorizers perform before
   widening: predicated pure instructions are speculated (their
   predicates dropped), and a predicated store becomes an unconditional
   store of [select(cond, value, old)] where [old] is a load of the
   current cell.

   This is only applied when the body is trap-free to speculate: no
   calls, no predicated integer division.  Speculated loads are assumed
   dereferenceable (standard vectorizer precondition; always true for
   our in-bounds kernels). *)

open Fgv_pssa

(* Build a boolean value computing the predicate, emitting instructions
   (predicate true) into [acc]. *)
let rec pred_value f acc (p : Pred.t) : Ir.value_id =
  let emit kind =
    let i = Ir.new_inst f ~kind ~ty:Ir.Tbool ~pred:Pred.tru in
    acc := Ir.I i.id :: !acc;
    i.id
  in
  match Pred.view p with
  | Ptrue -> emit (Ir.Const (Cbool true))
  | Pfalse -> emit (Ir.Const (Cbool false))
  | Plit { v; positive } ->
    if positive then v
    else
      let fls = emit (Ir.Const (Cbool false)) in
      emit (Ir.Cmp (Eq, v, fls))
  | Pand ps ->
    let vs = List.map (pred_value f acc) ps in
    List.fold_left (fun a v -> emit (Ir.Binop (Band, a, v))) (List.hd vs) (List.tl vs)
  | Por ps ->
    let vs = List.map (pred_value f acc) ps in
    List.fold_left (fun a v -> emit (Ir.Binop (Bor, a, v))) (List.hd vs) (List.tl vs)

let convertible f lp =
  (* Speculating an instruction is only sound if everything it reads is
     actually computed on the speculated path.  Operands defined inside
     the loop are fine (they get speculated together), but an operand
     defined *outside* under a non-true predicate — e.g. a guarded
     address computation that LICM hoisted with its predicate — stays
     undef when the guard is false, and the speculated use would read
     it unconditionally. *)
  let inside = Hashtbl.create 16 in
  List.iter
    (fun v -> Hashtbl.replace inside v ())
    (lp.Ir.mus @ List.concat_map (Ir.defined_values f) lp.Ir.body);
  let operands_available i =
    List.for_all
      (fun o ->
        Hashtbl.mem inside o || Pred.equal (Ir.inst f o).Ir.ipred Pred.tru)
      (Ir.all_operands i)
  in
  List.for_all
    (fun item ->
      match item with
      | Ir.L _ -> false
      | Ir.I v -> (
        let i = Ir.inst f v in
        match i.kind with
        | Ir.Call _ -> Pred.equal i.ipred Pred.tru
        | Ir.Binop ((Ir.Div | Ir.Rem), _, _) -> Pred.equal i.ipred Pred.tru
        | _ -> Pred.equal i.ipred Pred.tru || operands_available i))
    lp.Ir.body

let convert_loop f lp =
  let new_body =
    List.concat_map
      (fun item ->
        match item with
        | Ir.L _ -> [ item ]
        | Ir.I v -> (
          let i = Ir.inst f v in
          if Pred.equal i.ipred Pred.tru then [ item ]
          else
            match i.kind with
            | Ir.Store { addr; value } ->
              (* masked store: store select(cond, value, old) *)
              let acc = ref [] in
              let cond = pred_value f acc i.ipred in
              let old =
                Ir.new_inst ~name:"ifc_old" f ~kind:(Ir.Load { addr })
                  ~ty:(Ir.inst f value).ty ~pred:Pred.tru
              in
              let sel =
                Ir.new_inst ~name:"ifc_sel" f
                  ~kind:(Ir.Select { cond; if_true = value; if_false = old.id })
                  ~ty:old.ty ~pred:Pred.tru
              in
              i.kind <- Ir.Store { addr; value = sel.id };
              i.ipred <- Pred.tru;
              List.rev !acc @ [ Ir.I old.id; Ir.I sel.id; item ]
            | Ir.Phi _ ->
              (* phis evaluate their own gates; just unpredicate *)
              i.ipred <- Pred.tru;
              [ item ]
            | _ ->
              (* pure instruction: speculate *)
              i.ipred <- Pred.tru;
              [ item ]))
      lp.Ir.body
  in
  lp.Ir.body <- new_body

(* Convert every innermost loop whose body is speculation-safe. *)
let run (f : Ir.func) : int =
  let converted = ref 0 in
  let rec walk items =
    List.iter
      (fun item ->
        match item with
        | Ir.I _ -> ()
        | Ir.L lid ->
          let lp = Ir.loop f lid in
          let nested = List.exists (function Ir.L _ -> true | _ -> false) lp.body in
          if nested then walk lp.body
          else if
            List.exists
              (fun it ->
                match it with
                | Ir.I v -> not (Pred.equal (Ir.inst f v).ipred Pred.tru)
                | Ir.L _ -> false)
              lp.body
            && convertible f lp
          then begin
            convert_loop f lp;
            incr converted
          end)
      items
  in
  walk f.Ir.fbody;
  !converted
