(* Superword-level parallelism vectorizer over PSSA, in the style of
   SuperVectorization [Chen et al. 2022], with the paper's two-point
   versioning integration (SV-A1):

   1. the dependence filter that would reject packs of conditionally
      dependent instructions instead asks the versioning framework for a
      plan that makes them independent (plus a plan separating the
      instructions the pack must be scheduled across);
   2. all accepted plans are materialized before vector code generation.

   Packing is bottom-up from groups of [vl] stores to consecutive
   addresses; operand chains pack when isomorphic (same opcode, same
   predicate) and legal, and fall back to gathers (vecbuild) otherwise.
   Scalar code made dead by vectorization is left for DCE. *)

open Fgv_pssa
open Fgv_analysis
module V = Fgv_versioning

type config = {
  vl : int;
  versioning : bool; (* fine-grained versioning for conditional deps *)
  condopt : V.Condopt.config;
}

let default_config =
  { vl = 4; versioning = true; condopt = V.Condopt.default_config }

let static_config = { default_config with versioning = false }

type stats = {
  mutable packs_formed : int;
  mutable packs_rejected : int;
  mutable plans_used : int;
}

let new_stats () = { packs_formed = 0; packs_rejected = 0; plans_used = 0 }

type pack = { members : Ir.value_id list (* lane order *) }

(* ------------------------------------------------------------ helpers *)

let inst_kind_tag f v =
  match (Ir.inst f v).kind with
  | Ir.Store _ -> `Store
  | Ir.Load _ -> `Load
  | Ir.Binop (op, _, _) -> `Binop op
  | Ir.Cmp (op, _, _) -> `Cmp op
  | Ir.Select _ -> `Select
  | Ir.Cast (t, _) -> `Cast t
  | _ -> `Other

let store_parts f v =
  match (Ir.inst f v).kind with
  | Ir.Store { addr; value } -> (addr, value)
  | _ -> invalid_arg "store_parts"

let load_addr f v =
  match (Ir.inst f v).kind with
  | Ir.Load { addr } -> addr
  | _ -> invalid_arg "load_addr"

(* Are the addresses consecutive with the given stride (in cells)?
   Returns the list re-ordered by address, or None. *)
let consecutive scev f vs ~get_addr ~width =
  let lins = List.map (fun v -> (v, Scev.linexp scev (get_addr f v))) vs in
  match lins with
  | [] -> None
  | (_, first) :: _ ->
    let offsets =
      List.map
        (fun (v, l) ->
          match Linexp.diff l first with Some d -> Some (v, d) | None -> None)
        lins
    in
    if List.exists (fun o -> o = None) offsets then None
    else begin
      let offs = List.map Option.get offsets in
      let sorted = List.sort (fun (_, a) (_, b) -> compare a b) offs in
      let rec check k = function
        | [] -> true
        | (_, d) :: rest -> d = k && check (k + width) rest
      in
      match sorted with
      | (_, d0) :: _ when check d0 sorted -> Some (List.map fst sorted)
      | _ -> None
    end

(* ----------------------------------------------------------- legality *)

type session = {
  cfg : config;
  func : Ir.func;
  region : Ir.region;
  scev : Scev.t;
  (* forced on the first legality query: regions without vectorization
     seeds never pay for SCEV or the dependence graph *)
  vsession : V.Api.session Lazy.t;
  items : Ir.item list;
  (* item index of each region-level instruction ([items] is fixed
     during packing, so one table replaces a linear scan per query) *)
  item_pos : (Ir.value_id, int) Hashtbl.t;
  (* dependence successors per graph node, built on first use (the
     graph is immutable during packing) *)
  mutable dep_succ : Depgraph.edge list array option;
  stats : stats;
  mutable pending : V.Plan.t list;
  mutable accepted : (Ir.value_id list, pack) Hashtbl.t;
  mutable packed_values : (Ir.value_id, unit) Hashtbl.t;
  (* position of the last member of the pack containing each packed
     value (vector instructions are emitted there) *)
  mutable pack_last : (Ir.value_id, int) Hashtbl.t;
}

let position s v = Hashtbl.find_opt s.item_pos v

let dep_succ s =
  match s.dep_succ with
  | Some a -> a
  | None ->
    let a =
      Depgraph.dependence_succ (Lazy.force s.vsession).V.Api.s_graph
        ~excluded:(fun _ -> false)
    in
    s.dep_succ <- Some a;
    a

(* All members must be distinct region-level instruction items with the
   same predicate. *)
let uniform_region_insts s vs =
  let f = s.func in
  List.length (List.sort_uniq compare vs) = List.length vs
  && List.for_all (fun v -> position s v <> None) vs
  && (match vs with
     | v0 :: rest ->
       let p = (Ir.inst f v0).ipred in
       List.for_all (fun v -> Pred.equal (Ir.inst f v).ipred p) rest
     | [] -> false)

(* Can these instructions be packed: pairwise independent, and every
   instruction inside the pack's span must not depend on a member (the
   members all sink to the last member's position)?  With versioning
   enabled, conditional dependencies are handed to the framework; the
   returned plans are recorded on success. *)
let schedulable s (vs : Ir.value_id list) : bool =
  let g = (Lazy.force s.vsession).V.Api.s_graph in
  let nodes = List.map (fun v -> Ir.NI v) vs in
  let member_idx = List.map (Depgraph.node_index g) nodes in
  let positions = List.filter_map (fun v -> position s v) vs in
  let first = List.fold_left min max_int positions in
  let last = List.fold_left max 0 positions in
  let crossers =
    List.filteri (fun k _ -> k > first && k < last) s.items
    |> List.filter_map (fun item ->
           match item with
           | Ir.I v when not (List.mem v vs) ->
             (* members of an already accepted pack that executes at or
                after this pack's position sink out of the span with
                their own pack: their dependence on our members is
                preserved by the pack ordering *)
             (match Hashtbl.find_opt s.pack_last v with
             | Some pl when pl >= last -> None
             | _ -> Some (Ir.NI v))
           | Ir.L l -> Some (Ir.NL l)
           | _ -> None)
  in
  (* restrict to crossers that actually interact with members *)
  let succ = dep_succ s in
  let interacting =
    List.filter
      (fun c ->
        let ci = Depgraph.node_index g c in
        List.exists
          (fun e -> List.mem e.Depgraph.e_dst member_idx)
          succ.(ci))
      crossers
  in
  (* packs that would need control-flow speculation (predicate
     conditions) are rejected: per-iteration speculation checks do not
     amortize under the cost model, unlike memory-disjointness checks,
     which promote to loop-invariant guards *)
  let rec has_control_conds (p : V.Plan.t) =
    List.exists
      (function Depcond.Apred _ -> true | Depcond.Aintersect _ -> false)
      p.V.Plan.p_conds
    || List.exists has_control_conds p.V.Plan.p_secondaries
  in
  if s.cfg.versioning then begin
    match
      V.Api.request_independence ~record:false (Lazy.force s.vsession) nodes
    with
    | None -> false
    | Some plan1 when has_control_conds plan1 -> false
    | Some plan1 -> (
      let plan2 =
        if interacting = [] then None
        else
          match
            V.Api.request_separation ~record:false (Lazy.force s.vsession)
              ~nodes:interacting ~input_nodes:nodes
          with
          | None -> raise Exit (* sentinel: rejected *)
          | Some p when has_control_conds p -> raise Exit
          | Some p -> Some p
      in
      s.pending <- plan1 :: s.pending;
      (match plan2 with Some p -> s.pending <- p :: s.pending | None -> ());
      if not (V.Plan.is_trivial plan1) then s.stats.plans_used <- s.stats.plans_used + 1;
      true)
  end
  else
    V.Api.already_independent (Lazy.force s.vsession) nodes
    && not
         (Depgraph.depends_on g
            ~excluded:(fun _ -> false)
            (List.map (Depgraph.node_index g) interacting)
            member_idx)

let schedulable s vs = try schedulable s vs with Exit -> false

(* ----------------------------------------------------------- packing *)

(* Try to form a pack from candidate members (already in lane order). *)
let rec try_pack s (vs : Ir.value_id list) : bool =
  if Hashtbl.mem s.accepted vs then true
  else if List.exists (Hashtbl.mem s.packed_values) vs then false
  else if not (uniform_region_insts s vs) then false
  else begin
    let f = s.func in
    let tags = List.map (inst_kind_tag f) vs in
    let tag0 = List.hd tags in
    if tag0 = `Other || List.exists (fun t -> t <> tag0) tags then false
    else begin
      let tys = List.map (fun v -> (Ir.inst f v).ty) vs in
      let ty0 = List.hd tys in
      if List.exists (fun t -> t <> ty0) tys || Ir.lanes_of_ty ty0 <> 1 then false
      else begin
        let shape_ok =
          match tag0 with
          | `Load ->
            consecutive s.scev f vs ~get_addr:load_addr ~width:1
            = Some vs (* loads must already be in address order *)
          | `Store ->
            consecutive s.scev f vs ~get_addr:(fun f v -> fst (store_parts f v))
              ~width:1
            = Some vs
          | _ -> true
        in
        shape_ok
        && schedulable s vs
        &&
        begin
          Hashtbl.replace s.accepted vs { members = vs };
          let last_pos =
            List.fold_left
              (fun acc v ->
                match position s v with Some p -> max acc p | None -> acc)
              0 vs
          in
          List.iter
            (fun v ->
              Hashtbl.replace s.packed_values v ();
              Hashtbl.replace s.pack_last v last_pos)
            vs;
          s.stats.packs_formed <- s.stats.packs_formed + 1;
          (* recurse into operand chains (best effort) *)
          let operand_lists =
            match (Ir.inst f (List.hd vs)).kind with
            | Ir.Store _ ->
              [ List.map (fun v -> snd (store_parts f v)) vs ]
            | Ir.Binop _ ->
              let op k v =
                match (Ir.inst f v).kind with
                | Ir.Binop (_, a, b) -> if k = 0 then a else b
                | _ -> assert false
              in
              [ List.map (op 0) vs; List.map (op 1) vs ]
            | Ir.Cmp _ ->
              let op k v =
                match (Ir.inst f v).kind with
                | Ir.Cmp (_, a, b) -> if k = 0 then a else b
                | _ -> assert false
              in
              [ List.map (op 0) vs; List.map (op 1) vs ]
            | Ir.Select _ ->
              let op k v =
                match (Ir.inst f v).kind with
                | Ir.Select { cond; if_true; if_false } ->
                  List.nth [ cond; if_true; if_false ] k
                | _ -> assert false
              in
              [ List.map (op 0) vs; List.map (op 1) vs; List.map (op 2) vs ]
            | Ir.Cast _ ->
              [
                List.map
                  (fun v ->
                    match (Ir.inst f v).kind with
                    | Ir.Cast (_, a) -> a
                    | _ -> assert false)
                  vs;
              ]
            | _ -> []
          in
          List.iter (fun ops -> ignore (try_pack s ops)) operand_lists;
          true
        end
      end
    end
  end

(* Store seeds: windows of [vl] consecutive same-predicate stores. *)
let find_seeds s : Ir.value_id list list =
  let f = s.func in
  let stores =
    List.filter_map
      (fun item ->
        match item with
        | Ir.I v -> (
          match (Ir.inst f v).kind with
          | Ir.Store { value; _ } when Ir.lanes_of_ty (Ir.inst f value).ty = 1 ->
            Some v
          | _ -> None)
        | Ir.L _ -> None)
      s.items
  in
  (* group by predicate and by the non-constant part of the address *)
  let keyed =
    List.map
      (fun v ->
        let addr, _ = store_parts f v in
        let lin = Scev.linexp s.scev addr in
        ((Ir.inst f v).ipred, Linexp.terms lin, Linexp.constant lin, v))
      stores
  in
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (p, terms, konst, v) ->
      let key = (p, terms) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt groups key) in
      Hashtbl.replace groups key ((konst, v) :: cur))
    keyed;
  Hashtbl.fold
    (fun _ entries acc ->
      let sorted = List.sort compare entries in
      (* consecutive windows *)
      let rec windows acc = function
        | (k0, v0) :: rest when List.length rest >= s.cfg.vl - 1 ->
          let rec take n expect = function
            | _ when n = 0 -> Some []
            | (k, v) :: tl when k = expect ->
              Option.map (fun l -> v :: l) (take (n - 1) (expect + 1) tl)
            | _ -> None
          in
          (match take (s.cfg.vl - 1) (k0 + 1) rest with
          | Some tail ->
            windows ((v0 :: tail) :: acc)
              (List.filteri (fun i _ -> i >= s.cfg.vl - 1) rest)
          | None -> windows acc rest)
        | _ :: rest -> windows acc rest
        | [] -> List.rev acc
      in
      windows [] sorted @ acc)
    groups []
  (* the table above is keyed on interned predicates, whose hashes (and
     hence fold order) vary with the domain's interning history: fix a
     structural order so packing decisions and remark streams are
     byte-identical at any --jobs *)
  |> List.sort (List.compare Int.compare)

(* ----------------------------------------------------------- codegen *)

exception Skip_pack

let codegen s : int =
  let f = s.func in
  (* refresh item list after materialization *)
  let items = ref (Ir.region_items f s.region) in
  let pos_of v =
    let rec go k = function
      | [] -> None
      | Ir.I w :: _ when w = v -> Some k
      | _ :: rest -> go (k + 1) rest
    in
    go 0 !items
  in
  let vector_of_pack : (Ir.value_id list, Ir.value_id) Hashtbl.t =
    Hashtbl.create 8
  in
  (* packs ordered by the position of their last member *)
  let packs =
    Hashtbl.fold (fun _ p acc -> p :: acc) s.accepted []
    |> List.filter_map (fun p ->
           let ps = List.filter_map pos_of p.members in
           if List.length ps = List.length p.members then
             Some (List.fold_left max 0 ps, p)
           else None)
    |> List.sort compare
  in
  let emitted = ref 0 in
  let insert_after_value anchor new_items =
    let rec go = function
      | [] -> invalid_arg "Slp.codegen: anchor vanished"
      | (Ir.I w as it) :: rest when w = anchor -> it :: (new_items @ rest)
      | it :: rest -> it :: go rest
    in
    items := go !items
  in
  let remove_values vs =
    items :=
      List.filter
        (fun item ->
          match item with Ir.I v -> not (List.mem v vs) | Ir.L _ -> true)
        !items
  in
  List.iter
    (fun (_, p) ->
      try
        let members = p.members in
        let f0 = Ir.inst f (List.hd members) in
        let pred0 = f0.ipred in
        if
          not
            (List.for_all
               (fun v -> Pred.equal (Ir.inst f v).ipred pred0)
               members)
        then raise Skip_pack;
        (* the vector instruction is emitted at the program-order-last
           member (lane order is address order, which runs backwards in
           descending loops) *)
        let last =
          fst
            (List.fold_left
               (fun (best, bp) v ->
                 match pos_of v with
                 | Some p when p > bp -> (v, p)
                 | _ -> (best, bp))
               (List.hd members, -1)
               members)
        in
        let buf = ref [] in
        let emit ?(name = "") kind ty =
          let i = Ir.new_inst ~name f ~kind ~ty ~pred:pred0 in
          buf := Ir.I i.id :: !buf;
          i.id
        in
        let vec_ty elem = Ir.Tvec (elem, s.cfg.vl) in
        (* resolve a lane list of scalar values into one vector value *)
        let resolve vs =
          match Hashtbl.find_opt vector_of_pack vs with
          | Some v -> v
          | None -> (
            match vs with
            | v0 :: rest when List.for_all (fun v -> v = v0) rest ->
              emit ~name:"splat" (Ir.Splat v0) (vec_ty (Ir.inst f v0).ty)
            | _ ->
              emit ~name:"gather" (Ir.Vecbuild vs)
                (vec_ty (Ir.inst f (List.hd vs)).ty))
        in
        let vec =
          match f0.kind with
          | Ir.Store _ ->
            let parts = List.map (store_parts f) members in
            let addr0 = fst (List.hd parts) in
            let value_vec = resolve (List.map snd parts) in
            let st =
              emit ~name:"vstore"
                (Ir.Store { addr = addr0; value = value_vec })
                Ir.Tvoid
            in
            st
          | Ir.Load _ ->
            let addr0 = load_addr f (List.hd members) in
            emit ~name:"vload" (Ir.Load { addr = addr0 }) (vec_ty f0.ty)
          | Ir.Binop (op, _, _) ->
            let ops k =
              List.map
                (fun v ->
                  match (Ir.inst f v).kind with
                  | Ir.Binop (_, a, b) -> if k = 0 then a else b
                  | _ -> assert false)
                members
            in
            let a = resolve (ops 0) in
            let b = resolve (ops 1) in
            emit ~name:"vbin" (Ir.Binop (op, a, b)) (vec_ty f0.ty)
          | Ir.Cmp (op, _, _) ->
            let ops k =
              List.map
                (fun v ->
                  match (Ir.inst f v).kind with
                  | Ir.Cmp (_, a, b) -> if k = 0 then a else b
                  | _ -> assert false)
                members
            in
            let a = resolve (ops 0) in
            let b = resolve (ops 1) in
            emit ~name:"vcmp" (Ir.Cmp (op, a, b)) (vec_ty Ir.Tbool)
          | Ir.Select _ ->
            let ops k =
              List.map
                (fun v ->
                  match (Ir.inst f v).kind with
                  | Ir.Select { cond; if_true; if_false } ->
                    List.nth [ cond; if_true; if_false ] k
                  | _ -> assert false)
                members
            in
            let c = resolve (ops 0) in
            let a = resolve (ops 1) in
            let b = resolve (ops 2) in
            emit ~name:"vsel"
              (Ir.Select { cond = c; if_true = a; if_false = b })
              (vec_ty f0.ty)
          | Ir.Cast (t, _) ->
            let ops =
              List.map
                (fun v ->
                  match (Ir.inst f v).kind with
                  | Ir.Cast (_, a) -> a
                  | _ -> assert false)
                members
            in
            let a = resolve ops in
            emit ~name:"vcast" (Ir.Cast (t, a)) (vec_ty t)
          | _ -> raise Skip_pack
        in
        insert_after_value last (List.rev !buf);
        Hashtbl.replace vector_of_pack members vec;
        (match f0.kind with
        | Ir.Store _ ->
          remove_values members;
          List.iter (fun v -> Hashtbl.remove f.Ir.arena v) members
        | _ -> ());
        incr emitted
      with Skip_pack -> s.stats.packs_rejected <- s.stats.packs_rejected + 1)
    packs;
  Ir.set_region_items f s.region !items;
  !emitted

(* --------------------------------------------------------------- run *)

(* Vectorize one region. Returns the number of vector instructions
   emitted. *)
let run_region ?(config = default_config) (f : Ir.func) (region : Ir.region)
    (stats : stats) : int =
  let scev = Queries.scev f in
  let vsession = lazy (V.Api.create ~condopt:config.condopt ~scev f region) in
  let items = Ir.region_items f region in
  let item_pos = Hashtbl.create (max 16 (List.length items)) in
  List.iteri
    (fun k item ->
      match item with
      | Ir.I v -> Hashtbl.replace item_pos v k
      | Ir.L _ -> ())
    items;
  let s =
    {
      cfg = config;
      func = f;
      region;
      scev;
      vsession;
      items;
      item_pos;
      dep_succ = None;
      stats;
      pending = [];
      accepted = Hashtbl.create 8;
      packed_values = Hashtbl.create 32;
      pack_last = Hashtbl.create 32;
    }
  in
  let seeds = Fgv_support.Trace.with_span "slp.seeds" (fun () -> find_seeds s) in
  Fgv_support.Trace.with_span "slp.pack" (fun () ->
      List.iter (fun seed -> ignore (try_pack s seed)) seeds);
  if Hashtbl.length s.accepted = 0 then 0
  else begin
    (* paper integration point 2: materialize the plans, then generate
       vector code.  All committed packs are versioned together under
       the union of the inferred conditions, so the check-passing path
       carries only the vector code and the fallback only the scalar
       clones. *)
    let members =
      Hashtbl.fold
        (fun _ p acc -> List.map (fun v -> Ir.NI v) p.members @ acc)
        s.accepted []
    in
    (* split the plans into those whose conditions are loop-invariant
       (upgradeable to one check guarding the whole loop) and the rest
       (per-iteration dual paths); pack members ride with whichever
       bucket exists so the fast path is purely vector *)
    let invariant_plan =
      match region with
      | Ir.Rtop -> fun _ -> false
      | Ir.Rloop lid ->
        (* one order table for every plan; [compute_order] walks the
           whole function *)
        let order = Ir.compute_order f in
        let loop_start = order (Ir.NL lid) in
        fun p ->
          p.V.Plan.p_secondaries = []
          && List.for_all
               (fun a ->
                 List.for_all
                   (fun v -> order (Ir.NI v) < loop_start)
                   (Fgv_analysis.Depcond.atom_operands a))
               p.V.Plan.p_conds
    in
    let invariant, residual = List.partition invariant_plan s.pending in
    let record ~extra plans =
      match V.Api.union_plans f ~extra_nodes:extra plans with
      | Some plan -> V.Api.record_plan (Lazy.force vsession) plan
      | None -> ()
    in
    record ~extra:(if residual = [] then [] else members) residual;
    record ~extra:[] invariant;
    if V.Api.materialize ~loop_upgrade:true (Lazy.force vsession) <> None then
      Fgv_support.Trace.with_span "slp.codegen" (fun () -> codegen s)
    else begin
      (* a plan could not be materialized in the current program state:
         the independence the packs relied on was NOT established, so no
         vector code may be emitted for this region (the partial
         versioning left behind is semantics-preserving on its own) *)
      s.stats.packs_rejected <- s.stats.packs_rejected + Hashtbl.length s.accepted;
      0
    end
  end

(* Vectorize every region of the function (innermost loops first). *)
let run ?(config = default_config) (f : Ir.func) : int * stats =
  let stats = new_stats () in
  let total = ref 0 in
  let rec regions_of items acc =
    List.fold_left
      (fun acc item ->
        match item with
        | Ir.I _ -> acc
        | Ir.L lid -> regions_of (Ir.loop f lid).body (Ir.Rloop lid :: acc))
      acc items
  in
  let all_regions = regions_of f.Ir.fbody [ Ir.Rtop ] in
  (* innermost first: regions_of accumulates outer-to-inner, so reverse *)
  List.iter
    (fun region -> total := !total + run_region ~config f region stats)
    all_regions;
  (!total, stats)
