(* Global value numbering for PSSA, including the *static* form of
   redundant load elimination (a later load of the same address with no
   intervening may-write reuses the earlier value).  This is the baseline
   the paper's versioning-based RLE is compared against, and it also
   serves as the "extra instructions deleted by GVN" downstream pass of
   Fig. 22.

   Scoping: program order is dominance for sibling items, but values
   defined inside a loop body do not dominate code after the loop, so
   the value table is scoped per region. *)

open Fgv_pssa

(* Canonical key for a pure instruction: kind with operands rewritten to
   their representatives, commutative operands sorted. *)
let key_of f repr v : string option =
  let i = Ir.inst f v in
  let r x = try Hashtbl.find repr x with Not_found -> x in
  let commutative = function
    | Ir.Add | Ir.Mul | Ir.Fadd | Ir.Fmul | Ir.Band | Ir.Bor -> true
    | _ -> false
  in
  match i.kind with
  | Ir.Const c ->
    (* the key must distinguish Cint 1 from Cfloat 1.0: use an exact
       hexadecimal rendering for floats and tag with the type *)
    let body =
      match c with
      | Ir.Cfloat x -> Printf.sprintf "f%h" x
      | Ir.Cint n -> Printf.sprintf "i%d" n
      | Ir.Cbool b -> Printf.sprintf "b%b" b
      | Ir.Cundef _ -> "undef"
    in
    Some (Printf.sprintf "const:%s:%s" (Ir.string_of_ty i.ty) body)
  | Ir.Binop (op, a, b) ->
    let a = r a and b = r b in
    let a, b = if commutative op && b < a then (b, a) else (a, b) in
    Some (Printf.sprintf "bin:%s:%d:%d" (Ir.string_of_binop op) a b)
  | Ir.Cmp (op, a, b) ->
    Some (Printf.sprintf "cmp:%s:%d:%d" (Ir.string_of_cmpop op) (r a) (r b))
  | Ir.Cast (t, a) -> Some (Printf.sprintf "cast:%s:%d" (Ir.string_of_ty t) (r a))
  | Ir.Select { cond; if_true; if_false } ->
    Some (Printf.sprintf "sel:%d:%d:%d" (r cond) (r if_true) (r if_false))
  | Ir.Splat a -> Some (Printf.sprintf "splat:%d:%s" (r a) (Ir.string_of_ty i.ty))
  | Ir.Extract (a, k) -> Some (Printf.sprintf "ext:%d:%d" (r a) k)
  | _ -> None

type entry = { e_value : Ir.value_id; e_pred : Pred.t }

let run (f : Ir.func) : int =
  let deleted = ref 0 in
  let repr : (Ir.value_id, Ir.value_id) Hashtbl.t = Hashtbl.create 64 in
  (* memory generation: bumped by every may-write *)
  let memgen = ref 0 in
  let rec walk_items table load_table items =
    List.iter
      (fun item ->
        match item with
        | Ir.I v -> visit table load_table v
        | Ir.L lid ->
          let lp = Ir.loop f lid in
          (* a loop body runs many times: give it scoped tables, and bump
             the memory generation if it may write *)
          let writes =
            List.exists
              (fun m -> Ir.may_write_inst (Ir.inst f m))
              (Ir.memory_insts f (Ir.L lid))
          in
          if writes then incr memgen;
          walk_items (Hashtbl.copy table) (Hashtbl.copy load_table) lp.body;
          if writes then incr memgen)
      items
  and visit table load_table v =
    let i = Ir.inst f v in
    if Ir.may_write_inst i then incr memgen;
    match i.kind with
    | Ir.Load { addr } when not (Ir.may_write_inst i) ->
      let r x = try Hashtbl.find repr x with Not_found -> x in
      let key = Printf.sprintf "load:%d:%s:%d" (r addr) (Ir.string_of_ty i.ty) !memgen in
      lookup_or_add load_table key v i.ipred
    | _ -> (
      match key_of f repr v with
      | None -> ()
      | Some key -> lookup_or_add table key v i.ipred)
  and lookup_or_add table key v pred =
    let entries = Option.value ~default:[] (Hashtbl.find_opt table key) in
    match
      List.find_opt (fun e -> Pred.implies pred e.e_pred) entries
    with
    | Some e ->
      Hashtbl.replace repr v e.e_value;
      incr deleted
    | None ->
      Hashtbl.replace table key ({ e_value = v; e_pred = pred } :: entries)
  in
  walk_items (Hashtbl.create 64) (Hashtbl.create 64) f.Ir.fbody;
  (* [repr] is flat by construction — a representative is a table entry
     and a table entry is never later redirected — so one batched walk
     replaces the per-value [replace_all_uses] calls (which made GVN
     quadratic in the function size) *)
  Ir.replace_uses_map f repr;
  !deleted
