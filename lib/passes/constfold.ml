(* Constant folding and algebraic simplification for PSSA.

   Folds operations over constants, simplifies identities (x+0, x*1,
   x*0), resolves selects and phis with constant conditions, and
   propagates constant booleans into execution predicates (which is what
   cleans up versioning checks that turn out to be decidable
   statically). *)

open Fgv_pssa

let const_of f v =
  match (Ir.inst f v).kind with Ir.Const c -> Some c | _ -> None

let fold_binop op a b =
  let open Ir in
  match op, a, b with
  (* integer ops fold with the pinned {!Fgv_pssa.Intsem} semantics —
     the same ones the interpreters and the native backend use, so
     folding never changes observable behaviour *)
  | Add, Cint x, Cint y -> Some (Cint (Intsem.add x y))
  | Sub, Cint x, Cint y -> Some (Cint (Intsem.sub x y))
  | Mul, Cint x, Cint y -> Some (Cint (Intsem.mul x y))
  | Div, Cint x, Cint y when y <> 0 -> Some (Cint (Intsem.div x y))
  | Rem, Cint x, Cint y when y <> 0 -> Some (Cint (Intsem.rem x y))
  | Fadd, Cfloat x, Cfloat y -> Some (Cfloat (x +. y))
  | Fsub, Cfloat x, Cfloat y -> Some (Cfloat (x -. y))
  | Fmul, Cfloat x, Cfloat y -> Some (Cfloat (x *. y))
  | Fdiv, Cfloat x, Cfloat y -> Some (Cfloat (x /. y))
  | Fmin, Cfloat x, Cfloat y -> Some (Cfloat (Intsem.fmin x y))
  | Fmax, Cfloat x, Cfloat y -> Some (Cfloat (Intsem.fmax x y))
  | Band, Cbool x, Cbool y -> Some (Cbool (x && y))
  | Bor, Cbool x, Cbool y -> Some (Cbool (x || y))
  | _ -> None

let fold_cmp op a b =
  let open Ir in
  let int_cmp x y =
    match op with
    | Eq -> Some (x = y) | Ne -> Some (x <> y) | Lt -> Some (x < y)
    | Le -> Some (x <= y) | Gt -> Some (x > y) | Ge -> Some (x >= y)
    | _ -> None
  in
  let float_cmp x y =
    match op with
    | Feq -> Some (x = y) | Fne -> Some (x <> y) | Flt -> Some (x < y)
    | Fle -> Some (x <= y) | Fgt -> Some (x > y) | Fge -> Some (x >= y)
    | _ -> None
  in
  match a, b with
  | Cint x, Cint y -> Option.map (fun r -> Cbool r) (int_cmp x y)
  | Cbool x, Cbool y ->
    Option.map (fun r -> Cbool r) (int_cmp (Bool.to_int x) (Bool.to_int y))
  | Cfloat x, Cfloat y -> Option.map (fun r -> Cbool r) (float_cmp x y)
  | _ -> None

(* Algebraic identities returning an existing value. *)
let simplify_binop f op a b =
  let open Ir in
  let ca = const_of f a and cb = const_of f b in
  match op, ca, cb with
  | (Add | Sub), _, Some (Cint 0) -> Some a
  | Add, Some (Cint 0), _ -> Some b
  | Mul, _, Some (Cint 1) -> Some a
  | Mul, Some (Cint 1), _ -> Some b
  (* x + 0.0 is NOT x when x = -0.0 (-0.0 + 0.0 = +0.0); x - 0.0 is
     exact, but only for *positive* zero (the OCaml pattern 0.0 also
     matches -0.0, and x - (-0.0) = x + 0.0) *)
  | Fsub, _, Some (Cfloat z)
    when Int64.bits_of_float z = Int64.bits_of_float 0.0 ->
    Some a
  | Fmul, _, Some (Cfloat 1.0) -> Some a
  | Fmul, Some (Cfloat 1.0), _ -> Some b
  | Band, _, Some (Cbool true) -> Some a
  | Band, Some (Cbool true), _ -> Some b
  | Bor, _, Some (Cbool false) -> Some a
  | Bor, Some (Cbool false), _ -> Some b
  | _ -> None

(* Substitute constant-boolean literals inside a predicate. *)
let fold_pred f p =
  let known v =
    match const_of f v with Some (Ir.Cbool b) -> Some b | _ -> None
  in
  let rec go (p : Pred.t) : Pred.t =
    match Pred.view p with
    | Ptrue | Pfalse -> p
    | Plit { v; positive } -> (
      match known v with
      | Some b -> if b = positive then Pred.tru else Pred.fls
      | None -> p)
    | Pand ps -> Pred.and_list (List.map go ps)
    | Por ps -> Pred.or_list (List.map go ps)
  in
  go p

(* One pass over the whole function; returns number of changes.
   [replaced] records instructions whose uses were already forwarded to
   another value, so a sweep does not count them as progress again. *)
let sweep (f : Ir.func) (replaced : (Ir.value_id, unit) Hashtbl.t) : int =
  let changed = ref 0 in
  let touch () = incr changed in
  let forward v v' =
    if not (Hashtbl.mem replaced v) then begin
      Hashtbl.replace replaced v ();
      Ir.replace_all_uses f ~old_v:v ~new_v:v';
      touch ()
    end
  in
  let fold_inst v =
    let i = Ir.inst f v in
    (* fold the execution predicate *)
    let p' = fold_pred f i.ipred in
    if not (Pred.equal p' i.ipred) then begin
      i.ipred <- p';
      touch ()
    end;
    match i.kind with
    | Ir.Binop (op, a, b) -> (
      match const_of f a, const_of f b with
      | Some ca, Some cb -> (
        match fold_binop op ca cb with
        | Some c ->
          i.kind <- Ir.Const c;
          touch ()
        | None -> ())
      | _ -> (
        match simplify_binop f op a b with
        | Some v' -> forward v v'
        | None -> ()))
    | Ir.Cmp (op, a, b) -> (
      match const_of f a, const_of f b with
      | Some ca, Some cb -> (
        match fold_cmp op ca cb with
        | Some c ->
          i.kind <- Ir.Const c;
          touch ()
        | None -> ())
      | _ -> ())
    | Ir.Select { cond; if_true; if_false } -> (
      match const_of f cond with
      | Some (Ir.Cbool b) -> forward v (if b then if_true else if_false)
      | _ -> ())
    | Ir.Phi ops -> (
      (* drop statically false arms; a phi with one true arm is a copy *)
      let ops' =
        List.filter_map
          (fun (p, x) ->
            let p' = fold_pred f p in
            if Pred.equal p' Pred.fls then None else Some (p', x))
          ops
      in
      if List.length ops' <> List.length ops then begin
        i.kind <- Ir.Phi ops';
        touch ()
      end;
      match ops' with
      | [ (p, x) ] when Pred.equal p Pred.tru || Pred.equal p i.ipred ->
        forward v x
      | _ -> ())
    | _ -> ()
  in
  let rec walk items =
    List.iter
      (fun item ->
        match item with
        | Ir.I v -> fold_inst v
        | Ir.L lid ->
          let lp = Ir.loop f lid in
          let g' = fold_pred f lp.lpred in
          if not (Pred.equal g' lp.lpred) then begin
            lp.lpred <- g';
            touch ()
          end;
          let c' = fold_pred f lp.cont in
          if not (Pred.equal c' lp.cont) then begin
            lp.cont <- c';
            touch ()
          end;
          walk lp.body)
      items
  in
  walk f.Ir.fbody;
  !changed

let run (f : Ir.func) : int =
  let total = ref 0 in
  let replaced = Hashtbl.create 16 in
  let continue_ = ref true in
  while !continue_ do
    let n = sweep f replaced in
    total := !total + n;
    continue_ := n > 0
  done;
  !total
