(* Versioned dead-store elimination / store-forwarding, a wish-spec
   client of the versioning framework (DESIGN §13's worked example).

   Two wishes per region, decided by plan inference exactly as RLE's
   load groups are:

   1. *Forwarding*: a load L of the same symbolic address as an earlier
      store S (with [pred L] implying [pred S]) observes S's stored
      value — provided no may-write between them can touch the cell.
      The wish separates L from the intervening writers; under the
      materialized guard the load's uses are redirected to the stored
      value and the load dies.

   2. *Killing*: a store S1 overwritten by a later same-address store S2
      (with [pred S1] implying [pred S2]) is dead — provided no
      may-read between them can observe S1's value.  The wish separates
      the intervening readers from S1; under the guard the original S1
      (the check-pass copy) is deleted while the fallback clone keeps
      the conservative behaviour.

   Forwarding runs first: a same-address load between a kill pair makes
   the kill unconditionally infeasible, but once the load is forwarded
   it is dead (user-less) and no longer counts as a reader, so the kill
   succeeds on the second wish.  With [versioning = false] only wishes
   that already hold statically are granted — the baseline DSE a
   standard compiler performs. *)

open Fgv_pssa
open Fgv_analysis
module V = Fgv_versioning
module Tr = Fgv_support.Trace

type stats = {
  mutable candidates : int;
  mutable forwarded : int;
  mutable killed : int;
  mutable versioned : int;
  mutable infeasible : int;
}

let new_stats () =
  { candidates = 0; forwarded = 0; killed = 0; versioned = 0; infeasible = 0 }

(* Symbolic address key of a scalar memory access: the linear expression
   of the address plus the accessed type (same keying as RLE). *)
let addr_key (scev : Scev.t) (f : Ir.func) (v : Ir.value_id) =
  let i = Ir.inst f v in
  match i.Ir.kind with
  | Ir.Load { addr } when Ir.lanes_of_ty i.Ir.ty = 1 ->
    let lin = Scev.linexp scev addr in
    Some (Linexp.terms lin, Linexp.constant lin, i.Ir.ty)
  | Ir.Store { addr; value } ->
    let vty = (Ir.inst f value).Ir.ty in
    if Ir.lanes_of_ty vty = 1 then begin
      let lin = Scev.linexp scev addr in
      Some (Linexp.terms lin, Linexp.constant lin, vty)
    end
    else None
  | _ -> None

let is_store f v =
  match (Ir.inst f v).Ir.kind with Ir.Store _ -> true | _ -> false

(* A may-writing region item between two positions. *)
let item_writes f = function
  | Ir.I v -> Ir.may_write_inst (Ir.inst f v)
  | Ir.L lid -> Ir.node_may_write f (Ir.NL lid)

let node_of_item = function Ir.I v -> Ir.NI v | Ir.L l -> Ir.NL l

(* ------------------------------------------------------- forward wish *)

type forward = {
  fw_load : Ir.value_id;
  fw_value : Ir.value_id; (* the stored value the load will become *)
  fw_blockers : Ir.node list; (* may-writers strictly between S and L *)
}

(* Redirecting a loop-region load's uses to a value defined *outside*
   the loop is only well-formed for plain instructions: a mu's recur or
   an eta's value must stay loop-local. *)
let forward_target_ok f region users ~value ~load =
  match region with
  | Ir.Rtop -> true
  | Ir.Rloop lid ->
    List.mem value (Ir.defined_values f (Ir.L lid))
    || List.for_all
         (fun u ->
           match (Ir.inst f u).Ir.kind with
           | Ir.Eta _ | Ir.Mu _ -> false
           | _ -> true)
         (users load)

let enumerate_forward (s : V.Api.session) : forward list =
  let f = s.V.Api.s_func in
  let scev = s.V.Api.s_scev in
  let region = s.V.Api.s_region in
  let users = Ir.compute_users f in
  let items = Array.of_list (Ir.region_items f region) in
  let key_of = function
    | Ir.I v -> addr_key scev f v
    | Ir.L _ -> None
  in
  let keys = Array.map key_of items in
  let cands = ref [] in
  Array.iteri
    (fun j item ->
      match item, keys.(j) with
      | Ir.I l, Some key when not (is_store f l) ->
        (* scan backwards for the nearest same-key store; everything
           may-writing on the way is a blocker the wish must remove *)
        let blockers = ref [] in
        let rec back i =
          if i >= 0 then begin
            match items.(i), keys.(i) with
            | Ir.I sv, Some k when is_store f sv && k = key ->
              (* nearest same-address store: forwarding candidate iff
                 the load's execution implies the store's *)
              let si = Ir.inst f sv in
              let stored =
                match si.Ir.kind with
                | Ir.Store { value; _ } -> value
                | _ -> assert false
              in
              if
                Pred.implies (Ir.inst f l).Ir.ipred si.Ir.ipred
                && forward_target_ok f region users ~value:stored ~load:l
              then
                cands :=
                  { fw_load = l; fw_value = stored; fw_blockers = !blockers }
                  :: !cands
            | item, _ ->
              if item_writes f item then
                blockers := node_of_item item :: !blockers;
              back (i - 1)
          end
        in
        back (j - 1)
      | _ -> ())
    items;
  List.rev !cands

(* ---------------------------------------------------------- kill wish *)

type kill = {
  kl_store : Ir.value_id;
  kl_readers : Ir.node list; (* may-readers strictly between S1 and S2 *)
}

(* A may-reading region item that could observe the killed store's
   value.  Loads without users (e.g. just forwarded) read nothing
   observable and are skipped, like DCE would remove them. *)
let live_reader f users = function
  | Ir.I v ->
    let i = Ir.inst f v in
    Ir.may_read_inst i
    && (match i.Ir.kind with Ir.Load _ -> users v <> [] | _ -> true)
  | Ir.L lid ->
    List.exists
      (fun v ->
        Ir.may_read_inst (Ir.inst f v)
        && (match (Ir.inst f v).Ir.kind with
           | Ir.Load _ -> users v <> []
           | _ -> true))
      (Ir.memory_insts f (Ir.L lid))

let enumerate_kill (s : V.Api.session) : kill list =
  let f = s.V.Api.s_func in
  let scev = s.V.Api.s_scev in
  let region = s.V.Api.s_region in
  let users = Ir.compute_users f in
  let items = Array.of_list (Ir.region_items f region) in
  let key_of = function
    | Ir.I v -> addr_key scev f v
    | Ir.L _ -> None
  in
  let keys = Array.map key_of items in
  let n = Array.length items in
  let cands = ref [] in
  Array.iteri
    (fun i item ->
      match item, keys.(i) with
      | Ir.I s1, Some key when is_store f s1 ->
        (* scan forward for the nearest same-key store; everything
           may-reading on the way must be separated from S1 *)
        let readers = ref [] in
        let rec fwd j =
          if j < n then begin
            match items.(j), keys.(j) with
            | Ir.I s2, Some k when is_store f s2 && k = key ->
              if Pred.implies (Ir.inst f s1).Ir.ipred (Ir.inst f s2).Ir.ipred
              then
                cands :=
                  { kl_store = s1; kl_readers = List.rev !readers } :: !cands
            | item, _ ->
              if live_reader f users item then
                readers := node_of_item item :: !readers;
              fwd (j + 1)
          end
        in
        fwd (i + 1)
      | _ -> ())
    items;
  List.rev !cands

(* Delete a placed instruction: unplace it wherever it currently sits
   and drop it from the arena (store values have no users). *)
let delete_inst (f : Ir.func) (v : Ir.value_id) =
  let prune items =
    List.filter (function Ir.I x -> x <> v | Ir.L _ -> true) items
  in
  f.Ir.fbody <- prune f.Ir.fbody;
  Hashtbl.iter (fun _ lp -> lp.Ir.body <- prune lp.Ir.body) f.Ir.loop_arena;
  Hashtbl.remove f.Ir.arena v

(* --------------------------------------------------------------- pass *)

let granted ~ok = function
  | V.Wish.Granted_static -> true
  | V.Wish.Granted_versioned _ -> ok
  | V.Wish.Denied -> false

let tally stats ~ok outcomes =
  List.iter
    (fun (_, o) ->
      stats.candidates <- stats.candidates + 1;
      match o with
      | V.Wish.Granted_versioned _ when ok ->
        stats.versioned <- stats.versioned + 1
      | V.Wish.Granted_versioned _ | V.Wish.Denied ->
        stats.infeasible <- stats.infeasible + 1
      | V.Wish.Granted_static -> ())
    outcomes

let run_region ?(versioning = true) (f : Ir.func) (region : Ir.region)
    (stats : stats) : unit =
  let before = (stats.forwarded, stats.killed) in
  (* wish 1: forward stored values to same-address loads *)
  let forward_spec =
    {
      V.Wish.sp_client = "dse-forward";
      sp_loop_upgrade = true;
      sp_enumerate = enumerate_forward;
      sp_want =
        (fun _ c ->
          V.Wish.Separated { nodes = [ Ir.NI c.fw_load ]; from_ = c.fw_blockers });
      sp_describe =
        (fun c -> "forward store to " ^ Ir.value_name f c.fw_load);
      sp_apply =
        (fun s ~ok ~subst decided ->
          let f = s.V.Api.s_func in
          tally stats ~ok decided;
          let users = Ir.compute_users f in
          List.iter
            (fun (c, o) ->
              if granted ~ok o then begin
                let target = subst c.fw_value in
                List.iter
                  (fun u ->
                    if u <> target then
                      Ir.replace_uses_in_inst f ~user:u ~old_v:c.fw_load
                        ~new_v:target)
                  (users c.fw_load);
                stats.forwarded <- stats.forwarded + 1
              end)
            decided);
    }
  in
  ignore (V.Wish.run_spec ~versioning forward_spec f region);
  (* wish 2 (fresh session: the function changed): kill overwritten
     stores whose intervening readers are versioned away *)
  let kill_spec =
    {
      V.Wish.sp_client = "dse-kill";
      sp_loop_upgrade = true;
      sp_enumerate = enumerate_kill;
      sp_want =
        (fun _ c ->
          V.Wish.Separated { nodes = c.kl_readers; from_ = [ Ir.NI c.kl_store ] });
      sp_describe = (fun c -> "kill store " ^ Ir.value_name f c.kl_store);
      sp_apply =
        (fun s ~ok ~subst:_ decided ->
          let f = s.V.Api.s_func in
          tally stats ~ok decided;
          List.iter
            (fun (c, o) ->
              if granted ~ok o then begin
                delete_inst f c.kl_store;
                stats.killed <- stats.killed + 1
              end)
            decided);
    }
  in
  ignore (V.Wish.run_spec ~versioning kill_spec f region);
  let df = stats.forwarded - fst before and dk = stats.killed - snd before in
  if df > 0 || dk > 0 then
    Tr.remark
      (Tr.anchor
         ?loop:(match region with Ir.Rloop l -> Some l | Ir.Rtop -> None)
         f.Ir.fname)
      (Tr.Store_eliminated { forwarded = df; killed = dk })

let run ?(versioning = true) (f : Ir.func) : stats =
  let stats = new_stats () in
  List.iter
    (fun region -> run_region ~versioning f region stats)
    (V.Wish.all_regions f);
  stats
