(* Loop-invariant code motion for PSSA.

   An instruction is hoisted out of its loop when all of its data
   operands and predicate literals are defined before the loop; loads
   additionally require that no may-write in the loop can touch their
   address (statically disjoint, or covered by a scoped-independence
   fact established by versioning).  Hoisted instructions run under the
   loop's guard predicate.  Sweeps repeat so code migrates out of nests
   one level per round. *)

open Fgv_pssa
open Fgv_analysis

let run (f : Ir.func) : int =
  let hoisted = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let scev = Queries.scev f in
    let order = Ir.compute_order f in
    let eff = Ir.effective_preds f in
    (* hoist from [lp]'s body into the parent's item list; returns the
       rewritten parent items *)
    let rec process_items items =
      List.concat_map
        (fun item ->
          match item with
          | Ir.I _ -> [ item ]
          | Ir.L lid ->
            let lp = Ir.loop f lid in
            lp.body <- process_items lp.body;
            let loop_start = order (Ir.NL lid) in
            let defined_outside v = order (Ir.NI v) < loop_start in
            let writes =
              List.filter
                (fun m -> Ir.may_write_inst (Ir.inst f m))
                (Ir.memory_insts f (Ir.L lid))
            in
            let load_safe v =
              match Scev.range_of_access scev v with
              | None -> false
              | Some r ->
                List.for_all
                  (fun w ->
                    Ir.in_indep_scope ~eff f v w
                    ||
                    match Scev.range_of_access scev w with
                    | None -> false
                    | Some rw -> Alias.relate f r rw = Alias.Disjoint)
                  writes
            in
            let hoistable v =
              let i = Ir.inst f v in
              let pure_ok =
                match i.kind with
                | Ir.Const _ | Ir.Arg _ | Ir.Binop _ | Ir.Cmp _ | Ir.Cast _
                | Ir.Select _ | Ir.Splat _ | Ir.Vecbuild _ | Ir.Extract _ ->
                  true
                | Ir.Load _ -> load_safe v
                | Ir.Call { effect = Ir.Pure; _ } -> true
                | _ -> false
              in
              pure_ok
              && List.for_all defined_outside (Ir.all_operands i)
              (* division can trap; keep it guarded inside the loop unless
                 the divisor is a nonzero constant *)
              && (match i.kind with
                 | Ir.Binop ((Ir.Div | Ir.Rem), _, b) -> (
                   match (Ir.inst f b).kind with
                   | Ir.Const (Ir.Cint n) -> n <> 0
                   | _ -> false)
                 | _ -> true)
            in
            let to_hoist, kept =
              List.partition
                (fun it ->
                  match it with Ir.I v -> hoistable v | Ir.L _ -> false)
                lp.body
            in
            if to_hoist = [] then [ item ]
            else begin
              changed := true;
              hoisted := !hoisted + List.length to_hoist;
              lp.body <- kept;
              (* hoisted code runs under the loop guard *)
              List.iter
                (fun it ->
                  match it with
                  | Ir.I v ->
                    let i = Ir.inst f v in
                    i.ipred <- Pred.and_ lp.lpred i.ipred
                  | Ir.L _ -> ())
                to_hoist;
              to_hoist @ [ item ]
            end)
        items
    in
    f.Ir.fbody <- process_items f.Ir.fbody
  done;
  !hoisted
