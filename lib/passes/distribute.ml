(* Versioned loop distribution, a wish-spec client of the versioning
   framework.

   An innermost straight-line loop with several stores is split into
   one sub-loop per independent *statement group* — the operand closure
   of each store, plus one group keeping every value that escapes the
   loop — provided the groups touch disjoint memory.  Where disjointness
   is only conditional (two streams that may overlap at run time), the
   wish asks for the whole loop to be versioned under the intersection
   atoms: the distributed sub-loops run on the check-pass path, the
   fallback clone keeps the original fused loop.  s222-shaped kernels
   (an unvectorizable recurrence fused with a clean stream) are the
   target: after distribution the clean sub-loop vectorizes on its own.

   Legality is wholesale reordering: sub-loop A runs *all* its
   iterations before sub-loop B runs any, so every cross-group
   write/access pair must be disjoint over the loop's whole iteration
   space (ranges promoted out of the distributed loop).  Unlike
   loop-vectorization legality, a constant dependence distance does NOT
   make a pair safe here, and any pair that cannot be proven or checked
   disjoint simply fuses the two groups back together — merging is
   always available, so distribution is never unsound, only smaller. *)

open Fgv_pssa
open Fgv_analysis
module V = Fgv_versioning
module Tr = Fgv_support.Trace

type stats = {
  mutable loops_considered : int;
  mutable loops_split : int;
  mutable pieces : int;
}

let new_stats () = { loops_considered = 0; loops_split = 0; pieces = 0 }

(* One distributable statement group: the stores anchoring it and the
   operand closure (in-loop values) it needs to compute them. *)
type group = {
  g_anchors : Ir.value_id list; (* body order *)
  g_members : (Ir.value_id, unit) Hashtbl.t;
}

type candidate = {
  dl_loop : Ir.loop_id;
  dl_clones : group list; (* non-keeper groups, body order *)
  dl_keeper : (Ir.value_id, unit) Hashtbl.t; (* keeper group's closure *)
  dl_atoms : Depcond.atom list;
  dl_pairs : (Ir.value_id * Ir.value_id) list;
  dl_pieces : int;
}

(* Union-find over unit indices, merging toward the lower index so
   group order stays the body order of the first anchor. *)
let uf_find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  let r = go i in
  let rec compress i =
    if parent.(i) <> r then begin
      let next = parent.(i) in
      parent.(i) <- r;
      compress next
    end
  in
  compress i;
  r

let uf_union parent i j =
  let a = uf_find parent i and b = uf_find parent j in
  if a <> b then parent.(max a b) <- min a b

let analyze (s : V.Api.session) (lid : Ir.loop_id) : candidate option =
  let f = s.V.Api.s_func in
  let scev = s.V.Api.s_scev in
  let lp = Ir.loop f lid in
  let body_vals =
    List.filter_map (function Ir.I v -> Some v | Ir.L _ -> None) lp.Ir.body
  in
  (* innermost, straight-line, call-free, with at least two stores *)
  if List.length body_vals <> List.length lp.Ir.body then None
  else if
    List.exists
      (fun v ->
        match (Ir.inst f v).Ir.kind with Ir.Call _ -> true | _ -> false)
      body_vals
  then None
  else begin
    let stores =
      List.filter
        (fun v ->
          match (Ir.inst f v).Ir.kind with Ir.Store _ -> true | _ -> false)
        body_vals
    in
    if List.length stores < 2 then None
    else begin
      let local = Hashtbl.create 64 in
      List.iter (fun v -> Hashtbl.replace local v ()) lp.Ir.mus;
      List.iter (fun v -> Hashtbl.replace local v ()) body_vals;
      (* the loop's own control chain belongs to every group: each
         sub-loop re-evaluates the same guard/continuation *)
      let cont_lits =
        List.filter (Hashtbl.mem local)
          (Pred.literals lp.Ir.cont @ Pred.literals lp.Ir.lpred)
      in
      let closure seeds =
        let tbl = Hashtbl.create 32 in
        let rec go v =
          if Hashtbl.mem local v && not (Hashtbl.mem tbl v) then begin
            Hashtbl.replace tbl v ();
            List.iter go (Ir.all_operands (Ir.inst f v))
          end
        in
        List.iter go seeds;
        tbl
      in
      (* values observed outside the loop (through etas, or as a nested
         use anywhere else) must stay in the group that keeps the
         original loop identity, so external users keep their producer *)
      let users = Ir.compute_users f in
      let escapes =
        List.filter
          (fun v ->
            List.exists (fun u -> not (Hashtbl.mem local u)) (users v))
          (lp.Ir.mus @ body_vals)
      in
      let store_units =
        List.map (fun sv -> (Some sv, closure (sv :: cont_lits))) stores
      in
      let units =
        Array.of_list
          (store_units
          @
          if escapes = [] then []
          else [ (None, closure (escapes @ cont_lits)) ])
      in
      let n = Array.length units in
      let anchors_of i =
        match units.(i) with Some sv, _ -> [ sv ] | None, _ -> []
      in
      let loads_of i =
        let _, cl = units.(i) in
        List.filter
          (fun v ->
            Hashtbl.mem cl v
            && match (Ir.inst f v).Ir.kind with Ir.Load _ -> true | _ -> false)
          body_vals
      in
      (* memoized whole-loop ranges of each access *)
      let promo = Hashtbl.create 16 in
      let promoted v =
        match Hashtbl.find_opt promo v with
        | Some r -> r
        | None ->
          let r =
            match Scev.range_of_access scev v with
            | None -> None
            | Some r -> Scev.promote_range scev ~out_of:(fun l -> l = lid) r
          in
          Hashtbl.add promo v r;
          r
      in
      let raw_disjoint w x =
        match Scev.range_of_access scev w, Scev.range_of_access scev x with
        | Some rw, Some rx -> Alias.relate f rw rx = Alias.Disjoint
        | _ -> false
      in
      let parent = Array.init n (fun i -> i) in
      let conditional = ref [] in
      (* every ordered cross-unit pair (write of u) x (access of v) must
         be disjoint over the whole loop, or checkable, or the units
         fuse *)
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v then
            List.iter
              (fun w ->
                List.iter
                  (fun x ->
                    if x <> w then begin
                      match promoted w, promoted x with
                      | Some rw, Some rx -> (
                        match Alias.relate f rw rx with
                        | Alias.Disjoint -> ()
                        | Alias.Overlap -> uf_union parent u v
                        | Alias.Unknown ->
                          conditional :=
                            (u, v, Depcond.Aintersect (rw, rx), (w, x))
                            :: !conditional)
                      | _ -> if not (raw_disjoint w x) then uf_union parent u v
                    end)
                  (anchors_of v @ loads_of v))
              (anchors_of u)
        done
      done;
      (* conditional pairs between units that fused anyway need no
         check: intra-group order is preserved *)
      let atoms = ref [] and pairs = ref [] in
      List.iter
        (fun (u, v, atom, pair) ->
          if uf_find parent u <> uf_find parent v then begin
            atoms := atom :: !atoms;
            pairs := pair :: !pairs
          end)
        (List.rev !conditional);
      let roots =
        List.sort_uniq compare
          (List.init n (fun i -> uf_find parent i))
      in
      if List.length roots < 2 then None
      else begin
        let group_of root =
          let anchors = ref [] and members = Hashtbl.create 32 in
          Array.iteri
            (fun i (anchor, cl) ->
              if uf_find parent i = root then begin
                (match anchor with
                | Some sv -> anchors := sv :: !anchors
                | None -> ());
                Hashtbl.iter (fun v () -> Hashtbl.replace members v ()) cl
              end)
            units;
          { g_anchors = List.rev !anchors; g_members = members }
        in
        (* the keeper (the group that remains the original loop) is the
           escaping group if any, else the last store's group — unit
           [n - 1] in both cases *)
        let keeper_root = uf_find parent (n - 1) in
        let clone_roots = List.filter (fun r -> r <> keeper_root) roots in
        let keeper = group_of keeper_root in
        Some
          {
            dl_loop = lid;
            dl_clones = List.map group_of clone_roots;
            dl_keeper = keeper.g_members;
            dl_atoms = V.Plan.dedup_atoms (List.rev !atoms);
            dl_pairs = List.rev !pairs;
            dl_pieces = List.length roots;
          }
      end
    end
  end

(* Prune a loop in place to the given member set, dropping removed
   values from the arena (nothing outside the member set uses them). *)
let prune_loop (f : Ir.func) (lp : Ir.loop) keep =
  let kept_mus = List.filter keep lp.Ir.mus in
  List.iter
    (fun m -> if not (keep m) then Hashtbl.remove f.Ir.arena m)
    lp.Ir.mus;
  lp.Ir.mus <- kept_mus;
  let kept_body =
    List.filter (function Ir.I v -> keep v | Ir.L _ -> true) lp.Ir.body
  in
  List.iter
    (function
      | Ir.I v -> if not (keep v) then Hashtbl.remove f.Ir.arena v
      | Ir.L _ -> ())
    lp.Ir.body;
  lp.Ir.body <- kept_body

let apply_candidate (f : Ir.func) (region : Ir.region) (c : candidate) =
  (* clone one pruned copy of the loop per non-keeper group, placed
     before the original so group order follows body order; the clones
     inherit the (possibly check-narrowed) guard through [clone_item] *)
  let clones =
    List.map
      (fun g ->
        let remap = Hashtbl.create 64 in
        let item = Ir.clone_item f remap (Ir.L c.dl_loop) in
        let inv = Hashtbl.create 64 in
        Hashtbl.iter (fun o n -> Hashtbl.replace inv n o) remap;
        let keep v' =
          match Hashtbl.find_opt inv v' with
          | Some ov -> Hashtbl.mem g.g_members ov
          | None -> true
        in
        (match item with
        | Ir.L nl -> prune_loop f (Ir.loop f nl) keep
        | Ir.I _ -> assert false);
        item)
      c.dl_clones
  in
  let rec splice acc = function
    | [] -> List.rev acc
    | (Ir.L l as it) :: rest when l = c.dl_loop ->
      List.rev_append acc (clones @ (it :: rest))
    | it :: rest -> splice (it :: acc) rest
  in
  Ir.set_region_items f region (splice [] (Ir.region_items f region));
  (* the original loop becomes the keeper piece *)
  prune_loop f (Ir.loop f c.dl_loop) (Hashtbl.mem c.dl_keeper)

let granted ~ok = function
  | V.Wish.Granted_static -> true
  | V.Wish.Granted_versioned _ -> ok
  | V.Wish.Denied -> false

let run_region ?(versioning = true) (f : Ir.func) (region : Ir.region)
    (stats : stats) : unit =
  let spec =
    {
      V.Wish.sp_client = "distribute";
      (* the wish already targets whole-loop granularity *)
      sp_loop_upgrade = false;
      sp_enumerate =
        (fun s ->
          List.filter_map
            (function
              | Ir.I _ -> None
              | Ir.L lid ->
                stats.loops_considered <- stats.loops_considered + 1;
                analyze s lid)
            (Ir.region_items s.V.Api.s_func s.V.Api.s_region));
      sp_want =
        (fun _ c ->
          V.Wish.Guarded_loop
            { loop = c.dl_loop; atoms = c.dl_atoms; pairs = c.dl_pairs });
      sp_describe =
        (fun c ->
          Printf.sprintf "distribute L%d into %d sub-loops" c.dl_loop
            c.dl_pieces);
      sp_apply =
        (fun s ~ok ~subst:_ decided ->
          let f = s.V.Api.s_func in
          List.iter
            (fun (c, o) ->
              if granted ~ok o then begin
                apply_candidate f s.V.Api.s_region c;
                stats.loops_split <- stats.loops_split + 1;
                stats.pieces <- stats.pieces + c.dl_pieces;
                Tr.remark
                  (Tr.anchor ~loop:c.dl_loop f.Ir.fname)
                  (Tr.Loop_distributed
                     {
                       pieces = c.dl_pieces;
                       conds =
                         (match o with
                         | V.Wish.Granted_versioned { conds } -> conds
                         | _ -> 0);
                     })
              end)
            decided);
    }
  in
  ignore (V.Wish.run_spec ~versioning spec f region)

let run ?(versioning = true) (f : Ir.func) : stats =
  let stats = new_stats () in
  List.iter
    (fun region -> run_region ~versioning f region stats)
    (V.Wish.all_regions f);
  stats
