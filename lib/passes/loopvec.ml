(* Baseline loop vectorizer with *classic* loop versioning, standing in
   for LLVM's -O3 loop vectorizer in the evaluation.

   The defining property of classic loop versioning (and its limitation,
   which the paper exploits) is that every run-time check must be
   computable *before* the loop: the accessed ranges of every pair of
   possibly-aliasing accesses are over-approximated over the whole
   iteration space and checked for disjointness up front.  Loops whose
   ranges cannot be promoted to loop-invariant bounds (complex pointer
   arithmetic), or with loop-variant conflicts (in-place updates such as
   floyd-warshall, crossing accesses such as TSVC s281), cannot be
   versioned this way and are left scalar.

   Mechanically the pass:
   1. computes the pairwise whole-loop disjointness checks (bailing if
      any needed check is not loop-invariant);
   2. versions the loop on those checks (reusing the framework's
      materializer with a hand-built, non-nested plan whose scope pairs
      record the established disjointness);
   3. unrolls the fast-path loop by the vector width; and
   4. runs the *static* SLP packer over the function, which now sees the
      disjointness facts and emits vector code. *)

open Fgv_pssa
open Fgv_analysis
module V = Fgv_versioning

type outcome = Vectorized of int (* checks emitted *) | Not_vectorized of string

(* Pairwise whole-loop checks; None when classic versioning is
   impossible. *)
let classic_checks (f : Ir.func) (scev : Scev.t) (lid : Ir.loop_id) :
    (Depcond.atom list * (Ir.value_id * Ir.value_id) list) option =
  let mems = Ir.memory_insts f (Ir.L lid) in
  if List.exists (fun v -> match (Ir.inst f v).kind with Ir.Call _ -> true | _ -> false) mems
  then None
  else begin
    let out_of l = l = lid in
    let promoted v =
      match Scev.range_of_access scev v with
      | None -> None
      | Some r -> Scev.promote_range scev ~out_of r
    in
    let atoms = ref [] and pairs = ref [] in
    let feasible = ref true in
    let consider w a =
      let const_distance =
        (* same-object accesses at a constant dependence distance: exact
           static reasoning (the packer's) applies; no run-time check *)
        match Scev.range_of_access scev w, Scev.range_of_access scev a with
        | Some rw, Some ra ->
          V.Condopt.range_offset rw ra <> None
        | _ -> false
      in
      if const_distance then ()
      else
      match promoted w, promoted a with
      | Some rw, Some ra -> (
        match Alias.relate f rw ra with
        | Alias.Disjoint -> ()
        | Alias.Overlap ->
          (* same-object ranges (in-place updates): leave the fine-grained
             reasoning to the static packer on the unrolled body *)
          ()
        | Alias.Unknown ->
          atoms := Depcond.Aintersect (rw, ra) :: !atoms;
          pairs := (w, a) :: !pairs)
      | _ ->
        (* range not expressible before the loop: if the raw ranges are
           not statically disjoint, classic versioning cannot help *)
        let statically_fine =
          match Scev.range_of_access scev w, Scev.range_of_access scev a with
          | Some rw, Some ra -> Alias.relate f rw ra = Alias.Disjoint
          | _ -> false
        in
        if not statically_fine then feasible := false
    in
    List.iteri
      (fun i w ->
        if Ir.may_write_inst (Ir.inst f w) then
          List.iteri (fun j a -> if i <> j then consider w a) mems)
      mems;
    if !feasible then Some (V.Plan.dedup_atoms !atoms, !pairs) else None
  end

(* region containing each top-level-or-nested loop *)
let region_of_loop f lid =
  let parents = Ir.parent_regions f in
  match Hashtbl.find_opt parents (Ir.NL lid) with
  | Some r -> r
  | None -> invalid_arg "Loopvec: loop not placed"

let vectorize_loop ?(vl = 4) (f : Ir.func) (lid : Ir.loop_id) : outcome =
  let scev = Queries.scev f in
  if not (Unroll.eligible f scev lid) then Not_vectorized "not a counted innermost loop"
  else
    match classic_checks f scev lid with
    | None -> Not_vectorized "checks are not loop-invariant"
    | Some (atoms, pairs) ->
      let region = region_of_loop f lid in
      let versioned_ok =
        if atoms = [] then true
        else begin
          let plan =
            {
              V.Plan.p_nodes = [ Ir.NL lid ];
              p_inputs = [ Ir.NL lid ];
              p_conds = atoms;
              p_cut_edge_ids = [];
              p_secondaries = [];
              p_scope_pairs = pairs;
            }
          in
          fst (V.Materialize.run f region [ plan ])
        end
      in
      if not versioned_ok then Not_vectorized "versioning failed to materialize"
      else begin
        (* unroll the fast-path loop (the original keeps its id) *)
        let n = Unroll.run ~factor:vl ~select:(fun l -> l = lid) f in
        if n = 0 then Not_vectorized "unroll failed"
        else Vectorized (List.length atoms)
      end

type stats = {
  mutable loops_vectorized : int;
  mutable loops_skipped : int;
  mutable checks_emitted : int;
}

let new_stats () = { loops_vectorized = 0; loops_skipped = 0; checks_emitted = 0 }

(* Vectorize every innermost loop, then run the static packer. *)
let run ?(vl = 4) (f : Ir.func) : stats =
  let stats = new_stats () in
  (* snapshot the loops first: the transform rewrites the body *)
  let rec innermost items acc =
    List.fold_left
      (fun acc item ->
        match item with
        | Ir.I _ -> acc
        | Ir.L lid ->
          let lp = Ir.loop f lid in
          let nested = innermost lp.body [] in
          if nested = [] then lid :: acc else nested @ acc)
      acc items
  in
  let loops = innermost f.Ir.fbody [] in
  List.iter
    (fun lid ->
      match vectorize_loop ~vl f lid with
      | Vectorized checks ->
        stats.loops_vectorized <- stats.loops_vectorized + 1;
        stats.checks_emitted <- stats.checks_emitted + checks
      | Not_vectorized _ -> stats.loops_skipped <- stats.loops_skipped + 1)
    loops;
  if stats.loops_vectorized > 0 then begin
    let (_ : int * Slp.stats) = Slp.run ~config:Slp.static_config f in
    ()
  end;
  stats
