(* Standard optimization pipelines used by the evaluation harness.

   - [o3_novec]: the scalar baseline ("LLVM -O3 without vectorization"):
     constant folding, GVN (including static redundant-load reuse), LICM
     and DCE to a fixpoint.
   - [o3]: the full baseline ("LLVM -O3"): scalar pipeline plus the loop
     vectorizer with classic loop versioning plus the static SLP packer.
   - [sv]: SuperVectorization without versioning: scalar pipeline, then
     unroll-by-VL of innermost loops and the static SLP packer.
   - [sv_versioning]: the paper's configuration: as [sv] but the packer
     consults the fine-grained versioning framework.
   - [rle_*]: the redundant-load-elimination pipelines of Fig. 22.

   Every pipeline is a sequence of named stages, and every entry point
   takes an optional [?on_pass] observer invoked as [on_pass name f]
   after each individual stage.  The differential-fuzzing oracle uses
   the hook to run {!Fgv_pssa.Verifier} after every pass, so an IR
   invariant broken by one transform is reported against that transform
   rather than at the end of the pipeline.

   Every pass reports its work through the {!Fgv_support.Telemetry}
   registry (names "pass.<pass>.<metric>"), uniformly with the
   versioning framework's own counters; the [pass_stats] record remains
   as a cheap per-run view for harness code that compares two runs. *)

open Fgv_pssa
module Tm = Fgv_support.Telemetry
module Tr = Fgv_support.Trace
module Inc = Fgv_incremental.Engine

type pass_stats = {
  mutable licm_hoisted : int;
  mutable gvn_deleted : int;
  mutable dce_removed : int;
  mutable slp_vectors : int;
  mutable slp_plans : int;
  mutable loops_vectorized : int;
  mutable rle_eliminated : int;
  mutable rle_groups : int;
  mutable dse_forwarded : int;
  mutable dse_killed : int;
  mutable distribute_split : int;
  mutable distribute_pieces : int;
}

let new_pass_stats () =
  {
    licm_hoisted = 0;
    gvn_deleted = 0;
    dce_removed = 0;
    slp_vectors = 0;
    slp_plans = 0;
    loops_vectorized = 0;
    rle_eliminated = 0;
    rle_groups = 0;
    dse_forwarded = 0;
    dse_killed = 0;
    distribute_split = 0;
    distribute_pieces = 0;
  }

(* ------------------------------------------------------------- stages *)

(* A stage is a named unit of pipeline work; observers hook in between.
   The closure returns the work the pass did as labelled counts, which
   feeds the optimization-remark stream ([Pass_applied]/[Pass_skipped],
   see trace.mli). *)
type stage = string * (unit -> (string * int) list)

let run_stages ?on_pass (f : Ir.func) (stages : stage list) : unit =
  List.iter
    (fun (name, run) ->
      let work = Tr.with_span ~cat:"pass" name run in
      if Tr.remarks_recording () then begin
        let a = Tr.anchor f.Ir.fname in
        match List.filter (fun (_, n) -> n > 0) work with
        | [] ->
          Tr.remark a (Tr.Pass_skipped { pass = name; reason = "no opportunities" })
        | done_ -> Tr.remark a (Tr.Pass_applied { pass = name; work = done_ })
      end;
      match on_pass with Some h -> h name f | None -> ())
    stages

let st_constfold f : stage =
  ("constfold", fun () -> [ ("folded", Constfold.run f) ])

let st_dce f stats : stage =
  ( "dce",
    fun () ->
      let n = Dce.run f in
      stats.dce_removed <- stats.dce_removed + n;
      Tm.incr ~by:n "pass.dce.removed";
      [ ("removed", n) ] )

let st_gvn f stats : stage =
  ( "gvn",
    fun () ->
      let g = Gvn.run f in
      stats.gvn_deleted <- stats.gvn_deleted + g;
      Tm.incr ~by:g "pass.gvn.deleted";
      [ ("deleted", g) ] )

let st_licm f stats : stage =
  ( "licm",
    fun () ->
      let h = Licm.run f in
      stats.licm_hoisted <- stats.licm_hoisted + h;
      Tm.incr ~by:h "pass.licm.hoisted";
      [ ("hoisted", h) ] )

let cleanup_stages f stats = [ st_constfold f; st_dce f stats ]

let scalar_stages f stats =
  [ st_constfold f; st_gvn f stats; st_licm f stats ] @ cleanup_stages f stats

let st_ifconv f : stage = ("ifconv", fun () -> [ ("converted", Ifconv.run f) ])

let st_loopvec ~vl f stats : stage =
  ( "loopvec",
    fun () ->
      let ls = Loopvec.run ~vl f in
      stats.loops_vectorized <- ls.Loopvec.loops_vectorized;
      Tm.incr ~by:ls.Loopvec.loops_vectorized "pass.loopvec.loops";
      [ ("loops", ls.Loopvec.loops_vectorized) ] )

let st_unroll ~factor f : stage =
  ("unroll", fun () -> [ ("unrolled", Unroll.run ~factor f) ])

let st_slp ~config f stats : stage =
  ( "slp",
    fun () ->
      let n, slp_stats = Slp.run ~config f in
      stats.slp_vectors <- n;
      stats.slp_plans <- slp_stats.Slp.plans_used;
      Tm.incr ~by:n "pass.slp.vectors";
      Tm.incr ~by:slp_stats.Slp.plans_used "pass.slp.plans";
      [ ("vectors", n); ("plans", slp_stats.Slp.plans_used) ] )

let st_rle ~versioning f stats : stage =
  ( "rle",
    fun () ->
      let rs = Rle.run ~versioning f in
      stats.rle_eliminated <- rs.Rle.loads_eliminated;
      stats.rle_groups <- rs.Rle.groups_found;
      Tm.incr ~by:rs.Rle.loads_eliminated "pass.rle.eliminated";
      Tm.incr ~by:rs.Rle.groups_found "pass.rle.groups";
      [ ("eliminated", rs.Rle.loads_eliminated); ("groups", rs.Rle.groups_found) ] )

let st_dse ~versioning f stats : stage =
  ( "dse",
    fun () ->
      let ds = Dse.run ~versioning f in
      stats.dse_forwarded <- stats.dse_forwarded + ds.Dse.forwarded;
      stats.dse_killed <- stats.dse_killed + ds.Dse.killed;
      Tm.incr ~by:ds.Dse.forwarded "pass.dse.forwarded";
      Tm.incr ~by:ds.Dse.killed "pass.dse.killed";
      Tm.incr ~by:ds.Dse.versioned "pass.dse.versioned";
      [ ("forwarded", ds.Dse.forwarded); ("killed", ds.Dse.killed) ] )

let st_distribute ~versioning f stats : stage =
  ( "distribute",
    fun () ->
      let ds = Distribute.run ~versioning f in
      stats.distribute_split <- stats.distribute_split + ds.Distribute.loops_split;
      stats.distribute_pieces <- stats.distribute_pieces + ds.Distribute.pieces;
      Tm.incr ~by:ds.Distribute.loops_split "pass.distribute.split";
      Tm.incr ~by:ds.Distribute.pieces "pass.distribute.pieces";
      [ ("split", ds.Distribute.loops_split); ("pieces", ds.Distribute.pieces) ] )

(* The scalar sub-pipeline as a plain function, for harness code that
   composes custom configurations (e.g. the condopt ablation). *)
let scalar_passes ?on_pass f stats = run_stages ?on_pass f (scalar_stages f stats)

(* ---------------------------------------------------------- pipelines *)

let o3_novec ?on_pass (f : Ir.func) : pass_stats =
  Tm.time "pipeline.o3_novec" (fun () ->
      Tr.with_span ~cat:"pipeline" "o3_novec" @@ fun () ->
      (* one memo context per pipeline run: analyses asked repeatedly
         over unchanged functions answer from the query engine's table
         (DESIGN §17); dropped when the pipeline returns *)
      Inc.with_ctx @@ fun () ->
      let stats = new_pass_stats () in
      run_stages ?on_pass f (scalar_stages f stats);
      stats)

let o3 ?(vl = 4) ?on_pass (f : Ir.func) : pass_stats =
  Tm.time "pipeline.o3" (fun () ->
      Tr.with_span ~cat:"pipeline" "o3" @@ fun () ->
      Inc.with_ctx @@ fun () ->
      let stats = new_pass_stats () in
      run_stages ?on_pass f
        (scalar_stages f stats
        @ [ st_ifconv f; st_loopvec ~vl f stats ]
        @ scalar_stages f stats);
      stats)

let sv ?(vl = 4) ?(versioning = false) ?(promotion = false) ?on_pass
    (f : Ir.func) : pass_stats =
  Tm.time (if versioning then "pipeline.sv_versioning" else "pipeline.sv")
    (fun () ->
      Tr.with_span ~cat:"pipeline"
        (if versioning then "sv_versioning" else "sv")
      @@ fun () ->
      Inc.with_ctx @@ fun () ->
      let stats = new_pass_stats () in
      let config =
        if versioning then
          {
            Slp.default_config with
            vl;
            condopt =
              { Fgv_versioning.Condopt.default_config with promotion };
          }
        else { Slp.static_config with vl }
      in
      run_stages ?on_pass f
        (scalar_stages f stats
        @ [
            st_ifconv f;
            st_unroll ~factor:vl f;
            st_constfold f;
            st_slp ~config f stats;
          ]
        (* hoist loop-invariant check code, then clean up the scalar
           remains *)
        @ scalar_stages f stats);
      stats)

let sv_versioning ?(vl = 4) ?(promotion = true) ?on_pass f =
  sv ~vl ~versioning:true ~promotion ?on_pass f

(* ------------------------------------------------------ RLE pipelines *)

(* Fig. 22 configuration: scalar pipeline, versioning-based RLE, then
   LICM and GVN run again downstream (the paper reports how much *more*
   work they do after RLE). *)
let rle_pipeline ?(versioning = true) ?on_pass (f : Ir.func) : pass_stats =
  Tm.time "pipeline.rle" (fun () ->
      Tr.with_span ~cat:"pipeline" "rle" @@ fun () ->
      Inc.with_ctx @@ fun () ->
      let pre = new_pass_stats () in
      run_stages ?on_pass f (scalar_stages f pre);
      (* reset: the paper's counters are about the passes running after RLE *)
      let stats = new_pass_stats () in
      run_stages ?on_pass f
        ([ st_rle ~versioning f stats; st_constfold f ]
        @ [ st_licm f stats; st_gvn f stats ]
        @ cleanup_stages f stats);
      stats)

(* The baseline for Fig. 22: the same downstream passes, no RLE. *)
let rle_baseline ?on_pass (f : Ir.func) : pass_stats =
  Tm.time "pipeline.rle_baseline" (fun () ->
      Tr.with_span ~cat:"pipeline" "rle_baseline" @@ fun () ->
      Inc.with_ctx @@ fun () ->
      let pre = new_pass_stats () in
      run_stages ?on_pass f (scalar_stages f pre);
      let stats = new_pass_stats () in
      run_stages ?on_pass f
        ([ st_constfold f; st_licm f stats; st_gvn f stats ]
        @ cleanup_stages f stats);
      stats)

(* ----------------------------------------- DSE / distribution pipelines *)

(* Versioned dead-store elimination: scalar pipeline first (so trivially
   dead code doesn't inflate the candidate set), then DSE and the scalar
   passes again to harvest what forwarding exposed.  With [versioning =
   false] only statically provable stores are eliminated. *)
let dse_pipeline ?(versioning = true) ?on_pass (f : Ir.func) : pass_stats =
  Tm.time "pipeline.dse" (fun () ->
      Tr.with_span ~cat:"pipeline" "dse" @@ fun () ->
      Inc.with_ctx @@ fun () ->
      let pre = new_pass_stats () in
      run_stages ?on_pass f (scalar_stages f pre);
      let stats = new_pass_stats () in
      run_stages ?on_pass f
        ([ st_dse ~versioning f stats; st_constfold f ]
        @ [ st_licm f stats; st_gvn f stats ]
        @ cleanup_stages f stats);
      stats)

(* Versioned loop distribution feeding the SLP vectorizer: distribution
   splits the versionable recurrence away, then unroll+SLP vectorize the
   clean sub-loop.  The packer consults versioning iff the distributor
   does, so [versioning = false] is the fully static baseline. *)
let distribute_pipeline ?(vl = 4) ?(versioning = true) ?on_pass (f : Ir.func)
    : pass_stats =
  Tm.time "pipeline.distribute" (fun () ->
      Tr.with_span ~cat:"pipeline" "distribute" @@ fun () ->
      Inc.with_ctx @@ fun () ->
      let pre = new_pass_stats () in
      run_stages ?on_pass f (scalar_stages f pre);
      let stats = new_pass_stats () in
      let config =
        if versioning then
          {
            Slp.default_config with
            vl;
            condopt =
              { Fgv_versioning.Condopt.default_config with promotion = true };
          }
        else { Slp.static_config with vl }
      in
      run_stages ?on_pass f
        ([
           st_distribute ~versioning f stats;
           st_ifconv f;
           st_unroll ~factor:vl f;
           st_constfold f;
           st_slp ~config f stats;
         ]
        @ scalar_stages f stats);
      stats)

(* Every versioning client in one pipeline: DSE, then distribution, then
   SLP — the "all clients" configuration the fuzz oracle cross-checks. *)
let combined ?(vl = 4) ?(versioning = true) ?on_pass (f : Ir.func) :
    pass_stats =
  Tm.time "pipeline.combined" (fun () ->
      Tr.with_span ~cat:"pipeline" "combined" @@ fun () ->
      Inc.with_ctx @@ fun () ->
      let pre = new_pass_stats () in
      run_stages ?on_pass f (scalar_stages f pre);
      let stats = new_pass_stats () in
      let config =
        if versioning then
          {
            Slp.default_config with
            vl;
            condopt =
              { Fgv_versioning.Condopt.default_config with promotion = true };
          }
        else { Slp.static_config with vl }
      in
      run_stages ?on_pass f
        ([
           st_dse ~versioning f stats;
           st_distribute ~versioning f stats;
           st_ifconv f;
           st_unroll ~factor:vl f;
           st_constfold f;
           st_slp ~config f stats;
         ]
        @ scalar_stages f stats);
      stats)

(* ------------------------------------------------------- the registry *)

(* The single name → pipeline table every consumer shares: the fgvc
   driver's [-p] flag, the fuzz oracle's sweep, the compile service's
   request decoder, and the doc-lint check that keeps README's pipeline
   table honest all read this list.  Adding a pipeline here is the whole
   registration step (plus a README row, which doc-lint enforces). *)
let registry :
    (string * (?on_pass:(string -> Ir.func -> unit) -> Ir.func -> unit)) list
    =
  [
    ("o3-novec", fun ?on_pass f -> ignore (o3_novec ?on_pass f));
    ("o3", fun ?on_pass f -> ignore (o3 ?on_pass f));
    ("sv", fun ?on_pass f -> ignore (sv ?on_pass f));
    ("sv+v", fun ?on_pass f -> ignore (sv_versioning ?on_pass f));
    ( "sv+v-nopromo",
      fun ?on_pass f -> ignore (sv_versioning ~promotion:false ?on_pass f) );
    ("rle", fun ?on_pass f -> ignore (rle_pipeline ?on_pass f));
    ( "rle-static",
      fun ?on_pass f -> ignore (rle_pipeline ~versioning:false ?on_pass f) );
    ("dse", fun ?on_pass f -> ignore (dse_pipeline ?on_pass f));
    ( "dse-static",
      fun ?on_pass f -> ignore (dse_pipeline ~versioning:false ?on_pass f) );
    ("distribute", fun ?on_pass f -> ignore (distribute_pipeline ?on_pass f));
    ( "distribute-static",
      fun ?on_pass f ->
        ignore (distribute_pipeline ~versioning:false ?on_pass f) );
    ("combined", fun ?on_pass f -> ignore (combined ?on_pass f));
  ]

let names = List.map fst registry

let find (name : string) :
    (?on_pass:(string -> Ir.func -> unit) -> Ir.func -> unit) option =
  List.assoc_opt name registry
