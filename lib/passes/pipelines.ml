(* Standard optimization pipelines used by the evaluation harness.

   - [o3_novec]: the scalar baseline ("LLVM -O3 without vectorization"):
     constant folding, GVN (including static redundant-load reuse), LICM
     and DCE to a fixpoint.
   - [o3]: the full baseline ("LLVM -O3"): scalar pipeline plus the loop
     vectorizer with classic loop versioning plus the static SLP packer.
   - [sv]: SuperVectorization without versioning: scalar pipeline, then
     unroll-by-VL of innermost loops and the static SLP packer.
   - [sv_versioning]: the paper's configuration: as [sv] but the packer
     consults the fine-grained versioning framework.
   - [rle_*]: the redundant-load-elimination pipelines of Fig. 22.

   Every pass reports its work through the {!Fgv_support.Telemetry}
   registry (names "pass.<pass>.<metric>"), uniformly with the
   versioning framework's own counters; the [pass_stats] record remains
   as a cheap per-run view for harness code that compares two runs. *)

open Fgv_pssa
module Tm = Fgv_support.Telemetry

type pass_stats = {
  mutable licm_hoisted : int;
  mutable gvn_deleted : int;
  mutable dce_removed : int;
  mutable slp_vectors : int;
  mutable slp_plans : int;
  mutable loops_vectorized : int;
  mutable rle_eliminated : int;
  mutable rle_groups : int;
}

let new_pass_stats () =
  {
    licm_hoisted = 0;
    gvn_deleted = 0;
    dce_removed = 0;
    slp_vectors = 0;
    slp_plans = 0;
    loops_vectorized = 0;
    rle_eliminated = 0;
    rle_groups = 0;
  }

let cleanup f stats =
  ignore (Constfold.run f);
  let n = Dce.run f in
  stats.dce_removed <- stats.dce_removed + n;
  Tm.incr ~by:n "pass.dce.removed"

let scalar_passes f stats =
  ignore (Constfold.run f);
  let g = Gvn.run f in
  stats.gvn_deleted <- stats.gvn_deleted + g;
  Tm.incr ~by:g "pass.gvn.deleted";
  let h = Licm.run f in
  stats.licm_hoisted <- stats.licm_hoisted + h;
  Tm.incr ~by:h "pass.licm.hoisted";
  cleanup f stats

let o3_novec (f : Ir.func) : pass_stats =
  Tm.time "pipeline.o3_novec" (fun () ->
      let stats = new_pass_stats () in
      scalar_passes f stats;
      stats)

let o3 ?(vl = 4) (f : Ir.func) : pass_stats =
  Tm.time "pipeline.o3" (fun () ->
      let stats = new_pass_stats () in
      scalar_passes f stats;
      ignore (Ifconv.run f);
      let ls = Loopvec.run ~vl f in
      stats.loops_vectorized <- ls.Loopvec.loops_vectorized;
      Tm.incr ~by:ls.Loopvec.loops_vectorized "pass.loopvec.loops";
      scalar_passes f stats;
      stats)

let sv ?(vl = 4) ?(versioning = false) ?(promotion = false) (f : Ir.func) :
    pass_stats =
  Tm.time (if versioning then "pipeline.sv_versioning" else "pipeline.sv")
    (fun () ->
      let stats = new_pass_stats () in
      scalar_passes f stats;
      ignore (Ifconv.run f);
      ignore (Unroll.run ~factor:vl f);
      ignore (Constfold.run f);
      let config =
        if versioning then
          {
            Slp.default_config with
            vl;
            condopt =
              { Fgv_versioning.Condopt.default_config with promotion };
          }
        else { Slp.static_config with vl }
      in
      let n, slp_stats = Slp.run ~config f in
      stats.slp_vectors <- n;
      stats.slp_plans <- slp_stats.Slp.plans_used;
      Tm.incr ~by:n "pass.slp.vectors";
      Tm.incr ~by:slp_stats.Slp.plans_used "pass.slp.plans";
      (* hoist loop-invariant check code, then clean up the scalar remains *)
      scalar_passes f stats;
      stats)

let sv_versioning ?(vl = 4) ?(promotion = true) f =
  sv ~vl ~versioning:true ~promotion f

(* ------------------------------------------------------ RLE pipelines *)

(* Fig. 22 configuration: scalar pipeline, versioning-based RLE, then
   LICM and GVN run again downstream (the paper reports how much *more*
   work they do after RLE). *)
let rle_pipeline ?(versioning = true) (f : Ir.func) : pass_stats =
  Tm.time "pipeline.rle" (fun () ->
      let stats = new_pass_stats () in
      scalar_passes f stats;
      (* reset: the paper's counters are about the passes running after RLE *)
      let stats = new_pass_stats () in
      let rs = Rle.run ~versioning f in
      stats.rle_eliminated <- rs.Rle.loads_eliminated;
      stats.rle_groups <- rs.Rle.groups_found;
      Tm.incr ~by:rs.Rle.loads_eliminated "pass.rle.eliminated";
      Tm.incr ~by:rs.Rle.groups_found "pass.rle.groups";
      ignore (Constfold.run f);
      let h = Licm.run f in
      stats.licm_hoisted <- stats.licm_hoisted + h;
      Tm.incr ~by:h "pass.licm.hoisted";
      let g = Gvn.run f in
      stats.gvn_deleted <- stats.gvn_deleted + g;
      Tm.incr ~by:g "pass.gvn.deleted";
      cleanup f stats;
      stats)

(* The baseline for Fig. 22: the same downstream passes, no RLE. *)
let rle_baseline (f : Ir.func) : pass_stats =
  Tm.time "pipeline.rle_baseline" (fun () ->
      let stats = new_pass_stats () in
      scalar_passes f stats;
      let stats = new_pass_stats () in
      ignore (Constfold.run f);
      let h = Licm.run f in
      stats.licm_hoisted <- stats.licm_hoisted + h;
      Tm.incr ~by:h "pass.licm.hoisted";
      let g = Gvn.run f in
      stats.gvn_deleted <- stats.gvn_deleted + g;
      Tm.incr ~by:g "pass.gvn.deleted";
      cleanup f stats;
      stats)
