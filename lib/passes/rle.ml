(* Redundant load elimination via versioning (paper SV-B).

   A group of same-address, same-type loads is redundant when the loads
   are all independent: independence means no intervening may-write can
   affect any of them, so they all observe the same value.  The pass:

   1. collects groups of region-level loads on equal symbolic addresses,
      with a leader whose execution is implied by every member;
   2. groups that are not already independent are handed to the
      versioning framework (and dropped when versioning is infeasible);
   3. plans are materialized;
   4. the leader is hoisted before the other loads (requesting a further
      separation plan when instructions it depends on sit in between)
      and every other load's uses are redirected to the leader; the dead
      loads are left for DCE.

   With [versioning = false] the pass only eliminates groups that are
   *statically* independent — the baseline a standard compiler achieves. *)

open Fgv_pssa
open Fgv_analysis
module V = Fgv_versioning

type stats = {
  mutable groups_found : int;
  mutable groups_versioned : int;
  mutable loads_eliminated : int;
  mutable groups_infeasible : int;
}

let new_stats () =
  {
    groups_found = 0;
    groups_versioned = 0;
    loads_eliminated = 0;
    groups_infeasible = 0;
  }

(* Region-level scalar loads grouped by symbolic address and type. *)
let load_groups (f : Ir.func) (scev : Scev.t) (region : Ir.region) :
    Ir.value_id list list =
  let items = Ir.region_items f region in
  let loads =
    List.filter_map
      (fun item ->
        match item with
        | Ir.I v -> (
          match (Ir.inst f v).kind with
          | Ir.Load { addr } when Ir.lanes_of_ty (Ir.inst f v).ty = 1 ->
            Some (v, Scev.linexp scev addr, (Ir.inst f v).ty)
          | _ -> None)
        | Ir.L _ -> None)
      items
  in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v, lin, ty) ->
      let key = (Linexp.terms lin, Linexp.constant lin, ty) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (v :: cur))
    loads;
  Hashtbl.fold
    (fun _ vs acc -> if List.length vs >= 2 then List.rev vs :: acc else acc)
    tbl []

(* The leader: the first member, provided every member's predicate
   implies its execution. *)
let leader_of (f : Ir.func) (group : Ir.value_id list) : Ir.value_id option =
  match group with
  | first :: rest ->
    let p0 = (Ir.inst f first).ipred in
    if List.for_all (fun v -> Pred.implies (Ir.inst f v).ipred p0) rest then
      Some first
    else None
  | [] -> None

(* RLE expressed as a wish spec (DESIGN §13): each load group wishes
   its members pairwise independent; granted groups collapse onto the
   leader.  The redirect target must go through [subst] — the leader's
   outermost versioning phi is the value valid on every path, since the
   raw leader's predicate was narrowed by the checks.  When
   materialization failed ([ok = false]), only the groups that were
   independent *without* versioning may be collapsed. *)
let run_region ?(versioning = true) (f : Ir.func) (region : Ir.region)
    (stats : stats) : unit =
  let spec =
    {
      V.Wish.sp_client = "rle";
      sp_loop_upgrade = true;
      sp_enumerate =
        (fun s ->
          List.filter_map
            (fun group ->
              match leader_of f group with
              | None -> None
              | Some leader -> Some (leader, group))
            (load_groups f s.V.Api.s_scev s.V.Api.s_region));
      sp_want =
        (fun _ (_, group) ->
          V.Wish.Independent (List.map (fun v -> Ir.NI v) group));
      sp_describe =
        (fun (leader, group) ->
          Printf.sprintf "independence of %d loads at %s" (List.length group)
            (Ir.value_name f leader));
      sp_apply =
        (fun s ~ok ~subst decided ->
          let f = s.V.Api.s_func in
          let users = Ir.compute_users f in
          List.iter
            (fun ((leader, group), o) ->
              stats.groups_found <- stats.groups_found + 1;
              let collapse =
                match o with
                | V.Wish.Granted_static -> true
                | V.Wish.Granted_versioned { conds } ->
                  if conds > 0 then
                    stats.groups_versioned <- stats.groups_versioned + 1;
                  ok
                | V.Wish.Denied ->
                  stats.groups_infeasible <- stats.groups_infeasible + 1;
                  false
              in
              if collapse then begin
                let target = subst leader in
                List.iter
                  (fun l ->
                    if l <> leader then begin
                      List.iter
                        (fun u ->
                          if u <> target then
                            Ir.replace_uses_in_inst f ~user:u ~old_v:l
                              ~new_v:target)
                        (users l);
                      stats.loads_eliminated <- stats.loads_eliminated + 1
                    end)
                  group
              end)
            decided);
    }
  in
  ignore (V.Wish.run_spec ~versioning spec f region)

let run ?(versioning = true) (f : Ir.func) : stats =
  let stats = new_stats () in
  List.iter
    (fun region -> run_region ~versioning f region stats)
    (V.Wish.all_regions f);
  stats
