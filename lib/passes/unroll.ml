(* Loop unrolling by a constant factor for innermost counted loops.

   for-loops become:

     t   = trip count               (materialized, region level)
     tm  = (t / F) * F              (main-loop iterations)
     L'  : do F copies of the body while consumed + F <= tm
     e_k = eta(L', m'_k)            (induction state after the main loop)
     Le  : the original loop, with mu inits replaced by e_k, guarded by
           t - tm > 0               (the remainder iterations)

   Existing etas over the original loop are retargeted to Le, which
   chains correctly through skipped loops (eta of a skipped loop yields
   the mu init).  Only loops whose region-level live-outs are etas over
   mus are eligible — exactly what the mini-C frontend produces.

   This is the standard preparation step for SLP vectorization across
   loop iterations (SuperVectorization packs across the unrolled body). *)

open Fgv_pssa
open Fgv_analysis

(* simple sequential emitter *)
type em = { ef : Ir.func; mutable acc : Ir.item list }

let emit ?(name = "") em kind ty =
  let i = Ir.new_inst ~name em.ef ~kind ~ty ~pred:Pred.tru in
  em.acc <- Ir.I i.id :: em.acc;
  i.id

let emit_linexp em (e : Linexp.t) =
  match Linexp.terms e, Linexp.constant e with
  | [ (v, 1) ], 0 -> v
  | terms, konst ->
    let start = emit em (Ir.Const (Cint konst)) Tint in
    List.fold_left
      (fun acc (v, k) ->
        let t =
          if k = 1 then v
          else
            let kc = emit em (Ir.Const (Cint k)) Tint in
            emit em (Ir.Binop (Mul, v, kc)) Tint
        in
        emit em (Ir.Binop (Add, acc, t)) Tint)
      start terms

let has_nested_loop f lid =
  List.exists
    (function Ir.L _ -> true | Ir.I _ -> false)
    (Ir.loop f lid).body

(* etas over this loop, which must all read mus *)
let loop_etas f lid =
  let etas = ref [] in
  Ir.iter_insts f (fun i ->
      match i.kind with
      | Ir.Eta { loop; value } when loop = lid -> etas := (i.id, value) :: !etas
      | _ -> ());
  !etas

let eligible f scev lid =
  let lp = Ir.loop f lid in
  (not (has_nested_loop f lid))
  && Scev.trip scev lp <> None
  && List.for_all (fun (_, v) -> List.mem v lp.mus) (loop_etas f lid)

(* Unroll one eligible loop; returns the replacement items. *)
let unroll_loop (f : Ir.func) (scev : Scev.t) (lid : Ir.loop_id) ~factor :
    Ir.item list =
  let lp = Ir.loop f lid in
  let trip = Option.get (Scev.trip scev lp) in
  let em = { ef = f; acc = [] } in
  let t_v = emit_linexp em trip in
  let f_c = emit em (Ir.Const (Cint factor)) Tint in
  let q = emit em (Ir.Binop (Div, t_v, f_c)) Tint in
  let tm = emit ~name:"tm" em (Ir.Binop (Mul, q, f_c)) Tint in
  let zero = emit em (Ir.Const (Cint 0)) Tint in
  let tm_pos = emit em (Ir.Cmp (Gt, tm, zero)) Tbool in
  let rem = emit ~name:"rem" em (Ir.Binop (Sub, t_v, tm)) Tint in
  let rem_pos = emit em (Ir.Cmp (Gt, rem, zero)) Tbool in
  (* ---- main loop with [factor] body copies ---- *)
  let main = Ir.new_loop f ~pred:(Pred.and_ lp.lpred (Pred.lit tm_pos)) in
  let mu_info =
    List.map
      (fun m ->
        match (Ir.inst f m).kind with
        | Ir.Mu { init; recur; _ } -> (m, init, recur)
        | _ -> invalid_arg "Unroll: non-mu in header")
      lp.mus
  in
  let main_mus =
    List.map
      (fun (m, init, _) ->
        let mi = Ir.inst f m in
        let nm =
          Ir.new_inst ~name:mi.name f
            ~kind:(Ir.Mu { init; recur = init (* patched below *); loop = main.lid })
            ~ty:mi.ty ~pred:Pred.tru
        in
        (m, nm.id))
      mu_info
  in
  main.mus <- List.map snd main_mus;
  (* the consumed-iterations counter *)
  let ctr_init = emit em (Ir.Const (Cint 0)) Tint in
  let ctr =
    Ir.new_inst ~name:"unroll_ctr" f
      ~kind:(Ir.Mu { init = ctr_init; recur = ctr_init; loop = main.lid })
      ~ty:Tint ~pred:Pred.tru
  in
  main.mus <- main.mus @ [ ctr.id ];
  (* body copies *)
  let scopes_before = f.Ir.indep_scopes in
  let copy_remaps = ref [] in
  let body = ref [] in
  let cur = Hashtbl.create 8 in
  (* current value of each original mu *)
  List.iter (fun (m, nm) -> Hashtbl.replace cur m nm) main_mus;
  for _copy = 1 to factor do
    let remap = Hashtbl.create 32 in
    List.iter (fun (m, _, _) -> Hashtbl.replace remap m (Hashtbl.find cur m)) mu_info;
    let copies = List.map (Ir.clone_item f remap) lp.body in
    copy_remaps := remap :: !copy_remaps;
    body := !body @ copies;
    (* advance: the next copy's view of each mu is this copy's recur *)
    List.iter
      (fun (m, _, recur) ->
        let next = Option.value ~default:recur (Hashtbl.find_opt remap recur) in
        Hashtbl.replace cur m next)
      mu_info
  done;
  (* counter advance and continue condition, inside the body *)
  let bem = { ef = f; acc = [] } in
  let f_cb = emit bem (Ir.Const (Cint factor)) Tint in
  let nxt = emit bem (Ir.Binop (Add, ctr.id, f_cb)) Tint in
  let nxt2 = emit bem (Ir.Binop (Add, nxt, f_cb)) Tint in
  let more = emit bem (Ir.Cmp (Le, nxt2, tm)) Tbool in
  main.body <- !body @ List.rev bem.acc;
  main.cont <- Pred.lit more;
  (match ctr.kind with
  | Ir.Mu mu -> ctr.kind <- Ir.Mu { mu with recur = nxt }
  | _ -> ());
  (* patch main mu recurs to the fully advanced values *)
  List.iter
    (fun (m, nm) ->
      let i = Ir.inst f nm in
      match i.kind with
      | Ir.Mu mu -> i.kind <- Ir.Mu { mu with recur = Hashtbl.find cur m }
      | _ -> ())
    main_mus;
  (* ---- etas carrying induction state out of the main loop ---- *)
  let after_em = { ef = f; acc = [] } in
  let main_etas =
    List.map
      (fun (m, nm) ->
        let mi = Ir.inst f m in
        let e =
          Ir.new_inst ~name:(mi.name ^ "_mid") f
            ~kind:(Ir.Eta { loop = main.lid; value = nm })
            ~ty:mi.ty ~pred:Pred.tru
        in
        after_em.acc <- Ir.I e.id :: after_em.acc;
        (m, e.id))
      main_mus
  in
  (* ---- epilogue: the original loop, starting from the main etas ---- *)
  let remap_e = Hashtbl.create 32 in
  let epi_item = Ir.clone_item f remap_e (Ir.L lid) in
  let epi_lid = match epi_item with Ir.L l -> l | _ -> assert false in
  let epi = Ir.loop f epi_lid in
  epi.lpred <- Pred.and_ lp.lpred (Pred.lit rem_pos);
  List.iter
    (fun (m, _, _) ->
      let cm = Hashtbl.find remap_e m in
      let ci = Ir.inst f cm in
      match ci.kind with
      | Ir.Mu mu -> ci.kind <- Ir.Mu { mu with init = List.assoc m main_etas }
      | _ -> ())
    mu_info;
  (* retarget existing etas to the epilogue *)
  List.iter
    (fun (eta_id, value) ->
      let ei = Ir.inst f eta_id in
      ei.kind <- Ir.Eta { loop = epi_lid; value = Hashtbl.find remap_e value })
    (loop_etas f lid
    |> List.filter (fun (e, _) -> not (Hashtbl.mem remap_e e)));
  (* cross-copy independence: a scope fact between two original body
     instructions also holds between *different* copies of them (the
     fact came from whole-range disjointness, which covers every
     iteration pair); clone_item only transferred same-copy pairs *)
  let all_remaps = remap_e :: !copy_remaps in
  let cross =
    List.concat_map
      (fun (x, y, p) ->
        List.concat_map
          (fun ra ->
            List.filter_map
              (fun rb ->
                if ra == rb then None
                else
                  match Hashtbl.find_opt ra x, Hashtbl.find_opt rb y with
                  | Some x', Some y' -> Some (x', y', p)
                  | _ -> None)
              all_remaps)
          all_remaps)
      scopes_before
  in
  f.Ir.indep_scopes <- cross @ f.Ir.indep_scopes;
  (* drop the original loop from the arena *)
  List.iter (fun v -> Hashtbl.remove f.Ir.arena v) (Ir.defined_values f (Ir.L lid));
  Hashtbl.remove f.Ir.loop_arena lid;
  List.rev em.acc @ [ Ir.L main.lid ] @ List.rev after_em.acc @ [ epi_item ]

(* Unroll every eligible innermost loop satisfying [select]. *)
let run ?(factor = 4) ?(select = fun (_ : Ir.loop_id) -> true) (f : Ir.func) :
    int =
  let scev = Queries.scev f in
  let count = ref 0 in
  let rec walk items =
    List.concat_map
      (fun item ->
        match item with
        | Ir.I _ -> [ item ]
        | Ir.L lid ->
          let lp = Ir.loop f lid in
          if has_nested_loop f lid then begin
            lp.body <- walk lp.body;
            [ item ]
          end
          else if eligible f scev lid && select lid then begin
            incr count;
            unroll_loop f scev lid ~factor
          end
          else [ item ])
      items
  in
  f.Ir.fbody <- walk f.Ir.fbody;
  !count
