(* Dinic's maximum-flow algorithm with min-cut extraction.

   The versioning framework (Fig. 8 of the paper) reduces "find a set of
   conditional dependence edges whose removal separates S from T" to
   min-cut.  Capacities are integers; conditional edges get capacity 1 and
   everything else gets n+1 so that a feasible cut never severs an
   unconditional edge. *)

type edge = {
  dst : int;
  mutable cap : int;
  rev : int;           (* index of the reverse edge in adj.(dst) *)
  original_cap : int;
  tag : int;           (* client tag, -1 for internal/reverse edges *)
}

type t = {
  mutable nodes : int;
  mutable adj : edge array array;   (* filled at [solve] time *)
  mutable staged : (int * int * int * int) list;  (* src, dst, cap, tag *)
  mutable frozen : bool;
  mutable augmenting : int;         (* augmenting paths found by [solve] *)
}

let create n =
  { nodes = n; adj = [||]; staged = []; frozen = false; augmenting = 0 }

let add_node t =
  if t.frozen then invalid_arg "Maxflow.add_node: already solved";
  let id = t.nodes in
  t.nodes <- t.nodes + 1;
  id

let add_edge ?(tag = -1) t ~src ~dst ~cap =
  if t.frozen then invalid_arg "Maxflow.add_edge: already solved";
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  t.staged <- (src, dst, cap, tag) :: t.staged

let freeze t =
  if not t.frozen then begin
    let counts = Array.make t.nodes 0 in
    List.iter
      (fun (s, d, _, _) ->
        counts.(s) <- counts.(s) + 1;
        counts.(d) <- counts.(d) + 1)
      t.staged;
    t.adj <-
      Array.init t.nodes (fun i ->
          Array.make counts.(i)
            { dst = -1; cap = 0; rev = -1; original_cap = 0; tag = -1 });
    let fill = Array.make t.nodes 0 in
    (* staged list is reversed insertion order; order is irrelevant *)
    List.iter
      (fun (s, d, cap, tag) ->
        let is_ = fill.(s) and id_ = fill.(d) in
        t.adj.(s).(is_) <- { dst = d; cap; rev = id_; original_cap = cap; tag };
        t.adj.(d).(id_) <- { dst = s; cap = 0; rev = is_; original_cap = 0; tag = -1 };
        fill.(s) <- is_ + 1;
        fill.(d) <- id_ + 1)
      t.staged;
    t.frozen <- true
  end

let bfs t ~source ~sink level =
  Array.fill level 0 (Array.length level) (-1);
  let q = Queue.create () in
  level.(source) <- 0;
  Queue.add source q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun e ->
        if e.cap > 0 && level.(e.dst) < 0 then begin
          level.(e.dst) <- level.(v) + 1;
          Queue.add e.dst q
        end)
      t.adj.(v)
  done;
  level.(sink) >= 0

let rec dfs t ~sink level iter v pushed =
  if v = sink then pushed
  else begin
    let result = ref 0 in
    let continue = ref true in
    while !continue && iter.(v) < Array.length t.adj.(v) do
      let e = t.adj.(v).(iter.(v)) in
      if e.cap > 0 && level.(e.dst) = level.(v) + 1 then begin
        let d = dfs t ~sink level iter e.dst (min pushed e.cap) in
        if d > 0 then begin
          e.cap <- e.cap - d;
          let r = t.adj.(e.dst).(e.rev) in
          r.cap <- r.cap + d;
          result := d;
          continue := false
        end
        else iter.(v) <- iter.(v) + 1
      end
      else iter.(v) <- iter.(v) + 1
    done;
    !result
  end

let solve t ~source ~sink =
  freeze t;
  let level = Array.make t.nodes (-1) in
  let flow = ref 0 in
  while bfs t ~source ~sink level do
    let iter = Array.make t.nodes 0 in
    let pushed = ref (dfs t ~sink level iter source max_int) in
    while !pushed > 0 do
      flow := !flow + !pushed;
      t.augmenting <- t.augmenting + 1;
      pushed := dfs t ~sink level iter source max_int
    done
  done;
  !flow

let augmenting_paths t = t.augmenting

(* Source side of the min cut: nodes reachable from the source in the
   residual graph.  Must be called after [solve].  Explicit worklist
   rather than recursion: residual reachability can chain through every
   node, and a deep graph must not overflow the stack. *)
let source_side t ~source =
  if not t.frozen then invalid_arg "Maxflow.source_side: call solve first";
  let seen = Array.make t.nodes false in
  let stack = ref [ source ] in
  seen.(source) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      Array.iter
        (fun e ->
          if e.cap > 0 && not seen.(e.dst) then begin
            seen.(e.dst) <- true;
            stack := e.dst :: !stack
          end)
        t.adj.(v)
  done;
  seen

(* Tags of saturated forward edges crossing the cut (source side ->
   sink side), excluding untagged edges. *)
let cut_edge_tags t ~source =
  let side = source_side t ~source in
  let tags = ref [] in
  Array.iteri
    (fun v edges ->
      if side.(v) then
        Array.iter
          (fun e ->
            if e.tag >= 0 && e.original_cap > 0 && not side.(e.dst) then
              tags := e.tag :: !tags)
          edges)
    t.adj;
  List.sort_uniq compare !tags
