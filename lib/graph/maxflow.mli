(** Dinic max-flow / min-cut over an integer-capacity network.

    Build the network with {!create}/{!add_node}/{!add_edge}, then call
    {!solve} once; afterwards {!source_side} and {!cut_edge_tags} describe
    the minimum cut. *)

type t

val create : int -> t
(** [create n] makes a network with nodes [0, n). *)

val add_node : t -> int
(** Add one node, returning its id. *)

val add_edge : ?tag:int -> t -> src:int -> dst:int -> cap:int -> unit
(** Directed edge with integer capacity. [tag >= 0] marks edges the caller
    wants reported by {!cut_edge_tags}. *)

val solve : t -> source:int -> sink:int -> int
(** Maximum flow value. Freezes the network. *)

val augmenting_paths : t -> int
(** Number of augmenting paths {!solve} pushed flow along (0 before
    solving) — the work metric the telemetry layer reports. *)

val source_side : t -> source:int -> bool array
(** Nodes on the source side of the minimum cut (residual reachability). *)

val cut_edge_tags : t -> source:int -> int list
(** Tags of tagged, saturated forward edges crossing the minimum cut,
    sorted and de-duplicated. *)
